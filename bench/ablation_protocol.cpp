/**
 * @file
 * Ablation A4 — MSI vs MESI coherence protocol.
 *
 * The MESI extension grants first readers an Exclusive clean copy, so
 * private read-then-write data upgrades silently instead of paying a
 * directory round trip. Compares upgrade-transaction counts, memory
 * latency, and simulated run-time on upgrade-heavy kernels.
 */

#include "bench_common.h"

using namespace graphite;

int
main()
{
    bench::banner("Ablation — MSI vs MESI",
                  "Upgrade transactions saved by the Exclusive state "
                  "(32 tiles).");

    for (const char* app : {"lu_cont", "matmul", "water_nsquared"}) {
        TextTable table;
        table.header({"protocol", "sim cycles", "upgrades", "recalls",
                      "avg mem lat"});
        for (const char* proto : {"dir_msi", "dir_mesi"}) {
            workloads::WorkloadParams p =
                workloads::findWorkload(app).defaults;
            p.threads = 32;

            Config cfg = bench::benchConfig(32);
            cfg.set("caching_protocol/type", proto);

            const workloads::WorkloadInfo& w =
                workloads::findWorkload(app);
            Simulator sim(std::move(cfg));
            workloads::SimRunResult r = workloads::runSim(sim, w, p);

            stat_t upg = 0, recalls = 0, acc = 0, lat = 0;
            for (tile_id_t t = 0; t < sim.totalTiles(); ++t) {
                const TileMemoryStats& ms = sim.memory().stats(t);
                upg += ms.l2UpgradeMisses;
                recalls += ms.recalls;
                acc += ms.totalAccesses;
                lat += ms.totalLatency;
            }
            table.row({proto, std::to_string(r.simulatedCycles),
                       std::to_string(upg), std::to_string(recalls),
                       TextTable::num(acc ? static_cast<double>(lat) /
                                                static_cast<double>(acc)
                                          : 0,
                                      1)});
        }
        std::printf("--- %s ---\n%s\n", app, table.render().c_str());
    }
    std::printf(
        "Expected: MESI helps where data is privately read before "
        "being written\n(silent E->M upgrade) and wherever clean "
        "owners are recalled (no memory\nwriteback): lu_cont's "
        "producer-consumer columns gain the most; kernels\nwhose "
        "first touch is a write (matmul's C) see no benefit.\n");
    return 0;
}
