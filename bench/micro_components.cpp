/**
 * @file
 * Component microbenchmarks (google-benchmark).
 *
 * Measures the host-side cost of the simulator's hot-path operations —
 * the same quantities the host cluster model's [host] cost parameters
 * abstract (instruction modeling, cache probes, full coherence
 * transactions, network routing, queue-model updates, transport
 * round trips). Use these numbers to calibrate
 * host/instruction_model_cost, host/memory_event_cost,
 * host/miss_event_cost and host/message_send_cost for your machine.
 */

#include <benchmark/benchmark.h>

#include "common/config.h"
#include "common/strfmt.h"
#include "mem/cache.h"
#include "mem/memory_system.h"
#include "network/network_model.h"
#include "network/queue_model.h"
#include "perf/core_model.h"
#include "transport/transport.h"

namespace graphite
{
namespace
{

void
BM_CoreModelInstruction(benchmark::State& state)
{
    Config cfg = defaultTargetConfig();
    CoreModel core(0, cfg);
    for (auto _ : state) {
        core.executeInstructions(InstrClass::IntAlu, 1);
        benchmark::DoNotOptimize(core.cycle());
    }
}
BENCHMARK(BM_CoreModelInstruction);

void
BM_BranchPredictorTrain(benchmark::State& state)
{
    Config cfg = defaultTargetConfig();
    CoreModel core(0, cfg);
    addr_t site = 0;
    for (auto _ : state) {
        core.executeBranch(site % 64, (site & 3) != 0);
        ++site;
    }
}
BENCHMARK(BM_BranchPredictorTrain);

void
BM_CacheHitProbe(benchmark::State& state)
{
    Cache cache("bench", 32768, 8, 64);
    std::vector<std::uint8_t> line(64, 0);
    for (addr_t a = 0; a < 8192; a += 64)
        cache.insert(a, CacheState::Shared, line);
    addr_t a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(a, false));
        a = (a + 64) % 8192;
    }
}
BENCHMARK(BM_CacheHitProbe);

void
BM_QueueModelEnqueue(benchmark::State& state)
{
    QueueModel queue(nullptr);
    cycle_t t = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(queue.enqueue(t, 10));
        t += 12;
    }
}
BENCHMARK(BM_QueueModelEnqueue);

void
BM_MeshRouteContention(benchmark::State& state)
{
    GlobalProgress progress(64);
    EMeshContentionNetworkModel model(64, 2, 8, &progress);
    tile_id_t dst = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            model.computeLatency(0, dst, 80, 1000));
        dst = (dst % 63) + 1;
    }
}
BENCHMARK(BM_MeshRouteContention);

/** Fixture: a small memory system driven without a full simulation. */
struct MemBench
{
    MemBench()
        : cfg(defaultTargetConfig()),
          topo((cfg.setInt("general/total_tiles", 16), 16), 1),
          fabric(topo, cfg),
          mem(topo, fabric, cfg)
    {
    }
    Config cfg;
    ClusterTopology topo;
    NetworkFabric fabric;
    MemorySystem mem;
};

void
BM_MemoryL1Hit(benchmark::State& state)
{
    MemBench b;
    std::uint64_t v = 0;
    b.mem.access(0, MemAccessType::Read, 0x10000000, &v, 8, 0);
    for (auto _ : state) {
        b.mem.access(0, MemAccessType::Read, 0x10000000, &v, 8, 0);
    }
}
BENCHMARK(BM_MemoryL1Hit);

void
BM_MemoryCoherenceMissPingPong(benchmark::State& state)
{
    // Alternating writers: every access is a full recall transaction
    // (request + recall + data reply through the network models).
    MemBench b;
    std::uint64_t v = 0;
    tile_id_t who = 0;
    for (auto _ : state) {
        b.mem.access(who, MemAccessType::Write, 0x10000000, &v, 8, 0);
        who ^= 1;
    }
}
BENCHMARK(BM_MemoryCoherenceMissPingPong);

void
BM_TransportRoundTrip(benchmark::State& state)
{
    ClusterTopology topo(2, 2);
    InProcessTransport transport(topo);
    std::vector<std::uint8_t> payload(80, 0);
    for (auto _ : state) {
        transport.send(0, 1, payload);
        TransportBuffer buf = transport.recv(1);
        benchmark::DoNotOptimize(buf);
    }
}
BENCHMARK(BM_TransportRoundTrip);

void
BM_Strfmt(benchmark::State& state)
{
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            strfmt("tile {} at cycle {}", 12, 345678ull));
    }
}
BENCHMARK(BM_Strfmt);

} // namespace
} // namespace graphite

BENCHMARK_MAIN();
