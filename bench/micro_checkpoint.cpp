/**
 * @file
 * Checkpoint/restore + fast-forward microbenchmark (src/snapshot):
 * the cost side of the "checkpoint-then-sweep" workflow described in
 * EXPERIMENTS.md.
 *
 * Three things are measured on a 16-tile mesh running a warmup-heavy
 * shared-memory workload:
 *
 *  - save cost: wall time of snapshot::saveCheckpoint on the warmed
 *    simulator, plus the blob size (the whole target memory image,
 *    caches with resident lines, directories, queues, clocks);
 *  - restore cost: wall time of snapshot::restoreCheckpoint into a
 *    fresh Simulator;
 *  - fast-forward speedup: wall time of the full-detail run vs the
 *    same run with snapshot/fast_forward on, where warmup is
 *    functional-only and detailed timing begins at api::roiBegin().
 *
 * The headline criterion is ff_speedup >= 5x: functional-only warmup
 * skips the cache hierarchy, directory protocol, network hops and
 * queue models, so it must be dramatically cheaper than detailed
 * simulation or the fast-forward mode is not earning its complexity.
 * Save/restore times are recorded in the JSON for trend tracking but
 * have no hard threshold — they scale with target memory size.
 *
 * Emits BENCH_checkpoint.json.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/table.h"
#include "core/api.h"
#include "core/simulator.h"
#include "snapshot/checkpoint.h"

namespace graphite
{
namespace
{

constexpr int TILES = 16; // 4x4 mesh
constexpr int WORKERS = 4;

bool
fastMode()
{
    const char* v = std::getenv("GRAPHITE_BENCH_FAST");
    return v != nullptr && v[0] != '\0' && v[0] != '0';
}

int
warmupIters()
{
    // Fast mode still needs enough warmup that the spawn/barrier/ROI
    // fixed costs don't drown the phase being measured.
    return fastMode() ? 2000 : 4000;
}

/** ROI is deliberately tiny so warmup dominates both runs. */
constexpr int ROI_ITERS = 50;

/**
 * Shared streaming buffer sized to overflow the private caches, so
 * detailed-mode warmup pays misses, directory lookups and mesh hops
 * on most accesses — the traffic fast-forward elides.
 */
constexpr addr_t BUF_BYTES = 1 << 18; // 256 KiB
constexpr addr_t STRIDE = 64;

struct Workload
{
    addr_t base = 0;
    addr_t barrier = 0;
    bool useRoi = false;
};

void
phase(const Workload* w, int iters)
{
    tile_id_t self = api::tileId();
    const addr_t slots = BUF_BYTES / STRIDE;
    for (int i = 0; i < iters; ++i) {
        // Walk the shared buffer with a per-tile offset: every thread
        // touches every line eventually, so lines migrate between
        // sharers and the directory stays busy in detailed mode.
        addr_t slot = (static_cast<addr_t>(i) * 7 + self * 13) % slots;
        addr_t a = w->base + slot * STRIDE;
        std::uint32_t v = api::read<std::uint32_t>(a);
        api::write<std::uint32_t>(a, v + 1);
        api::exec(InstrClass::IntAlu, 4);
    }
}

void
worker(void* p)
{
    auto* w = static_cast<const Workload*>(p);
    phase(w, warmupIters());
    // Everyone must finish warming before the mode flips: roiBegin()
    // ends fast-forward globally, so without the barrier the first
    // finisher would push the stragglers' remaining warmup through
    // the detailed model.
    api::barrierWait(w->barrier);
    if (w->useRoi)
        api::roiBegin();
    phase(w, ROI_ITERS);
}

void
appMain(void* p)
{
    auto* w = static_cast<Workload*>(p);
    w->base = api::malloc(BUF_BYTES);
    w->barrier = api::malloc(16);
    api::barrierInit(w->barrier, WORKERS);
    std::vector<tile_id_t> tids;
    for (int i = 0; i < WORKERS - 1; ++i)
        tids.push_back(api::threadSpawn(&worker, p));
    worker(p);
    for (tile_id_t t : tids)
        api::threadJoin(t);
    api::free(w->barrier);
    api::free(w->base);
}

Config
benchConfig(bool fast_forward)
{
    Config cfg = defaultTargetConfig();
    cfg.setInt("general/total_tiles", TILES);
    if (fast_forward)
        cfg.setBool("snapshot/fast_forward", true);
    return cfg;
}

double
runOnce(bool fast_forward, cycle_t* sim_cycles)
{
    Config cfg = benchConfig(fast_forward);
    Simulator sim(cfg);
    Workload w;
    w.useRoi = fast_forward;
    auto t0 = std::chrono::steady_clock::now();
    sim.run(&appMain, &w);
    auto t1 = std::chrono::steady_clock::now();
    if (sim_cycles != nullptr)
        *sim_cycles = sim.simulatedTime();
    return std::chrono::duration<double>(t1 - t0).count();
}

} // namespace
} // namespace graphite

int
main()
{
    using namespace graphite;

    const int reps = fastMode() ? 2 : 3;
    std::printf("=== micro_checkpoint ===\n");
    std::printf("%d-tile mesh, %d threads, %d warmup + %d ROI iters "
                "over a %llu KiB shared buffer (min wall of %d "
                "reps).\n\n",
                TILES, WORKERS, warmupIters(), ROI_ITERS,
                static_cast<unsigned long long>(BUF_BYTES / 1024),
                reps);

    // --- fast-forward speedup: detailed vs functional-only warmup ---
    double wall_detailed = 0.0, wall_ff = 0.0;
    cycle_t cycles_detailed = 0, cycles_ff = 0;
    for (int rep = 0; rep < reps; ++rep) {
        double d = runOnce(false, &cycles_detailed);
        if (rep == 0 || d < wall_detailed)
            wall_detailed = d;
        double f = runOnce(true, &cycles_ff);
        if (rep == 0 || f < wall_ff)
            wall_ff = f;
    }
    double ff_speedup = wall_detailed / wall_ff;

    // --- save / restore cost on the warmed detailed simulator ---
    double save_s = 0.0, restore_s = 0.0;
    std::size_t blob_bytes = 0;
    std::vector<std::uint8_t> blob;
    for (int rep = 0; rep < reps; ++rep) {
        Config cfg = benchConfig(false);
        Simulator sim(cfg);
        Workload w;
        sim.run(&appMain, &w);

        auto t0 = std::chrono::steady_clock::now();
        std::vector<std::uint8_t> b = snapshot::saveCheckpoint(sim);
        auto t1 = std::chrono::steady_clock::now();
        double s = std::chrono::duration<double>(t1 - t0).count();
        if (rep == 0 || s < save_s) {
            save_s = s;
            blob_bytes = b.size();
            blob = std::move(b);
        }
    }
    for (int rep = 0; rep < reps; ++rep) {
        Config cfg = benchConfig(false);
        Simulator sim(cfg);
        auto t0 = std::chrono::steady_clock::now();
        snapshot::restoreCheckpoint(sim, blob);
        auto t1 = std::chrono::steady_clock::now();
        double r = std::chrono::duration<double>(t1 - t0).count();
        if (rep == 0 || r < restore_s)
            restore_s = r;
    }

    TextTable table;
    table.header({"measurement", "wall s", "notes"});
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.3f", wall_detailed);
    table.row({"detailed run", buf,
               std::to_string(cycles_detailed) + " sim cycles"});
    std::snprintf(buf, sizeof buf, "%.3f", wall_ff);
    table.row({"fast-forward run", buf,
               std::to_string(cycles_ff) + " sim cycles"});
    std::snprintf(buf, sizeof buf, "%.4f", save_s);
    table.row({"checkpoint save", buf,
               std::to_string(blob_bytes) + " bytes"});
    std::snprintf(buf, sizeof buf, "%.4f", restore_s);
    table.row({"checkpoint restore", buf, "fresh Simulator"});
    std::printf("%s\n", table.render().c_str());

    const char* criterion =
        "ff_speedup >= 5.0 (functional-only warmup must beat detailed "
        "simulation by 5x)";
    bool met = ff_speedup >= 5.0;
    std::printf("fast-forward speedup: %.2fx\n", ff_speedup);
    std::printf("save throughput: %.1f MB/s\n",
                blob_bytes / (save_s * 1e6));
    std::printf("criterion: %s -> %s\n", criterion,
                met ? "MET" : "NOT MET");

    FILE* f = std::fopen("BENCH_checkpoint.json", "w");
    if (f == nullptr) {
        std::perror("BENCH_checkpoint.json");
        return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"benchmark\": \"micro_checkpoint\",\n");
    std::fprintf(f,
                 "  \"workload\": \"%d tiles, %d threads, %d warmup + "
                 "%d roi iters, %llu KiB shared buffer\",\n",
                 TILES, WORKERS, warmupIters(), ROI_ITERS,
                 static_cast<unsigned long long>(BUF_BYTES / 1024));
    std::fprintf(f, "  \"reps\": %d,\n", reps);
    std::fprintf(f, "  \"wall_detailed_s\": %.6f,\n", wall_detailed);
    std::fprintf(f, "  \"wall_fast_forward_s\": %.6f,\n", wall_ff);
    std::fprintf(f, "  \"sim_cycles_detailed\": %llu,\n",
                 static_cast<unsigned long long>(cycles_detailed));
    std::fprintf(f, "  \"sim_cycles_fast_forward\": %llu,\n",
                 static_cast<unsigned long long>(cycles_ff));
    std::fprintf(f, "  \"ff_speedup\": %.3f,\n", ff_speedup);
    std::fprintf(f, "  \"save_s\": %.6f,\n", save_s);
    std::fprintf(f, "  \"restore_s\": %.6f,\n", restore_s);
    std::fprintf(f, "  \"snapshot_bytes\": %zu,\n", blob_bytes);
    std::fprintf(f, "  \"criterion\": \"%s\",\n", criterion);
    std::fprintf(f, "  \"criterion_met\": %s\n", met ? "true" : "false");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote BENCH_checkpoint.json\n");
    return met ? 0 : 1;
}
