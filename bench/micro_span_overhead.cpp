/**
 * @file
 * Host-overhead microbenchmark for the causal span engine
 * (src/obs/span): the same workload simulated with spans off (the
 * default — every instrumentation point reduces to one relaxed atomic
 * load) and armed (builders, stage marks, and sink aggregation on
 * every miss), comparing wall time.
 *
 * The off configuration *is* the shipping default, so its cost is the
 * number the ≤ 3% disabled-overhead budget in ISSUE/EXPERIMENTS.md
 * refers to; armed-vs-off bounds what turning the engine on costs.
 * The armed run must also uphold the exact-accounting invariant in
 * aggregate: per-kind cycle totals and per-stage cycle totals both
 * sum every completed span, so they must agree exactly.
 *
 * Each configuration runs REPS times and keeps the fastest wall time
 * (host noise is one-sided). Emits BENCH_span_overhead.json.
 * GRAPHITE_BENCH_FAST=1 shrinks the problem size for smoke runs.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/config.h"
#include "common/table.h"
#include "core/simulator.h"
#include "obs/span/span.h"
#include "obs/span/span_sink.h"
#include "workloads/registry.h"

namespace graphite
{
namespace
{

constexpr int TILES = 8;
constexpr int THREADS = 8;
constexpr int REPS = 5;

struct RunResult
{
    bool armed = false;
    double wallSeconds = 0.0; ///< fastest of REPS
    cycle_t simulatedCycles = 0;
    stat_t spansCompleted = 0;
    stat_t kindCycles = 0;
    stat_t stageCycles = 0;
};

bool
fastMode()
{
    const char* v = std::getenv("GRAPHITE_BENCH_FAST");
    return v != nullptr && v[0] != '\0' && v[0] != '0';
}

RunResult
runConfig(const workloads::WorkloadInfo& w,
          const workloads::WorkloadParams& p, bool armed)
{
    RunResult out;
    out.armed = armed;
    out.wallSeconds = 1e30;
    for (int rep = 0; rep < REPS; ++rep) {
        Config cfg = defaultTargetConfig();
        cfg.setInt("general/total_tiles", TILES);
        cfg.setBool("obs/spans_enabled", armed);
        Simulator sim(cfg);
        workloads::SimRunResult r = workloads::runSim(sim, w, p);
        out.wallSeconds = std::min(out.wallSeconds, r.wallSeconds);
        out.simulatedCycles = r.simulatedCycles;
        const obs::SpanSink& sink = obs::SpanSink::instance();
        out.spansCompleted = sink.completedCount();
        out.kindCycles = 0;
        out.stageCycles = 0;
        for (int k = 0; k < obs::NUM_SPAN_KINDS; ++k)
            out.kindCycles +=
                sink.kindCycles(static_cast<obs::SpanKind>(k));
        for (int s = 0; s < obs::NUM_SPAN_STAGES; ++s)
            out.stageCycles +=
                sink.stageCycles(static_cast<obs::SpanStage>(s));
    }
    return out;
}

} // namespace
} // namespace graphite

int
main()
{
    using namespace graphite;

    const workloads::WorkloadInfo& w = workloads::findWorkload("fft");
    workloads::WorkloadParams p = w.defaults;
    p.threads = THREADS;
    if (fastMode())
        p.size = 512;

    std::printf("=== micro_span_overhead ===\n");
    std::printf("Span-engine wall overhead on %s (size %d, %d threads, "
                "best of %d reps).\n\n",
                w.name.c_str(), p.size, p.threads, REPS);

    RunResult off = runConfig(w, p, false);
    RunResult on = runConfig(w, p, true);
    double slowdown = on.wallSeconds / off.wallSeconds;

    TextTable table;
    table.header({"spans", "wall s", "completed", "kind cycles",
                  "stage cycles"});
    for (const RunResult* r : {&off, &on}) {
        char wall[32];
        std::snprintf(wall, sizeof wall, "%.3f", r->wallSeconds);
        table.row({r->armed ? "armed" : "off", wall,
                   std::to_string(r->spansCompleted),
                   std::to_string(r->kindCycles),
                   std::to_string(r->stageCycles)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("slowdown armed/off: %.2fx (criterion: <= 1.25x)\n",
                slowdown);

    bool accounted = on.spansCompleted > 0 &&
                     on.kindCycles == on.stageCycles;
    if (!accounted)
        std::printf("FAIL: accounting mismatch (completed %lld, kind "
                    "cycles %lld, stage cycles %lld)\n",
                    static_cast<long long>(on.spansCompleted),
                    static_cast<long long>(on.kindCycles),
                    static_cast<long long>(on.stageCycles));

    FILE* f = std::fopen("BENCH_span_overhead.json", "w");
    if (f == nullptr) {
        std::perror("BENCH_span_overhead.json");
        return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"benchmark\": \"micro_span_overhead\",\n");
    std::fprintf(f, "  \"workload\": \"%s\",\n", w.name.c_str());
    std::fprintf(f, "  \"size\": %d,\n", p.size);
    std::fprintf(f, "  \"threads\": %d,\n", p.threads);
    std::fprintf(f, "  \"reps\": %d,\n", REPS);
    std::fprintf(f, "  \"runs\": [\n");
    for (const RunResult* r : {&off, &on}) {
        std::fprintf(
            f,
            "    {\"spans\": \"%s\", \"wall_s\": %.6f, "
            "\"simulated_cycles\": %llu, \"completed\": %llu, "
            "\"kind_cycles\": %llu, \"stage_cycles\": %llu}%s\n",
            r->armed ? "armed" : "off", r->wallSeconds,
            static_cast<unsigned long long>(r->simulatedCycles),
            static_cast<unsigned long long>(r->spansCompleted),
            static_cast<unsigned long long>(r->kindCycles),
            static_cast<unsigned long long>(r->stageCycles),
            r == &off ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"slowdown_armed\": %.3f,\n", slowdown);
    std::fprintf(f, "  \"criterion\": \"slowdown_armed <= 1.25 && "
                    "kind_cycles == stage_cycles\",\n");
    std::fprintf(f, "  \"criterion_met\": %s\n",
                 slowdown <= 1.25 && accounted ? "true" : "false");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote BENCH_span_overhead.json\n");
    return slowdown <= 1.25 && accounted ? 0 : 1;
}
