/**
 * @file
 * Host-overhead microbenchmark for the live telemetry plane
 * (src/obs/telemetry): the same workload simulated with everything off
 * (recorder disarmed, no HTTP server, watchdog off) and fully armed
 * (flight recorder on, telemetry server bound and idle — no scrapes —
 * watchdog beating at its default period), comparing wall time.
 *
 * The armed configuration is the always-on black-box posture the ISSUE
 * budgets at <= 1.10x: per recorded event the ring costs one fetch_add
 * plus five relaxed stores, the idle server sleeps in poll(), and the
 * watchdog reads a handful of atomics four times a second. The armed
 * run must also actually record: a zero event count would mean the
 * instrumentation points were compiled out, not that they are cheap.
 *
 * Each configuration runs REPS times and keeps the fastest wall time
 * (host noise is one-sided). Emits BENCH_telemetry.json.
 * GRAPHITE_BENCH_FAST=1 shrinks the problem size for smoke runs.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/config.h"
#include "common/table.h"
#include "core/simulator.h"
#include "obs/telemetry/flight_recorder.h"
#include "workloads/registry.h"

namespace graphite
{
namespace
{

constexpr int TILES = 8;
constexpr int THREADS = 8;
constexpr int REPS = 5;

struct RunResult
{
    bool armed = false;
    double wallSeconds = 0.0; ///< fastest of REPS
    cycle_t simulatedCycles = 0;
    stat_t eventsRecorded = 0;
    stat_t watchdogBeats = 0;
    bool serverWasUp = false;
};

bool
fastMode()
{
    const char* v = std::getenv("GRAPHITE_BENCH_FAST");
    return v != nullptr && v[0] != '\0' && v[0] != '0';
}

RunResult
runConfig(const workloads::WorkloadInfo& w,
          const workloads::WorkloadParams& p, bool armed)
{
    RunResult out;
    out.armed = armed;
    out.wallSeconds = 1e30;
    for (int rep = 0; rep < REPS; ++rep) {
        Config cfg = defaultTargetConfig();
        cfg.setInt("general/total_tiles", TILES);
        cfg.setBool("telemetry/recorder", armed);
        cfg.setBool("telemetry/watchdog", armed);
        if (armed)
            cfg.setInt("telemetry/http_port", 0); // bound, never scraped
        Simulator sim(cfg);
        workloads::SimRunResult r = workloads::runSim(sim, w, p);
        out.wallSeconds = std::min(out.wallSeconds, r.wallSeconds);
        out.simulatedCycles = r.simulatedCycles;
        out.eventsRecorded =
            obs::telemetry::FlightRecorder::instance().recorded();
        out.watchdogBeats = sim.watchdog().beats().load();
        out.serverWasUp = sim.telemetryServer().running();
    }
    return out;
}

} // namespace
} // namespace graphite

int
main()
{
    using namespace graphite;

    const workloads::WorkloadInfo& w = workloads::findWorkload("fft");
    workloads::WorkloadParams p = w.defaults;
    p.threads = THREADS;
    if (fastMode())
        p.size = 512;

    std::printf("=== micro_telemetry_overhead ===\n");
    std::printf("Telemetry-plane wall overhead on %s (size %d, "
                "%d threads, best of %d reps).\n\n",
                w.name.c_str(), p.size, p.threads, REPS);

    RunResult off = runConfig(w, p, false);
    RunResult on = runConfig(w, p, true);
    double slowdown = on.wallSeconds / off.wallSeconds;

    TextTable table;
    table.header({"telemetry", "wall s", "events", "wd beats",
                  "server"});
    for (const RunResult* r : {&off, &on}) {
        char wall[32];
        std::snprintf(wall, sizeof wall, "%.3f", r->wallSeconds);
        table.row({r->armed ? "armed" : "off", wall,
                   std::to_string(r->eventsRecorded),
                   std::to_string(r->watchdogBeats),
                   r->serverWasUp ? "idle" : "off"});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("slowdown armed/off: %.2fx (criterion: <= 1.10x)\n",
                slowdown);

    bool recording = on.eventsRecorded > 0 && on.serverWasUp;
    if (!recording)
        std::printf("FAIL: armed run recorded %llu events, server %s\n",
                    static_cast<unsigned long long>(on.eventsRecorded),
                    on.serverWasUp ? "up" : "down");

    FILE* f = std::fopen("BENCH_telemetry.json", "w");
    if (f == nullptr) {
        std::perror("BENCH_telemetry.json");
        return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"benchmark\": \"micro_telemetry_overhead\",\n");
    std::fprintf(f, "  \"workload\": \"%s\",\n", w.name.c_str());
    std::fprintf(f, "  \"size\": %d,\n", p.size);
    std::fprintf(f, "  \"threads\": %d,\n", p.threads);
    std::fprintf(f, "  \"reps\": %d,\n", REPS);
    std::fprintf(f, "  \"runs\": [\n");
    for (const RunResult* r : {&off, &on}) {
        std::fprintf(
            f,
            "    {\"telemetry\": \"%s\", \"wall_s\": %.6f, "
            "\"simulated_cycles\": %llu, \"events_recorded\": %llu, "
            "\"watchdog_beats\": %llu, \"server_idle\": %s}%s\n",
            r->armed ? "armed" : "off", r->wallSeconds,
            static_cast<unsigned long long>(r->simulatedCycles),
            static_cast<unsigned long long>(r->eventsRecorded),
            static_cast<unsigned long long>(r->watchdogBeats),
            r->serverWasUp ? "true" : "false", r == &off ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"slowdown_armed\": %.3f,\n", slowdown);
    std::fprintf(f, "  \"criterion\": \"slowdown_armed <= 1.10 && "
                    "events_recorded > 0\",\n");
    std::fprintf(f, "  \"criterion_met\": %s\n",
                 slowdown <= 1.10 && recording ? "true" : "false");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote BENCH_telemetry.json\n");
    return slowdown <= 1.10 && recording ? 0 : 1;
}
