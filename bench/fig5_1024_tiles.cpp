/**
 * @file
 * Experiment E3 — Figure 5: "Run-times of matrix-multiply kernel with
 * 1024 threads mapped onto 1024 target tiles across different no. of
 * host machines."
 *
 * One functional run with 1024 tiles / 1024 application threads, then
 * host-model estimates for 1..10 machines. The paper reports a 3.85x
 * speedup at 10 machines with near-linear growth, countered by the
 * sequential per-process initialization.
 */

#include <vector>

#include "bench_common.h"

using namespace graphite;

int
main()
{
    bench::banner(
        "Figure 5 — 1024-tile matrix-multiply scaling across machines",
        "1024 threads on 1024 target tiles; speed-up normalized to one "
        "8-core machine (includes per-process init, as in the paper).");

    workloads::WorkloadParams p =
        workloads::findWorkload("matmul").defaults;
    p.threads = 1024;
    p.size = bench::fastMode() ? 64 : 96; // cells >= threads

    Config cfg = bench::benchConfig(1024);
    // Extrapolate the reduced functional run to the paper's long-running
    // 102,400-element kernel (EXPERIMENTS.md): compute grows with n^3,
    // sharing with n^2 x threads.
    SimulationProfile prof =
        scaleProfile(bench::profileRun("matmul", cfg, p), 1500, 150);
    HostModel host(HostCosts::fromConfig(cfg));

    TextTable table;
    table.header({"machines", "est. run-time(s)", "speed-up"});
    double base = 0;
    for (int machines : {1, 2, 4, 6, 8, 10}) {
        HostEstimate est = host.estimate(prof, machines);
        if (base == 0)
            base = est.totalSeconds;
        table.row({std::to_string(machines),
                   TextTable::num(est.totalSeconds, 2),
                   TextTable::num(base / est.totalSeconds, 2)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Expected shape: steady improvement to 10 machines "
                "(paper: 3.85x), sub-linear\nbecause sequential "
                "per-process initialization grows with machine count.\n");
    return 0;
}
