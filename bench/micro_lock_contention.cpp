/**
 * @file
 * Host-thread contention microbenchmark for the memory-system engine:
 * global mutex (`mem/host_concurrency=global`, the pre-shard engine)
 * vs. two-level tile/shard locking (`sharded`, the default), on an
 * L1-hit-dominated workload — the case the paper's per-home-tile MME
 * servers make embarrassingly parallel.
 *
 * Two metrics per (mode, threads) point:
 *
 *  - wall throughput: ops / elapsed wall time. Only meaningful as a
 *    scaling signal when the host has >= threads CPUs.
 *  - serialized (critical-path) throughput: ops / lock critical path,
 *    measured from per-thread CPU time (CLOCK_THREAD_CPUTIME_ID).
 *    Under the global mutex every access runs inside one critical
 *    section, so the elapsed time on any host is bounded below by the
 *    SUM of per-thread engine CPU time; under sharding, an L1-hit
 *    workload takes no cross-thread lock at all, so the bound is the
 *    MAX. This is the multicore-scaling bound the lock structure
 *    imposes, and is host-CPU-count independent — essential here
 *    because CI containers may pin the build to a single CPU.
 *
 * Emits BENCH_mem_contention.json (first entry of the perf
 * trajectory); the headline criterion is serialized_speedup_8t >= 2.
 */

#include <pthread.h>
#include <time.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/config.h"
#include "common/table.h"
#include "mem/memory_system.h"

namespace graphite
{
namespace
{

constexpr int TILES = 8;
constexpr addr_t BASE = 0x1000'0000;
constexpr int LINES_PER_THREAD = 64; // fits every L1

/** CPU time consumed by the calling thread, in seconds. */
double
threadCpuSeconds()
{
    timespec ts{};
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
}

struct RunResult
{
    std::string mode;
    int threads = 0;
    std::uint64_t totalOps = 0;
    double wallSeconds = 0.0;
    double cpuSumSeconds = 0.0;
    double cpuMaxSeconds = 0.0;
    stat_t shardContended = 0;
    stat_t tileContended = 0;

    double wallThroughput() const { return totalOps / wallSeconds; }
    /** Lower bound on elapsed time imposed by the lock structure. */
    double criticalPathSeconds() const
    {
        return mode == "global" ? cpuSumSeconds : cpuMaxSeconds;
    }
    double serializedThroughput() const
    {
        return totalOps / criticalPathSeconds();
    }
};

RunResult
runConfig(const std::string& mode, int threads, std::uint64_t ops)
{
    Config cfg = defaultTargetConfig();
    cfg.setInt("general/total_tiles", TILES);
    cfg.set("mem/host_concurrency", mode);
    ClusterTopology topo(TILES, 1);
    NetworkFabric fabric(topo, cfg);
    MemorySystem mem(topo, fabric, cfg);

    // Warm-up: install every thread's private lines (L1 Shared copies),
    // so the measured loop is pure L1 read hits.
    for (int i = 0; i < threads; ++i) {
        for (int l = 0; l < LINES_PER_THREAD; ++l) {
            addr_t addr = BASE + static_cast<addr_t>(i) * 0x10000 +
                          static_cast<addr_t>(l) * mem.lineSize();
            std::uint64_t v = 0;
            mem.access(i % TILES, MemAccessType::Read, addr, &v, 8, 0);
        }
    }

    std::atomic<bool> go{false};
    std::atomic<int> ready{0};
    std::vector<double> cpu(threads, 0.0);
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (int i = 0; i < threads; ++i) {
        workers.emplace_back([&, i] {
            ready.fetch_add(1);
            while (!go.load(std::memory_order_acquire)) {
            }
            double t0 = threadCpuSeconds();
            std::uint64_t v = 0;
            for (std::uint64_t it = 0; it < ops; ++it) {
                addr_t addr =
                    BASE + static_cast<addr_t>(i) * 0x10000 +
                    (it % LINES_PER_THREAD) * mem.lineSize();
                mem.access(i % TILES, MemAccessType::Read, addr, &v, 8,
                           static_cast<cycle_t>(it));
            }
            cpu[i] = threadCpuSeconds() - t0;
        });
    }
    while (ready.load() != threads) {
    }
    auto w0 = std::chrono::steady_clock::now();
    go.store(true, std::memory_order_release);
    for (auto& w : workers)
        w.join();
    auto w1 = std::chrono::steady_clock::now();

    RunResult r;
    r.mode = mode;
    r.threads = threads;
    r.totalOps = ops * static_cast<std::uint64_t>(threads);
    r.wallSeconds = std::chrono::duration<double>(w1 - w0).count();
    for (double c : cpu) {
        r.cpuSumSeconds += c;
        r.cpuMaxSeconds = std::max(r.cpuMaxSeconds, c);
    }
    r.shardContended = mem.shardLockContendedCounter()->load();
    r.tileContended = mem.tileLockContendedCounter()->load();
    return r;
}

bool
fastMode()
{
    const char* v = std::getenv("GRAPHITE_BENCH_FAST");
    return v != nullptr && v[0] != '\0' && v[0] != '0';
}

} // namespace
} // namespace graphite

int
main()
{
    using namespace graphite;

    std::uint64_t ops = fastMode() ? 100'000 : 1'000'000;
    const int thread_counts[] = {1, 2, 4, 8};

    std::printf("=== micro_lock_contention ===\n");
    std::printf(
        "Engine-lock scaling: global mutex vs tile/shard locking on an "
        "L1-hit workload.\nHost CPUs: %u (serialized throughput is the "
        "host-independent lock-structure bound).\n\n",
        std::thread::hardware_concurrency());

    std::vector<RunResult> results;
    for (const char* mode : {"global", "sharded"})
        for (int t : thread_counts)
            results.push_back(runConfig(mode, t, ops));

    TextTable table;
    table.header({"mode", "threads", "ops", "wall Mops/s",
                  "serialized Mops/s", "shard cont", "tile cont"});
    for (const RunResult& r : results) {
        char wall[32], ser[32];
        std::snprintf(wall, sizeof wall, "%.2f",
                      r.wallThroughput() / 1e6);
        std::snprintf(ser, sizeof ser, "%.2f",
                      r.serializedThroughput() / 1e6);
        table.row({r.mode, std::to_string(r.threads),
                   std::to_string(r.totalOps), wall, ser,
                   std::to_string(r.shardContended),
                   std::to_string(r.tileContended)});
    }
    std::printf("%s\n", table.render().c_str());

    auto find = [&](const std::string& mode, int t) -> const RunResult& {
        for (const RunResult& r : results)
            if (r.mode == mode && r.threads == t)
                return r;
        std::abort();
    };
    const RunResult& g8 = find("global", 8);
    const RunResult& s8 = find("sharded", 8);
    double serialized_speedup =
        s8.serializedThroughput() / g8.serializedThroughput();
    double wall_speedup = s8.wallThroughput() / g8.wallThroughput();
    std::printf("serialized speedup at 8 threads: %.2fx (criterion: "
                ">= 2x)\nwall speedup at 8 threads: %.2fx (only "
                "meaningful with >= 8 host CPUs)\n",
                serialized_speedup, wall_speedup);

    FILE* f = std::fopen("BENCH_mem_contention.json", "w");
    if (f == nullptr) {
        std::perror("BENCH_mem_contention.json");
        return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"benchmark\": \"micro_lock_contention\",\n");
    std::fprintf(f, "  \"workload\": \"l1_hit_private_lines\",\n");
    std::fprintf(f, "  \"host_cpus\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(
        f,
        "  \"metric_note\": \"serialized_mops = ops / lock critical "
        "path from per-thread CPU time (global: sum across threads, "
        "sharded: max); host-CPU-count independent. wall_mops depends "
        "on available host CPUs.\",\n");
    std::fprintf(f, "  \"runs\": [\n");
    for (size_t i = 0; i < results.size(); ++i) {
        const RunResult& r = results[i];
        std::fprintf(
            f,
            "    {\"mode\": \"%s\", \"threads\": %d, \"ops\": %llu, "
            "\"wall_s\": %.6f, \"cpu_sum_s\": %.6f, \"cpu_max_s\": "
            "%.6f, \"wall_mops\": %.3f, \"serialized_mops\": %.3f, "
            "\"shard_lock_contended\": %llu, "
            "\"tile_lock_contended\": %llu}%s\n",
            r.mode.c_str(), r.threads,
            static_cast<unsigned long long>(r.totalOps), r.wallSeconds,
            r.cpuSumSeconds, r.cpuMaxSeconds,
            r.wallThroughput() / 1e6, r.serializedThroughput() / 1e6,
            static_cast<unsigned long long>(r.shardContended),
            static_cast<unsigned long long>(r.tileContended),
            i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"serialized_speedup_8t\": %.3f,\n",
                 serialized_speedup);
    std::fprintf(f, "  \"wall_speedup_8t\": %.3f,\n", wall_speedup);
    std::fprintf(f, "  \"criterion\": \"serialized_speedup_8t >= 2\",\n");
    std::fprintf(f, "  \"criterion_met\": %s\n",
                 serialized_speedup >= 2.0 ? "true" : "false");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote BENCH_mem_contention.json\n");
    return serialized_speedup >= 2.0 ? 0 : 1;
}
