/**
 * @file
 * Host-thread contention microbenchmark for the memory-system engine:
 * global mutex (`mem/host_concurrency=global`, the pre-shard engine)
 * vs. two-level tile/shard locking (`sharded`, the default), on an
 * L1-hit-dominated workload — the case the paper's per-home-tile MME
 * servers make embarrassingly parallel.
 *
 * Two metrics per (mode, threads) point:
 *
 *  - wall throughput: ops / elapsed wall time. Only meaningful as a
 *    scaling signal when the host has >= threads CPUs.
 *  - serialized (critical-path) throughput: ops / lock critical path,
 *    measured from per-thread CPU time (CLOCK_THREAD_CPUTIME_ID).
 *    Under the global mutex every access runs inside one critical
 *    section, so the elapsed time on any host is bounded below by the
 *    SUM of per-thread engine CPU time; under sharding, an L1-hit
 *    workload takes no cross-thread lock at all, so the bound is the
 *    MAX. This is the multicore-scaling bound the lock structure
 *    imposes, and is host-CPU-count independent — essential here
 *    because CI containers may pin the build to a single CPU.
 *
 * The matrix additionally runs each point with lockdep (the
 * lock-order checker, src/common/lockdep.h) runtime-off and enforcing:
 * the per-acquisition order check walks the thread's held-set on this
 * benchmark's hottest path, so the armed/off throughput ratio IS the
 * lockdep tax on the worst realistic case. A separate tight loop
 * measures the raw per-lock/unlock wrapper cost against a plain
 * std::mutex for reference.
 *
 * Emits BENCH_mem_contention.json (first entry of the perf
 * trajectory); the headline criteria are serialized_speedup_8t >= 2
 * and lockdep_overhead_8t <= 1.25.
 */

#include <pthread.h>
#include <time.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <mutex>

#include "common/config.h"
#include "common/lockdep.h"
#include "common/table.h"
#include "mem/memory_system.h"

namespace graphite
{
namespace
{

constexpr int TILES = 8;
constexpr addr_t BASE = 0x1000'0000;
constexpr int LINES_PER_THREAD = 64; // fits every L1

/** CPU time consumed by the calling thread, in seconds. */
double
threadCpuSeconds()
{
    timespec ts{};
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
}

struct RunResult
{
    std::string mode;
    std::string lockdepMode; // "off" | "armed"
    int threads = 0;
    std::uint64_t totalOps = 0;
    double wallSeconds = 0.0;
    double cpuSumSeconds = 0.0;
    double cpuMaxSeconds = 0.0;
    stat_t shardContended = 0;
    stat_t tileContended = 0;

    double wallThroughput() const { return totalOps / wallSeconds; }
    /** Lower bound on elapsed time imposed by the lock structure. */
    double criticalPathSeconds() const
    {
        return mode == "global" ? cpuSumSeconds : cpuMaxSeconds;
    }
    double serializedThroughput() const
    {
        return totalOps / criticalPathSeconds();
    }
};

RunResult
runConfig(const std::string& mode, bool lockdep_armed, int threads,
          std::uint64_t ops)
{
    lockdep::setMode(lockdep_armed ? lockdep::Mode::Enforce
                                   : lockdep::Mode::Off);
    Config cfg = defaultTargetConfig();
    cfg.setInt("general/total_tiles", TILES);
    cfg.set("mem/host_concurrency", mode);
    ClusterTopology topo(TILES, 1);
    NetworkFabric fabric(topo, cfg);
    MemorySystem mem(topo, fabric, cfg);

    // Warm-up: install every thread's private lines (L1 Shared copies),
    // so the measured loop is pure L1 read hits.
    for (int i = 0; i < threads; ++i) {
        for (int l = 0; l < LINES_PER_THREAD; ++l) {
            addr_t addr = BASE + static_cast<addr_t>(i) * 0x10000 +
                          static_cast<addr_t>(l) * mem.lineSize();
            std::uint64_t v = 0;
            mem.access(i % TILES, MemAccessType::Read, addr, &v, 8, 0);
        }
    }

    std::atomic<bool> go{false};
    std::atomic<int> ready{0};
    std::vector<double> cpu(threads, 0.0);
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (int i = 0; i < threads; ++i) {
        workers.emplace_back([&, i] {
            ready.fetch_add(1);
            while (!go.load(std::memory_order_acquire)) {
            }
            double t0 = threadCpuSeconds();
            std::uint64_t v = 0;
            for (std::uint64_t it = 0; it < ops; ++it) {
                addr_t addr =
                    BASE + static_cast<addr_t>(i) * 0x10000 +
                    (it % LINES_PER_THREAD) * mem.lineSize();
                mem.access(i % TILES, MemAccessType::Read, addr, &v, 8,
                           static_cast<cycle_t>(it));
            }
            cpu[i] = threadCpuSeconds() - t0;
        });
    }
    while (ready.load() != threads) {
    }
    auto w0 = std::chrono::steady_clock::now();
    go.store(true, std::memory_order_release);
    for (auto& w : workers)
        w.join();
    auto w1 = std::chrono::steady_clock::now();

    RunResult r;
    r.mode = mode;
    r.lockdepMode = lockdep_armed ? "armed" : "off";
    r.threads = threads;
    r.totalOps = ops * static_cast<std::uint64_t>(threads);
    r.wallSeconds = std::chrono::duration<double>(w1 - w0).count();
    for (double c : cpu) {
        r.cpuSumSeconds += c;
        r.cpuMaxSeconds = std::max(r.cpuMaxSeconds, c);
    }
    r.shardContended = mem.shardLockContendedCounter()->load();
    r.tileContended = mem.tileLockContendedCounter()->load();
    return r;
}

bool
fastMode()
{
    const char* v = std::getenv("GRAPHITE_BENCH_FAST");
    return v != nullptr && v[0] != '\0' && v[0] != '0';
}

/** ns per uncontended lock/unlock pair for @p iters iterations. */
template <class Lockable>
double
wrapperNsPerOp(Lockable& m, std::uint64_t iters)
{
    auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < iters; ++i) {
        m.lock();
        m.unlock();
    }
    auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::nano>(t1 - t0).count() /
           static_cast<double>(iters);
}

} // namespace
} // namespace graphite

int
main()
{
    using namespace graphite;

    std::uint64_t ops = fastMode() ? 100'000 : 1'000'000;
    const int thread_counts[] = {1, 2, 4, 8};

    std::printf("=== micro_lock_contention ===\n");
    std::printf(
        "Engine-lock scaling: global mutex vs tile/shard locking on an "
        "L1-hit workload.\nHost CPUs: %u (serialized throughput is the "
        "host-independent lock-structure bound).\n\n",
        std::thread::hardware_concurrency());

    std::vector<RunResult> results;
    for (bool armed : {false, true})
        for (const char* mode : {"global", "sharded"})
            for (int t : thread_counts)
                results.push_back(runConfig(mode, armed, t, ops));
    lockdep::setMode(lockdep::Mode::Enforce);

    TextTable table;
    table.header({"mode", "lockdep", "threads", "ops", "wall Mops/s",
                  "serialized Mops/s", "shard cont", "tile cont"});
    for (const RunResult& r : results) {
        char wall[32], ser[32];
        std::snprintf(wall, sizeof wall, "%.2f",
                      r.wallThroughput() / 1e6);
        std::snprintf(ser, sizeof ser, "%.2f",
                      r.serializedThroughput() / 1e6);
        table.row({r.mode, r.lockdepMode, std::to_string(r.threads),
                   std::to_string(r.totalOps), wall, ser,
                   std::to_string(r.shardContended),
                   std::to_string(r.tileContended)});
    }
    std::printf("%s\n", table.render().c_str());

    auto find = [&](const std::string& mode, const std::string& ld,
                    int t) -> const RunResult& {
        for (const RunResult& r : results)
            if (r.mode == mode && r.lockdepMode == ld && r.threads == t)
                return r;
        std::abort();
    };
    // Production-default comparison (lockdep armed on both sides).
    const RunResult& g8 = find("global", "armed", 8);
    const RunResult& s8 = find("sharded", "armed", 8);
    double serialized_speedup =
        s8.serializedThroughput() / g8.serializedThroughput();
    double wall_speedup = s8.wallThroughput() / g8.wallThroughput();
    std::printf("serialized speedup at 8 threads: %.2fx (criterion: "
                ">= 2x)\nwall speedup at 8 threads: %.2fx (only "
                "meaningful with >= 8 host CPUs)\n",
                serialized_speedup, wall_speedup);

    // Lockdep tax: off vs enforcing on the same engine config, worst
    // case across both lock structures at 8 threads.
    double ld_overhead = 0.0;
    for (const char* mode : {"global", "sharded"}) {
        const RunResult& off = find(mode, "off", 8);
        const RunResult& armed = find(mode, "armed", 8);
        ld_overhead = std::max(ld_overhead,
                               off.serializedThroughput() /
                                   armed.serializedThroughput());
    }
    std::printf("lockdep-armed overhead at 8 threads: %.3fx "
                "(criterion: <= 1.25x)\n",
                ld_overhead);

    // Raw wrapper reference: uncontended lock/unlock cost.
    const std::uint64_t wrap_iters = fastMode() ? 200'000 : 2'000'000;
    std::mutex plain;
    lockdep::OrderedMutex wrapped(lockdep::LockClass::profiler);
    double plain_ns = wrapperNsPerOp(plain, wrap_iters);
    lockdep::setMode(lockdep::Mode::Off);
    double off_ns = wrapperNsPerOp(wrapped, wrap_iters);
    lockdep::setMode(lockdep::Mode::Enforce);
    double armed_ns = wrapperNsPerOp(wrapped, wrap_iters);
    std::printf("uncontended lock+unlock: std::mutex %.1f ns, "
                "OrderedMutex off %.1f ns, enforcing %.1f ns\n",
                plain_ns, off_ns, armed_ns);

    FILE* f = std::fopen("BENCH_mem_contention.json", "w");
    if (f == nullptr) {
        std::perror("BENCH_mem_contention.json");
        return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"benchmark\": \"micro_lock_contention\",\n");
    std::fprintf(f, "  \"workload\": \"l1_hit_private_lines\",\n");
    std::fprintf(f, "  \"host_cpus\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(
        f,
        "  \"metric_note\": \"serialized_mops = ops / lock critical "
        "path from per-thread CPU time (global: sum across threads, "
        "sharded: max); host-CPU-count independent. wall_mops depends "
        "on available host CPUs.\",\n");
    std::fprintf(f, "  \"runs\": [\n");
    for (size_t i = 0; i < results.size(); ++i) {
        const RunResult& r = results[i];
        std::fprintf(
            f,
            "    {\"mode\": \"%s\", \"lockdep\": \"%s\", "
            "\"threads\": %d, \"ops\": %llu, "
            "\"wall_s\": %.6f, \"cpu_sum_s\": %.6f, \"cpu_max_s\": "
            "%.6f, \"wall_mops\": %.3f, \"serialized_mops\": %.3f, "
            "\"shard_lock_contended\": %llu, "
            "\"tile_lock_contended\": %llu}%s\n",
            r.mode.c_str(), r.lockdepMode.c_str(), r.threads,
            static_cast<unsigned long long>(r.totalOps), r.wallSeconds,
            r.cpuSumSeconds, r.cpuMaxSeconds,
            r.wallThroughput() / 1e6, r.serializedThroughput() / 1e6,
            static_cast<unsigned long long>(r.shardContended),
            static_cast<unsigned long long>(r.tileContended),
            i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"serialized_speedup_8t\": %.3f,\n",
                 serialized_speedup);
    std::fprintf(f, "  \"wall_speedup_8t\": %.3f,\n", wall_speedup);
    std::fprintf(
        f,
        "  \"lockdep_overhead_note\": \"worst-case off/armed "
        "serialized-throughput ratio at 8 threads across both lock "
        "structures; runtime-off still pays held-set bookkeeping, the "
        "compile-time GRAPHITE_LOCKDEP=OFF build removes even that "
        "(sizeof parity pinned by tests/lockdep_force_off_probe)\",\n");
    std::fprintf(f, "  \"lockdep_overhead_8t\": %.3f,\n", ld_overhead);
    std::fprintf(f,
                 "  \"uncontended_lock_unlock_ns\": {\"std_mutex\": "
                 "%.2f, \"ordered_mutex_off\": %.2f, "
                 "\"ordered_mutex_enforce\": %.2f},\n",
                 plain_ns, off_ns, armed_ns);
    bool met = serialized_speedup >= 2.0 && ld_overhead <= 1.25;
    std::fprintf(f, "  \"criterion\": \"serialized_speedup_8t >= 2 && "
                    "lockdep_overhead_8t <= 1.25\",\n");
    std::fprintf(f, "  \"criterion_met\": %s\n", met ? "true" : "false");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote BENCH_mem_contention.json\n");
    return met ? 0 : 1;
}
