/**
 * @file
 * Experiment E6 — Figure 8: "Breakdown of cache misses by type as line
 * size changes" for six SPLASH benchmarks, validating the memory system
 * against Woo et al.'s characterization (§4.4).
 *
 * Matching the paper's methodology: "the L1I and L1D cache models ...
 * are disabled and all memory accesses are redirected to the L2 cache
 * ... The L2 cache modeled is a 1MB 4-way set associative cache." Line
 * size sweeps 8..256 bytes; misses are classified cold / capacity /
 * true sharing / false sharing by the word-version tracker.
 *
 * Expected trends (paper §4.4): lu_cont and fft drop linearly (perfect
 * spatial locality); radix's false sharing blows up at 256 B; water and
 * barnes trade true sharing down / false sharing up as lines grow.
 */

#include <vector>

#include "bench_common.h"

using namespace graphite;

int
main()
{
    bench::banner(
        "Figure 8 — cache-miss breakdown vs line size",
        "Single-level 1MB 4-way L2 (L1s disabled), 32 tiles, misses "
        "per 1000 accesses by class.");

    const std::vector<std::string> apps = {
        "fft", "lu_cont", "radix", "water_spatial", "barnes",
        "ocean_cont"};
    const std::vector<int> line_sizes = {8, 16, 32, 64, 128, 256};

    for (const std::string& app : apps) {
        TextTable table;
        table.header({"line", "miss/1k", "cold", "capacity",
                      "true-sh", "false-sh", "upgrade"});
        for (int line : line_sizes) {
            workloads::WorkloadParams p =
                workloads::findWorkload(app).defaults;
            p.threads = 32;

            Config cfg = bench::benchConfig(32);
            cfg.setBool("perf_model/l1_icache/enabled", false);
            cfg.setBool("perf_model/l1_dcache/enabled", false);
            cfg.setInt("perf_model/l2_cache/cache_size", 1 << 20);
            cfg.setInt("perf_model/l2_cache/associativity", 4);
            cfg.setInt("perf_model/l2_cache/line_size", line);
            cfg.setBool("mem/miss_classification", true);

            const workloads::WorkloadInfo& w =
                workloads::findWorkload(app);
            Simulator sim(std::move(cfg));
            workloads::runSim(sim, w, p);

            stat_t accesses = 0, cold = 0, cap = 0, tru = 0, fal = 0,
                   upg = 0;
            for (tile_id_t t = 0; t < sim.totalTiles(); ++t) {
                const TileMemoryStats& ms = sim.memory().stats(t);
                accesses += ms.totalAccesses;
                cold += ms.l2ColdMisses;
                cap += ms.l2CapacityMisses;
                tru += ms.l2TrueSharingMisses;
                fal += ms.l2FalseSharingMisses;
                upg += ms.l2UpgradeMisses;
            }
            double per1k = accesses ? 1000.0 / accesses : 0;
            stat_t total = cold + cap + tru + fal;
            table.row({std::to_string(line),
                       TextTable::num(total * per1k, 2),
                       TextTable::num(cold * per1k, 2),
                       TextTable::num(cap * per1k, 2),
                       TextTable::num(tru * per1k, 2),
                       TextTable::num(fal * per1k, 2),
                       TextTable::num(upg * per1k, 2)});
        }
        std::printf("--- %s ---\n%s\n", app.c_str(),
                    table.render().c_str());
    }
    return 0;
}
