/**
 * @file
 * Host-overhead microbenchmark for the accuracy observatory
 * (src/obs/accuracy): the same workload simulated with detection off
 * (the shipping default — one relaxed atomic load per delivery) and
 * armed (clock reads, violation classification, magnitude histograms,
 * and the pair-skew matrix on every delivery), comparing wall time.
 *
 * The armed run must stay within the ≤ 1.15x budget from ISSUE.md —
 * detection is meant to be cheap enough to leave on for any accuracy
 * study — and must actually observe deliveries (an armed run that
 * checks nothing would make the slowdown measurement vacuous).
 *
 * Each configuration runs REPS times and keeps the fastest wall time
 * (host noise is one-sided). Emits BENCH_accuracy.json.
 * GRAPHITE_BENCH_FAST=1 shrinks the problem size for smoke runs.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/config.h"
#include "common/table.h"
#include "core/simulator.h"
#include "obs/accuracy/accuracy.h"
#include "workloads/registry.h"

namespace graphite
{
namespace
{

constexpr int TILES = 8;
constexpr int THREADS = 8;
constexpr int REPS = 5;

struct RunResult
{
    bool armed = false;
    double wallSeconds = 0.0; ///< fastest of REPS
    cycle_t simulatedCycles = 0;
    stat_t deliveries = 0;
    stat_t violations = 0;
    stat_t pairSamples = 0;
};

bool
fastMode()
{
    const char* v = std::getenv("GRAPHITE_BENCH_FAST");
    return v != nullptr && v[0] != '\0' && v[0] != '0';
}

RunResult
runConfig(const workloads::WorkloadInfo& w,
          const workloads::WorkloadParams& p, bool armed)
{
    RunResult out;
    out.armed = armed;
    out.wallSeconds = 1e30;
    for (int rep = 0; rep < REPS; ++rep) {
        Config cfg = defaultTargetConfig();
        cfg.setInt("general/total_tiles", TILES);
        cfg.setBool("accuracy/enabled", armed);
        Simulator sim(cfg);
        workloads::SimRunResult r = workloads::runSim(sim, w, p);
        out.wallSeconds = std::min(out.wallSeconds, r.wallSeconds);
        out.simulatedCycles = r.simulatedCycles;
        const auto& acc = obs::accuracy::AccuracyObservatory::instance();
        out.deliveries = acc.deliveries();
        out.violations = acc.violations();
        out.pairSamples = acc.pairSamples();
    }
    return out;
}

} // namespace
} // namespace graphite

int
main()
{
    using namespace graphite;

    const workloads::WorkloadInfo& w = workloads::findWorkload("fft");
    workloads::WorkloadParams p = w.defaults;
    p.threads = THREADS;
    if (fastMode())
        p.size = 512;

    std::printf("=== micro_accuracy_overhead ===\n");
    std::printf("Accuracy-observatory wall overhead on %s (size %d, "
                "%d threads, best of %d reps).\n\n",
                w.name.c_str(), p.size, p.threads, REPS);

    RunResult off = runConfig(w, p, false);
    RunResult on = runConfig(w, p, true);
    double slowdown = on.wallSeconds / off.wallSeconds;

    TextTable table;
    table.header({"accuracy", "wall s", "deliveries", "violations",
                  "pair samples"});
    for (const RunResult* r : {&off, &on}) {
        char wall[32];
        std::snprintf(wall, sizeof wall, "%.3f", r->wallSeconds);
        table.row({r->armed ? "armed" : "off", wall,
                   std::to_string(r->deliveries),
                   std::to_string(r->violations),
                   std::to_string(r->pairSamples)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("slowdown armed/off: %.2fx (criterion: <= 1.15x)\n",
                slowdown);

    bool observed = on.deliveries > 0 && off.deliveries == 0 &&
                    on.violations <= on.deliveries;
    if (!observed)
        std::printf("FAIL: observation counts wrong (off %lld, armed "
                    "%lld deliveries / %lld violations)\n",
                    static_cast<long long>(off.deliveries),
                    static_cast<long long>(on.deliveries),
                    static_cast<long long>(on.violations));

    FILE* f = std::fopen("BENCH_accuracy.json", "w");
    if (f == nullptr) {
        std::perror("BENCH_accuracy.json");
        return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"benchmark\": \"micro_accuracy_overhead\",\n");
    std::fprintf(f, "  \"workload\": \"%s\",\n", w.name.c_str());
    std::fprintf(f, "  \"size\": %d,\n", p.size);
    std::fprintf(f, "  \"threads\": %d,\n", p.threads);
    std::fprintf(f, "  \"reps\": %d,\n", REPS);
    std::fprintf(f, "  \"runs\": [\n");
    for (const RunResult* r : {&off, &on}) {
        std::fprintf(
            f,
            "    {\"accuracy\": \"%s\", \"wall_s\": %.6f, "
            "\"simulated_cycles\": %llu, \"deliveries\": %llu, "
            "\"violations\": %llu, \"pair_samples\": %llu}%s\n",
            r->armed ? "armed" : "off", r->wallSeconds,
            static_cast<unsigned long long>(r->simulatedCycles),
            static_cast<unsigned long long>(r->deliveries),
            static_cast<unsigned long long>(r->violations),
            static_cast<unsigned long long>(r->pairSamples),
            r == &off ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"slowdown_armed\": %.3f,\n", slowdown);
    std::fprintf(f, "  \"criterion\": \"slowdown_armed <= 1.15 && "
                    "armed deliveries > 0\",\n");
    std::fprintf(f, "  \"criterion_met\": %s\n",
                 slowdown <= 1.15 && observed ? "true" : "false");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote BENCH_accuracy.json\n");
    return slowdown <= 1.15 && observed ? 0 : 1;
}
