/**
 * @file
 * Host-overhead microbenchmark for the happens-before race detector
 * (src/race): the same memory-heavy multithreaded workload simulated
 * with the detector disarmed and armed, comparing wall time.
 *
 * The detector's cost model is one shadow-table probe per simulated
 * 4-byte word accessed, plus a sync-clock operation per atomic/lock/
 * barrier event — all on the host critical path of the functional
 * simulation. The headline criterion is slowdown_armed <= 3x, the
 * budget ISSUE/EXPERIMENTS.md advertises for leaving the oracle on in
 * fuzzing and CI runs (FastTrack itself reports ~8.5x on native
 * binaries; here the baseline already pays for simulation, so the
 * relative cost must be far smaller).
 *
 * Each configuration runs REPS times and keeps the fastest wall time
 * (host noise is one-sided). The armed run must also stay silent: a
 * report on this race-free workload would mean a detector false
 * positive, and fails the benchmark outright.
 *
 * Emits BENCH_race_overhead.json. GRAPHITE_BENCH_FAST=1 shrinks the
 * problem size for smoke runs.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/table.h"
#include "core/simulator.h"
#include "race/detector.h"
#include "workloads/registry.h"

namespace graphite
{
namespace
{

constexpr int TILES = 8;
constexpr int THREADS = 8;
constexpr int REPS = 3;

struct RunResult
{
    bool armed = false;
    double wallSeconds = 0.0; ///< fastest of REPS
    cycle_t simulatedCycles = 0;
    stat_t wordsChecked = 0;
    stat_t syncEdges = 0;
    stat_t shadowLines = 0;
    stat_t races = 0;
};

bool
fastMode()
{
    const char* v = std::getenv("GRAPHITE_BENCH_FAST");
    return v != nullptr && v[0] != '\0' && v[0] != '0';
}

RunResult
runConfig(const workloads::WorkloadInfo& w,
          const workloads::WorkloadParams& p, bool armed)
{
    RunResult out;
    out.armed = armed;
    out.wallSeconds = 1e30;
    for (int rep = 0; rep < REPS; ++rep) {
        Config cfg = defaultTargetConfig();
        cfg.setInt("general/total_tiles", TILES);
        cfg.setBool("race/enabled", armed);
        Simulator sim(cfg);
        workloads::SimRunResult r = workloads::runSim(sim, w, p);
        out.wallSeconds = std::min(out.wallSeconds, r.wallSeconds);
        out.simulatedCycles = r.simulatedCycles;
        const race::Detector& det = race::Detector::instance();
        out.wordsChecked = det.wordsChecked();
        out.syncEdges = det.syncEdges();
        out.shadowLines = det.shadowLines();
        out.races = det.raceCount();
    }
    return out;
}

} // namespace
} // namespace graphite

int
main()
{
    using namespace graphite;

    const workloads::WorkloadInfo& w = workloads::findWorkload("fft");
    workloads::WorkloadParams p = w.defaults;
    p.threads = THREADS;
    if (fastMode())
        p.size = 512;

    std::printf("=== micro_race_overhead ===\n");
    std::printf("Race-detector wall overhead on %s (size %d, %d "
                "threads, best of %d reps).\n\n",
                w.name.c_str(), p.size, p.threads, REPS);

    RunResult off = runConfig(w, p, false);
    RunResult on = runConfig(w, p, true);
    double slowdown = on.wallSeconds / off.wallSeconds;

    TextTable table;
    table.header({"detector", "wall s", "words checked", "sync edges",
                  "shadow lines", "races"});
    for (const RunResult* r : {&off, &on}) {
        char wall[32];
        std::snprintf(wall, sizeof wall, "%.3f", r->wallSeconds);
        table.row({r->armed ? "armed" : "off", wall,
                   std::to_string(r->wordsChecked),
                   std::to_string(r->syncEdges),
                   std::to_string(r->shadowLines),
                   std::to_string(r->races)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("slowdown armed/off: %.2fx (criterion: <= 3x)\n",
                slowdown);

    bool clean = on.races == 0;
    if (!clean)
        std::printf("FAIL: %lld report(s) on a race-free workload\n",
                    static_cast<long long>(on.races));

    FILE* f = std::fopen("BENCH_race_overhead.json", "w");
    if (f == nullptr) {
        std::perror("BENCH_race_overhead.json");
        return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"benchmark\": \"micro_race_overhead\",\n");
    std::fprintf(f, "  \"workload\": \"%s\",\n", w.name.c_str());
    std::fprintf(f, "  \"size\": %d,\n", p.size);
    std::fprintf(f, "  \"threads\": %d,\n", p.threads);
    std::fprintf(f, "  \"reps\": %d,\n", REPS);
    std::fprintf(f, "  \"runs\": [\n");
    for (const RunResult* r : {&off, &on}) {
        std::fprintf(
            f,
            "    {\"detector\": \"%s\", \"wall_s\": %.6f, "
            "\"simulated_cycles\": %llu, \"words_checked\": %llu, "
            "\"sync_edges\": %llu, \"shadow_lines\": %llu, "
            "\"races\": %llu}%s\n",
            r->armed ? "armed" : "off", r->wallSeconds,
            static_cast<unsigned long long>(r->simulatedCycles),
            static_cast<unsigned long long>(r->wordsChecked),
            static_cast<unsigned long long>(r->syncEdges),
            static_cast<unsigned long long>(r->shadowLines),
            static_cast<unsigned long long>(r->races),
            r == &off ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"slowdown_armed\": %.3f,\n", slowdown);
    std::fprintf(f, "  \"criterion\": \"slowdown_armed <= 3 && "
                    "races == 0\",\n");
    std::fprintf(f, "  \"criterion_met\": %s\n",
                 slowdown <= 3.0 && clean ? "true" : "false");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote BENCH_race_overhead.json\n");
    return slowdown <= 3.0 && clean ? 0 : 1;
}
