/**
 * @file
 * Experiment E1 — Figure 4: "Scaling of SPLASH benchmarks across
 * different numbers of [host] cores. Speed-up is normalized to a single
 * core. From 1 to 8 cores, simulation runs on a single machine. Above 8
 * cores, simulation is distributed across multiple machines."
 *
 * One functional run per benchmark (32 target tiles, 32 threads, Lax)
 * produces the event profile; the host model evaluates the cluster
 * layouts (1 machine at 1/2/4/8 cores, then 2/4/8 machines of 8 cores —
 * 16/32/64 host cores). See DESIGN.md substitution 2.
 */

#include <vector>

#include "bench_common.h"

using namespace graphite;

int
main()
{
    bench::banner(
        "Figure 4 — simulator speedup vs host cores",
        "Speed-up of each SPLASH simulation normalized to one host "
        "core; machine boundary at 8 cores (8 cores/machine).");

    const std::vector<std::string> apps = {
        "cholesky",       "fft",        "fmm",
        "lu_cont",        "lu_non_cont", "ocean_cont",
        "ocean_non_cont", "radix",      "water_nsquared",
        "water_spatial"};
    // (machines, cores per machine) — the paper's x-axis points.
    const std::vector<std::pair<int, int>> points = {
        {1, 1}, {1, 2}, {1, 4}, {1, 8}, {2, 8}, {4, 8}, {8, 8}};

    TextTable table;
    table.header({"benchmark", "1", "2", "4", "8", "16", "32", "64"});

    for (const std::string& app : apps) {
        workloads::WorkloadParams p =
            workloads::findWorkload(app).defaults;
        p.threads = 32;
        Config cfg = bench::benchConfig(32);
        bench::ScaleFactors sf = bench::paperScale(app);
        SimulationProfile prof = scaleProfile(
            bench::profileRun(app, cfg, p), sf.compute, sf.comm);
        HostModel host(HostCosts::fromConfig(cfg));

        std::vector<std::string> row = {app};
        double base = 0;
        for (auto [machines, cores] : points) {
            HostEstimate est = host.estimate(prof, machines, cores);
            // Scaling excludes fixed startup (the paper normalizes
            // runtime of the simulation work).
            double t = est.totalSeconds - est.initSeconds;
            if (base == 0)
                base = t;
            row.push_back(TextTable::num(base / t, 2));
        }
        table.row(row);
    }

    std::printf("%s\n", table.render().c_str());
    std::printf("Host cores: 1-8 on one machine, 16/32/64 on 2/4/8 "
                "machines.\nExpected shape: near-linear within one "
                "machine; communication-bound\napps (fft) flatten or "
                "dip at the 8->16 machine boundary.\n");
    return 0;
}
