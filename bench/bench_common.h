/**
 * @file
 * Shared helpers for the experiment harnesses (one binary per paper
 * table/figure; see DESIGN.md's per-experiment index).
 *
 * Every harness prints (a) the experiment id it regenerates, (b) an
 * aligned table with the same rows/series the paper reports, and (c)
 * a short interpretation note. Environment variable GRAPHITE_BENCH_FAST
 * shrinks run counts for quick CI-style passes.
 */

#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/config.h"
#include "common/table.h"
#include "core/simulator.h"
#include "host/host_model.h"
#include "workloads/registry.h"

namespace graphite
{
namespace bench
{

/** True when a fast (reduced-repetition) run is requested. */
inline bool
fastMode()
{
    const char* v = std::getenv("GRAPHITE_BENCH_FAST");
    return v != nullptr && v[0] != '\0' && v[0] != '0';
}

/** Standard experiment banner. */
inline void
banner(const std::string& experiment, const std::string& description)
{
    std::printf("=== %s ===\n%s\n\n", experiment.c_str(),
                description.c_str());
}

/** Target config for a bench run (Table 1 defaults + overrides). */
inline Config
benchConfig(int tiles, int processes = 1)
{
    Config cfg = defaultTargetConfig();
    cfg.setInt("general/total_tiles", tiles);
    cfg.setInt("general/num_processes", processes);
    return cfg;
}

/**
 * Extrapolation factors from our reduced inputs to the paper's SPLASH-2
 * default problem sizes (compute = asymptotic op-count ratio, comm =
 * sharing-surface ratio); derivations in EXPERIMENTS.md. Used by the
 * Figure 4 / Table 2 harnesses before host-model evaluation.
 */
struct ScaleFactors
{
    double compute;
    double comm;
};

inline ScaleFactors
paperScale(const std::string& app)
{
    // paper default size vs our default size; compute ~ op count ratio,
    // comm ~ shared-surface ratio (see EXPERIMENTS.md table).
    if (app == "cholesky") return {1100, 110};        // tk29.O ~ n=1000 dense-equiv vs 96
    if (app == "fft") return {47, 32};                // 64K points vs 2K
    if (app == "fmm") return {85, 20};                // 16K particles vs 192
    if (app == "lu_cont") return {150, 28};           // 512x512 vs 96x96
    if (app == "lu_non_cont") return {150, 28};
    if (app == "ocean_cont") return {72, 27};         // 258^2 x many steps vs 96^2 x 4
    if (app == "ocean_non_cont") return {72, 27};
    if (app == "radix") return {512, 30};             // 8.4M keys vs 16K
    if (app == "water_nsquared") return {28, 5};      // 512 molecules vs 96
    if (app == "water_spatial") return {8, 3};        // 512 molecules vs 256
    if (app == "barnes") return {128, 16};            // 16K particles vs 128
    if (app == "matmul") return {37, 11};             // 320^2 elements vs 96^2
    if (app == "blackscholes") return {16, 4};        // simsmall 4K vs 1K x4 runs
    return {1, 1};
}

/** Run a workload functionally and capture the host-model profile. */
inline SimulationProfile
profileRun(const std::string& workload, Config cfg,
           workloads::WorkloadParams params,
           workloads::SimRunResult* result_out = nullptr)
{
    const workloads::WorkloadInfo& w = workloads::findWorkload(workload);
    Simulator sim(std::move(cfg));
    workloads::SimRunResult r = workloads::runSim(sim, w, params);
    if (result_out != nullptr)
        *result_out = r;
    return SimulationProfile::capture(sim, r.wallSeconds);
}

} // namespace bench
} // namespace graphite
