/**
 * @file
 * Ablation A3 — LaxP2P slack sweep (paper §3.6.3 / §4.3).
 *
 * "The slack value for LaxP2P was chosen to give a good trade-off
 * between performance and accuracy, which was determined to be 100,000
 * cycles." Sweeps the slack and reports the trade-off curve: wall-clock
 * cost (sleep time) against deviation from the LaxBarrier reference.
 */

#include <cmath>

#include "bench_common.h"

using namespace graphite;

namespace
{

struct Sample
{
    cycle_t cycles = 0;
    double wall = 0;
    stat_t sleeps = 0;
    stat_t sleepMicros = 0;
};

Sample
run(const std::string& model, cycle_t slack)
{
    workloads::WorkloadParams p =
        workloads::findWorkload("ocean_cont").defaults;
    p.threads = 32;

    Config cfg = bench::benchConfig(32);
    cfg.set("sync/model", model);
    cfg.setInt("sync/slack", static_cast<std::int64_t>(slack));
    cfg.setInt("sync/quantum", 1000);

    const workloads::WorkloadInfo& w =
        workloads::findWorkload("ocean_cont");
    Simulator sim(std::move(cfg));
    workloads::SimRunResult r = workloads::runSim(sim, w, p);
    return Sample{r.simulatedCycles, r.wallSeconds,
                  sim.syncModel().syncEvents(),
                  sim.syncModel().syncWaitMicroseconds()};
}

} // namespace

int
main()
{
    bench::banner("Ablation — LaxP2P slack sweep",
                  "ocean_cont, 32 tiles; accuracy/performance trade-off "
                  "vs the slack parameter.");

    Sample reference = run("lax_barrier", 0);
    Sample lax = run("lax", 0);

    TextTable table;
    table.header({"slack (cycles)", "sim cycles", "error vs barrier",
                  "wall(s)", "sleeps", "slept(ms)"});
    auto err = [&](cycle_t cycles) {
        return TextTable::num(
                   100.0 *
                       std::fabs(static_cast<double>(cycles) -
                                 static_cast<double>(reference.cycles)) /
                       static_cast<double>(reference.cycles),
                   2) +
               "%";
    };

    for (cycle_t slack : {1000ull, 10000ull, 100000ull, 1000000ull}) {
        Sample s = run("lax_p2p", slack);
        table.row({std::to_string(slack), std::to_string(s.cycles),
                   err(s.cycles), TextTable::num(s.wall, 3),
                   std::to_string(s.sleeps),
                   TextTable::num(s.sleepMicros / 1000.0, 1)});
    }
    table.row({"(lax)", std::to_string(lax.cycles), err(lax.cycles),
               TextTable::num(lax.wall, 3), "0", "0"});
    table.row({"(barrier ref)", std::to_string(reference.cycles), "0%",
               TextTable::num(reference.wall, 3), "-", "-"});

    std::printf("%s\n", table.render().c_str());
    std::printf("Expected: small slack -> barrier-like accuracy but "
                "more sleeping; large\nslack -> approaches plain Lax. "
                "The paper picked 100k cycles.\n");
    return 0;
}
