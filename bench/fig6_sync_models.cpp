/**
 * @file
 * Experiment E4 — Figure 6 + Table 3: performance and accuracy of the
 * synchronization models (Lax, LaxP2P, LaxBarrier) on one and four
 * host processes.
 *
 * For each (app, model, processes) cell the harness repeats the
 * simulation and reports:
 *   - run-time: measured wall-clock (this host) and the host-model
 *     estimate for 1 and 4 machines,
 *   - error: % deviation of mean simulated run-time (cycles) from the
 *     LaxBarrier single-process baseline (the paper's reference for
 *     near-cycle-accurate behavior),
 *   - CoV: run-to-run coefficient of variation of simulated cycles.
 *
 * Barrier quantum 1000 cycles and LaxP2P slack 100k cycles, the paper's
 * choices (§4.3).
 */

#include <cmath>
#include <map>
#include <vector>

#include "bench_common.h"

using namespace graphite;

namespace
{

struct CellStats
{
    double meanCycles = 0;
    double cov = 0;
    double meanWall = 0;
    double est1mc = 0;
    double est4mc = 0;
};

CellStats
runCell(const std::string& app, const std::string& model, int procs,
        int runs)
{
    std::vector<double> cycles, walls;
    double est1 = 0, est4 = 0;
    for (int r = 0; r < runs; ++r) {
        workloads::WorkloadParams p =
            workloads::findWorkload(app).defaults;
        p.threads = 32;
        p.size = app == "radix" ? 8192 : 48;
        p.iters = app == "ocean_cont" ? 3 : p.iters;
        // Identical inputs every run ("ten runs ... using the same
        // parameters"); variation comes from host thread interleaving.
        (void)r;

        Config cfg = bench::benchConfig(32, procs);
        cfg.set("sync/model", model);
        cfg.setInt("sync/quantum", 1000);
        cfg.setInt("sync/slack", 100000);

        workloads::SimRunResult res;
        SimulationProfile prof =
            bench::profileRun(app, cfg, p, &res);
        cycles.push_back(static_cast<double>(res.simulatedCycles));
        walls.push_back(res.wallSeconds);
        if (r == 0) {
            HostModel host(HostCosts::fromConfig(cfg));
            est1 = host.estimate(prof, 1).totalSeconds -
                   host.estimate(prof, 1).initSeconds;
            est4 = host.estimate(prof, 4).totalSeconds -
                   host.estimate(prof, 4).initSeconds;
        }
    }

    CellStats out;
    for (size_t i = 0; i < cycles.size(); ++i) {
        out.meanCycles += cycles[i];
        out.meanWall += walls[i];
    }
    out.meanCycles /= static_cast<double>(cycles.size());
    out.meanWall /= static_cast<double>(walls.size());
    double var = 0;
    for (double c : cycles)
        var += (c - out.meanCycles) * (c - out.meanCycles);
    var /= static_cast<double>(cycles.size());
    out.cov = out.meanCycles > 0
                  ? std::sqrt(var) / out.meanCycles * 100.0
                  : 0.0;
    out.est1mc = est1;
    out.est4mc = est4;
    return out;
}

} // namespace

int
main()
{
    const int runs = bench::fastMode() ? 3 : 10;
    bench::banner(
        "Figure 6 / Table 3 — synchronization model comparison",
        "lu_cont, ocean_cont, radix; 32 tiles; " +
            std::to_string(runs) +
            " runs per cell. Error is % deviation of simulated cycles "
            "from the\nLaxBarrier 1-process baseline; CoV is run-to-run "
            "variation.");

    const std::vector<std::string> apps = {"lu_cont", "ocean_cont",
                                           "radix"};
    const std::vector<std::string> models = {"lax", "lax_p2p",
                                             "lax_barrier"};

    TextTable table;
    table.header({"app", "model", "procs", "sim cycles", "error%",
                  "CoV%", "wall(s)", "est 1mc(s)", "est 4mc(s)"});

    // Aggregates across apps for the Table 3 style summary.
    struct Agg
    {
        double err = 0, cov = 0, wall1 = 0, wall4 = 0;
        int n = 0;
    };
    std::map<std::string, Agg> agg;

    for (const std::string& app : apps) {
        CellStats baseline = runCell(app, "lax_barrier", 1, runs);
        for (const std::string& model : models) {
            for (int procs : {1, 4}) {
                CellStats c = (model == "lax_barrier" && procs == 1)
                                  ? baseline
                                  : runCell(app, model, procs, runs);
                double err = std::fabs(c.meanCycles -
                                       baseline.meanCycles) /
                             baseline.meanCycles * 100.0;
                table.row({app, model, std::to_string(procs),
                           TextTable::num(c.meanCycles, 0),
                           TextTable::num(err, 2),
                           TextTable::num(c.cov, 2),
                           TextTable::num(c.meanWall, 3),
                           TextTable::num(c.est1mc, 3),
                           TextTable::num(c.est4mc, 3)});
                Agg& a = agg[model];
                a.err += err;
                a.cov += c.cov;
                a.wall1 += procs == 1 ? c.meanWall : 0;
                a.wall4 += procs == 4 ? c.meanWall : 0;
                a.n += 1;
            }
        }
    }
    std::printf("%s\n", table.render().c_str());

    TextTable summary;
    summary.header({"model", "mean error%", "mean CoV%"});
    for (const std::string& model : models) {
        const Agg& a = agg[model];
        summary.row({model, TextTable::num(a.err / a.n, 2),
                     TextTable::num(a.cov / a.n, 2)});
    }
    std::printf("%s\n", summary.render().c_str());
    std::printf(
        "Expected shape (paper Table 3): Lax worst error (7.56%%) and "
        "CoV (0.58%%);\nLaxP2P error ~1.3%%; LaxBarrier best CoV; Lax "
        "fastest, LaxBarrier slowest.\n");
    return 0;
}
