/**
 * @file
 * Ablation A2 — global-progress window size (paper §3.6.1).
 *
 * "A window of the most recently-seen time-stamps is kept, on the order
 * of the number of tiles in the simulation... The large window is
 * necessary to eliminate outliers from overly influencing the result."
 *
 * Sweeps the window size and reports the queue model's health: how many
 * arrivals had to be clamped as outliers, how often the back-pressure
 * bound engaged, and the resulting simulated run-time stability.
 */

#include "bench_common.h"

using namespace graphite;

int
main()
{
    bench::banner("Ablation — global-progress window size",
                  "water_spatial, 32 tiles, Lax; queue-model clamping "
                  "vs window size.");

    TextTable table;
    table.header({"window", "sim cycles", "clamped arrivals",
                  "saturations", "avg dram qdelay"});

    for (int window : {1, 4, 16, 32, 64, 256}) {
        workloads::WorkloadParams p =
            workloads::findWorkload("water_spatial").defaults;
        p.threads = 32;

        Config cfg = bench::benchConfig(32);
        cfg.setInt("network/queue_model_window", window);

        const workloads::WorkloadInfo& w =
            workloads::findWorkload("water_spatial");
        Simulator sim(std::move(cfg));
        workloads::SimRunResult r = workloads::runSim(sim, w, p);

        stat_t clamped = 0, sat = 0, delay = 0, reqs = 0;
        for (tile_id_t t = 0; t < sim.totalTiles(); ++t) {
            DramController& dram = sim.memory().dram(t);
            delay += dram.totalQueueDelay();
            reqs += dram.accesses();
            clamped += dram.clampedArrivals();
            sat += dram.saturations();
        }
        table.row({std::to_string(window),
                   std::to_string(r.simulatedCycles),
                   std::to_string(clamped), std::to_string(sat),
                   TextTable::num(reqs ? static_cast<double>(delay) /
                                             static_cast<double>(reqs)
                                       : 0,
                                  1)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf(
        "Expected: windows on the order of the tile count (the paper's "
        "choice) track\nprogress best; much larger windows make the "
        "estimate stale, inflating arrival\nclamping, back-pressure "
        "saturations, and modeled queueing delay.\n");
    return 0;
}
