/**
 * @file
 * Experiment E5 — Figure 7: "Clock skew in simulated cycles during the
 * course of simulation for various synchronization models. Data
 * collected running the fmm SPLASH2 benchmark."
 *
 * A SkewTracker samples every tile's clock at the periodic sync checks;
 * afterwards the run is split into wall-clock intervals and the max/min
 * deviation from the interval's mean ("global clock") is reported —
 * the paper's methodology (§4.3).
 */

#include <vector>

#include "bench_common.h"
#include "sync/skew_tracker.h"

using namespace graphite;

int
main()
{
    bench::banner(
        "Figure 7 — clock skew over time per synchronization model",
        "barnes, 32 tiles, 32 threads; skew = tile clock minus snapshot "
        "mean, in cycles.");

    const int intervals = 10;
    for (const char* model_name : {"lax", "lax_p2p", "lax_barrier"}) {
        std::string model = model_name;
        // The paper traced fmm; our simplified fmm kernel has very short
        // barrier-to-barrier phases at reproduction scale, which bounds
        // skew for every model. barnes (same SPLASH n-body family) has
        // long barrier-free force phases where the models' drift
        // control actually differentiates.
        workloads::WorkloadParams p =
            workloads::findWorkload("barnes").defaults;
        p.threads = 32;
        p.size = 512;
        p.iters = 2;

        Config cfg = bench::benchConfig(32);
        cfg.set("sync/model", model);
        cfg.setInt("sync/quantum", 1000);
        cfg.setInt("sync/slack", 100000);

        Simulator sim(std::move(cfg));
        SkewTracker tracker(200);
        sim.attachSkewTracker(&tracker);
        workloads::runSim(sim, workloads::findWorkload("barnes"), p);

        std::printf("--- %s (%zu samples) ---\n", model.c_str(),
                    tracker.sampleCount());
        TextTable table;
        table.header({"interval", "max skew (cycles)",
                      "min skew (cycles)"});
        double worst = 0;
        for (const SkewTracker::Interval& iv :
             tracker.analyze(intervals)) {
            table.row({TextTable::num(iv.wallSeconds, 3),
                       TextTable::num(iv.maxSkew, 0),
                       TextTable::num(iv.minSkew, 0)});
            worst = std::max({worst, iv.maxSkew, -iv.minSkew});
        }
        std::printf("%s  worst |skew| = %.0f cycles\n\n",
                    table.render().c_str(), worst);
    }
    std::printf(
        "Expected shape (paper Fig. 7): Lax skew largest by orders of "
        "magnitude;\nLaxP2P bounded near the slack (~1e4-1e5 cycles); "
        "LaxBarrier smallest and\nroughly constant.\n");
    return 0;
}
