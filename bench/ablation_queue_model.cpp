/**
 * @file
 * Ablation A1 — contention modeling (DESIGN.md §3.6.1 design choice).
 *
 * The paper's queue-clock scheme is what makes contention modelable at
 * all under lax synchronization. This ablation removes it piecewise and
 * shows the effect on simulated run-time and on modeled memory latency:
 *
 *   - magic network + no DRAM queue  (latency: fixed costs only)
 *   - emesh_hop + no DRAM queue      (distance, no contention)
 *   - emesh_contention + DRAM queue  (the full model, the default)
 */

#include "bench_common.h"

using namespace graphite;

int
main()
{
    bench::banner(
        "Ablation — network/DRAM contention modeling",
        "radix + ocean_cont, 32 tiles; what the §3.6.1 queue model "
        "contributes.");

    struct Variant
    {
        const char* label;
        const char* net;
        bool dramQueue;
    };
    const Variant variants[] = {
        {"magic net, no queues", "magic", false},
        {"mesh hops only", "emesh_hop", false},
        {"mesh + contention (default)", "emesh_contention", true},
    };

    for (const char* app : {"radix", "ocean_cont"}) {
        TextTable table;
        table.header({"model", "sim cycles", "avg mem lat",
                      "net packets"});
        for (const Variant& v : variants) {
            workloads::WorkloadParams p =
                workloads::findWorkload(app).defaults;
            p.threads = 32;

            Config cfg = bench::benchConfig(32);
            cfg.set("network/memory_model", v.net);
            cfg.set("network/app_model", v.net);
            cfg.setBool("perf_model/dram/queue_model_enabled",
                        v.dramQueue);

            const workloads::WorkloadInfo& w =
                workloads::findWorkload(app);
            Simulator sim(std::move(cfg));
            workloads::SimRunResult r = workloads::runSim(sim, w, p);

            stat_t acc = 0, lat = 0;
            for (tile_id_t t = 0; t < sim.totalTiles(); ++t) {
                acc += sim.memory().stats(t).totalAccesses;
                lat += sim.memory().stats(t).totalLatency;
            }
            table.row(
                {v.label, std::to_string(r.simulatedCycles),
                 TextTable::num(acc ? static_cast<double>(lat) / acc
                                    : 0,
                                1),
                 std::to_string(sim.fabric()
                                    .modelFor(PacketType::Memory)
                                    .packetsRouted())});
        }
        std::printf("--- %s ---\n%s\n", app, table.render().c_str());
    }
    std::printf("Expected: each modeling layer adds latency; contention "
                "matters most for\nthe scatter-heavy radix.\n");
    return 0;
}
