/**
 * @file
 * Experiment E7 — Figure 9: "Different cache coherency schemes are
 * compared using speedup relative to simulated single-tile execution in
 * blackscholes by scaling target tile count."
 *
 * Schemes: Dir4NB, Dir16NB, full-map directory, LimitLESS(4) — §4.4.
 * Expected shape: full-map and LimitLESS track each other and scale
 * until parallelization overhead (per-controller DRAM bandwidth
 * splitting, network distance) catches up; Dir4NB stops scaling beyond
 * ~4 tiles and Dir16NB beyond ~16, because heavily shared read-only
 * lines are constantly evicted from the limited sharer pointers.
 */

#include <vector>

#include "bench_common.h"

using namespace graphite;

int
main()
{
    bench::banner(
        "Figure 9 — coherence schemes, blackscholes speedup vs tiles",
        "Speedup of simulated run-time relative to the same scheme's "
        "single-tile run.");

    struct Scheme
    {
        const char* label;
        const char* type;
        int sharers;
    };
    const std::vector<Scheme> schemes = {
        {"Dir4NB", "limited_no_broadcast", 4},
        {"Dir16NB", "limited_no_broadcast", 16},
        {"Full-map", "full_map", 0},
        {"LimitLESS(4)", "limitless", 4},
    };
    std::vector<int> tile_counts = {1, 2, 4, 8, 16, 32, 64};
    if (!bench::fastMode()) {
        tile_counts.push_back(128);
        tile_counts.push_back(256);
    }

    TextTable table;
    {
        std::vector<std::string> hdr = {"scheme"};
        for (int n : tile_counts)
            hdr.push_back(std::to_string(n));
        table.header(hdr);
    }

    for (const Scheme& s : schemes) {
        std::vector<std::string> row = {s.label};
        double base_cycles = 0;
        for (int tiles : tile_counts) {
            workloads::WorkloadParams p =
                workloads::findWorkload("blackscholes").defaults;
            p.threads = tiles;
            p.size = 4096; // PARSEC simsmall option count; strong scaling
            p.iters = 2;

            Config cfg = bench::benchConfig(tiles);
            cfg.set("caching_protocol/directory_type", s.type);
            if (s.sharers > 0)
                cfg.setInt("caching_protocol/max_sharers", s.sharers);

            workloads::SimRunResult res;
            bench::profileRun("blackscholes", cfg, p, &res);
            // Parallel region only: the serial input generation and
            // checksum scaffolding would otherwise Amdahl-cap speedup.
            double cycles = static_cast<double>(
                res.regionCycles > 0 ? res.regionCycles
                                     : res.simulatedCycles);
            if (tiles == 1)
                base_cycles = cycles;
            row.push_back(TextTable::num(base_cycles / cycles, 2));
        }
        table.row(row);
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Expected shape (paper Fig. 9): full-map ~= LimitLESS, "
                "near-perfect to 32\ntiles then flattening; Dir4NB "
                "stalls beyond 4 tiles, Dir16NB beyond 16.\n");
    return 0;
}
