/**
 * @file
 * Experiment E2 — Table 2: "Multi-Machine Scaling Results. Wall-clock
 * execution time of SPLASH-2 simulations versus native across 1 and 8
 * host machines."
 *
 * Native time is modeled for the paper's 8-core 3.16 GHz host from the
 * retired-instruction profile (and the real single-core wall time of the
 * native build is printed for reference). Simulation times come from the
 * host model at 1 and 8 machines. Slowdown = simulated / native.
 */

#include <algorithm>
#include <chrono>
#include <vector>

#include "bench_common.h"

using namespace graphite;

int
main()
{
    bench::banner(
        "Table 2 — simulation slowdown vs native (1 and 8 machines)",
        "32 target tiles, 32 worker threads, Lax synchronization.");

    const std::vector<std::string> apps = {
        "cholesky",       "fft",        "fmm",
        "lu_cont",        "lu_non_cont", "ocean_cont",
        "ocean_non_cont", "radix",      "water_nsquared",
        "water_spatial"};

    TextTable table;
    table.header({"application", "native(s)", "sim 1mc(s)",
                  "slowdown 1mc", "sim 8mc(s)", "slowdown 8mc"});

    std::vector<double> slow1, slow8;
    for (const std::string& app : apps) {
        workloads::WorkloadParams p =
            workloads::findWorkload(app).defaults;
        p.threads = 32;
        Config cfg = bench::benchConfig(32);
        bench::ScaleFactors sf = bench::paperScale(app);
        SimulationProfile prof = scaleProfile(
            bench::profileRun(app, cfg, p), sf.compute, sf.comm);
        HostModel host(HostCosts::fromConfig(cfg));

        double native = host.nativeSeconds(prof);
        double sim1 =
            host.estimate(prof, 1).totalSeconds -
            host.estimate(prof, 1).initSeconds;
        double sim8 =
            host.estimate(prof, 8).totalSeconds -
            host.estimate(prof, 8).initSeconds;
        slow1.push_back(sim1 / native);
        slow8.push_back(sim8 / native);

        table.row({app, TextTable::num(native, 6),
                   TextTable::num(sim1, 4),
                   TextTable::num(sim1 / native, 0) + "x",
                   TextTable::num(sim8, 4),
                   TextTable::num(sim8 / native, 0) + "x"});
    }

    auto mean = [](const std::vector<double>& v) {
        double s = 0;
        for (double x : v)
            s += x;
        return s / static_cast<double>(v.size());
    };
    auto median = [](std::vector<double> v) {
        std::sort(v.begin(), v.end());
        size_t n = v.size();
        return n % 2 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
    };
    table.row({"mean", "", "", TextTable::num(mean(slow1), 0) + "x", "",
               TextTable::num(mean(slow8), 0) + "x"});
    table.row({"median", "", "", TextTable::num(median(slow1), 0) + "x",
               "", TextTable::num(median(slow8), 0) + "x"});

    std::printf("%s\n", table.render().c_str());
    std::printf("Expected shape: slowdowns from tens to thousands x, "
                "8-machine slowdowns\nlower than 1-machine for most "
                "apps, communication-bound apps improving least.\n");
    return 0;
}
