/**
 * @file
 * Host-parallelism microbenchmark for the execution scheduler
 * (src/host/scheduler): a shared-line contention workload through the
 * full Simulator, run with the scheduler off (legacy reference) and in
 * free_running mode at host/threads = 1, 2 and 4.
 *
 * What the numbers mean depends on the host:
 *
 *  - host with >= 2 CPUs: wall speedup of the wide pool over the
 *    1-slot pool is the paper's headline claim (§4.1, Fig. 4) in
 *    miniature — simulated work actually overlaps on the host.
 *  - 1-CPU host (common for CI containers): no wall speedup is
 *    possible from any scheduler. The honest criterion is overhead:
 *    the 1-slot pool must cost <= 1.15x the scheduler-off reference,
 *    i.e. the slot/quantum machinery is cheap enough to leave on.
 *
 * The emitted BENCH_parallel_scaling.json records every run plus the
 * CPU-count-conditional criterion so the perf trajectory stays
 * comparable across differently-provisioned hosts.
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/config.h"
#include "common/table.h"
#include "core/api.h"
#include "core/simulator.h"
#include "host/scheduler.h"

namespace graphite
{
namespace
{

constexpr int WORKERS = 4; // main + 3 spawned, one per tile
/**
 * Scheduling quantum for every pool run. Each slot handoff on an
 * oversubscribed host is an OS context switch (~5us); 50k simulated
 * cycles per quantum amortizes that below the 1.15x overhead budget,
 * where the 10k default left the 1-slot pool at ~1.4x (see
 * EXPERIMENTS.md for the sweep).
 */
constexpr cycle_t kQuantum = 50000;

bool
fastMode()
{
    const char* v = std::getenv("GRAPHITE_BENCH_FAST");
    return v != nullptr && v[0] != '\0' && v[0] != '0';
}

int
itersPerWorker()
{
    return fastMode() ? 2000 : 20000;
}

struct Workload
{
    addr_t base = 0;
    std::atomic<int> ran{0};
};

void
worker(void* p)
{
    auto* w = static_cast<Workload*>(p);
    w->ran.fetch_add(1);
    tile_id_t self = api::tileId();
    const int iters = itersPerWorker();
    for (int i = 0; i < iters; ++i) {
        api::exec(InstrClass::IntAlu, 200);
        // Shared-line reads plus a private-slot write: coherence
        // traffic through the MCP and the memory engine, the mix the
        // pool has to interleave without serializing.
        std::uint32_t v = api::read<std::uint32_t>(w->base);
        api::write<std::uint32_t>(w->base + 64 + 4 * self, v + 1);
    }
}

void
appMain(void* p)
{
    auto* w = static_cast<Workload*>(p);
    w->base = api::malloc(256);
    api::write<std::uint32_t>(w->base, 1);
    std::vector<tile_id_t> tids;
    for (int i = 0; i < WORKERS - 1; ++i)
        tids.push_back(api::threadSpawn(&worker, p));
    worker(p);
    for (tile_id_t t : tids)
        api::threadJoin(t);
    api::free(w->base);
}

struct RunResult
{
    std::string scheduler;
    int hostThreads = 0; // 0 for scheduler=off
    double wallSeconds = 0.0;
    cycle_t simCycles = 0;
    stat_t quanta = 0;
    stat_t yields = 0;
};

RunResult
runPoint(const std::string& scheduler, int host_threads, int reps)
{
    RunResult best;
    best.scheduler = scheduler;
    best.hostThreads = host_threads;
    for (int rep = 0; rep < reps; ++rep) {
        Config cfg = defaultTargetConfig();
        cfg.setInt("general/total_tiles", WORKERS);
        cfg.set("host/scheduler", scheduler);
        if (host_threads > 0)
            cfg.setInt("host/threads", host_threads);
        cfg.setInt("host/quantum_cycles", kQuantum);
        Simulator sim(cfg);
        Workload w;
        auto t0 = std::chrono::steady_clock::now();
        sim.run(&appMain, &w);
        auto t1 = std::chrono::steady_clock::now();
        if (w.ran.load() != WORKERS)
            std::abort();
        double wall = std::chrono::duration<double>(t1 - t0).count();
        if (rep == 0 || wall < best.wallSeconds) {
            best.wallSeconds = wall;
            best.simCycles = sim.simulatedTime();
            if (host::HostScheduler* s = sim.hostScheduler()) {
                best.quanta = s->quantaCounter()->load();
                best.yields = s->yieldsCounter()->load();
            }
        }
    }
    return best;
}

} // namespace
} // namespace graphite

int
main()
{
    using namespace graphite;

    const unsigned cpus = std::thread::hardware_concurrency();
    const int reps = fastMode() ? 2 : 3;

    std::printf("=== micro_parallel_scaling ===\n");
    std::printf("Scheduler wall-clock scaling on a %d-thread "
                "shared-line workload.\nHost CPUs: %u (criterion is "
                "CPU-count-conditional; min wall of %d reps).\n\n",
                WORKERS, cpus, reps);

    std::vector<RunResult> results;
    results.push_back(runPoint("off", 0, reps));
    for (int ht : {1, 2, 4})
        results.push_back(runPoint("free_running", ht, reps));

    TextTable table;
    table.header({"scheduler", "host_threads", "wall s", "sim cycles",
                  "quanta", "yields"});
    for (const RunResult& r : results) {
        char wall[32];
        std::snprintf(wall, sizeof wall, "%.3f", r.wallSeconds);
        table.row({r.scheduler,
                   r.hostThreads > 0 ? std::to_string(r.hostThreads)
                                     : std::string("-"),
                   wall, std::to_string(r.simCycles),
                   std::to_string(r.quanta),
                   std::to_string(r.yields)});
    }
    std::printf("%s\n", table.render().c_str());

    auto find = [&](const std::string& s, int ht) -> const RunResult& {
        for (const RunResult& r : results)
            if (r.scheduler == s && r.hostThreads == ht)
                return r;
        std::abort();
    };
    const RunResult& off = find("off", 0);
    const RunResult& f1 = find("free_running", 1);
    const RunResult& f4 = find("free_running", 4);
    double wall_speedup_4t = f1.wallSeconds / f4.wallSeconds;
    double overhead_ratio_1cpu = f1.wallSeconds / off.wallSeconds;

    const char* criterion;
    bool met;
    if (cpus >= 4) {
        criterion = "wall_speedup_4t >= 2.0 (host has >= 4 CPUs)";
        met = wall_speedup_4t >= 2.0;
    } else if (cpus >= 2) {
        criterion = "wall_speedup_4t >= 1.2 (host has 2-3 CPUs)";
        met = wall_speedup_4t >= 1.2;
    } else {
        criterion =
            "overhead_ratio_1cpu <= 1.15 (1-CPU host: no wall speedup "
            "possible, scheduler must be near-free)";
        met = overhead_ratio_1cpu <= 1.15;
    }
    std::printf("wall speedup ht=4 vs ht=1: %.2fx\n", wall_speedup_4t);
    std::printf("overhead ratio ht=1 vs scheduler off: %.2fx\n",
                overhead_ratio_1cpu);
    std::printf("criterion: %s -> %s\n", criterion,
                met ? "MET" : "NOT MET");

    FILE* f = std::fopen("BENCH_parallel_scaling.json", "w");
    if (f == nullptr) {
        std::perror("BENCH_parallel_scaling.json");
        return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"benchmark\": \"micro_parallel_scaling\",\n");
    std::fprintf(f,
                 "  \"workload\": \"%d threads, shared-line read + "
                 "private write, %d iters/thread\",\n",
                 WORKERS, itersPerWorker());
    std::fprintf(f, "  \"host_cpus\": %u,\n", cpus);
    std::fprintf(f, "  \"reps\": %d,\n", reps);
    std::fprintf(f, "  \"quantum_cycles\": %llu,\n",
                 static_cast<unsigned long long>(kQuantum));
    std::fprintf(f, "  \"runs\": [\n");
    for (size_t i = 0; i < results.size(); ++i) {
        const RunResult& r = results[i];
        std::fprintf(
            f,
            "    {\"scheduler\": \"%s\", \"host_threads\": %d, "
            "\"wall_s\": %.6f, \"sim_cycles\": %llu, \"quanta\": %llu, "
            "\"yields\": %llu}%s\n",
            r.scheduler.c_str(), r.hostThreads, r.wallSeconds,
            static_cast<unsigned long long>(r.simCycles),
            static_cast<unsigned long long>(r.quanta),
            static_cast<unsigned long long>(r.yields),
            i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"wall_speedup_4t\": %.3f,\n", wall_speedup_4t);
    std::fprintf(f, "  \"overhead_ratio_1cpu\": %.3f,\n",
                 overhead_ratio_1cpu);
    std::fprintf(f, "  \"criterion\": \"%s\",\n", criterion);
    std::fprintf(f, "  \"criterion_met\": %s\n", met ? "true" : "false");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote BENCH_parallel_scaling.json\n");
    return met ? 0 : 1;
}
