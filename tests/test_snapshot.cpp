/**
 * @file
 * Checkpoint/restore test suite (src/snapshot):
 *
 *  - SnapshotStream:     writer/reader round trips and every malformed-
 *                        input failure mode (truncation, corruption,
 *                        bad magic, version mismatch, trailing bytes).
 *  - SnapshotCheckpoint: whole-simulator save→restore→save byte
 *                        identity, config-drift rejection, file I/O,
 *                        and fork-isolated no-crash restores of
 *                        deliberately damaged checkpoints.
 *  - SnapshotSmoke:      the fingerprint differential — a run
 *                        checkpointed mid-program and resumed in a
 *                        fresh Simulator must reproduce the
 *                        uninterrupted run's fingerprint across config
 *                        cells, host/threads widths and scheduler
 *                        modes (cycle-exact under the deterministic
 *                        scheduler). Reused by the snapshot_smoke
 *                        ctest entry.
 *  - SnapshotReentry:    process-global re-entrancy — two sequential
 *                        Simulators and two run() calls on one.
 *  - GoldenSnapshot:     committed on-disk fixture guarding the format
 *                        (any layout change must bump FORMAT_VERSION
 *                        and regenerate via DISABLED_RegenerateGolden).
 */

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <vector>

#include "check/fuzz_program.h"
#include "check/fuzz_runner.h"
#include "common/config.h"
#include "common/log.h"
#include "core/api.h"
#include "core/simulator.h"
#include "snapshot/checkpoint.h"
#include "snapshot/snapshot.h"

namespace graphite
{
namespace
{

using check::ConfigPoint;
using check::FuzzProgram;
using check::FuzzResult;
using check::RunOptions;

RunOptions
quickOpts()
{
    RunOptions opt;
    opt.watcherPeriodUs = 100;
    opt.validateEvery = 4;
    return opt;
}

/** First seed >= @p seed whose program has >= 2 rounds and >= 2
 *  threads, so a mid-program split is meaningful. */
FuzzProgram
pickProgram(std::uint64_t seed)
{
    for (;; ++seed) {
        FuzzProgram p = FuzzProgram::generate(seed);
        if (p.rounds.size() >= 2 && p.activeThreads() >= 2)
            return p;
    }
}

std::size_t
midSplit(const FuzzProgram& p)
{
    return std::max<std::size_t>(1, p.rounds.size() / 2);
}

/** Fuzz config with the snapshot-orthogonal oracles disabled (race,
 *  spans, faults stay off so every divergence is the checkpoint's). */
Config
snapshotCellConfig(const ConfigPoint& pt, std::uint64_t seed,
                   const std::string& sched_mode, int host_threads)
{
    Config cfg = check::makeFuzzConfig(pt, seed);
    cfg.setBool("race/enabled", false);
    cfg.setBool("obs/spans_enabled", false);
    cfg.set("host/scheduler", sched_mode);
    cfg.setInt("host/threads", host_threads);
    return cfg;
}

// ------------------------------------------------------------- the stream

TEST(SnapshotStream, ScalarAndContainerRoundTrip)
{
    snapshot::SnapshotWriter w;
    w.beginSection(snapshot::sectionTag("TST "));
    w.u8(0xAB);
    w.u16(0xBEEF);
    w.u32(0xDEADBEEFu);
    w.u64(0x0123456789ABCDEFull);
    w.i64(-42);
    w.b(true);
    w.b(false);
    w.str("hello snapshot");
    const std::uint8_t raw[] = {1, 2, 3, 4, 5};
    w.bytes(raw, sizeof raw);
    std::vector<std::uint8_t> blob = w.finish();

    snapshot::SnapshotReader r(blob);
    EXPECT_EQ(r.version(), snapshot::FORMAT_VERSION);
    r.expectSection(snapshot::sectionTag("TST "), "test");
    EXPECT_EQ(r.u8(), 0xAB);
    EXPECT_EQ(r.u16(), 0xBEEF);
    EXPECT_EQ(r.u32(), 0xDEADBEEFu);
    EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
    EXPECT_EQ(r.i64(), -42);
    EXPECT_TRUE(r.b());
    EXPECT_FALSE(r.b());
    EXPECT_EQ(r.str(), "hello snapshot");
    std::uint8_t out[sizeof raw] = {};
    r.bytesInto(out, sizeof out);
    EXPECT_EQ(std::memcmp(out, raw, sizeof raw), 0);
    EXPECT_NO_THROW(r.expectEnd());
}

std::vector<std::uint8_t>
sealedTestBlob()
{
    snapshot::SnapshotWriter w;
    w.beginSection(snapshot::sectionTag("TST "));
    for (std::uint64_t i = 0; i < 32; ++i)
        w.u64(i * 0x9E3779B97F4A7C15ull);
    return w.finish();
}

/** Re-seal @p blob's checksum trailer after payload surgery. */
void
reseal(std::vector<std::uint8_t>& blob)
{
    std::uint64_t sum =
        snapshot::fnv1a(blob.data(), blob.size() - 8);
    std::memcpy(blob.data() + blob.size() - 8, &sum, sizeof sum);
}

TEST(SnapshotStream, TruncationIsACleanError)
{
    std::vector<std::uint8_t> blob = sealedTestBlob();
    for (std::size_t keep : {std::size_t{0}, std::size_t{5},
                             std::size_t{15}, blob.size() - 1}) {
        std::vector<std::uint8_t> cut(blob.begin(),
                                      blob.begin() +
                                          static_cast<std::ptrdiff_t>(keep));
        EXPECT_THROW(snapshot::SnapshotReader r(std::move(cut)),
                     snapshot::SnapshotError)
            << "kept " << keep << " bytes";
    }
}

TEST(SnapshotStream, CorruptionFailsTheChecksum)
{
    std::vector<std::uint8_t> blob = sealedTestBlob();
    blob[blob.size() / 2] ^= 0x40;
    try {
        snapshot::SnapshotReader r(std::move(blob));
        FAIL() << "corrupted stream accepted";
    } catch (const snapshot::SnapshotError& e) {
        EXPECT_NE(std::string(e.what()).find("checksum"),
                  std::string::npos);
    }
}

TEST(SnapshotStream, BadMagicIsRejected)
{
    std::vector<std::uint8_t> blob = sealedTestBlob();
    blob[0] = 'X';
    reseal(blob);
    try {
        snapshot::SnapshotReader r(std::move(blob));
        FAIL() << "bad magic accepted";
    } catch (const snapshot::SnapshotError& e) {
        EXPECT_NE(std::string(e.what()).find("magic"), std::string::npos);
    }
}

TEST(SnapshotStream, FutureVersionIsRejected)
{
    std::vector<std::uint8_t> blob = sealedTestBlob();
    std::uint32_t future = snapshot::FORMAT_VERSION + 1;
    std::memcpy(blob.data() + 4, &future, sizeof future);
    reseal(blob);
    try {
        snapshot::SnapshotReader r(std::move(blob));
        FAIL() << "future version accepted";
    } catch (const snapshot::SnapshotError& e) {
        EXPECT_NE(std::string(e.what()).find("version"),
                  std::string::npos);
    }
}

TEST(SnapshotStream, WrongSectionAndTrailingBytesAreDetected)
{
    std::vector<std::uint8_t> blob = sealedTestBlob();
    snapshot::SnapshotReader r(std::move(blob));
    EXPECT_THROW(r.expectSection(snapshot::sectionTag("ZZZ "), "other"),
                 snapshot::SnapshotError);
    EXPECT_THROW(r.expectEnd(), snapshot::SnapshotError);
}

// -------------------------------------------------- whole-sim checkpoints

TEST(SnapshotCheckpoint, SaveRestoreSaveIsByteIdentical)
{
    FuzzProgram prog = pickProgram(21);
    Config cfg = snapshotCellConfig(check::baselinePoint(), 21,
                                    "free_running", 2);
    std::vector<std::uint8_t> ckpt = check::checkpointFuzzProgram(
        prog, cfg, midSplit(prog), quickOpts());
    ASSERT_FALSE(ckpt.empty());
    // resumeFuzzProgram re-saves the restored state internally and
    // reports any byte difference as a violation.
    FuzzResult res = check::resumeFuzzProgram(prog, cfg, midSplit(prog),
                                              ckpt, quickOpts());
    EXPECT_TRUE(res.violations.empty()) << res.violations.front();
    EXPECT_NE(res.fingerprint, 0u);
}

TEST(SnapshotCheckpoint, ConfigDriftIsRejectedWithNamedErrors)
{
    FuzzProgram prog = pickProgram(22);
    Config cfg = snapshotCellConfig(check::baselinePoint(), 22,
                                    "free_running", 1);
    std::vector<std::uint8_t> ckpt = check::checkpointFuzzProgram(
        prog, cfg, midSplit(prog), quickOpts());

    struct Drift
    {
        const char* key;
        const char* value;
        const char* expect;
    };
    const Drift drifts[] = {
        {"general/total_tiles", "16", "tile count"},
        {"sync/model", "lax_p2p", "sync model"},
        {"caching_protocol/type", "dir_mesi", "protocol"},
    };
    for (const Drift& d : drifts) {
        Config bad = cfg;
        bad.set(d.key, d.value);
        Simulator sim(bad);
        try {
            snapshot::restoreCheckpoint(sim, ckpt);
            FAIL() << d.key << " drift accepted";
        } catch (const snapshot::SnapshotError& e) {
            EXPECT_NE(std::string(e.what()).find(d.expect),
                      std::string::npos)
                << d.key << " error: " << e.what();
        }
    }
}

TEST(SnapshotCheckpoint, FileRoundTripAndMissingFile)
{
    FuzzProgram prog = pickProgram(23);
    Config cfg = snapshotCellConfig(check::baselinePoint(), 23,
                                    "free_running", 1);
    std::string path = ::testing::TempDir() + "graphite_ckpt_" +
                       std::to_string(::getpid()) + ".snap";

    std::vector<std::uint8_t> ckpt = check::checkpointFuzzProgram(
        prog, cfg, midSplit(prog), quickOpts());
    snapshot::writeFile(path, ckpt);
    EXPECT_EQ(snapshot::readFile(path), ckpt);
    std::remove(path.c_str());

    Simulator sim(cfg);
    EXPECT_THROW(snapshot::restoreCheckpointFile(
                     sim, path + ".does_not_exist"),
                 snapshot::SnapshotError);
}

/**
 * Fork-isolated no-crash drill: damage a real checkpoint in various
 * ways and restore it in a child process. The child must exit cleanly
 * — either the restore succeeds (the damaged byte was inert) or it
 * throws a typed error; any signal/abort fails the test.
 */
void
restoreDamagedInChild(const Config& cfg,
                      std::vector<std::uint8_t> damaged)
{
    pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        try {
            Simulator sim(cfg);
            snapshot::restoreCheckpoint(sim, damaged);
            std::_Exit(0); // inert damage: restore succeeded
        } catch (const snapshot::SnapshotError&) {
            std::_Exit(0); // clean typed failure
        } catch (...) {
            std::_Exit(2); // wrong exception type
        }
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status)) << "child crashed on damaged input";
    EXPECT_EQ(WEXITSTATUS(status), 0);
}

TEST(SnapshotCheckpoint, ForkIsolatedDamagedRestoresNeverCrash)
{
    FuzzProgram prog = pickProgram(24);
    Config cfg = snapshotCellConfig(check::baselinePoint(), 24,
                                    "free_running", 1);
    std::vector<std::uint8_t> ckpt = check::checkpointFuzzProgram(
        prog, cfg, midSplit(prog), quickOpts());

    // Unsealed damage: checksum catches it.
    {
        std::vector<std::uint8_t> d = ckpt;
        d[d.size() / 3] ^= 0xFF;
        restoreDamagedInChild(cfg, std::move(d));
    }
    // Truncations, including mid-header.
    for (std::size_t keep :
         {std::size_t{6}, ckpt.size() / 2, ckpt.size() - 9}) {
        restoreDamagedInChild(
            cfg, std::vector<std::uint8_t>(
                     ckpt.begin(),
                     ckpt.begin() + static_cast<std::ptrdiff_t>(keep)));
    }
    // Re-sealed damage: checksum passes, the typed layout/size checks
    // inside the component loadState() methods must hold the line.
    for (std::size_t pos = 13; pos < ckpt.size() - 8;
         pos += ckpt.size() / 7) {
        std::vector<std::uint8_t> d = ckpt;
        d[pos] ^= 0x80;
        reseal(d);
        restoreDamagedInChild(cfg, std::move(d));
    }
}

// -------------------------------------------------- the fuzz differential

/** Fingerprint (and under the deterministic scheduler, cycle) equality
 *  of uninterrupted vs paired-pause vs through-checkpoint execution. */
void
expectResumeEquivalence(const FuzzProgram& prog, std::uint64_t seed,
                        const ConfigPoint& pt,
                        const std::string& sched_mode, int host_threads)
{
    SCOPED_TRACE(pt.name + "/" + sched_mode + "/t" +
                 std::to_string(host_threads));
    Config cfg =
        snapshotCellConfig(pt, seed, sched_mode, host_threads);
    std::size_t split = midSplit(prog);

    FuzzResult plain = check::runFuzzProgram(prog, cfg, quickOpts());
    FuzzResult paired = check::runFuzzProgramSegmented(
        prog, cfg, split, /*through_snapshot=*/false, quickOpts());
    FuzzResult snap = check::runFuzzProgramSegmented(
        prog, cfg, split, /*through_snapshot=*/true, quickOpts());

    EXPECT_TRUE(plain.violations.empty()) << plain.violations.front();
    EXPECT_TRUE(paired.violations.empty()) << paired.violations.front();
    EXPECT_TRUE(snap.violations.empty()) << snap.violations.front();

    EXPECT_EQ(paired.fingerprint, plain.fingerprint);
    EXPECT_EQ(snap.fingerprint, plain.fingerprint);
    if (sched_mode == "deterministic")
        EXPECT_EQ(snap.simulatedCycles, paired.simulatedCycles);
}

TEST(SnapshotSmoke, ResumeMatchesAcrossHostWidthsAndSchedulers)
{
    const std::uint64_t seed = 31;
    FuzzProgram prog = pickProgram(seed);
    ConfigPoint pt = check::baselinePoint();
    pt.name = "baseline";
    for (const char* mode : {"free_running", "deterministic"})
        for (int threads : {1, 2, 4})
            expectResumeEquivalence(prog, seed, pt, mode, threads);
}

TEST(SnapshotSmoke, ResumeMatchesAcrossConfigCells)
{
    const std::uint64_t seed = 32;
    FuzzProgram prog = pickProgram(seed);

    ConfigPoint barrier_cell;
    barrier_cell.name = "p3_lax_barrier_sharded";
    barrier_cell.processes = 3;
    barrier_cell.syncModel = "lax_barrier";
    barrier_cell.concurrency = "sharded";

    ConfigPoint p2p_cell;
    p2p_cell.name = "p1_lax_p2p_limited_l32";
    p2p_cell.syncModel = "lax_p2p";
    p2p_cell.slack = 2000;
    p2p_cell.directoryType = "limited_no_broadcast";
    p2p_cell.lineSize = 32;

    expectResumeEquivalence(prog, seed, barrier_cell, "free_running", 2);
    expectResumeEquivalence(prog, seed, barrier_cell, "deterministic", 2);
    expectResumeEquivalence(prog, seed, p2p_cell, "deterministic", 4);
}

// ------------------------------------------------------------- re-entry

struct ReentryArgs
{
    int iters = 40;
    std::uint64_t sum = 0;
    cycle_t cycles = 0;
};

void
reentryWorker(void* p)
{
    auto* a = static_cast<ReentryArgs*>(p);
    addr_t buf = api::malloc(256);
    for (int i = 0; i < a->iters; ++i)
        api::write<std::uint32_t>(buf + (i % 64) * 4,
                                  static_cast<std::uint32_t>(i * 2654435761u));
    std::uint64_t s = 0;
    for (int i = 0; i < 64; ++i)
        s += api::read<std::uint32_t>(buf + i * 4);
    api::free(buf);
    a->sum = s;
}

void
reentryMain(void* p)
{
    auto* a = static_cast<ReentryArgs*>(p);
    tile_id_t t = api::threadSpawn(&reentryWorker, p);
    api::threadJoin(t);
    a->cycles = api::cycle();
}

Config
reentryConfig()
{
    Config cfg = defaultTargetConfig();
    cfg.setInt("general/total_tiles", 4);
    return cfg;
}

TEST(SnapshotReentry, TwoSequentialSimulatorsProduceEqualResults)
{
    ReentryArgs a, b;
    {
        Simulator sim(reentryConfig());
        sim.run(&reentryMain, &a);
    }
    {
        Simulator sim(reentryConfig());
        sim.run(&reentryMain, &b);
    }
    EXPECT_EQ(a.sum, b.sum);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_GT(a.cycles, 0u);
}

TEST(SnapshotReentry, TwoRunsOnOneSimulatorContinueTheClock)
{
    Simulator sim(reentryConfig());
    ReentryArgs a, b;
    SimulationSummary s1 = sim.run(&reentryMain, &a);
    SimulationSummary s2 = sim.run(&reentryMain, &b);
    EXPECT_EQ(a.sum, b.sum);
    EXPECT_GT(s1.simulatedCycles, 0u);
    // Tile clocks persist across run() calls: the second segment
    // continues where the first stopped.
    EXPECT_GT(s2.simulatedCycles, s1.simulatedCycles);
    EXPECT_EQ(sim.simulatedTime(), s2.simulatedCycles);
}

// ------------------------------------------------------- golden fixture

/** Frozen generation parameters of the committed fixture. Changing any
 *  of these requires regenerating the golden (DISABLED_RegenerateGolden)
 *  and updating GOLDEN_FINGERPRINT below. */
constexpr std::uint64_t GOLDEN_SEED = 97;
constexpr std::uint32_t GOLDEN_VERSION = 1;

FuzzProgram
goldenProgram()
{
    return pickProgram(GOLDEN_SEED);
}

Config
goldenConfig()
{
    // Deterministic scheduler: the resumed run is a pure function of
    // the fixture, so its fingerprint is a compile-time constant here.
    return snapshotCellConfig(check::baselinePoint(), GOLDEN_SEED,
                              "deterministic", 2);
}

/** Expected fingerprint of resuming the committed fixture; printed by
 *  DISABLED_RegenerateGolden. */
constexpr std::uint64_t GOLDEN_FINGERPRINT = 16226333569779473238ull;

TEST(GoldenSnapshot, CommittedFixtureRestoresAndMatches)
{
    if (snapshot::FORMAT_VERSION != GOLDEN_VERSION) {
        // The format moved on: the committed version-1 fixture must be
        // rejected up front, then regenerated (and this constant
        // updated) via DISABLED_RegenerateGolden.
        EXPECT_THROW(snapshot::SnapshotReader r(snapshot::readFile(
                         GRAPHITE_GOLDEN_SNAPSHOT)),
                     snapshot::SnapshotError);
        GTEST_SKIP() << "FORMAT_VERSION bumped — regenerate the golden "
                        "fixture with DISABLED_RegenerateGolden";
    }
    FuzzProgram prog = goldenProgram();
    std::vector<std::uint8_t> ckpt =
        snapshot::readFile(GRAPHITE_GOLDEN_SNAPSHOT);
    FuzzResult res = check::resumeFuzzProgram(
        prog, goldenConfig(), midSplit(prog), ckpt, quickOpts());
    EXPECT_TRUE(res.violations.empty()) << res.violations.front();
    EXPECT_EQ(res.fingerprint, GOLDEN_FINGERPRINT)
        << "on-disk snapshot layout drifted without a FORMAT_VERSION "
           "bump (or the golden workload changed)";
}

TEST(GoldenSnapshot, DISABLED_RegenerateGolden)
{
    FuzzProgram prog = goldenProgram();
    std::vector<std::uint8_t> ckpt = check::checkpointFuzzProgram(
        prog, goldenConfig(), midSplit(prog), quickOpts());
    snapshot::writeFile(GRAPHITE_GOLDEN_SNAPSHOT, ckpt);
    FuzzResult res = check::resumeFuzzProgram(
        prog, goldenConfig(), midSplit(prog), ckpt, quickOpts());
    ASSERT_TRUE(res.violations.empty()) << res.violations.front();
    printf("golden fixture: %zu bytes, fingerprint %llu\n", ckpt.size(),
           static_cast<unsigned long long>(res.fingerprint));
}

} // namespace
} // namespace graphite
