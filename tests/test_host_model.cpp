/**
 * @file
 * Unit tests for the host cluster model: profile capture, extrapolation
 * scaling, and the qualitative properties the scaling figures rely on
 * (in-machine linearity, machine-boundary costs, init growth, native
 * baseline math).
 */

#include <gtest/gtest.h>

#include "common/config.h"
#include "common/log.h"
#include "core/api.h"
#include "core/simulator.h"
#include "host/host_model.h"

namespace graphite
{
namespace
{

/** A synthetic profile: balanced compute + uniform all-to-all traffic. */
SimulationProfile
syntheticProfile(tile_id_t tiles, stat_t instr_per_tile,
                 stat_t msgs_per_pair)
{
    SimulationProfile prof;
    prof.tiles = tiles;
    prof.appThreads = tiles;
    prof.instructions.assign(tiles, instr_per_tile);
    prof.memAccesses.assign(tiles, instr_per_tile / 4);
    prof.l2Misses.assign(tiles, instr_per_tile / 1000);
    prof.syscalls.assign(tiles, 10);
    prof.msgMatrix.assign(static_cast<size_t>(tiles) * tiles,
                          msgs_per_pair);
    prof.byteMatrix.assign(static_cast<size_t>(tiles) * tiles,
                           msgs_per_pair * 80);
    prof.syncModel = "lax";
    return prof;
}

HostCosts
defaultCosts()
{
    return HostCosts::fromConfig(defaultTargetConfig());
}

TEST(HostModel, InMachineScalingIsNearLinear)
{
    SimulationProfile prof = syntheticProfile(32, 10'000'000, 0);
    HostModel host(defaultCosts());
    double t1 = host.estimate(prof, 1, 1).computeSeconds;
    double t8 = host.estimate(prof, 1, 8).computeSeconds;
    EXPECT_NEAR(t1 / t8, 8.0, 0.01);
}

TEST(HostModel, CriticalPathThreadBoundsSpeedup)
{
    SimulationProfile prof = syntheticProfile(32, 1'000'000, 0);
    prof.instructions[5] = 32'000'000; // one hot thread
    HostModel host(defaultCosts());
    double t8 = host.estimate(prof, 1, 8).computeSeconds;
    double t1 = host.estimate(prof, 1, 1).computeSeconds;
    // The hot thread dominates: 8 cores must not approach 8x because
    // t8 is floored by the hot thread's own work (~1/3 of the total).
    EXPECT_LT(t1 / t8, 3.2);
    EXPECT_GT(t1 / t8, 2.5);
}

TEST(HostModel, MachineBoundaryAddsCommunicationCost)
{
    // Communication-heavy profile: crossing to two machines must cost
    // relative to the pure compute halving.
    SimulationProfile compute = syntheticProfile(32, 10'000'000, 0);
    SimulationProfile comm = syntheticProfile(32, 10'000'000, 2000);
    HostModel host(defaultCosts());

    auto ratio = [&](const SimulationProfile& p) {
        double one = host.estimate(p, 1).computeSeconds;
        HostEstimate two = host.estimate(p, 2);
        return one / (two.computeSeconds + two.syncSeconds);
    };
    EXPECT_GT(ratio(compute), ratio(comm));
}

TEST(HostModel, InterProcessTrafficOnlyChargedWhenSplit)
{
    SimulationProfile prof = syntheticProfile(8, 1'000'000, 100);
    HostModel host(defaultCosts());
    // On one machine with one process every message is intra-process;
    // the socket CPU cost appears only with multiple processes.
    double t1 = host.estimate(prof, 1).computeSeconds;
    SimulationProfile no_comm = syntheticProfile(8, 1'000'000, 0);
    double t1_nocomm = host.estimate(no_comm, 1).computeSeconds;
    EXPECT_NEAR(t1, t1_nocomm, t1_nocomm * 0.05);
}

TEST(HostModel, InitGrowsWithProcesses)
{
    SimulationProfile prof = syntheticProfile(16, 1'000'000, 0);
    HostModel host(defaultCosts());
    EXPECT_DOUBLE_EQ(host.estimate(prof, 1).initSeconds,
                     host.costs().initSecondsPerProcess);
    EXPECT_DOUBLE_EQ(host.estimate(prof, 10).initSeconds,
                     10 * host.costs().initSecondsPerProcess);
}

TEST(HostModel, BarrierSyncChargesEpochs)
{
    SimulationProfile prof = syntheticProfile(8, 1'000'000, 0);
    prof.syncModel = "lax_barrier";
    prof.syncEvents = 10000;
    HostModel host(defaultCosts());
    EXPECT_GT(host.estimate(prof, 4).syncSeconds,
              host.estimate(prof, 1).syncSeconds);
    EXPECT_GT(host.estimate(prof, 1).syncSeconds, 0.0);
}

TEST(HostModel, NativeBaselineUsesCoresAndCriticalPath)
{
    HostCosts costs = defaultCosts();
    HostModel host(costs);
    SimulationProfile prof = syntheticProfile(32, 3'160'000'000ull, 0);
    // 32 threads x 3.16e9 instr at 3.16 GHz, IPC 1, 8 cores:
    // 32/8 = 4 seconds.
    EXPECT_NEAR(host.nativeSeconds(prof), 4.0, 0.01);
    // A single-thread profile is bounded by its own critical path.
    SimulationProfile serial = syntheticProfile(1, 3'160'000'000ull, 0);
    serial.appThreads = 1;
    EXPECT_NEAR(host.nativeSeconds(serial), 1.0, 0.01);
}

TEST(HostModel, ScaleProfileMultipliesTheRightCounters)
{
    SimulationProfile prof = syntheticProfile(4, 1000, 10);
    SimulationProfile scaled = scaleProfile(prof, 10, 2);
    EXPECT_EQ(scaled.instructions[0], 10000u);
    EXPECT_EQ(scaled.memAccesses[0], 2500u);
    EXPECT_EQ(scaled.msgMatrix[1], 20u);
    EXPECT_EQ(scaled.l2Misses[0], 2u);
    EXPECT_THROW(scaleProfile(prof, 0, 1), FatalError);
}

TEST(HostModel, InvalidMachineCountIsFatal)
{
    SimulationProfile prof = syntheticProfile(4, 1000, 0);
    HostModel host(defaultCosts());
    EXPECT_THROW(host.estimate(prof, 0), FatalError);
}

// ----------------------------------------------------- capture integration

void
captureMain(void*)
{
    addr_t a = api::malloc(4096);
    for (int i = 0; i < 512; ++i)
        api::write<std::uint64_t>(a + (i % 64) * 64, i);
    api::exec(InstrClass::FpMul, 1000);
    api::free(a);
}

TEST(HostModel, CaptureReflectsRunActivity)
{
    Config cfg = defaultTargetConfig();
    cfg.setInt("general/total_tiles", 4);
    Simulator sim(cfg);
    sim.run(&captureMain, nullptr);
    SimulationProfile prof = SimulationProfile::capture(sim, 1.5);
    EXPECT_EQ(prof.tiles, 4);
    EXPECT_EQ(prof.appThreads, 1);
    EXPECT_GT(prof.instructions[0], 1500u); // stores + exec
    EXPECT_GT(prof.memAccesses[0], 500u);
    EXPECT_GT(prof.l2Misses[0], 0u);
    EXPECT_DOUBLE_EQ(prof.measuredWallSeconds, 1.5);
    // Coherence traffic from tile 0 to line homes shows in the matrix.
    stat_t from0 = 0;
    for (tile_id_t d = 0; d < 4; ++d)
        from0 += prof.msgMatrix[d];
    EXPECT_GT(from0, 0u);
}

} // namespace
} // namespace graphite
