/**
 * @file
 * Compiled with -DGRAPHITE_LOCKDEP_FORCE_OFF into the otherwise armed
 * test binary: proves the disabled lockdep variant compiles against
 * the exact same call sites (the ld_on / ld_off inline namespaces keep
 * the symbols distinct, so both variants link into one binary) and
 * that the wrappers add no per-object state.  The header's
 * static_asserts pin sizeof(OrderedMutex) == sizeof(std::mutex) at
 * compile time; this function exercises the full API surface at
 * runtime — including a deliberate lock-order inversion, which the
 * disabled build must silently permit.
 */

#include "common/lockdep.h"

#include <chrono>

static_assert(GRAPHITE_LOCKDEP_ON == 0,
              "probe TU must see the disabled lockdep variant");

bool
lockdepForceOffProbeExercise()
{
    using namespace graphite::lockdep;

    OrderedMutex a(LockClass::race_records);
    OrderedMutex b(LockClass::span_sink);

    // Deliberate inversion (b before a, then a before b): the
    // disabled build carries no held-set and must not care.
    {
        Guard gb(b);
        Guard ga(a);
    }
    {
        Guard ga(a);
        Guard gb(b);
    }

    OrderedMutex sharded(LockClass::mem_shard, 3);
    sharded.setInstance(7); // no-op pass-through
    {
        UniqueLock l(sharded, std::try_to_lock);
        if (!l.owns_lock())
            return false;
    }

    CondVar cv;
    UniqueLock l(a);
    cv.wait_for(l, std::chrono::milliseconds(1));
    cv.notify_all();

    bool api_inert = mode() == Mode::Off && violationCount() == 0 &&
                     lastReport().empty() && heldSnapshot().empty() &&
                     renderHeldSets().empty();
    return api_inert && l.owns_lock() &&
           sizeof(OrderedMutex) == sizeof(std::mutex);
}
