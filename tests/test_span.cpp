/**
 * @file
 * Tests for the causal span engine (src/obs/span): builder coalescing
 * and nesting, overflow folding, reservoir/slowest bounds, the
 * exact-accounting invariant (stage sum == end-to-end latency) both
 * for hand-built spans and for every span sampled from a real
 * workload, the spans.jsonl schema, Chrome flow-event emission, and
 * fingerprint neutrality (an armed span engine must not perturb the
 * architectural state of a fuzz run).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "check/fuzz_program.h"
#include "check/fuzz_runner.h"
#include "common/config.h"
#include "core/api.h"
#include "core/simulator.h"
#include "obs/span/span.h"
#include "obs/span/span_sink.h"
#include "obs/trace_event.h"

namespace graphite
{
namespace
{

using obs::SpanBuilder;
using obs::SpanKind;
using obs::SpanRecord;
using obs::SpanSink;
using obs::SpanStage;

/** Fresh, enabled sink with small bounded buffers. */
void
armSink(tile_id_t tiles, std::size_t reservoir, std::size_t slowest)
{
    SpanSink& sink = SpanSink::instance();
    sink.reset();
    SpanSink::Options opt;
    opt.reservoirCapacity = reservoir;
    opt.slowestCapacity = slowest;
    opt.intervalCycles = 1000;
    opt.flowEvents = false;
    sink.configure(tiles, opt);
    sink.setEnabled(true);
}

std::string
readFile(const std::string& path)
{
    std::FILE* f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr) << path;
    if (f == nullptr)
        return "";
    std::string out;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    std::fclose(f);
    return out;
}

// -------------------------------------------------------------- SpanBuilder

TEST(SpanBuilder, CoalescesAdjacentMarksAndSkipsZeroDurations)
{
    SpanSink::instance().reset(); // disabled: finish() records nothing
    SpanBuilder b(SpanKind::ReadMiss, 0, 3, 100);
    b.add(SpanStage::LocalCheck, 100, 10);
    b.add(SpanStage::ReqQueue, 110, 0); // zero: skipped
    b.add(SpanStage::ReqQueue, 110, 5);
    b.add(SpanStage::ReqQueue, 115, 7); // same stage: coalesced
    b.add(SpanStage::ReqHop, 122, 4);
    b.finish(126);

    const SpanRecord& r = b.record();
    ASSERT_EQ(r.numStages, 3);
    EXPECT_EQ(r.stages[0].stage, SpanStage::LocalCheck);
    EXPECT_EQ(r.stages[1].stage, SpanStage::ReqQueue);
    EXPECT_EQ(r.stages[1].begin, 110u);
    EXPECT_EQ(r.stages[1].dur, 12u);
    EXPECT_EQ(r.stages[2].stage, SpanStage::ReqHop);
    EXPECT_FALSE(r.folded);
    // Exact accounting: the marks cover the whole span.
    EXPECT_EQ(r.stageSum(), r.total());
    EXPECT_EQ(r.total(), 26u);
}

TEST(SpanBuilder, NestedBuildersShareTraceAndLinkParent)
{
    SpanSink::instance().reset();
    EXPECT_EQ(SpanBuilder::active(), nullptr);
    {
        SpanBuilder outer(SpanKind::WriteMiss, 1, 2, 0);
        EXPECT_EQ(SpanBuilder::active(), &outer);
        EXPECT_EQ(outer.record().parentId, 0u);
        EXPECT_EQ(outer.traceId(), outer.spanId());
        {
            // A writeback modeled while the miss is in flight becomes
            // a child span in the same trace.
            SpanBuilder child(SpanKind::Writeback, 1, 5, 10);
            EXPECT_EQ(SpanBuilder::active(), &child);
            EXPECT_EQ(child.traceId(), outer.traceId());
            EXPECT_EQ(child.record().parentId, outer.spanId());
            EXPECT_NE(child.spanId(), outer.spanId());
        }
        EXPECT_EQ(SpanBuilder::active(), &outer);
    }
    EXPECT_EQ(SpanBuilder::active(), nullptr);
}

TEST(SpanBuilder, OverflowFoldsIntoLastMarkPreservingSums)
{
    SpanSink::instance().reset();
    SpanBuilder b(SpanKind::ReadMiss, 0, 1, 0);
    // Alternate stages so nothing coalesces; overflow the fixed array.
    cycle_t t = 0;
    for (int i = 0; i < SpanRecord::MAX_STAGES + 10; ++i) {
        b.add(i % 2 == 0 ? SpanStage::ReqHop : SpanStage::ReqQueue,
              t, 3);
        t += 3;
    }
    b.finish(t);
    const SpanRecord& r = b.record();
    EXPECT_EQ(r.numStages, SpanRecord::MAX_STAGES);
    EXPECT_TRUE(r.folded);
    // Detail is lost, totals are not.
    EXPECT_EQ(r.stageSum(), r.total());
}

// ----------------------------------------------------------------- SpanSink

TEST(SpanSink, DisabledCompleteIsDropped)
{
    SpanSink& sink = SpanSink::instance();
    sink.reset();
    ASSERT_FALSE(SpanSink::enabled());
    SpanBuilder b(SpanKind::ReadMiss, 0, 1, 0);
    b.add(SpanStage::LocalCheck, 0, 5);
    b.finish(5);
    EXPECT_EQ(sink.completedCount(), 0u);
    EXPECT_EQ(sink.sampledCount(), 0u);
}

TEST(SpanSink, MeshDistanceMatchesModelGeometry)
{
    armSink(16, 8, 4); // 4x4 mesh
    SpanSink& sink = SpanSink::instance();
    EXPECT_EQ(sink.distance(0, 0), 0);
    EXPECT_EQ(sink.distance(0, 3), 3);
    EXPECT_EQ(sink.distance(0, 5), 2);  // (1,1)
    EXPECT_EQ(sink.distance(0, 15), 6); // opposite corner
    EXPECT_EQ(sink.distance(0, INVALID_TILE_ID), 0);
    sink.reset();
}

TEST(SpanSink, BoundedSamplingWithExactAggregates)
{
    constexpr int N = 500;
    constexpr std::size_t RESERVOIR = 32;
    constexpr std::size_t SLOWEST = 8;
    armSink(16, RESERVOIR, SLOWEST);
    SpanSink& sink = SpanSink::instance();

    stat_t local_total = 0, queue_total = 0;
    for (int i = 0; i < N; ++i) {
        SpanBuilder b(SpanKind::ReadMiss, i % 16, (i * 7) % 16,
                      static_cast<cycle_t>(i) * 10);
        cycle_t local = 10, queue = static_cast<cycle_t>(i % 50);
        b.add(SpanStage::LocalCheck, i * 10, local);
        b.add(SpanStage::ReqQueue, i * 10 + local, queue);
        b.finish(i * 10 + local + queue);
        local_total += local;
        queue_total += queue;
    }

    // Exact aggregates cover every completion, not just the sample.
    EXPECT_EQ(sink.completedCount(), static_cast<stat_t>(N));
    EXPECT_EQ(sink.stageCycles(SpanStage::LocalCheck), local_total);
    EXPECT_EQ(sink.stageCycles(SpanStage::ReqQueue), queue_total);
    EXPECT_EQ(sink.kindCount(SpanKind::ReadMiss),
              static_cast<stat_t>(N));
    EXPECT_EQ(sink.kindCycles(SpanKind::ReadMiss),
              local_total + queue_total);
    EXPECT_EQ(sink.stageHistogram(SpanKind::ReadMiss,
                                  SpanStage::LocalCheck)
                  .count(),
              static_cast<stat_t>(N));

    // Memory stays bounded; the slowest list is sorted descending.
    EXPECT_EQ(sink.sampledCount(), RESERVOIR);
    std::vector<SpanRecord> slow = sink.slowest();
    ASSERT_EQ(slow.size(), SLOWEST);
    for (std::size_t i = 1; i < slow.size(); ++i)
        EXPECT_GE(slow[i - 1].total(), slow[i].total());
    EXPECT_EQ(slow.front().total(), 59u); // 10 + max queue of 49

    // Every retained record satisfies the accounting invariant.
    for (const SpanRecord& r : sink.sampled())
        EXPECT_EQ(r.stageSum(), r.total());

    // Jsonl schema spot checks: record rows, interval rows, summary.
    std::string doc = sink.renderJsonl();
    EXPECT_NE(doc.find("\"type\":\"span\""), std::string::npos);
    EXPECT_NE(doc.find("\"set\":\"sample\""), std::string::npos);
    EXPECT_NE(doc.find("\"set\":\"slowest\""), std::string::npos);
    EXPECT_NE(doc.find("\"type\":\"interval\""), std::string::npos);
    EXPECT_NE(doc.find("\"type\":\"summary\""), std::string::npos);
    EXPECT_NE(doc.find("\"kind\":\"read_miss\""), std::string::npos);
    EXPECT_NE(doc.find("\"stage\":\"req_queue\""), std::string::npos);
    EXPECT_NE(doc.find("\"bottleneck\":\"req_queue\""),
              std::string::npos);
    sink.reset();
}

TEST(SpanSink, ReservoirIsDeterministicGivenSeedAndOrder)
{
    auto run = [] {
        armSink(4, 16, 0);
        for (int i = 0; i < 200; ++i) {
            SpanBuilder b(SpanKind::Atomic, 0, i % 4,
                          static_cast<cycle_t>(i));
            b.add(SpanStage::LocalCheck, i, 1 + i % 3);
            b.finish(i + 1 + i % 3);
        }
        std::vector<SpanRecord> s = SpanSink::instance().sampled();
        SpanSink::instance().reset();
        return s;
    };
    std::vector<SpanRecord> a = run();
    std::vector<SpanRecord> b = run();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].start, b[i].start);
        EXPECT_EQ(a[i].total(), b[i].total());
    }
}

// ------------------------------------------------------------- end-to-end

void
spanLoop(addr_t data)
{
    for (int i = 0; i < 100; ++i) {
        std::uint64_t v = api::read<std::uint64_t>(data + (i % 8) * 64);
        api::write<std::uint64_t>(data + (i % 8) * 64, v + 1);
        api::exec(InstrClass::IntAlu, 20);
    }
}

void
spanWorker(void* p)
{
    auto* data = static_cast<addr_t*>(p);
    spanLoop(*data);
    int token = 7;
    api::msgSend(0, &token, sizeof(token));
}

void
spanMain(void* p)
{
    auto* data = static_cast<addr_t*>(p);
    *data = api::malloc(8 * 64);
    for (int i = 0; i < 8; ++i)
        api::write<std::uint64_t>(*data + i * 64, 0);
    tile_id_t t1 = api::threadSpawn(&spanWorker, data);
    spanLoop(*data);
    api::msgRecv();
    api::threadJoin(t1);
}

TEST(SpanEndToEnd, WorkloadHoldsExactAccountingAndEmitsArtifacts)
{
    std::string dir = ::testing::TempDir();
    std::string spans_path = dir + "graphite_spans.jsonl";
    std::string trace_path = dir + "graphite_span_trace.json";
    std::remove(spans_path.c_str());
    std::remove(trace_path.c_str());

    Config cfg = defaultTargetConfig();
    cfg.setInt("general/total_tiles", 8);
    cfg.set("obs/spans_out", spans_path);
    cfg.set("obs/trace_out", trace_path);
    {
        Simulator sim(cfg);
        addr_t data = 0;
        sim.run(&spanMain, &data);
    }

    // finalize() disabled the sink but kept its buffers: assert the
    // invariant over every span the run actually sampled.
    SpanSink& sink = SpanSink::instance();
    EXPECT_FALSE(SpanSink::enabled());
    EXPECT_GT(sink.completedCount(), 0u);
    std::vector<SpanRecord> sample = sink.sampled();
    std::vector<SpanRecord> slow = sink.slowest();
    ASSERT_FALSE(sample.empty());
    bool saw_memory = false, saw_msg = false;
    auto check = [&](const std::vector<SpanRecord>& recs) {
        for (const SpanRecord& r : recs) {
            EXPECT_NE(r.spanId, 0u);
            EXPECT_GE(r.end, r.start);
            EXPECT_EQ(r.stageSum(), r.total())
                << obs::spanKindName(r.kind) << " span " << r.spanId;
            for (int i = 0; i < r.numStages; ++i)
                EXPECT_GE(r.stages[i].begin, r.start);
            if (r.kind == SpanKind::AppMsg)
                saw_msg = true;
            else
                saw_memory = true;
        }
    };
    check(sample);
    check(slow);
    EXPECT_TRUE(saw_memory);
    EXPECT_TRUE(saw_msg);

    // The exact aggregates agree with each other: per-kind cycle
    // totals and per-stage cycle totals both sum every completion.
    stat_t kind_sum = 0, stage_sum = 0;
    for (int k = 0; k < obs::NUM_SPAN_KINDS; ++k)
        kind_sum += sink.kindCycles(static_cast<SpanKind>(k));
    for (int s = 0; s < obs::NUM_SPAN_STAGES; ++s)
        stage_sum += sink.stageCycles(static_cast<SpanStage>(s));
    EXPECT_EQ(kind_sum, stage_sum);

    // spans.jsonl landed with records and the summary row.
    std::string doc = readFile(spans_path);
    EXPECT_NE(doc.find("\"type\":\"span\""), std::string::npos);
    EXPECT_NE(doc.find("\"type\":\"summary\""), std::string::npos);
    EXPECT_NE(doc.find("\"kind\":\"app_msg\""), std::string::npos);

    // The Chrome trace carries the flow arrows for sampled spans.
    std::string json = readFile(trace_path);
    EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
    EXPECT_NE(json.find("\"cat\":\"span\""), std::string::npos);

    std::remove(spans_path.c_str());
    std::remove(trace_path.c_str());
}

TEST(SpanEndToEnd, ArmedSpansAreFingerprintNeutral)
{
    check::FuzzProgram prog = check::FuzzProgram::generate(5);
    check::RunOptions opt;
    opt.watcherPeriodUs = 100;
    opt.validateEvery = 4;

    Config base = check::makeFuzzConfig(check::baselinePoint(), 5);
    check::FuzzResult plain = check::runFuzzProgram(prog, base, opt);

    Config armed = check::makeFuzzConfig(check::baselinePoint(), 5);
    armed.setBool("obs/spans_enabled", true);
    check::FuzzResult spans = check::runFuzzProgram(prog, armed, opt);

    EXPECT_TRUE(spans.violations.empty());
    EXPECT_GT(SpanSink::instance().completedCount(), 0u);
    // Span instrumentation observes the timing model; it must never
    // feed back into it.
    EXPECT_EQ(spans.fingerprint, plain.fingerprint);
    SpanSink::instance().reset();
}

} // namespace
} // namespace graphite
