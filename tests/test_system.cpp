/**
 * @file
 * System-level tests of the threading infrastructure and the consistent
 * OS interface: spawn/join through the MCP, the thread-per-tile limit,
 * futex semantics, condition variables, file I/O executed at the MCP,
 * dynamic memory syscalls, and user-level messaging — all exercised from
 * real application threads.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>

#include "common/config.h"
#include "core/api.h"
#include "core/simulator.h"

namespace graphite
{
namespace
{

Config
smallConfig(int tiles = 4, int procs = 1)
{
    Config cfg = defaultTargetConfig();
    cfg.setInt("general/total_tiles", tiles);
    cfg.setInt("general/num_processes", procs);
    return cfg;
}

// -------------------------------------------------------------- spawn/join

struct SpawnProbe
{
    std::atomic<int> started{0};
    tile_id_t childTile = INVALID_TILE_ID;
    cycle_t childClock = 0;
    cycle_t parentAtJoin = 0;
};

void
probeChild(void* p)
{
    auto* probe = static_cast<SpawnProbe*>(p);
    probe->started.fetch_add(1);
    probe->childTile = api::tileId();
    api::exec(InstrClass::IntAlu, 5000);
    probe->childClock = api::cycle();
}

void
probeMain(void* p)
{
    auto* probe = static_cast<SpawnProbe*>(p);
    tile_id_t t = api::threadSpawn(&probeChild, p);
    api::threadJoin(t);
    probe->parentAtJoin = api::cycle();
}

TEST(Threading, SpawnAssignsFreeTileAndJoinForwardsClock)
{
    Config cfg = smallConfig(4);
    Simulator sim(cfg);
    SpawnProbe probe;
    sim.run(&probeMain, &probe);
    EXPECT_EQ(probe.started.load(), 1);
    EXPECT_EQ(probe.childTile, 1); // lowest free tile after main's 0
    // Lax rule: joining forwards the parent's clock to the child exit.
    EXPECT_GE(probe.parentAtJoin, probe.childClock);
    EXPECT_EQ(sim.threadManager().threadsSpawned(), 1u);
}

void
idleWorker(void*)
{
    api::exec(InstrClass::IntAlu, 10);
}

struct OverflowProbe
{
    addr_t gate = 0;
    bool failed = false;
};

void
gatedWorker(void* p)
{
    auto* probe = static_cast<OverflowProbe*>(p);
    // Hold the tile until main releases the gate.
    while (api::read<std::uint32_t>(probe->gate) == 0)
        api::futexWait(probe->gate, 0);
}

void
overflowMain(void* p)
{
    auto* probe = static_cast<OverflowProbe*>(p);
    probe->gate = api::malloc(4);
    api::write<std::uint32_t>(probe->gate, 0);
    std::vector<tile_id_t> tids;
    for (int i = 0; i < 3; ++i)
        tids.push_back(api::threadSpawn(&gatedWorker, p));
    // All 4 tiles busy (workers parked on the gate): the next spawn
    // must be rejected (paper §3.5: threads may not exceed the number
    // of tiles).
    try {
        api::threadSpawn(&gatedWorker, p);
    } catch (const FatalError&) {
        probe->failed = true;
    }
    api::write<std::uint32_t>(probe->gate, 1);
    api::futexWake(probe->gate, 8);
    for (tile_id_t t : tids)
        api::threadJoin(t);
    api::free(probe->gate);
}

TEST(Threading, SpawnBeyondTileCountIsFatal)
{
    Config cfg = smallConfig(4);
    Simulator sim(cfg);
    OverflowProbe probe;
    sim.run(&overflowMain, &probe);
    EXPECT_TRUE(probe.failed);
}

void
reuseMain(void*)
{
    // Tiles are recycled after exit: spawning tiles sequentially more
    // times than the tile count must succeed when each is joined first.
    for (int i = 0; i < 10; ++i) {
        tile_id_t t = api::threadSpawn(&idleWorker, nullptr);
        api::threadJoin(t);
    }
}

TEST(Threading, TilesAreReusedAfterExit)
{
    Config cfg = smallConfig(2); // just main + one worker tile
    Simulator sim(cfg);
    sim.run(&reuseMain, nullptr);
    EXPECT_EQ(sim.threadManager().threadsSpawned(), 10u);
}

// ------------------------------------------------------------------- futex

struct FutexProbe
{
    addr_t word = 0;
    int wakeResult = -1;
    int mismatch = 0;
};

void
futexMain(void* p)
{
    auto* probe = static_cast<FutexProbe*>(p);
    probe->word = api::malloc(4);
    api::write<std::uint32_t>(probe->word, 7);
    // Value mismatch returns immediately with -1 (EWOULDBLOCK).
    probe->mismatch = api::futexWait(probe->word, 99);
    // Waking with no waiters wakes zero threads.
    probe->wakeResult = static_cast<int>(api::futexWake(probe->word, 8));
    api::free(probe->word);
}

TEST(Futex, ValueMismatchAndEmptyWake)
{
    Config cfg = smallConfig(2);
    Simulator sim(cfg);
    FutexProbe probe;
    sim.run(&futexMain, &probe);
    EXPECT_EQ(probe.mismatch, -1);
    EXPECT_EQ(probe.wakeResult, 0);
}

struct HandoffProbe
{
    addr_t flag = 0;
    cycle_t wakerClock = 0;
    cycle_t waiterAfter = 0;
    bool woken = false;
};

void
handoffWaker(void* p)
{
    auto* probe = static_cast<HandoffProbe*>(p);
    api::exec(InstrClass::IntAlu, 50000); // run ahead in simulated time
    api::write<std::uint32_t>(probe->flag, 1);
    probe->wakerClock = api::cycle();
    api::futexWake(probe->flag, 1);
}

void
handoffMain(void* p)
{
    auto* probe = static_cast<HandoffProbe*>(p);
    probe->flag = api::malloc(4);
    api::write<std::uint32_t>(probe->flag, 0);
    tile_id_t t = api::threadSpawn(&handoffWaker, p);
    while (api::read<std::uint32_t>(probe->flag) == 0) {
        if (api::futexWait(probe->flag, 0) == 0) {
            probe->woken = true;
            break;
        }
    }
    probe->waiterAfter = api::cycle();
    api::threadJoin(t);
    api::free(probe->flag);
}

TEST(Futex, WakeForwardsWaiterClock)
{
    Config cfg = smallConfig(2);
    Simulator sim(cfg);
    HandoffProbe probe;
    sim.run(&handoffMain, &probe);
    // Only an actual futex wakeup is a synchronization event; if the
    // waiter saw the flag before sleeping (legal lax interleaving),
    // there is nothing to forward.
    if (probe.woken)
        EXPECT_GE(probe.waiterAfter, probe.wakerClock);
    else
        GTEST_SKIP() << "waiter never blocked in this interleaving";
}

// ------------------------------------------------------ condition variable

struct CondProbe
{
    addr_t mutex = 0, cond = 0, value = 0;
    std::uint32_t observed = 0;
};

void
condSignaler(void* p)
{
    auto* probe = static_cast<CondProbe*>(p);
    api::mutexLock(probe->mutex);
    api::write<std::uint32_t>(probe->value, 42);
    api::condSignal(probe->cond);
    api::mutexUnlock(probe->mutex);
}

void
condMain(void* p)
{
    auto* probe = static_cast<CondProbe*>(p);
    probe->mutex = api::malloc(api::MUTEX_BYTES);
    probe->cond = api::malloc(api::COND_BYTES);
    probe->value = api::malloc(4);
    api::mutexInit(probe->mutex);
    api::condInit(probe->cond);
    api::write<std::uint32_t>(probe->value, 0);

    api::mutexLock(probe->mutex);
    tile_id_t t = api::threadSpawn(&condSignaler, p);
    while (api::read<std::uint32_t>(probe->value) == 0)
        api::condWait(probe->cond, probe->mutex);
    probe->observed = api::read<std::uint32_t>(probe->value);
    api::mutexUnlock(probe->mutex);
    api::threadJoin(t);
}

TEST(CondVar, WaitReleasesMutexAndWakes)
{
    Config cfg = smallConfig(2);
    Simulator sim(cfg);
    CondProbe probe;
    sim.run(&condMain, &probe);
    EXPECT_EQ(probe.observed, 42u);
}

// ----------------------------------------------------------------- file IO

struct FileProbe
{
    std::string path;
    std::int64_t written = 0;
    std::int64_t readBack = 0;
    std::string content;
    int badFd = 0;
};

void
fileMain(void* p)
{
    auto* probe = static_cast<FileProbe*>(p);
    const char payload[] = "graphite-file-test";

    addr_t buf = api::malloc(64);
    api::writeMem(buf, payload, sizeof(payload));

    int fd = api::fileOpen(probe->path.c_str(), 1); // write
    probe->written = api::fileWrite(fd, buf, sizeof(payload));
    api::fileClose(fd);

    addr_t rbuf = api::malloc(64);
    fd = api::fileOpen(probe->path.c_str(), 0); // read
    probe->readBack = api::fileRead(fd, rbuf, sizeof(payload));
    api::fileClose(fd);

    char host[64] = {};
    api::readMem(rbuf, host, sizeof(payload));
    probe->content = host;

    probe->badFd = static_cast<int>(api::fileRead(12345, rbuf, 4));
    api::free(buf);
    api::free(rbuf);
}

TEST(FileIo, RoundTripThroughMcp)
{
    Config cfg = smallConfig(2, 2);
    Simulator sim(cfg);
    FileProbe probe;
    probe.path = "/tmp/graphite_file_test.bin";
    sim.run(&fileMain, &probe);
    EXPECT_EQ(probe.written, 19);
    EXPECT_EQ(probe.readBack, 19);
    EXPECT_EQ(probe.content, "graphite-file-test");
    EXPECT_EQ(probe.badFd, -1);
    EXPECT_GT(sim.threadManager().totalSyscalls(), 0u);
    std::remove(probe.path.c_str());
}

// ---------------------------------------------------------- memory syscalls

void
memSyscallMain(void* p)
{
    auto* results = static_cast<std::vector<addr_t>*>(p);
    addr_t old_brk = api::brk(0);
    addr_t new_brk = api::brk(old_brk + 8192);
    addr_t region = api::mmap(10000);
    api::write<std::uint64_t>(region, 0x1122334455ull);
    std::uint64_t v = api::read<std::uint64_t>(region);
    api::munmap(region, 10000);
    results->push_back(old_brk);
    results->push_back(new_brk);
    results->push_back(region);
    results->push_back(v);
}

TEST(MemSyscalls, BrkMmapMunmapFromAppThread)
{
    Config cfg = smallConfig(2);
    Simulator sim(cfg);
    std::vector<addr_t> r;
    sim.run(&memSyscallMain, &r);
    ASSERT_EQ(r.size(), 4u);
    EXPECT_EQ(r[1], r[0] + 8192);
    EXPECT_GE(r[2], AddressSpaceLayout::MMAP_BASE);
    EXPECT_EQ(r[3], 0x1122334455ull);
}

// ------------------------------------------------------------- messaging

void
fanWorker(void*)
{
    api::Message m = api::msgRecv();
    std::uint32_t v;
    std::memcpy(&v, m.data.data(), 4);
    v *= 2;
    api::msgSend(m.sender, &v, 4);
}

void
fanMain(void* p)
{
    auto* sum = static_cast<std::uint64_t*>(p);
    std::vector<tile_id_t> tids;
    for (int i = 0; i < 3; ++i)
        tids.push_back(api::threadSpawn(&fanWorker, nullptr));
    for (size_t i = 0; i < tids.size(); ++i) {
        std::uint32_t v = static_cast<std::uint32_t>(i + 1);
        api::msgSend(tids[i], &v, 4);
    }
    for (size_t i = 0; i < tids.size(); ++i) {
        api::Message m = api::msgRecv();
        std::uint32_t v;
        std::memcpy(&v, m.data.data(), 4);
        *sum += v;
    }
    for (tile_id_t t : tids)
        api::threadJoin(t);
}

TEST(Messaging, FanOutFanIn)
{
    Config cfg = smallConfig(4, 2);
    Simulator sim(cfg);
    std::uint64_t sum = 0;
    sim.run(&fanMain, &sum);
    EXPECT_EQ(sum, 2u + 4u + 6u);
}

// ----------------------------------------------------------- sim lifecycle

void
singleAllocMain(void* p)
{
    auto* out = static_cast<std::uint64_t*>(p);
    addr_t a = api::malloc(8);
    api::write<std::uint64_t>(a, 7);
    *out = api::read<std::uint64_t>(a);
    api::free(a);
}

TEST(Simulator, BackToBackRunsAreIndependent)
{
    for (int i = 0; i < 3; ++i) {
        Config cfg = smallConfig(2);
        Simulator sim(cfg);
        std::uint64_t sum = 0;
        sim.run(&singleAllocMain, &sum);
        EXPECT_EQ(sum, 7u);
    }
}

} // namespace
} // namespace graphite
