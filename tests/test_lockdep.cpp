/**
 * @file
 * Lockdep subsystem tests: planted AB/BA inversions are reported with
 * both acquisition sites the first time the wrong order *could*
 * deadlock (not when it actually does), ORDERED/MULTI class flags,
 * condvar wait release/reacquire discipline, held-set visibility for
 * the telemetry plane (snapshot render + crash-handler dump), the
 * zero-overhead disabled build, and fingerprint neutrality: arming
 * lockdep must not perturb simulated results.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "check/fuzz_program.h"
#include "check/fuzz_runner.h"
#include "common/config.h"
#include "common/lockdep.h"
#include "obs/telemetry/flight_recorder.h"

// Defined in lockdep_force_off_probe.cpp, a TU compiled with
// -DGRAPHITE_LOCKDEP_FORCE_OFF linked into this armed binary.
bool lockdepForceOffProbeExercise();

// Detection tests are meaningless in a -DGRAPHITE_LOCKDEP=OFF tree,
// where the wrappers are plain std::mutex pass-throughs.
#if GRAPHITE_LOCKDEP_ON
#define LOCKDEP_REQUIRE_ARMED() (void)0
#else
#define LOCKDEP_REQUIRE_ARMED() \
    GTEST_SKIP() << "built with GRAPHITE_LOCKDEP=OFF"
#endif

namespace graphite
{
namespace
{

using lockdep::LockClass;
using lockdep::Mode;

std::string
tempPath(const char* tag)
{
    const char* dir = std::getenv("TMPDIR");
    std::ostringstream os;
    os << (dir != nullptr ? dir : "/tmp") << "/graphite_lockdep_"
       << tag << "_" << ::getpid();
    return os.str();
}

std::string
slurp(const std::string& path)
{
    std::ifstream f(path);
    std::ostringstream os;
    os << f.rdbuf();
    return os.str();
}

/// Reap @p pid with a deadline; SIGKILLs on timeout so a regression
/// that reintroduces an actual deadlock fails fast instead of hanging
/// the suite.
int
reapWithTimeout(pid_t pid, int timeout_sec)
{
    int status = -1;
    const long poll_us = 20000;
    long waited = 0;
    const long limit = static_cast<long>(timeout_sec) * 1000000;
    for (;;) {
        pid_t r = ::waitpid(pid, &status, WNOHANG);
        if (r == pid)
            return status;
        if (waited >= limit) {
            ::kill(pid, SIGKILL);
            ::waitpid(pid, &status, 0);
            return status;
        }
        ::usleep(poll_us);
        waited += poll_us;
    }
}

/// Warn-mode fixture: violations are recorded (count + report text)
/// but execution continues, so a single test can plant an inversion
/// and then inspect the diagnosis. Always restores enforcing mode.
class LockdepWarn : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        lockdep::resetForTest();
        lockdep::setMode(Mode::Warn);
    }
    void TearDown() override
    {
        lockdep::setMode(Mode::Enforce);
        lockdep::resetForTest();
    }
};

// ------------------------------------------------- planted inversions

TEST_F(LockdepWarn, AbBaFlaggedOnFirstInversionWithBothSites)
{
    LOCKDEP_REQUIRE_ARMED();
    lockdep::OrderedMutex a(LockClass::race_records);
    lockdep::OrderedMutex b(LockClass::span_sink);

    // Legal order first: records the a->b edge with both sites.
    {
        lockdep::Guard ga(a);
        lockdep::Guard gb(b); // EDGE-SITE marker (see assertions)
    }
    EXPECT_EQ(lockdep::violationCount(), 0u);

    // Planted inversion: flagged at acquire time, on the FIRST
    // inversion, with no second thread involved — the discipline is
    // checked, not the schedule, so control returns here instead of
    // ever reaching a two-thread hang.
    {
        lockdep::Guard gb(b);
        lockdep::Guard ga(a);
    }
    EXPECT_EQ(lockdep::violationCount(), 1u);

    std::string report = lockdep::lastReport();
    EXPECT_NE(report.find("lock-order violation"), std::string::npos);
    EXPECT_NE(report.find("race_records"), std::string::npos);
    EXPECT_NE(report.find("span_sink"), std::string::npos);
    // Both sites of the violating acquisition are named...
    EXPECT_NE(report.find("test_lockdep.cpp"), std::string::npos);
    EXPECT_NE(report.find("while holding"), std::string::npos);
    // ...and so is the previously-observed legal order, proving both
    // orders exist in the code (the deadlock pair).
    EXPECT_NE(report.find("opposite order previously observed"),
              std::string::npos);
}

TEST(LockdepPlanted, TwoThreadAbBaExitsEnforceCodeNoDeadlock)
{
    LOCKDEP_REQUIRE_ARMED();
    // The genuinely deadlocking schedule: t1 holds A wants B, t2 holds
    // B wants A. Fork-isolated because enforcing mode exits the
    // process; the assertion is that the child exits with the lockdep
    // code — BEFORE the classic hang — instead of being SIGKILLed by
    // the reap timeout.
    pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        lockdep::setMode(Mode::Enforce);
        static lockdep::OrderedMutex a(LockClass::race_records);
        static lockdep::OrderedMutex b(LockClass::span_sink);
        std::atomic<bool> t1_has_a{false};
        std::atomic<bool> t2_has_b{false};

        std::thread t1([&] {
            a.lock();
            t1_has_a.store(true);
            while (!t2_has_b.load())
                std::this_thread::yield();
            b.lock(); // blocks on t2 — the half that would hang
        });
        std::thread t2([&] {
            b.lock();
            t2_has_b.store(true);
            while (!t1_has_a.load())
                std::this_thread::yield();
            // Checked before blocking: reported + _Exit(87), so the
            // process dies with a diagnosis instead of deadlocking.
            a.lock();
        });
        t1.join();
        t2.join();
        std::_Exit(3); // unreachable unless detection failed
    }

    int status = reapWithTimeout(pid, 30);
    ASSERT_TRUE(WIFEXITED(status))
        << "child hung or crashed instead of reporting the inversion";
    EXPECT_EQ(WEXITSTATUS(status), 87);
}

// ----------------------------------------------------- class flags

TEST_F(LockdepWarn, OrderedClassRequiresAscendingInstances)
{
    LOCKDEP_REQUIRE_ARMED();
    lockdep::OrderedMutex s0(LockClass::mem_shard, 0);
    lockdep::OrderedMutex s1(LockClass::mem_shard, 1);

    {
        lockdep::Guard g0(s0);
        lockdep::Guard g1(s1); // ascending: legal
    }
    EXPECT_EQ(lockdep::violationCount(), 0u);

    {
        lockdep::Guard g1(s1);
        lockdep::Guard g0(s0); // descending: flagged
    }
    EXPECT_EQ(lockdep::violationCount(), 1u);
    EXPECT_NE(lockdep::lastReport().find("ascending instance"),
              std::string::npos);
}

TEST_F(LockdepWarn, MultiClassNestsInAnyOrder)
{
    // app_target models mutexes owned by the simulated application;
    // their discipline is the app's business, not the simulator's.
    lockdep::OrderedMutex m1(LockClass::app_target, 1);
    lockdep::OrderedMutex m2(LockClass::app_target, 2);
    {
        lockdep::Guard g2(m2);
        lockdep::Guard g1(m1);
    }
    {
        lockdep::Guard g1(m1);
        lockdep::Guard g2(m2);
    }
    EXPECT_EQ(lockdep::violationCount(), 0u);
}

// ----------------------------------------------------- condvar waits

TEST_F(LockdepWarn, CondVarWaitReleasesAndReacquiresInOrder)
{
    LOCKDEP_REQUIRE_ARMED();
    lockdep::OrderedMutex m(LockClass::global_progress);
    lockdep::CondVar cv;
    std::atomic<bool> go{false};

    std::thread waiter([&] {
        lockdep::UniqueLock l(m);
        cv.wait(l, [&] { return go.load(); });
        // Reacquired: taking a later-ranked class under it is legal.
        lockdep::OrderedMutex inner(LockClass::skew_tracker);
        lockdep::Guard g(inner);
    });

    // While the waiter is parked, the waited mutex has left its
    // held-set and shows as pending — exactly what the watchdog hang
    // dump needs to name "waiting for X" threads.
    bool saw_pending = false;
    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (std::chrono::steady_clock::now() < deadline) {
        for (const lockdep::ThreadHeldSet& s :
             lockdep::heldSnapshot()) {
            if (s.hasPending &&
                s.pending.cls == LockClass::global_progress &&
                s.held.empty())
                saw_pending = true;
        }
        if (saw_pending)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_TRUE(saw_pending);

    {
        lockdep::Guard g(m);
        go.store(true);
    }
    cv.notify_all();
    waiter.join();
    EXPECT_EQ(lockdep::violationCount(), 0u);
}

TEST_F(LockdepWarn, CondVarWaitOnNonInnermostLockFlagged)
{
    LOCKDEP_REQUIRE_ARMED();
    lockdep::OrderedMutex outer(LockClass::global_progress);
    lockdep::OrderedMutex inner(LockClass::skew_tracker);
    lockdep::CondVar cv;

    lockdep::UniqueLock l(outer);
    {
        lockdep::Guard g(inner);
        // Waiting on `outer` would release a mid-stack lock while
        // keeping `inner`, a recipe for waking into an inverted order.
        cv.wait_for(l, std::chrono::milliseconds(5));
    }
    EXPECT_GE(lockdep::violationCount(), 1u);
    EXPECT_NE(lockdep::lastReport().find("innermost"),
              std::string::npos);
}

// ------------------------------------------- telemetry visibility

TEST_F(LockdepWarn, RenderHeldSetsNamesClassAndSite)
{
    LOCKDEP_REQUIRE_ARMED();
    lockdep::OrderedMutex m(LockClass::profiler);
    lockdep::Guard g(m);
    std::string text = lockdep::renderHeldSets();
    EXPECT_NE(text.find("profiler"), std::string::npos);
    EXPECT_NE(text.find("test_lockdep.cpp"), std::string::npos);
}

TEST(LockdepCrash, CrashDumpIncludesHeldSets)
{
    LOCKDEP_REQUIRE_ARMED();
    std::string dump_path = tempPath("crash");
    pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        using obs::telemetry::FlightRecorder;
        FlightRecorder& fr = FlightRecorder::instance();
        fr.configure(64);
        fr.installCrashHandler(dump_path);
        lockdep::OrderedMutex m(LockClass::profiler);
        lockdep::Guard g(m);
        ::raise(SIGSEGV);
        std::_Exit(0); // unreachable
    }

    int status = reapWithTimeout(pid, 30);
    ASSERT_TRUE(WIFSIGNALED(status));
    EXPECT_EQ(WTERMSIG(status), SIGSEGV);

    std::string dump = slurp(dump_path);
    std::remove(dump_path.c_str());
    ASSERT_FALSE(dump.empty());
    EXPECT_NE(dump.find("=== lockdep held-sets ==="),
              std::string::npos);
    EXPECT_NE(dump.find("holds profiler"), std::string::npos);
    EXPECT_NE(dump.find("test_lockdep.cpp"), std::string::npos);
}

// ------------------------------------------------- disabled build

TEST(LockdepDisabled, ForceOffVariantCompilesAndAddsNoState)
{
    EXPECT_TRUE(lockdepForceOffProbeExercise());
}

// ------------------------------------------- fingerprint neutrality

TEST(LockdepFuzz, FingerprintUnchangedArmedVsOff)
{
    // Arming lockdep must be observationally inert for the simulated
    // program: same fuzz program, same config, fingerprints equal
    // whether the checker is off or enforcing.
    const std::uint64_t seed = 7;
    check::FuzzProgram prog = check::FuzzProgram::generate(seed);
    Config cfg = check::makeFuzzConfig(check::baselinePoint(), seed);
    check::RunOptions opt;
    opt.watcherPeriodUs = 100;
    opt.validateEvery = 4;

    lockdep::setMode(Mode::Off);
    check::FuzzResult off = check::runFuzzProgram(prog, cfg, opt);
    lockdep::setMode(Mode::Enforce);
    check::FuzzResult armed = check::runFuzzProgram(prog, cfg, opt);

    EXPECT_TRUE(off.violations.empty());
    EXPECT_TRUE(armed.violations.empty());
    EXPECT_NE(off.fingerprint, 0u);
    EXPECT_EQ(off.fingerprint, armed.fingerprint);
}

} // namespace
} // namespace graphite
