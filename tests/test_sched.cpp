/**
 * @file
 * Host execution scheduler tests (src/host/scheduler): config parsing,
 * pool smoke runs through the full Simulator, deterministic-mode
 * reproducibility across pool widths, skew-gate parking under both
 * LaxBarrier and LaxP2P, and a free-running fuzz stress that doubles
 * as the tsan_sched CI entry under GRAPHITE_SANITIZE=thread.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "check/fuzz_program.h"
#include "check/fuzz_runner.h"
#include "common/config.h"
#include "common/log.h"
#include "core/api.h"
#include "core/simulator.h"
#include "host/scheduler.h"
#include "perf/core_model.h"
#include "sync/sync_model.h"

namespace graphite
{
namespace
{

#if defined(__SANITIZE_THREAD__)
constexpr bool kTsan = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
constexpr bool kTsan = true;
#else
constexpr bool kTsan = false;
#endif
#else
constexpr bool kTsan = false;
#endif

Config
schedConfig(const std::string& mode, int host_threads, int tiles = 4)
{
    Config cfg = defaultTargetConfig();
    cfg.setInt("general/total_tiles", tiles);
    cfg.set("host/scheduler", mode);
    cfg.setInt("host/threads", host_threads);
    return cfg;
}

check::RunOptions
quickOpts()
{
    check::RunOptions opt;
    opt.watcherPeriodUs = 100;
    opt.validateEvery = 4;
    return opt;
}

// ------------------------------------------------------------------ config

TEST(SchedulerConfig, ParsesModesAndDefaults)
{
    Config cfg = defaultTargetConfig();
    host::SchedulerConfig sc = host::SchedulerConfig::fromConfig(cfg);
    EXPECT_EQ(sc.mode, host::SchedMode::FreeRunning);
    EXPECT_GE(sc.hostThreads, 1); // 0 resolves to hardware concurrency
    EXPECT_EQ(sc.quantumCycles, 10000u);
    EXPECT_EQ(sc.skewSlack, 0u);

    cfg.set("host/scheduler", "deterministic");
    cfg.setInt("host/threads", 3);
    cfg.setInt("host/quantum_cycles", 500);
    cfg.setInt("host/skew_slack", 1234);
    sc = host::SchedulerConfig::fromConfig(cfg);
    EXPECT_EQ(sc.mode, host::SchedMode::Deterministic);
    EXPECT_EQ(sc.hostThreads, 3);
    EXPECT_EQ(sc.quantumCycles, 500u);
    EXPECT_EQ(sc.skewSlack, 1234u);

    cfg.set("host/scheduler", "off");
    EXPECT_EQ(host::SchedulerConfig::fromConfig(cfg).mode,
              host::SchedMode::Off);

    cfg.set("host/scheduler", "bogus");
    EXPECT_THROW(host::SchedulerConfig::fromConfig(cfg), FatalError);
    cfg.set("host/scheduler", "free_running");
    cfg.setInt("host/quantum_cycles", 0);
    EXPECT_THROW(host::SchedulerConfig::fromConfig(cfg), FatalError);
}

TEST(SchedulerConfig, OffModeLeavesSimulatorWithoutScheduler)
{
    Config cfg = schedConfig("off", 2);
    Simulator sim(cfg);
    EXPECT_EQ(sim.hostScheduler(), nullptr);
}

// ------------------------------------------------------------- pool smoke

struct SmokeProbe
{
    addr_t base = 0;
    std::atomic<int> ran{0};
};

void
smokeWorker(void* p)
{
    auto* probe = static_cast<SmokeProbe*>(p);
    probe->ran.fetch_add(1);
    tile_id_t self = api::tileId();
    for (int i = 0; i < 50; ++i) {
        api::exec(InstrClass::IntAlu, 400);
        // Shared-line traffic so the pool interleaves real coherence.
        std::uint32_t v = api::read<std::uint32_t>(probe->base);
        api::write<std::uint32_t>(probe->base + 4 * self, v + 1);
    }
}

void
smokeMain(void* p)
{
    auto* probe = static_cast<SmokeProbe*>(p);
    probe->base = api::malloc(64);
    api::write<std::uint32_t>(probe->base, 7);
    std::vector<tile_id_t> tids;
    for (int i = 0; i < 3; ++i)
        tids.push_back(api::threadSpawn(&smokeWorker, p));
    smokeWorker(p);
    for (tile_id_t t : tids)
        api::threadJoin(t);
    api::free(probe->base);
}

// The scaling_smoke ctest entry (quick label) runs exactly this suite:
// the pool at host/threads=2, in both modes, through the full stack.
TEST(SchedSmoke, FreeRunningPoolWidth2Completes)
{
    Config cfg = schedConfig("free_running", 2);
    cfg.setInt("host/quantum_cycles", 1000);
    Simulator sim(cfg);
    SmokeProbe probe;
    sim.run(&smokeMain, &probe);
    EXPECT_EQ(probe.ran.load(), 4);
    host::HostScheduler* sched = sim.hostScheduler();
    ASSERT_NE(sched, nullptr);
    EXPECT_EQ(sched->slots(), 2);
    EXPECT_GT(sched->quantaCounter()->load(), 0u);
    // Everything drained: no slot held, nobody waiting.
    host::PoolGauges g = sched->gauges();
    EXPECT_EQ(g.executing, 0);
    EXPECT_EQ(g.runnable, 0);
    EXPECT_EQ(g.blocked, 0);
    EXPECT_EQ(g.skewParked, 0);
}

TEST(SchedSmoke, DeterministicPoolWidth2Completes)
{
    Config cfg = schedConfig("deterministic", 2);
    cfg.setInt("host/quantum_cycles", 1000);
    Simulator sim(cfg);
    SmokeProbe probe;
    sim.run(&smokeMain, &probe);
    EXPECT_EQ(probe.ran.load(), 4);
    host::HostScheduler* sched = sim.hostScheduler();
    ASSERT_NE(sched, nullptr);
    // Deterministic mode serializes onto a single slot regardless of
    // the configured pool width (see DESIGN.md).
    EXPECT_EQ(sched->slots(), 1);
    EXPECT_GT(sched->quantaCounter()->load(), 0u);
}

// ---------------------------------------------------------- determinism

TEST(SchedDeterminism, ResultsIdenticalAcrossPoolWidths)
{
    const std::uint64_t seed = 5;
    check::FuzzProgram prog = check::FuzzProgram::generate(seed);
    std::uint64_t fp0 = 0;
    cycle_t cycles0 = 0;
    for (int ht : {1, 2, 4}) {
        Config cfg =
            check::makeFuzzConfig(check::baselinePoint(), seed);
        cfg.set("host/scheduler", "deterministic");
        cfg.setInt("host/threads", ht);
        check::FuzzResult res =
            check::runFuzzProgram(prog, cfg, quickOpts());
        EXPECT_TRUE(res.violations.empty())
            << "ht=" << ht << ": " << res.violations.front();
        if (ht == 1) {
            fp0 = res.fingerprint;
            cycles0 = res.simulatedCycles;
        } else {
            EXPECT_EQ(res.fingerprint, fp0) << "ht=" << ht;
            // Stronger than fingerprint equality: the timing result is
            // schedule-dependent in general, so identical cycles means
            // the schedule itself reproduced.
            EXPECT_EQ(res.simulatedCycles, cycles0) << "ht=" << ht;
        }
    }
}

TEST(SchedDeterminism, RepeatedRunsReproduce)
{
    const std::uint64_t seed = 11;
    check::FuzzProgram prog = check::FuzzProgram::generate(seed);
    Config cfg = check::makeFuzzConfig(check::baselinePoint(), seed);
    cfg.set("host/scheduler", "deterministic");
    cfg.setInt("host/threads", 2);
    check::FuzzResult a = check::runFuzzProgram(prog, cfg, quickOpts());
    check::FuzzResult b = check::runFuzzProgram(prog, cfg, quickOpts());
    EXPECT_EQ(a.fingerprint, b.fingerprint);
    EXPECT_EQ(a.simulatedCycles, b.simulatedCycles);
}

// ------------------------------------------------------------- skew gate
//
// These tests drive HostScheduler (and the blocking sync models with an
// attached scheduler) directly with CoreModels on test-owned host
// threads, like test_sync.cpp does for the bare models. The skew is
// forced by construction -- one core is held at a low clock until the
// other has provably parked -- so the assertions do not depend on how
// the host OS happens to interleave a full-simulator run (on a 1-CPU
// host that interleaving makes clock gaps genuinely nondeterministic).
// Full-stack integration of the same code paths runs in SchedStress.

host::SchedulerConfig
unitSchedConfig(int host_threads, cycle_t quantum, cycle_t slack)
{
    host::SchedulerConfig sc;
    sc.mode = host::SchedMode::FreeRunning;
    sc.hostThreads = host_threads;
    sc.quantumCycles = quantum;
    sc.skewSlack = slack;
    return sc;
}

void
registerTiles(host::HostScheduler& sched, const CoreModel& a,
              const CoreModel& b)
{
    sched.expectThread(0);
    sched.registerThread(0, &a);
    sched.expectThread(1);
    sched.registerThread(1, &b);
}

TEST(SchedSkew, SchedulerGateParksFastTile)
{
    constexpr cycle_t kSlack = 1000;
    constexpr cycle_t kTarget = 30000;
    host::HostScheduler sched(unitSchedConfig(2, 100, kSlack), 2);
    Config cfg = defaultTargetConfig();
    CoreModel fast(0, cfg), slow(1, cfg);
    registerTiles(sched, fast, slow);

    std::thread fastThr([&] {
        sched.start(0);
        while (fast.cycle() < kTarget) {
            fast.addLatency(100);
            sched.quantumCheck(0);
        }
        sched.finishThread(0);
    });
    std::thread slowThr([&] {
        sched.start(1);
        // Hold at clock 0: the fast tile's first quantum boundary past
        // the slack MUST park it, because the minimum schedulable clock
        // is pinned to 0 while we sit here.
        while (sched.skewParksCounter()->load() == 0)
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        // Catch up; each quantum boundary (and each slot release)
        // promotes the parked fast tile once it is back within slack.
        while (slow.cycle() < kTarget) {
            slow.addLatency(100);
            sched.quantumCheck(1);
        }
        sched.finishThread(1);
    });
    fastThr.join();
    slowThr.join();

    EXPECT_GT(sched.skewParksCounter()->load(), 0u);
    EXPECT_GT(sched.skewParkNsCounter()->load(), 0u);
    // Both tiles reached the target: parking never deadlocked, and the
    // rotation drained cleanly.
    EXPECT_GE(fast.cycle(), kTarget);
    EXPECT_GE(slow.cycle(), kTarget);
    host::PoolGauges g = sched.gauges();
    EXPECT_EQ(g.executing, 0);
    EXPECT_EQ(g.runnable, 0);
    EXPECT_EQ(g.skewParked, 0);
}

TEST(SchedSkew, LaxP2PParksOnSchedulerInsteadOfSleeping)
{
    constexpr cycle_t kSlack = 1000;
    constexpr cycle_t kTarget = 30000;
    // Scheduler-level gate off (slack 0) and a huge quantum: any park
    // observed below can only have come through LaxP2P's skewPark call.
    host::HostScheduler sched(unitSchedConfig(2, 1000000, 0), 2);
    LaxP2PSync p2p(2, kSlack, /*interval=*/100, /*seed=*/7);
    p2p.attachScheduler(&sched);
    Config cfg = defaultTargetConfig();
    CoreModel fast(0, cfg), slow(1, cfg);
    registerTiles(sched, fast, slow);
    std::atomic<bool> slowIn{false};

    std::thread fastThr([&] {
        sched.start(0);
        p2p.threadStart(fast);
        // Wait until the partner is registered, or periodicSync finds
        // no candidate and never parks.
        while (!slowIn.load())
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        while (fast.cycle() < kTarget) {
            fast.addLatency(100);
            p2p.periodicSync(fast);
        }
        p2p.threadExit(fast);
        sched.finishThread(0);
    });
    std::thread slowThr([&] {
        sched.start(1);
        p2p.threadStart(slow);
        slowIn.store(true);
        // Pin the minimum clock to 0 until the fast tile has parked.
        while (sched.skewParksCounter()->load() == 0)
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        while (slow.cycle() < kTarget) {
            slow.addLatency(100);
            p2p.periodicSync(slow);
        }
        p2p.threadExit(slow);
        sched.finishThread(1);
    });
    fastThr.join();
    slowThr.join();

    // The p2p "sleep" statistics measure scheduler parks now.
    EXPECT_GT(p2p.syncEvents(), 0u);
    EXPECT_GT(p2p.syncWaitMicroseconds(), 0u);
    EXPECT_GT(sched.skewParksCounter()->load(), 0u);
    EXPECT_GE(fast.cycle(), kTarget);
    EXPECT_GE(slow.cycle(), kTarget);
}

TEST(SchedSkew, LaxBarrierWaitReleasesSlotAndRecordsWait)
{
    constexpr cycle_t kQuantum = 1000;
    constexpr int kEpochs = 5;
    // A single execution slot makes slot release structurally load-
    // bearing: if arrive() held its slot across the epoch wait, the
    // laggard could never run and this test would deadlock (caught by
    // the ctest timeout) instead of pass.
    host::HostScheduler sched(unitSchedConfig(1, 1000000, 0), 2);
    LaxBarrierSync barrier(kQuantum, 2);
    barrier.attachScheduler(&sched);
    Config cfg = defaultTargetConfig();
    CoreModel a(0, cfg), b(1, cfg);
    registerTiles(sched, a, b);
    std::atomic<bool> aIn{false}, bIn{false};

    std::thread ta([&] {
        // Register with the barrier before taking the slot: with one
        // slot, whoever is second blocks in start() until the first
        // thread's arrive() releases it.
        barrier.threadStart(a);
        aIn.store(true);
        while (!bIn.load())
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        sched.start(0);
        for (int i = 0; i < kEpochs; ++i) {
            a.addLatency(kQuantum);
            barrier.periodicSync(a);
        }
        barrier.threadExit(a);
        sched.finishThread(0);
    });
    std::thread tb([&] {
        barrier.threadStart(b);
        bIn.store(true);
        while (!aIn.load())
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        sched.start(1);
        for (int i = 0; i < kEpochs; ++i) {
            // Stagger so the partner measurably waits on each epoch.
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
            b.addLatency(kQuantum);
            barrier.periodicSync(b);
        }
        barrier.threadExit(b);
        sched.finishThread(1);
    });
    ta.join();
    tb.join();

    EXPECT_EQ(barrier.syncEvents(), static_cast<stat_t>(kEpochs));
    EXPECT_GT(barrier.syncWaitMicroseconds(), 0u);
    host::PoolGauges g = sched.gauges();
    EXPECT_EQ(g.executing, 0);
    EXPECT_EQ(g.blocked, 0);
}

// ---------------------------------------------------------------- stress

// Free-running pool over the fuzz harness: full spawn/join, futexes,
// messaging, shared memory — the scheduler must preserve every
// invariant. Under GRAPHITE_SANITIZE=thread this is the tsan_sched
// CI entry.
TEST(SchedStress, FreeRunningFuzzInvariantsHold)
{
    const int seeds = kTsan ? 2 : 4;
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
        check::FuzzProgram prog = check::FuzzProgram::generate(seed);
        Config cfg =
            check::makeFuzzConfig(check::baselinePoint(), seed);
        cfg.set("host/scheduler", "free_running");
        cfg.setInt("host/threads", 4);
        cfg.setInt("host/quantum_cycles", 1000);
        cfg.setInt("host/skew_slack", 50000);
        check::FuzzResult res =
            check::runFuzzProgram(prog, cfg, quickOpts());
        EXPECT_TRUE(res.violations.empty())
            << "seed " << seed << ": " << res.violations.front();
    }
}

// Full-stack integration of the blocking sync models with the pool:
// barrier arrive()/leave() and p2p skewPark() under real spawn/join,
// futex, and messaging traffic. Assertions are timing-independent
// (invariant violations only); the wait-statistics assertions live in
// the deterministic SchedSkew unit tests above.
TEST(SchedStress, BlockingSyncModelsUnderFreeRunningPool)
{
    for (const char* model : {"lax_barrier", "lax_p2p"}) {
        const std::uint64_t seed = 3;
        check::FuzzProgram prog = check::FuzzProgram::generate(seed);
        Config cfg =
            check::makeFuzzConfig(check::baselinePoint(), seed);
        cfg.set("sync/model", model);
        cfg.setInt("sync/quantum", 2000);
        cfg.setInt("sync/slack", 5000);
        cfg.setInt("sync/p2p_interval", 500);
        cfg.set("host/scheduler", "free_running");
        cfg.setInt("host/threads", 2);
        cfg.setInt("host/quantum_cycles", 1000);
        check::FuzzResult res =
            check::runFuzzProgram(prog, cfg, quickOpts());
        EXPECT_TRUE(res.violations.empty())
            << model << ": " << res.violations.front();
    }
}

} // namespace
} // namespace graphite
