/**
 * @file
 * Unit tests for the core performance model: instruction costs, branch
 * predictors, load/store structural hazards, pseudo-instructions, and
 * the lax clock-forwarding rule.
 */

#include <gtest/gtest.h>

#include "common/config.h"
#include "common/log.h"
#include "perf/branch_predictor.h"
#include "perf/core_model.h"

namespace graphite
{
namespace
{

Config
coreConfig()
{
    Config cfg = defaultTargetConfig();
    return cfg;
}

// --------------------------------------------------------- BranchPredictor

TEST(BranchPredictor, NullIsAlwaysCorrect)
{
    auto bp = BranchPredictor::create("none", 16);
    for (int i = 0; i < 10; ++i)
        EXPECT_TRUE(bp->predictAndTrain(i, i % 2 == 0));
    EXPECT_EQ(bp->mispredictions(), 0u);
    EXPECT_EQ(bp->predictions(), 10u);
}

TEST(BranchPredictor, AlwaysTakenMatchesTakenRate)
{
    auto bp = BranchPredictor::create("always_taken", 16);
    EXPECT_TRUE(bp->predictAndTrain(0, true));
    EXPECT_FALSE(bp->predictAndTrain(0, false));
}

TEST(BranchPredictor, OneBitTracksLastDirection)
{
    auto bp = BranchPredictor::create("one_bit", 16);
    bp->predictAndTrain(5, false);          // trains to not-taken
    EXPECT_TRUE(bp->predictAndTrain(5, false));
    EXPECT_FALSE(bp->predictAndTrain(5, true)); // flips
    EXPECT_TRUE(bp->predictAndTrain(5, true));
}

TEST(BranchPredictor, TwoBitNeedsTwoFlipsToChange)
{
    auto bp = BranchPredictor::create("two_bit", 16);
    // Initial state 2 (weakly taken).
    EXPECT_TRUE(bp->predictAndTrain(3, true));   // -> 3
    EXPECT_FALSE(bp->predictAndTrain(3, false)); // -> 2, still taken
    EXPECT_TRUE(bp->predictAndTrain(3, true));   // hysteresis held
}

TEST(BranchPredictor, LoopPatternAccuracy)
{
    // A loop branch (taken N-1 times, then not taken) should be mostly
    // predicted by a two-bit counter.
    auto bp = BranchPredictor::create("two_bit", 64);
    for (int iter = 0; iter < 50; ++iter) {
        for (int i = 0; i < 10; ++i)
            bp->predictAndTrain(1, i < 9);
    }
    double rate = static_cast<double>(bp->mispredictions()) /
                  static_cast<double>(bp->predictions());
    EXPECT_LT(rate, 0.15);
}

TEST(BranchPredictor, UnknownTypeIsFatal)
{
    EXPECT_THROW(BranchPredictor::create("oracle", 16), FatalError);
}

// --------------------------------------------------------------- CoreModel

TEST(CoreModel, InstructionCostsAdvanceClock)
{
    CoreModel core(0, coreConfig());
    core.executeInstructions(InstrClass::IntAlu, 10); // 10 * 1
    EXPECT_EQ(core.cycle(), 10u);
    core.executeInstructions(InstrClass::IntDiv, 1); // 18
    EXPECT_EQ(core.cycle(), 28u);
    EXPECT_EQ(core.instructionsRetired(), 11u);
    EXPECT_EQ(core.instructionsOfClass(InstrClass::IntAlu), 10u);
}

TEST(CoreModel, ConfigurableCosts)
{
    Config cfg = coreConfig();
    cfg.setInt("perf_model/core/cost/fp_mul", 99);
    CoreModel core(0, cfg);
    core.executeInstructions(InstrClass::FpMul, 1);
    EXPECT_EQ(core.cycle(), 99u);
}

TEST(CoreModel, MispredictChargesPenalty)
{
    Config cfg = coreConfig();
    cfg.set("perf_model/branch_predictor/type", "always_taken");
    cfg.setInt("perf_model/branch_predictor/mispredict_penalty", 20);
    CoreModel core(0, cfg);
    core.executeBranch(1, true); // predicted: 1 cycle
    EXPECT_EQ(core.cycle(), 1u);
    core.executeBranch(1, false); // mispredicted: 1 + 20
    EXPECT_EQ(core.cycle(), 22u);
}

TEST(CoreModel, LoadBlocksForLatency)
{
    CoreModel core(0, coreConfig());
    core.executeLoad(100);
    // Issue cost 1 + latency 100.
    EXPECT_EQ(core.cycle(), 101u);
}

TEST(CoreModel, StoreBufferHidesLatencyUntilFull)
{
    Config cfg = coreConfig();
    cfg.setInt("perf_model/core/store_buffer_size", 2);
    CoreModel core(0, cfg);
    // Two stores fit in the buffer: clock advances by issue cost only.
    core.executeStore(1000);
    core.executeStore(1000);
    EXPECT_EQ(core.cycle(), 2u);
    // Third store finds the buffer full and stalls until slot drains.
    core.executeStore(1000);
    EXPECT_GE(core.cycle(), 1000u);
    EXPECT_EQ(core.storeStalls(), 1u);
}

TEST(CoreModel, LoadQueueStructuralHazard)
{
    Config cfg = coreConfig();
    cfg.setInt("perf_model/core/load_queue_size", 1);
    CoreModel core(0, cfg);
    core.executeLoad(50);
    cycle_t after_first = core.cycle();
    core.executeLoad(50);
    EXPECT_GT(core.cycle(), after_first + 50); // serialized
}

TEST(CoreModel, ForwardClockIsMonotonicMax)
{
    CoreModel core(0, coreConfig());
    core.forwardClock(500);
    EXPECT_EQ(core.cycle(), 500u);
    core.forwardClock(100); // lax rule: no backwards movement
    EXPECT_EQ(core.cycle(), 500u);
}

TEST(CoreModel, SyncWaitPseudoTracksStat)
{
    CoreModel core(0, coreConfig());
    core.executePseudo(PseudoInstr::SyncWait, 300);
    EXPECT_EQ(core.cycle(), 300u);
    EXPECT_EQ(core.syncWaitCycles(), 300u);
    core.executePseudo(PseudoInstr::Spawn, 10);
    core.executePseudo(PseudoInstr::MessageReceive, 5);
    EXPECT_EQ(core.cycle(), 315u);
    EXPECT_EQ(core.syncWaitCycles(), 300u);
}

} // namespace
} // namespace graphite
