/**
 * @file
 * Concurrency stress for the two-level (tile + home-shard) locking in
 * MemorySystem: N host threads hammer private and shared lines with
 * plain accesses, atomicRmw, and kernel-side coherent access, then
 * every coherence invariant must still hold and per-tile access counts
 * must sum exactly. Run under GRAPHITE_SANITIZE=thread this doubles as
 * the tsan_mem CI entry.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "common/config.h"
#include "common/rng.h"
#include "mem/memory_system.h"

namespace graphite
{
namespace
{

#if defined(__SANITIZE_THREAD__)
constexpr int kIters = 2000; // TSan slows each access ~20x
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
constexpr int kIters = 2000;
#else
constexpr int kIters = 20000;
#endif
#else
constexpr int kIters = 20000;
#endif

struct MemFixture
{
    explicit MemFixture(int tiles = 8, Config overrides = Config())
        : cfg(defaultTargetConfig())
    {
        cfg.setInt("general/total_tiles", tiles);
        cfg.parseText(overrides.toString());
        topo = std::make_unique<ClusterTopology>(tiles, 1);
        fabric = std::make_unique<NetworkFabric>(*topo, cfg);
        mem = std::make_unique<MemorySystem>(*topo, *fabric, cfg);
    }

    Config cfg;
    std::unique_ptr<ClusterTopology> topo;
    std::unique_ptr<NetworkFabric> fabric;
    std::unique_ptr<MemorySystem> mem;
};

const addr_t PRIVATE_BASE = 0x1000'0000; // line-aligned heap region
const addr_t SHARED_BASE = 0x2000'0000;

/** Sum of per-tile access counts — must match issued ops exactly. */
stat_t
sumTileAccesses(MemFixture& f, int tiles)
{
    stat_t total = 0;
    for (tile_id_t t = 0; t < tiles; ++t)
        total += f.mem->stats(t).totalAccesses;
    return total;
}

void
expectAggregatesConsistent(MemFixture& f, int tiles)
{
    stat_t l2_misses = 0, writebacks = 0;
    for (tile_id_t t = 0; t < tiles; ++t) {
        l2_misses += f.mem->l2(t).misses();
        writebacks += f.mem->stats(t).writebacks;
    }
    EXPECT_EQ(f.mem->l2MissesCounter()->load(), l2_misses);
    EXPECT_EQ(f.mem->writebacksCounter()->load(), writebacks);
    EXPECT_EQ(f.mem->totalAccessesCounter()->load(),
              sumTileAccesses(f, tiles));
}

// Each thread owns one tile and hammers a private region: the pure
// fast-path case. No coherence traffic should corrupt anything, and
// every tile's counters must equal its own issue count.
TEST(MemConcurrency, PrivateLinesFastPath)
{
    constexpr int kThreads = 8;
    MemFixture f(kThreads);
    std::vector<std::thread> threads;
    for (int i = 0; i < kThreads; ++i) {
        threads.emplace_back([&f, i] {
            addr_t base = PRIVATE_BASE + static_cast<addr_t>(i) * 0x10000;
            Rng rng(1234 + i);
            for (int it = 0; it < kIters; ++it) {
                addr_t addr = base + (rng.next() % 64) * 8;
                std::uint64_t v = rng.next();
                f.mem->access(i, MemAccessType::Write, addr, &v, 8, it);
                std::uint64_t r = 0;
                f.mem->access(i, MemAccessType::Read, addr, &r, 8, it);
                EXPECT_EQ(r, v);
            }
        });
    }
    for (auto& t : threads)
        t.join();

    EXPECT_EQ(f.mem->validateCoherence(), "");
    for (tile_id_t t = 0; t < kThreads; ++t)
        EXPECT_EQ(f.mem->stats(t).totalAccesses,
                  static_cast<stat_t>(2 * kIters));
    expectAggregatesConsistent(f, kThreads);
}

// All threads fight over a handful of shared lines: invalidations,
// recalls, and upgrades race on the same home shards.
TEST(MemConcurrency, SharedLineContention)
{
    constexpr int kThreads = 8;
    constexpr int kSharedLines = 4;
    MemFixture f(kThreads);
    std::vector<std::thread> threads;
    for (int i = 0; i < kThreads; ++i) {
        threads.emplace_back([&f, i] {
            Rng rng(99 + i);
            for (int it = 0; it < kIters / 2; ++it) {
                addr_t addr =
                    SHARED_BASE +
                    (rng.next() % kSharedLines) * f.mem->lineSize();
                if (rng.next() % 2 == 0) {
                    std::uint64_t v = rng.next();
                    f.mem->access(i, MemAccessType::Write, addr, &v, 8,
                                  it);
                } else {
                    std::uint64_t r = 0;
                    f.mem->access(i, MemAccessType::Read, addr, &r, 8,
                                  it);
                }
            }
        });
    }
    for (auto& t : threads)
        t.join();

    EXPECT_EQ(f.mem->validateCoherence(), "");
    EXPECT_EQ(sumTileAccesses(f, kThreads),
              static_cast<stat_t>(kThreads) * (kIters / 2));
    expectAggregatesConsistent(f, kThreads);
}

// atomicRmw must stay atomic across tiles: a shared counter incremented
// from every thread lands on exactly threads*iters.
TEST(MemConcurrency, AtomicRmwSharedCounter)
{
    constexpr int kThreads = 8;
    MemFixture f(kThreads);
    const addr_t counter = SHARED_BASE;
    std::vector<std::thread> threads;
    for (int i = 0; i < kThreads; ++i) {
        threads.emplace_back([&f, i] {
            for (int it = 0; it < kIters / 4; ++it) {
                f.mem->atomicRmw(
                    i, counter, 8,
                    [](std::uint64_t v) { return v + 1; }, it);
            }
        });
    }
    for (auto& t : threads)
        t.join();

    std::uint64_t final_val = 0;
    f.mem->readCoherent(counter, &final_val, 8);
    EXPECT_EQ(final_val,
              static_cast<std::uint64_t>(kThreads) * (kIters / 4));
    EXPECT_EQ(f.mem->validateCoherence(), "");
    expectAggregatesConsistent(f, kThreads);
}

// Kernel-side coherent reads/writes interleave with application traffic
// on the same lines; the directory must never desynchronize.
TEST(MemConcurrency, CoherentAccessMix)
{
    constexpr int kThreads = 8;
    MemFixture f(kThreads);
    std::vector<std::thread> threads;
    for (int i = 0; i < kThreads; ++i) {
        threads.emplace_back([&f, i] {
            Rng rng(7 + i);
            for (int it = 0; it < kIters / 4; ++it) {
                addr_t addr =
                    SHARED_BASE + (rng.next() % 8) * f.mem->lineSize();
                switch (rng.next() % 4) {
                  case 0: {
                    std::uint64_t v = rng.next();
                    f.mem->access(i, MemAccessType::Write, addr, &v, 8,
                                  it);
                    break;
                  }
                  case 1: {
                    std::uint64_t r = 0;
                    f.mem->access(i, MemAccessType::Read, addr, &r, 8,
                                  it);
                    break;
                  }
                  case 2: {
                    std::uint64_t v = rng.next();
                    f.mem->writeCoherent(addr, &v, 8);
                    break;
                  }
                  default: {
                    std::uint64_t r = 0;
                    f.mem->readCoherent(addr, &r, 8);
                    break;
                  }
                }
            }
        });
    }
    for (auto& t : threads)
        t.join();

    EXPECT_EQ(f.mem->validateCoherence(), "");
    expectAggregatesConsistent(f, kThreads);
}

// Two host threads share one tile id (the paper's multiple-app-threads
// per tile case): the same-tile revalidation path must serialize them.
TEST(MemConcurrency, SameTileTwoThreads)
{
    MemFixture f(4);
    constexpr int kThreadsPerTile = 2;
    std::vector<std::thread> threads;
    for (int i = 0; i < kThreadsPerTile; ++i) {
        threads.emplace_back([&f, i] {
            Rng rng(41 + i);
            for (int it = 0; it < kIters / 2; ++it) {
                // Wide range so L2 victims force the transaction path.
                addr_t addr =
                    PRIVATE_BASE + (rng.next() % 8192) * f.mem->lineSize();
                std::uint64_t v = rng.next();
                f.mem->access(0, MemAccessType::Write, addr, &v, 8, it);
            }
        });
    }
    for (auto& t : threads)
        t.join();

    EXPECT_EQ(f.mem->validateCoherence(), "");
    EXPECT_EQ(f.mem->stats(0).totalAccesses,
              static_cast<stat_t>(kThreadsPerTile) * (kIters / 2));
    expectAggregatesConsistent(f, 4);
}

// Wide working set: every thread streams through more lines than its L2
// holds, forcing evictions whose victims are homed on other shards
// (exercises the plan/validate/retry victim path).
TEST(MemConcurrency, EvictionStorm)
{
    constexpr int kThreads = 8;
    MemFixture f(kThreads);
    std::vector<std::thread> threads;
    for (int i = 0; i < kThreads; ++i) {
        threads.emplace_back([&f, i] {
            Rng rng(1700 + i);
            addr_t base = PRIVATE_BASE + static_cast<addr_t>(i) *
                                             0x4000'0000;
            for (int it = 0; it < kIters / 2; ++it) {
                addr_t addr =
                    base + (rng.next() % 16384) * f.mem->lineSize();
                std::uint64_t v = rng.next();
                f.mem->access(i, MemAccessType::Write, addr, &v, 8, it);
            }
        });
    }
    for (auto& t : threads)
        t.join();

    EXPECT_EQ(f.mem->validateCoherence(), "");
    EXPECT_EQ(sumTileAccesses(f, kThreads),
              static_cast<stat_t>(kThreads) * (kIters / 2));
    expectAggregatesConsistent(f, kThreads);
}

// The global-mutex compatibility mode must produce the same invariants
// (it is the baseline the contention benchmark compares against).
TEST(MemConcurrency, GlobalModeStillCoherent)
{
    Config overrides;
    overrides.set("mem/host_concurrency", "global");
    MemFixture f(4, overrides);
    ASSERT_FALSE(f.mem->shardedLocking());
    std::vector<std::thread> threads;
    for (int i = 0; i < 4; ++i) {
        threads.emplace_back([&f, i] {
            Rng rng(3 + i);
            for (int it = 0; it < kIters / 4; ++it) {
                addr_t addr =
                    SHARED_BASE + (rng.next() % 4) * f.mem->lineSize();
                std::uint64_t v = rng.next();
                f.mem->access(i, MemAccessType::Write, addr, &v, 8, it);
            }
        });
    }
    for (auto& t : threads)
        t.join();

    EXPECT_EQ(f.mem->validateCoherence(), "");
    EXPECT_EQ(sumTileAccesses(f, 4),
              static_cast<stat_t>(4) * (kIters / 4));
    expectAggregatesConsistent(f, 4);
}

// Shard-lock contention statistics must be plausible: acquisitions
// cover at least every L2 miss, and contended <= acquisitions.
TEST(MemConcurrency, ContentionStatsSane)
{
    constexpr int kThreads = 4;
    MemFixture f(kThreads);
    std::vector<std::thread> threads;
    for (int i = 0; i < kThreads; ++i) {
        threads.emplace_back([&f, i] {
            Rng rng(55 + i);
            for (int it = 0; it < kIters / 4; ++it) {
                addr_t addr =
                    SHARED_BASE + (rng.next() % 4) * f.mem->lineSize();
                std::uint64_t v = rng.next();
                f.mem->access(i, MemAccessType::Write, addr, &v, 8, it);
            }
        });
    }
    for (auto& t : threads)
        t.join();

    stat_t acq = f.mem->shardLockAcquisitionsCounter()->load();
    stat_t contended = f.mem->shardLockContendedCounter()->load();
    EXPECT_GE(acq, f.mem->l2MissesCounter()->load());
    EXPECT_LE(contended, acq);
    EXPECT_EQ(f.mem->validateCoherence(), "");
}

// Plant contention deterministically (works even on a 1-CPU host): a
// holder thread pins a lock and signals once it owns it; an access
// issued strictly inside the hold window must lose the try-lock, so
// the contended counter and wait-time must both move. Guards against
// the counters silently reading zero forever.
TEST(MemConcurrency, PlantedContentionMovesCounters)
{
    MemFixture f(4);
    constexpr std::uint64_t kHoldNs = 50'000'000; // 50 ms

    // Tile lock: every access to tile 0 takes it.
    stat_t tile_before = f.mem->tileLockContendedCounter()->load();
    {
        std::atomic<bool> held{false};
        std::thread holder(
            [&] { f.mem->holdTileLockForTest(0, kHoldNs, &held); });
        while (!held.load(std::memory_order_acquire))
            std::this_thread::yield();
        std::uint64_t v = 1;
        f.mem->access(0, MemAccessType::Write, PRIVATE_BASE, &v, 8, 0);
        holder.join();
    }
    EXPECT_GT(f.mem->tileLockContendedCounter()->load(), tile_before);
    EXPECT_GT(f.mem->tileLockWaitNsCounter()->load(), 0u);
    EXPECT_GT(f.mem->tileLockAcquisitionsCounter()->load(), 0u);

    // Shard lock: a miss on a fresh line takes its home shard.
    addr_t fresh = SHARED_BASE + 64 * f.mem->lineSize();
    tile_id_t home = f.mem->homeTile(fresh);
    stat_t shard_before = f.mem->shardLockContendedCounter()->load();
    {
        std::atomic<bool> held{false};
        std::thread holder(
            [&] { f.mem->holdShardLockForTest(home, kHoldNs, &held); });
        while (!held.load(std::memory_order_acquire))
            std::this_thread::yield();
        std::uint64_t v = 2;
        f.mem->access(0, MemAccessType::Write, fresh, &v, 8, 0);
        holder.join();
    }
    EXPECT_GT(f.mem->shardLockContendedCounter()->load(), shard_before);
    EXPECT_GT(f.mem->shardLockWaitNsCounter()->load(), 0u);
    EXPECT_EQ(f.mem->validateCoherence(), "");
}

} // namespace
} // namespace graphite
