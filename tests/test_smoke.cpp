/**
 * @file
 * End-to-end smoke tests: full simulator lifecycle with threads, shared
 * memory, and synchronization. If coherence or the MCP/LCP protocol is
 * broken, these deadlock or produce wrong sums.
 */

#include <gtest/gtest.h>

#include "common/config.h"
#include "core/api.h"
#include "core/simulator.h"

namespace graphite
{
namespace
{

struct WorkerArgs
{
    addr_t data;
    addr_t mutex;
    addr_t barrier;
    int index;
    int iters;
};

void
sumWorker(void* p)
{
    auto* a = static_cast<WorkerArgs*>(p);
    for (int i = 0; i < a->iters; ++i) {
        api::mutexLock(a->mutex);
        std::uint64_t v = api::read<std::uint64_t>(a->data);
        api::write<std::uint64_t>(a->data, v + 1);
        api::mutexUnlock(a->mutex);
        api::exec(InstrClass::IntAlu, 3);
    }
    api::barrierWait(a->barrier);
}

struct MainArgs
{
    int workers;
    int iters;
    std::uint64_t result = 0;
    cycle_t cycles = 0;
};

void
smokeMain(void* p)
{
    auto* m = static_cast<MainArgs*>(p);
    addr_t data = api::malloc(8);
    addr_t mutex = api::malloc(api::MUTEX_BYTES);
    addr_t barrier = api::malloc(api::BARRIER_BYTES);
    api::write<std::uint64_t>(data, 0);
    api::mutexInit(mutex);
    api::barrierInit(barrier, m->workers + 1);

    std::vector<WorkerArgs> args(m->workers);
    std::vector<tile_id_t> tids;
    for (int i = 0; i < m->workers; ++i) {
        args[i] = WorkerArgs{data, mutex, barrier, i, m->iters};
        tids.push_back(api::threadSpawn(&sumWorker, &args[i]));
    }
    api::barrierWait(barrier);
    for (tile_id_t t : tids)
        api::threadJoin(t);

    m->result = api::read<std::uint64_t>(data);
    m->cycles = api::cycle();
    api::free(data);
    api::free(mutex);
    api::free(barrier);
}

TEST(Smoke, MutexProtectedSum)
{
    Config cfg = defaultTargetConfig();
    cfg.setInt("general/total_tiles", 8);
    Simulator sim(cfg);
    MainArgs m{4, 50};
    SimulationSummary s = sim.run(&smokeMain, &m);
    EXPECT_EQ(m.result, 4u * 50u);
    EXPECT_GT(m.cycles, 0u);
    EXPECT_EQ(s.threadsSpawned, 4u);
    EXPECT_EQ(sim.memory().validateCoherence(), "");
}

TEST(Smoke, MultiProcessDistribution)
{
    Config cfg = defaultTargetConfig();
    cfg.setInt("general/total_tiles", 8);
    cfg.setInt("general/num_processes", 4);
    Simulator sim(cfg);
    MainArgs m{7, 25};
    sim.run(&smokeMain, &m);
    EXPECT_EQ(m.result, 7u * 25u);
    EXPECT_EQ(sim.memory().validateCoherence(), "");
    // Tiles striped over 4 processes: coherence traffic must have
    // crossed simulated process boundaries.
    EXPECT_GT(sim.fabric().interProcessMessages(PacketType::Memory), 0u);
}

void
messagingMain(void*);

void
pongWorker(void*)
{
    for (int i = 0; i < 10; ++i) {
        api::Message msg = api::msgRecv();
        std::uint64_t v;
        std::memcpy(&v, msg.data.data(), 8);
        v += 1;
        api::msgSend(msg.sender, &v, 8);
    }
}

void
messagingMain(void* p)
{
    auto* out = static_cast<std::uint64_t*>(p);
    tile_id_t t = api::threadSpawn(&pongWorker, nullptr);
    std::uint64_t v = 0;
    for (int i = 0; i < 10; ++i) {
        api::msgSend(t, &v, 8);
        api::Message reply = api::msgRecv();
        std::memcpy(&v, reply.data.data(), 8);
    }
    api::threadJoin(t);
    *out = v;
}

TEST(Smoke, MessagePingPong)
{
    Config cfg = defaultTargetConfig();
    cfg.setInt("general/total_tiles", 4);
    cfg.setInt("general/num_processes", 2);
    Simulator sim(cfg);
    std::uint64_t result = 0;
    sim.run(&messagingMain, &result);
    EXPECT_EQ(result, 10u);
}

} // namespace
} // namespace graphite
