/**
 * @file
 * Focused tests of remaining target-API surface: identity, atomics,
 * condvar broadcast, file seek, and the instruction-event interface —
 * everything an application author can reach that the system tests do
 * not already pin down.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "common/config.h"
#include "core/api.h"
#include "core/simulator.h"

namespace graphite
{
namespace
{

/** Run @p body as the application main of a tiny simulation. */
void
runApp(thread_func_t body, void* arg, int tiles = 4, int procs = 1)
{
    Config cfg = defaultTargetConfig();
    cfg.setInt("general/total_tiles", tiles);
    cfg.setInt("general/num_processes", procs);
    Simulator sim(cfg);
    sim.run(body, arg);
}

struct Out
{
    std::uint64_t u64[8] = {};
    std::int64_t i64[4] = {};
    double d[2] = {};
};

void
identityMain(void* p)
{
    auto* out = static_cast<Out*>(p);
    out->u64[0] = static_cast<std::uint64_t>(api::tileId());
    out->u64[1] = static_cast<std::uint64_t>(api::numTiles());
    out->u64[2] = api::cycle();
    api::exec(InstrClass::IntDiv, 10);
    out->u64[3] = api::cycle();
}

TEST(ApiSurface, IdentityAndClock)
{
    Out out;
    runApp(&identityMain, &out);
    EXPECT_EQ(out.u64[0], 0u); // main runs on tile 0
    EXPECT_EQ(out.u64[1], 4u);
    // 10 integer divides at 18 cycles each.
    EXPECT_EQ(out.u64[3] - out.u64[2], 180u);
}

void
atomicsMain(void* p)
{
    auto* out = static_cast<Out*>(p);
    addr_t w32 = api::malloc(4);
    addr_t w64 = api::malloc(8);
    api::write<std::uint32_t>(w32, 10);
    api::write<std::uint64_t>(w64, 1ull << 40);

    out->u64[0] = api::atomicCas32(w32, 10, 20);   // succeeds -> old 10
    out->u64[1] = api::atomicCas32(w32, 10, 30);   // fails -> old 20
    out->u64[2] = api::read<std::uint32_t>(w32);   // 20
    out->u64[3] = api::atomicExchange32(w32, 99);  // old 20
    out->u64[4] = api::atomicAdd32(w32, -9);       // old 99
    out->u64[5] = api::read<std::uint32_t>(w32);   // 90
    out->u64[6] = api::atomicAdd64(w64, 5);        // old 2^40
    out->u64[7] = api::read<std::uint64_t>(w64);   // 2^40 + 5
    api::free(w32);
    api::free(w64);
}

TEST(ApiSurface, AtomicsSemantics)
{
    Out out;
    runApp(&atomicsMain, &out);
    EXPECT_EQ(out.u64[0], 10u);
    EXPECT_EQ(out.u64[1], 20u);
    EXPECT_EQ(out.u64[2], 20u);
    EXPECT_EQ(out.u64[3], 20u);
    EXPECT_EQ(out.u64[4], 99u);
    EXPECT_EQ(out.u64[5], 90u);
    EXPECT_EQ(out.u64[6], 1ull << 40);
    EXPECT_EQ(out.u64[7], (1ull << 40) + 5);
}

struct BroadcastProbe
{
    addr_t mutex = 0, cond = 0, ready = 0, acks = 0;
    int waiters = 3;
};

void
broadcastWaiter(void* p)
{
    auto* probe = static_cast<BroadcastProbe*>(p);
    api::mutexLock(probe->mutex);
    while (api::read<std::uint32_t>(probe->ready) == 0)
        api::condWait(probe->cond, probe->mutex);
    api::mutexUnlock(probe->mutex);
    api::atomicAdd32(probe->acks, 1);
}

void
broadcastMain(void* p)
{
    auto* probe = static_cast<BroadcastProbe*>(p);
    probe->mutex = api::malloc(api::MUTEX_BYTES);
    probe->cond = api::malloc(api::COND_BYTES);
    probe->ready = api::malloc(4);
    probe->acks = api::malloc(4);
    api::mutexInit(probe->mutex);
    api::condInit(probe->cond);
    api::write<std::uint32_t>(probe->ready, 0);
    api::write<std::uint32_t>(probe->acks, 0);

    std::vector<tile_id_t> tids;
    for (int i = 0; i < probe->waiters; ++i)
        tids.push_back(api::threadSpawn(&broadcastWaiter, probe));

    api::mutexLock(probe->mutex);
    api::write<std::uint32_t>(probe->ready, 1);
    api::condBroadcast(probe->cond);
    api::mutexUnlock(probe->mutex);

    for (tile_id_t t : tids)
        api::threadJoin(t);
    // Reuse ready as result slot for the ack count.
    api::write<std::uint32_t>(probe->ready,
                              api::read<std::uint32_t>(probe->acks));
}

TEST(ApiSurface, CondBroadcastWakesAllWaiters)
{
    BroadcastProbe probe;
    Config cfg = defaultTargetConfig();
    cfg.setInt("general/total_tiles", 4);
    Simulator sim(cfg);
    sim.run(&broadcastMain, &probe);
    std::uint32_t acks = 0;
    sim.memory().readCoherent(probe.ready, &acks, 4);
    EXPECT_EQ(acks, 3u);
}

struct SeekProbe
{
    std::string path;
    std::int64_t seekPos = -1;
    std::uint32_t wordAt8 = 0;
};

void
seekMain(void* p)
{
    auto* probe = static_cast<SeekProbe*>(p);
    addr_t buf = api::malloc(16);
    for (std::uint32_t i = 0; i < 4; ++i)
        api::write<std::uint32_t>(buf + 4 * i, 100 + i);

    int fd = api::fileOpen(probe->path.c_str(), 1);
    api::fileWrite(fd, buf, 16);
    api::fileClose(fd);

    fd = api::fileOpen(probe->path.c_str(), 0);
    probe->seekPos = api::fileSeek(fd, 8, SEEK_SET);
    addr_t rbuf = api::malloc(4);
    api::fileRead(fd, rbuf, 4);
    probe->wordAt8 = api::read<std::uint32_t>(rbuf);
    api::fileClose(fd);
    api::free(buf);
    api::free(rbuf);
}

TEST(ApiSurface, FileSeekReadsAtOffset)
{
    SeekProbe probe;
    probe.path = "/tmp/graphite_seek_test.bin";
    runApp(&seekMain, &probe, 4, 2);
    EXPECT_EQ(probe.seekPos, 8);
    EXPECT_EQ(probe.wordAt8, 102u); // third word
    std::remove(probe.path.c_str());
}

void
branchMain(void* p)
{
    auto* out = static_cast<Out*>(p);
    cycle_t before = api::cycle();
    // Alternating branch at one site defeats the two-bit predictor
    // roughly half the time; a monotone branch trains perfectly.
    for (int i = 0; i < 100; ++i)
        api::branch(0xAAAA, true);
    cycle_t trained = api::cycle();
    for (int i = 0; i < 100; ++i)
        api::branch(0xBBBB, i % 2 == 0);
    cycle_t alternating = api::cycle();
    out->u64[0] = trained - before;
    out->u64[1] = alternating - trained;
}

TEST(ApiSurface, BranchModelChargesMispredicts)
{
    Out out;
    runApp(&branchMain, &out);
    // Trained loop: ~1 cycle/branch. Alternating: half mispredict at
    // 14-cycle penalty => much more expensive.
    EXPECT_LT(out.u64[0], 150u);
    EXPECT_GT(out.u64[1], 500u);
}

void
largeCopyMain(void* p)
{
    auto* out = static_cast<Out*>(p);
    // Bulk readMem/writeMem crossing many lines and a page boundary.
    addr_t src = api::malloc(10000);
    addr_t dst = api::malloc(10000);
    std::vector<std::uint8_t> host(10000);
    for (size_t i = 0; i < host.size(); ++i)
        host[i] = static_cast<std::uint8_t>(i * 7);
    api::writeMem(src, host.data(), host.size());

    std::vector<std::uint8_t> tmp(10000);
    api::readMem(src, tmp.data(), tmp.size());
    api::writeMem(dst, tmp.data(), tmp.size());

    std::vector<std::uint8_t> back(10000);
    api::readMem(dst, back.data(), back.size());
    out->u64[0] = back == host ? 1 : 0;
    api::free(src);
    api::free(dst);
}

TEST(ApiSurface, BulkTransfersSpanLinesAndPages)
{
    Out out;
    runApp(&largeCopyMain, &out);
    EXPECT_EQ(out.u64[0], 1u);
}

} // namespace
} // namespace graphite
