/**
 * @file
 * Workload correctness: every kernel must produce the *identical*
 * checksum natively and under simulation (same algorithm, same
 * deterministic inputs, same floating-point operation order). Because
 * simulated data lives in the modeled caches and moves only through the
 * MSI protocol, equality here is an end-to-end proof that the coherence
 * implementation is functionally correct (paper §3.2's self-verifying
 * design).
 */

#include <gtest/gtest.h>

#include "common/config.h"
#include "core/simulator.h"
#include "workloads/registry.h"

namespace graphite
{
namespace
{

using workloads::WorkloadInfo;
using workloads::WorkloadParams;

class WorkloadEquivalence : public ::testing::TestWithParam<const char*>
{
};

TEST_P(WorkloadEquivalence, NativeAndSimChecksumsMatch)
{
    const WorkloadInfo& w = workloads::findWorkload(GetParam());
    WorkloadParams p = w.defaults;
    p.threads = 4;
    // Small problem sizes: correctness, not timing.
    p.size = std::min(p.size, w.name == "radix" ? 2048 : 48);
    p.iters = std::min(p.iters, 2);

    double native = w.runNative(p);

    Config cfg = defaultTargetConfig();
    cfg.setInt("general/total_tiles", 8);
    cfg.setInt("general/num_processes", 2);
    Simulator sim(cfg);
    workloads::SimRunResult r = workloads::runSim(sim, w, p);

    EXPECT_EQ(native, r.checksum) << w.name;
    EXPECT_GT(r.simulatedCycles, 0u) << w.name;
    EXPECT_EQ(sim.memory().validateCoherence(), "") << w.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadEquivalence,
    ::testing::Values("cholesky", "fft", "fmm", "lu_cont", "lu_non_cont",
                      "ocean_cont", "ocean_non_cont", "radix",
                      "water_nsquared", "water_spatial", "barnes",
                      "matmul", "blackscholes"),
    [](const ::testing::TestParamInfo<const char*>& info) {
        return std::string(info.param);
    });

TEST(WorkloadSuite, RegistryIsComplete)
{
    EXPECT_EQ(workloads::registry().size(), 13u);
    for (const WorkloadInfo& w : workloads::registry()) {
        EXPECT_NE(w.runNative, nullptr);
        EXPECT_NE(w.runSimBody, nullptr);
        EXPECT_GT(w.defaults.size, 0);
    }
}

} // namespace
} // namespace graphite
