/**
 * @file
 * Cross-cutting property tests:
 *
 *  - Distribution transparency (paper §2.2): a workload's checksum must
 *    be identical for every host-process count — distribution is purely
 *    a deployment choice, invisible to the application.
 *  - Directory-scheme transparency: coherence schemes change timing,
 *    never function.
 *  - Line-size transparency: the functional result cannot depend on
 *    cache geometry.
 *  - Concurrent API stress: random threads hammer shared counters with
 *    atomics and mutexes; totals must be exact and the coherence
 *    invariants intact.
 *  - Determinism of the timing domain under single-threaded execution.
 */

#include <gtest/gtest.h>

#include "common/config.h"
#include "core/api.h"
#include "core/simulator.h"
#include "workloads/registry.h"

namespace graphite
{
namespace
{

using workloads::WorkloadParams;

double
runWith(const std::string& app, const WorkloadParams& p,
        const std::function<void(Config&)>& tweak)
{
    Config cfg = defaultTargetConfig();
    cfg.setInt("general/total_tiles", 8);
    tweak(cfg);
    Simulator sim(cfg);
    return workloads::runSim(sim, workloads::findWorkload(app), p)
        .checksum;
}

TEST(Transparency, ProcessCountIsInvisibleToTheApplication)
{
    WorkloadParams p;
    p.threads = 8;
    p.size = 48;
    p.iters = 2;
    double one = runWith("ocean_cont", p, [](Config& cfg) {
        cfg.setInt("general/num_processes", 1);
    });
    for (int procs : {2, 4, 8}) {
        double n = runWith("ocean_cont", p, [&](Config& cfg) {
            cfg.setInt("general/num_processes", procs);
        });
        EXPECT_EQ(one, n) << procs << " processes";
    }
}

TEST(Transparency, TransportBackEndIsInvisibleToTheApplication)
{
    // §3.3.1: the transport back end is swappable. Running the whole
    // simulation over real Unix-domain sockets must not change results.
    WorkloadParams p;
    p.threads = 8;
    p.size = 48;
    p.iters = 2;
    double mem = runWith("ocean_cont", p, [](Config& cfg) {
        cfg.setInt("general/num_processes", 4);
    });
    double sock = runWith("ocean_cont", p, [](Config& cfg) {
        cfg.setInt("general/num_processes", 4);
        cfg.set("transport/type", "unix_socket");
    });
    EXPECT_EQ(mem, sock);
}

TEST(Transparency, DirectorySchemeIsFunctionallyInvisible)
{
    WorkloadParams p;
    p.threads = 8;
    p.size = 2048;
    p.iters = 2;
    double ref = runWith("radix", p, [](Config&) {});
    for (const char* scheme :
         {"limited_no_broadcast", "limitless"}) {
        double n = runWith("radix", p, [&](Config& cfg) {
            cfg.set("caching_protocol/directory_type", scheme);
            cfg.setInt("caching_protocol/max_sharers", 2);
        });
        EXPECT_EQ(ref, n) << scheme;
    }
    double mesi = runWith("radix", p, [](Config& cfg) {
        cfg.set("caching_protocol/type", "dir_mesi");
    });
    EXPECT_EQ(ref, mesi) << "dir_mesi";
}

TEST(Transparency, LineSizeIsFunctionallyInvisible)
{
    WorkloadParams p;
    p.threads = 8;
    p.size = 48;
    double ref = runWith("lu_non_cont", p, [](Config&) {});
    for (int line : {16, 256}) {
        double n = runWith("lu_non_cont", p, [&](Config& cfg) {
            cfg.setInt("perf_model/l1_icache/line_size", line);
            cfg.setInt("perf_model/l1_dcache/line_size", line);
            cfg.setInt("perf_model/l2_cache/line_size", line);
        });
        EXPECT_EQ(ref, n) << line << "-byte lines";
    }
}

// --------------------------------------------------------- API stress test

struct StressArgs
{
    addr_t atomicCounter = 0;
    addr_t lockedCounter = 0;
    addr_t mutex = 0;
    addr_t barrier = 0;
    int increments = 0;
};

void
stressWorker(void* p)
{
    auto* a = static_cast<StressArgs*>(p);
    for (int i = 0; i < a->increments; ++i) {
        api::atomicAdd32(a->atomicCounter, 1);
        if (i % 3 == 0) {
            api::mutexLock(a->mutex);
            std::uint64_t v =
                api::read<std::uint64_t>(a->lockedCounter);
            api::write<std::uint64_t>(a->lockedCounter, v + 2);
            api::mutexUnlock(a->mutex);
        }
        api::exec(InstrClass::IntAlu, 3);
        api::branch(0xBEEF, i % 2 == 0);
    }
    api::barrierWait(a->barrier);
}

struct StressResult
{
    std::uint32_t atomicTotal = 0;
    std::uint64_t lockedTotal = 0;
};

struct StressLaunch
{
    StressArgs args;
    StressResult result;
    int workers = 0;
};

void
stressMain(void* p)
{
    auto* launch = static_cast<StressLaunch*>(p);
    StressArgs& a = launch->args;
    a.atomicCounter = api::malloc(4);
    a.lockedCounter = api::malloc(8);
    a.mutex = api::malloc(api::MUTEX_BYTES);
    a.barrier = api::malloc(api::BARRIER_BYTES);
    api::write<std::uint32_t>(a.atomicCounter, 0);
    api::write<std::uint64_t>(a.lockedCounter, 0);
    api::mutexInit(a.mutex);
    api::barrierInit(a.barrier, launch->workers + 1);

    std::vector<tile_id_t> tids;
    for (int i = 0; i < launch->workers; ++i)
        tids.push_back(api::threadSpawn(&stressWorker, &a));
    api::barrierWait(a.barrier);
    for (tile_id_t t : tids)
        api::threadJoin(t);

    launch->result.atomicTotal =
        api::read<std::uint32_t>(a.atomicCounter);
    launch->result.lockedTotal =
        api::read<std::uint64_t>(a.lockedCounter);
}

class ApiStress : public ::testing::TestWithParam<int>
{
};

TEST_P(ApiStress, CountersAreExactUnderContention)
{
    const int procs = GetParam();
    Config cfg = defaultTargetConfig();
    cfg.setInt("general/total_tiles", 16);
    cfg.setInt("general/num_processes", procs);
    Simulator sim(cfg);

    StressLaunch launch;
    launch.workers = 12;
    launch.args.increments = 40;
    sim.run(&stressMain, &launch);

    EXPECT_EQ(launch.result.atomicTotal, 12u * 40u);
    // Each worker takes the locked path for i = 0, 3, 6, ... => 14 times.
    EXPECT_EQ(launch.result.lockedTotal, 12u * 14u * 2u);
    EXPECT_EQ(sim.memory().validateCoherence(), "");
}

INSTANTIATE_TEST_SUITE_P(Procs, ApiStress, ::testing::Values(1, 3, 8));

// ------------------------------------------------------------- determinism

void
deterministicMain(void* p)
{
    auto* out = static_cast<cycle_t*>(p);
    addr_t a = api::malloc(1024);
    for (int i = 0; i < 200; ++i) {
        api::write<std::uint32_t>(a + (i % 32) * 4,
                                  static_cast<std::uint32_t>(i));
        api::exec(InstrClass::FpMul, 3);
        api::branch(7, i % 4 != 0);
    }
    for (int i = 0; i < 200; ++i)
        api::read<std::uint32_t>(a + (i % 32) * 4);
    api::free(a);
    *out = api::cycle();
}

TEST(Determinism, SingleThreadTimingIsReproducible)
{
    // With one application thread there is no interleaving freedom:
    // the simulated cycle count must be bit-identical across runs.
    cycle_t first = 0;
    for (int run = 0; run < 3; ++run) {
        Config cfg = defaultTargetConfig();
        cfg.setInt("general/total_tiles", 4);
        Simulator sim(cfg);
        cycle_t cycles = 0;
        sim.run(&deterministicMain, &cycles);
        if (run == 0)
            first = cycles;
        else
            EXPECT_EQ(cycles, first) << "run " << run;
    }
}

} // namespace
} // namespace graphite
