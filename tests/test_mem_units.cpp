/**
 * @file
 * Unit tests for the memory-system building blocks: set-associative
 * cache, the three directory schemes, DRAM controller, sparse main
 * memory, and the target memory manager.
 */

#include <gtest/gtest.h>

#include "common/log.h"
#include "mem/address_space.h"
#include "mem/cache.h"
#include "mem/directory.h"
#include "mem/dram_controller.h"
#include "mem/main_memory.h"
#include "network/global_progress.h"

namespace graphite
{
namespace
{

std::vector<std::uint8_t>
lineOf(std::uint8_t fill, size_t n = 64)
{
    return std::vector<std::uint8_t>(n, fill);
}

// ------------------------------------------------------------------- Cache

TEST(Cache, HitAfterInsert)
{
    Cache c("t", 1024, 2, 64);
    EXPECT_EQ(c.access(0x100, false), nullptr); // miss
    c.insert(0x100, CacheState::Shared, lineOf(7));
    CacheLine* line = c.access(0x104, false); // same line, offset 4
    ASSERT_NE(line, nullptr);
    EXPECT_EQ(line->data[4], 7);
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, WriteProbeNeedsModified)
{
    Cache c("t", 1024, 2, 64);
    c.insert(0x100, CacheState::Shared, lineOf(1));
    EXPECT_EQ(c.access(0x100, /*is_write=*/true), nullptr); // S, no M
    c.invalidate(0x100);
    c.insert(0x100, CacheState::Modified, lineOf(1));
    EXPECT_NE(c.access(0x100, true), nullptr);
}

TEST(Cache, LruEvictsOldest)
{
    // 2-way, 64B lines, 2 sets => set stride 128.
    Cache c("t", 256, 2, 64);
    c.insert(0x000, CacheState::Shared, lineOf(1));
    c.insert(0x100, CacheState::Shared, lineOf(2)); // same set 0
    c.access(0x000, false);                          // touch 0x000
    auto ev = c.insert(0x200, CacheState::Shared, lineOf(3));
    ASSERT_TRUE(ev.has_value());
    EXPECT_EQ(ev->lineAddr, 0x100u); // LRU victim
    EXPECT_FALSE(ev->dirty);
}

TEST(Cache, DirtyEvictionCarriesData)
{
    Cache c("t", 128, 1, 64); // direct-mapped, 2 sets
    c.insert(0x000, CacheState::Modified, lineOf(9));
    auto ev = c.insert(0x100, CacheState::Shared, lineOf(1));
    ASSERT_TRUE(ev.has_value());
    EXPECT_TRUE(ev->dirty);
    EXPECT_EQ(ev->data[0], 9);
}

TEST(Cache, InvalidateReturnsData)
{
    Cache c("t", 1024, 2, 64);
    c.insert(0x40, CacheState::Modified, lineOf(5));
    auto ev = c.invalidate(0x40);
    ASSERT_TRUE(ev.has_value());
    EXPECT_TRUE(ev->dirty);
    EXPECT_EQ(c.find(0x40), nullptr);
    EXPECT_FALSE(c.invalidate(0x40).has_value()); // already gone
}

TEST(Cache, DowngradeKeepsSharedCopy)
{
    Cache c("t", 1024, 2, 64);
    c.insert(0x80, CacheState::Modified, lineOf(3));
    auto data = c.downgrade(0x80);
    ASSERT_TRUE(data.has_value());
    EXPECT_EQ((*data)[0], 3);
    EXPECT_EQ(c.find(0x80)->state, CacheState::Shared);
    EXPECT_FALSE(c.downgrade(0x80).has_value()); // already S
}

TEST(Cache, BadGeometryIsFatal)
{
    EXPECT_THROW(Cache("t", 1000, 3, 60), FatalError);  // line not pow2
    EXPECT_THROW(Cache("t", 100, 2, 64), FatalError);   // size mismatch
}

// --------------------------------------------------------------- Directory

TEST(Directory, FullMapTracksAllSharers)
{
    Directory dir(DirectoryType::FullMap, 0, 64, 0);
    DirectoryEntry& e = dir.entry(0x1000);
    for (tile_id_t t = 0; t < 64; ++t) {
        AddSharerResult r = e.addSharer(t);
        EXPECT_FALSE(r.evicted.has_value());
        EXPECT_EQ(r.extraLatency, 0u);
    }
    EXPECT_EQ(e.numSharers(), 64u);
    e.removeSharer(5);
    EXPECT_FALSE(e.isSharer(5));
    EXPECT_EQ(e.numSharers(), 63u);
    e.clearSharers();
    EXPECT_EQ(e.numSharers(), 0u);
}

TEST(Directory, LimitedEvictsBeyondPointerCount)
{
    // Dir_4NB: the 5th sharer displaces the oldest pointer (§4.4).
    Directory dir(DirectoryType::LimitedNoBroadcast, 4, 32, 0);
    DirectoryEntry& e = dir.entry(0);
    for (tile_id_t t = 0; t < 4; ++t)
        EXPECT_FALSE(e.addSharer(t).evicted.has_value());
    AddSharerResult r = e.addSharer(4);
    ASSERT_TRUE(r.evicted.has_value());
    EXPECT_EQ(*r.evicted, 0); // FIFO victim
    EXPECT_EQ(e.numSharers(), 4u);
    EXPECT_FALSE(e.isSharer(0));
    EXPECT_TRUE(e.isSharer(4));
    EXPECT_EQ(dir.pointerEvictions(), 1u);
}

TEST(Directory, LimitedReaddIsIdempotent)
{
    Directory dir(DirectoryType::LimitedNoBroadcast, 2, 8, 0);
    DirectoryEntry& e = dir.entry(0);
    e.addSharer(1);
    e.addSharer(1);
    EXPECT_EQ(e.numSharers(), 1u);
}

TEST(Directory, LimitlessTrapsInsteadOfEvicting)
{
    // LimitLESS(2): overflow sharers kept in software at a trap cost.
    Directory dir(DirectoryType::Limitless, 2, 32, 100);
    DirectoryEntry& e = dir.entry(0);
    EXPECT_EQ(e.addSharer(0).extraLatency, 0u);
    EXPECT_EQ(e.addSharer(1).extraLatency, 0u);
    AddSharerResult r = e.addSharer(2);
    EXPECT_FALSE(r.evicted.has_value()); // nobody evicted
    EXPECT_EQ(r.extraLatency, 100u);     // software trap
    EXPECT_EQ(e.numSharers(), 3u);
    EXPECT_EQ(dir.softwareTraps(), 1u);
    // Removing a hardware pointer promotes a software sharer.
    e.removeSharer(0);
    EXPECT_EQ(e.numSharers(), 2u);
    EXPECT_TRUE(e.isSharer(2));
}

TEST(Directory, ParseTypeNames)
{
    EXPECT_EQ(parseDirectoryType("full_map"), DirectoryType::FullMap);
    EXPECT_EQ(parseDirectoryType("limited_no_broadcast"),
              DirectoryType::LimitedNoBroadcast);
    EXPECT_EQ(parseDirectoryType("limitless"), DirectoryType::Limitless);
    EXPECT_THROW(parseDirectoryType("snoopy"), FatalError);
}

TEST(Directory, EntriesCreatedOnDemand)
{
    Directory dir(DirectoryType::FullMap, 0, 4, 0);
    EXPECT_EQ(dir.peek(0x40), nullptr);
    dir.entry(0x40).setState(DirectoryState::Shared);
    EXPECT_NE(dir.peek(0x40), nullptr);
    EXPECT_EQ(dir.size(), 1u);
}

// ---------------------------------------------------------- DramController

TEST(Dram, LatencyIncludesServiceTime)
{
    DramController dram(100, /*bytes_per_cycle=*/1.0, nullptr);
    // 64 bytes at 1 B/cycle: 100 + 64.
    EXPECT_EQ(dram.access(0, 64), 164u);
    EXPECT_EQ(dram.accesses(), 1u);
}

TEST(Dram, QueueingDelaysBursts)
{
    GlobalProgress gp(8);
    gp.observe(1000);
    DramController dram(100, 0.5, &gp);
    cycle_t first = dram.access(1000, 64);
    cycle_t second = dram.access(1000, 64); // backlogged
    EXPECT_GT(second, first);
    EXPECT_GT(dram.totalQueueDelay(), 0u);
}

TEST(Dram, BandwidthSplitRaisesServiceTime)
{
    // §4.4: splitting total bandwidth across more controllers raises
    // per-access service time.
    DramController wide(100, 5.13, nullptr);         // 1-tile share
    DramController narrow(100, 5.13 / 256, nullptr); // 256-tile share
    EXPECT_LT(wide.access(0, 64), narrow.access(0, 64));
}

TEST(Dram, ZeroBandwidthIsFatal)
{
    EXPECT_THROW(DramController(100, 0.0, nullptr), FatalError);
}

// ------------------------------------------------------------- MainMemory

TEST(MainMemory, UntouchedReadsAsZero)
{
    MainMemory mem;
    std::uint64_t v = 123;
    mem.read(0x5000, &v, 8);
    EXPECT_EQ(v, 0u);
    EXPECT_EQ(mem.pagesAllocated(), 0u); // reads do not materialize
}

TEST(MainMemory, WriteReadRoundTrip)
{
    MainMemory mem;
    std::uint64_t v = 0xDEADBEEFCAFEull;
    mem.write(0x1234, &v, 8);
    std::uint64_t back = 0;
    mem.read(0x1234, &back, 8);
    EXPECT_EQ(back, v);
    EXPECT_EQ(mem.pagesAllocated(), 1u);
}

TEST(MainMemory, CrossPageAccess)
{
    MainMemory mem;
    std::vector<std::uint8_t> data(8192, 0xAB);
    mem.write(MainMemory::PAGE_SIZE - 100, data.data(), data.size());
    std::vector<std::uint8_t> back(8192, 0);
    mem.read(MainMemory::PAGE_SIZE - 100, back.data(), back.size());
    EXPECT_EQ(back, data);
    EXPECT_EQ(mem.pagesAllocated(), 3u);
}

// ---------------------------------------------------------- MemoryManager

TEST(MemoryManager, AllocateIsAlignedAndDisjoint)
{
    MemoryManager mm(4, 1 << 20);
    addr_t a = mm.allocate(10);
    addr_t b = mm.allocate(100);
    EXPECT_EQ(a % 16, 0u);
    EXPECT_EQ(b % 16, 0u);
    EXPECT_GE(b, a + 16);
    EXPECT_EQ(mm.allocationCount(), 2u);
}

TEST(MemoryManager, FreeListReusesAndCoalesces)
{
    MemoryManager mm(1, 1 << 20);
    addr_t a = mm.allocate(64);
    addr_t b = mm.allocate(64);
    addr_t c = mm.allocate(64);
    mm.deallocate(a);
    mm.deallocate(b); // coalesces with a
    (void)c;
    addr_t big = mm.allocate(128); // fits in the coalesced hole
    EXPECT_EQ(big, a);
}

TEST(MemoryManager, DoubleFreeIsFatal)
{
    MemoryManager mm(1, 1 << 20);
    addr_t a = mm.allocate(8);
    mm.deallocate(a);
    EXPECT_THROW(mm.deallocate(a), FatalError);
}

TEST(MemoryManager, BrkSemantics)
{
    MemoryManager mm(1, 1 << 20);
    addr_t base = mm.brk(0);
    EXPECT_EQ(base, AddressSpaceLayout::HEAP_BASE);
    addr_t grown = mm.brk(base + 4096);
    EXPECT_EQ(grown, base + 4096);
    // Out-of-segment request fails by returning the old break.
    EXPECT_EQ(mm.brk(1), grown);
}

TEST(MemoryManager, MmapMunmap)
{
    MemoryManager mm(1, 1 << 20);
    addr_t r = mm.mmap(100);
    EXPECT_EQ(r % 4096, 0u);
    EXPECT_GE(r, AddressSpaceLayout::MMAP_BASE);
    mm.munmap(r, 100);
    EXPECT_THROW(mm.munmap(r, 100), FatalError); // already unmapped
}

TEST(MemoryManager, StacksPartitionedPerTile)
{
    MemoryManager mm(8, 1 << 20);
    for (tile_id_t t = 0; t + 1 < 8; ++t)
        EXPECT_EQ(mm.stackBase(t + 1) - mm.stackBase(t), 1u << 20);
    EXPECT_GE(mm.stackBase(0), AddressSpaceLayout::STACK_BASE);
}

TEST(AddressSpaceLayout, SegmentNames)
{
    EXPECT_STREQ(AddressSpaceLayout::segmentName(0x2000), "code");
    EXPECT_STREQ(
        AddressSpaceLayout::segmentName(AddressSpaceLayout::HEAP_BASE),
        "heap");
    EXPECT_STREQ(
        AddressSpaceLayout::segmentName(AddressSpaceLayout::STACK_BASE),
        "stack");
    EXPECT_STREQ(AddressSpaceLayout::segmentName(0xFFFF'FFFF'0000ull),
                 "unmapped");
}

} // namespace
} // namespace graphite
