/**
 * @file
 * Unit tests for the observability layer: histogram stats, gauge and
 * histogram registration, trace-event JSON export, interval metrics
 * snapshots, component log filtering, and the off-by-default contract
 * (disabled observability records nothing and writes no files).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <string>

#include "common/config.h"
#include "common/log.h"
#include "common/stats.h"
#include "core/api.h"
#include "core/simulator.h"
#include "obs/metrics_sampler.h"
#include "obs/observability.h"
#include "obs/profiler.h"
#include "obs/trace_event.h"

namespace graphite
{
namespace
{

// --------------------------------------------------------- JSON validation
//
// Minimal recursive-descent JSON acceptor — enough to prove the trace
// document is well-formed without pulling in a JSON library.

class JsonChecker
{
  public:
    explicit JsonChecker(const std::string& text) : s_(text) {}

    bool
    valid()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return pos_ == s_.size();
    }

  private:
    bool
    value()
    {
        if (pos_ >= s_.size())
            return false;
        switch (s_[pos_]) {
          case '{': return object();
          case '[': return array();
          case '"': return string();
          case 't': return literal("true");
          case 'f': return literal("false");
          case 'n': return literal("null");
          default: return number();
        }
    }

    bool
    object()
    {
        ++pos_; // '{'
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (peek() != ':')
                return false;
            ++pos_;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    array()
    {
        ++pos_; // '['
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    string()
    {
        if (peek() != '"')
            return false;
        ++pos_;
        while (pos_ < s_.size() && s_[pos_] != '"') {
            if (s_[pos_] == '\\') {
                ++pos_;
                if (pos_ >= s_.size())
                    return false;
            }
            ++pos_;
        }
        if (pos_ >= s_.size())
            return false;
        ++pos_; // closing quote
        return true;
    }

    bool
    number()
    {
        size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
                s_[pos_] == '+' || s_[pos_] == '-'))
            ++pos_;
        return pos_ > start;
    }

    bool
    literal(const char* word)
    {
        size_t len = std::string(word).size();
        if (s_.compare(pos_, len, word) != 0)
            return false;
        pos_ += len;
        return true;
    }

    char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }

    const std::string& s_;
    size_t pos_ = 0;
};

bool
fileExists(const std::string& path)
{
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return false;
    std::fclose(f);
    return true;
}

std::string
readFile(const std::string& path)
{
    std::FILE* f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr) << path;
    if (f == nullptr)
        return "";
    std::string out;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    std::fclose(f);
    return out;
}

// ---------------------------------------------------------- HistogramStat

TEST(HistogramStat, EmptyHistogram)
{
    HistogramStat h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_EQ(h.mean(), 0.0);
}

TEST(HistogramStat, SummaryStatistics)
{
    HistogramStat h;
    h.record(10);
    h.record(20);
    h.record(30);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.sum(), 60u);
    EXPECT_EQ(h.min(), 10u);
    EXPECT_EQ(h.max(), 30u);
    EXPECT_DOUBLE_EQ(h.mean(), 20.0);
}

TEST(HistogramStat, BucketsByBitWidth)
{
    HistogramStat h;
    h.record(0); // bucket 0
    h.record(1); // bucket 1
    h.record(2); // bucket 2: [2, 4)
    h.record(3);
    h.record(4); // bucket 3: [4, 8)
    h.record(7);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(2), 2u);
    EXPECT_EQ(h.bucket(3), 2u);
    EXPECT_EQ(h.bucket(4), 0u);
}

TEST(HistogramStat, PercentileApprox)
{
    HistogramStat h;
    for (int i = 0; i < 99; ++i)
        h.record(1);
    h.record(1000); // bucket 10: [512, 1024)
    // p50 falls in bucket 1 -> upper bound 1.
    EXPECT_EQ(h.percentileApprox(0.5), 1u);
    // p100 falls in the outlier's bucket -> upper bound 1023.
    EXPECT_EQ(h.percentileApprox(1.0), 1023u);
}

TEST(HistogramStat, Reset)
{
    HistogramStat h;
    h.record(42);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0u);
    EXPECT_EQ(h.bucket(6), 0u);
}

// ----------------------------------------------------------- StatsRegistry

TEST(StatsRegistry, GaugesEvaluateAtReadTime)
{
    StatsRegistry reg;
    stat_t backing = 5;
    reg.registerGauge("g", [&backing] { return backing * 2; });
    EXPECT_EQ(reg.get("g"), 10u);
    backing = 7;
    EXPECT_EQ(reg.get("g"), 14u);
}

TEST(StatsRegistry, SnapshotFlattensAllKinds)
{
    StatsRegistry reg;
    stat_t counter = 3;
    HistogramStat hist;
    hist.record(10);
    hist.record(20);
    reg.registerCounter("a.counter", &counter);
    reg.registerGauge("b.gauge", [] { return stat_t{9}; });
    reg.registerHistogram("c.hist", &hist);

    auto snap = reg.snapshot();
    ASSERT_EQ(snap.size(), 4u); // counter, gauge, hist.count, hist.sum
    // Sorted by name.
    EXPECT_EQ(snap[0].first, "a.counter");
    EXPECT_EQ(snap[0].second, 3u);
    EXPECT_EQ(snap[1].first, "b.gauge");
    EXPECT_EQ(snap[1].second, 9u);
    EXPECT_EQ(snap[2].first, "c.hist.count");
    EXPECT_EQ(snap[2].second, 2u);
    EXPECT_EQ(snap[3].first, "c.hist.sum");
    EXPECT_EQ(snap[3].second, 30u);
}

TEST(StatsRegistry, HistogramLookup)
{
    StatsRegistry reg;
    HistogramStat hist;
    reg.registerHistogram("h", &hist);
    EXPECT_EQ(reg.histogram("h"), &hist);
    EXPECT_EQ(reg.histogram("nope"), nullptr);
    EXPECT_TRUE(reg.has("h"));
}

TEST(StatsRegistry, SumMatchingSpansCountersAndGauges)
{
    StatsRegistry reg;
    stat_t c0 = 1, c1 = 2;
    reg.registerCounter("tile.0.misses", &c0);
    reg.registerCounter("tile.1.misses", &c1);
    reg.registerGauge("tile.2.misses", [] { return stat_t{4}; });
    EXPECT_EQ(reg.sumMatching("tile.", ".misses"), 7u);
}

TEST(StatsRegistry, SumMatchingLenientEmptyIsZero)
{
    StatsRegistry reg;
    EXPECT_EQ(reg.sumMatching("tile.", ".renamed"), 0u);
    EXPECT_EQ(reg.sumMatching("tile.", ".renamed", MatchMode::Lenient),
              0u);
}

TEST(StatsRegistry, SumMatchingStrictEmptyIsFatal)
{
    StatsRegistry reg;
    stat_t c = 1;
    reg.registerCounter("tile.0.misses", &c);
    // A match set exists: strict mode succeeds.
    EXPECT_EQ(reg.sumMatching("tile.", ".misses", MatchMode::Strict), 1u);
    // No match: strict mode pins the rename-detection contract.
    EXPECT_THROW(reg.sumMatching("tile.", ".renamed", MatchMode::Strict),
                 FatalError);
}

// -------------------------------------------------------------- log filter

TEST(LogFilter, ComponentOverridesAndGlobalDefault)
{
    int saved = logVerbosity();
    setLogFilter("net:debug,mem:quiet");
    EXPECT_EQ(logComponentVerbosity("net"), 3);
    EXPECT_EQ(logComponentVerbosity("mem"), 0);
    EXPECT_EQ(logComponentVerbosity("sync"), saved); // untouched default

    setLogFilter("warn"); // bare level sets the global default
    EXPECT_EQ(logVerbosity(), 1);
    EXPECT_EQ(logComponentVerbosity("net"), 1); // overrides cleared

    setLogFilter("bogus:nonsense"); // malformed: skipped, never fatal
    EXPECT_EQ(logComponentVerbosity("bogus"), logVerbosity());

    setLogFilter("");
    setLogVerbosity(saved);
}

// --------------------------------------------------------------- TraceSink

TEST(TraceSink, DisabledRecordingIsNoOp)
{
    obs::TraceSink& sink = obs::TraceSink::instance();
    sink.reset();
    sink.configure(2, 16);
    ASSERT_FALSE(obs::TraceSink::enabled()); // reset leaves it disabled
    obs::TraceSink::instant(0, "nope", 1);
    obs::TraceSink::complete(0, "nope", 1, 2);
    obs::TraceSink::counter(0, "nope", 1, 3);
    EXPECT_EQ(sink.recorded(), 0u);
    EXPECT_EQ(sink.dropped(), 0u);
}

TEST(TraceSink, RecordsAndRendersValidJson)
{
    obs::TraceSink& sink = obs::TraceSink::instance();
    sink.reset();
    sink.configure(2, 16);
    sink.setLaneName(0, "tile 0");
    sink.setLaneName(1, "mcp");
    sink.setEnabled(true);
    obs::TraceSink::complete(0, "thread", 100, 50, "bytes", 64);
    obs::TraceSink::instant(1, "spawn \"q\"", 120, "tile", 1);
    obs::TraceSink::counter(0, "skew", 150, -25);
    sink.setEnabled(false);

    EXPECT_EQ(sink.recorded(), 3u);
    std::string json = sink.toJson();
    JsonChecker checker(json);
    EXPECT_TRUE(checker.valid()) << json;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(json.find("thread_name"), std::string::npos);
    EXPECT_NE(json.find("\"bytes\":64"), std::string::npos);
    // The quote inside the instant's name must be escaped.
    EXPECT_NE(json.find("spawn \\\"q\\\""), std::string::npos);
    sink.reset();
}

TEST(TraceSink, RingDropsNewestWhenFull)
{
    obs::TraceSink& sink = obs::TraceSink::instance();
    sink.reset();
    sink.configure(1, 4);
    sink.setEnabled(true);
    for (int i = 0; i < 10; ++i)
        obs::TraceSink::instant(0, "e", i);
    sink.setEnabled(false);
    EXPECT_EQ(sink.recorded(), 4u);
    EXPECT_EQ(sink.dropped(), 6u);
    // The kept events are the earliest ones.
    std::string json = sink.toJson();
    EXPECT_NE(json.find("\"ts\":0"), std::string::npos);
    EXPECT_EQ(json.find("\"ts\":9"), std::string::npos);
    EXPECT_NE(json.find("\"droppedEvents\":6"), std::string::npos);
    sink.reset();
}

TEST(TraceSink, LaneOverflowIsIndependentPerLane)
{
    obs::TraceSink& sink = obs::TraceSink::instance();
    sink.reset();
    sink.configure(2, 4);
    sink.setEnabled(true);
    // Overflow lane 0; lane 1 stays under capacity.
    for (int i = 0; i < 6; ++i)
        obs::TraceSink::instant(0, "full", i);
    obs::TraceSink::instant(1, "ok", 100);
    obs::TraceSink::instant(1, "ok", 101);
    // Flow events obey the same ring bound: dropped on the full lane,
    // recorded on the other.
    obs::TraceSink::flow('s', 0, "span.read_miss", 6, 77);
    obs::TraceSink::flow('f', 1, "span.read_miss", 102, 77);
    sink.setEnabled(false);

    EXPECT_EQ(sink.recorded(), 7u); // 4 + 3
    EXPECT_EQ(sink.dropped(), 3u);  // two instants + the flow 's'
    std::string json = sink.toJson();
    JsonChecker checker(json);
    EXPECT_TRUE(checker.valid()) << json;
    // Lane 0 kept the beginning of the run; its overflow never touched
    // lane 1, whose flow event renders with binding fields intact.
    EXPECT_NE(json.find("\"ts\":0"), std::string::npos);
    EXPECT_EQ(json.find("\"ts\":4"), std::string::npos);
    EXPECT_NE(json.find("\"ts\":102"), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
    EXPECT_EQ(json.find("\"ph\":\"s\""), std::string::npos);
    EXPECT_NE(json.find("\"cat\":\"span\""), std::string::npos);
    EXPECT_NE(json.find("\"id\":77"), std::string::npos);
    EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);
    EXPECT_NE(json.find("\"droppedEvents\":3"), std::string::npos);
    sink.reset();
}

// ---------------------------------------------------------- MetricsSampler

TEST(MetricsSampler, IntervalDeltaMath)
{
    StatsRegistry reg;
    stat_t counter = 10;
    reg.registerCounter("c", &counter);

    cycle_t clock = 0;
    obs::MetricsSampler sampler;
    sampler.configure(&reg, 100, "", [&clock] { return clock; },
                      nullptr);

    clock = 50;
    sampler.maybeSample(); // below the first boundary: no row
    EXPECT_EQ(sampler.rowCount(), 0u);

    counter = 25;
    clock = 130;
    sampler.maybeSample();
    ASSERT_EQ(sampler.rowCount(), 1u);
    auto r0 = sampler.row(0);
    EXPECT_EQ(r0.startCycle, 0u);
    EXPECT_EQ(r0.endCycle, 130u);
    ASSERT_EQ(r0.deltas.size(), 1u);
    EXPECT_EQ(r0.deltas[0], 15); // 25 - 10

    // A leap across several boundaries yields one row, not a backlog.
    counter = 30;
    clock = 1000;
    sampler.maybeSample();
    ASSERT_EQ(sampler.rowCount(), 2u);
    auto r1 = sampler.row(1);
    EXPECT_EQ(r1.startCycle, 130u);
    EXPECT_EQ(r1.endCycle, 1000u);
    EXPECT_EQ(r1.deltas[0], 5);

    clock = 1000;
    sampler.maybeSample(); // boundary not crossed again
    EXPECT_EQ(sampler.rowCount(), 2u);

    // finalize() records the tail interval and detaches.
    counter = 31;
    clock = 1040;
    sampler.finalize();
    ASSERT_EQ(sampler.rowCount(), 3u);
    EXPECT_EQ(sampler.row(2).deltas[0], 1);
    clock = 5000;
    sampler.maybeSample(); // after finalize: inert
    EXPECT_EQ(sampler.rowCount(), 3u);
}

TEST(MetricsSampler, SkewColumnsFromActiveClocks)
{
    StatsRegistry reg;
    cycle_t clock = 0;
    obs::MetricsSampler sampler;
    sampler.configure(&reg, 100, "", [&clock] { return clock; },
                      [] {
                          return std::vector<double>{100.0, 200.0, 300.0};
                      });
    clock = 100;
    sampler.maybeSample();
    ASSERT_EQ(sampler.rowCount(), 1u);
    auto r = sampler.row(0);
    EXPECT_DOUBLE_EQ(r.skewMax, 100.0);  // 300 - mean(200)
    EXPECT_DOUBLE_EQ(r.skewMin, -100.0); // 100 - mean(200)
    sampler.finalize();
}

TEST(MetricsSampler, CsvRendering)
{
    StatsRegistry reg;
    stat_t counter = 0;
    reg.registerCounter("x.total", &counter);
    cycle_t clock = 0;
    obs::MetricsSampler sampler;
    sampler.configure(&reg, 10, "", [&clock] { return clock; }, nullptr);
    counter = 4;
    clock = 10;
    sampler.maybeSample();
    std::string csv = sampler.render();
    EXPECT_NE(csv.find("interval,start_cycle,end_cycle,wall_seconds,"
                       "host_wall_ms,host_rss_kb,"
                       "skew_max_cycles,skew_min_cycles,"
                       "causality_violations,x.total"),
              std::string::npos);
    EXPECT_NE(csv.find("\n0,0,10,"), std::string::npos);
    sampler.finalize();
}

TEST(MetricsSampler, ShortRunEmitsPartialRowAtFinalize)
{
    StatsRegistry reg;
    stat_t counter = 0;
    reg.registerCounter("c", &counter);
    cycle_t clock = 0;
    obs::MetricsSampler sampler;
    sampler.configure(&reg, 100000, "", [&clock] { return clock; },
                      nullptr);

    // The run ends well inside the first interval: maybeSample never
    // crossed a boundary, but finalize still emits the partial row so
    // short runs don't produce empty artifacts.
    counter = 12;
    clock = 40;
    sampler.maybeSample();
    EXPECT_EQ(sampler.rowCount(), 0u);
    sampler.finalize();
    ASSERT_EQ(sampler.rowCount(), 1u);
    auto r = sampler.row(0);
    EXPECT_EQ(r.startCycle, 0u);
    EXPECT_EQ(r.endCycle, 40u);
    ASSERT_EQ(r.deltas.size(), 1u);
    EXPECT_EQ(r.deltas[0], 12);
    // Header plus the one data row.
    std::string csv = sampler.render();
    EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 2);
}

// --------------------------------------------------------------- profiler

TEST(HostProfiler, ScopesAccumulateOnlyWhenEnabled)
{
    obs::HostProfiler& prof = obs::HostProfiler::instance();
    prof.reset();
    prof.setEnabled(false);
    {
        GRAPHITE_PROFILE_SCOPE("test.disabled");
    }
    EXPECT_EQ(prof.site("test.disabled").calls.load(), 0u);

    prof.setEnabled(true);
    for (int i = 0; i < 3; ++i) {
        GRAPHITE_PROFILE_SCOPE("test.enabled");
    }
    prof.setEnabled(false);
    obs::HostProfiler::Site& site = prof.site("test.enabled");
    EXPECT_EQ(site.calls.load(), 3u);
    EXPECT_GE(site.maxNs.load(), 0u);
    std::string report = prof.report();
    EXPECT_NE(report.find("test.enabled"), std::string::npos);
    EXPECT_EQ(report.find("test.disabled"), std::string::npos);
    prof.reset();
}

namespace
{

std::uint64_t
profiledFib(int n)
{
    GRAPHITE_PROFILE_SCOPE("test.fib");
    if (n < 2)
        return static_cast<std::uint64_t>(n);
    return profiledFib(n - 1) + profiledFib(n - 2);
}

} // namespace

TEST(HostProfiler, NestedAndReentrantScopesAttributeInclusively)
{
    obs::HostProfiler& prof = obs::HostProfiler::instance();
    prof.reset();
    prof.setEnabled(true);
    {
        GRAPHITE_PROFILE_SCOPE("test.outer");
        {
            GRAPHITE_PROFILE_SCOPE("test.inner");
        }
        {
            GRAPHITE_PROFILE_SCOPE("test.inner");
        }
    }
    // Re-entrant recursion through one site: every activation counts,
    // and nested RAII scopes unwind innermost-first without losing any.
    profiledFib(6); // 25 calls
    prof.setEnabled(false);

    obs::HostProfiler::Site& outer = prof.site("test.outer");
    obs::HostProfiler::Site& inner = prof.site("test.inner");
    obs::HostProfiler::Site& fib = prof.site("test.fib");
    EXPECT_EQ(outer.calls.load(), 1u);
    EXPECT_EQ(inner.calls.load(), 2u);
    EXPECT_EQ(fib.calls.load(), 25u);
    // Timing is inclusive: the enclosing scope's wall time covers its
    // nested activations.
    EXPECT_GE(outer.totalNs.load(), inner.totalNs.load());
    EXPECT_GE(outer.maxNs.load(), inner.maxNs.load());
    EXPECT_LE(fib.maxNs.load(), fib.totalNs.load());
    prof.reset();
}

// ------------------------------------------------------------- end-to-end

void
obsWorker(void* p)
{
    auto* data = static_cast<addr_t*>(p);
    for (int i = 0; i < 200; ++i) {
        std::uint64_t v = api::read<std::uint64_t>(*data);
        api::write<std::uint64_t>(*data, v + 1);
        api::exec(InstrClass::IntAlu, 50);
    }
}

void
obsMain(void* p)
{
    auto* data = static_cast<addr_t*>(p);
    *data = api::malloc(8);
    api::write<std::uint64_t>(*data, 0);
    tile_id_t t1 = api::threadSpawn(&obsWorker, data);
    obsWorker(data);
    api::threadJoin(t1);
}

TEST(Observability, EndToEndArtifacts)
{
    std::string dir = ::testing::TempDir();
    std::string trace_path = dir + "graphite_obs_trace.json";
    std::string metrics_path = dir + "graphite_obs_metrics.csv";
    std::remove(trace_path.c_str());
    std::remove(metrics_path.c_str());

    Config cfg = defaultTargetConfig();
    cfg.setInt("general/total_tiles", 4);
    cfg.set("obs/trace_out", trace_path);
    cfg.set("obs/metrics_out", metrics_path);
    cfg.setInt("obs/metrics_interval", 1000);
    cfg.setBool("obs/self_profile", true);
    {
        Simulator sim(cfg);
        addr_t data = 0;
        sim.run(&obsMain, &data);
        // The report embeds the self-profile when enabled.
        std::string report = sim.statsReport();
        EXPECT_NE(report.find("host self-profile"), std::string::npos);
        EXPECT_NE(report.find("sim.run"), std::string::npos);
    }

    ASSERT_TRUE(fileExists(trace_path));
    std::string json = readFile(trace_path);
    JsonChecker checker(json);
    EXPECT_TRUE(checker.valid());
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("thread"), std::string::npos);

    ASSERT_TRUE(fileExists(metrics_path));
    std::string csv = readFile(metrics_path);
    EXPECT_NE(csv.find("skew_max_cycles"), std::string::npos);
    EXPECT_NE(csv.find("mem.l2_misses_total"), std::string::npos);
    EXPECT_NE(csv.find("tile.0.cycles"), std::string::npos);
    // Header plus at least one data row.
    EXPECT_GE(std::count(csv.begin(), csv.end(), '\n'), 2);

    std::remove(trace_path.c_str());
    std::remove(metrics_path.c_str());
}

TEST(Observability, DisabledByDefaultWritesNothing)
{
    Config cfg = defaultTargetConfig();
    cfg.setInt("general/total_tiles", 4);
    {
        Simulator sim(cfg);
        addr_t data = 0;
        sim.run(&obsMain, &data);
        EXPECT_FALSE(obs::TraceSink::enabled());
        EXPECT_FALSE(obs::MetricsSampler::globalEnabled());
        EXPECT_FALSE(obs::HostProfiler::enabled());
    }
    // The disabled run's configure() reset the trace sink; nothing was
    // recorded. (The sampler singleton may still hold a prior enabled
    // run's rows — by design, so post-run reports can read them.)
    EXPECT_EQ(obs::TraceSink::instance().recorded(), 0u);
}

} // namespace
} // namespace graphite
