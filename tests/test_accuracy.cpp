/**
 * @file
 * Tests for the accuracy observatory (src/obs/accuracy).
 *
 * Unit level: exact violation accounting against synthetic tile clocks
 * (the observatory only reads attached atomics, so a test can pin every
 * clock and predict each counter to the cycle), the 8-point violation
 * taxonomy, the directional pair-skew matrix, the JSONL report schema,
 * and the SkewTracker snapshot feed.
 *
 * System level: the planted late-delivery fault (check/inject_fault =
 * late_delivery stamps every packet with its send time, a timing-only
 * perturbation) must produce causality violations under all three lax
 * sync models, with identical counts across repeat runs under the
 * deterministic host scheduler and an unchanged workload checksum.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>

#include "check/fault.h"
#include "common/config.h"
#include "core/simulator.h"
#include "obs/accuracy/accuracy.h"
#include "perf/core_model.h"
#include "sync/skew_tracker.h"
#include "workloads/registry.h"

namespace graphite
{
namespace obs
{
namespace accuracy
{
namespace
{

/** Return the observatory to the shipping default (disarmed). */
void
disarmObservatory()
{
    AccuracyObservatory::instance().configure(defaultTargetConfig(), 0);
    ASSERT_FALSE(AccuracyObservatory::armed());
}

// ------------------------------------------------------------ unit level

class AccuracyUnit : public ::testing::Test
{
  protected:
    static constexpr tile_id_t TILES = 4;

    void
    SetUp() override
    {
        Config cfg = defaultTargetConfig();
        cfg.setBool("accuracy/enabled", true);
        AccuracyObservatory& acc = AccuracyObservatory::instance();
        acc.configure(cfg, TILES);
        ASSERT_TRUE(AccuracyObservatory::armed());
        for (tile_id_t t = 0; t < TILES; ++t) {
            clocks_[t].store(0, std::memory_order_relaxed);
            acc.attachClock(t, &clocks_[t]);
        }
    }

    void TearDown() override { disarmObservatory(); }

    std::atomic<cycle_t> clocks_[TILES];
};

TEST_F(AccuracyUnit, PointNamesAreStableAndUnique)
{
    std::set<std::string> names;
    for (int i = 0; i < NUM_VIOLATION_POINTS; ++i) {
        std::string n =
            violationPointName(static_cast<ViolationPoint>(i));
        EXPECT_NE(n, "?");
        names.insert(n);
    }
    EXPECT_EQ(names.size(),
              static_cast<size_t>(NUM_VIOLATION_POINTS));
    EXPECT_EQ(violationPointName(ViolationPoint::NetApp),
              std::string("net_app"));
    EXPECT_EQ(violationPointName(ViolationPoint::MemWriteback),
              std::string("mem_writeback"));
}

TEST_F(AccuracyUnit, ExactViolationAccounting)
{
    AccuracyObservatory& acc = AccuracyObservatory::instance();
    clocks_[1].store(1000, std::memory_order_relaxed);

    // Event in the receiver's future and event exactly at the clock
    // are causal; only strictly-stale timestamps violate.
    acc.onDelivery(ViolationPoint::NetApp, 0, 1, 1500);
    acc.onDelivery(ViolationPoint::NetApp, 0, 1, 1000);
    acc.onDelivery(ViolationPoint::NetApp, 0, 1, 400); // 600 late
    acc.onDelivery(ViolationPoint::NetApp, 0, 1, 900); // 100 late

    EXPECT_EQ(acc.deliveries(), 4);
    EXPECT_EQ(acc.violations(), 2);
    EXPECT_EQ(acc.worstMagnitude(), 600u);
    EXPECT_EQ(acc.pointDeliveries(ViolationPoint::NetApp), 4);
    EXPECT_EQ(acc.pointViolations(ViolationPoint::NetApp), 2);
    EXPECT_EQ(acc.pointViolations(ViolationPoint::MemRequest), 0);
    EXPECT_EQ(acc.magnitudeHistogram()->count(), 2);
    EXPECT_EQ(acc.magnitudeHistogram()->max(), 600);
    EXPECT_EQ(
        acc.pointMagnitudeHistogram(ViolationPoint::NetApp)->count(),
        2);
}

TEST_F(AccuracyUnit, EveryPointClassifiesIndependently)
{
    AccuracyObservatory& acc = AccuracyObservatory::instance();
    clocks_[2].store(500, std::memory_order_relaxed);
    for (int i = 0; i < NUM_VIOLATION_POINTS; ++i)
        acc.onDelivery(static_cast<ViolationPoint>(i), 0, 2,
                       static_cast<cycle_t>(i)); // all stale
    stat_t sum = 0;
    for (int i = 0; i < NUM_VIOLATION_POINTS; ++i) {
        auto p = static_cast<ViolationPoint>(i);
        EXPECT_EQ(acc.pointDeliveries(p), 1) << violationPointName(p);
        EXPECT_EQ(acc.pointViolations(p), 1) << violationPointName(p);
        sum += acc.pointViolations(p);
    }
    EXPECT_EQ(sum, acc.violations());
    EXPECT_EQ(acc.worstMagnitude(), 500u); // event_time 0 at clock 500
}

TEST_F(AccuracyUnit, OutOfRangeAndDetachedClocksObserveNothing)
{
    AccuracyObservatory& acc = AccuracyObservatory::instance();
    clocks_[0].store(100, std::memory_order_relaxed);

    acc.onDelivery(ViolationPoint::NetApp, 0, TILES + 7, 1);
    acc.onDelivery(ViolationPoint::NetApp, 0, INVALID_TILE_ID, 1);
    EXPECT_EQ(acc.deliveries(), 0);

    // After finalize the clocks are detached (they belong to a dying
    // Simulator); the hooks must freeze rather than dereference.
    acc.detachClocks();
    acc.onDelivery(ViolationPoint::NetApp, 1, 0, 1);
    EXPECT_EQ(acc.deliveries(), 0);
    EXPECT_EQ(acc.violations(), 0);
}

TEST_F(AccuracyUnit, PairMatrixTracksDirectionalSkew)
{
    AccuracyObservatory& acc = AccuracyObservatory::instance();
    acc.onPairObserved(0, 1, 100, 350); // skew 250
    acc.onPairObserved(0, 1, 500, 100); // skew 400
    acc.onPairObserved(2, 2, 5, 900);   // self pair: ignored
    acc.onPairObserved(0, TILES + 3, 0, 900); // out of range: ignored

    PairSkew ps = acc.pair(0, 1);
    EXPECT_EQ(ps.maxSkew, 400u);
    EXPECT_EQ(ps.samples, 2);
    EXPECT_DOUBLE_EQ(ps.meanSkew, 325.0);
    EXPECT_EQ(acc.pair(1, 0).samples, 0); // directional cells
    EXPECT_EQ(acc.pairSkewMax(), 400u);
    EXPECT_EQ(acc.pairSamples(), 2);
    EXPECT_DOUBLE_EQ(acc.pairSkewMean(), 325.0);
}

TEST_F(AccuracyUnit, DeliveriesFeedThePairMatrix)
{
    AccuracyObservatory& acc = AccuracyObservatory::instance();
    clocks_[0].store(100, std::memory_order_relaxed);
    clocks_[3].store(400, std::memory_order_relaxed);

    // Causal delivery (event in the receiver's future): no violation,
    // but the src/dst clock gap still lands in the skew matrix.
    acc.onDelivery(ViolationPoint::MemRequest, 0, 3, 450);
    EXPECT_EQ(acc.deliveries(), 1);
    EXPECT_EQ(acc.violations(), 0);
    PairSkew ps = acc.pair(0, 3);
    EXPECT_EQ(ps.samples, 1);
    EXPECT_EQ(ps.maxSkew, 300u);
}

TEST_F(AccuracyUnit, ReportJsonlCarriesTheFullSchema)
{
    AccuracyObservatory& acc = AccuracyObservatory::instance();
    clocks_[1].store(1000, std::memory_order_relaxed);
    acc.onDelivery(ViolationPoint::MemReply, 0, 1, 250); // 750 late
    acc.onPairObserved(2, 3, 900, 100);

    std::string report = acc.reportJsonl();
    EXPECT_NE(report.find("\"type\":\"accuracy_summary\""),
              std::string::npos);
    EXPECT_NE(report.find("\"deliveries\":1"), std::string::npos);
    EXPECT_NE(report.find("\"violations\":1"), std::string::npos);
    EXPECT_NE(report.find("\"worst_magnitude_cycles\":750"),
              std::string::npos);
    for (int i = 0; i < NUM_VIOLATION_POINTS; ++i)
        EXPECT_NE(report.find(violationPointName(
                      static_cast<ViolationPoint>(i))),
                  std::string::npos);
    EXPECT_NE(report.find("\"type\":\"accuracy_pair\""),
              std::string::npos);

    // One summary + one line per point + one per touched pair cell
    // ((0,1) from the delivery and (2,3) from the observation).
    size_t lines = 0;
    for (char c : report)
        lines += c == '\n';
    EXPECT_EQ(lines, 1u + NUM_VIOLATION_POINTS + 2u);
}

TEST(AccuracyConfig, DisarmedByDefaultAndArmedByReportPath)
{
    AccuracyObservatory& acc = AccuracyObservatory::instance();
    acc.configure(defaultTargetConfig(), 4);
    EXPECT_FALSE(AccuracyObservatory::armed());

    // accuracy/out implies enabled: asking for a report arms detection.
    Config cfg = defaultTargetConfig();
    cfg.set("accuracy/out", "/tmp/graphite_test_accuracy_unused.jsonl");
    acc.configure(cfg, 4);
    EXPECT_TRUE(AccuracyObservatory::armed());
    EXPECT_EQ(acc.reportPath(),
              "/tmp/graphite_test_accuracy_unused.jsonl");
    // Drop the pending report path without writing the file.
    acc.configure(defaultTargetConfig(), 0);
    EXPECT_FALSE(AccuracyObservatory::armed());
}

// ---------------------------------------------------- SkewTracker feed

TEST(SkewTrackerPairFeed, SnapshotExtremesLandInPairMatrix)
{
    Config cfg = defaultTargetConfig();
    cfg.setBool("accuracy/enabled", true);
    AccuracyObservatory& acc = AccuracyObservatory::instance();
    acc.configure(cfg, 4);

    // Three free-standing cores with hand-advanced clocks; the snapshot
    // must feed its fastest/slowest pair into the observatory matrix.
    Config core_cfg = defaultTargetConfig();
    CoreModel fast(1, core_cfg);
    CoreModel mid(2, core_cfg);
    CoreModel slow(3, core_cfg);
    fast.executeInstructions(InstrClass::IntAlu, 9000);
    mid.executeInstructions(InstrClass::IntAlu, 5000);
    slow.executeInstructions(InstrClass::IntAlu, 1000);
    ASSERT_GT(fast.cycle(), mid.cycle());
    ASSERT_GT(mid.cycle(), slow.cycle());

    SkewTracker tracker(0); // unthrottled
    tracker.attachCores({{&fast, nullptr},
                         {&mid, nullptr},
                         {&slow, nullptr}});
    tracker.maybeSnapshot();
    EXPECT_EQ(tracker.sampleCount(), 1u);

    cycle_t envelope = fast.cycle() - slow.cycle();
    PairSkew ps = acc.pair(1, 3); // fast tile -> slow tile
    EXPECT_EQ(ps.samples, 1);
    EXPECT_EQ(ps.maxSkew, envelope);
    EXPECT_EQ(acc.pairSkewMax(), envelope);
    EXPECT_EQ(acc.pair(2, 3).samples, 0); // only the extremes feed

    disarmObservatory();
}

// ---------------------------------------------------------- system level

struct SysRun
{
    double checksum = 0;
    stat_t deliveries = 0;
    stat_t violations = 0;
    cycle_t worst = 0;
    stat_t pairSamples = 0;
    stat_t statViolations = 0; ///< via the sim's stats registry
};

SysRun
runModel(const std::string& model, bool plant_late_delivery)
{
    Config cfg = defaultTargetConfig();
    cfg.setInt("general/total_tiles", 8);
    cfg.setBool("accuracy/enabled", true);
    cfg.set("sync/model", model);
    cfg.set("host/scheduler", "deterministic");
    if (plant_late_delivery) {
        cfg.set("check/inject_fault", "late_delivery");
        cfg.setInt("check/fault_after", 0);
    }
    Simulator sim(cfg);
    const workloads::WorkloadInfo& w = workloads::findWorkload("fft");
    workloads::WorkloadParams p = w.defaults;
    p.threads = 8;
    p.size = 256;
    workloads::SimRunResult r = workloads::runSim(sim, w, p);

    const AccuracyObservatory& acc = AccuracyObservatory::instance();
    SysRun out;
    out.checksum = r.checksum;
    out.deliveries = acc.deliveries();
    out.violations = acc.violations();
    out.worst = acc.worstMagnitude();
    out.pairSamples = acc.pairSamples();
    out.statViolations = sim.stats().get("accuracy.violations");
    check::FaultPlan::instance().disarm();
    return out;
}

class AccuracySystem : public ::testing::TestWithParam<const char*>
{
};

TEST_P(AccuracySystem, PlantedLateDeliveryIsDetectedDeterministically)
{
    const std::string model = GetParam();

    SysRun clean = runModel(model, false);
    EXPECT_GT(clean.deliveries, 0) << model;
    EXPECT_LE(clean.violations, clean.deliveries) << model;
    EXPECT_EQ(clean.statViolations, clean.violations) << model;
    EXPECT_GT(clean.pairSamples, 0) << model;

    // Stamping every packet with its send time plants guaranteed-stale
    // timestamps wherever a receiver runs ahead of a sender.
    SysRun faulted = runModel(model, true);
    EXPECT_GT(faulted.deliveries, 0) << model;
    EXPECT_GE(faulted.violations, 1) << model;
    EXPECT_GT(faulted.worst, 0u) << model;

    // The fault is timing-only: functional results must not move.
    EXPECT_EQ(faulted.checksum, clean.checksum) << model;

    // Deterministic scheduler: detection itself is reproducible
    // (pair samples are wall-clock throttled, so they are excluded).
    SysRun again = runModel(model, true);
    EXPECT_EQ(again.deliveries, faulted.deliveries) << model;
    EXPECT_EQ(again.violations, faulted.violations) << model;
    EXPECT_EQ(again.worst, faulted.worst) << model;
    EXPECT_EQ(again.checksum, faulted.checksum) << model;

    disarmObservatory();
}

INSTANTIATE_TEST_SUITE_P(AllSyncModels, AccuracySystem,
                         ::testing::Values("lax", "lax_barrier",
                                           "lax_p2p"));

} // namespace
} // namespace accuracy
} // namespace obs
} // namespace graphite
