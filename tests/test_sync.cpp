/**
 * @file
 * Unit tests for the synchronization models (§3.6) and the skew tracker.
 * The models are driven directly with CoreModels on host threads, without
 * a full simulation.
 */

#include <gtest/gtest.h>

#include <thread>

#include "common/config.h"
#include "common/log.h"
#include "perf/core_model.h"
#include "sync/skew_tracker.h"
#include "sync/sync_model.h"

namespace graphite
{
namespace
{

Config
syncConfig(const std::string& model, cycle_t quantum = 1000,
           cycle_t slack = 100000)
{
    Config cfg = defaultTargetConfig();
    cfg.set("sync/model", model);
    cfg.setInt("sync/quantum", static_cast<std::int64_t>(quantum));
    cfg.setInt("sync/slack", static_cast<std::int64_t>(slack));
    return cfg;
}

TEST(SyncFactory, CreatesAllModels)
{
    for (const char* name : {"lax", "lax_p2p", "lax_barrier"}) {
        auto model = SyncModel::create(syncConfig(name), 4);
        EXPECT_EQ(model->name(), name);
    }
    EXPECT_THROW(SyncModel::create(syncConfig("bogus"), 4), FatalError);
}

TEST(LaxSync, NeverBlocks)
{
    LaxSync lax;
    Config cfg = defaultTargetConfig();
    CoreModel core(0, cfg);
    lax.threadStart(core);
    core.addLatency(1000000);
    lax.periodicSync(core); // returns immediately
    lax.threadExit(core);
    EXPECT_EQ(lax.syncEvents(), 0u);
}

TEST(LaxBarrier, KeepsTwoThreadsWithinQuanta)
{
    // Two threads advancing at very different rates: the barrier must
    // keep their clocks within a few quanta of each other.
    constexpr cycle_t QUANTUM = 1000;
    LaxBarrierSync barrier(QUANTUM, 2);
    Config cfg = defaultTargetConfig();
    CoreModel fast(0, cfg), slow(1, cfg);
    barrier.threadStart(fast);
    barrier.threadStart(slow);

    std::atomic<cycle_t> max_gap{0};
    auto runner = [&](CoreModel& core, cycle_t step, int iters) {
        for (int i = 0; i < iters; ++i) {
            core.addLatency(step);
            barrier.periodicSync(core);
            cycle_t a = fast.cycle(), b = slow.cycle();
            cycle_t gap = a > b ? a - b : b - a;
            cycle_t prev = max_gap.load();
            while (gap > prev && !max_gap.compare_exchange_weak(prev,
                                                                gap)) {
            }
        }
        barrier.threadExit(core);
    };
    std::thread t1([&] { runner(fast, 500, 200); });   // 100k cycles
    std::thread t2([&] { runner(slow, 100, 1000); });  // 100k cycles
    t1.join();
    t2.join();
    EXPECT_GT(barrier.syncEvents(), 50u);
    // Each periodicSync step is <= 500 cycles, so the gap observed
    // right after a barrier is bounded by a couple of quanta.
    EXPECT_LE(max_gap.load(), 4 * QUANTUM);
}

TEST(LaxBarrier, BlockedThreadDoesNotDeadlockOthers)
{
    LaxBarrierSync barrier(100, 2);
    Config cfg = defaultTargetConfig();
    CoreModel a(0, cfg), b(1, cfg);
    barrier.threadStart(a);
    barrier.threadStart(b);
    // b blocks in "application synchronization" and cannot reach the
    // barrier; a must still be able to cross quanta.
    barrier.threadBlocked(b);
    std::thread runner([&] {
        for (int i = 0; i < 50; ++i) {
            a.addLatency(100);
            barrier.periodicSync(a);
        }
        barrier.threadExit(a);
    });
    runner.join(); // would hang forever if the barrier counted b
    barrier.threadUnblocked(b);
    barrier.threadExit(b);
    EXPECT_GE(a.cycle(), 5000u);
}

TEST(LaxP2P, AheadThreadSleeps)
{
    LaxP2PSync p2p(2, /*slack=*/1000, /*interval=*/100, 42);
    Config cfg = defaultTargetConfig();
    CoreModel ahead(0, cfg), behind(1, cfg);
    p2p.threadStart(ahead);
    p2p.threadStart(behind);
    ahead.addLatency(100000); // way past the slack
    p2p.periodicSync(ahead);  // must sleep
    EXPECT_GE(p2p.syncEvents(), 1u);
    EXPECT_GT(p2p.syncWaitMicroseconds(), 0u);
    p2p.threadExit(ahead);
    p2p.threadExit(behind);
}

TEST(LaxP2P, BehindThreadDoesNotSleep)
{
    LaxP2PSync p2p(2, 1000, 100, 42);
    Config cfg = defaultTargetConfig();
    CoreModel ahead(0, cfg), behind(1, cfg);
    p2p.threadStart(ahead);
    p2p.threadStart(behind);
    ahead.addLatency(100000);
    behind.addLatency(200);
    p2p.periodicSync(behind); // behind: partner ahead, no sleep
    EXPECT_EQ(p2p.syncEvents(), 0u);
}

TEST(LaxP2P, NoPartnerNoSleep)
{
    LaxP2PSync p2p(4, 10, 100, 42);
    Config cfg = defaultTargetConfig();
    CoreModel only(2, cfg);
    p2p.threadStart(only);
    only.addLatency(100000);
    p2p.periodicSync(only); // no other active tile
    EXPECT_EQ(p2p.syncEvents(), 0u);
}

TEST(SkewTracker, SnapshotsRunnableClocks)
{
    Config cfg = defaultTargetConfig();
    CoreModel a(0, cfg), b(1, cfg);
    std::atomic<bool> a_run{true}, b_run{true};
    SkewTracker tracker(/*min_period_us=*/0);
    tracker.attachCores({{&a, &a_run}, {&b, &b_run}});

    a.addLatency(1000);
    b.addLatency(3000);
    tracker.maybeSnapshot();
    EXPECT_EQ(tracker.sampleCount(), 1u);
    auto intervals = tracker.analyze(1);
    ASSERT_EQ(intervals.size(), 1u);
    EXPECT_DOUBLE_EQ(intervals[0].maxSkew, 1000.0);  // b is +1000
    EXPECT_DOUBLE_EQ(intervals[0].minSkew, -1000.0); // a is -1000
}

TEST(SkewTracker, ExcludesBlockedTiles)
{
    Config cfg = defaultTargetConfig();
    CoreModel a(0, cfg), b(1, cfg), c(2, cfg);
    std::atomic<bool> a_run{true}, b_run{true}, c_run{false};
    SkewTracker tracker(0);
    tracker.attachCores({{&a, &a_run}, {&b, &b_run}, {&c, &c_run}});
    a.addLatency(100);
    b.addLatency(200);
    c.addLatency(999999); // blocked outlier must not count
    tracker.maybeSnapshot();
    auto intervals = tracker.analyze(1);
    ASSERT_EQ(intervals.size(), 1u);
    EXPECT_LE(intervals[0].maxSkew, 100.0);
}

TEST(SkewTracker, AnalyzeWithNoSnapshots)
{
    // Empty history window: a run that never sampled (or ended before
    // the first period) must analyze to nothing, not divide by zero.
    SkewTracker tracker(0);
    EXPECT_EQ(tracker.sampleCount(), 0u);
    EXPECT_TRUE(tracker.analyze(8).empty());
    EXPECT_TRUE(tracker.analyze(0).empty());
    EXPECT_TRUE(tracker.analyze(-3).empty());
    tracker.maybeSnapshot(); // no cores attached: still no sample
    EXPECT_EQ(tracker.sampleCount(), 0u);
}

TEST(SkewTracker, SingleRunnableClockIsNotSkew)
{
    // With fewer than two runnable clocks there is no deviation to
    // measure; the snapshot must be dropped rather than recorded as a
    // zero-width (or NaN) observation.
    Config cfg = defaultTargetConfig();
    CoreModel a(0, cfg), b(1, cfg);
    std::atomic<bool> a_run{true}, b_run{false};
    SkewTracker tracker(0);
    tracker.attachCores({{&a, &a_run}, {&b, &b_run}});
    a.addLatency(500);
    b.addLatency(500);
    tracker.maybeSnapshot();
    EXPECT_EQ(tracker.sampleCount(), 0u);
    EXPECT_TRUE(tracker.analyze(1).empty());
}

TEST(LaxP2P, ZeroSlackStaysLive)
{
    // slack = 0 makes every partner check with any clock difference a
    // sleep candidate; the model must still make forward progress.
    LaxP2PSync p2p(2, /*slack=*/0, /*interval=*/10, 42);
    Config cfg = defaultTargetConfig();
    CoreModel a(0, cfg), b(1, cfg);
    p2p.threadStart(a);
    p2p.threadStart(b);
    auto runner = [&](CoreModel& core) {
        for (int i = 0; i < 100; ++i) {
            core.addLatency(10);
            p2p.periodicSync(core);
        }
        p2p.threadExit(core);
    };
    std::thread t1([&] { runner(a); });
    std::thread t2([&] { runner(b); });
    t1.join();
    t2.join(); // would hang here if zero slack could deadlock
    EXPECT_GE(a.cycle(), 1000u);
    EXPECT_GE(b.cycle(), 1000u);
}

TEST(SkewTracker, ThrottlesByPeriod)
{
    Config cfg = defaultTargetConfig();
    CoreModel a(0, cfg), b(1, cfg);
    std::atomic<bool> run{true};
    SkewTracker tracker(/*min_period_us=*/1000000); // 1 s
    tracker.attachCores({{&a, &run}, {&b, &run}});
    a.addLatency(1);
    b.addLatency(1);
    tracker.maybeSnapshot();
    tracker.maybeSnapshot(); // inside the period: dropped
    EXPECT_LE(tracker.sampleCount(), 1u);
}

TEST(SkewTracker, SingleTileRunProducesNoSamples)
{
    // A single-tile target has no second clock to deviate from; the
    // tracker must quietly record nothing rather than a stream of
    // zero-skew observations that would flatten Figure-7 plots.
    Config cfg = defaultTargetConfig();
    CoreModel only(0, cfg);
    std::atomic<bool> run{true};
    SkewTracker tracker(0);
    tracker.attachCores({{&only, &run}});
    for (int i = 0; i < 5; ++i) {
        only.addLatency(100);
        tracker.maybeSnapshot();
    }
    EXPECT_EQ(tracker.sampleCount(), 0u);
    EXPECT_TRUE(tracker.analyze(4).empty());
}

TEST(SkewTracker, TileInactiveWholeIntervalIsExcluded)
{
    // A tile that never advances during an interval (clock still zero:
    // spawned but not yet scheduled) must not drag the snapshot mean
    // toward zero. Once it starts running it rejoins the sample.
    Config cfg = defaultTargetConfig();
    CoreModel a(0, cfg), b(1, cfg), late(2, cfg);
    std::atomic<bool> run{true};
    SkewTracker tracker(0);
    tracker.attachCores({{&a, &run}, {&b, &run}, {&late, &run}});

    a.addLatency(1000);
    b.addLatency(3000);
    tracker.maybeSnapshot(); // late still at cycle 0: excluded
    ASSERT_EQ(tracker.sampleCount(), 1u);
    auto first = tracker.analyze(1);
    ASSERT_EQ(first.size(), 1u);
    // Mean over {1000, 3000} only; with the idle tile included the
    // extremes would be +1667/-1333 instead.
    EXPECT_DOUBLE_EQ(first[0].maxSkew, 1000.0);
    EXPECT_DOUBLE_EQ(first[0].minSkew, -1000.0);

    late.addLatency(2000); // tile wakes up: next snapshot sees 3 clocks
    tracker.maybeSnapshot();
    EXPECT_EQ(tracker.sampleCount(), 2u);
}

TEST(SkewTracker, BarrierExcludedSamplesAreDropped)
{
    // All tiles parked at an application barrier: no runnable clock at
    // all. The snapshot must be dropped outright — barrier residence is
    // phase imbalance, not simulator clock skew (§4.3).
    Config cfg = defaultTargetConfig();
    CoreModel a(0, cfg), b(1, cfg);
    std::atomic<bool> a_run{false}, b_run{false};
    SkewTracker tracker(0);
    tracker.attachCores({{&a, &a_run}, {&b, &b_run}});
    a.addLatency(500);
    b.addLatency(9000);
    tracker.maybeSnapshot(); // everyone blocked: no observation
    EXPECT_EQ(tracker.sampleCount(), 0u);
    EXPECT_TRUE(tracker.analyze(1).empty());

    // Barrier release: both runnable again, the huge in-barrier gap now
    // counts (it is real skew the sync model allowed to accumulate).
    a_run = true;
    b_run = true;
    tracker.maybeSnapshot();
    ASSERT_EQ(tracker.sampleCount(), 1u);
    auto intervals = tracker.analyze(1);
    ASSERT_EQ(intervals.size(), 1u);
    EXPECT_DOUBLE_EQ(intervals[0].maxSkew, 4250.0);  // b: 9000 − 4750
    EXPECT_DOUBLE_EQ(intervals[0].minSkew, -4250.0); // a:  500 − 4750
}

} // namespace
} // namespace graphite
