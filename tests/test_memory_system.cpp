/**
 * @file
 * Integration tests of the MSI coherence engine: state transitions,
 * functional data movement, miss classification, atomics, kernel-side
 * coherent access, and a randomized property stress that checks the
 * full invariant set after every phase.
 */

#include <gtest/gtest.h>

#include "common/config.h"
#include <cstring>

#include "common/rng.h"
#include "mem/memory_system.h"

namespace graphite
{
namespace
{

struct MemFixture
{
    explicit MemFixture(int tiles = 4, Config overrides = Config())
        : cfg(defaultTargetConfig())
    {
        cfg.setInt("general/total_tiles", tiles);
        cfg.parseText(overrides.toString());
        topo = std::make_unique<ClusterTopology>(tiles, 1);
        fabric = std::make_unique<NetworkFabric>(*topo, cfg);
        mem = std::make_unique<MemorySystem>(*topo, *fabric, cfg);
    }

    std::uint64_t
    read64(tile_id_t tile, addr_t addr, cycle_t t = 0)
    {
        std::uint64_t v = 0;
        mem->access(tile, MemAccessType::Read, addr, &v, 8, t);
        return v;
    }

    AccessResult
    write64(tile_id_t tile, addr_t addr, std::uint64_t v, cycle_t t = 0)
    {
        return mem->access(tile, MemAccessType::Write, addr, &v, 8, t);
    }

    Config cfg;
    std::unique_ptr<ClusterTopology> topo;
    std::unique_ptr<NetworkFabric> fabric;
    std::unique_ptr<MemorySystem> mem;
};

const addr_t A = 0x1000'0000; // heap base, line-aligned

// -------------------------------------------------------- MSI transitions

TEST(Msi, ReadInstallsShared)
{
    MemFixture f;
    f.read64(0, A);
    tile_id_t home = f.mem->homeTile(A);
    DirectoryEntry* e = f.mem->directory(home).peek(A);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->state(), DirectoryState::Shared);
    EXPECT_TRUE(e->isSharer(0));
    EXPECT_EQ(f.mem->l2(0).find(A)->state, CacheState::Shared);
    EXPECT_EQ(f.mem->validateCoherence(), "");
}

TEST(Msi, WriteInstallsModified)
{
    MemFixture f;
    f.write64(1, A, 77);
    tile_id_t home = f.mem->homeTile(A);
    DirectoryEntry* e = f.mem->directory(home).peek(A);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->state(), DirectoryState::Modified);
    EXPECT_EQ(e->owner(), 1);
    EXPECT_EQ(f.read64(1, A), 77u);
    EXPECT_EQ(f.mem->validateCoherence(), "");
}

TEST(Msi, WriteInvalidatesSharers)
{
    MemFixture f;
    f.read64(0, A);
    f.read64(1, A);
    f.read64(2, A);
    f.write64(3, A, 5);
    EXPECT_EQ(f.mem->l2(0).find(A), nullptr);
    EXPECT_EQ(f.mem->l2(1).find(A), nullptr);
    EXPECT_EQ(f.mem->l2(2).find(A), nullptr);
    EXPECT_GT(f.mem->stats(3).invalidationsSent, 0u);
    EXPECT_EQ(f.mem->validateCoherence(), "");
}

TEST(Msi, ReadRecallsAndDowngradesOwner)
{
    MemFixture f;
    f.write64(0, A, 99);
    EXPECT_EQ(f.read64(1, A), 99u); // data travels via recall
    tile_id_t home = f.mem->homeTile(A);
    DirectoryEntry* e = f.mem->directory(home).peek(A);
    EXPECT_EQ(e->state(), DirectoryState::Shared);
    EXPECT_TRUE(e->isSharer(0));
    EXPECT_TRUE(e->isSharer(1));
    EXPECT_EQ(f.mem->l2(0).find(A)->state, CacheState::Shared);
    EXPECT_GT(f.mem->stats(1).recalls, 0u);
    EXPECT_EQ(f.mem->validateCoherence(), "");
}

TEST(Msi, WriteRecallsAndInvalidatesOwner)
{
    MemFixture f;
    f.write64(0, A, 11);
    f.write64(1, A, 22); // ownership migrates 0 -> 1
    EXPECT_EQ(f.mem->l2(0).find(A), nullptr);
    tile_id_t home = f.mem->homeTile(A);
    EXPECT_EQ(f.mem->directory(home).peek(A)->owner(), 1);
    EXPECT_EQ(f.read64(0, A), 22u);
    EXPECT_EQ(f.mem->validateCoherence(), "");
}

TEST(Msi, UpgradeKeepsDataInPlace)
{
    MemFixture f;
    f.read64(2, A);
    AccessResult r = f.write64(2, A, 7);
    EXPECT_EQ(r.missClass, MissClass::Upgrade);
    EXPECT_EQ(f.mem->stats(2).l2UpgradeMisses, 1u);
    EXPECT_EQ(f.mem->l2(2).find(A)->state, CacheState::Modified);
    EXPECT_EQ(f.mem->validateCoherence(), "");
}

TEST(Msi, LatencyGrowsWithDistanceAndLevel)
{
    MemFixture f(16);
    // First access: full miss. Second: L1 hit.
    std::uint64_t v;
    AccessResult miss =
        f.mem->access(0, MemAccessType::Read, A, &v, 8, 0);
    AccessResult hit =
        f.mem->access(0, MemAccessType::Read, A, &v, 8, miss.latency);
    EXPECT_GT(miss.latency, hit.latency);
    EXPECT_TRUE(hit.l1Hit);
    EXPECT_FALSE(miss.l1Hit);
}

TEST(Msi, CrossLineAccessSplits)
{
    MemFixture f;
    std::vector<std::uint8_t> buf(200, 0x5A);
    f.mem->access(0, MemAccessType::Write, A + 30, buf.data(),
                  buf.size(), 0);
    std::vector<std::uint8_t> back(200, 0);
    f.mem->access(1, MemAccessType::Read, A + 30, back.data(),
                  back.size(), 0);
    EXPECT_EQ(back, buf);
    EXPECT_EQ(f.mem->validateCoherence(), "");
}

TEST(Msi, InstructionFetchUsesL1I)
{
    MemFixture f;
    std::uint32_t word = 0;
    f.mem->access(0, MemAccessType::Fetch, 0x2000, &word, 4, 0);
    EXPECT_NE(f.mem->l1i(0)->find(0x2000), nullptr);
    EXPECT_EQ(f.mem->l1d(0)->find(0x2000), nullptr);
    EXPECT_EQ(f.mem->validateCoherence(), "");
}

// ------------------------------------------------------------- L1/L2 paths

TEST(Hierarchy, L1InclusionOnL2Eviction)
{
    // Tiny L2 (4 lines) forces evictions; L1 copies must go too.
    Config over;
    over.setInt("perf_model/l2_cache/cache_size", 256);
    over.setInt("perf_model/l2_cache/associativity", 2);
    MemFixture f(2, over);
    for (int i = 0; i < 16; ++i)
        f.read64(0, A + static_cast<addr_t>(i) * 64);
    EXPECT_EQ(f.mem->validateCoherence(), ""); // inclusion checked there
    EXPECT_GT(f.mem->l2(0).evictions(), 0u);
}

TEST(Hierarchy, DirtyEvictionWritesBack)
{
    Config over;
    over.setInt("perf_model/l2_cache/cache_size", 256);
    over.setInt("perf_model/l2_cache/associativity", 2);
    MemFixture f(2, over);
    f.write64(0, A, 0xAB);
    for (int i = 1; i < 16; ++i)
        f.write64(0, A + static_cast<addr_t>(i) * 64,
                  static_cast<std::uint64_t>(i));
    // The first line was evicted dirty; its data must be in memory.
    std::uint64_t v = 0;
    f.mem->backing().read(A, &v, 8);
    EXPECT_EQ(v, 0xABu);
    EXPECT_GT(f.mem->stats(0).writebacks, 0u);
    EXPECT_EQ(f.mem->validateCoherence(), "");
}

TEST(Hierarchy, DisabledL1StillWorks)
{
    Config over;
    over.setBool("perf_model/l1_dcache/enabled", false);
    over.setBool("perf_model/l1_icache/enabled", false);
    MemFixture f(2, over);
    EXPECT_EQ(f.mem->l1d(0), nullptr);
    f.write64(0, A, 42);
    EXPECT_EQ(f.read64(1, A), 42u);
    EXPECT_EQ(f.mem->validateCoherence(), "");
}

// ------------------------------------------------------ miss classification

TEST(MissClass, ColdThenCapacity)
{
    Config over;
    over.setInt("perf_model/l2_cache/cache_size", 256);
    over.setInt("perf_model/l2_cache/associativity", 2);
    MemFixture f(1, over);
    AccessResult first =
        f.mem->access(0, MemAccessType::Read, A, new std::uint64_t, 8,
                      0);
    EXPECT_EQ(first.missClass, MissClass::Cold);
    // Blow the cache, then return: capacity miss.
    for (int i = 1; i < 32; ++i)
        f.read64(0, A + static_cast<addr_t>(i) * 64);
    std::uint64_t v;
    AccessResult again =
        f.mem->access(0, MemAccessType::Read, A, &v, 8, 0);
    EXPECT_EQ(again.missClass, MissClass::Capacity);
    EXPECT_GT(f.mem->stats(0).l2CapacityMisses, 0u);
}

TEST(MissClass, TrueVsFalseSharing)
{
    MemFixture f;
    // Tile 0 reads words 0 and 8 of a line; tile 1 writes word 0.
    f.read64(0, A);
    std::uint32_t w = 1;
    f.mem->access(1, MemAccessType::Write, A, &w, 4, 0);
    // Tile 0 re-reads the written word: true sharing.
    std::uint32_t v;
    AccessResult t =
        f.mem->access(0, MemAccessType::Read, A, &v, 4, 0);
    EXPECT_EQ(t.missClass, MissClass::TrueSharing);

    // Again, but tile 0 re-reads an untouched word: false sharing.
    f.mem->access(1, MemAccessType::Write, A, &w, 4, 0); // re-own
    AccessResult fs =
        f.mem->access(0, MemAccessType::Read, A + 32, &v, 4, 0);
    EXPECT_EQ(fs.missClass, MissClass::FalseSharing);
    EXPECT_EQ(f.mem->stats(0).l2TrueSharingMisses, 1u);
    EXPECT_EQ(f.mem->stats(0).l2FalseSharingMisses, 1u);
}

// ----------------------------------------------------------------- atomics

TEST(Atomics, RmwIsOneTransaction)
{
    MemFixture f;
    std::uint32_t init = 10;
    f.mem->access(0, MemAccessType::Write, A, &init, 4, 0);
    auto r = f.mem->atomicRmw(
        1, A, 4, [](std::uint64_t v) { return v + 5; }, 0);
    EXPECT_EQ(r.oldValue, 10u);
    std::uint32_t now;
    f.mem->access(0, MemAccessType::Read, A, &now, 4, 0);
    EXPECT_EQ(now, 15u);
    EXPECT_EQ(f.mem->validateCoherence(), "");
}

// ------------------------------------------------------- coherent (kernel)

TEST(CoherentAccess, ReadsSeeModifiedData)
{
    MemFixture f;
    f.write64(2, A, 1234); // dirty in tile 2's L2, memory stale
    std::uint64_t v = 0;
    f.mem->readCoherent(A, &v, 8);
    EXPECT_EQ(v, 1234u);
}

TEST(CoherentAccess, WritesInvalidateStaleCopies)
{
    MemFixture f;
    f.read64(0, A);
    f.read64(1, A);
    std::uint64_t v = 555;
    f.mem->writeCoherent(A, &v, 8);
    EXPECT_EQ(f.mem->l2(0).find(A), nullptr);
    EXPECT_EQ(f.read64(0, A), 555u);
    EXPECT_EQ(f.mem->validateCoherence(), "");
}

// ------------------------------------------------------- property testing

class MsiStress : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(MsiStress, RandomOpsPreserveInvariantsAndData)
{
    // Reference model: a plain byte array. After every batch of random
    // reads/writes (single-threaded, so the reference is exact), every
    // simulated read must match it and all coherence invariants hold.
    Config over;
    over.setInt("perf_model/l2_cache/cache_size", 4096);
    over.setInt("perf_model/l2_cache/associativity", 2);
    MemFixture f(8, over);
    Rng rng(GetParam());
    constexpr addr_t BASE = 0x1000'0000;
    constexpr size_t SPAN = 4096; // 64 lines across 8 homes
    std::vector<std::uint8_t> ref(SPAN, 0);

    for (int step = 0; step < 2000; ++step) {
        auto tile = static_cast<tile_id_t>(rng.nextBounded(8));
        addr_t off = rng.nextBounded(SPAN - 8);
        if (rng.nextBounded(2) == 0) {
            std::uint64_t v = rng.next();
            size_t size = 1ull << rng.nextBounded(4); // 1..8 bytes
            f.mem->access(tile, MemAccessType::Write, BASE + off, &v,
                          size, 0);
            std::memcpy(ref.data() + off, &v, size);
        } else {
            std::uint64_t v = 0, expect = 0;
            size_t size = 1ull << rng.nextBounded(4);
            f.mem->access(tile, MemAccessType::Read, BASE + off, &v,
                          size, 0);
            std::memcpy(&expect, ref.data() + off, size);
            ASSERT_EQ(v, expect) << "step " << step;
        }
        if (step % 500 == 499) {
            ASSERT_EQ(f.mem->validateCoherence(), "")
                << "step " << step;
        }
    }
    EXPECT_EQ(f.mem->validateCoherence(), "");
}

INSTANTIATE_TEST_SUITE_P(Seeds, MsiStress,
                         ::testing::Values(1, 2, 3, 17, 99));

class MsiStressDirectories
    : public ::testing::TestWithParam<const char*>
{
};

TEST_P(MsiStressDirectories, AllSchemesStayFunctionallyCorrect)
{
    // The same stress under each directory scheme: limited directories
    // must stay *functionally* identical (only timing differs).
    Config over;
    over.set("caching_protocol/directory_type", GetParam());
    over.setInt("caching_protocol/max_sharers", 2);
    MemFixture f(8, over);
    Rng rng(7);
    constexpr addr_t BASE = 0x1000'0000;
    constexpr size_t SPAN = 1024;
    std::vector<std::uint8_t> ref(SPAN, 0);

    for (int step = 0; step < 1500; ++step) {
        auto tile = static_cast<tile_id_t>(rng.nextBounded(8));
        addr_t off = rng.nextBounded(SPAN - 8) & ~7ull;
        if (rng.nextBounded(3) == 0) {
            std::uint64_t v = rng.next();
            f.mem->access(tile, MemAccessType::Write, BASE + off, &v, 8,
                          0);
            std::memcpy(ref.data() + off, &v, 8);
        } else {
            std::uint64_t v = 0, expect = 0;
            f.mem->access(tile, MemAccessType::Read, BASE + off, &v, 8,
                          0);
            std::memcpy(&expect, ref.data() + off, 8);
            ASSERT_EQ(v, expect) << "step " << step;
        }
    }
    EXPECT_EQ(f.mem->validateCoherence(), "");
}

INSTANTIATE_TEST_SUITE_P(Schemes, MsiStressDirectories,
                         ::testing::Values("full_map",
                                           "limited_no_broadcast",
                                           "limitless"),
                         [](const auto& info) {
                             std::string s = info.param;
                             return s;
                         });

} // namespace
} // namespace graphite

namespace graphite
{
namespace
{

Config
mesiOverride()
{
    Config over;
    over.set("caching_protocol/type", "dir_mesi");
    return over;
}

TEST(Mesi, FirstReadGrantsExclusive)
{
    MemFixture f(4, mesiOverride());
    f.read64(0, A);
    EXPECT_EQ(f.mem->l2(0).find(A)->state, CacheState::Exclusive);
    tile_id_t home = f.mem->homeTile(A);
    DirectoryEntry* e = f.mem->directory(home).peek(A);
    EXPECT_EQ(e->state(), DirectoryState::Modified);
    EXPECT_EQ(e->owner(), 0);
    EXPECT_EQ(f.mem->validateCoherence(), "");
}

TEST(Mesi, SilentUpgradeSkipsDirectory)
{
    MemFixture f(4, mesiOverride());
    f.read64(0, A);
    AccessResult w = f.write64(0, A, 9);
    // No upgrade transaction: the write hit the Exclusive line.
    EXPECT_EQ(w.missClass, MissClass::None);
    EXPECT_EQ(f.mem->stats(0).l2UpgradeMisses, 0u);
    EXPECT_EQ(f.mem->l2(0).find(A)->state, CacheState::Modified);
    EXPECT_EQ(f.read64(0, A), 9u);
    EXPECT_EQ(f.mem->validateCoherence(), "");
}

TEST(Mesi, MsiStillPaysTheUpgrade)
{
    MemFixture f(4); // default MSI
    f.read64(0, A);
    AccessResult w = f.write64(0, A, 9);
    EXPECT_EQ(w.missClass, MissClass::Upgrade);
    EXPECT_EQ(f.mem->stats(0).l2UpgradeMisses, 1u);
}

TEST(Mesi, SecondReaderDowngradesCleanOwner)
{
    MemFixture f(4, mesiOverride());
    f.read64(0, A);
    EXPECT_EQ(f.read64(1, A), 0u); // recall from the clean owner
    EXPECT_EQ(f.mem->l2(0).find(A)->state, CacheState::Shared);
    EXPECT_EQ(f.mem->l2(1).find(A)->state, CacheState::Shared);
    tile_id_t home = f.mem->homeTile(A);
    EXPECT_EQ(f.mem->directory(home).peek(A)->state(),
              DirectoryState::Shared);
    EXPECT_EQ(f.mem->validateCoherence(), "");
}

TEST(Mesi, WriteRecallsExclusiveOwner)
{
    MemFixture f(4, mesiOverride());
    f.read64(0, A); // tile 0 Exclusive
    f.write64(1, A, 77);
    EXPECT_EQ(f.mem->l2(0).find(A), nullptr);
    EXPECT_EQ(f.read64(0, A), 77u);
    EXPECT_EQ(f.mem->validateCoherence(), "");
}

TEST(Mesi, CleanEvictionLapsesOwnership)
{
    Config over = mesiOverride();
    over.setInt("perf_model/l2_cache/cache_size", 256);
    over.setInt("perf_model/l2_cache/associativity", 2);
    MemFixture f(1, over);
    f.read64(0, A); // Exclusive
    for (int i = 1; i < 16; ++i)
        f.read64(0, A + static_cast<addr_t>(i) * 64); // evict it clean
    tile_id_t home = f.mem->homeTile(A);
    DirectoryEntry* e = f.mem->directory(home).peek(A);
    EXPECT_EQ(e->state(), DirectoryState::Uncached);
    EXPECT_EQ(f.read64(0, A), 0u); // refetch works
    EXPECT_EQ(f.mem->validateCoherence(), "");
}

TEST_P(MsiStress, MesiRandomOpsPreserveInvariantsAndData)
{
    Config over = mesiOverride();
    over.setInt("perf_model/l2_cache/cache_size", 4096);
    over.setInt("perf_model/l2_cache/associativity", 2);
    MemFixture f(8, over);
    Rng rng(GetParam() ^ 0x4D455349ull);
    constexpr addr_t BASE = 0x1000'0000;
    constexpr size_t SPAN = 4096;
    std::vector<std::uint8_t> ref(SPAN, 0);

    for (int step = 0; step < 2000; ++step) {
        auto tile = static_cast<tile_id_t>(rng.nextBounded(8));
        addr_t off = rng.nextBounded(SPAN - 8);
        if (rng.nextBounded(2) == 0) {
            std::uint64_t v = rng.next();
            size_t size = 1ull << rng.nextBounded(4);
            f.mem->access(tile, MemAccessType::Write, BASE + off, &v,
                          size, 0);
            std::memcpy(ref.data() + off, &v, size);
        } else {
            std::uint64_t v = 0, expect = 0;
            size_t size = 1ull << rng.nextBounded(4);
            f.mem->access(tile, MemAccessType::Read, BASE + off, &v,
                          size, 0);
            std::memcpy(&expect, ref.data() + off, size);
            ASSERT_EQ(v, expect) << "step " << step;
        }
        if (step % 500 == 499) {
            ASSERT_EQ(f.mem->validateCoherence(), "")
                << "step " << step;
        }
    }
    EXPECT_EQ(f.mem->validateCoherence(), "");
}

} // namespace
} // namespace graphite
