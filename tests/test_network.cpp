/**
 * @file
 * Unit tests for the network component: packet serialization, global
 * progress, the lax-compatible queue model, mesh geometry, the three
 * network models, and the fabric/endpoint layer.
 */

#include <gtest/gtest.h>

#include "common/config.h"
#include "common/log.h"
#include "network/global_progress.h"
#include "network/network.h"
#include "network/network_model.h"
#include "network/queue_model.h"

namespace graphite
{
namespace
{

// -------------------------------------------------------------- NetPacket

TEST(NetPacket, SerializeRoundTrip)
{
    NetPacket pkt;
    pkt.type = PacketType::Memory;
    pkt.sender = 3;
    pkt.receiver = 7;
    pkt.time = 123456789ull;
    pkt.payload = {1, 2, 3, 4, 5};
    NetPacket back = NetPacket::deserialize(pkt.serialize());
    EXPECT_EQ(back.type, PacketType::Memory);
    EXPECT_EQ(back.sender, 3);
    EXPECT_EQ(back.receiver, 7);
    EXPECT_EQ(back.time, 123456789ull);
    EXPECT_EQ(back.payload, pkt.payload);
}

TEST(NetPacket, EmptyPayloadRoundTrip)
{
    NetPacket pkt;
    pkt.type = PacketType::System;
    NetPacket back = NetPacket::deserialize(pkt.serialize());
    EXPECT_TRUE(back.payload.empty());
    EXPECT_EQ(back.modeledBytes(), NetPacket::HEADER_BYTES);
}

// --------------------------------------------------------- GlobalProgress

TEST(GlobalProgress, AveragesWindow)
{
    GlobalProgress gp(4);
    EXPECT_EQ(gp.estimate(), 0u);
    gp.observe(100);
    gp.observe(200);
    EXPECT_EQ(gp.estimate(), 150u);
    EXPECT_EQ(gp.samples(), 2u);
}

TEST(GlobalProgress, OldSamplesAgeOut)
{
    GlobalProgress gp(2);
    gp.observe(10);
    gp.observe(20);
    gp.observe(30); // evicts 10
    EXPECT_EQ(gp.estimate(), 25u);
    EXPECT_EQ(gp.samples(), 2u);
}

TEST(GlobalProgress, LargeWindowResistsOutliers)
{
    // Paper §3.6.1: "The large window is necessary to eliminate
    // outliers from overly influencing the result."
    GlobalProgress gp(100);
    for (int i = 0; i < 99; ++i)
        gp.observe(1000);
    gp.observe(1000000); // one outlier
    EXPECT_LT(gp.estimate(), 12000u);
}

// -------------------------------------------------------------- QueueModel

TEST(QueueModel, NoDelayWhenIdle)
{
    QueueModel q(nullptr);
    EXPECT_EQ(q.enqueue(100, 10), 0u);
    EXPECT_EQ(q.queueClock(), 110u);
}

TEST(QueueModel, BackToBackPacketsQueue)
{
    // Paper §3.6.1: delay is the difference between the queue clock and
    // the arrival; the queue clock advances by the processing time.
    QueueModel q(nullptr);
    EXPECT_EQ(q.enqueue(100, 10), 0u);
    EXPECT_EQ(q.enqueue(100, 10), 10u);
    EXPECT_EQ(q.enqueue(100, 10), 20u);
    EXPECT_EQ(q.totalQueueDelay(), 30u);
    EXPECT_EQ(q.totalRequests(), 3u);
}

TEST(QueueModel, IdleGapDrainsQueue)
{
    QueueModel q(nullptr);
    q.enqueue(0, 10);
    EXPECT_EQ(q.enqueue(1000, 10), 0u); // long gap: no backlog
}

TEST(QueueModel, OutlierArrivalsClampToProgress)
{
    GlobalProgress gp(4);
    gp.observe(1000000);
    gp.observe(1000000);
    QueueModel q(&gp, /*outlier_window=*/1000);
    // Arrival absurdly in the past is clamped near the estimate.
    q.enqueue(5, 10);
    EXPECT_GE(q.queueClock(), 999000u);
}

TEST(QueueModel, BacklogIsBounded)
{
    // Finite-buffer back-pressure: a dense burst cannot grow the delay
    // without bound (the saturation-spiral guard).
    QueueModel q(nullptr, 100000, /*max_backlog=*/500);
    for (int i = 0; i < 1000; ++i)
        q.enqueue(0, 100);
    EXPECT_LE(q.enqueue(0, 100), 600u);
    EXPECT_GT(q.saturations(), 0u);
}

TEST(QueueModel, EmptyHistoryWindowTrustsArrivals)
{
    // A progress estimator with no samples yet must not clamp: before
    // any thread reports, the raw arrival timestamp is the only truth.
    GlobalProgress gp(4);
    QueueModel q(&gp, /*outlier_window=*/10);
    EXPECT_EQ(q.enqueue(5000000, 10), 0u);
    EXPECT_EQ(q.queueClock(), 5000010u);
    EXPECT_EQ(q.clampedArrivals(), 0u);
}

TEST(QueueModel, CycleWraparoundSaturates)
{
    // Arrivals near the top of the u64 cycle range: the queue clock and
    // the backlog bound must saturate instead of wrapping to small
    // values (which would read as a huge spurious backlog or none).
    const cycle_t NEAR_MAX = ~cycle_t{0} - 50;
    QueueModel q(nullptr, 100000, 10000);
    EXPECT_EQ(q.enqueue(NEAR_MAX, 200), 0u);
    EXPECT_EQ(q.queueClock(), ~cycle_t{0});
    // A later arrival sees a small, sane delay, not wrapped garbage.
    EXPECT_EQ(q.enqueue(NEAR_MAX + 10, 1), 40u);
    EXPECT_EQ(q.queueClock(), ~cycle_t{0});
}

TEST(QueueModel, WraparoundProgressEstimateSaturatesClampWindow)
{
    GlobalProgress gp(2);
    gp.observe(~cycle_t{0} - 5);
    gp.observe(~cycle_t{0} - 5);
    QueueModel q(&gp, /*outlier_window=*/1000);
    // hi = estimate + window saturates; an arrival at the very top is
    // inside the window and must pass through unclamped.
    q.enqueue(~cycle_t{0} - 2, 1);
    EXPECT_EQ(q.clampedArrivals(), 0u);
}

// --------------------------------------------------------------- MeshShape

TEST(MeshShape, NearSquareDimensions)
{
    MeshShape m16(16);
    EXPECT_EQ(m16.width(), 4);
    EXPECT_EQ(m16.height(), 4);
    MeshShape m10(10);
    EXPECT_EQ(m10.width(), 4);
    EXPECT_EQ(m10.height(), 3);
    MeshShape m1(1);
    EXPECT_EQ(m1.width(), 1);
}

TEST(MeshShape, ManhattanHops)
{
    MeshShape m(16); // 4x4
    EXPECT_EQ(m.hops(0, 0), 0);
    EXPECT_EQ(m.hops(0, 3), 3);
    EXPECT_EQ(m.hops(0, 15), 6);
    EXPECT_EQ(m.hops(5, 6), 1);
}

TEST(MeshShape, XYRouteLengthMatchesHops)
{
    MeshShape m(16);
    for (tile_id_t s = 0; s < 16; ++s) {
        for (tile_id_t d = 0; d < 16; ++d) {
            EXPECT_EQ(static_cast<int>(m.route(s, d).size()),
                      m.hops(s, d));
        }
    }
}

// ----------------------------------------------------------- NetworkModels

TEST(NetworkModel, MagicIsFree)
{
    MagicNetworkModel magic;
    EXPECT_EQ(magic.computeLatency(0, 5, 100, 42), 0u);
    EXPECT_EQ(magic.packetsRouted(), 1u);
}

TEST(NetworkModel, HopModelScalesWithDistance)
{
    EMeshHopNetworkModel model(16, /*hop=*/2, /*bw=*/8);
    cycle_t near = model.computeLatency(0, 1, 64, 0);
    cycle_t far = model.computeLatency(0, 15, 64, 0);
    EXPECT_EQ(near, 2u + 8u);  // 1 hop + 64/8 serialization
    EXPECT_EQ(far, 12u + 8u);  // 6 hops
    EXPECT_GT(far, near);
}

TEST(NetworkModel, ContentionAddsUnderLoad)
{
    GlobalProgress gp(64);
    EMeshContentionNetworkModel model(16, 2, 8, &gp);
    // Same route, same time: later packets see queueing delay.
    cycle_t first = model.computeLatency(0, 3, 64, 1000);
    cycle_t burst = first;
    for (int i = 0; i < 20; ++i)
        burst = model.computeLatency(0, 3, 64, 1000);
    EXPECT_GT(burst, first);
    EXPECT_GT(model.totalContentionDelay(), 0u);
}

TEST(NetworkModel, FactoryRejectsUnknownType)
{
    Config cfg;
    EXPECT_THROW(NetworkModel::create("bogus", 4, cfg, nullptr),
                 FatalError);
}

// ------------------------------------------------------- Fabric + Network

TEST(NetworkFabric, SelectsModelsPerPacketType)
{
    Config cfg = defaultTargetConfig();
    ClusterTopology topo(16, 2);
    NetworkFabric fabric(topo, cfg);
    EXPECT_EQ(fabric.modelFor(PacketType::System).name(), "magic");
    EXPECT_EQ(fabric.modelFor(PacketType::Memory).name(),
              "emesh_contention");
    EXPECT_EQ(fabric.modelFor(PacketType::App).name(),
              "emesh_contention");
}

TEST(NetworkFabric, AccountsLocalityAndMatrix)
{
    Config cfg = defaultTargetConfig();
    ClusterTopology topo(4, 2);
    NetworkFabric fabric(topo, cfg);
    fabric.model(PacketType::Memory, 0, 2, 80, 10); // same proc
    fabric.model(PacketType::Memory, 0, 1, 80, 10); // cross proc
    EXPECT_EQ(fabric.intraProcessMessages(PacketType::Memory), 1u);
    EXPECT_EQ(fabric.interProcessMessages(PacketType::Memory), 1u);
    EXPECT_EQ(fabric.pairMessages(0, 2), 1u);
    EXPECT_EQ(fabric.pairBytes(0, 1), 80u);
    EXPECT_EQ(fabric.pairMessages(1, 0), 0u);
}

TEST(Network, SendRecvAcrossEndpoints)
{
    Config cfg = defaultTargetConfig();
    ClusterTopology topo(4, 1);
    InProcessTransport transport(topo);
    NetworkFabric fabric(topo, cfg);
    Network n0(0, fabric, transport);
    Network n1(1, fabric, transport);

    n0.send(PacketType::App, 1, {7, 8}, /*send_time=*/100);
    NetPacket pkt = n1.recv(PacketType::App);
    EXPECT_EQ(pkt.sender, 0);
    EXPECT_EQ(pkt.payload.size(), 2u);
    // Arrival time = send time + modeled latency (> 0 on a mesh).
    EXPECT_GT(pkt.time, 100u);
}

TEST(Network, DemultiplexesByType)
{
    Config cfg = defaultTargetConfig();
    ClusterTopology topo(2, 1);
    InProcessTransport transport(topo);
    NetworkFabric fabric(topo, cfg);
    Network n0(0, fabric, transport);
    Network n1(1, fabric, transport);

    n0.send(PacketType::System, 1, {1}, 0);
    n0.send(PacketType::App, 1, {2}, 0);
    // Requesting App first must stash the System packet, not drop it.
    NetPacket app = n1.recv(PacketType::App);
    EXPECT_EQ(app.payload[0], 2);
    NetPacket sys;
    EXPECT_TRUE(n1.tryRecv(PacketType::System, sys));
    EXPECT_EQ(sys.payload[0], 1);
}

} // namespace
} // namespace graphite
