/**
 * @file
 * Tests for the live telemetry plane: the flight-recorder ring, the
 * Prometheus/JSON renderers, the HTTP server, the progress watchdog's
 * verdict machine, and — fork-isolated — the two terminal paths: a
 * planted two-thread deadlock caught by the watchdog (exit 86) and a
 * crash dump written from the signal handler.
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/config.h"
#include "core/api.h"
#include "core/simulator.h"
#include "obs/telemetry/flight_recorder.h"
#include "obs/telemetry/server.h"
#include "obs/telemetry/status.h"
#include "obs/telemetry/watchdog.h"

namespace graphite
{
namespace
{

using obs::telemetry::FlightRecorder;
using obs::telemetry::FrEvent;
using obs::telemetry::ProgressWatchdog;
using obs::telemetry::StatusSource;
using obs::telemetry::TelemetryServer;
using obs::telemetry::TileStatus;
using obs::telemetry::WaitSetSnapshot;
using obs::telemetry::WatchdogAction;
using obs::telemetry::WatchdogConfig;
using obs::telemetry::WatchdogView;

std::string
tempPath(const char* tag)
{
    return "/tmp/graphite_telemetry_test_" + std::string(tag) + "_" +
           std::to_string(::getpid());
}

std::string
slurp(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

int
countOccurrences(const std::string& hay, const std::string& needle)
{
    int n = 0;
    for (std::size_t at = hay.find(needle); at != std::string::npos;
         at = hay.find(needle, at + needle.size()))
        ++n;
    return n;
}

// ------------------------------------------------------ flight recorder

TEST(FlightRecorder, RecordsAndDumpsInOrder)
{
    FlightRecorder& fr = FlightRecorder::instance();
    fr.configure(64);
    fr.setArmed(true);
    FlightRecorder::record(FrEvent::Custom, 3, 100, 0xaa, 0xbb);
    FlightRecorder::record(FrEvent::FutexWait, 1, 200, 0x1000, 7);
    FlightRecorder::record(FrEvent::MissPath, 2, 300, 0x2000, 1);
    fr.setArmed(false);

    EXPECT_EQ(fr.recorded(), 3u);
    std::string d = fr.dump();
    EXPECT_NE(d.find("3 events recorded"), std::string::npos);
    std::size_t p_custom = d.find("custom tile=3 cycle=100");
    std::size_t p_futex = d.find("futex_wait tile=1 cycle=200");
    std::size_t p_miss = d.find("miss_path tile=2 cycle=300");
    ASSERT_NE(p_custom, std::string::npos);
    ASSERT_NE(p_futex, std::string::npos);
    ASSERT_NE(p_miss, std::string::npos);
    EXPECT_LT(p_custom, p_futex); // oldest first
    EXPECT_LT(p_futex, p_miss);
    EXPECT_NE(d.find("a=0x1000"), std::string::npos);
}

TEST(FlightRecorder, RingWrapKeepsNewest)
{
    FlightRecorder& fr = FlightRecorder::instance();
    fr.configure(16);
    EXPECT_EQ(fr.capacity(), 16u);
    fr.setArmed(true);
    for (int i = 0; i < 40; ++i)
        FlightRecorder::record(FrEvent::Custom, 0,
                               static_cast<cycle_t>(i));
    fr.setArmed(false);

    EXPECT_EQ(fr.recorded(), 40u);
    std::string d = fr.dump();
    // Only the last 16 events survive: cycles 24..39.
    EXPECT_EQ(countOccurrences(d, "\ncustom") +
                  countOccurrences(d, " custom"),
              16);
    EXPECT_EQ(d.find("cycle=23 "), std::string::npos);
    EXPECT_NE(d.find("cycle=24 "), std::string::npos);
    EXPECT_NE(d.find("cycle=39 "), std::string::npos);
}

TEST(FlightRecorder, DisarmedRecordIsNoOp)
{
    FlightRecorder& fr = FlightRecorder::instance();
    fr.configure(16);
    fr.setArmed(false);
    EXPECT_FALSE(FlightRecorder::armed());
    FlightRecorder::record(FrEvent::Custom, 0, 1);
    EXPECT_EQ(fr.recorded(), 0u);
}

TEST(FlightRecorder, CapacityRoundsUpToPowerOfTwo)
{
    FlightRecorder& fr = FlightRecorder::instance();
    fr.configure(20);
    EXPECT_EQ(fr.capacity(), 32u);
    fr.configure(1);
    EXPECT_EQ(fr.capacity(), 16u); // floor
}

TEST(FlightRecorder, DumpMaxEventsKeepsNewest)
{
    FlightRecorder& fr = FlightRecorder::instance();
    fr.configure(64);
    fr.setArmed(true);
    for (int i = 0; i < 10; ++i)
        FlightRecorder::record(FrEvent::Custom, 0,
                               static_cast<cycle_t>(i));
    fr.setArmed(false);
    std::string d = fr.dump(/*max_events=*/3);
    EXPECT_EQ(d.find("cycle=6 "), std::string::npos);
    EXPECT_NE(d.find("cycle=7 "), std::string::npos);
    EXPECT_NE(d.find("cycle=9 "), std::string::npos);
}

TEST(FlightRecorder, DumpToFdMatchesStringDump)
{
    FlightRecorder& fr = FlightRecorder::instance();
    fr.configure(16);
    fr.setArmed(true);
    FlightRecorder::record(FrEvent::Writeback, 5, 777, 0xdead, 2);
    fr.setArmed(false);

    std::string path = tempPath("fddump");
    FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fr.dumpToFd(::fileno(f));
    std::fclose(f);
    std::string d = slurp(path);
    std::remove(path.c_str());
    EXPECT_NE(d.find("flight recorder"), std::string::npos);
    EXPECT_NE(d.find("writeback tile=5 cycle=777"), std::string::npos);
    EXPECT_NE(d.find("a=0xdead"), std::string::npos);
}

TEST(FlightRecorder, ConcurrentWritersLoseNoArmedEvents)
{
    FlightRecorder& fr = FlightRecorder::instance();
    fr.configure(1 << 12);
    fr.setArmed(true);
    constexpr int THREADS = 4, PER = 2000;
    std::vector<std::thread> ts;
    for (int t = 0; t < THREADS; ++t)
        ts.emplace_back([t] {
            for (int i = 0; i < PER; ++i)
                FlightRecorder::record(FrEvent::Custom, t,
                                       static_cast<cycle_t>(i));
        });
    for (auto& th : ts)
        th.join();
    fr.setArmed(false);
    EXPECT_EQ(fr.recorded(), static_cast<std::uint64_t>(THREADS * PER));
    // Ring holds 4096 slots; all survive a quiescent dump (no torn
    // slots once writers are done).
    std::string d = fr.dump();
    EXPECT_EQ(countOccurrences(d, "custom"), 1 << 12);
}

// ------------------------------------------------------------ renderers

TEST(Renderers, PrometheusNameSanitizes)
{
    using obs::telemetry::prometheusName;
    EXPECT_EQ(prometheusName("sim.cycles_max"),
              "graphite_sim_cycles_max");
    EXPECT_EQ(prometheusName("tile.3.l2.misses"),
              "graphite_tile_3_l2_misses");
    EXPECT_EQ(prometheusName("weird-name+x"), "graphite_weird_name_x");
}

TEST(Renderers, PrometheusExposesStatsAndHistograms)
{
    StatsRegistry reg;
    stat_t counter = 42;
    reg.registerCounter("unit.counter", &counter);
    reg.registerGauge("unit.gauge", [] { return stat_t{7}; });
    HistogramStat lat;
    lat.record(1);  // bucket 1 (le 1)
    lat.record(6);  // bucket 3 (le 7)
    lat.record(6);
    reg.registerHistogram("unit.lat", &lat);

    std::string text = obs::telemetry::renderPrometheus(reg);
    EXPECT_NE(text.find("# TYPE graphite_unit_counter gauge\n"
                        "graphite_unit_counter 42\n"),
              std::string::npos);
    EXPECT_NE(text.find("graphite_unit_gauge 7\n"), std::string::npos);
    EXPECT_NE(text.find("# TYPE graphite_unit_lat histogram"),
              std::string::npos);
    EXPECT_NE(text.find("graphite_unit_lat_bucket{le=\"1\"} 1\n"),
              std::string::npos);
    // Cumulative: the le=7 bucket includes the le=1 sample.
    EXPECT_NE(text.find("graphite_unit_lat_bucket{le=\"7\"} 3\n"),
              std::string::npos);
    EXPECT_NE(text.find("graphite_unit_lat_bucket{le=\"+Inf\"} 3\n"),
              std::string::npos);
    EXPECT_NE(text.find("graphite_unit_lat_sum 13\n"),
              std::string::npos);
    // The ".count"/".sum" scalar projections must NOT appear as a
    // second series next to the histogram family.
    EXPECT_EQ(countOccurrences(text, "\ngraphite_unit_lat_count "), 1);
    EXPECT_EQ(countOccurrences(text, "\ngraphite_unit_lat_sum "), 1);
    EXPECT_NE(text.find("graphite_host_rss_kb"), std::string::npos);
}

StatusSource
syntheticSource(std::vector<TileStatus>* tiles, WaitSetSnapshot* ws)
{
    StatusSource src;
    src.tiles = [tiles] { return *tiles; };
    src.simulatedTime = [tiles] {
        cycle_t m = 0;
        for (const TileStatus& t : *tiles)
            m = std::max(m, t.cycles);
        return m;
    };
    if (ws != nullptr)
        src.waitSets = [ws] { return *ws; };
    src.syncModelName = "lax";
    src.syncEvents = [] { return stat_t{11}; };
    src.syncWaitUs = [] { return stat_t{22}; };
    src.transportQueueDepth = [] { return stat_t{1}; };
    src.inflightPackets = [] { return stat_t{2}; };
    return src;
}

TEST(Renderers, StatusJsonNamesTilesAndWaiters)
{
    std::vector<TileStatus> tiles = {
        {0, 1000, 500, true, true},
        {1, 900, 0, true, false},
        {2, 0, 0, false, false},
    };
    WaitSetSnapshot ws;
    ws.busyTiles = 2;
    ws.futexes.push_back({0xbeef, {1}});
    ws.joins.push_back({1, {0}});
    StatusSource src = syntheticSource(&tiles, &ws);

    WatchdogView wd;
    wd.enabled = true;
    wd.verdict = "stall";
    wd.beats = 9;
    std::string json = obs::telemetry::renderStatusJson(src, &wd);
    EXPECT_NE(json.find("\"simulated_cycles\":1000"),
              std::string::npos);
    EXPECT_NE(json.find("\"sync_model\":\"lax\""), std::string::npos);
    EXPECT_NE(json.find("\"tile\":0,\"cycles\":1000,"
                        "\"instructions\":500,\"ipc\":0.5,"
                        "\"occupied\":true,\"running\":true"),
              std::string::npos);
    EXPECT_NE(json.find("\"addr\":\"0xbeef\",\"waiters\":[1]"),
              std::string::npos);
    EXPECT_NE(json.find("\"target\":1,\"waiters\":[0]"),
              std::string::npos);
    EXPECT_NE(json.find("\"verdict\":\"stall\""), std::string::npos);

    std::string health = obs::telemetry::renderHealthJson(src, &wd);
    EXPECT_NE(health.find("\"status\":\"unhealthy\""),
              std::string::npos);
    wd.verdict = "ok";
    health = obs::telemetry::renderHealthJson(src, &wd);
    EXPECT_NE(health.find("\"status\":\"ok\""), std::string::npos);
}

// ---------------------------------------------------------- HTTP server

struct HttpResponse
{
    int status = 0;
    std::string body;
    std::string raw;
};

HttpResponse
httpGet(std::uint16_t port, const std::string& target,
        const char* method = "GET")
{
    HttpResponse out;
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return out;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return out;
    }
    std::string req = std::string(method) + " " + target +
                      " HTTP/1.1\r\nHost: localhost\r\n"
                      "Connection: close\r\n\r\n";
    ssize_t sent = ::send(fd, req.data(), req.size(), 0);
    if (sent == static_cast<ssize_t>(req.size())) {
        char buf[4096];
        ssize_t r;
        while ((r = ::read(fd, buf, sizeof(buf))) > 0)
            out.raw.append(buf, static_cast<std::size_t>(r));
    }
    ::close(fd);
    std::sscanf(out.raw.c_str(), "HTTP/1.1 %d", &out.status);
    std::size_t split = out.raw.find("\r\n\r\n");
    if (split != std::string::npos)
        out.body = out.raw.substr(split + 4);
    return out;
}

TEST(TelemetryServer, ServesMetricsStatusAndHealth)
{
    StatsRegistry reg;
    stat_t counter = 5;
    reg.registerCounter("unit.counter", &counter);
    std::vector<TileStatus> tiles = {{0, 10, 5, true, true},
                                     {1, 20, 8, true, true}};
    StatusSource src = syntheticSource(&tiles, nullptr);
    src.stats = &reg;

    TelemetryServer server;
    ASSERT_TRUE(server.start(0, src, [] {
        WatchdogView v;
        v.enabled = true;
        return v;
    }));
    ASSERT_NE(server.port(), 0);

    HttpResponse metrics = httpGet(server.port(), "/metrics");
    EXPECT_EQ(metrics.status, 200);
    EXPECT_NE(metrics.body.find("graphite_unit_counter 5"),
              std::string::npos);

    HttpResponse status = httpGet(server.port(), "/status");
    EXPECT_EQ(status.status, 200);
    EXPECT_NE(status.body.find("\"simulated_cycles\":20"),
              std::string::npos);
    EXPECT_NE(status.body.find("\"watchdog\":{\"enabled\":true"),
              std::string::npos);

    HttpResponse health = httpGet(server.port(), "/healthz");
    EXPECT_EQ(health.status, 200);
    EXPECT_NE(health.body.find("\"status\":\"ok\""), std::string::npos);

    EXPECT_EQ(httpGet(server.port(), "/nope").status, 404);
    EXPECT_EQ(httpGet(server.port(), "/metrics", "POST").status, 405);

    EXPECT_GE(server.requestsServed().load(), 5u);
    EXPECT_GT(server.bytesServed().load(), 0u);
    server.stop();
    EXPECT_FALSE(server.running());
}

TEST(TelemetryServer, StopIsIdempotentAndPortZeroAfterStop)
{
    std::vector<TileStatus> tiles;
    TelemetryServer server;
    ASSERT_TRUE(server.start(0, syntheticSource(&tiles, nullptr)));
    std::uint16_t port = server.port();
    EXPECT_NE(port, 0);
    server.stop();
    server.stop();
    EXPECT_EQ(server.port(), 0);
    // A fresh scrape against the dead port must fail to connect.
    EXPECT_EQ(httpGet(port, "/healthz").status, 0);
}

// ------------------------------------------------------------- watchdog

struct ScriptedSource
{
    std::vector<TileStatus> tiles;
    WaitSetSnapshot ws;

    StatusSource
    source()
    {
        StatusSource src = syntheticSource(&tiles, &ws);
        return src;
    }
};

/**
 * Arm @p wd for synchronous beatOnce() driving: start() installs the
 * config/source, stop() parks the timer thread before it can fire (the
 * huge interval makes the first wakeup unreachable), leaving the
 * verdict machine in its freshly-reset state.
 */
void
armSynchronous(ProgressWatchdog& wd, WatchdogConfig cfg,
               StatusSource src)
{
    cfg.intervalMs = 3600 * 1000;
    wd.start(std::move(cfg), std::move(src));
    wd.stop();
}

TEST(Watchdog, AdvancingTilesStayOk)
{
    ScriptedSource s;
    s.tiles = {{0, 100, 50, true, true}};
    ProgressWatchdog wd;
    WatchdogConfig cfg;
    cfg.stallBeats = 2;
    cfg.action = WatchdogAction::Flag;
    armSynchronous(wd, cfg, s.source());

    EXPECT_STREQ(wd.beatOnce(), "ok"); // baseline
    for (int i = 0; i < 6; ++i) {
        s.tiles[0].cycles += 10;
        EXPECT_STREQ(wd.beatOnce(), "ok");
    }
    EXPECT_EQ(wd.view().stallFlags, 0u);
}

TEST(Watchdog, AllParkedNoProgressIsDeadlock)
{
    ScriptedSource s;
    s.tiles = {{0, 100, 50, true, false}, {1, 90, 40, true, false}};
    s.ws.futexes.push_back({0x40, {0, 1}});
    ProgressWatchdog wd;
    WatchdogConfig cfg;
    cfg.stallBeats = 3;
    cfg.action = WatchdogAction::Flag;
    armSynchronous(wd, cfg, s.source());

    wd.beatOnce(); // baseline
    EXPECT_STREQ(wd.beatOnce(), "ok"); // noProgress=1
    EXPECT_STREQ(wd.beatOnce(), "ok"); // noProgress=2
    EXPECT_STREQ(wd.beatOnce(), "deadlock"); // noProgress=3 >= 3
    WatchdogView v = wd.view();
    EXPECT_STREQ(v.verdict, "deadlock");
    EXPECT_EQ(v.stallFlags, 1u);

    // Dump text names the futex and its waiting tiles.
    std::string dump = wd.renderDump();
    EXPECT_NE(dump.find("verdict: deadlock"), std::string::npos);
    EXPECT_NE(dump.find("futex 0x40 waiters: tile 0 tile 1"),
              std::string::npos);

    // Recovery: progress resumes, verdict returns to ok.
    s.tiles[0].cycles += 100;
    s.tiles[0].running = true;
    EXPECT_STREQ(wd.beatOnce(), "ok");
}

TEST(Watchdog, RunningNoProgressIsLivelock)
{
    ScriptedSource s;
    s.tiles = {{0, 100, 50, true, true}, {1, 90, 40, true, false}};
    ProgressWatchdog wd;
    WatchdogConfig cfg;
    cfg.stallBeats = 2;
    cfg.action = WatchdogAction::Flag;
    armSynchronous(wd, cfg, s.source());

    wd.beatOnce(); // baseline
    wd.beatOnce();
    EXPECT_STREQ(wd.beatOnce(), "livelock");
    EXPECT_EQ(wd.view().stallFlags, 1u);
}

TEST(Watchdog, OneStaleTileAmongAdvancersIsStall)
{
    ScriptedSource s;
    s.tiles = {{0, 100, 50, true, true}, {1, 90, 40, true, true}};
    ProgressWatchdog wd;
    WatchdogConfig cfg;
    cfg.stallBeats = 2;
    cfg.action = WatchdogAction::Flag;
    armSynchronous(wd, cfg, s.source());

    wd.beatOnce(); // baseline
    const char* verdict = "ok";
    for (int i = 0; i < 3; ++i) {
        s.tiles[0].cycles += 10; // tile 0 advances, tile 1 wedged
        verdict = wd.beatOnce();
    }
    EXPECT_STREQ(verdict, "stall");
}

TEST(Watchdog, UnoccupiedTilesNeverJudged)
{
    ScriptedSource s;
    s.tiles = {{0, 0, 0, false, false}, {1, 0, 0, false, false}};
    ProgressWatchdog wd;
    WatchdogConfig cfg;
    cfg.stallBeats = 1;
    cfg.action = WatchdogAction::Flag;
    armSynchronous(wd, cfg, s.source());
    for (int i = 0; i < 5; ++i)
        EXPECT_STREQ(wd.beatOnce(), "ok");
    EXPECT_EQ(wd.view().stallFlags, 0u);
}

TEST(Watchdog, DumpActionWritesDiagnosticFile)
{
    std::string path = tempPath("wddump");
    ScriptedSource s;
    s.tiles = {{0, 100, 50, true, false}};
    s.ws.futexes.push_back({0x99, {0}});
    ProgressWatchdog wd;
    WatchdogConfig cfg;
    cfg.stallBeats = 1;
    cfg.dumpBeats = 2;
    cfg.action = WatchdogAction::Dump;
    cfg.dumpPath = path;
    armSynchronous(wd, cfg, s.source());

    wd.beatOnce();                       // baseline
    EXPECT_STREQ(wd.beatOnce(), "deadlock"); // transition (flag)
    wd.beatOnce();                       // in-verdict beat 1
    wd.beatOnce();                       // in-verdict beat 2 -> dump
    EXPECT_EQ(wd.view().dumps, 1u);
    wd.beatOnce(); // still deadlocked: no second dump
    EXPECT_EQ(wd.view().dumps, 1u);

    std::string dump = slurp(path);
    std::remove(path.c_str());
    EXPECT_NE(dump.find("watchdog diagnostic dump"), std::string::npos);
    EXPECT_NE(dump.find("futex 0x99 waiters: tile 0"),
              std::string::npos);
    EXPECT_NE(dump.find("\"verdict\":\"deadlock\""), std::string::npos);
}

// --------------------------------------------- integration: wait sets

struct WaitSetProbe
{
    addr_t gate = 0;
    WaitSetSnapshot seen;
    bool observed = false;
};

void
parkedWorker(void* p)
{
    auto* probe = static_cast<WaitSetProbe*>(p);
    while (api::read<std::uint32_t>(probe->gate) == 0)
        api::futexWait(probe->gate, 0);
}

void
waitSetMain(void* p)
{
    auto* probe = static_cast<WaitSetProbe*>(p);
    probe->gate = api::malloc(4);
    api::write<std::uint32_t>(probe->gate, 0);
    tile_id_t t1 = api::threadSpawn(&parkedWorker, p);
    tile_id_t t2 = api::threadSpawn(&parkedWorker, p);

    // Host-side poll: the snapshot is taken from this (application)
    // thread exactly the way the telemetry server's thread would.
    // Each iteration burns a full quantum so the quantum check can
    // hand the execution slot to the workers — with one host thread
    // (hardware_concurrency == 1) a sim thread that only polls
    // host-side would otherwise monopolize the slot and starve the
    // workers before they ever reach futexWait. Wall-clock deadline,
    // not an iteration cap, so a loaded host cannot exhaust it.
    ThreadManager& tm = Simulator::current()->threadManager();
    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (!probe->observed &&
           std::chrono::steady_clock::now() < deadline) {
        api::exec(InstrClass::IntAlu, 20000); // >= host/quantum_cycles
        WaitSetSnapshot ws = tm.waitSets();
        for (const auto& q : ws.futexes) {
            if (q.addr == probe->gate && q.waiters.size() == 2) {
                probe->seen = ws;
                probe->observed = true;
            }
        }
        if (!probe->observed)
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }

    api::write<std::uint32_t>(probe->gate, 1);
    api::futexWake(probe->gate, 8);
    api::threadJoin(t1);
    api::threadJoin(t2);
    api::free(probe->gate);
}

TEST(Integration, WaitSetSnapshotNamesParkedTiles)
{
    Config cfg = defaultTargetConfig();
    cfg.setInt("general/total_tiles", 4);
    Simulator sim(cfg);
    WaitSetProbe probe;
    sim.run(&waitSetMain, &probe);
    ASSERT_TRUE(probe.observed);
    ASSERT_EQ(probe.seen.futexes.size(), 1u);
    EXPECT_EQ(probe.seen.futexes[0].addr, probe.gate);
    std::vector<tile_id_t> waiters = probe.seen.futexes[0].waiters;
    std::sort(waiters.begin(), waiters.end());
    EXPECT_EQ(waiters, (std::vector<tile_id_t>{1, 2}));
    EXPECT_EQ(probe.seen.busyTiles, 3); // main + two workers
}

void
busyMain(void*)
{
    for (int i = 0; i < 20; ++i)
        api::exec(InstrClass::IntAlu, 100);
}

TEST(Integration, ServerScrapeAgreesWithSimulatorState)
{
    Config cfg = defaultTargetConfig();
    cfg.setInt("general/total_tiles", 4);
    cfg.setInt("telemetry/http_port", 0); // ephemeral
    Simulator sim(cfg);
    sim.run(&busyMain, nullptr);

    // run() returned; the server keeps serving final values.
    ASSERT_TRUE(sim.telemetryServer().running());
    std::uint16_t port = sim.telemetryServer().port();
    ASSERT_NE(port, 0);

    HttpResponse status = httpGet(port, "/status");
    ASSERT_EQ(status.status, 200);
    std::string cycles_key =
        "\"simulated_cycles\":" + std::to_string(sim.simulatedTime());
    EXPECT_NE(status.body.find(cycles_key), std::string::npos)
        << status.body;

    HttpResponse metrics = httpGet(port, "/metrics");
    ASSERT_EQ(metrics.status, 200);
    std::string cycles_series =
        "graphite_sim_cycles_max " +
        std::to_string(sim.simulatedTime()) + "\n";
    EXPECT_NE(metrics.body.find(cycles_series), std::string::npos);
    std::string instr_series =
        "graphite_sim_instructions_total " +
        std::to_string(sim.totalInstructions()) + "\n";
    EXPECT_NE(metrics.body.find(instr_series), std::string::npos);
    // The memory-latency histogram exports as a real histogram family.
    EXPECT_NE(metrics.body.find(
                  "# TYPE graphite_mem_access_latency histogram"),
              std::string::npos);
    EXPECT_EQ(
        countOccurrences(metrics.body,
                         "\ngraphite_mem_access_latency_count "),
        1);
}

// --------------------------------------- fork-isolated terminal paths

/// Reap @p pid with a deadline; returns the wait status (or -1).
int
reapWithTimeout(pid_t pid, int timeout_sec)
{
    int status = -1;
    const long poll_us = 20000;
    long waited = 0;
    const long limit = static_cast<long>(timeout_sec) * 1000000;
    for (;;) {
        pid_t r = ::waitpid(pid, &status, WNOHANG);
        if (r == pid)
            return status;
        if (waited >= limit) {
            ::kill(pid, SIGKILL);
            ::waitpid(pid, &status, 0);
            return status;
        }
        ::usleep(poll_us);
        waited += poll_us;
    }
}

struct DeadlockProbe
{
    addr_t m1 = 0;
    addr_t m2 = 0;
    addr_t gate = 0;
};

void
deadlockWorker(void* p)
{
    auto* d = static_cast<DeadlockProbe*>(p);
    api::mutexLock(d->m2);
    api::write<std::uint32_t>(d->gate, 1);
    api::futexWake(d->gate, 1);
    api::mutexLock(d->m1); // held by main: blocks forever
}

void
deadlockMain(void* p)
{
    auto* d = static_cast<DeadlockProbe*>(p);
    d->m1 = api::malloc(api::MUTEX_BYTES);
    d->m2 = api::malloc(api::MUTEX_BYTES);
    d->gate = api::malloc(4);
    api::mutexInit(d->m1);
    api::mutexInit(d->m2);
    api::write<std::uint32_t>(d->gate, 0);
    api::mutexLock(d->m1);
    api::threadSpawn(&deadlockWorker, p);
    while (api::read<std::uint32_t>(d->gate) == 0)
        api::futexWait(d->gate, 0);
    api::mutexLock(d->m2); // held by worker: classic AB/BA deadlock
}

TEST(ForkIsolated, WatchdogAbortsPlantedDeadlockWithDump)
{
    std::string dump_path = tempPath("deadlock");
    pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        // Child: fast watchdog, abort action. run() never returns.
        Config cfg = defaultTargetConfig();
        cfg.setInt("general/total_tiles", 4);
        cfg.setInt("telemetry/watchdog_interval_ms", 25);
        cfg.setInt("telemetry/watchdog_stall_beats", 4);
        cfg.setInt("telemetry/watchdog_dump_beats", 2);
        cfg.set("telemetry/watchdog_action", "abort");
        cfg.set("telemetry/watchdog_dump", dump_path);
        try {
            Simulator sim(cfg);
            DeadlockProbe probe;
            sim.run(&deadlockMain, &probe);
        } catch (...) {
        }
        std::_Exit(0); // deadlock did not hold: report clean exit
    }

    int status = reapWithTimeout(pid, 60);
    ASSERT_TRUE(WIFEXITED(status))
        << "child did not exit cleanly (killed after hang?)";
    EXPECT_EQ(WEXITSTATUS(status),
              obs::telemetry::WATCHDOG_ABORT_EXIT);

    std::string dump = slurp(dump_path);
    std::remove(dump_path.c_str());
    ASSERT_FALSE(dump.empty());
    EXPECT_NE(dump.find("verdict: deadlock"), std::string::npos);
    // The dump names the waiting tiles and the futex words (the mutex
    // internals) they are parked on.
    EXPECT_NE(dump.find("futex 0x"), std::string::npos);
    EXPECT_NE(dump.find("waiters: tile"), std::string::npos);
    EXPECT_NE(dump.find("blocked"), std::string::npos);
    EXPECT_NE(dump.find("flight recorder"), std::string::npos);
}

TEST(ForkIsolated, CrashHandlerDumpsFlightRecorder)
{
    std::string dump_path = tempPath("crash");
    pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        FlightRecorder& fr = FlightRecorder::instance();
        fr.configure(64);
        fr.setArmed(true);
        FlightRecorder::record(FrEvent::MsgSend, 1, 123, 2, 64);
        FlightRecorder::record(FrEvent::Custom, 0, 456);
        fr.installCrashHandler(dump_path);
        ::raise(SIGSEGV);
        std::_Exit(0); // unreachable
    }

    int status = reapWithTimeout(pid, 30);
    ASSERT_TRUE(WIFSIGNALED(status));
    EXPECT_EQ(WTERMSIG(status), SIGSEGV);

    std::string dump = slurp(dump_path);
    std::remove(dump_path.c_str());
    ASSERT_FALSE(dump.empty());
    EXPECT_NE(dump.find("graphite crash dump"), std::string::npos);
    EXPECT_NE(dump.find("msg_send tile=1 cycle=123"),
              std::string::npos);
    EXPECT_NE(dump.find("custom tile=0 cycle=456"), std::string::npos);
}

TEST(ForkIsolated, UninstalledHandlerLeavesDefaultDisposition)
{
    std::string dump_path = tempPath("uninstall");
    pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        FlightRecorder& fr = FlightRecorder::instance();
        fr.configure(16);
        fr.installCrashHandler(dump_path);
        fr.uninstallCrashHandler();
        ::raise(SIGSEGV);
        std::_Exit(0);
    }
    int status = reapWithTimeout(pid, 30);
    ASSERT_TRUE(WIFSIGNALED(status));
    EXPECT_EQ(WTERMSIG(status), SIGSEGV);
    // No handler ran: no dump file.
    EXPECT_TRUE(slurp(dump_path).empty());
    std::remove(dump_path.c_str());
}

} // namespace
} // namespace graphite
