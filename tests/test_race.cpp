/**
 * @file
 * Tests for the happens-before race detector (src/race).
 *
 * Unit tests drive the Detector directly with synthetic access/sync
 * streams; integration tests run full simulations with planted races
 * (must be flagged) and race-free programs built on every sync
 * primitive (must stay silent) across all three sync models. The fuzz
 * programs double as a false-positive corpus: armed runs must report
 * nothing and leave the differential fingerprint untouched.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "check/fuzz_program.h"
#include "check/fuzz_runner.h"
#include "common/config.h"
#include "core/api.h"
#include "core/simulator.h"
#include "race/detector.h"
#include "workloads/registry.h"

namespace graphite
{
namespace
{

race::Detector&
det()
{
    return race::Detector::instance();
}

/** Arm the global detector directly for unit tests. */
void
resetDetector(int tiles = 4, const std::string& granularity = "adaptive",
              int max_shadow_lines = 1 << 20)
{
    Config cfg = defaultTargetConfig();
    cfg.setBool("race/enabled", true);
    cfg.set("race/granularity", granularity);
    cfg.setInt("race/max_shadow_lines", max_shadow_lines);
    det().configure(cfg, tiles);
}

// ------------------------------------------------------------- unit: epochs

TEST(RaceEpoch, PackingRoundTrips)
{
    race::epoch_t e = race::makeEpoch(13, 0x123456789aull);
    EXPECT_EQ(race::epochTile(e), 13);
    EXPECT_EQ(race::epochClock(e), 0x123456789aull);
    EXPECT_EQ(race::EPOCH_NONE, race::makeEpoch(0, 0));
}

// ---------------------------------------------------- unit: core detection

TEST(RaceDetector, UnorderedWritesAreFlagged)
{
    resetDetector();
    det().onAccess(0, 0x1000, 4, true, 10);
    det().onAccess(1, 0x1000, 4, true, 20);
    ASSERT_EQ(det().records().size(), 1u);
    race::RaceRecord r = det().records()[0];
    EXPECT_EQ(r.kind, race::RaceKind::WriteWrite);
    EXPECT_EQ(r.addr, 0x1000u);
    EXPECT_NE(det().describe(r).find("write-write"), std::string::npos);
}

TEST(RaceDetector, WriteThenUnorderedReadIsFlagged)
{
    resetDetector();
    det().onAccess(0, 0x2000, 4, true, 10);
    det().onAccess(1, 0x2000, 4, false, 20);
    ASSERT_EQ(det().records().size(), 1u);
    EXPECT_EQ(det().records()[0].kind, race::RaceKind::WriteRead);
}

TEST(RaceDetector, PromotedReadersThenWriteIsFlagged)
{
    resetDetector();
    // Two unordered readers force read-VC promotion; a third thread's
    // write must still see both and race.
    det().onAccess(0, 0x3000, 4, false, 10);
    det().onAccess(1, 0x3000, 4, false, 20);
    det().onAccess(2, 0x3000, 4, true, 30);
    ASSERT_GE(det().records().size(), 1u);
    EXPECT_EQ(det().records()[0].kind, race::RaceKind::ReadWrite);
}

TEST(RaceDetector, SameThreadNeverRaces)
{
    resetDetector();
    for (int i = 0; i < 8; ++i) {
        det().onAccess(0, 0x4000, 4, (i & 1) != 0, i);
        det().onAccess(0, 0x4000 + 4, 8, true, i);
    }
    EXPECT_EQ(det().raceCount(), 0);
}

TEST(RaceDetector, DedupFoldsRepeatedReports)
{
    resetDetector();
    det().onAccess(0, 0x5000, 4, true, 10);
    det().onAccess(1, 0x5000, 4, true, 20);
    det().onAccess(1, 0x5000, 4, true, 30); // same epoch: no recheck
    det().onAccess(0, 0x5000, 4, true, 40); // same pair again
    ASSERT_EQ(det().records().size(), 1u);
    EXPECT_GE(det().records()[0].count, 2u);
    EXPECT_GE(det().raceCount(), 2);
}

// --------------------------------------------------------- unit: sync edges

TEST(RaceDetector, LockEdgeOrdersCriticalSections)
{
    resetDetector();
    constexpr addr_t LOCK = 0x9000, DATA = 0x9100;
    det().onAccess(0, DATA, 4, true, 10);
    det().releaseAddr(0, LOCK);
    det().acquireAddr(1, LOCK);
    det().onAccess(1, DATA, 4, true, 20);
    EXPECT_EQ(det().raceCount(), 0);
    EXPECT_GE(det().syncEdges(), 2);
}

TEST(RaceDetector, FailedCasDoesNotPublish)
{
    // Satellite regression: a failed CAS is acquire-only. If it
    // (wrongly) released, the reader below would appear ordered and
    // the race would be missed.
    resetDetector();
    constexpr addr_t FLAG = 0xa000, DATA = 0xa100;
    det().onAccess(0, DATA, 4, true, 10);
    det().onAtomic(0, FLAG, /*release=*/false); // failed CAS
    det().onAtomic(1, FLAG, /*release=*/false); // failed CAS
    det().onAccess(1, DATA, 4, false, 20);
    ASSERT_EQ(det().records().size(), 1u);
    EXPECT_EQ(det().records()[0].kind, race::RaceKind::WriteRead);

    // The successful CAS does publish: same program, release=true.
    resetDetector();
    det().onAccess(0, DATA, 4, true, 10);
    det().onAtomic(0, FLAG, /*release=*/true); // successful CAS
    det().onAtomic(1, FLAG, /*release=*/false);
    det().onAccess(1, DATA, 4, false, 20);
    EXPECT_EQ(det().raceCount(), 0);
}

TEST(RaceDetector, BarrierGenerationsOrderPhases)
{
    resetDetector();
    constexpr addr_t B = 0xb000, DATA = 0xb100;
    // Phase 1: tile 0 writes; both arrive; generation 0 closes.
    det().onAccess(0, DATA, 4, true, 10);
    std::uint64_t g0 = det().barrierArrive(0, B, 2);
    std::uint64_t g1 = det().barrierArrive(1, B, 2);
    EXPECT_EQ(g0, g1);
    det().barrierLeave(0, B, g0);
    det().barrierLeave(1, B, g1);
    // Phase 2: tile 1 reads and takes over the word.
    det().onAccess(1, DATA, 4, false, 20);
    det().onAccess(1, DATA, 4, true, 21);
    // Generation 1 orders the hand-back to tile 0.
    g0 = det().barrierArrive(1, B, 2);
    g1 = det().barrierArrive(0, B, 2);
    det().barrierLeave(1, B, g0);
    det().barrierLeave(0, B, g1);
    det().onAccess(0, DATA, 4, false, 30);
    EXPECT_EQ(det().raceCount(), 0);
}

TEST(RaceDetector, MessageChannelOrdersSenderBeforeReceiver)
{
    resetDetector();
    constexpr addr_t DATA = 0xc000;
    det().onAccess(0, DATA, 4, true, 10);
    det().msgSendEdge(0, 1);
    det().msgRecvEdge(0, 1);
    det().onAccess(1, DATA, 4, false, 20);
    EXPECT_EQ(det().raceCount(), 0);
    // A receive with no matching send establishes nothing.
    constexpr addr_t DATA2 = 0xc100;
    det().onAccess(0, DATA2, 4, true, 25);
    det().msgRecvEdge(0, 2); // channel (0,2) has nothing pending
    det().onAccess(2, DATA2, 4, false, 30);
    EXPECT_EQ(det().raceCount(), 1);
}

TEST(RaceDetector, DirectEdgeOrdersSpawnStyleHandoff)
{
    resetDetector();
    constexpr addr_t DATA = 0xd000;
    det().onAccess(0, DATA, 4, true, 10);
    det().edge(0, 2); // spawn/futex-transfer style MCP edge
    det().onAccess(2, DATA, 4, true, 20);
    EXPECT_EQ(det().raceCount(), 0);
    // Out-of-range endpoints are ignored, not fatal.
    det().edge(-1, 2);
    det().edge(0, 99);
}

// ------------------------------------------------------- unit: shadow table

TEST(RaceDetector, AdaptiveLineExpandsOnSecondThread)
{
    resetDetector(4, "adaptive");
    for (addr_t a = 0x7000; a < 0x7040; a += 4)
        det().onAccess(0, a, 4, true, 1);
    EXPECT_EQ(det().shadowExpansions(), 0); // compact single-owner
    det().edge(0, 1);
    det().onAccess(1, 0x7000, 4, true, 2);
    EXPECT_EQ(det().shadowExpansions(), 1);
    EXPECT_EQ(det().raceCount(), 0); // expansion is lossless + ordered
    // The expanded cells still carry tile 0's history: an unordered
    // third-party write to another word of the line must be caught.
    det().onAccess(2, 0x7004, 4, true, 3);
    EXPECT_EQ(det().raceCount(), 1);
}

TEST(RaceDetector, WordGranularityIgnoresFalseSharing)
{
    resetDetector(4, "word");
    det().onAccess(0, 0x8000, 4, true, 10);
    det().onAccess(1, 0x8004, 4, true, 20); // same line, disjoint words
    EXPECT_EQ(det().raceCount(), 0);
}

TEST(RaceDetector, LineGranularityIsDeliberatelyCoarse)
{
    resetDetector(4, "line");
    det().onAccess(0, 0x8000, 4, true, 10);
    det().onAccess(1, 0x8004, 4, true, 20);
    // Documented tradeoff: line mode reports false sharing as a race.
    EXPECT_EQ(det().raceCount(), 1);
}

TEST(RaceDetector, ClearRangeForgetsFreedMemory)
{
    resetDetector();
    det().onAccess(0, 0xe000, 4, true, 10);
    det().clearRange(0xe000, 64); // free + malloc reuse
    det().onAccess(1, 0xe000, 4, true, 20);
    EXPECT_EQ(det().raceCount(), 0);
}

TEST(RaceDetector, ShadowTableIsBoundedByEviction)
{
    resetDetector(4, "adaptive", /*max_shadow_lines=*/128);
    for (addr_t a = 0; a < 64 * 4096; a += 64)
        det().onAccess(0, a, 4, true, 1);
    EXPECT_GT(det().shadowEvictions(), 0);
    EXPECT_LE(det().shadowLines(), 128 + 64); // cap + one per shard
    EXPECT_EQ(det().raceCount(), 0); // forgetting never invents races
}

// ------------------------------------------------- integration: planted race

struct RaceProbe
{
    addr_t word = 0;
};

void
racyChild(void* p)
{
    auto* probe = static_cast<RaceProbe*>(p);
    api::annotateSite("child-write");
    api::write<std::uint32_t>(probe->word, 2);
}

void
racyMain(void* p)
{
    auto* probe = static_cast<RaceProbe*>(p);
    probe->word = api::malloc(4);
    api::write<std::uint32_t>(probe->word, 0);
    tile_id_t t = api::threadSpawn(&racyChild, p);
    api::annotateSite("parent-write");
    api::write<std::uint32_t>(probe->word, 1);
    api::threadJoin(t);
    api::free(probe->word);
}

Config
simConfig(const std::string& sync_model, int tiles = 4, int procs = 1)
{
    Config cfg = defaultTargetConfig();
    cfg.setInt("general/total_tiles", tiles);
    cfg.setInt("general/num_processes", procs);
    cfg.set("sync/model", sync_model);
    cfg.setBool("race/enabled", true);
    return cfg;
}

TEST(RaceSim, PlantedWriteWriteIsFlaggedAcrossSyncModels)
{
    for (const char* model : {"lax", "lax_barrier", "lax_p2p"}) {
        Config cfg = simConfig(model);
        Simulator sim(cfg);
        RaceProbe probe;
        sim.run(&racyMain, &probe);
        EXPECT_GE(det().raceCount(), 1) << "sync model " << model;
        ASSERT_GE(det().records().size(), 1u) << "sync model " << model;
        // Whichever write came second, both annotated sites name the
        // conflicting pair.
        std::string line = det().describe(det().records()[0]);
        EXPECT_NE(line.find("child-write"), std::string::npos) << line;
        EXPECT_NE(line.find("parent-write"), std::string::npos) << line;
    }
}

void
racyReaderChild(void* p)
{
    auto* probe = static_cast<RaceProbe*>(p);
    (void)api::read<std::uint32_t>(probe->word);
}

void
racyReaderMain(void* p)
{
    auto* probe = static_cast<RaceProbe*>(p);
    probe->word = api::malloc(4);
    api::write<std::uint32_t>(probe->word, 0);
    tile_id_t t = api::threadSpawn(&racyReaderChild, p);
    api::write<std::uint32_t>(probe->word, 1);
    api::threadJoin(t);
    api::free(probe->word);
}

TEST(RaceSim, PlantedReadWriteIsFlagged)
{
    Config cfg = simConfig("lax");
    Simulator sim(cfg);
    RaceProbe probe;
    sim.run(&racyReaderMain, &probe);
    EXPECT_GE(det().raceCount(), 1);
}

TEST(RaceSim, ReportFileIsWritten)
{
    const char* path = "/tmp/graphite_test_races.jsonl";
    std::remove(path);
    Config cfg = simConfig("lax");
    cfg.set("race/report_out", path);
    Simulator sim(cfg);
    RaceProbe probe;
    sim.run(&racyMain, &probe);
    std::FILE* f = std::fopen(path, "r");
    ASSERT_NE(f, nullptr);
    char buf[512] = {};
    ASSERT_NE(std::fgets(buf, sizeof(buf), f), nullptr);
    std::fclose(f);
    std::string line = buf;
    EXPECT_NE(line.find("\"kind\":\"ww\""), std::string::npos) << line;
    EXPECT_NE(line.find("\"cur_site\""), std::string::npos) << line;
    std::remove(path);
}

// --------------------------------------------- integration: race-free code

struct SharedProbe
{
    addr_t mutex = 0, barrier = 0, flag = 0, data = 0;
    std::uint32_t result = 0;
};

void
mutexChild(void* p)
{
    auto* probe = static_cast<SharedProbe*>(p);
    for (int i = 0; i < 4; ++i) {
        api::mutexLock(probe->mutex);
        std::uint32_t v = api::read<std::uint32_t>(probe->data);
        api::write<std::uint32_t>(probe->data, v + 1);
        api::mutexUnlock(probe->mutex);
    }
}

void
mutexMain(void* p)
{
    auto* probe = static_cast<SharedProbe*>(p);
    probe->mutex = api::malloc(api::MUTEX_BYTES);
    probe->data = api::malloc(4);
    api::mutexInit(probe->mutex);
    api::write<std::uint32_t>(probe->data, 0);
    tile_id_t a = api::threadSpawn(&mutexChild, p);
    tile_id_t b = api::threadSpawn(&mutexChild, p);
    mutexChild(p);
    api::threadJoin(a);
    api::threadJoin(b);
    probe->result = api::read<std::uint32_t>(probe->data);
    api::free(probe->mutex);
    api::free(probe->data);
}

TEST(RaceSim, MutexCounterIsCleanAcrossSyncModels)
{
    for (const char* model : {"lax", "lax_barrier", "lax_p2p"}) {
        Config cfg = simConfig(model);
        Simulator sim(cfg);
        SharedProbe probe;
        sim.run(&mutexMain, &probe);
        EXPECT_EQ(probe.result, 12u) << "sync model " << model;
        EXPECT_EQ(det().raceCount(), 0)
            << "sync model " << model << ": "
            << (det().records().empty()
                    ? std::string()
                    : det().describe(det().records()[0]));
    }
}

void
atomicPublishChild(void* p)
{
    auto* probe = static_cast<SharedProbe*>(p);
    // Acquire-spin on the flag with an atomic read (atomicAdd32 of 0),
    // then read the plainly-written payload.
    while (api::atomicAdd32(probe->flag, 0) == 0)
        api::exec(InstrClass::IntAlu, 10);
    probe->result = api::read<std::uint32_t>(probe->data);
}

void
atomicPublishMain(void* p)
{
    auto* probe = static_cast<SharedProbe*>(p);
    probe->flag = api::malloc(4);
    probe->data = api::malloc(4);
    api::write<std::uint32_t>(probe->flag, 0);
    tile_id_t t = api::threadSpawn(&atomicPublishChild, p);
    api::write<std::uint32_t>(probe->data, 77); // plain payload write
    api::atomicExchange32(probe->flag, 1);      // release publish
    api::threadJoin(t);
    api::free(probe->flag);
    api::free(probe->data);
}

TEST(RaceSim, AtomicFlagPublishIsClean)
{
    Config cfg = simConfig("lax");
    Simulator sim(cfg);
    SharedProbe probe;
    sim.run(&atomicPublishMain, &probe);
    EXPECT_EQ(probe.result, 77u);
    EXPECT_EQ(det().raceCount(), 0)
        << (det().records().empty()
                ? std::string()
                : det().describe(det().records()[0]));
}

struct BarrierProbe
{
    addr_t barrier = 0, words = 0;
    static constexpr int THREADS = 4;
    std::atomic<std::uint32_t> sum{0};
};

void
barrierPhase(BarrierProbe* probe, int idx)
{
    api::write<std::uint32_t>(probe->words + 4 * idx, 10 + idx);
    api::barrierWait(probe->barrier);
    int next = (idx + 1) % BarrierProbe::THREADS;
    probe->sum +=
        api::read<std::uint32_t>(probe->words + 4 * next);
}

void
barrierChild(void* p)
{
    auto* probe = static_cast<BarrierProbe*>(p);
    barrierPhase(probe, api::tileId());
}

void
barrierMain(void* p)
{
    auto* probe = static_cast<BarrierProbe*>(p);
    probe->barrier = api::malloc(api::BARRIER_BYTES);
    probe->words = api::malloc(4 * BarrierProbe::THREADS);
    api::barrierInit(probe->barrier, BarrierProbe::THREADS);
    std::vector<tile_id_t> tids;
    for (int i = 1; i < BarrierProbe::THREADS; ++i)
        tids.push_back(api::threadSpawn(&barrierChild, p));
    barrierPhase(probe, 0);
    for (tile_id_t t : tids)
        api::threadJoin(t);
    api::free(probe->barrier);
    api::free(probe->words);
}

TEST(RaceSim, BarrierPhasesAreClean)
{
    for (const char* model : {"lax", "lax_barrier"}) {
        Config cfg = simConfig(model);
        Simulator sim(cfg);
        BarrierProbe probe;
        sim.run(&barrierMain, &probe);
        EXPECT_EQ(probe.sum.load(), 10u + 11u + 12u + 13u);
        EXPECT_EQ(det().raceCount(), 0)
            << "sync model " << model << ": "
            << (det().records().empty()
                    ? std::string()
                    : det().describe(det().records()[0]));
    }
}

void
msgOrderChild(void* p)
{
    auto* probe = static_cast<SharedProbe*>(p);
    api::Message m = api::msgRecv(); // carries the HB edge
    std::uint32_t v = api::read<std::uint32_t>(probe->data);
    api::write<std::uint32_t>(probe->data, v * 2);
    api::msgSend(m.sender, &v, 4);
}

void
msgOrderMain(void* p)
{
    auto* probe = static_cast<SharedProbe*>(p);
    probe->data = api::malloc(4);
    api::write<std::uint32_t>(probe->data, 21);
    tile_id_t t = api::threadSpawn(&msgOrderChild, p);
    std::uint32_t token = 1;
    api::msgSend(t, &token, 4);
    api::Message m = api::msgRecv();
    (void)m;
    probe->result = api::read<std::uint32_t>(probe->data);
    api::threadJoin(t);
    api::free(probe->data);
}

TEST(RaceSim, MessagePassingOrdersSharedMemory)
{
    Config cfg = simConfig("lax", 4, 2); // cross-process messaging
    Simulator sim(cfg);
    SharedProbe probe;
    sim.run(&msgOrderMain, &probe);
    EXPECT_EQ(probe.result, 42u);
    EXPECT_EQ(det().raceCount(), 0)
        << (det().records().empty()
                ? std::string()
                : det().describe(det().records()[0]));
}

void
reuseChild(void* p)
{
    auto* probe = static_cast<SharedProbe*>(p);
    std::uint32_t v = api::read<std::uint32_t>(probe->data);
    api::write<std::uint32_t>(probe->data, v + 1);
    addr_t scratch = api::malloc(64);
    api::write<std::uint64_t>(scratch, v);
    api::free(scratch);
}

void
reuseMain(void* p)
{
    auto* probe = static_cast<SharedProbe*>(p);
    probe->data = api::malloc(4);
    api::write<std::uint32_t>(probe->data, 0);
    // More children than spare tiles: every child reuses the same tile
    // slot, ordered purely by the exit -> join -> spawn chain.
    for (int i = 0; i < 6; ++i) {
        tile_id_t t = api::threadSpawn(&reuseChild, p);
        api::threadJoin(t);
    }
    probe->result = api::read<std::uint32_t>(probe->data);
    api::free(probe->data);
}

TEST(RaceSim, TileReuseThroughJoinIsClean)
{
    Config cfg = simConfig("lax", 2);
    Simulator sim(cfg);
    SharedProbe probe;
    sim.run(&reuseMain, &probe);
    EXPECT_EQ(probe.result, 6u);
    EXPECT_EQ(det().raceCount(), 0)
        << (det().records().empty()
                ? std::string()
                : det().describe(det().records()[0]));
}

TEST(RaceSim, WorkloadRunsClean)
{
    const workloads::WorkloadInfo& w = workloads::findWorkload("fft");
    workloads::WorkloadParams p = w.defaults;
    p.size = 256;
    p.threads = 4;
    Config cfg = simConfig("lax_barrier", 8);
    Simulator sim(cfg);
    workloads::SimRunResult r = workloads::runSim(sim, w, p);
    EXPECT_GT(r.simulatedCycles, 0u);
    EXPECT_EQ(det().raceCount(), 0)
        << (det().records().empty()
                ? std::string()
                : det().describe(det().records()[0]));
    EXPECT_GT(det().wordsChecked(), 0);
}

// ------------------------------------------------ integration: fuzz corpus

TEST(RaceFuzz, ArmedRunsAreSilentAndFingerprintNeutral)
{
    // The race detector is a pure observer: arming it must neither
    // report anything on the race-free fuzz corpus nor perturb the
    // differential fingerprint.
    for (std::uint64_t seed : {7ull, 21ull}) {
        check::FuzzProgram prog = check::FuzzProgram::generate(seed);
        check::ConfigPoint base = check::baselinePoint();
        check::ConfigPoint armed = base;
        armed.race = true;
        armed.name = "baseline_race";
        check::FuzzResult off = check::runFuzzProgram(
            prog, check::makeFuzzConfig(base, seed));
        check::FuzzResult on = check::runFuzzProgram(
            prog, check::makeFuzzConfig(armed, seed));
        EXPECT_TRUE(off.violations.empty());
        EXPECT_TRUE(on.violations.empty())
            << "seed " << seed << ": " << on.violations.front();
        EXPECT_EQ(off.fingerprint, on.fingerprint) << "seed " << seed;
    }
}

} // namespace
} // namespace graphite
