/**
 * @file
 * Unit tests for the common substrate: string formatting, config,
 * logging discipline, RNG, stats registry, and table rendering.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/config.h"
#include "common/log.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/strfmt.h"
#include "common/table.h"

namespace graphite
{
namespace
{

// ----------------------------------------------------------------- strfmt

TEST(Strfmt, BasicSubstitution)
{
    EXPECT_EQ(strfmt("a {} c {}", 1, "b"), "a 1 c b");
    EXPECT_EQ(strfmt("no placeholders"), "no placeholders");
    EXPECT_EQ(strfmt("{}", 42), "42");
}

TEST(Strfmt, EscapedBraces)
{
    EXPECT_EQ(strfmt("{{}}"), "{}");
    EXPECT_EQ(strfmt("{{{}}}", 7), "{7}");
}

TEST(Strfmt, SurplusArgumentsAppended)
{
    // Never crashes; surplus args are made visible for diagnosis.
    EXPECT_EQ(strfmt("x", 1), "x [1]");
}

TEST(Strfmt, SurplusPlaceholdersLeftVerbatim)
{
    EXPECT_EQ(strfmt("{} {}", 1), "1 {}");
}

// ----------------------------------------------------------------- Config

TEST(Config, ParseSectionsAndComments)
{
    Config cfg;
    cfg.parseText("[a/b]\nkey = 7 ; trailing\n# full comment\nflag=true\n"
                  "[other]\nname = hello world\n");
    EXPECT_EQ(cfg.getInt("a/b/key"), 7);
    EXPECT_TRUE(cfg.getBool("a/b/flag"));
    EXPECT_EQ(cfg.getString("other/name"), "hello world");
}

TEST(Config, LaterDefinitionWins)
{
    Config cfg;
    cfg.parseText("k = 1\nk = 2\n");
    EXPECT_EQ(cfg.getInt("k"), 2);
    cfg.setOverride("k=3");
    EXPECT_EQ(cfg.getInt("k"), 3);
}

TEST(Config, MissingRequiredKeyIsFatal)
{
    Config cfg;
    EXPECT_THROW(cfg.getInt("nope"), FatalError);
    EXPECT_EQ(cfg.getInt("nope", 9), 9);
}

TEST(Config, MalformedValuesAreFatal)
{
    Config cfg;
    cfg.parseText("x = abc\nb = maybe\n");
    EXPECT_THROW(cfg.getInt("x"), FatalError);
    EXPECT_THROW(cfg.getBool("b"), FatalError);
    EXPECT_THROW(cfg.parseText("[broken\n"), FatalError);
    EXPECT_THROW(cfg.parseText("novalue\n"), FatalError);
}

TEST(Config, TypedSetters)
{
    Config cfg;
    cfg.setInt("i", -5);
    cfg.setBool("b", false);
    cfg.setDouble("d", 2.5);
    EXPECT_EQ(cfg.getInt("i"), -5);
    EXPECT_FALSE(cfg.getBool("b"));
    EXPECT_DOUBLE_EQ(cfg.getDouble("d"), 2.5);
}

TEST(Config, DefaultTargetConfigMatchesTable1)
{
    Config cfg = defaultTargetConfig();
    // Paper Table 1 parameters.
    EXPECT_DOUBLE_EQ(cfg.getDouble("general/clock_frequency_ghz"), 1.0);
    EXPECT_EQ(cfg.getInt("perf_model/l1_dcache/cache_size"), 32768);
    EXPECT_EQ(cfg.getInt("perf_model/l1_dcache/associativity"), 8);
    EXPECT_EQ(cfg.getInt("perf_model/l2_cache/cache_size"), 3145728);
    EXPECT_EQ(cfg.getInt("perf_model/l2_cache/associativity"), 24);
    EXPECT_EQ(cfg.getInt("perf_model/l2_cache/line_size"), 64);
    EXPECT_EQ(cfg.getString("caching_protocol/directory_type"),
              "full_map");
    EXPECT_DOUBLE_EQ(
        cfg.getDouble("perf_model/dram/total_bandwidth_gbps"), 5.13);
}

TEST(Config, KeysWithPrefixAndRoundTrip)
{
    Config cfg;
    cfg.parseText("[s]\na=1\nb=2\n[t]\nc=3\n");
    EXPECT_EQ(cfg.keysWithPrefix("s/").size(), 2u);
    Config copy;
    copy.parseText(cfg.toString());
    EXPECT_EQ(copy.getInt("t/c"), 3);
}

// -------------------------------------------------------------------- Rng

TEST(Rng, DeterministicPerSeed)
{
    Rng a(123), b(123), c(456);
    EXPECT_EQ(a.next(), b.next());
    EXPECT_NE(a.next(), c.next());
}

TEST(Rng, BoundedStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(r.nextBounded(17), 17u);
        double d = r.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, BoundedCoversRange)
{
    Rng r(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 200; ++i)
        seen.insert(r.nextBounded(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, ForkGivesIndependentStreams)
{
    Rng base(5);
    Rng f1 = base.fork(1);
    Rng f2 = base.fork(2);
    EXPECT_NE(f1.next(), f2.next());
    // Forking is deterministic.
    EXPECT_EQ(base.fork(1).next(), base.fork(1).next());
}

// ------------------------------------------------------------------ Stats

TEST(Stats, RegisterAndQuery)
{
    StatsRegistry reg;
    stat_t a = 5, b = 7;
    reg.registerCounter("tile.0.misses", &a);
    reg.registerCounter("tile.1.misses", &b);
    EXPECT_EQ(reg.get("tile.0.misses"), 5u);
    a = 6;
    EXPECT_EQ(reg.get("tile.0.misses"), 6u);
    EXPECT_TRUE(reg.has("tile.1.misses"));
    EXPECT_FALSE(reg.has("tile.2.misses"));
    EXPECT_EQ(reg.sumMatching("tile.", ".misses"), 13u);
    EXPECT_EQ(reg.names().size(), 2u);
}

TEST(Stats, UnknownCounterIsFatal)
{
    StatsRegistry reg;
    EXPECT_THROW(reg.get("missing"), FatalError);
}

// ------------------------------------------------------------------ Table

TEST(Table, AlignsColumns)
{
    TextTable t;
    t.header({"name", "value"});
    t.row({"x", "1"});
    t.row({"longer", "22"});
    std::string out = t.render();
    EXPECT_NE(out.find("name    value"), std::string::npos);
    EXPECT_NE(out.find("longer  22"), std::string::npos);
}

TEST(Table, NumFormatsPrecision)
{
    EXPECT_EQ(TextTable::num(1.23456, 2), "1.23");
    EXPECT_EQ(TextTable::num(2.0, 0), "2");
}

TEST(Table, RaggedRowsArePadded)
{
    TextTable t;
    t.header({"a", "b", "c"});
    t.row({"only"});
    EXPECT_NO_THROW(t.render());
}

} // namespace
} // namespace graphite
