/**
 * @file
 * Unit tests for the cluster topology (tile striping, endpoint
 * numbering) and the physical transport layer.
 */

#include <gtest/gtest.h>

#include <thread>

#include "common/config.h"
#include "common/log.h"
#include "transport/transport.h"

namespace graphite
{
namespace
{

TEST(ClusterTopology, StripesTilesAcrossProcesses)
{
    // Paper §3.5: tiles are striped across processes.
    ClusterTopology topo(8, 4);
    EXPECT_EQ(topo.processForTile(0), 0);
    EXPECT_EQ(topo.processForTile(1), 1);
    EXPECT_EQ(topo.processForTile(4), 0);
    EXPECT_EQ(topo.processForTile(7), 3);
    EXPECT_TRUE(topo.sameProcess(0, 4));
    EXPECT_FALSE(topo.sameProcess(0, 1));
}

TEST(ClusterTopology, TileOwnershipRoundTrips)
{
    ClusterTopology topo(10, 3);
    int counted = 0;
    for (proc_id_t p = 0; p < topo.numProcesses(); ++p) {
        for (tile_id_t k = 0; k < topo.tilesInProcess(p); ++k) {
            tile_id_t t = topo.tileOfProcess(p, k);
            EXPECT_EQ(topo.processForTile(t), p);
            ++counted;
        }
    }
    EXPECT_EQ(counted, 10);
}

TEST(ClusterTopology, MachinesGroupProcesses)
{
    ClusterTopology topo(16, 4, /*procs_per_machine=*/2);
    EXPECT_EQ(topo.numMachines(), 2);
    EXPECT_EQ(topo.machineForProcess(0), 0);
    EXPECT_EQ(topo.machineForProcess(1), 0);
    EXPECT_EQ(topo.machineForProcess(2), 1);
    EXPECT_TRUE(topo.sameMachine(0, 1));  // procs 0 and 1, machine 0
    EXPECT_FALSE(topo.sameMachine(0, 2)); // procs 0 and 2
}

TEST(ClusterTopology, EndpointNumbering)
{
    ClusterTopology topo(4, 2);
    EXPECT_EQ(topo.tileEndpoint(3), 3);
    EXPECT_EQ(topo.lcpEndpoint(0), 4);
    EXPECT_EQ(topo.lcpEndpoint(1), 5);
    EXPECT_EQ(topo.mcpEndpoint(), 6);
    EXPECT_EQ(topo.numEndpoints(), 7);
    EXPECT_EQ(topo.processForEndpoint(topo.lcpEndpoint(1)), 1);
    EXPECT_EQ(topo.processForEndpoint(topo.mcpEndpoint()), 0);
}

TEST(ClusterTopology, InvalidShapesAreFatal)
{
    EXPECT_THROW(ClusterTopology(0, 1), FatalError);
    EXPECT_THROW(ClusterTopology(4, 0), FatalError);
    EXPECT_THROW(ClusterTopology(2, 4), FatalError);
}

TEST(Transport, DeliversInFifoOrder)
{
    ClusterTopology topo(4, 2);
    InProcessTransport tr(topo);
    tr.send(0, 1, {1});
    tr.send(0, 1, {2});
    EXPECT_EQ(tr.pending(1), 2u);
    EXPECT_EQ(tr.recv(1).data[0], 1);
    EXPECT_EQ(tr.recv(1).data[0], 2);
    EXPECT_EQ(tr.pending(1), 0u);
}

TEST(Transport, TryRecvNonBlocking)
{
    ClusterTopology topo(2, 1);
    InProcessTransport tr(topo);
    TransportBuffer buf;
    EXPECT_FALSE(tr.tryRecv(0, buf));
    tr.send(1, 0, {42});
    EXPECT_TRUE(tr.tryRecv(0, buf));
    EXPECT_EQ(buf.src, 1);
    EXPECT_EQ(buf.data[0], 42);
}

TEST(Transport, CountsIntraAndInterProcessTraffic)
{
    ClusterTopology topo(4, 2);
    InProcessTransport tr(topo);
    tr.send(0, 2, {1, 2, 3}); // tiles 0,2 -> proc 0: intra
    tr.send(0, 1, {1});       // tile 1 -> proc 1: inter
    EXPECT_EQ(tr.intraProcessMessages(), 1u);
    EXPECT_EQ(tr.interProcessMessages(), 1u);
    EXPECT_EQ(tr.intraProcessBytes(), 3u);
    EXPECT_EQ(tr.interProcessBytes(), 1u);
}

TEST(Transport, BlockingRecvWakesOnSend)
{
    ClusterTopology topo(2, 1);
    InProcessTransport tr(topo);
    std::thread sender([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        tr.send(0, 1, {9});
    });
    TransportBuffer buf = tr.recv(1); // blocks until sender fires
    EXPECT_EQ(buf.data[0], 9);
    sender.join();
}

TEST(Transport, ShutdownUnblocksReceivers)
{
    ClusterTopology topo(2, 1);
    InProcessTransport tr(topo);
    std::thread receiver([&] {
        TransportBuffer buf = tr.recv(0);
        EXPECT_EQ(buf.src, -1); // shutdown sentinel
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    tr.shutdown();
    receiver.join();
}

} // namespace
} // namespace graphite

#include "transport/socket_transport.h"

namespace graphite
{
namespace
{

TEST(SocketTransport, RoundTripOverRealSockets)
{
    ClusterTopology topo(4, 2);
    UnixSocketTransport tr(topo);
    tr.send(0, 1, {1, 2, 3});
    TransportBuffer buf = tr.recv(1);
    EXPECT_EQ(buf.src, 0);
    EXPECT_EQ(buf.dst, 1);
    EXPECT_EQ(buf.data, (std::vector<std::uint8_t>{1, 2, 3}));
}

TEST(SocketTransport, TryRecvAndPending)
{
    ClusterTopology topo(2, 1);
    UnixSocketTransport tr(topo);
    TransportBuffer buf;
    EXPECT_FALSE(tr.tryRecv(0, buf));
    EXPECT_EQ(tr.pending(0), 0u);
    tr.send(1, 0, {9});
    EXPECT_GE(tr.pending(0), 1u);
    EXPECT_TRUE(tr.tryRecv(0, buf));
    EXPECT_EQ(buf.data[0], 9);
}

TEST(SocketTransport, ShutdownUnblocksReceivers)
{
    ClusterTopology topo(2, 1);
    UnixSocketTransport tr(topo);
    std::thread receiver([&] {
        TransportBuffer buf = tr.recv(0);
        EXPECT_EQ(buf.src, -1);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    tr.shutdown();
    receiver.join();
}

TEST(SocketTransport, FactorySelectsByConfig)
{
    ClusterTopology topo(2, 1);
    Config cfg = defaultTargetConfig();
    EXPECT_NE(dynamic_cast<InProcessTransport*>(
                  createTransport(topo, cfg).get()),
              nullptr);
    cfg.set("transport/type", "unix_socket");
    EXPECT_NE(dynamic_cast<UnixSocketTransport*>(
                  createTransport(topo, cfg).get()),
              nullptr);
    cfg.set("transport/type", "pigeon");
    EXPECT_THROW(createTransport(topo, cfg), FatalError);
}

} // namespace
} // namespace graphite
