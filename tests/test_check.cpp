/**
 * @file
 * Tests for the fuzzing & invariant-checking harness (src/check):
 * deterministic program generation, fault-plan semantics, clean-run
 * invariants, cross-config fingerprint equivalence, byte-identical
 * stats determinism, and in-process fault detection. The fork-isolated
 * sweep driver on top of these pieces is exercised by the fuzz_smoke
 * ctest entry.
 */

#include <gtest/gtest.h>

#include "check/fault.h"
#include "check/fuzz_program.h"
#include "check/fuzz_runner.h"
#include "common/config.h"
#include "common/log.h"

namespace graphite
{
namespace check
{
namespace
{

RunOptions
quickOpts()
{
    RunOptions opt;
    opt.watcherPeriodUs = 100;
    opt.validateEvery = 4;
    return opt;
}

TEST(FuzzProgram, GenerationIsDeterministic)
{
    for (std::uint64_t seed : {1ull, 7ull, 0xdeadbeefull}) {
        FuzzProgram a = FuzzProgram::generate(seed);
        FuzzProgram b = FuzzProgram::generate(seed);
        EXPECT_EQ(a.describe(), b.describe());
        EXPECT_GE(a.activeThreads(), 1);
        EXPECT_GT(a.enabledActions(), 0u);
    }
    EXPECT_NE(FuzzProgram::generate(1).describe(),
              FuzzProgram::generate(2).describe());
}

TEST(FuzzProgram, LimitsAreRespected)
{
    GenLimits limits;
    limits.maxThreads = 1;
    limits.allowRespawn = false;
    limits.allowMsgRing = false;
    for (std::uint64_t seed = 1; seed <= 32; ++seed) {
        FuzzProgram p = FuzzProgram::generate(seed, limits);
        EXPECT_EQ(p.threads, 1);
        for (const FuzzRound& r : p.rounds) {
            EXPECT_FALSE(r.msgRing);
            EXPECT_FALSE(r.respawn);
        }
    }
}

TEST(FaultPlan, ParseAndFireSemantics)
{
    EXPECT_EQ(FaultPlan::parseMode("none"), FaultMode::None);
    EXPECT_EQ(FaultPlan::parseMode("lost_writeback"),
              FaultMode::LostWriteback);
    EXPECT_THROW(FaultPlan::parseMode("bogus"), FatalError);

    Config cfg = defaultTargetConfig();
    cfg.set("check/inject_fault", "stale_dram_fill");
    cfg.setInt("check/fault_after", 2);
    cfg.setInt("check/fault_addr_below", 0x1000);
    FaultPlan& fp = FaultPlan::instance();
    fp.configure(cfg);
    EXPECT_TRUE(FaultPlan::armed());
    // Wrong mode and filtered addresses never burn opportunities.
    EXPECT_FALSE(fp.shouldFire(FaultMode::LostWriteback, 0x40));
    EXPECT_FALSE(fp.shouldFire(FaultMode::StaleDramFill, 0x2000));
    EXPECT_FALSE(fp.shouldFire(FaultMode::StaleDramFill, 0x40));
    EXPECT_FALSE(fp.shouldFire(FaultMode::StaleDramFill, 0x40));
    EXPECT_TRUE(fp.shouldFire(FaultMode::StaleDramFill, 0x40));
    EXPECT_EQ(fp.fired(), 1u);
    fp.disarm();
    EXPECT_FALSE(FaultPlan::armed());
}

TEST(FuzzRunner, CleanRunHoldsInvariants)
{
    FuzzProgram prog = FuzzProgram::generate(3);
    Config cfg = makeFuzzConfig(baselinePoint(), 3);
    FuzzResult res = runFuzzProgram(prog, cfg, quickOpts());
    EXPECT_TRUE(res.violations.empty()) << res.violations.front();
    EXPECT_NE(res.fingerprint, 0u);
    EXPECT_GT(res.simulatedCycles, 0u);
}

TEST(FuzzRunner, FingerprintsMatchAcrossConfigs)
{
    const std::uint64_t seed = 5;
    FuzzProgram prog = FuzzProgram::generate(seed);
    std::vector<ConfigPoint> matrix = sampleMatrix(seed, 2);
    std::uint64_t fp0 = 0;
    for (std::size_t i = 0; i < matrix.size(); ++i) {
        FuzzResult res = runFuzzProgram(
            prog, makeFuzzConfig(matrix[i], seed), quickOpts());
        EXPECT_TRUE(res.violations.empty())
            << matrix[i].name << ": " << res.violations.front();
        if (i == 0)
            fp0 = res.fingerprint;
        else
            EXPECT_EQ(res.fingerprint, fp0) << matrix[i].name;
    }
}

TEST(FuzzRunner, StatsReportIsDeterministic)
{
    // Single app thread under lax sync: the whole simulation is a
    // deterministic function of the seed, so two in-process runs must
    // produce byte-identical final stats reports.
    GenLimits limits;
    limits.maxThreads = 1;
    limits.allowRespawn = false;
    limits.allowMsgRing = false;
    FuzzProgram prog = FuzzProgram::generate(11, limits);
    Config cfg = makeFuzzConfig(baselinePoint(), 11);
    RunOptions opt = quickOpts();
    opt.collectStats = true;
    FuzzResult a = runFuzzProgram(prog, cfg, opt);
    FuzzResult b = runFuzzProgram(prog, cfg, opt);
    EXPECT_EQ(a.fingerprint, b.fingerprint);
    ASSERT_FALSE(a.statsReport.empty());
    EXPECT_EQ(a.statsReport, b.statsReport);
}

TEST(ShutdownValidation, CleanRunPassesFlagGatedCheck)
{
    FuzzProgram prog = FuzzProgram::generate(2);
    Config cfg = makeFuzzConfig(baselinePoint(), 2);
    cfg.setBool("check/validate_at_shutdown", true);
    EXPECT_NO_THROW(runFuzzProgram(prog, cfg, quickOpts()));
}

/**
 * In-process detection drill for the two injectable faults that do not
 * abort the process (drop_invalidation can trip a protocol assert and
 * lost_writeback needs the fork-isolated driver's matrix; both are
 * covered by fuzz_smoke). Detection = invariant violation, a thrown
 * FatalError, or fingerprint divergence vs the clean run of the same
 * seed and config.
 */
bool
detectInProcess(const char* fault, std::uint64_t max_seed)
{
    ConfigPoint pt;
    pt.name = "drill";
    pt.processes = 3;
    pt.concurrency = "sharded";
    pt.syncModel = "lax_p2p";
    pt.lineSize = 32;
    for (std::uint64_t seed = 1; seed <= max_seed; ++seed) {
        FuzzProgram prog = FuzzProgram::generate(seed);
        FuzzResult clean = runFuzzProgram(
            prog, makeFuzzConfig(pt, seed), quickOpts());
        if (!clean.violations.empty())
            return false; // clean run must be clean
        try {
            FuzzResult faulty = runFuzzProgram(
                prog, makeFuzzConfig(pt, seed, fault), quickOpts());
            if (!faulty.violations.empty() ||
                faulty.fingerprint != clean.fingerprint)
                return true;
        } catch (const FatalError&) {
            return true;
        }
    }
    return false;
}

TEST(FaultInjection, SkipReleaseFenceIsDetected)
{
    EXPECT_TRUE(detectInProcess("skip_release_fence", 20));
}

TEST(FaultInjection, StaleDramFillIsDetected)
{
    EXPECT_TRUE(detectInProcess("stale_dram_fill", 20));
}

} // namespace
} // namespace check
} // namespace graphite
