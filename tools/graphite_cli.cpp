/**
 * @file
 * Command-line simulation runner.
 *
 * Runs any workload from the suite on a configurable target, the way the
 * original Graphite was driven by carbon_sim.cfg plus command-line
 * overrides:
 *
 *   graphite_cli --workload fft --tiles 64 --threads 32
 *   graphite_cli --config graphite.cfg --set sync/model=lax_p2p \
 *                --workload radix --size 65536 --stats
 *   graphite_cli --list
 *
 * Options:
 *   --workload NAME   workload to run (see --list)
 *   --tiles N         target tile count        (default 32)
 *   --processes N     simulated host processes (default 1)
 *   --threads N       application threads      (default = tiles)
 *   --size N          problem size             (workload default)
 *   --iters N         iterations               (workload default)
 *   --config PATH     load an INI config file first
 *   --set K=V         override one config key (repeatable)
 *   --scheduler MODE  host execution scheduler: off | deterministic |
 *                     free_running (= host/scheduler)
 *   --host-threads N  host pool width, 0 = hardware concurrency
 *                     (= host/threads)
 *   --stats           print the full statistics report
 *   --native          also run the native build and cross-check
 *   --list            list available workloads
 *
 * Observability (see README "Observability"):
 *   --trace-out PATH       write a Chrome trace_event JSON of the run
 *   --metrics-out PATH     write per-interval stats snapshots (.csv or
 *                          .jsonl)
 *   --metrics-interval N   simulated cycles per snapshot row
 *   --self-profile         time simulator phases; print a table at exit
 *   --spans-out PATH       write causal transaction spans (.jsonl);
 *                          analyze with tools/span_report.py
 *
 * Live telemetry (see README "Live telemetry"):
 *   --telemetry-port N     serve /metrics, /status, /healthz over HTTP
 *                          on 127.0.0.1:N (0 picks an ephemeral port;
 *                          the bound port is printed)
 *   --telemetry-linger S   keep serving S seconds after the run so an
 *                          external prober can scrape final values
 *   --telemetry-dump PATH  watchdog/crash diagnostic dump path; also
 *                          escalates the watchdog action to "dump"
 *
 * Accuracy observatory (see DESIGN.md "Accuracy observatory"):
 *   --accuracy-out PATH    arm causality-violation detection and write
 *                          a flat headline-stats JSON after the run —
 *                          the unit of comparison for the accuracy-diff
 *                          harness (tools/accuracy_report.py)
 *   --accuracy-ref PATH    compare this run's headline stats against a
 *                          reference produced by --accuracy-out and
 *                          print the per-stat relative error table
 *   --accuracy-jsonl PATH  write the observatory's violation/skew JSONL
 *                          report (= accuracy/out)
 *
 * Checkpoint / fast-forward (see DESIGN.md "Snapshot format"):
 *   --checkpoint-in PATH   restore simulator state before the run; the
 *                          workload continues on the warmed target
 *   --checkpoint-out PATH  save full simulator state after the run —
 *                          the seed of a checkpoint-then-sweep fan-out
 *                          (EXPERIMENTS.md)
 *   --fast-forward         start in functional-only warmup mode;
 *                          timing detail begins at api::roiBegin() or
 *                          --ff-detail-at
 *   --ff-detail-at N       tile-clock threshold that ends warmup
 *
 * The GRAPHITE_LOG environment variable sets per-component log levels,
 * e.g. GRAPHITE_LOG=net:debug,mem:warn.
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/config.h"
#include "common/log.h"
#include "common/table.h"
#include "core/simulator.h"
#include "network/net_packet.h"
#include "obs/accuracy/accuracy.h"
#include "obs/observability.h"
#include "obs/profiler.h"
#include "race/detector.h"
#include "snapshot/checkpoint.h"
#include "snapshot/snapshot.h"
#include "workloads/registry.h"

using namespace graphite;

namespace
{

/**
 * The headline statistics the accuracy-diff harness compares across
 * sync models: whole-run totals, miss rate, and latency percentiles.
 * Flat name -> value pairs, stable order.
 */
std::vector<std::pair<std::string, double>>
collectHeadline(const Simulator& sim, const workloads::SimRunResult& r)
{
    std::vector<std::pair<std::string, double>> out;
    out.emplace_back("cycles", static_cast<double>(r.simulatedCycles));
    out.emplace_back("instructions",
                     static_cast<double>(r.totalInstructions));
    const StatsRegistry& reg = sim.stats();
    double accesses = static_cast<double>(reg.get("mem.accesses_total"));
    double misses = static_cast<double>(reg.get("mem.l2_misses_total"));
    out.emplace_back("mem_accesses", accesses);
    out.emplace_back("mem_l2_misses", misses);
    out.emplace_back("mem_l2_miss_rate",
                     accesses > 0 ? misses / accesses : 0.0);
    if (const HistogramStat* h = reg.histogram("mem.access_latency")) {
        out.emplace_back("mem_latency_p50", static_cast<double>(
                                                h->percentileApprox(0.5)));
        out.emplace_back("mem_latency_p95", static_cast<double>(
                                                h->percentileApprox(0.95)));
    }
    const auto& acc = obs::accuracy::AccuracyObservatory::instance();
    if (obs::accuracy::AccuracyObservatory::armed()) {
        const HistogramStat* app = acc.netLatencyHistogram(
            static_cast<int>(PacketType::App));
        const HistogramStat* mem = acc.netLatencyHistogram(
            static_cast<int>(PacketType::Memory));
        if (app != nullptr && app->count() > 0) {
            out.emplace_back("net_app_latency_p50",
                             static_cast<double>(
                                 app->percentileApprox(0.5)));
            out.emplace_back("net_app_latency_p95",
                             static_cast<double>(
                                 app->percentileApprox(0.95)));
        }
        if (mem != nullptr && mem->count() > 0) {
            out.emplace_back("net_mem_latency_p50",
                             static_cast<double>(
                                 mem->percentileApprox(0.5)));
            out.emplace_back("net_mem_latency_p95",
                             static_cast<double>(
                                 mem->percentileApprox(0.95)));
        }
        out.emplace_back("causality_violations",
                         static_cast<double>(acc.violations()));
        out.emplace_back("deliveries_checked",
                         static_cast<double>(acc.deliveries()));
        out.emplace_back("violation_fraction",
                         acc.deliveries() > 0
                             ? static_cast<double>(acc.violations()) /
                                   static_cast<double>(acc.deliveries())
                             : 0.0);
        out.emplace_back("worst_violation_cycles",
                         static_cast<double>(acc.worstMagnitude()));
        out.emplace_back("pair_skew_max_cycles",
                         static_cast<double>(acc.pairSkewMax()));
        out.emplace_back("pair_skew_mean_cycles", acc.pairSkewMean());
    }
    return out;
}

std::string
renderHeadlineJson(
    const std::string& workload, const std::string& sync_model,
    double checksum,
    const std::vector<std::pair<std::string, double>>& stats)
{
    std::ostringstream os;
    os.precision(17);
    os << "{\"workload\":\"" << workload << "\",\"sync_model\":\""
       << sync_model << "\",\"checksum\":" << checksum;
    for (const auto& [name, value] : stats)
        os << ",\"" << name << "\":" << value;
    os << "}\n";
    return os.str();
}

/**
 * Pull "name": value out of a headline JSON produced by --accuracy-out.
 * @return true and set @p value when the key is present.
 */
bool
findHeadlineValue(const std::string& json, const std::string& name,
                  double& value)
{
    std::string needle = "\"" + name + "\":";
    size_t at = json.find(needle);
    if (at == std::string::npos)
        return false;
    value = std::atof(json.c_str() + at + needle.size());
    return true;
}

/**
 * Per-stat relative error of this run against a reference headline
 * file (the accuracy-diff harness output). @return false when the
 * reference cannot be read.
 */
bool
printAccuracyDiff(
    const std::string& ref_path, const std::string& sync_model,
    const std::vector<std::pair<std::string, double>>& stats)
{
    std::ifstream in(ref_path);
    if (!in) {
        std::fprintf(stderr,
                     "accuracy-ref: cannot open '%s'\n",
                     ref_path.c_str());
        return false;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    std::string json = buf.str();

    std::string ref_model = "?";
    size_t at = json.find("\"sync_model\":\"");
    if (at != std::string::npos) {
        size_t start = at + std::strlen("\"sync_model\":\"");
        size_t end = json.find('"', start);
        if (end != std::string::npos)
            ref_model = json.substr(start, end - start);
    }

    TextTable t;
    t.header({"stat", ref_model + " (ref)", sync_model, "rel err"});
    for (const auto& [name, value] : stats) {
        double ref = 0;
        if (!findHeadlineValue(json, name, ref))
            continue;
        std::string err;
        if (ref != 0.0)
            err = TextTable::num((value - ref) / ref * 100.0, 2) + "%";
        else if (value == 0.0)
            err = "0.00%";
        else
            err = "n/a (ref 0)";
        t.row({name, TextTable::num(ref, 4), TextTable::num(value, 4),
               err});
    }
    std::printf("\n=== accuracy diff vs %s ===\n%s", ref_path.c_str(),
                t.render().c_str());
    return true;
}

[[noreturn]] void
usage(const char* argv0)
{
    std::fprintf(stderr,
                 "usage: %s --workload NAME [--tiles N] [--processes N]"
                 " [--threads N]\n"
                 "          [--size N] [--iters N] [--config PATH]"
                 " [--set K=V]... [--stats]\n"
                 "          [--scheduler MODE] [--host-threads N]\n"
                 "          [--trace-out PATH] [--metrics-out PATH]"
                 " [--metrics-interval N]\n"
                 "          [--spans-out PATH] [--self-profile]"
                 " [--native]\n"
                 "          [--telemetry-port N] [--telemetry-linger S]"
                 " [--telemetry-dump PATH]\n"
                 "          [--checkpoint-in PATH] [--checkpoint-out"
                 " PATH]\n"
                 "          [--fast-forward] [--ff-detail-at N]\n"
                 "          [--accuracy-out PATH] [--accuracy-ref PATH]"
                 " [--accuracy-jsonl PATH]\n"
                 "          [--race [--race-out PATH]] | --list\n",
                 argv0);
    std::exit(2);
}

} // namespace

int
main(int argc, char** argv)
{
    std::string workload;
    std::string config_path;
    std::vector<std::string> overrides;
    int tiles = 32, processes = 1, threads = -1;
    int size = -1, iters = -1;
    bool stats = false, native = false;
    std::string trace_out, metrics_out, spans_out;
    int metrics_interval = -1;
    bool self_profile = false;
    bool race = false;
    std::string race_out;
    int telemetry_port = -1;
    double telemetry_linger = 0.0;
    std::string telemetry_dump;
    std::string checkpoint_in, checkpoint_out;
    bool fast_forward = false;
    long long ff_detail_at = -1;
    std::string accuracy_out, accuracy_ref, accuracy_jsonl;

    initLogFilterFromEnv();

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char* {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--list") {
            for (const auto& w : workloads::registry())
                std::printf("%-16s (size %d, iters %d)\n",
                            w.name.c_str(), w.defaults.size,
                            w.defaults.iters);
            return 0;
        } else if (arg == "--workload") {
            workload = next();
        } else if (arg == "--tiles") {
            tiles = std::atoi(next());
        } else if (arg == "--processes") {
            processes = std::atoi(next());
        } else if (arg == "--threads") {
            threads = std::atoi(next());
        } else if (arg == "--size") {
            size = std::atoi(next());
        } else if (arg == "--iters") {
            iters = std::atoi(next());
        } else if (arg == "--config") {
            config_path = next();
        } else if (arg == "--set") {
            overrides.emplace_back(next());
        } else if (arg == "--scheduler") {
            overrides.emplace_back(std::string("host/scheduler=") +
                                   next());
        } else if (arg == "--host-threads") {
            overrides.emplace_back(std::string("host/threads=") +
                                   next());
        } else if (arg == "--stats") {
            stats = true;
        } else if (arg == "--native") {
            native = true;
        } else if (arg == "--trace-out") {
            trace_out = next();
        } else if (arg == "--metrics-out") {
            metrics_out = next();
        } else if (arg == "--metrics-interval") {
            metrics_interval = std::atoi(next());
        } else if (arg == "--spans-out") {
            spans_out = next();
        } else if (arg == "--self-profile") {
            self_profile = true;
        } else if (arg == "--race") {
            race = true;
        } else if (arg == "--race-out") {
            race = true;
            race_out = next();
        } else if (arg == "--telemetry-port") {
            telemetry_port = std::atoi(next());
        } else if (arg == "--telemetry-linger") {
            telemetry_linger = std::atof(next());
        } else if (arg == "--telemetry-dump") {
            telemetry_dump = next();
        } else if (arg == "--checkpoint-in") {
            checkpoint_in = next();
        } else if (arg == "--checkpoint-out") {
            checkpoint_out = next();
        } else if (arg == "--fast-forward") {
            fast_forward = true;
        } else if (arg == "--ff-detail-at") {
            ff_detail_at = std::atoll(next());
        } else if (arg == "--accuracy-out") {
            accuracy_out = next();
        } else if (arg == "--accuracy-ref") {
            accuracy_ref = next();
        } else if (arg == "--accuracy-jsonl") {
            accuracy_jsonl = next();
        } else {
            usage(argv[0]);
        }
    }
    if (workload.empty())
        usage(argv[0]);

    try {
        Config cfg = defaultTargetConfig();
        if (!config_path.empty())
            cfg.parseFile(config_path);
        cfg.setInt("general/total_tiles", tiles);
        cfg.setInt("general/num_processes", processes);
        for (const std::string& kv : overrides)
            cfg.setOverride(kv);
        if (!trace_out.empty())
            cfg.set("obs/trace_out", trace_out);
        if (!metrics_out.empty())
            cfg.set("obs/metrics_out", metrics_out);
        if (metrics_interval > 0)
            cfg.setInt("obs/metrics_interval", metrics_interval);
        if (!spans_out.empty())
            cfg.set("obs/spans_out", spans_out);
        if (self_profile)
            cfg.setBool("obs/self_profile", true);
        if (race)
            cfg.setBool("race/enabled", true);
        if (!race_out.empty())
            cfg.set("race/report_out", race_out);
        if (telemetry_port >= 0)
            cfg.setInt("telemetry/http_port", telemetry_port);
        if (!telemetry_dump.empty()) {
            cfg.set("telemetry/watchdog_dump", telemetry_dump);
            cfg.set("telemetry/watchdog_action", "dump");
            cfg.set("telemetry/crash_dump", telemetry_dump);
        }
        if (fast_forward)
            cfg.setBool("snapshot/fast_forward", true);
        if (ff_detail_at >= 0)
            cfg.setInt("snapshot/ff_detail_at", ff_detail_at);
        if (!accuracy_out.empty() || !accuracy_ref.empty())
            cfg.setBool("accuracy/enabled", true);
        if (!accuracy_jsonl.empty())
            cfg.set("accuracy/out", accuracy_jsonl);

        const workloads::WorkloadInfo& w =
            workloads::findWorkload(workload);
        workloads::WorkloadParams p = w.defaults;
        p.threads = threads > 0 ? threads : tiles;
        if (size > 0)
            p.size = size;
        if (iters > 0)
            p.iters = iters;

        Simulator sim(cfg);
        if (!checkpoint_in.empty()) {
            snapshot::restoreCheckpointFile(sim, checkpoint_in);
            std::printf("checkpoint in     : %s\n",
                        checkpoint_in.c_str());
        }
        workloads::SimRunResult r = workloads::runSim(sim, w, p);
        if (!checkpoint_out.empty()) {
            snapshot::saveCheckpointFile(sim, checkpoint_out);
            std::printf("checkpoint out    : %s\n",
                        checkpoint_out.c_str());
        }

        std::printf("workload          : %s (size %d, iters %d, "
                    "%d threads)\n",
                    w.name.c_str(), p.size, p.iters, p.threads);
        std::printf("simulated cycles  : %llu\n",
                    static_cast<unsigned long long>(r.simulatedCycles));
        std::printf("instructions      : %llu\n",
                    static_cast<unsigned long long>(
                        r.totalInstructions));
        std::printf("host wall time    : %.3f s\n", r.wallSeconds);
        std::printf("checksum          : %.17g\n", r.checksum);

        std::string violation = sim.memory().validateCoherence();
        std::printf("coherence         : %s\n",
                    violation.empty() ? "clean" : violation.c_str());

        if (native) {
            double native_sum = w.runNative(p);
            bool match = native_sum == r.checksum;
            std::printf("native checksum   : %.17g (%s)\n", native_sum,
                        match ? "MATCH" : "MISMATCH");
            if (!match)
                return 1;
        }
        std::string sync_model = cfg.getString("sync/model", "lax");
        if (!accuracy_out.empty() || !accuracy_ref.empty()) {
            auto headline = collectHeadline(sim, r);
            if (!accuracy_out.empty()) {
                std::ofstream out(accuracy_out);
                if (!out) {
                    std::fprintf(stderr,
                                 "accuracy-out: cannot open '%s'\n",
                                 accuracy_out.c_str());
                    return 1;
                }
                out << renderHeadlineJson(w.name, sync_model,
                                          r.checksum, headline);
                std::printf("accuracy out      : %s\n",
                            accuracy_out.c_str());
            }
            if (!accuracy_ref.empty() &&
                !printAccuracyDiff(accuracy_ref, sync_model, headline))
                return 1;
        }

        if (stats)
            std::printf("\n%s", sim.statsReport().c_str());
        else if (self_profile)
            std::printf("\n=== host self-profile ===\n%s",
                        obs::HostProfiler::instance().report().c_str());

        // The server (if any) keeps serving final values until the
        // Simulator dies; linger holds it open for external probers.
        if (sim.telemetryServer().running()) {
            std::printf("telemetry         : http://127.0.0.1:%u "
                        "(/metrics /status /healthz)\n",
                        static_cast<unsigned>(
                            sim.telemetryServer().port()));
            std::fflush(stdout);
            if (telemetry_linger > 0.0)
                std::this_thread::sleep_for(
                    std::chrono::duration<double>(telemetry_linger));
        }
        return violation.empty() ? 0 : 1;
    } catch (const snapshot::SnapshotError& err) {
        std::fprintf(stderr, "snapshot: %s\n", err.what());
        return 1;
    } catch (const FatalError& err) {
        std::fprintf(stderr, "fatal: %s\n", err.what());
        return 1;
    }
}
