/**
 * @file
 * Differential fuzz driver for the memory/sync/network stack.
 *
 * Each (seed, config) run executes in a forked child so that aborted
 * assertions, protocol panics and hangs become verdicts instead of
 * killing the sweep, and so the process-global singletons (obs,
 * fault plan) start fresh every run. The parent compares fingerprints
 * across the config matrix, shrinks failing programs to a minimal
 * reproducer, and writes artifacts under --artifacts.
 *
 * Modes:
 *   (default)      clean differential sweep over --seed-count seeds
 *   --fault MODE   detection drill: inject MODE (or "all") into the
 *                  variant configs until the harness flags the seed
 *   --smoke        fixed 32-seed clean sweep + detection drill for
 *                  every fault mode; exits nonzero if any mode escapes
 */

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "check/fault.h"
#include "check/fuzz_program.h"
#include "check/fuzz_runner.h"
#include "common/config.h"
#include "common/log.h"
#include "common/strfmt.h"
#include "obs/telemetry/flight_recorder.h"

using namespace graphite;
using namespace graphite::check;

namespace
{

std::string
hexU64(std::uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

bool
writeAll(int fd, const void* buf, std::size_t n)
{
    const char* p = static_cast<const char*>(buf);
    while (n > 0) {
        ssize_t w = ::write(fd, p, n);
        if (w <= 0)
            return false;
        p += w;
        n -= static_cast<std::size_t>(w);
    }
    return true;
}

bool
readAll(int fd, void* buf, std::size_t n)
{
    char* p = static_cast<char*>(buf);
    while (n > 0) {
        ssize_t r = ::read(fd, p, n);
        if (r <= 0)
            return false;
        p += r;
        n -= static_cast<std::size_t>(r);
    }
    return true;
}

/// 0 = reaped in time, 1 = timed out (SIGKILLed and reaped).
int
waitWithTimeout(pid_t pid, int timeout_sec, int* status)
{
    const long poll_us = 20000;
    long waited = 0;
    const long limit = static_cast<long>(timeout_sec) * 1000000;
    for (;;) {
        pid_t r = ::waitpid(pid, status, WNOHANG);
        if (r == pid)
            return 0;
        if (waited >= limit) {
            ::kill(pid, SIGKILL);
            ::waitpid(pid, status, 0);
            return 1;
        }
        ::usleep(poll_us);
        waited += poll_us;
    }
}

struct ChildResult
{
    char status = 'X'; ///< O ok, V violation, F fatal, C crash, H hang,
                       ///< X protocol error
    std::uint64_t fingerprint = 0;
    std::uint64_t cycles = 0;
    std::uint64_t skew = 0;
    std::string message;
};

const char*
verdictName(char status)
{
    switch (status) {
      case 'O': return "ok";
      case 'V': return "invariant-violation";
      case 'F': return "fatal";
      case 'C': return "crash";
      case 'H': return "hang";
      default: return "proto-error";
    }
}

/**
 * Segmented-execution request for runChild: split the program at a
 * round boundary and run it as two quiescent segments, optionally
 * detouring through a checkpoint/restore of a fresh Simulator between
 * them (the checkpoint differential's test article).
 */
struct SegSpec
{
    int split = -1; ///< < 0: plain uninterrupted run
    bool throughSnapshot = false;
    std::string schedMode; ///< host/scheduler override, empty = default
    int hostThreads = 0;   ///< host/threads override when schedMode set
};

ChildResult
runChild(const FuzzProgram& prog, const ConfigPoint& pt,
         std::uint64_t seed, const std::string& fault, int timeout_sec,
         const std::string& trace_out = "", const SegSpec& seg = {})
{
    ChildResult out;
    int fds[2];
    if (::pipe(fds) != 0) {
        out.message = "pipe() failed";
        return out;
    }
    pid_t pid = ::fork();
    if (pid < 0) {
        ::close(fds[0]);
        ::close(fds[1]);
        out.message = "fork() failed";
        return out;
    }
    if (pid == 0) {
        ::close(fds[0]);
        char st = 'O';
        FuzzResult res;
        std::string msg;
        try {
            Config cfg = makeFuzzConfig(pt, seed, fault);
            if (!trace_out.empty())
                cfg.set("obs/trace_out", trace_out);
            if (!seg.schedMode.empty()) {
                cfg.set("host/scheduler", seg.schedMode);
                cfg.setInt("host/threads", seg.hostThreads);
            }
            res = seg.split < 0
                      ? runFuzzProgram(prog, cfg)
                      : runFuzzProgramSegmented(
                            prog, cfg,
                            static_cast<std::size_t>(seg.split),
                            seg.throughSnapshot);
            if (!res.violations.empty()) {
                st = 'V';
                for (const std::string& v : res.violations) {
                    msg += v;
                    msg += '\n';
                }
            }
        } catch (const std::exception& e) {
            st = 'F';
            msg = e.what();
        } catch (...) {
            st = 'F';
            msg = "unknown exception";
        }
        // On any failure verdict, attach the flight-recorder tail: the
        // last sync/miss/futex events leading up to the violation.
        if (st != 'O') {
            msg += '\n';
            msg += obs::telemetry::FlightRecorder::instance().dump(32);
        }
        std::uint32_t len =
            static_cast<std::uint32_t>(std::min<std::size_t>(
                msg.size(), 8192));
        std::uint64_t cyc = res.simulatedCycles;
        std::uint64_t skew = res.maxSkew;
        bool sent = writeAll(fds[1], &st, 1) &&
                    writeAll(fds[1], &res.fingerprint, 8) &&
                    writeAll(fds[1], &cyc, 8) &&
                    writeAll(fds[1], &skew, 8) &&
                    writeAll(fds[1], &len, 4) &&
                    writeAll(fds[1], msg.data(), len);
        ::_exit(sent ? 0 : 3);
    }
    ::close(fds[1]);
    int status = 0;
    int w = waitWithTimeout(pid, timeout_sec, &status);
    if (w == 1) {
        out.status = 'H';
        out.message =
            strfmt("no result within {}s (killed)", timeout_sec);
        ::close(fds[0]);
        return out;
    }
    if (WIFSIGNALED(status)) {
        out.status = 'C';
        out.message = strfmt("killed by signal {} ({})",
                             WTERMSIG(status),
                             strsignal(WTERMSIG(status)));
        ::close(fds[0]);
        return out;
    }
    if (WIFEXITED(status) && WEXITSTATUS(status) != 0) {
        out.status = 'C';
        out.message =
            strfmt("child exited with status {}", WEXITSTATUS(status));
        ::close(fds[0]);
        return out;
    }
    char st = 'X';
    std::uint32_t len = 0;
    if (!readAll(fds[0], &st, 1) ||
        !readAll(fds[0], &out.fingerprint, 8) ||
        !readAll(fds[0], &out.cycles, 8) ||
        !readAll(fds[0], &out.skew, 8) || !readAll(fds[0], &len, 4) ||
        len > 65536) {
        out.message = "malformed child result";
        ::close(fds[0]);
        return out;
    }
    out.message.resize(len);
    if (len > 0 && !readAll(fds[0], out.message.data(), len)) {
        out.status = 'X';
        out.message = "truncated child result";
        ::close(fds[0]);
        return out;
    }
    out.status = st;
    ::close(fds[0]);
    return out;
}

struct SeedEval
{
    bool pass = true;
    std::string verdict = "ok";
    std::string detail;
    std::uint64_t baselineFp = 0;
    int runs = 0;
    ConfigPoint failPoint;
};

/**
 * Run @p seed across the sampled matrix: baseline always clean,
 * variants with @p fault injected ("none" for the clean sweep).
 */
SeedEval
evaluateSeed(std::uint64_t seed, int variants, const std::string& fault,
             const GenLimits& limits, int timeout)
{
    SeedEval ev;
    FuzzProgram prog = FuzzProgram::generate(seed, limits);
    std::vector<ConfigPoint> matrix = sampleMatrix(seed, variants);

    ChildResult base =
        runChild(prog, matrix[0], seed, "none", timeout);
    ++ev.runs;
    if (base.status != 'O') {
        ev.pass = false;
        ev.verdict = verdictName(base.status);
        ev.detail = base.message;
        ev.failPoint = matrix[0];
        return ev;
    }
    ev.baselineFp = base.fingerprint;

    for (std::size_t i = 1; i < matrix.size(); ++i) {
        ChildResult r =
            runChild(prog, matrix[i], seed, fault, timeout);
        ++ev.runs;
        if (r.status != 'O') {
            ev.pass = false;
            ev.verdict = verdictName(r.status);
            ev.detail = r.message;
            ev.failPoint = matrix[i];
            return ev;
        }
        if (r.fingerprint != base.fingerprint) {
            ev.pass = false;
            ev.verdict = "mismatch";
            ev.detail = strfmt("fingerprint {} vs baseline {}",
                               hexU64(r.fingerprint),
                               hexU64(base.fingerprint));
            ev.failPoint = matrix[i];
            return ev;
        }
    }
    return ev;
}

/// Does the (possibly shrunk) program still expose the failure?
bool
reproduces(const FuzzProgram& prog, const ConfigPoint& pt,
           std::uint64_t seed, const std::string& fault, int timeout,
           int& runs)
{
    ChildResult r = runChild(prog, pt, seed, fault, timeout);
    ++runs;
    if (r.status != 'O')
        return true;
    ChildResult b =
        runChild(prog, baselinePoint(), seed, "none", timeout);
    ++runs;
    if (b.status != 'O')
        return true;
    return r.fingerprint != b.fingerprint;
}

/**
 * ddmin-style shrink at structured granularity: whole threads (high to
 * low), whole rounds, then individual actions, finally per-round ring /
 * respawn flags. Each trial re-checks the failure, so the result is
 * always a reproducer.
 */
FuzzProgram
shrink(FuzzProgram prog, const ConfigPoint& pt, std::uint64_t seed,
       const std::string& fault, int timeout, int budget, int& trials,
       int& runs)
{
    for (int t = prog.threads - 1; t >= 1; --t) {
        if (trials >= budget)
            return prog;
        if (!prog.threadEnabled[t])
            continue;
        prog.threadEnabled[t] = 0;
        ++trials;
        if (!reproduces(prog, pt, seed, fault, timeout, runs))
            prog.threadEnabled[t] = 1;
    }
    for (FuzzRound& round : prog.rounds) {
        if (trials >= budget)
            return prog;
        if (!round.enabled)
            continue;
        round.enabled = false;
        ++trials;
        if (!reproduces(prog, pt, seed, fault, timeout, runs))
            round.enabled = true;
    }
    for (FuzzRound& round : prog.rounds) {
        if (!round.enabled)
            continue;
        for (int t = 0; t < prog.threads; ++t) {
            if (!prog.threadEnabled[t])
                continue;
            for (FuzzAction& a : round.actions[t]) {
                if (trials >= budget)
                    return prog;
                if (!a.enabled)
                    continue;
                a.enabled = false;
                ++trials;
                if (!reproduces(prog, pt, seed, fault, timeout, runs))
                    a.enabled = true;
            }
        }
    }
    for (FuzzRound& round : prog.rounds) {
        if (trials >= budget)
            return prog;
        if (!round.enabled || (!round.msgRing && !round.respawn))
            continue;
        bool ring = round.msgRing, spawn = round.respawn;
        round.msgRing = false;
        round.respawn = false;
        ++trials;
        if (!reproduces(prog, pt, seed, fault, timeout, runs)) {
            round.msgRing = ring;
            round.respawn = spawn;
        }
    }
    return prog;
}

void
writeArtifacts(const std::string& dir, const FuzzProgram& prog,
               const ConfigPoint& pt, std::uint64_t seed,
               const std::string& fault, const SeedEval& ev,
               int timeout)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec) {
        std::fprintf(stderr, "fuzz: cannot create %s: %s\n",
                     dir.c_str(), ec.message().c_str());
        return;
    }

    // Replay the shrunk program on the failing config with tracing on.
    // The trace flushes on clean exit and on FatalError unwind; a child
    // that dies on an assertion leaves no trace, which repro.txt notes.
    std::string trace = dir + "/trace.json";
    runChild(prog, pt, seed, fault, timeout, trace);
    bool have_trace = fs::exists(trace);

    std::ofstream out(dir + "/repro.txt");
    out << "graphite fuzz reproducer\n"
        << "seed        : " << hexU64(seed) << "\n"
        << "fault       : " << fault << "\n"
        << "config      : " << pt.name << " (processes=" << pt.processes
        << " sync=" << pt.syncModel << " slack=" << pt.slack
        << " dir=" << pt.directoryType << " line=" << pt.lineSize
        << " locking=" << pt.concurrency << ")\n"
        << "verdict     : " << ev.verdict << "\n"
        << "detail      : " << ev.detail << "\n"
        << "reproduce   : graphite_fuzz --seed-start " << seed
        << " --seed-count 1"
        << (fault != "none" ? " --fault " + fault : std::string())
        << "\n"
        << "trace       : "
        << (have_trace ? "trace.json"
                       : "(not flushed; child died before finalize)")
        << "\n"
        << "\nshrunk program (disabled entries marked (off)):\n\n"
        << prog.describe();
}

struct Opts
{
    std::uint64_t seedStart = 1;
    int seedCount = 16;
    int variants = 3;
    int timeout = 20;
    int shrinkBudget = 48;
    std::string fault;
    std::string artifacts = "fuzz-artifacts";
    std::string jsonPath;
    bool smoke = false;
    bool snapshotOnly = false;
};

void
appendJson(std::ofstream& js, std::uint64_t seed,
           const std::string& fault, const SeedEval& ev)
{
    if (!js.is_open())
        return;
    js << "{\"seed\":\"" << hexU64(seed) << "\",\"fault\":\"" << fault
       << "\",\"pass\":" << (ev.pass ? "true" : "false")
       << ",\"verdict\":\"" << ev.verdict << "\",\"config\":\""
       << (ev.pass ? "" : ev.failPoint.name) << "\",\"runs\":"
       << ev.runs << "}\n";
}

/// Clean differential sweep. Returns the number of failing seeds.
int
runSweep(const Opts& o, std::ofstream& js)
{
    GenLimits limits;
    int failures = 0;
    for (int i = 0; i < o.seedCount; ++i) {
        std::uint64_t seed = o.seedStart + static_cast<std::uint64_t>(i);
        SeedEval ev =
            evaluateSeed(seed, o.variants, "none", limits, o.timeout);
        appendJson(js, seed, "none", ev);
        if (ev.pass)
            continue;
        ++failures;
        std::printf("FAIL seed %s on %s: %s (%s)\n",
                    hexU64(seed).c_str(), ev.failPoint.name.c_str(),
                    ev.verdict.c_str(), ev.detail.c_str());
        int trials = 0, runs = 0;
        FuzzProgram shrunk = shrink(FuzzProgram::generate(seed, limits),
                                    ev.failPoint, seed, "none",
                                    o.timeout, o.shrinkBudget, trials,
                                    runs);
        std::string dir = o.artifacts + "/seed_" + hexU64(seed);
        writeArtifacts(dir, shrunk, ev.failPoint, seed, "none", ev,
                       o.timeout);
        std::printf("     reproducer in %s (%d shrink trials, "
                    "%zu actions left)\n",
                    dir.c_str(), trials, shrunk.enabledActions());
    }
    std::printf("sweep: %d/%d seeds clean\n", o.seedCount - failures,
                o.seedCount);
    return failures;
}

/**
 * Detection drill for one fault mode: walk seeds until the harness
 * flags one, then shrink and write the reproducer. Returns true if the
 * mode was detected within the seed budget.
 */
bool
drillMode(const Opts& o, const std::string& mode, std::ofstream& js)
{
    GenLimits limits;
    for (int i = 0; i < o.seedCount; ++i) {
        std::uint64_t seed = o.seedStart + static_cast<std::uint64_t>(i);
        SeedEval ev =
            evaluateSeed(seed, o.variants, mode, limits, o.timeout);
        appendJson(js, seed, mode, ev);
        if (ev.pass)
            continue;
        std::printf("fault %-20s detected at seed %s on %s (%s)\n",
                    mode.c_str(), hexU64(seed).c_str(),
                    ev.failPoint.name.c_str(), ev.verdict.c_str());
        int trials = 0, runs = 0;
        FuzzProgram shrunk = shrink(FuzzProgram::generate(seed, limits),
                                    ev.failPoint, seed, mode, o.timeout,
                                    o.shrinkBudget, trials, runs);
        std::string dir =
            o.artifacts + "/seed_" + hexU64(seed) + "_" + mode;
        writeArtifacts(dir, shrunk, ev.failPoint, seed, mode, ev,
                       o.timeout);
        std::printf("     reproducer in %s (%d shrink trials, "
                    "%zu actions left)\n",
                    dir.c_str(), trials, shrunk.enabledActions());
        return true;
    }
    std::printf("fault %-20s NOT detected in %d seeds\n", mode.c_str(),
                o.seedCount);
    return false;
}

int
runDrill(const Opts& o, std::ofstream& js)
{
    std::vector<std::string> modes;
    if (o.fault == "all") {
        for (FaultMode m : FaultPlan::allModes())
            modes.push_back(FaultPlan::modeName(m));
    } else {
        FaultPlan::parseMode(o.fault); // validates; fatals on unknown
        modes.push_back(o.fault);
    }
    int undetected = 0;
    for (const std::string& m : modes) {
        if (!drillMode(o, m, js))
            ++undetected;
    }
    return undetected;
}

/**
 * Checkpoint/resume differential for one seed. The uninterrupted run
 * of each config cell is the reference; the paired-pause run (two
 * run() segments, one Simulator) and the through-snapshot run (save,
 * destroy, restore into a fresh Simulator) must reproduce its
 * fingerprint, and under the deterministic scheduler the two segmented
 * runs must agree cycle for cycle. Race/span/fault oracles stay off so
 * any divergence indicts the checkpoint alone.
 */
SeedEval
evaluateSnapshotSeed(std::uint64_t seed, int variants, int timeout)
{
    SeedEval ev;
    FuzzProgram prog = FuzzProgram::generate(seed);
    if (prog.rounds.size() < 2)
        return ev; // no interior round boundary to split at
    const int split = static_cast<int>(prog.rounds.size() / 2);

    std::vector<ConfigPoint> matrix = sampleMatrix(seed, variants);
    struct HostCell
    {
        const char* mode;
        int threads;
    };
    static const HostCell HOSTS[] = {
        {"free_running", 2}, {"deterministic", 1}, {"deterministic", 4}};

    for (ConfigPoint pt : matrix) {
        pt.race = false;
        pt.spans = false;

        ChildResult plain =
            runChild(prog, pt, seed, "none", timeout);
        ++ev.runs;
        if (plain.status != 'O') {
            ev.pass = false;
            ev.verdict = verdictName(plain.status);
            ev.detail = plain.message;
            ev.failPoint = pt;
            return ev;
        }
        ev.baselineFp = plain.fingerprint;

        for (const HostCell& host : HOSTS) {
            SegSpec paired{split, false, host.mode, host.threads};
            SegSpec snap{split, true, host.mode, host.threads};
            ChildResult pr =
                runChild(prog, pt, seed, "none", timeout, "", paired);
            ChildResult sr =
                runChild(prog, pt, seed, "none", timeout, "", snap);
            ev.runs += 2;

            auto fail = [&](const std::string& verdict,
                            const std::string& detail) {
                ev.pass = false;
                ev.verdict = verdict;
                ev.detail = strfmt("{}/{}t: {}", host.mode,
                                   host.threads, detail);
                ev.failPoint = pt;
            };
            if (pr.status != 'O') {
                fail(verdictName(pr.status), pr.message);
                return ev;
            }
            if (sr.status != 'O') {
                fail(verdictName(sr.status), sr.message);
                return ev;
            }
            if (pr.fingerprint != plain.fingerprint ||
                sr.fingerprint != plain.fingerprint) {
                fail("snapshot-mismatch",
                     strfmt("paired fp {} / snapshot fp {} vs "
                            "uninterrupted {}",
                            hexU64(pr.fingerprint),
                            hexU64(sr.fingerprint),
                            hexU64(plain.fingerprint)));
                return ev;
            }
            if (std::string(host.mode) == "deterministic" &&
                sr.cycles != pr.cycles) {
                fail("snapshot-cycle-drift",
                     strfmt("snapshot resume ran {} cycles, paired "
                            "reference {}",
                            sr.cycles, pr.cycles));
                return ev;
            }
        }
    }
    return ev;
}

/// Checkpoint/resume differential sweep. Returns failing seed count.
int
runSnapshotSweep(const Opts& o, std::ofstream& js)
{
    int failures = 0;
    for (int i = 0; i < o.seedCount; ++i) {
        std::uint64_t seed = o.seedStart + static_cast<std::uint64_t>(i);
        SeedEval ev = evaluateSnapshotSeed(seed, o.variants, o.timeout);
        appendJson(js, seed, "snapshot", ev);
        if (ev.pass)
            continue;
        ++failures;
        std::printf("FAIL snapshot seed %s on %s: %s (%s)\n",
                    hexU64(seed).c_str(), ev.failPoint.name.c_str(),
                    ev.verdict.c_str(), ev.detail.c_str());
    }
    std::printf("snapshot sweep: %d/%d seeds clean\n",
                o.seedCount - failures, o.seedCount);
    return failures;
}

int
runSmoke(Opts o, std::ofstream& js)
{
    o.seedStart = 1;
    o.seedCount = 32;
    o.variants = 2;
    o.shrinkBudget = 64;
    int failures = runSweep(o, js);

    o.fault = "all";
    failures += runDrill(o, js);

    // Checkpoint/resume differential over a smaller seed band: each
    // seed costs 3 cells x (1 + 3x2) fork-isolated runs.
    Opts snap_opts = o;
    snap_opts.seedCount = 6;
    failures += runSnapshotSweep(snap_opts, js);
    std::printf("smoke: %s\n", failures == 0 ? "PASS" : "FAIL");
    return failures;
}

void
usage(const char* argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--seed-start N] [--seed-count N] [--variants N]\n"
        "          [--fault MODE|all] [--smoke] [--snapshot]\n"
        "          [--artifacts DIR] [--json PATH] [--timeout SEC]\n"
        "          [--shrink-budget N]\n",
        argv0);
}

} // namespace

int
main(int argc, char** argv)
{
    Opts o;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> const char* {
            if (i + 1 >= argc) {
                usage(argv[0]);
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "--seed-start")
            o.seedStart = std::strtoull(next(), nullptr, 0);
        else if (a == "--seed-count")
            o.seedCount = std::atoi(next());
        else if (a == "--variants")
            o.variants = std::atoi(next());
        else if (a == "--fault")
            o.fault = next();
        else if (a == "--artifacts")
            o.artifacts = next();
        else if (a == "--json")
            o.jsonPath = next();
        else if (a == "--timeout")
            o.timeout = std::atoi(next());
        else if (a == "--shrink-budget")
            o.shrinkBudget = std::atoi(next());
        else if (a == "--smoke")
            o.smoke = true;
        else if (a == "--snapshot")
            o.snapshotOnly = true;
        else {
            usage(argv[0]);
            return 2;
        }
    }

    std::ofstream js;
    if (!o.jsonPath.empty()) {
        js.open(o.jsonPath);
        if (!js) {
            std::fprintf(stderr, "fuzz: cannot open %s\n",
                         o.jsonPath.c_str());
            return 2;
        }
    }

    try {
        int failures;
        if (o.smoke)
            failures = runSmoke(o, js);
        else if (o.snapshotOnly)
            failures = runSnapshotSweep(o, js);
        else if (!o.fault.empty())
            failures = runDrill(o, js);
        else
            failures = runSweep(o, js);
        return failures == 0 ? 0 : 1;
    } catch (const FatalError& e) {
        std::fprintf(stderr, "fuzz: %s\n", e.what());
        return 2;
    }
}
