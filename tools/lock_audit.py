#!/usr/bin/env python3
"""Static lock-discipline auditor (the build-time half of lockdep).

Checks, over every C++ file under src/:

  1. No raw locking primitives (std::mutex, std::scoped_lock,
     std::lock_guard, std::unique_lock, std::condition_variable,
     recursive/timed/shared variants, pthread mutexes) outside the
     lockdep layer itself — everything must go through
     lockdep::OrderedMutex / Guard / UniqueLock / CondVar so the
     runtime order checker sees every acquisition.
  2. Every lockdep::LockClass::<name> referenced in source is declared
     in src/common/lock_order.def, and every declared class is
     referenced at least once (a stale declaration hides rank gaps).
  3. The declared hierarchy parses cleanly (no duplicate classes, only
     known flags) and the implied ordering graph is acyclic.
  4. Every OrderedMutex declaration names its LockClass at
     construction (no default-constructed untagged mutexes).

Exit status: 0 clean, 1 violations (each printed as file:line: msg),
2 usage/environment error.
"""

import argparse
import pathlib
import re
import sys

RAW_PRIMITIVES = [
    "std::mutex",
    "std::recursive_mutex",
    "std::timed_mutex",
    "std::recursive_timed_mutex",
    "std::shared_mutex",
    "std::shared_timed_mutex",
    "std::scoped_lock",
    "std::lock_guard",
    "std::unique_lock",
    "std::shared_lock",
    "std::condition_variable",
    "std::condition_variable_any",
    "pthread_mutex_t",
    "pthread_cond_t",
]

# The lockdep layer itself is the one place raw primitives are legal
# (its internal meta/report mutexes must not be self-tracked).
ALLOWLIST = {
    "src/common/lockdep.h",
    "src/common/lockdep.cpp",
}

VALID_FLAGS = {"NONE", "ORDERED", "MULTI"}

CLASS_DECL_RE = re.compile(r"^\s*LOCK_CLASS\(\s*(\w+)\s*,\s*(\w+)\s*\)")
CLASS_REF_RE = re.compile(r"\bLockClass::(\w+)\b")
UNTAGGED_MUTEX_RE = re.compile(
    r"\bOrderedMutex\s+\w+\s*;")
ACQUISITION_RE = re.compile(
    r"\block(?:dep::Guard|dep::UniqueLock)\b|\.lock\(|\.try_lock\(")


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving line
    structure so reported line numbers stay exact."""
    out = []
    i, n = 0, len(text)
    state = None  # None | 'line' | 'block' | '"' | "'"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state is None:
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c in "\"'":
                state = c
                out.append(c)
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = None
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = None
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        else:  # inside a literal
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == state:
                state = None
            out.append(c if c in (state, "\n", "\"", "'") else " ")
        i += 1
    return "".join(out)


def parse_lock_order(def_path: pathlib.Path):
    """Return ([(name, flags)], errors) from lock_order.def."""
    classes = []
    errors = []
    seen = set()
    for lineno, line in enumerate(
            def_path.read_text().splitlines(), start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("//"):
            continue
        m = CLASS_DECL_RE.match(line)
        if m is None:
            if "LOCK_CLASS" in line:
                errors.append(f"{def_path}:{lineno}: malformed "
                              f"LOCK_CLASS declaration: {stripped}")
            continue
        name, flags = m.group(1), m.group(2)
        if name in seen:
            errors.append(f"{def_path}:{lineno}: duplicate lock class "
                          f"'{name}' (ranks would conflict)")
        seen.add(name)
        if flags not in VALID_FLAGS:
            errors.append(f"{def_path}:{lineno}: unknown flags "
                          f"'{flags}' for class '{name}' "
                          f"(expected one of {sorted(VALID_FLAGS)})")
        classes.append((name, flags))
    if not classes:
        errors.append(f"{def_path}: no LOCK_CLASS declarations found")
    return classes, errors


def check_acyclic(classes):
    """The .def implies edges rank(i) -> rank(j) for i < j; run a real
    topological sort over them so the gate still holds if the format
    ever grows explicit edge declarations."""
    names = [name for name, _ in classes]
    edges = {name: set(names[i + 1:]) for i, name in enumerate(names)}
    indeg = {name: 0 for name in names}
    for src, dsts in edges.items():
        for dst in dsts:
            indeg[dst] += 1
    ready = [n for n in names if indeg[n] == 0]
    visited = 0
    while ready:
        n = ready.pop()
        visited += 1
        for dst in edges[n]:
            indeg[dst] -= 1
            if indeg[dst] == 0:
                ready.append(dst)
    if visited != len(names):
        stuck = sorted(n for n in names if indeg[n] > 0)
        return [f"lock_order.def: declared hierarchy contains a cycle "
                f"involving: {', '.join(stuck)}"]
    return []


def audit(repo_root: pathlib.Path):
    src = repo_root / "src"
    def_path = src / "common" / "lock_order.def"
    errors = []
    if not def_path.is_file():
        return [f"{def_path}: missing lock hierarchy declaration"], 0

    classes, errors_def = parse_lock_order(def_path)
    errors.extend(errors_def)
    errors.extend(check_acyclic(classes))
    declared = {name for name, _ in classes}

    referenced = {}
    acquisition_sites = 0
    files_scanned = 0
    for path in sorted(src.rglob("*")):
        if path.suffix not in (".h", ".cpp"):
            continue
        rel = path.relative_to(repo_root).as_posix()
        files_scanned += 1
        text = strip_comments_and_strings(path.read_text())
        lines = text.splitlines()
        allowlisted = rel in ALLOWLIST
        for lineno, line in enumerate(lines, start=1):
            if not allowlisted:
                for prim in RAW_PRIMITIVES:
                    if re.search(rf"{re.escape(prim)}\b", line):
                        errors.append(
                            f"{rel}:{lineno}: raw '{prim}' outside "
                            f"the lockdep layer — use "
                            f"lockdep::OrderedMutex/Guard/UniqueLock/"
                            f"CondVar (see src/common/lockdep.h)")
            for m in CLASS_REF_RE.finditer(line):
                referenced.setdefault(m.group(1), f"{rel}:{lineno}")
            if UNTAGGED_MUTEX_RE.search(line):
                errors.append(
                    f"{rel}:{lineno}: OrderedMutex declared without a "
                    f"LockClass — tag it at construction")
            acquisition_sites += len(ACQUISITION_RE.findall(line))

    # lockdep.h materializes the enum from the .def, so its references
    # are definitionally complete; drop the X-macro artifacts.
    referenced.pop("COUNT", None)
    referenced.pop("name", None)

    for name, where in sorted(referenced.items()):
        if name not in declared:
            errors.append(
                f"{where}: lock class '{name}' is not declared in "
                f"src/common/lock_order.def")
    for name in sorted(declared):
        if name not in referenced:
            errors.append(
                f"{def_path.relative_to(repo_root)}: declared lock "
                f"class '{name}' is never used — remove it or convert "
                f"the mutex it was meant for")
    stats = (f"lock_audit: {files_scanned} files, "
             f"{len(declared)} lock classes, "
             f"{len(referenced)} referenced, "
             f"{acquisition_sites} acquisition sites")
    return errors, stats


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repo-root", default=None,
                        help="repository root (default: parent of "
                             "this script's directory)")
    args = parser.parse_args()
    root = (pathlib.Path(args.repo_root).resolve()
            if args.repo_root
            else pathlib.Path(__file__).resolve().parent.parent)
    if not (root / "src").is_dir():
        print(f"lock_audit: no src/ under {root}", file=sys.stderr)
        return 2
    errors, stats = audit(root)
    if errors:
        for e in errors:
            print(e)
        print(f"lock_audit: FAILED with {len(errors)} violation(s)")
        return 1
    print(stats)
    print("lock_audit: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
