#!/usr/bin/env python3
"""Drive the graphite differential fuzz harness.

Two modes:

  --smoke     Run the bounded smoke suite (32-seed clean sweep plus a
              detection drill for every injectable fault mode), then
              validate every reproducer artifact: repro.txt present and
              any flushed trace.json passes the --replay checks of
              check_trace.py. This is what the `fuzz_smoke` ctest runs.

  (default)   Long local sweep: shard [--start, --start+--count) across
              --jobs parallel graphite_fuzz processes, merge the
              per-seed JSON-lines results into --out, and summarize.

Examples:
    run_fuzz.py --fuzz-bin build/graphite_fuzz --smoke
    run_fuzz.py --fuzz-bin build/graphite_fuzz --start 1 \
                --count 5000 --jobs 8 --out sweep.jsonl
"""

import argparse
import importlib.util
import json
import os
import subprocess
import sys
import tempfile


def fail(msg):
    print(f"run_fuzz: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load_check_trace(path):
    if path is None:
        path = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            "check_trace.py")
    spec = importlib.util.spec_from_file_location("check_trace", path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def validate_artifacts(artifacts, check_trace_mod):
    """Every reproducer dir needs repro.txt; traces must replay clean."""
    if not os.path.isdir(artifacts):
        fail(f"no artifact directory {artifacts}")
    dirs = sorted(
        d for d in os.listdir(artifacts)
        if os.path.isdir(os.path.join(artifacts, d)))
    if not dirs:
        fail(f"no reproducer directories under {artifacts}")
    traces = 0
    for d in dirs:
        repro = os.path.join(artifacts, d, "repro.txt")
        if not os.path.isfile(repro) or os.path.getsize(repro) == 0:
            fail(f"{d}: missing or empty repro.txt")
        with open(repro, "r", encoding="utf-8") as f:
            text = f.read()
        if "shrunk program" not in text:
            fail(f"{d}: repro.txt has no shrunk program listing")
        trace = os.path.join(artifacts, d, "trace.json")
        if os.path.isfile(trace):
            check_trace_mod.check_replay(trace)
            traces += 1
    print(f"run_fuzz: {len(dirs)} reproducers OK "
          f"({traces} with replay traces)")
    return dirs


def run_smoke(args, check_trace_mod):
    cmd = [args.fuzz_bin, "--smoke", "--artifacts", args.artifacts]
    print("run_fuzz:", " ".join(cmd))
    r = subprocess.run(cmd, text=True, timeout=args.timeout)
    if r.returncode != 0:
        fail(f"graphite_fuzz --smoke exited {r.returncode}")

    dirs = validate_artifacts(args.artifacts, check_trace_mod)
    # The drill writes one reproducer per fault mode; all four must be
    # present for the smoke to count as detection-complete.
    modes = ["drop_invalidation", "stale_dram_fill", "lost_writeback",
             "skip_release_fence"]
    for mode in modes:
        if not any(d.endswith("_" + mode) for d in dirs):
            fail(f"no reproducer for fault mode {mode}")
    print("run_fuzz: smoke PASS")


def run_sweep(args):
    jobs = max(1, args.jobs)
    chunk = (args.count + jobs - 1) // jobs
    procs = []
    tmpdir = tempfile.mkdtemp(prefix="graphite-fuzz-")
    for j in range(jobs):
        start = args.start + j * chunk
        count = min(chunk, args.start + args.count - start)
        if count <= 0:
            break
        jpath = os.path.join(tmpdir, f"shard{j}.jsonl")
        cmd = [args.fuzz_bin,
               "--seed-start", str(start),
               "--seed-count", str(count),
               "--variants", str(args.variants),
               "--artifacts", args.artifacts,
               "--json", jpath]
        procs.append((subprocess.Popen(cmd), jpath, start, count))
    print(f"run_fuzz: {len(procs)} shards x ~{chunk} seeds")

    results = []
    failed_shards = 0
    for p, jpath, start, count in procs:
        rc = p.wait()
        if rc not in (0, 1):
            print(f"run_fuzz: shard at seed {start} exited {rc}",
                  file=sys.stderr)
            failed_shards += 1
        if os.path.isfile(jpath):
            with open(jpath, "r", encoding="utf-8") as f:
                for line in f:
                    line = line.strip()
                    if line:
                        results.append(json.loads(line))

    results.sort(key=lambda r: int(r["seed"], 16))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as f:
            for r in results:
                f.write(json.dumps(r) + "\n")

    failures = [r for r in results if not r["pass"]]
    print(f"run_fuzz: {len(results)} seeds, {len(failures)} failing")
    for r in failures[:20]:
        print(f"  seed {r['seed']}: {r['verdict']} on {r['config']}")
    if failures:
        print(f"run_fuzz: reproducers under {args.artifacts}/")
    sys.exit(1 if (failures or failed_shards) else 0)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--fuzz-bin", required=True,
                    help="path to the graphite_fuzz binary")
    ap.add_argument("--smoke", action="store_true",
                    help="run the bounded smoke suite")
    ap.add_argument("--artifacts", default="fuzz-artifacts")
    ap.add_argument("--check-trace", default=None,
                    help="path to check_trace.py (default: sibling)")
    ap.add_argument("--start", type=int, default=1)
    ap.add_argument("--count", type=int, default=256)
    ap.add_argument("--variants", type=int, default=3)
    ap.add_argument("--jobs", type=int, default=os.cpu_count() or 4)
    ap.add_argument("--out", default=None,
                    help="merged JSON-lines results path")
    ap.add_argument("--timeout", type=int, default=600)
    args = ap.parse_args()

    if args.smoke:
        run_smoke(args, load_check_trace(args.check_trace))
    else:
        run_sweep(args)


if __name__ == "__main__":
    main()
