#!/usr/bin/env python3
"""Pretty-print a race-detector report (race/report_out JSONL).

The simulator's happens-before detector (src/race) writes one JSON
object per deduplicated race record. This tool groups those records by
conflicting site pair, sorts by dynamic hit count, and prints a compact
human-readable summary:

    race_report.py races.jsonl
    race_report.py --json races.jsonl      # machine-readable groups
    race_report.py --min-count 10 races.jsonl

Sites are the labels installed with api::annotateSite(); unlabelled
accesses show as "?". Exit status is 1 when any race is present, so the
tool doubles as a scriptable gate:

    graphite_cli --workload fft --race --race-out races.jsonl \
        && race_report.py races.jsonl
"""

import argparse
import json
import sys

KIND_NAMES = {
    "ww": "write-write",
    "rw": "read-write",
    "wr": "write-read",
}


def load_records(path):
    records = []
    with open(path, "r", encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as err:
                print(f"race_report: {path}:{lineno}: bad JSON: {err}",
                      file=sys.stderr)
                sys.exit(2)
            for key in ("kind", "addr", "prev_tile", "cur_tile",
                        "prev_site", "cur_site", "cycle", "count"):
                if key not in rec:
                    print(f"race_report: {path}:{lineno}: "
                          f"missing key '{key}'", file=sys.stderr)
                    sys.exit(2)
            records.append(rec)
    return records


def group_records(records):
    """Group by (kind, prev_site, cur_site); the detector already
    dedups per (addr, kind, site-pair), so this folds the remaining
    per-address records of one logical bug into a single row."""
    groups = {}
    for rec in records:
        key = (rec["kind"], rec["prev_site"], rec["cur_site"])
        g = groups.setdefault(key, {
            "kind": rec["kind"],
            "prev_site": rec["prev_site"],
            "cur_site": rec["cur_site"],
            "count": 0,
            "addrs": set(),
            "tiles": set(),
            "first_cycle": rec["cycle"],
        })
        g["count"] += rec["count"]
        g["addrs"].add(rec["addr"])
        g["tiles"].add(rec["prev_tile"])
        g["tiles"].add(rec["cur_tile"])
        g["first_cycle"] = min(g["first_cycle"], rec["cycle"])
    out = list(groups.values())
    out.sort(key=lambda g: (-g["count"], g["first_cycle"]))
    return out


def fmt_addrs(addrs, limit=4):
    shown = ", ".join(f"0x{a:x}" for a in sorted(addrs)[:limit])
    if len(addrs) > limit:
        shown += f", ... ({len(addrs)} addresses)"
    return shown


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("report", help="race/report_out JSONL file")
    ap.add_argument("--json", action="store_true",
                    help="emit grouped records as JSON")
    ap.add_argument("--min-count", type=int, default=1,
                    help="hide groups with fewer dynamic hits")
    args = ap.parse_args()

    records = load_records(args.report)
    groups = [g for g in group_records(records)
              if g["count"] >= args.min_count]

    if args.json:
        for g in groups:
            g = dict(g, addrs=sorted(g["addrs"]),
                     tiles=sorted(g["tiles"]))
            print(json.dumps(g))
        sys.exit(1 if records else 0)

    if not records:
        print("race_report: no races recorded")
        sys.exit(0)

    total = sum(r["count"] for r in records)
    print(f"race_report: {len(records)} records, {len(groups)} site "
          f"pairs, {total} dynamic hits\n")
    for i, g in enumerate(groups, 1):
        kind = KIND_NAMES.get(g["kind"], g["kind"])
        tiles = ", ".join(str(t) for t in sorted(g["tiles"]))
        print(f"#{i} {kind} [{g['prev_site']}] vs [{g['cur_site']}] "
              f"x{g['count']}")
        print(f"    tiles {tiles}; first at cycle {g['first_cycle']}")
        print(f"    {fmt_addrs(g['addrs'])}")
    sys.exit(1)


if __name__ == "__main__":
    main()
