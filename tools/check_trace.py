#!/usr/bin/env python3
"""Validate graphite observability artifacts.

Checks that a Chrome trace_event JSON file is loadable and structurally
sound (the same constraints chrome://tracing and Perfetto impose), and
that an interval metrics CSV has the expected fixed columns plus numeric
data rows.

Usage:
    check_trace.py --trace trace.json [--metrics metrics.csv]
    check_trace.py --spans spans.jsonl
    check_trace.py --accuracy accuracy.jsonl
    check_trace.py --replay trace.json
    check_trace.py --run-cli PATH_TO_GRAPHITE_CLI

Flow events ('s'/'t'/'f', the span engine's Perfetto arrows) are
validated for well-formedness: every flow event carries an id and the
"span" category, every flow id has exactly one start and one finish
(finish at or after the start, binding enclosing with bp="e"), and
steps stay within [start, finish]. Dangling flow ids are fatal only
when the trace dropped no events; a lane ring that wrapped may
legitimately have lost one side of a pair.

The --spans mode validates a spans.jsonl dump written via --spans-out:
every record parses, carries the expected schema, and satisfies the
exact-accounting invariant (stage durations sum to the span total);
the summary row's stage_cycles must likewise sum to total_cycles.

The --replay mode validates a failure-replay trace written by the fuzz
harness: the structural checks above, plus per-thread non-overlap of
wait-class scopes (a thread cannot be in two blocking waits at once)
and the otherData recorded/dropped event accounting.

The --accuracy mode validates the accuracy observatory's JSONL report
(written via --accuracy-jsonl or accuracy/out): one summary line, one
line per violation point with known names, violation counts bounded by
delivery counts, and in-range pair-skew rows.

The --run-cli mode drives the full acceptance path: it runs a small
workload with tracing, metrics, and spans enabled in a temp directory,
validates all three artifacts (including span flow arrows in the
trace), then re-runs with observability disabled and asserts no
artifact files appear.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

VALID_PHASES = {"X", "i", "C", "M", "B", "E", "s", "t", "f"}
FLOW_PHASES = {"s", "t", "f"}
SPAN_KINDS = {"read_miss", "write_miss", "upgrade", "atomic",
              "writeback", "evict", "app_msg"}
SPAN_STAGES = {"local_check", "req_hop", "req_queue", "req_ser",
               "directory", "invalidation", "recall", "dram_queue",
               "dram_service", "reply_hop", "reply_queue", "reply_ser"}
# X scopes during which the emitting thread is blocked; two instances
# can never overlap on one lane. (Other X scopes, e.g. net.send, model
# in-flight latency and may legitimately overlap.)
WAIT_SCOPES = {"sys.wait", "msg.wait", "sync.barrier"}
FIXED_METRICS_COLUMNS = [
    "interval",
    "start_cycle",
    "end_cycle",
    "wall_seconds",
    "host_wall_ms",
    "host_rss_kb",
    "skew_max_cycles",
    "skew_min_cycles",
    "causality_violations",
]
VIOLATION_POINTS = {"net_app", "net_system", "net_memory",
                    "mem_request", "mem_invalidation", "mem_recall",
                    "mem_reply", "mem_writeback"}


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_trace(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: not loadable JSON: {e}")

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(f"{path}: missing traceEvents object wrapper")
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents must be a non-empty list")

    for i, ev in enumerate(events):
        where = f"{path}: event {i}"
        for key in ("name", "ph", "pid", "tid"):
            if key not in ev:
                fail(f"{where}: missing '{key}'")
        if ev["ph"] not in VALID_PHASES:
            fail(f"{where}: unknown phase {ev['ph']!r}")
        if ev["ph"] == "M":
            continue  # metadata events carry no timestamp
        if "ts" not in ev:
            fail(f"{where}: missing 'ts'")
        if not isinstance(ev["ts"], (int, float)) or ev["ts"] < 0:
            fail(f"{where}: bad ts {ev['ts']!r}")
        if ev["ph"] == "X":
            if "dur" not in ev or ev["dur"] < 0:
                fail(f"{where}: complete event needs non-negative dur")
        if ev["ph"] == "C":
            if "args" not in ev or "value" not in ev["args"]:
                fail(f"{where}: counter event needs args.value")
        if ev["ph"] in FLOW_PHASES:
            if "id" not in ev or not isinstance(ev["id"], int):
                fail(f"{where}: flow event needs an integer id")
            if ev.get("cat") != "span":
                fail(f"{where}: flow event needs cat 'span'")
            if ev["ph"] == "f" and ev.get("bp") != "e":
                fail(f"{where}: flow finish needs bp 'e'")

    check_flows(path, doc)

    counts = {}
    for ev in events:
        counts[ev["ph"]] = counts.get(ev["ph"], 0) + 1
    print(f"check_trace: {path}: {len(events)} events OK {counts}")
    return doc


def check_flows(path, doc):
    """Flow pairing: one 's' and one 'f' per id, steps in between."""
    events = doc["traceEvents"]
    flows = {}
    for i, ev in enumerate(events):
        if ev["ph"] in FLOW_PHASES:
            flows.setdefault(ev["id"], []).append((ev["ph"], ev["ts"], i))
    if not flows:
        return
    dropped = doc.get("otherData", {}).get("droppedEvents", 0)
    dangling = 0
    for fid, evs in flows.items():
        starts = [e for e in evs if e[0] == "s"]
        finishes = [e for e in evs if e[0] == "f"]
        if len(starts) > 1 or len(finishes) > 1:
            fail(f"{path}: flow id {fid}: duplicate start/finish")
        if not starts or not finishes:
            dangling += 1
            continue
        s_ts, f_ts = starts[0][1], finishes[0][1]
        if f_ts < s_ts:
            fail(f"{path}: flow id {fid}: finish ts {f_ts} before "
                 f"start ts {s_ts}")
        for ph, ts, i in evs:
            if ph == "t" and not (s_ts <= ts <= f_ts):
                fail(f"{path}: flow id {fid}: step ts {ts} outside "
                     f"[{s_ts}, {f_ts}]")
    if dangling and not dropped:
        fail(f"{path}: {dangling} dangling flow ids with no dropped "
             f"events to explain them")
    print(f"check_trace: {path}: {len(flows)} flow ids OK "
          f"({dangling} unpaired, {dropped} events dropped)")


def check_replay(path):
    """Failure-replay traces: nesting + event accounting."""
    doc = check_trace(path)
    events = doc["traceEvents"]

    # A thread is blocked for the whole span of a wait-class scope, so
    # per (tid, name) the spans must be disjoint.
    spans = {}
    for ev in events:
        if ev["ph"] == "X" and ev["name"] in WAIT_SCOPES:
            spans.setdefault((ev["tid"], ev["name"]), []).append(
                (ev["ts"], ev["ts"] + ev["dur"]))
    overlaps = 0
    for (tid, name), ivs in spans.items():
        ivs.sort()
        for (s0, e0), (s1, _) in zip(ivs, ivs[1:]):
            if s1 < e0:
                overlaps += 1
                print(f"check_trace: {path}: tid {tid} '{name}' "
                      f"[{s1},...) overlaps [{s0},{e0})",
                      file=sys.stderr)
    if overlaps:
        fail(f"{path}: {overlaps} overlapping wait scopes")

    other = doc.get("otherData")
    if not isinstance(other, dict):
        fail(f"{path}: missing otherData")
    for key in ("recordedEvents", "droppedEvents"):
        if not isinstance(other.get(key), int) or other[key] < 0:
            fail(f"{path}: otherData.{key} missing or negative")
    emitted = sum(1 for ev in events if ev["ph"] != "M")
    if other["recordedEvents"] != emitted:
        fail(f"{path}: otherData.recordedEvents {other['recordedEvents']}"
             f" != {emitted} non-metadata events in file")
    n_waits = sum(len(v) for v in spans.values())
    print(f"check_trace: {path}: replay OK ({n_waits} wait scopes "
          f"disjoint, {other['recordedEvents']} recorded, "
          f"{other['droppedEvents']} dropped)")


def check_metrics(path, require_columns=()):
    try:
        with open(path, "r", encoding="utf-8") as f:
            lines = [ln for ln in f.read().splitlines() if ln]
    except OSError as e:
        fail(f"{path}: unreadable: {e}")
    if len(lines) < 2:
        fail(f"{path}: need a header and at least one data row")

    header = lines[0].split(",")
    if header[: len(FIXED_METRICS_COLUMNS)] != FIXED_METRICS_COLUMNS:
        fail(f"{path}: fixed lead columns wrong: "
             f"{header[:len(FIXED_METRICS_COLUMNS)]}")
    for col in require_columns:
        if col not in header:
            fail(f"{path}: required column '{col}' missing")

    for i, line in enumerate(lines[1:], start=1):
        cells = line.split(",")
        if len(cells) != len(header):
            fail(f"{path}: row {i}: {len(cells)} cells vs "
                 f"{len(header)} columns")
        try:
            [float(c) for c in cells]
        except ValueError:
            fail(f"{path}: row {i}: non-numeric cell")
        if int(cells[0]) != i - 1:
            fail(f"{path}: row {i}: interval index out of order")

    print(f"check_trace: {path}: {len(lines) - 1} metric rows x "
          f"{len(header)} columns OK")


def check_spans(path):
    """spans.jsonl: schema + exact accounting per span and in summary."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            lines = [ln for ln in f.read().splitlines() if ln]
    except OSError as e:
        fail(f"{path}: unreadable: {e}. Generate one with "
             "graphite_cli --spans-out PATH.")
    if not lines:
        fail(f"{path}: empty spans file — the run wrote no spans. "
             "Was --spans-out set and did the run finish?")

    n_spans = 0
    summary = None
    for i, line in enumerate(lines):
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as e:
            fail(f"{path}: line {i}: not JSON: {e}")
        kind = rec.get("type")
        if kind == "span":
            n_spans += 1
            for key in ("set", "trace", "span", "parent", "kind",
                        "requester", "home", "distance", "start", "end",
                        "total", "skew", "folded", "stages"):
                if key not in rec:
                    fail(f"{path}: line {i}: span missing '{key}'")
            if rec["kind"] not in SPAN_KINDS:
                fail(f"{path}: line {i}: unknown kind {rec['kind']!r}")
            if rec["span"] == 0:
                fail(f"{path}: line {i}: span id 0")
            if rec["total"] != rec["end"] - rec["start"]:
                fail(f"{path}: line {i}: total != end - start")
            stage_sum = 0
            for st in rec["stages"]:
                if st["stage"] not in SPAN_STAGES:
                    fail(f"{path}: line {i}: unknown stage "
                         f"{st['stage']!r}")
                if st["dur"] < 0 or st["begin"] < rec["start"]:
                    fail(f"{path}: line {i}: bad stage mark {st}")
                stage_sum += st["dur"]
            if stage_sum != rec["total"]:
                fail(f"{path}: line {i}: stage sum {stage_sum} != "
                     f"total {rec['total']} (exact accounting broken)")
        elif kind == "interval":
            if sum(rec["stage_cycles"].values()) != rec["total_cycles"]:
                fail(f"{path}: line {i}: interval stage_cycles do not "
                     f"sum to total_cycles")
        elif kind == "summary":
            if summary is not None:
                fail(f"{path}: line {i}: duplicate summary row")
            summary = rec
            if sum(rec["stage_cycles"].values()) != rec["total_cycles"]:
                fail(f"{path}: line {i}: summary stage_cycles do not "
                     f"sum to total_cycles")
            kind_cycles = sum(v["cycles"] for v in rec["kinds"].values())
            if kind_cycles != rec["total_cycles"]:
                fail(f"{path}: line {i}: per-kind cycles {kind_cycles} "
                     f"!= total_cycles {rec['total_cycles']}")
        else:
            fail(f"{path}: line {i}: unknown record type {kind!r}")
    if summary is None:
        fail(f"{path}: no summary row")
    if summary["sampled"] and not n_spans:
        fail(f"{path}: summary claims samples but file has none")
    print(f"check_trace: {path}: {n_spans} span records OK "
          f"({summary['completed']} completed, bottleneck "
          f"{summary['bottleneck']})")
    return summary


def check_accuracy(path):
    """accuracy.jsonl: summary + per-point + pair-skew schema checks."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            lines = [ln for ln in f.read().splitlines() if ln]
    except OSError as e:
        fail(f"{path}: unreadable: {e}. Generate one with "
             "graphite_cli --accuracy-jsonl PATH.")
    if not lines:
        fail(f"{path}: empty accuracy report")

    summary = None
    points = {}
    n_pairs = 0
    for i, line in enumerate(lines):
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as e:
            fail(f"{path}: line {i}: not JSON: {e}")
        kind = rec.get("type")
        if kind == "accuracy_summary":
            if i != 0 or summary is not None:
                fail(f"{path}: line {i}: summary must be the first and "
                     f"only summary line")
            summary = rec
            for key in ("tiles", "deliveries", "violations",
                        "violation_fraction", "worst_magnitude_cycles",
                        "pair_skew_max_cycles", "pair_skew_mean_cycles",
                        "pair_samples"):
                if key not in rec:
                    fail(f"{path}: line {i}: summary missing '{key}'")
            if rec["violations"] > rec["deliveries"]:
                fail(f"{path}: line {i}: violations "
                     f"{rec['violations']} > deliveries "
                     f"{rec['deliveries']}")
        elif kind == "accuracy_point":
            for key in ("point", "deliveries", "violations",
                        "magnitude_p50", "magnitude_p95",
                        "magnitude_max"):
                if key not in rec:
                    fail(f"{path}: line {i}: point missing '{key}'")
            if rec["point"] not in VIOLATION_POINTS:
                fail(f"{path}: line {i}: unknown violation point "
                     f"{rec['point']!r}")
            if rec["point"] in points:
                fail(f"{path}: line {i}: duplicate point "
                     f"{rec['point']!r}")
            if rec["violations"] > rec["deliveries"]:
                fail(f"{path}: line {i}: point violations exceed "
                     f"deliveries")
            points[rec["point"]] = rec
        elif kind == "accuracy_pair":
            n_pairs += 1
            for key in ("src", "dst", "max_skew_cycles",
                        "mean_skew_cycles", "samples"):
                if key not in rec:
                    fail(f"{path}: line {i}: pair missing '{key}'")
            if summary is not None:
                n = summary["tiles"]
                if not (0 <= rec["src"] < n and 0 <= rec["dst"] < n):
                    fail(f"{path}: line {i}: pair ({rec['src']},"
                         f"{rec['dst']}) outside {n} tiles")
            if rec["samples"] <= 0:
                fail(f"{path}: line {i}: pair row with no samples")
            if rec["mean_skew_cycles"] > rec["max_skew_cycles"]:
                fail(f"{path}: line {i}: pair mean skew above max")
        else:
            fail(f"{path}: line {i}: unknown record type {kind!r}")
    if summary is None:
        fail(f"{path}: no accuracy_summary row")
    if set(points) != VIOLATION_POINTS:
        fail(f"{path}: points missing: "
             f"{sorted(VIOLATION_POINTS - set(points))}")
    point_v = sum(p["violations"] for p in points.values())
    if point_v != summary["violations"]:
        fail(f"{path}: per-point violations {point_v} != summary "
             f"{summary['violations']}")
    print(f"check_trace: {path}: accuracy report OK "
          f"({summary['violations']} violations / "
          f"{summary['deliveries']} deliveries, {n_pairs} pair rows)")
    return summary


def run_cli_mode(cli):
    workload = ["--workload", "fft", "--tiles", "8", "--threads", "8",
                "--size", "256"]
    with tempfile.TemporaryDirectory() as tmp:
        trace = os.path.join(tmp, "trace.json")
        metrics = os.path.join(tmp, "metrics.csv")
        spans = os.path.join(tmp, "spans.jsonl")
        accuracy = os.path.join(tmp, "accuracy.jsonl")
        cmd = [cli] + workload + [
            "--trace-out", trace,
            "--metrics-out", metrics,
            "--metrics-interval", "10000",
            "--spans-out", spans,
            "--accuracy-jsonl", accuracy,
        ]
        r = subprocess.run(cmd, capture_output=True, text=True,
                           timeout=300)
        if r.returncode != 0:
            fail(f"cli exited {r.returncode}:\n{r.stdout}\n{r.stderr}")
        doc = check_trace(trace)
        if not any(ev["ph"] == "s" for ev in doc["traceEvents"]):
            fail(f"{trace}: spans enabled but no flow events emitted")
        check_metrics(metrics, require_columns=[
            "mem.l2_misses_total", "tile.0.l2.misses", "sim.cycles_max",
            "mem.shard_lock.acquisitions", "mem.shard_lock.contended",
            "mem.shard_lock.wait_ns", "transport.queue_depth",
            "net.inflight_packets", "span.completed",
        ])
        summary = check_spans(spans)
        if summary["completed"] == 0:
            fail(f"{spans}: fft run completed no spans")
        acc = check_accuracy(accuracy)
        if acc["deliveries"] == 0:
            fail(f"{accuracy}: fft run checked no deliveries")

    # Disabled mode must create no artifact files.
    with tempfile.TemporaryDirectory() as tmp:
        r = subprocess.run([cli] + workload, capture_output=True,
                           text=True, timeout=300, cwd=tmp)
        if r.returncode != 0:
            fail(f"cli (disabled obs) exited {r.returncode}:"
                 f"\n{r.stdout}\n{r.stderr}")
        leftovers = os.listdir(tmp)
        if leftovers:
            fail(f"disabled run created files: {leftovers}")
    print("check_trace: disabled mode creates no artifacts OK")
    print("check_trace: PASS")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--trace", help="trace JSON to validate")
    ap.add_argument("--replay",
                    help="failure-replay trace JSON to validate")
    ap.add_argument("--metrics", help="metrics CSV to validate")
    ap.add_argument("--spans", help="spans.jsonl to validate")
    ap.add_argument("--accuracy", help="accuracy.jsonl to validate")
    ap.add_argument("--run-cli", metavar="PATH",
                    help="run graphite_cli end-to-end and validate")
    args = ap.parse_args()

    if args.run_cli:
        run_cli_mode(args.run_cli)
        return
    if (not args.trace and not args.metrics and not args.replay
            and not args.spans and not args.accuracy):
        ap.error("nothing to do: pass --trace, --replay, --metrics, "
                 "--spans, --accuracy, or --run-cli")
    if args.trace:
        check_trace(args.trace)
    if args.replay:
        check_replay(args.replay)
    if args.metrics:
        check_metrics(args.metrics)
    if args.spans:
        check_spans(args.spans)
    if args.accuracy:
        check_accuracy(args.accuracy)
    print("check_trace: PASS")


if __name__ == "__main__":
    main()
