#!/usr/bin/env bash
# One-stop local analysis gate (what CI runs as `ctest -L analysis`):
#
#   1. configure + build the default tree;
#   2. static audits: tools/lock_audit.py (lock hierarchy discipline)
#      and tools/config_audit.py (config keys vs documentation);
#      then quick unit/system tests (ctest -L quick) and the lockdep
#      runtime gate (ctest -L lockdep);
#      ... then the telemetry plane (ctest -L telemetry): unit suite +
#      the end-to-end HTTP scrape probe;
#   3. clang-tidy over every first-party TU (SKIPs when the toolchain
#      has no clang-tidy; see tools/run_tidy.py);
#   4. a UBSan build (-fno-sanitize-recover=undefined) running the
#      memory-system concurrency smoke (ubsan_smoke).
#
# Usage: tools/check_all.sh [build-dir]     (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
JOBS="$(nproc 2>/dev/null || echo 2)"

step() { printf '\n=== check_all: %s ===\n' "$*"; }

step "configure + build ($BUILD)"
cmake -B "$BUILD" -S . >/dev/null
cmake --build "$BUILD" -j "$JOBS"

step "static audits (lock hierarchy + config keys)"
# Hard gate: raw mutexes outside the lockdep layer, undeclared lock
# classes, a cyclic lock_order.def, undocumented or dead config keys
# all fail the build here before anything runs.
python3 tools/lock_audit.py
python3 tools/config_audit.py

step "quick tests"
ctest --test-dir "$BUILD" -L quick --output-on-failure -j "$JOBS"

step "lockdep gate (planted-inversion + disabled-build checks)"
ctest --test-dir "$BUILD" -L lockdep --output-on-failure

step "telemetry plane"
# Unit suite plus the end-to-end probe (CLI + HTTP scrape cross-check).
ctest --test-dir "$BUILD" -L telemetry --output-on-failure

step "accuracy observatory (causality detection + report schema)"
ctest --test-dir "$BUILD" -L accuracy --output-on-failure

step "overhead benchmarks (armed-vs-off budgets)"
# Fast mode keeps the gate cheap; each bench owns its pass criterion
# and bench_report.py rolls the BENCH_*.json verdicts into one table.
(cd "$BUILD" &&
    GRAPHITE_BENCH_FAST=1 ./bench/micro_accuracy_overhead >/dev/null)
python3 tools/bench_report.py --dir "$BUILD" \
    --require micro_accuracy_overhead

step "checkpoint/restore differential"
# Fingerprint-identical resume: segmented-through-snapshot runs vs
# uninterrupted runs across config cells and host widths, plus the
# golden on-disk format fixture.
ctest --test-dir "$BUILD" -R 'snapshot_smoke|test_snapshot' \
    --output-on-failure

step "clang-tidy"
# ctest maps run_tidy.py's exit 77 to SKIPPED on toolchains without
# clang-tidy; anything else must pass.
ctest --test-dir "$BUILD" -L tidy --output-on-failure

step "UBSan build + smoke ($BUILD-ubsan)"
cmake -B "$BUILD-ubsan" -S . -DGRAPHITE_SANITIZE=undefined >/dev/null
cmake --build "$BUILD-ubsan" -j "$JOBS" --target test_mem_concurrency
ctest --test-dir "$BUILD-ubsan" -L analysis --output-on-failure

step "PASS"
