#!/usr/bin/env python3
"""Static config-key auditor.

Cross-checks every config key the simulator reads against the keys
that are documented, so a typo'd read site ("perf_model/l2cache/...")
or an undocumented knob fails the analysis gate instead of silently
falling back to its default.

Key sources:
  - read sites: cfg.getString/getInt/getDouble/getBool("section/key")
    and cfg.has("...") literals anywhere under src/, plus slash-path
    string literals fed to helpers that forward to Config::get*.
  - documentation: graphite.cfg ([section] + "key = value" entries),
    the compiled-in defaultTargetConfig() text in
    src/common/config.cpp, and `section/key` spans in DESIGN.md.

Checks:
  1. Every key read in src/ is documented (graphite.cfg, the built-in
     default config, or DESIGN.md). A literal that is a section
     prefix of documented keys (caches compose "perf_model/l2_cache"
     + "/cache_size") counts as documented.
  2. Every key in graphite.cfg is actually read somewhere (catches
     typos and dead knobs on the documentation side); keys covered by
     a composed section-prefix read count as read.

Exit status: 0 clean, 1 violations, 2 usage error.
"""

import argparse
import pathlib
import re
import sys

GET_RE = re.compile(
    r"\b(?:getString|getInt|getDouble|getBool|has)\(\s*\"([^\"]+)\"")
# Bare string literals shaped like config paths (lowercase segments
# joined by '/'), to catch keys passed through helper lambdas before
# reaching Config::get*.
PATH_LITERAL_RE = re.compile(r"\"([a-z][a-z0-9_]*(?:/[a-z0-9_]+)+)\"")
SECTION_RE = re.compile(r"^\s*\[([^\]]+)\]")
# "#key = value" comment lines document opt-in knobs; count them.
ENTRY_RE = re.compile(r"^\s*#?\s*([A-Za-z0-9_/]+)\s*=")
DESIGN_KEY_RE = re.compile(r"`([a-z][a-z0-9_]*(?:/[a-z0-9_]+)+)`")

# Path-shaped string literals that are not config keys (trace/span
# event names, stat names, file paths). Extend when a new non-config
# literal trips check 1; keep sorted.
NON_CONFIG_LITERALS = {
    "fuzz-artifacts/repro",
    "mem/access",
}


def parse_cfg_text(text: str):
    keys = set()
    section = None
    for line in text.splitlines():
        line = line.split(";")[0]
        m = SECTION_RE.match(line)
        if m is not None:
            section = m.group(1).strip()
            continue
        m = ENTRY_RE.match(line)
        if m is not None and section is not None:
            keys.add(f"{section}/{m.group(1)}")
    return keys


def collect_read_sites(src: pathlib.Path):
    """Return {key: first file:line} for every key-shaped read."""
    reads = {}
    for path in sorted(src.rglob("*")):
        if path.suffix not in (".h", ".cpp"):
            continue
        rel = path.as_posix()
        for lineno, line in enumerate(
                path.read_text().splitlines(), start=1):
            stripped = line.lstrip()
            if stripped.startswith("//") or stripped.startswith("*"):
                continue
            for m in GET_RE.finditer(line):
                reads.setdefault(m.group(1), f"{rel}:{lineno}")
            for m in PATH_LITERAL_RE.finditer(line):
                key = m.group(1)
                if key not in NON_CONFIG_LITERALS:
                    reads.setdefault(key, f"{rel}:{lineno}")
    return reads


def extract_default_config(config_cpp: pathlib.Path):
    text = config_cpp.read_text()
    m = re.search(r"R\"cfg\((.*?)\)cfg\"", text, re.DOTALL)
    return parse_cfg_text(m.group(1)) if m else set()


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repo-root", default=None)
    args = parser.parse_args()
    root = (pathlib.Path(args.repo_root).resolve()
            if args.repo_root
            else pathlib.Path(__file__).resolve().parent.parent)
    src = root / "src"
    cfg_path = root / "graphite.cfg"
    design_path = root / "DESIGN.md"
    if not src.is_dir() or not cfg_path.is_file():
        print(f"config_audit: missing src/ or graphite.cfg under "
              f"{root}", file=sys.stderr)
        return 2

    file_keys = parse_cfg_text(cfg_path.read_text())
    builtin_keys = extract_default_config(src / "common" / "config.cpp")
    design_keys = (set(DESIGN_KEY_RE.findall(design_path.read_text()))
                   if design_path.is_file() else set())
    documented = file_keys | builtin_keys | design_keys

    reads = collect_read_sites(src)
    errors = []

    # Section-prefix literals: "a/b" also counts as a read/doc of any
    # key "a/b/c" (helpers compose the final key at runtime).
    def prefix_covered(key, pool):
        return any(other.startswith(key + "/") for other in pool)

    for key, where in sorted(reads.items()):
        if key not in documented and not prefix_covered(key, documented):
            errors.append(
                f"{where}: config key '{key}' is read but documented "
                f"nowhere (graphite.cfg, defaultTargetConfig(), "
                f"DESIGN.md) — typo, or document the knob")

    read_prefixes = [k for k in reads
                     if prefix_covered(k, documented)]
    for key in sorted(file_keys):
        if key in reads:
            continue
        if any(key.startswith(p + "/") for p in read_prefixes):
            continue
        errors.append(
            f"graphite.cfg: key '{key}' is never read by src/ — "
            f"dead knob or typo'd name")

    if errors:
        for e in errors:
            print(e)
        print(f"config_audit: FAILED with {len(errors)} violation(s)")
        return 1
    print(f"config_audit: {len(reads)} read keys, "
          f"{len(documented)} documented "
          f"({len(file_keys)} graphite.cfg, {len(builtin_keys)} "
          f"built-in, {len(design_keys)} DESIGN.md)")
    print("config_audit: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
