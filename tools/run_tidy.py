#!/usr/bin/env python3
"""Run clang-tidy over the project using the repo .clang-tidy profile.

Wraps clang-tidy for the `tidy` ctest entry (part of the `analysis`
label and tools/check_all.sh):

  - finds a clang-tidy binary (versioned names included); when none is
    installed the script exits 77, which ctest maps to SKIPPED via
    SKIP_RETURN_CODE — the gate degrades gracefully on toolchains
    without clang;
  - reads compile_commands.json from the build directory
    (CMAKE_EXPORT_COMPILE_COMMANDS is always on);
  - checks every first-party translation unit (src/, tools/, tests/,
    bench/, examples/), skipping anything outside the source tree;
  - fails (exit 1) when clang-tidy reports any warning, so new findings
    must be fixed or carry an explicit NOLINT with a reason.

Usage:
    run_tidy.py --build-dir build [--source-dir .] [--jobs N]
    run_tidy.py --build-dir build --filter src/race   # one subsystem
"""

import argparse
import json
import multiprocessing
import os
import shutil
import subprocess
import sys

SKIP_RC = 77  # ctest SKIP_RETURN_CODE

CANDIDATES = [
    "clang-tidy",
    "clang-tidy-21", "clang-tidy-20", "clang-tidy-19", "clang-tidy-18",
    "clang-tidy-17", "clang-tidy-16", "clang-tidy-15", "clang-tidy-14",
]


def find_clang_tidy(explicit):
    if explicit:
        return explicit if shutil.which(explicit) else None
    for name in CANDIDATES:
        if shutil.which(name):
            return name
    return None


def project_sources(build_dir, source_dir, pattern):
    ccj = os.path.join(build_dir, "compile_commands.json")
    if not os.path.isfile(ccj):
        print(f"run_tidy: no {ccj} (configure the build first)",
              file=sys.stderr)
        sys.exit(2)
    with open(ccj, "r", encoding="utf-8") as f:
        entries = json.load(f)
    root = os.path.realpath(source_dir) + os.sep
    files = []
    for e in entries:
        path = os.path.realpath(
            os.path.join(e.get("directory", ""), e["file"]))
        if not path.startswith(root):
            continue  # third-party / generated
        if pattern and pattern not in os.path.relpath(path, root):
            continue
        if path not in files:
            files.append(path)
    return files


def run_one(tidy, build_dir, path):
    proc = subprocess.run(
        [tidy, "-p", build_dir, "--quiet", path],
        capture_output=True, text=True)
    noisy = [ln for ln in proc.stdout.splitlines()
             if ": warning:" in ln or ": error:" in ln]
    return path, proc.returncode, noisy, proc.stdout


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build-dir", required=True,
                    help="build dir holding compile_commands.json")
    ap.add_argument("--source-dir", default=None,
                    help="repo root (default: parent of this script)")
    ap.add_argument("--clang-tidy", default=None,
                    help="clang-tidy binary to use")
    ap.add_argument("--filter", default=None,
                    help="only check files whose path contains this")
    ap.add_argument("--jobs", type=int,
                    default=max(1, multiprocessing.cpu_count() - 1))
    args = ap.parse_args()

    source_dir = args.source_dir or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))

    tidy = find_clang_tidy(args.clang_tidy)
    if tidy is None:
        print("run_tidy: SKIP: no clang-tidy binary on PATH")
        sys.exit(SKIP_RC)

    files = project_sources(args.build_dir, source_dir, args.filter)
    if not files:
        print("run_tidy: no matching translation units", file=sys.stderr)
        sys.exit(2)
    print(f"run_tidy: {tidy}, {len(files)} translation units, "
          f"{args.jobs} jobs")

    findings = 0
    with multiprocessing.Pool(args.jobs) as pool:
        results = pool.starmap(
            run_one, [(tidy, args.build_dir, f) for f in files])
    for path, rc, noisy, stdout in results:
        rel = os.path.relpath(path, source_dir)
        if noisy or rc != 0:
            findings += len(noisy) or 1
            print(f"run_tidy: {rel}: {len(noisy)} finding(s)")
            sys.stdout.write(stdout)

    if findings:
        print(f"run_tidy: FAIL: {findings} finding(s)", file=sys.stderr)
        sys.exit(1)
    print("run_tidy: PASS")


if __name__ == "__main__":
    main()
