#!/usr/bin/env python3
"""Quantify lax-sync simulation error across synchronization models.

Runs the same seeded workloads under each sync model (lax, lax_barrier,
lax_p2p) with the accuracy observatory armed, then reports every
headline statistic's relative error against the reference model.
LaxBarrier is the reference by default: it bounds skew to one quantum,
so it is the closest thing to a cycle-accurate baseline the lax family
offers (paper §3.6, Table 3).

Usage:
    accuracy_report.py --cli build/graphite_cli
    accuracy_report.py --cli build/graphite_cli \
        --workloads fft,radix --tiles 8 --size 1024
    accuracy_report.py --cli build/graphite_cli --reference lax \
        --out-dir results/

Per workload, the tool prints one table: rows are headline stats
(cycles, miss rate, latency percentiles, violation counts), columns are
sync models, cells are relative error vs the reference. The checksum
row is asserted equal across models — lax sync must never change
functional results, only timing. Exit is nonzero on a checksum mismatch
or a failed run, never on large error (error is the measurement, not a
failure).
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

SYNC_MODELS = ["lax", "lax_barrier", "lax_p2p"]
DEFAULT_WORKLOADS = ["fft", "radix"]


def fail(msg):
    print(f"accuracy_report: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def run_one(cli, workload, model, args, out_path):
    cmd = [
        cli, "--workload", workload,
        "--tiles", str(args.tiles), "--threads", str(args.threads),
        "--set", f"sync/model={model}",
        "--set", f"rng/seed={args.seed}",
        "--accuracy-out", out_path,
    ]
    if args.size > 0:
        cmd += ["--size", str(args.size)]
    if args.scheduler:
        cmd += ["--scheduler", args.scheduler]
    r = subprocess.run(cmd, capture_output=True, text=True, timeout=600)
    if r.returncode != 0:
        fail(f"{workload}/{model} exited {r.returncode}:\n"
             f"{r.stdout}\n{r.stderr}")
    try:
        with open(out_path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{workload}/{model}: bad headline JSON: {e}")


def rel_err(value, ref):
    if ref == 0:
        return "0.00%" if value == 0 else "n/a"
    return f"{(value - ref) / ref * 100.0:+.2f}%"


def render_table(rows):
    """Minimal aligned-table rendering (mirrors common/table.h)."""
    widths = [max(len(r[i]) for r in rows) for i in range(len(rows[0]))]
    out = []
    for n, r in enumerate(rows):
        out.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
        if n == 0:
            out.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
    return "\n".join(out) + "\n"


def report_workload(workload, results, reference):
    ref = results[reference]
    stats = [k for k, v in ref.items()
             if isinstance(v, (int, float)) and k != "checksum"]

    for model, res in results.items():
        if res["checksum"] != ref["checksum"]:
            fail(f"{workload}: checksum diverges under {model} "
                 f"({res['checksum']} vs {ref['checksum']}): lax sync "
                 f"changed functional results")

    rows = [["stat", f"{reference} (ref)"] +
            [f"{m} err" for m in results if m != reference]]
    for stat in stats:
        row = [stat, f"{ref[stat]:.4g}"]
        for model, res in results.items():
            if model == reference:
                continue
            if stat in res:
                row.append(rel_err(res[stat], ref[stat]))
            else:
                row.append("n/a")
        rows.append(row)
    print(f"\n=== {workload}: relative error vs {reference} ===")
    print(render_table(rows))


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--cli", required=True,
                    help="path to the graphite_cli binary")
    ap.add_argument("--workloads",
                    default=",".join(DEFAULT_WORKLOADS),
                    help="comma-separated workload list")
    ap.add_argument("--models", default=",".join(SYNC_MODELS),
                    help="comma-separated sync model list")
    ap.add_argument("--reference", default="lax_barrier",
                    help="sync model the errors are measured against")
    ap.add_argument("--tiles", type=int, default=8)
    ap.add_argument("--threads", type=int, default=8)
    ap.add_argument("--size", type=int, default=-1,
                    help="problem size (workload default when unset)")
    ap.add_argument("--seed", type=int, default=42)
    ap.add_argument("--scheduler", default="",
                    help="host scheduler mode (e.g. deterministic)")
    ap.add_argument("--out-dir", default="",
                    help="keep per-run headline JSONs here")
    args = ap.parse_args()

    models = [m for m in args.models.split(",") if m]
    workloads = [w for w in args.workloads.split(",") if w]
    if args.reference not in models:
        fail(f"reference '{args.reference}' not in models {models}")
    if not os.path.exists(args.cli):
        fail(f"cli not found: {args.cli}")

    keep = bool(args.out_dir)
    if keep:
        os.makedirs(args.out_dir, exist_ok=True)

    with tempfile.TemporaryDirectory() as tmp:
        out_dir = args.out_dir if keep else tmp
        for workload in workloads:
            results = {}
            for model in models:
                path = os.path.join(out_dir,
                                    f"accuracy_{workload}_{model}.json")
                results[model] = run_one(args.cli, workload, model,
                                         args, path)
            report_workload(workload, results, args.reference)

    print("accuracy_report: PASS (checksums identical across models; "
          "errors above are the lax-sync accuracy cost)")


if __name__ == "__main__":
    main()
