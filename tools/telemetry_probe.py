#!/usr/bin/env python3
"""Scrape and validate a live graphite telemetry endpoint.

Two modes:

  --cli PATH   launch graphite_cli with an ephemeral telemetry port,
               scrape /metrics, /status, and /healthz while the CLI
               lingers, and cross-check the scraped values against the
               numbers the CLI itself printed (the ctest `telemetry`
               entry runs this)
  --url URL    scrape an already-running endpoint (e.g.
               http://127.0.0.1:9090) and validate the exposition
               format only

Validation:
  * every /metrics line is well-formed Prometheus text exposition
    (``# TYPE`` comments, ``name{labels} value`` samples);
  * histogram families are internally consistent: cumulative buckets
    are monotone and the +Inf bucket equals the _count series;
  * /status and /healthz parse as JSON;
  * /status carries the sync_skew block (accuracy observatory gauges;
    armed:false with zeroed fields when detection is off);
  * in --cli mode the scraped graphite_sim_cycles_max and
    graphite_sim_instructions_total equal the "simulated cycles" /
    "instructions" lines of the CLI report, and /status agrees; the
    run is launched with the accuracy observatory armed and the
    written accuracy JSONL must agree with the scraped violation
    count (an absent JSONL is reported cleanly, never a traceback).
"""

import argparse
import json
import os
import re
import subprocess
import sys
import tempfile
import time
import urllib.request

SYNC_SKEW_KEYS = ("armed", "causality_violations", "deliveries_checked",
                  "worst_magnitude_cycles", "pair_skew_max_cycles",
                  "pair_skew_mean_cycles", "pair_samples")

SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"      # metric name
    r"(\{[^{}]*\})?"                     # optional labels
    r" (-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?|[+-]?Inf|NaN)$")
TYPE_RE = re.compile(
    r"^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (gauge|counter|histogram|"
    r"summary|untyped)$")


def fail(msg):
    print(f"telemetry_probe: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def fetch(url, timeout=10):
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.status, resp.read().decode("utf-8", "replace")


def parse_metrics(text):
    """Validate exposition format; return {series_name: float} using
    the raw name (labels folded into the key for bucket series)."""
    values = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line:
            continue
        if line.startswith("#"):
            if not TYPE_RE.match(line) and not line.startswith("# HELP"):
                fail(f"/metrics line {lineno}: bad comment {line!r}")
            continue
        m = SAMPLE_RE.match(line)
        if not m:
            fail(f"/metrics line {lineno}: not a valid sample {line!r}")
        name, labels = m.group(1), m.group(2) or ""
        values[name + labels] = float(m.group(3))
    if not values:
        fail("/metrics: no samples at all")
    return values


def check_histograms(values):
    """Cumulative buckets monotone; +Inf bucket == _count."""
    families = {}
    bucket_re = re.compile(r'^(.*)_bucket\{le="([^"]+)"\}$')
    for key, val in values.items():
        m = bucket_re.match(key)
        if m:
            families.setdefault(m.group(1), []).append(
                (m.group(2), val))
    for fam, buckets in families.items():
        inf = [v for le, v in buckets if le == "+Inf"]
        if not inf:
            fail(f"histogram {fam}: no +Inf bucket")
        count = values.get(f"{fam}_count")
        if count is None:
            fail(f"histogram {fam}: no _count series")
        if inf[0] != count:
            fail(f"histogram {fam}: +Inf bucket {inf[0]} != _count "
                 f"{count}")
        finite = sorted(((float(le), v) for le, v in buckets
                         if le != "+Inf"))
        cum = [v for _, v in finite]
        if cum != sorted(cum):
            fail(f"histogram {fam}: buckets not cumulative: {cum}")
        if cum and cum[-1] > count:
            fail(f"histogram {fam}: largest bucket {cum[-1]} exceeds "
                 f"_count {count}")
    return len(families)


def scrape(base):
    status, metrics_text = fetch(base + "/metrics")
    if status != 200:
        fail(f"/metrics returned HTTP {status}")
    values = parse_metrics(metrics_text)
    n_hist = check_histograms(values)

    status, status_text = fetch(base + "/status")
    if status != 200:
        fail(f"/status returned HTTP {status}")
    try:
        status_doc = json.loads(status_text)
    except json.JSONDecodeError as err:
        fail(f"/status is not JSON: {err}")

    skew = status_doc.get("sync_skew")
    if not isinstance(skew, dict):
        fail("/status: missing sync_skew block")
    for key in SYNC_SKEW_KEYS:
        if key not in skew:
            fail(f"/status: sync_skew missing '{key}'")
    if skew["causality_violations"] > skew["deliveries_checked"]:
        fail(f"/status: sync_skew violations "
             f"{skew['causality_violations']} exceed deliveries "
             f"{skew['deliveries_checked']}")

    status, health_text = fetch(base + "/healthz")
    if status != 200:
        fail(f"/healthz returned HTTP {status}")
    try:
        health_doc = json.loads(health_text)
    except json.JSONDecodeError as err:
        fail(f"/healthz is not JSON: {err}")

    print(f"telemetry_probe: {base}: {len(values)} series "
          f"({n_hist} histogram families), /status and /healthz OK")
    return values, status_doc, health_doc


def load_accuracy_summary(path):
    """First accuracy_summary line of an accuracy JSONL, or None with a
    clean diagnostic when the file is absent/unreadable (the run may
    legitimately not have written one; never traceback over it)."""
    if not os.path.exists(path):
        print(f"telemetry_probe: note: accuracy report {path} absent; "
              "skipping JSONL cross-check")
        return None
    try:
        with open(path, "r", encoding="utf-8") as f:
            for line in f:
                if not line.strip():
                    continue
                rec = json.loads(line)
                if rec.get("type") == "accuracy_summary":
                    return rec
    except (OSError, json.JSONDecodeError) as err:
        print(f"telemetry_probe: note: accuracy report {path} "
              f"unreadable ({err}); skipping JSONL cross-check")
        return None
    print(f"telemetry_probe: note: accuracy report {path} has no "
          "summary; skipping JSONL cross-check")
    return None


def run_cli_mode(cli, accuracy_jsonl):
    cmd = [cli, "--workload", "fft", "--tiles", "8", "--threads", "8",
           "--telemetry-port", "0", "--telemetry-linger", "30",
           "--accuracy-jsonl", accuracy_jsonl]
    proc = subprocess.Popen(cmd, stdout=subprocess.PIPE,
                            stderr=subprocess.STDOUT, text=True)
    report = {}
    base = None
    deadline = time.monotonic() + 240
    try:
        # The CLI prints its report, then the telemetry URL, then
        # lingers; read up to the URL line.
        for line in proc.stdout:
            sys.stdout.write(line)
            if time.monotonic() > deadline:
                fail("cli produced no telemetry line in time")
            m = re.match(r"^simulated cycles\s*:\s*(\d+)", line)
            if m:
                report["cycles"] = int(m.group(1))
            m = re.match(r"^instructions\s*:\s*(\d+)", line)
            if m:
                report["instructions"] = int(m.group(1))
            m = re.search(r"telemetry\s*:\s*(http://[0-9.:]+)", line)
            if m:
                base = m.group(1).rstrip("/")
                break
        if base is None:
            fail(f"cli exited (rc {proc.poll()}) without a telemetry "
                 "URL line")
        if "cycles" not in report or "instructions" not in report:
            fail("cli report lines not found before the telemetry URL")

        values, status_doc, health_doc = scrape(base)

        # The scrape must agree with the final report on shared
        # counters: the run is over, so both sides are quiescent.
        scraped_cycles = values.get("graphite_sim_cycles_max")
        if scraped_cycles != report["cycles"]:
            fail(f"/metrics graphite_sim_cycles_max {scraped_cycles} "
                 f"!= report simulated cycles {report['cycles']}")
        scraped_instr = values.get("graphite_sim_instructions_total")
        if scraped_instr != report["instructions"]:
            fail(f"/metrics graphite_sim_instructions_total "
                 f"{scraped_instr} != report instructions "
                 f"{report['instructions']}")
        if status_doc.get("simulated_cycles") != report["cycles"]:
            fail(f"/status simulated_cycles "
                 f"{status_doc.get('simulated_cycles')} != report "
                 f"{report['cycles']}")
        if len(status_doc.get("tiles", [])) != 8:
            fail(f"/status has {len(status_doc.get('tiles', []))} "
                 "tiles, expected 8")
        if health_doc.get("status") != "ok":
            fail(f"/healthz says {health_doc.get('status')!r} after a "
                 "clean run")

        # Accuracy observatory: the scraped gauges, /status, and the
        # written JSONL report describe the same finished run.
        skew = status_doc["sync_skew"]
        if skew["armed"] is not True:
            fail("/status: sync_skew not armed despite "
                 "--accuracy-jsonl")
        scraped_viol = values.get("graphite_accuracy_violations")
        if scraped_viol is None:
            fail("/metrics: no graphite_accuracy_violations series "
                 "despite accuracy being armed")
        if scraped_viol != skew["causality_violations"]:
            fail(f"/metrics graphite_accuracy_violations "
                 f"{scraped_viol} != /status sync_skew "
                 f"{skew['causality_violations']}")
        acc = load_accuracy_summary(accuracy_jsonl)
        if acc is not None:
            if acc["violations"] != skew["causality_violations"]:
                fail(f"accuracy JSONL violations {acc['violations']} "
                     f"!= /status {skew['causality_violations']}")
            if acc["deliveries"] != skew["deliveries_checked"]:
                fail(f"accuracy JSONL deliveries {acc['deliveries']} "
                     f"!= /status {skew['deliveries_checked']}")

        # A second scrape must show the request counter advancing.
        before = values.get("graphite_telemetry_http_requests", 0)
        values2, _, _ = scrape(base)
        after = values2.get("graphite_telemetry_http_requests", 0)
        if after <= before:
            fail(f"graphite_telemetry_http_requests did not advance "
                 f"({before} -> {after})")
    finally:
        proc.terminate()
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()
    print("telemetry_probe: cli cross-check OK")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--cli", help="graphite_cli binary to launch")
    ap.add_argument("--url", help="existing endpoint to scrape")
    args = ap.parse_args()
    if bool(args.cli) == bool(args.url):
        fail("pass exactly one of --cli or --url")
    if args.cli:
        with tempfile.TemporaryDirectory() as tmp:
            run_cli_mode(args.cli,
                         os.path.join(tmp, "accuracy.jsonl"))
    else:
        scrape(args.url.rstrip("/"))


if __name__ == "__main__":
    main()
