#!/usr/bin/env python3
"""Aggregate BENCH_*.json outputs into one trajectory table.

Every bench/micro_* harness that measures an overhead or invariant
emits a BENCH_<name>.json with a self-describing pass criterion:

    {"benchmark": ..., "workload": ..., "runs": [...],
     "slowdown_armed": 1.04,
     "criterion": "slowdown_armed <= 1.15 && ...",
     "criterion_met": true}

This tool collects every such file under a directory (default: the
build tree), prints one row per benchmark — workload, size, headline
slowdown, the stated criterion, pass/fail — and exits nonzero if any
benchmark failed its own criterion. It evaluates nothing itself: the
harness that ran the measurement owns the verdict; this is the
roll-up that makes a regression visible in one table.

Usage:
    bench_report.py [--dir build] [--require NAME ...]

--require fails the report when a named benchmark's JSON is absent
(e.g. CI demanding that the accuracy overhead bench actually ran).
"""

import argparse
import glob
import json
import os
import sys


def fail(msg):
    print(f"bench_report: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: not loadable JSON: {e}")
    for key in ("benchmark", "criterion", "criterion_met"):
        if key not in doc:
            fail(f"{path}: missing '{key}'")
    return doc


def render_table(rows):
    widths = [max(len(r[i]) for r in rows) for i in range(len(rows[0]))]
    out = []
    for n, r in enumerate(rows):
        out.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
        if n == 0:
            out.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
    return "\n".join(out) + "\n"


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--dir", default="build",
                    help="directory scanned for BENCH_*.json")
    ap.add_argument("--require", nargs="*", default=[],
                    help="benchmark names that must be present")
    args = ap.parse_args()

    paths = sorted(glob.glob(os.path.join(args.dir, "BENCH_*.json")))
    if not paths:
        fail(f"no BENCH_*.json under '{args.dir}' — run the bench "
             f"binaries first (e.g. build/bench/micro_span_overhead)")

    docs = [load(p) for p in paths]
    names = {d["benchmark"] for d in docs}
    missing = [r for r in args.require if r not in names]
    if missing:
        fail(f"required benchmarks missing: {missing} "
             f"(found: {sorted(names)})")

    rows = [["benchmark", "workload", "size", "slowdown",
             "criterion", "result"]]
    failures = 0
    for doc in docs:
        slowdown = doc.get("slowdown_armed")
        met = bool(doc["criterion_met"])
        failures += 0 if met else 1
        rows.append([
            doc["benchmark"],
            str(doc.get("workload", "-")),
            str(doc.get("size", "-")),
            f"{slowdown:.3f}x" if isinstance(slowdown, (int, float))
            else "-",
            doc["criterion"],
            "pass" if met else "FAIL",
        ])
    print(render_table(rows))

    if failures:
        fail(f"{failures} of {len(docs)} benchmarks failed their "
             f"stated criterion")
    print(f"bench_report: PASS ({len(docs)} benchmarks met their "
          f"criteria)")


if __name__ == "__main__":
    main()
