#!/usr/bin/env python3
"""Roll up a graphite spans.jsonl dump into a latency-attribution report.

Sections:
  summary      exact per-stage cycle totals (from every completed span,
               not just the sampled ones) with the bottleneck stage and
               the queueing-vs-service decomposition
  percentiles  per-stage P50/P95/P99 over the sampled spans, per kind
  slowest      the top-N slowest transactions with their waterfalls
  intervals    per-interval bottleneck timeline

Queueing-vs-service decomposition: queueing cycles are time spent
waiting behind other traffic (link queues, the memory-controller
queue); everything else — hop propagation, serialization, directory
occupancy, device latency, coherence round trips — is service. A
queueing share that grows with load is the signature of a saturated
resource; the per-stage split then names it.

When --accuracy points at an accuracy observatory JSONL (written via
graphite_cli --accuracy-jsonl), a causality-context section relates
the span skews to the run's measured violation counts and worst tile
pairs. An absent or empty accuracy file degrades to a one-line note —
span analysis never depends on it.

Usage:
    span_report.py spans.jsonl [--top N] [--kind KIND]
                   [--accuracy accuracy.jsonl]
"""

import argparse
import json
import sys
from collections import defaultdict

QUEUE_STAGES = {"req_queue", "reply_queue", "dram_queue"}
STAGE_ORDER = ["local_check", "req_ser", "req_queue", "req_hop",
               "directory", "invalidation", "recall", "dram_queue",
               "dram_service", "reply_ser", "reply_queue", "reply_hop"]


def load(path):
    spans, intervals, summary = [], [], None
    saw_data = False
    try:
        with open(path, "r", encoding="utf-8") as f:
            for lineno, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                saw_data = True
                try:
                    rec = json.loads(line)
                except json.JSONDecodeError as err:
                    sys.exit(f"span_report: {path}:{lineno}: "
                             f"not valid JSONL ({err.msg}); was the run "
                             "interrupted mid-write?")
                if rec["type"] == "span":
                    spans.append(rec)
                elif rec["type"] == "interval":
                    intervals.append(rec)
                elif rec["type"] == "summary":
                    summary = rec
    except OSError as err:
        sys.exit(f"span_report: cannot read {path}: {err.strerror}. "
                 "Generate one with graphite_cli --spans-out PATH.")
    if not saw_data:
        sys.exit(f"span_report: {path} is empty — the run wrote no "
                 "spans. Was span tracking enabled (--spans-out) and "
                 "did the run finish?")
    if summary is None:
        sys.exit(f"span_report: {path}: no summary row (file is "
                 "truncated; the summary is written at finalize)")
    return spans, intervals, summary


def percentile(sorted_vals, p):
    if not sorted_vals:
        return 0
    idx = min(len(sorted_vals) - 1,
              int(p / 100.0 * len(sorted_vals)))
    return sorted_vals[idx]


def fmt_count(n):
    return f"{n:,}"


def print_summary(summary):
    total = summary["total_cycles"]
    print(f"completed spans : {fmt_count(summary['completed'])}")
    print(f"attributed      : {fmt_count(total)} cycles")
    print(f"bottleneck      : {summary['bottleneck']}")
    queue = sum(c for s, c in summary["stage_cycles"].items()
                if s in QUEUE_STAGES)
    service = total - queue
    if total:
        print(f"queueing        : {fmt_count(queue)} cycles "
              f"({100.0 * queue / total:.1f}%)")
        print(f"service         : {fmt_count(service)} cycles "
              f"({100.0 * service / total:.1f}%)")
    print()
    print(f"{'stage':<14}{'cycles':>16}{'share':>9}")
    for stage in STAGE_ORDER:
        cycles = summary["stage_cycles"].get(stage, 0)
        if cycles == 0:
            continue
        share = 100.0 * cycles / total if total else 0.0
        tag = " (queueing)" if stage in QUEUE_STAGES else ""
        print(f"{stage:<14}{fmt_count(cycles):>16}{share:>8.1f}%{tag}")
    print()
    kinds = summary.get("kinds", {})
    active = {k: v for k, v in kinds.items() if v["count"]}
    if active:
        print(f"{'kind':<12}{'count':>12}{'cycles':>16}{'mean':>10}")
        for kind, v in sorted(active.items(),
                              key=lambda kv: -kv[1]["cycles"]):
            mean = v["cycles"] / v["count"]
            print(f"{kind:<12}{fmt_count(v['count']):>12}"
                  f"{fmt_count(v['cycles']):>16}{mean:>10.1f}")
        print()


def print_percentiles(spans, kind_filter):
    # Percentiles come from the uniform reservoir sample; the slowest
    # set is excluded so the tail does not get double weight.
    sample = [s for s in spans if s["set"] == "sample"]
    if kind_filter:
        sample = [s for s in sample if s["kind"] == kind_filter]
    if not sample:
        print("no sampled spans" +
              (f" of kind {kind_filter}" if kind_filter else ""))
        return
    by_stage = defaultdict(list)
    totals = []
    for s in sample:
        totals.append(s["total"])
        for st in s["stages"]:
            by_stage[st["stage"]].append(st["dur"])
    totals.sort()
    scope = kind_filter or "all kinds"
    print(f"percentiles over {len(sample)} sampled spans ({scope}):")
    print(f"{'stage':<14}{'spans':>8}{'p50':>8}{'p95':>8}{'p99':>8}"
          f"{'max':>8}")
    print(f"{'end-to-end':<14}{len(totals):>8}"
          f"{percentile(totals, 50):>8}{percentile(totals, 95):>8}"
          f"{percentile(totals, 99):>8}{totals[-1]:>8}")
    for stage in STAGE_ORDER:
        vals = by_stage.get(stage)
        if not vals:
            continue
        vals.sort()
        print(f"{stage:<14}{len(vals):>8}{percentile(vals, 50):>8}"
              f"{percentile(vals, 95):>8}{percentile(vals, 99):>8}"
              f"{vals[-1]:>8}")
    print()


def print_slowest(spans, top, kind_filter):
    slowest = [s for s in spans if s["set"] == "slowest"]
    if kind_filter:
        slowest = [s for s in slowest if s["kind"] == kind_filter]
    slowest.sort(key=lambda s: -s["total"])
    slowest = slowest[:top]
    if not slowest:
        return
    print(f"top {len(slowest)} slowest transactions:")
    for s in slowest:
        parts = ", ".join(f"{st['stage']} {st['dur']}"
                          for st in s["stages"] if st["dur"])
        folded = " [folded]" if s.get("folded") else ""
        print(f"  {s['total']:>8} cyc  {s['kind']:<10} "
              f"tile {s['requester']} -> home {s['home']} "
              f"({s['distance']} hops, start {s['start']}, "
              f"skew {s['skew']:+d}){folded}")
        print(f"           {parts}")
    print()


def print_intervals(intervals):
    if not intervals:
        return
    print(f"{'interval':<10}{'cycles':>20}{'spans':>10}"
          f"{'bottleneck':>14}{'queueing':>10}")
    for iv in intervals:
        queue = sum(c for s, c in iv["stage_cycles"].items()
                    if s in QUEUE_STAGES)
        share = (100.0 * queue / iv["total_cycles"]
                 if iv["total_cycles"] else 0.0)
        rng = f"[{iv['start']},{iv['end']})"
        print(f"{iv['index']:<10}{rng:>20}{fmt_count(iv['spans']):>10}"
              f"{iv['bottleneck']:>14}{share:>9.1f}%")
    print()


def print_accuracy_context(path):
    """Causality context from an accuracy observatory JSONL; absence is
    a note, not an error — span analysis stands on its own."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            lines = [ln for ln in f.read().splitlines() if ln]
    except OSError as err:
        print(f"(accuracy report unavailable: {path}: {err.strerror}; "
              "generate one with graphite_cli --accuracy-jsonl PATH)")
        print()
        return
    summary, pairs = None, []
    for lineno, line in enumerate(lines, 1):
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as err:
            print(f"(accuracy report unreadable: {path}:{lineno}: "
                  f"{err.msg}; skipping causality context)")
            print()
            return
        if rec.get("type") == "accuracy_summary":
            summary = rec
        elif rec.get("type") == "accuracy_pair":
            pairs.append(rec)
    if summary is None:
        print(f"(accuracy report {path} has no summary row; skipping "
              "causality context)")
        print()
        return
    print("=== causality context (accuracy observatory) ===")
    frac = 100.0 * summary["violation_fraction"]
    print(f"violations      : {fmt_count(summary['violations'])} of "
          f"{fmt_count(summary['deliveries'])} deliveries "
          f"({frac:.2f}%)")
    print(f"worst magnitude : "
          f"{fmt_count(summary['worst_magnitude_cycles'])} cycles")
    print(f"pair skew       : max "
          f"{fmt_count(summary['pair_skew_max_cycles'])}, mean "
          f"{summary['pair_skew_mean_cycles']:.0f} cycles over "
          f"{fmt_count(summary['pair_samples'])} samples")
    pairs.sort(key=lambda p: -p["max_skew_cycles"])
    for p in pairs[:5]:
        print(f"  tile {p['src']:>3} -> {p['dst']:>3}: max skew "
              f"{fmt_count(p['max_skew_cycles'])}, mean "
              f"{p['mean_skew_cycles']:.0f} "
              f"({fmt_count(p['samples'])} samples)")
    print()


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("spans", help="spans.jsonl written via --spans-out")
    ap.add_argument("--top", type=int, default=10,
                    help="slowest transactions to list (default 10)")
    ap.add_argument("--kind", default=None,
                    help="restrict percentiles/slowest to one kind "
                         "(e.g. read_miss)")
    ap.add_argument("--accuracy", default=None,
                    help="accuracy.jsonl for causality context "
                         "(absence degrades to a note)")
    args = ap.parse_args()

    spans, intervals, summary = load(args.spans)
    print("=== span latency attribution ===")
    print_summary(summary)
    print_percentiles(spans, args.kind)
    print_slowest(spans, args.top, args.kind)
    print_intervals(intervals)
    if args.accuracy:
        print_accuracy_context(args.accuracy)


if __name__ == "__main__":
    try:
        main()
    except BrokenPipeError:  # e.g. piped into head
        sys.exit(0)
