# Empty compiler generated dependencies file for graphite_workloads.
# This may be replaced when dependencies are built.
