file(REMOVE_RECURSE
  "CMakeFiles/graphite_workloads.dir/registry.cpp.o"
  "CMakeFiles/graphite_workloads.dir/registry.cpp.o.d"
  "libgraphite_workloads.a"
  "libgraphite_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphite_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
