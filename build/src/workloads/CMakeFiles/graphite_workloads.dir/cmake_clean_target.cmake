file(REMOVE_RECURSE
  "libgraphite_workloads.a"
)
