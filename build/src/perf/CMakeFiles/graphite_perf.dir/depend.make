# Empty dependencies file for graphite_perf.
# This may be replaced when dependencies are built.
