file(REMOVE_RECURSE
  "CMakeFiles/graphite_perf.dir/branch_predictor.cpp.o"
  "CMakeFiles/graphite_perf.dir/branch_predictor.cpp.o.d"
  "CMakeFiles/graphite_perf.dir/core_model.cpp.o"
  "CMakeFiles/graphite_perf.dir/core_model.cpp.o.d"
  "libgraphite_perf.a"
  "libgraphite_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphite_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
