file(REMOVE_RECURSE
  "libgraphite_perf.a"
)
