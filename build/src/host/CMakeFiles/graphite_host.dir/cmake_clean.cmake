file(REMOVE_RECURSE
  "CMakeFiles/graphite_host.dir/host_model.cpp.o"
  "CMakeFiles/graphite_host.dir/host_model.cpp.o.d"
  "libgraphite_host.a"
  "libgraphite_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphite_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
