# Empty compiler generated dependencies file for graphite_host.
# This may be replaced when dependencies are built.
