file(REMOVE_RECURSE
  "libgraphite_host.a"
)
