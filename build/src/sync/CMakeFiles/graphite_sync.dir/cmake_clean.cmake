file(REMOVE_RECURSE
  "CMakeFiles/graphite_sync.dir/skew_tracker.cpp.o"
  "CMakeFiles/graphite_sync.dir/skew_tracker.cpp.o.d"
  "CMakeFiles/graphite_sync.dir/sync_model.cpp.o"
  "CMakeFiles/graphite_sync.dir/sync_model.cpp.o.d"
  "libgraphite_sync.a"
  "libgraphite_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphite_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
