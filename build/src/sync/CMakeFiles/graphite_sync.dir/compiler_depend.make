# Empty compiler generated dependencies file for graphite_sync.
# This may be replaced when dependencies are built.
