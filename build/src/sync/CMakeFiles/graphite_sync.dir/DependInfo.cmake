
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sync/skew_tracker.cpp" "src/sync/CMakeFiles/graphite_sync.dir/skew_tracker.cpp.o" "gcc" "src/sync/CMakeFiles/graphite_sync.dir/skew_tracker.cpp.o.d"
  "/root/repo/src/sync/sync_model.cpp" "src/sync/CMakeFiles/graphite_sync.dir/sync_model.cpp.o" "gcc" "src/sync/CMakeFiles/graphite_sync.dir/sync_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/graphite_common.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/graphite_perf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
