file(REMOVE_RECURSE
  "libgraphite_sync.a"
)
