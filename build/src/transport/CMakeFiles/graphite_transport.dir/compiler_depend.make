# Empty compiler generated dependencies file for graphite_transport.
# This may be replaced when dependencies are built.
