file(REMOVE_RECURSE
  "libgraphite_transport.a"
)
