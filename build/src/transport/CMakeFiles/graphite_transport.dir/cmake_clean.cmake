file(REMOVE_RECURSE
  "CMakeFiles/graphite_transport.dir/cluster_topology.cpp.o"
  "CMakeFiles/graphite_transport.dir/cluster_topology.cpp.o.d"
  "CMakeFiles/graphite_transport.dir/socket_transport.cpp.o"
  "CMakeFiles/graphite_transport.dir/socket_transport.cpp.o.d"
  "CMakeFiles/graphite_transport.dir/transport.cpp.o"
  "CMakeFiles/graphite_transport.dir/transport.cpp.o.d"
  "libgraphite_transport.a"
  "libgraphite_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphite_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
