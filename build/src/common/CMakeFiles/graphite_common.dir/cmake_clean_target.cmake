file(REMOVE_RECURSE
  "libgraphite_common.a"
)
