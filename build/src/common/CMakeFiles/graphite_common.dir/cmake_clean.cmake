file(REMOVE_RECURSE
  "CMakeFiles/graphite_common.dir/config.cpp.o"
  "CMakeFiles/graphite_common.dir/config.cpp.o.d"
  "CMakeFiles/graphite_common.dir/log.cpp.o"
  "CMakeFiles/graphite_common.dir/log.cpp.o.d"
  "CMakeFiles/graphite_common.dir/stats.cpp.o"
  "CMakeFiles/graphite_common.dir/stats.cpp.o.d"
  "CMakeFiles/graphite_common.dir/table.cpp.o"
  "CMakeFiles/graphite_common.dir/table.cpp.o.d"
  "libgraphite_common.a"
  "libgraphite_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphite_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
