# Empty dependencies file for graphite_common.
# This may be replaced when dependencies are built.
