file(REMOVE_RECURSE
  "CMakeFiles/graphite_core.dir/api.cpp.o"
  "CMakeFiles/graphite_core.dir/api.cpp.o.d"
  "CMakeFiles/graphite_core.dir/simulator.cpp.o"
  "CMakeFiles/graphite_core.dir/simulator.cpp.o.d"
  "CMakeFiles/graphite_core.dir/thread_manager.cpp.o"
  "CMakeFiles/graphite_core.dir/thread_manager.cpp.o.d"
  "libgraphite_core.a"
  "libgraphite_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphite_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
