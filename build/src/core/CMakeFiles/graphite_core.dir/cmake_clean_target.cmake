file(REMOVE_RECURSE
  "libgraphite_core.a"
)
