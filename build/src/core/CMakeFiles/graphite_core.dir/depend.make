# Empty dependencies file for graphite_core.
# This may be replaced when dependencies are built.
