# Empty dependencies file for graphite_mem.
# This may be replaced when dependencies are built.
