file(REMOVE_RECURSE
  "libgraphite_mem.a"
)
