file(REMOVE_RECURSE
  "CMakeFiles/graphite_mem.dir/address_space.cpp.o"
  "CMakeFiles/graphite_mem.dir/address_space.cpp.o.d"
  "CMakeFiles/graphite_mem.dir/cache.cpp.o"
  "CMakeFiles/graphite_mem.dir/cache.cpp.o.d"
  "CMakeFiles/graphite_mem.dir/directory.cpp.o"
  "CMakeFiles/graphite_mem.dir/directory.cpp.o.d"
  "CMakeFiles/graphite_mem.dir/dram_controller.cpp.o"
  "CMakeFiles/graphite_mem.dir/dram_controller.cpp.o.d"
  "CMakeFiles/graphite_mem.dir/main_memory.cpp.o"
  "CMakeFiles/graphite_mem.dir/main_memory.cpp.o.d"
  "CMakeFiles/graphite_mem.dir/memory_system.cpp.o"
  "CMakeFiles/graphite_mem.dir/memory_system.cpp.o.d"
  "libgraphite_mem.a"
  "libgraphite_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphite_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
