
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/address_space.cpp" "src/mem/CMakeFiles/graphite_mem.dir/address_space.cpp.o" "gcc" "src/mem/CMakeFiles/graphite_mem.dir/address_space.cpp.o.d"
  "/root/repo/src/mem/cache.cpp" "src/mem/CMakeFiles/graphite_mem.dir/cache.cpp.o" "gcc" "src/mem/CMakeFiles/graphite_mem.dir/cache.cpp.o.d"
  "/root/repo/src/mem/directory.cpp" "src/mem/CMakeFiles/graphite_mem.dir/directory.cpp.o" "gcc" "src/mem/CMakeFiles/graphite_mem.dir/directory.cpp.o.d"
  "/root/repo/src/mem/dram_controller.cpp" "src/mem/CMakeFiles/graphite_mem.dir/dram_controller.cpp.o" "gcc" "src/mem/CMakeFiles/graphite_mem.dir/dram_controller.cpp.o.d"
  "/root/repo/src/mem/main_memory.cpp" "src/mem/CMakeFiles/graphite_mem.dir/main_memory.cpp.o" "gcc" "src/mem/CMakeFiles/graphite_mem.dir/main_memory.cpp.o.d"
  "/root/repo/src/mem/memory_system.cpp" "src/mem/CMakeFiles/graphite_mem.dir/memory_system.cpp.o" "gcc" "src/mem/CMakeFiles/graphite_mem.dir/memory_system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/graphite_common.dir/DependInfo.cmake"
  "/root/repo/build/src/network/CMakeFiles/graphite_network.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/graphite_transport.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
