file(REMOVE_RECURSE
  "libgraphite_network.a"
)
