
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/network/global_progress.cpp" "src/network/CMakeFiles/graphite_network.dir/global_progress.cpp.o" "gcc" "src/network/CMakeFiles/graphite_network.dir/global_progress.cpp.o.d"
  "/root/repo/src/network/net_packet.cpp" "src/network/CMakeFiles/graphite_network.dir/net_packet.cpp.o" "gcc" "src/network/CMakeFiles/graphite_network.dir/net_packet.cpp.o.d"
  "/root/repo/src/network/network.cpp" "src/network/CMakeFiles/graphite_network.dir/network.cpp.o" "gcc" "src/network/CMakeFiles/graphite_network.dir/network.cpp.o.d"
  "/root/repo/src/network/network_model.cpp" "src/network/CMakeFiles/graphite_network.dir/network_model.cpp.o" "gcc" "src/network/CMakeFiles/graphite_network.dir/network_model.cpp.o.d"
  "/root/repo/src/network/queue_model.cpp" "src/network/CMakeFiles/graphite_network.dir/queue_model.cpp.o" "gcc" "src/network/CMakeFiles/graphite_network.dir/queue_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/graphite_common.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/graphite_transport.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
