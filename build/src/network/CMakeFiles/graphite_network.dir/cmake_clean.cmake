file(REMOVE_RECURSE
  "CMakeFiles/graphite_network.dir/global_progress.cpp.o"
  "CMakeFiles/graphite_network.dir/global_progress.cpp.o.d"
  "CMakeFiles/graphite_network.dir/net_packet.cpp.o"
  "CMakeFiles/graphite_network.dir/net_packet.cpp.o.d"
  "CMakeFiles/graphite_network.dir/network.cpp.o"
  "CMakeFiles/graphite_network.dir/network.cpp.o.d"
  "CMakeFiles/graphite_network.dir/network_model.cpp.o"
  "CMakeFiles/graphite_network.dir/network_model.cpp.o.d"
  "CMakeFiles/graphite_network.dir/queue_model.cpp.o"
  "CMakeFiles/graphite_network.dir/queue_model.cpp.o.d"
  "libgraphite_network.a"
  "libgraphite_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphite_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
