# Empty dependencies file for graphite_network.
# This may be replaced when dependencies are built.
