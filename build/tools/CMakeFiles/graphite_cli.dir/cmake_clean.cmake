file(REMOVE_RECURSE
  "../graphite_cli"
  "../graphite_cli.pdb"
  "CMakeFiles/graphite_cli.dir/graphite_cli.cpp.o"
  "CMakeFiles/graphite_cli.dir/graphite_cli.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphite_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
