# Empty dependencies file for graphite_cli.
# This may be replaced when dependencies are built.
