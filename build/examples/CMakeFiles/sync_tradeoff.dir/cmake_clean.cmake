file(REMOVE_RECURSE
  "CMakeFiles/sync_tradeoff.dir/sync_tradeoff.cpp.o"
  "CMakeFiles/sync_tradeoff.dir/sync_tradeoff.cpp.o.d"
  "sync_tradeoff"
  "sync_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sync_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
