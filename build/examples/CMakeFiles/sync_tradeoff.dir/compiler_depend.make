# Empty compiler generated dependencies file for sync_tradeoff.
# This may be replaced when dependencies are built.
