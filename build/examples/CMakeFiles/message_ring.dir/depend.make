# Empty dependencies file for message_ring.
# This may be replaced when dependencies are built.
