file(REMOVE_RECURSE
  "CMakeFiles/message_ring.dir/message_ring.cpp.o"
  "CMakeFiles/message_ring.dir/message_ring.cpp.o.d"
  "message_ring"
  "message_ring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/message_ring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
