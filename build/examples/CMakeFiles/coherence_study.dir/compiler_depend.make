# Empty compiler generated dependencies file for coherence_study.
# This may be replaced when dependencies are built.
