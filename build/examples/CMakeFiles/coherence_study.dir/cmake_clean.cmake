file(REMOVE_RECURSE
  "CMakeFiles/coherence_study.dir/coherence_study.cpp.o"
  "CMakeFiles/coherence_study.dir/coherence_study.cpp.o.d"
  "coherence_study"
  "coherence_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coherence_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
