# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_smoke "/root/repo/build/tests/test_smoke")
set_tests_properties(test_smoke PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;14;graphite_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_workloads "/root/repo/build/tests/test_workloads")
set_tests_properties(test_workloads PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;15;graphite_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_common "/root/repo/build/tests/test_common")
set_tests_properties(test_common PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;17;graphite_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_transport "/root/repo/build/tests/test_transport")
set_tests_properties(test_transport PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;18;graphite_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_network "/root/repo/build/tests/test_network")
set_tests_properties(test_network PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;19;graphite_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_perf "/root/repo/build/tests/test_perf")
set_tests_properties(test_perf PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;20;graphite_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_mem_units "/root/repo/build/tests/test_mem_units")
set_tests_properties(test_mem_units PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;21;graphite_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_memory_system "/root/repo/build/tests/test_memory_system")
set_tests_properties(test_memory_system PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;22;graphite_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_sync "/root/repo/build/tests/test_sync")
set_tests_properties(test_sync PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;23;graphite_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_system "/root/repo/build/tests/test_system")
set_tests_properties(test_system PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;24;graphite_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_host_model "/root/repo/build/tests/test_host_model")
set_tests_properties(test_host_model PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;25;graphite_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_properties "/root/repo/build/tests/test_properties")
set_tests_properties(test_properties PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;27;graphite_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_api_surface "/root/repo/build/tests/test_api_surface")
set_tests_properties(test_api_surface PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;29;graphite_test;/root/repo/tests/CMakeLists.txt;0;")
