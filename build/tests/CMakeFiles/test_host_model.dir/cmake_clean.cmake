file(REMOVE_RECURSE
  "CMakeFiles/test_host_model.dir/test_host_model.cpp.o"
  "CMakeFiles/test_host_model.dir/test_host_model.cpp.o.d"
  "test_host_model"
  "test_host_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_host_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
