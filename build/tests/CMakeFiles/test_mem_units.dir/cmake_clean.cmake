file(REMOVE_RECURSE
  "CMakeFiles/test_mem_units.dir/test_mem_units.cpp.o"
  "CMakeFiles/test_mem_units.dir/test_mem_units.cpp.o.d"
  "test_mem_units"
  "test_mem_units.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mem_units.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
