file(REMOVE_RECURSE
  "CMakeFiles/fig4_host_scaling.dir/fig4_host_scaling.cpp.o"
  "CMakeFiles/fig4_host_scaling.dir/fig4_host_scaling.cpp.o.d"
  "fig4_host_scaling"
  "fig4_host_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_host_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
