file(REMOVE_RECURSE
  "CMakeFiles/fig5_1024_tiles.dir/fig5_1024_tiles.cpp.o"
  "CMakeFiles/fig5_1024_tiles.dir/fig5_1024_tiles.cpp.o.d"
  "fig5_1024_tiles"
  "fig5_1024_tiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_1024_tiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
