# Empty dependencies file for fig5_1024_tiles.
# This may be replaced when dependencies are built.
