file(REMOVE_RECURSE
  "CMakeFiles/fig9_coherence.dir/fig9_coherence.cpp.o"
  "CMakeFiles/fig9_coherence.dir/fig9_coherence.cpp.o.d"
  "fig9_coherence"
  "fig9_coherence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_coherence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
