# Empty dependencies file for fig9_coherence.
# This may be replaced when dependencies are built.
