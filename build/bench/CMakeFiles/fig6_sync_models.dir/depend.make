# Empty dependencies file for fig6_sync_models.
# This may be replaced when dependencies are built.
