
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table2_slowdown.cpp" "bench/CMakeFiles/table2_slowdown.dir/table2_slowdown.cpp.o" "gcc" "bench/CMakeFiles/table2_slowdown.dir/table2_slowdown.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/graphite_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/graphite_host.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/graphite_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/graphite_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/network/CMakeFiles/graphite_network.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/graphite_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/sync/CMakeFiles/graphite_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/graphite_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/graphite_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
