# Empty compiler generated dependencies file for table2_slowdown.
# This may be replaced when dependencies are built.
