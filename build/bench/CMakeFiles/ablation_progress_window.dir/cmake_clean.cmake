file(REMOVE_RECURSE
  "CMakeFiles/ablation_progress_window.dir/ablation_progress_window.cpp.o"
  "CMakeFiles/ablation_progress_window.dir/ablation_progress_window.cpp.o.d"
  "ablation_progress_window"
  "ablation_progress_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_progress_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
