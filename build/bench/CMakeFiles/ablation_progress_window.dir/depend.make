# Empty dependencies file for ablation_progress_window.
# This may be replaced when dependencies are built.
