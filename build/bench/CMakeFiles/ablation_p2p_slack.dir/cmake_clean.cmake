file(REMOVE_RECURSE
  "CMakeFiles/ablation_p2p_slack.dir/ablation_p2p_slack.cpp.o"
  "CMakeFiles/ablation_p2p_slack.dir/ablation_p2p_slack.cpp.o.d"
  "ablation_p2p_slack"
  "ablation_p2p_slack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_p2p_slack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
