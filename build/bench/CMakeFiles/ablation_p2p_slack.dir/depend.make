# Empty dependencies file for ablation_p2p_slack.
# This may be replaced when dependencies are built.
