file(REMOVE_RECURSE
  "CMakeFiles/fig7_clock_skew.dir/fig7_clock_skew.cpp.o"
  "CMakeFiles/fig7_clock_skew.dir/fig7_clock_skew.cpp.o.d"
  "fig7_clock_skew"
  "fig7_clock_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_clock_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
