# Empty dependencies file for fig7_clock_skew.
# This may be replaced when dependencies are built.
