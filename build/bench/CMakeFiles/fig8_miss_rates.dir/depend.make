# Empty dependencies file for fig8_miss_rates.
# This may be replaced when dependencies are built.
