file(REMOVE_RECURSE
  "CMakeFiles/fig8_miss_rates.dir/fig8_miss_rates.cpp.o"
  "CMakeFiles/fig8_miss_rates.dir/fig8_miss_rates.cpp.o.d"
  "fig8_miss_rates"
  "fig8_miss_rates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_miss_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
