/**
 * @file
 * Synchronization-model trade-off example (paper §3.6): run one
 * workload under Lax, LaxP2P, and LaxBarrier and print the speed /
 * accuracy trade-off — host wall-clock, simulated cycles, deviation
 * from the LaxBarrier reference, and the sync models' own overhead
 * counters.
 *
 *   ./examples/sync_tradeoff [workload] [threads]
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/config.h"
#include "common/table.h"
#include "core/simulator.h"
#include "workloads/registry.h"

using namespace graphite;

int
main(int argc, char** argv)
{
    const char* app = argc > 1 ? argv[1] : "ocean_cont";
    int threads = argc > 2 ? std::atoi(argv[2]) : 16;

    const workloads::WorkloadInfo& w = workloads::findWorkload(app);

    struct Row
    {
        std::string model;
        double wall = 0;
        cycle_t cycles = 0;
        stat_t events = 0;
        stat_t waitMicros = 0;
    };
    std::vector<Row> rows;

    for (const char* model : {"lax_barrier", "lax_p2p", "lax"}) {
        Config cfg = defaultTargetConfig();
        cfg.setInt("general/total_tiles", std::max(threads, 4));
        cfg.set("sync/model", model);
        Simulator sim(cfg);
        workloads::WorkloadParams p = w.defaults;
        p.threads = threads;
        workloads::SimRunResult r = workloads::runSim(sim, w, p);
        rows.push_back(Row{model, r.wallSeconds, r.simulatedCycles,
                           sim.syncModel().syncEvents(),
                           sim.syncModel().syncWaitMicroseconds()});
    }

    const Row& reference = rows[0]; // lax_barrier
    TextTable table;
    table.header({"model", "wall(s)", "sim cycles", "vs barrier",
                  "sync events", "sync wait(us)"});
    for (const Row& r : rows) {
        double dev = 100.0 *
                     std::fabs(static_cast<double>(r.cycles) -
                               static_cast<double>(reference.cycles)) /
                     static_cast<double>(reference.cycles);
        table.row({r.model, TextTable::num(r.wall, 3),
                   std::to_string(r.cycles),
                   TextTable::num(dev, 2) + "%",
                   std::to_string(r.events),
                   std::to_string(r.waitMicros)});
    }
    std::printf("%s on %d threads\n\n%s\n", app, threads,
                table.render().c_str());
    std::printf("Lax runs fastest but lets clocks drift; LaxBarrier "
                "approximates\ncycle-accuracy at a wall-clock cost; "
                "LaxP2P sits between (paper §4.3).\n");
    return 0;
}
