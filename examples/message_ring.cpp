/**
 * @file
 * Message-passing example: a token ring over the user-level messaging
 * API (paper §3.3), the "direct core-to-core messaging interface" that
 * the dynamic binary translator adds to the target ISA.
 *
 * N threads arrange in a ring; a counter token circulates R laps. Each
 * hop is a real network message routed by the application network model
 * (mesh with contention by default), so the printed per-hop latency
 * reflects the target's topology and distances.
 *
 *   ./examples/message_ring [ring_size] [laps]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "common/config.h"
#include "core/api.h"
#include "core/simulator.h"

using namespace graphite;

namespace
{

struct RingArgs
{
    int size = 8;
    int laps = 4;
    std::uint64_t finalToken = 0;
    cycle_t ringCycles = 0;
};

struct NodeArgs
{
    RingArgs* ring;
    tile_id_t next;  ///< tile of the ring successor
    int hops;        ///< messages this node must forward
};

void
ringNode(void* p)
{
    auto* node = static_cast<NodeArgs*>(p);
    for (int h = 0; h < node->hops; ++h) {
        api::Message msg = api::msgRecv();
        std::uint64_t token;
        std::memcpy(&token, msg.data.data(), 8);
        ++token;
        api::exec(InstrClass::IntAlu, 8); // token processing
        api::msgSend(node->next, &token, 8);
    }
}

void
ringMain(void* p)
{
    auto* ring = static_cast<RingArgs*>(p);
    const int n = ring->size;

    // Main is node 0 on tile 0; the MCP assigns spawned threads the
    // lowest free tiles in order, so node i lands on tile i. Argument
    // blocks are fully initialized before each spawn (pthread style).
    std::vector<NodeArgs> nodes(n);
    std::vector<tile_id_t> tids(n);
    tids[0] = api::tileId();
    for (int i = 1; i < n; ++i) {
        nodes[i].ring = ring;
        nodes[i].next = static_cast<tile_id_t>((i + 1) % n);
        nodes[i].hops = ring->laps;
        tids[i] = api::threadSpawn(&ringNode, &nodes[i]);
        GRAPHITE_ASSERT(tids[i] == i);
    }

    cycle_t start = api::cycle();
    std::uint64_t token = 0;
    api::msgSend(tids[1 % n], &token, 8);
    for (int lap = 0; lap < ring->laps; ++lap) {
        api::Message msg = api::msgRecv();
        std::memcpy(&token, msg.data.data(), 8);
        if (lap + 1 < ring->laps) {
            ++token;
            api::msgSend(tids[1 % n], &token, 8);
        }
    }
    ring->finalToken = token;
    ring->ringCycles = api::cycle() - start;

    for (int i = 1; i < n; ++i)
        api::threadJoin(tids[i]);
}

} // namespace

int
main(int argc, char** argv)
{
    RingArgs ring;
    ring.size = argc > 1 ? std::atoi(argv[1]) : 8;
    ring.laps = argc > 2 ? std::atoi(argv[2]) : 4;

    Config cfg = defaultTargetConfig();
    cfg.setInt("general/total_tiles", std::max(ring.size, 4));
    cfg.setInt("general/num_processes", 2);

    Simulator sim(cfg);
    sim.run(&ringMain, &ring);

    // Each lap visits every node once: size hops per lap, minus the
    // final unsent hop.
    std::uint64_t hops =
        static_cast<std::uint64_t>(ring.size) * ring.laps - 1;
    std::printf("ring size             : %d tiles\n", ring.size);
    std::printf("laps                  : %d\n", ring.laps);
    std::printf("token value           : %llu (expected %llu)\n",
                static_cast<unsigned long long>(ring.finalToken),
                static_cast<unsigned long long>(hops));
    std::printf("simulated ring time   : %llu cycles\n",
                static_cast<unsigned long long>(ring.ringCycles));
    std::printf("per-hop latency       : %.1f cycles\n",
                static_cast<double>(ring.ringCycles) /
                    static_cast<double>(hops));
    const NetworkModel& app =
        sim.fabric().modelFor(PacketType::App);
    std::printf("app-net packets/hops  : %llu / %llu\n",
                static_cast<unsigned long long>(app.packetsRouted()),
                static_cast<unsigned long long>(app.totalHops()));
    return ring.finalToken == hops ? 0 : 1;
}
