/**
 * @file
 * Quickstart: the smallest complete Graphite simulation.
 *
 * Builds a 16-tile target with the paper's default parameters (Table 1),
 * runs a multi-threaded application that sums an array in parallel using
 * target-space memory, threads, a mutex, and a barrier, then prints the
 * headline statistics a user typically wants: simulated cycles,
 * instructions, cache behavior, and network traffic.
 *
 *   ./examples/quickstart [num_tiles] [num_threads]
 */

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/config.h"
#include "core/api.h"
#include "core/simulator.h"

using namespace graphite;

namespace
{

struct AppArgs
{
    addr_t data = 0;   ///< array of N uint64 in target memory
    addr_t total = 0;  ///< shared accumulator
    addr_t mutex = 0;
    addr_t barrier = 0;
    int n = 4096;
    int threads = 8;
    std::uint64_t result = 0;
};

void
worker(void* p)
{
    auto* a = static_cast<AppArgs*>(p);
    // Figure out which chunk this thread owns. Thread identity is the
    // tile id, but the app passes logical ids through the barrier order;
    // simplest is to re-derive the chunk from a shared ticket.
    static std::atomic<int> ticket{0};
    int self = ticket.fetch_add(1) % a->threads;

    int lo = a->n * self / a->threads;
    int hi = a->n * (self + 1) / a->threads;
    std::uint64_t local = 0;
    for (int i = lo; i < hi; ++i) {
        local += api::read<std::uint64_t>(a->data + 8ull * i);
        api::exec(InstrClass::IntAlu, 2);
    }
    api::mutexLock(a->mutex);
    std::uint64_t t = api::read<std::uint64_t>(a->total);
    api::write<std::uint64_t>(a->total, t + local);
    api::mutexUnlock(a->mutex);
    api::barrierWait(a->barrier);
}

void
appMain(void* p)
{
    auto* a = static_cast<AppArgs*>(p);
    a->data = api::malloc(8ull * a->n);
    a->total = api::malloc(8);
    a->mutex = api::malloc(api::MUTEX_BYTES);
    a->barrier = api::malloc(api::BARRIER_BYTES);
    api::write<std::uint64_t>(a->total, 0);
    api::mutexInit(a->mutex);
    api::barrierInit(a->barrier, a->threads);

    for (int i = 0; i < a->n; ++i)
        api::write<std::uint64_t>(a->data + 8ull * i,
                                  static_cast<std::uint64_t>(i));

    std::vector<tile_id_t> tids;
    for (int i = 1; i < a->threads; ++i)
        tids.push_back(api::threadSpawn(&worker, a));
    worker(a); // main participates
    for (tile_id_t t : tids)
        api::threadJoin(t);

    a->result = api::read<std::uint64_t>(a->total);
}

} // namespace

int
main(int argc, char** argv)
{
    int tiles = argc > 1 ? std::atoi(argv[1]) : 16;
    int threads = argc > 2 ? std::atoi(argv[2]) : 8;

    Config cfg = defaultTargetConfig(); // paper Table 1 parameters
    cfg.setInt("general/total_tiles", tiles);
    cfg.setInt("general/num_processes", 2); // simulate 2 host processes

    Simulator sim(cfg);
    AppArgs args;
    args.threads = threads;
    SimulationSummary s = sim.run(&appMain, &args);

    std::uint64_t expect =
        static_cast<std::uint64_t>(args.n) * (args.n - 1) / 2;
    std::printf("parallel sum          : %llu (%s)\n",
                static_cast<unsigned long long>(args.result),
                args.result == expect ? "correct" : "WRONG");
    std::printf("simulated cycles      : %llu\n",
                static_cast<unsigned long long>(s.simulatedCycles));
    std::printf("instructions retired  : %llu\n",
                static_cast<unsigned long long>(s.totalInstructions));
    std::printf("threads spawned       : %llu\n",
                static_cast<unsigned long long>(s.threadsSpawned));
    std::printf("host wall time        : %.3f s\n", s.wallSeconds);

    stat_t l1_acc = 0, l1_miss = 0, l2_miss = 0;
    for (tile_id_t t = 0; t < sim.totalTiles(); ++t) {
        if (Cache* l1 = sim.memory().l1d(t)) {
            l1_acc += l1->accesses();
            l1_miss += l1->misses();
        }
        l2_miss += sim.memory().l2(t).misses();
    }
    std::printf("L1D accesses/misses   : %llu / %llu\n",
                static_cast<unsigned long long>(l1_acc),
                static_cast<unsigned long long>(l1_miss));
    std::printf("L2 misses             : %llu\n",
                static_cast<unsigned long long>(l2_miss));
    std::printf("memory-net packets    : %llu\n",
                static_cast<unsigned long long>(
                    sim.fabric()
                        .modelFor(PacketType::Memory)
                        .packetsRouted()));
    std::printf("coherence check       : %s\n",
                sim.memory().validateCoherence().empty() ? "clean"
                                                         : "VIOLATED");
    return args.result == expect ? 0 : 1;
}
