/**
 * @file
 * Architectural-study example: compare cache-coherence directory schemes
 * on one workload, the §4.4 methodology in ~60 lines of user code.
 *
 * Runs the blackscholes kernel on a configurable target under each of
 * the four directory schemes and prints simulated run-time, average
 * memory latency, invalidations, pointer evictions and LimitLESS traps —
 * the raw material behind Figure 9.
 *
 *   ./examples/coherence_study [tiles] [options]
 */

#include <cstdio>
#include <cstdlib>

#include "common/config.h"
#include "common/table.h"
#include "core/simulator.h"
#include "workloads/registry.h"

using namespace graphite;

int
main(int argc, char** argv)
{
    int tiles = argc > 1 ? std::atoi(argv[1]) : 16;
    int options = argc > 2 ? std::atoi(argv[2]) : 1024;

    struct Scheme
    {
        const char* label;
        const char* type;
        int sharers;
    };
    const Scheme schemes[] = {
        {"Dir4NB", "limited_no_broadcast", 4},
        {"Dir16NB", "limited_no_broadcast", 16},
        {"Full-map", "full_map", 0},
        {"LimitLESS(4)", "limitless", 4},
    };

    TextTable table;
    table.header({"scheme", "sim cycles", "avg mem lat", "invals",
                  "ptr evicts", "sw traps"});

    const workloads::WorkloadInfo& w =
        workloads::findWorkload("blackscholes");
    for (const Scheme& s : schemes) {
        Config cfg = defaultTargetConfig();
        cfg.setInt("general/total_tiles", tiles);
        cfg.set("caching_protocol/directory_type", s.type);
        if (s.sharers > 0)
            cfg.setInt("caching_protocol/max_sharers", s.sharers);

        Simulator sim(cfg);
        workloads::WorkloadParams p = w.defaults;
        p.threads = tiles;
        p.size = options;
        workloads::SimRunResult r = workloads::runSim(sim, w, p);

        stat_t accesses = 0, latency = 0, invals = 0, evicts = 0,
               traps = 0;
        for (tile_id_t t = 0; t < tiles; ++t) {
            const TileMemoryStats& ms = sim.memory().stats(t);
            accesses += ms.totalAccesses;
            latency += ms.totalLatency;
            invals += ms.invalidationsSent;
            evicts += sim.memory().directory(t).pointerEvictions();
            traps += sim.memory().directory(t).softwareTraps();
        }
        table.row({s.label,
                   std::to_string(r.regionCycles ? r.regionCycles
                                                 : r.simulatedCycles),
                   TextTable::num(accesses
                                      ? static_cast<double>(latency) /
                                            static_cast<double>(accesses)
                                      : 0,
                                  1),
                   std::to_string(invals), std::to_string(evicts),
                   std::to_string(traps)});
    }

    std::printf("blackscholes, %d tiles, %d options\n\n%s\n", tiles,
                options, table.render().c_str());
    std::printf("Limited directories (Dir4NB/Dir16NB) evict sharer "
                "pointers on heavily\nread-shared lines, inflating "
                "memory latency; LimitLESS pays software traps\ninstead "
                "and tracks the full-map directory closely (paper "
                "§4.4).\n");
    return 0;
}
