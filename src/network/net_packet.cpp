#include "network/net_packet.h"

#include <cstring>

#include "common/log.h"

namespace graphite
{

std::vector<std::uint8_t>
NetPacket::serialize() const
{
    std::vector<std::uint8_t> out;
    out.resize(1 + 4 + 4 + 8 + 8 + 8 + payload.size());
    size_t off = 0;
    out[off++] = static_cast<std::uint8_t>(type);
    std::memcpy(out.data() + off, &sender, 4);
    off += 4;
    std::memcpy(out.data() + off, &receiver, 4);
    off += 4;
    std::memcpy(out.data() + off, &time, 8);
    off += 8;
    std::memcpy(out.data() + off, &traceId, 8);
    off += 8;
    std::memcpy(out.data() + off, &spanId, 8);
    off += 8;
    if (!payload.empty())
        std::memcpy(out.data() + off, payload.data(), payload.size());
    return out;
}

NetPacket
NetPacket::deserialize(const std::vector<std::uint8_t>& bytes)
{
    constexpr size_t WIRE_HEADER = 1 + 4 + 4 + 8 + 8 + 8;
    if (bytes.size() < WIRE_HEADER)
        panic("net packet deserialize: short buffer ({} bytes)",
              bytes.size());
    NetPacket pkt;
    size_t off = 0;
    pkt.type = static_cast<PacketType>(bytes[off++]);
    if (static_cast<int>(pkt.type) >= NUM_PACKET_TYPES)
        panic("net packet deserialize: bad type {}",
              static_cast<int>(pkt.type));
    std::memcpy(&pkt.sender, bytes.data() + off, 4);
    off += 4;
    std::memcpy(&pkt.receiver, bytes.data() + off, 4);
    off += 4;
    std::memcpy(&pkt.time, bytes.data() + off, 8);
    off += 8;
    std::memcpy(&pkt.traceId, bytes.data() + off, 8);
    off += 8;
    std::memcpy(&pkt.spanId, bytes.data() + off, 8);
    off += 8;
    pkt.payload.assign(bytes.begin() + off, bytes.end());
    return pkt;
}

} // namespace graphite
