/**
 * @file
 * Network component: shared fabric (models + accounting) and per-tile
 * endpoints (paper §3.3).
 *
 * "The network provides common functionality, such as the bundling of
 * packets, multiplexing of messages, high-level interface to the rest of
 * the system, and internal interface to the transport layer."
 *
 * Functionality/modeling split:
 *  - NetworkFabric owns one NetworkModel per packet type (selected by
 *    config), the global-progress estimator, and traffic accounting used
 *    by the host model. Timing for *any* message — whether or not it is
 *    physically transported — goes through NetworkFabric::model().
 *  - Network is a tile's endpoint: it physically sends/receives packets
 *    over the transport and demultiplexes arrivals by packet type.
 *    "Regardless of the time-stamp of a packet, the network forwards
 *    messages immediately and delivers them in the order they are
 *    received" — lax semantics.
 */

#pragma once

#include <array>
#include <atomic>
#include <deque>
#include <memory>
#include <mutex>

#include "common/fixed_types.h"
#include "common/lockdep.h"
#include "network/global_progress.h"
#include "network/net_packet.h"
#include "network/network_model.h"
#include "transport/transport.h"

namespace graphite
{

class Config;

namespace snapshot
{
class SnapshotWriter;
class SnapshotReader;
} // namespace snapshot

/**
 * Simulation-wide network state: the swappable models and the traffic
 * accounting consumed by the host cluster model.
 */
class NetworkFabric
{
  public:
    /**
     * Build models from config keys network/app_model,
     * network/memory_model, network/system_model.
     */
    NetworkFabric(const ClusterTopology& topo, const Config& cfg);

    /**
     * Model one message and account for it.
     * @return modeled network latency in cycles.
     */
    cycle_t model(PacketType type, tile_id_t src, tile_id_t dst,
                  size_t bytes, cycle_t send_time);

    /**
     * Like model() but reporting the latency decomposition (the span
     * engine's attribution input). Identical accounting and totals.
     */
    NetBreakdown modelEx(PacketType type, tile_id_t src, tile_id_t dst,
                         size_t bytes, cycle_t send_time);

    /**
     * @name In-flight application packets
     * Sent via a tile endpoint but not yet pulled off the transport
     * by the receiver. Sampled as the net.inflight_packets gauge so
     * span queueing attribution can be cross-checked coarsely.
     * @{
     */
    void noteAppSend() { inflightApp_.fetch_add(1, std::memory_order_relaxed); }
    void noteAppDelivered() { inflightApp_.fetch_sub(1, std::memory_order_relaxed); }
    stat_t
    inflightAppPackets() const
    {
        std::int64_t v = inflightApp_.load(std::memory_order_relaxed);
        return v > 0 ? static_cast<stat_t>(v) : 0;
    }
    /** @} */

    /** The model serving @p type (for stats inspection). */
    NetworkModel& modelFor(PacketType type);
    const NetworkModel& modelFor(PacketType type) const;

    GlobalProgress& progress() { return progress_; }
    const ClusterTopology& topology() const { return topo_; }

    /** @name Locality accounting per packet type (host model input). @{ */
    stat_t intraProcessMessages(PacketType type) const;
    stat_t interProcessMessages(PacketType type) const;
    stat_t intraProcessBytes(PacketType type) const;
    stat_t interProcessBytes(PacketType type) const;
    /** @} */

    /**
     * @name Tile-pair traffic matrix
     * Message/byte counts per (src, dst) tile pair across App + Memory
     * traffic. The host cluster model uses this to recompute message
     * locality for *hypothetical* process/machine layouts (the
     * functional run's striping need not match the modeled one).
     * Enabled by config network/record_traffic_matrix (default true).
     * @{
     */
    bool trafficMatrixEnabled() const { return !msgMatrix_.empty(); }
    stat_t pairMessages(tile_id_t src, tile_id_t dst) const;
    stat_t pairBytes(tile_id_t src, tile_id_t dst) const;
    /** @} */

    /** @name Checkpoint serialization (at quiescence only) @{ */
    void saveState(snapshot::SnapshotWriter& w) const;
    void loadState(snapshot::SnapshotReader& r);
    /** @} */

  private:
    struct LocalityCounters
    {
        std::atomic<stat_t> intraMsgs{0};
        std::atomic<stat_t> interMsgs{0};
        std::atomic<stat_t> intraBytes{0};
        std::atomic<stat_t> interBytes{0};
    };

    ClusterTopology topo_;
    GlobalProgress progress_;
    std::atomic<std::int64_t> inflightApp_{0};
    std::array<std::unique_ptr<NetworkModel>, NUM_PACKET_TYPES> models_;
    std::array<LocalityCounters, NUM_PACKET_TYPES> counters_;
    /** N*N atomic counters, src-major; empty when recording disabled. */
    std::vector<std::atomic<stat_t>> msgMatrix_;
    std::vector<std::atomic<stat_t>> byteMatrix_;
};

/**
 * A tile's network endpoint. One logical receiver (the tile's thread);
 * any thread may send.
 */
class Network
{
  public:
    Network(tile_id_t tile, NetworkFabric& fabric, Transport& transport);

    /**
     * Model, stamp, and physically send a packet. The packet's arrival
     * time is send_time + modeled latency.
     */
    void send(PacketType type, tile_id_t dst,
              std::vector<std::uint8_t> payload, cycle_t send_time);

    /**
     * Blocking receive of the next packet of @p type. Packets of other
     * types arriving meanwhile are queued for their own receivers.
     */
    NetPacket recv(PacketType type);

    /** Non-blocking variant of recv(). */
    bool tryRecv(PacketType type, NetPacket& out);

    tile_id_t tileId() const { return tile_; }
    NetworkFabric& fabric() { return fabric_; }

  private:
    bool popPending(PacketType type, NetPacket& out);

    tile_id_t tile_;
    NetworkFabric& fabric_;
    Transport& transport_;
    /** Per-type stash for packets received while waiting on another type. */
    lockdep::OrderedMutex stashMutex_{lockdep::LockClass::network_stash};
    std::array<std::deque<NetPacket>, NUM_PACKET_TYPES> stash_;
};

} // namespace graphite
