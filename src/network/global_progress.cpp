#include "network/global_progress.h"

#include "common/log.h"

namespace graphite
{

GlobalProgress::GlobalProgress(size_t window_size)
{
    if (window_size == 0)
        fatal("global progress window size must be >= 1");
    window_.resize(window_size, 0);
}

void
GlobalProgress::observe(cycle_t timestamp)
{
    std::scoped_lock lock(mutex_);
    if (count_ < window_.size()) {
        ++count_;
    } else {
        sum_ -= window_[next_];
    }
    window_[next_] = timestamp;
    sum_ += timestamp;
    next_ = (next_ + 1) % window_.size();
}

cycle_t
GlobalProgress::estimate() const
{
    std::scoped_lock lock(mutex_);
    if (count_ == 0)
        return 0;
    return static_cast<cycle_t>(sum_ / count_);
}

size_t
GlobalProgress::samples() const
{
    std::scoped_lock lock(mutex_);
    return count_;
}

} // namespace graphite
