#include "common/lockdep.h"
#include "network/global_progress.h"

#include "common/log.h"
#include "common/strfmt.h"
#include "snapshot/snapshot.h"

namespace graphite
{

GlobalProgress::GlobalProgress(size_t window_size)
{
    if (window_size == 0)
        fatal("global progress window size must be >= 1");
    window_.resize(window_size, 0);
}

void
GlobalProgress::observe(cycle_t timestamp)
{
    lockdep::Guard lock(mutex_);
    if (count_ < window_.size()) {
        ++count_;
    } else {
        sum_ -= window_[next_];
    }
    window_[next_] = timestamp;
    sum_ += timestamp;
    next_ = (next_ + 1) % window_.size();
}

cycle_t
GlobalProgress::estimate() const
{
    lockdep::Guard lock(mutex_);
    if (count_ == 0)
        return 0;
    return static_cast<cycle_t>(sum_ / count_);
}

size_t
GlobalProgress::samples() const
{
    lockdep::Guard lock(mutex_);
    return count_;
}

void
GlobalProgress::saveState(snapshot::SnapshotWriter& w) const
{
    lockdep::Guard lock(mutex_);
    w.u64(static_cast<std::uint64_t>(window_.size()));
    for (cycle_t c : window_)
        w.u64(c);
    w.u64(static_cast<std::uint64_t>(next_));
    w.u64(static_cast<std::uint64_t>(count_));
    // 128-bit running sum, low word first.
    w.u64(static_cast<std::uint64_t>(sum_));
    w.u64(static_cast<std::uint64_t>(sum_ >> 64));
}

void
GlobalProgress::loadState(snapshot::SnapshotReader& r)
{
    lockdep::Guard lock(mutex_);
    std::uint64_t size = r.u64();
    if (size != window_.size())
        throw snapshot::SnapshotError(
            strfmt("snapshot: global-progress window mismatch "
                   "(snapshot {}, configured {})",
                   size, window_.size()));
    for (cycle_t& c : window_)
        c = r.u64();
    next_ = static_cast<size_t>(r.u64());
    count_ = static_cast<size_t>(r.u64());
    std::uint64_t lo = r.u64();
    std::uint64_t hi = r.u64();
    sum_ = (static_cast<unsigned __int128>(hi) << 64) | lo;
}

} // namespace graphite
