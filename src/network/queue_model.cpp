#include "common/lockdep.h"
#include "network/queue_model.h"

#include <algorithm>

#include "common/log.h"
#include "network/global_progress.h"
#include "snapshot/snapshot.h"

namespace graphite
{

namespace
{

// Queue clocks are u64 cycle counts; synthetic workloads (and fuzzed
// configs) can push arrivals near the top of the range, where a plain
// add wraps and the backlog math silently goes backwards.
cycle_t
satAdd(cycle_t a, cycle_t b)
{
    cycle_t sum = a + b;
    return sum < a ? ~cycle_t{0} : sum;
}

} // namespace

QueueModel::QueueModel(const GlobalProgress* progress,
                       cycle_t outlier_window, cycle_t max_backlog)
    : progress_(progress),
      outlierWindow_(outlier_window),
      maxBacklog_(max_backlog)
{
}

cycle_t
QueueModel::enqueue(cycle_t arrival_time, cycle_t processing_time)
{
    cycle_t effective_arrival = arrival_time;
    if (progress_ != nullptr && progress_->samples() > 0) {
        cycle_t now = progress_->estimate();
        cycle_t lo = now > outlierWindow_ ? now - outlierWindow_ : 0;
        cycle_t hi = satAdd(now, outlierWindow_);
        if (arrival_time < lo || arrival_time > hi) {
            effective_arrival = std::clamp(arrival_time, lo, hi);
        }
    }

    lockdep::Guard lock(mutex_);
    ++requests_;
    // Finite buffering / back-pressure: the backlog seen by any packet
    // is bounded, so a burst cannot drive latencies without bound.
    if (queueClock_ > satAdd(effective_arrival, maxBacklog_)) {
        queueClock_ = satAdd(effective_arrival, maxBacklog_);
        ++saturations_;
    }
    cycle_t delay = 0;
    if (queueClock_ > effective_arrival) {
        delay = queueClock_ - effective_arrival;
        if (effective_arrival != arrival_time)
            ++clamped_;
    } else {
        queueClock_ = effective_arrival;
    }
    queueClock_ = satAdd(queueClock_, processing_time);
    totalDelay_ += delay;
    GRAPHITE_ASSERT(delay < (1ull << 38));
    return delay;
}

cycle_t
QueueModel::queueClock() const
{
    lockdep::Guard lock(mutex_);
    return queueClock_;
}

stat_t
QueueModel::totalRequests() const
{
    lockdep::Guard lock(mutex_);
    return requests_;
}

stat_t
QueueModel::totalQueueDelay() const
{
    lockdep::Guard lock(mutex_);
    return totalDelay_;
}

stat_t
QueueModel::clampedArrivals() const
{
    lockdep::Guard lock(mutex_);
    return clamped_;
}

stat_t
QueueModel::saturations() const
{
    lockdep::Guard lock(mutex_);
    return saturations_;
}

void
QueueModel::saveState(snapshot::SnapshotWriter& w) const
{
    lockdep::Guard lock(mutex_);
    w.u64(queueClock_);
    w.u64(requests_);
    w.u64(totalDelay_);
    w.u64(clamped_);
    w.u64(saturations_);
}

void
QueueModel::loadState(snapshot::SnapshotReader& r)
{
    lockdep::Guard lock(mutex_);
    queueClock_ = r.u64();
    requests_ = r.u64();
    totalDelay_ = r.u64();
    clamped_ = r.u64();
    saturations_ = r.u64();
}

} // namespace graphite
