/**
 * @file
 * Windowed estimate of global simulation progress (paper §3.6.1).
 *
 * Under lax synchronization there is no global cycle count, yet shared
 * resources (DRAM controllers, mesh links) need a notion of "now" to model
 * queueing — especially on tiles with no active thread, whose local clocks
 * never advance. Graphite's solution: "packet time-stamps [are used] to
 * build an approximation of global progress. A window of the most
 * recently-seen time-stamps is kept, on the order of the number of tiles
 * in the simulation. The average of these time stamps gives an
 * approximation of global progress."
 */

#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "common/fixed_types.h"
#include "common/lockdep.h"

namespace graphite
{

namespace snapshot
{
class SnapshotWriter;
class SnapshotReader;
} // namespace snapshot

/**
 * Sliding-window average of recently observed message timestamps.
 * Thread-safe; observe() is called on every modeled message.
 */
class GlobalProgress
{
  public:
    /** @param window_size number of samples retained (>= 1). */
    explicit GlobalProgress(size_t window_size);

    /** Record a message timestamp. */
    void observe(cycle_t timestamp);

    /** @return current estimate of global progress (0 before any data). */
    cycle_t estimate() const;

    /** Number of samples observed so far (saturates at window size). */
    size_t samples() const;

    /** @name Checkpoint serialization @{ */
    void saveState(snapshot::SnapshotWriter& w) const;
    void loadState(snapshot::SnapshotReader& r);
    /** @} */

  private:
    mutable lockdep::OrderedMutex mutex_{lockdep::LockClass::global_progress};
    std::vector<cycle_t> window_;
    size_t next_ = 0;
    size_t count_ = 0;
    /** Running sum of the samples currently in the window. */
    unsigned __int128 sum_ = 0;
};

} // namespace graphite
