#include "network/network_model.h"

#include <cmath>

#include "common/config.h"
#include "common/log.h"
#include "common/strfmt.h"
#include "network/global_progress.h"
#include "snapshot/snapshot.h"

namespace graphite
{

// ---------------------------------------------------------------- MeshShape

MeshShape::MeshShape(tile_id_t tiles)
{
    if (tiles <= 0)
        fatal("mesh shape: tile count must be positive (got {})", tiles);
    width_ = static_cast<int>(
        std::ceil(std::sqrt(static_cast<double>(tiles))));
    height_ = (static_cast<int>(tiles) + width_ - 1) / width_;
}

int
MeshShape::hops(tile_id_t src, tile_id_t dst) const
{
    return std::abs(xOf(src) - xOf(dst)) + std::abs(yOf(src) - yOf(dst));
}

std::vector<int>
MeshShape::route(tile_id_t src, tile_id_t dst) const
{
    std::vector<int> links;
    int x = xOf(src), y = yOf(src);
    const int dx = xOf(dst), dy = yOf(dst);
    // X first, then Y (dimension-ordered, deadlock-free).
    while (x != dx) {
        int dir = (dx > x) ? 0 /*E*/ : 1 /*W*/;
        links.push_back((y * width_ + x) * 4 + dir);
        x += (dx > x) ? 1 : -1;
    }
    while (y != dy) {
        int dir = (dy > y) ? 3 /*S*/ : 2 /*N*/;
        links.push_back((y * width_ + x) * 4 + dir);
        y += (dy > y) ? 1 : -1;
    }
    return links;
}

// ------------------------------------------------------- MagicNetworkModel

cycle_t
MagicNetworkModel::computeLatency(tile_id_t, tile_id_t, size_t bytes,
                                  cycle_t)
{
    account(bytes, 0, 0);
    return 0;
}

// ---------------------------------------------------- EMeshHopNetworkModel

EMeshHopNetworkModel::EMeshHopNetworkModel(tile_id_t total_tiles,
                                           cycle_t hop_latency,
                                           size_t link_bandwidth_bytes)
    : shape_(total_tiles),
      hopLatency_(hop_latency),
      linkBandwidth_(link_bandwidth_bytes)
{
    if (link_bandwidth_bytes == 0)
        fatal("emesh: link bandwidth must be positive");
}

cycle_t
EMeshHopNetworkModel::serializationCycles(size_t bytes) const
{
    return (bytes + linkBandwidth_ - 1) / linkBandwidth_;
}

cycle_t
EMeshHopNetworkModel::computeLatency(tile_id_t src, tile_id_t dst,
                                     size_t bytes, cycle_t send_time)
{
    return computeLatencyEx(src, dst, bytes, send_time).total;
}

NetBreakdown
EMeshHopNetworkModel::computeLatencyEx(tile_id_t src, tile_id_t dst,
                                       size_t bytes, cycle_t)
{
    NetBreakdown bd;
    bd.hops = shape_.hops(src, dst);
    bd.hop = static_cast<cycle_t>(bd.hops) * hopLatency_;
    bd.serialization = serializationCycles(bytes);
    bd.total = bd.hop + bd.serialization;
    account(bytes, bd.total, bd.hops);
    return bd;
}

// --------------------------------------------- EMeshContentionNetworkModel

EMeshContentionNetworkModel::EMeshContentionNetworkModel(
    tile_id_t total_tiles, cycle_t hop_latency,
    size_t link_bandwidth_bytes, GlobalProgress* progress,
    cycle_t outlier_window, cycle_t max_backlog)
    : EMeshHopNetworkModel(total_tiles, hop_latency,
                           link_bandwidth_bytes),
      progress_(progress)
{
    links_.reserve(shape_.numLinks());
    for (int i = 0; i < shape_.numLinks(); ++i)
        links_.push_back(std::make_unique<QueueModel>(
            progress_, outlier_window, max_backlog));
}

cycle_t
EMeshContentionNetworkModel::computeLatency(tile_id_t src, tile_id_t dst,
                                            size_t bytes,
                                            cycle_t send_time)
{
    return computeLatencyEx(src, dst, bytes, send_time).total;
}

NetBreakdown
EMeshContentionNetworkModel::computeLatencyEx(tile_id_t src,
                                              tile_id_t dst,
                                              size_t bytes,
                                              cycle_t send_time)
{
    if (progress_ != nullptr)
        progress_->observe(send_time);

    NetBreakdown bd;
    const cycle_t service = serializationCycles(bytes);
    bd.serialization = service;
    cycle_t latency = service; // injection serialization
    for (int link : shape_.route(src, dst)) {
        cycle_t arrival = send_time + latency;
        cycle_t queue_delay = links_[link]->enqueue(arrival, service);
        latency += hopLatency_ + queue_delay;
        bd.hop += hopLatency_;
        bd.queue += queue_delay;
    }
    bd.hops = shape_.hops(src, dst);
    bd.total = latency;
    account(bytes, latency, bd.hops);
    return bd;
}

stat_t
EMeshContentionNetworkModel::totalContentionDelay() const
{
    stat_t total = 0;
    for (const auto& link : links_)
        total += link->totalQueueDelay();
    return total;
}

// ----------------------------------------------------------- serialization

void
NetworkModel::saveState(snapshot::SnapshotWriter& w) const
{
    w.u64(packets_.load(std::memory_order_relaxed));
    w.u64(bytes_.load(std::memory_order_relaxed));
    w.u64(latency_.load(std::memory_order_relaxed));
    w.u64(hops_.load(std::memory_order_relaxed));
}

void
NetworkModel::loadState(snapshot::SnapshotReader& r)
{
    packets_.store(r.u64(), std::memory_order_relaxed);
    bytes_.store(r.u64(), std::memory_order_relaxed);
    latency_.store(r.u64(), std::memory_order_relaxed);
    hops_.store(r.u64(), std::memory_order_relaxed);
}

void
EMeshContentionNetworkModel::saveState(
    snapshot::SnapshotWriter& w) const
{
    NetworkModel::saveState(w);
    w.u64(static_cast<std::uint64_t>(links_.size()));
    for (const auto& link : links_)
        link->saveState(w);
}

void
EMeshContentionNetworkModel::loadState(snapshot::SnapshotReader& r)
{
    NetworkModel::loadState(r);
    std::uint64_t count = r.u64();
    if (count != links_.size())
        throw snapshot::SnapshotError(
            strfmt("snapshot: mesh link count mismatch (snapshot {}, "
                   "configured {})",
                   count, links_.size()));
    for (auto& link : links_)
        link->loadState(r);
}

// ------------------------------------------------------------------ factory

std::unique_ptr<NetworkModel>
NetworkModel::create(const std::string& type, tile_id_t total_tiles,
                     const Config& cfg, GlobalProgress* progress)
{
    if (type == "magic")
        return std::make_unique<MagicNetworkModel>();

    cycle_t hop = cfg.getInt("network/hop_latency", 2);
    size_t bw = cfg.getInt("network/link_bandwidth_bytes", 8);
    if (type == "emesh_hop")
        return std::make_unique<EMeshHopNetworkModel>(total_tiles, hop,
                                                      bw);
    if (type == "emesh_contention")
        return std::make_unique<EMeshContentionNetworkModel>(
            total_tiles, hop, bw, progress,
            cfg.getInt("network/queue_outlier_window", 100000),
            cfg.getInt("network/queue_max_backlog", 10000));

    fatal("unknown network model type '{}'", type);
}

} // namespace graphite
