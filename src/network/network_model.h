/**
 * @file
 * Swappable network timing models (paper §3.3).
 *
 * "The network models are responsible for routing packets and updating
 * time-stamps to account for network delay." All models share a common
 * interface so implementations are swappable via config. Three models are
 * provided, matching the paper:
 *
 *  - MagicNetworkModel:           zero-latency; used for system messages.
 *  - EMeshHopNetworkModel:        electrical 2D mesh, latency from hop
 *                                 count and serialization only.
 *  - EMeshContentionNetworkModel: mesh with per-link analytical contention
 *                                 (queue clocks + global progress), the
 *                                 "mesh model that tracks global network
 *                                 utilization to determine latency".
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/fixed_types.h"
#include "common/stats.h"
#include "network/queue_model.h"

namespace graphite
{

class Config;
class GlobalProgress;

namespace snapshot
{
class SnapshotWriter;
class SnapshotReader;
} // namespace snapshot

/** 2D mesh geometry shared by the mesh models. */
class MeshShape
{
  public:
    /** Smallest near-square mesh holding @p tiles endpoints. */
    explicit MeshShape(tile_id_t tiles);

    int width() const { return width_; }
    int height() const { return height_; }

    int xOf(tile_id_t t) const { return static_cast<int>(t) % width_; }
    int yOf(tile_id_t t) const { return static_cast<int>(t) / width_; }

    /** Manhattan distance under XY dimension-ordered routing. */
    int hops(tile_id_t src, tile_id_t dst) const;

    /**
     * Enumerate the directed links of the XY route src -> dst.
     * Links are identified as tile*4 + direction (0=E,1=W,2=N,3=S),
     * naming the link *leaving* that tile.
     */
    std::vector<int> route(tile_id_t src, tile_id_t dst) const;

    /** Total number of directed link identifiers. */
    int numLinks() const { return width_ * height_ * 4; }

  private:
    int width_;
    int height_;
};

/**
 * Decomposition of one packet's modeled latency, consumed by the span
 * engine's latency attribution. Invariant:
 * total == hop + queue + serialization (exact accounting).
 */
struct NetBreakdown
{
    cycle_t total = 0;
    cycle_t hop = 0;           ///< per-hop propagation
    cycle_t queue = 0;         ///< link-contention queueing delay
    cycle_t serialization = 0; ///< bandwidth-limited injection
    int hops = 0;
};

/**
 * Abstract network timing model. Thread-safe: any application thread may
 * model a packet concurrently (memory traffic is modeled from the
 * requesting thread under lax synchronization).
 */
class NetworkModel
{
  public:
    virtual ~NetworkModel() = default;

    /**
     * Model the traversal of one packet.
     * @param src       sending tile
     * @param dst       receiving tile
     * @param bytes     modeled packet size (header + payload)
     * @param send_time simulated departure time
     * @return modeled latency in cycles
     */
    virtual cycle_t computeLatency(tile_id_t src, tile_id_t dst,
                                   size_t bytes, cycle_t send_time) = 0;

    /**
     * Like computeLatency() but reporting the component breakdown.
     * The returned total is bit-identical to what computeLatency()
     * would produce for the same call (the mesh models implement the
     * math once and route both entry points through it). The default
     * attributes everything to hop latency.
     */
    virtual NetBreakdown
    computeLatencyEx(tile_id_t src, tile_id_t dst, size_t bytes,
                     cycle_t send_time)
    {
        NetBreakdown bd;
        bd.total = computeLatency(src, dst, bytes, send_time);
        bd.hop = bd.total;
        return bd;
    }

    /** Human-readable model name (matches the config value). */
    virtual std::string name() const = 0;

    /** @name Aggregate statistics @{ */
    stat_t packetsRouted() const { return packets_.load(); }
    stat_t bytesRouted() const { return bytes_.load(); }
    stat_t totalLatency() const { return latency_.load(); }
    stat_t totalHops() const { return hops_.load(); }
    /** @} */

    /**
     * @name Checkpoint serialization
     * The base implementation covers the aggregate counters;
     * stateful models (emesh_contention link queues) extend it.
     * @{
     */
    virtual void saveState(snapshot::SnapshotWriter& w) const;
    virtual void loadState(snapshot::SnapshotReader& r);
    /** @} */

    /**
     * Factory. @p type is one of "magic", "emesh_hop",
     * "emesh_contention". Fatal on unknown type (user error).
     * @p progress may be nullptr for non-contention models.
     */
    static std::unique_ptr<NetworkModel>
    create(const std::string& type, tile_id_t total_tiles,
           const Config& cfg, GlobalProgress* progress);

  protected:
    void
    account(size_t bytes, cycle_t latency, int hops)
    {
        packets_.fetch_add(1, std::memory_order_relaxed);
        bytes_.fetch_add(bytes, std::memory_order_relaxed);
        latency_.fetch_add(latency, std::memory_order_relaxed);
        hops_.fetch_add(hops, std::memory_order_relaxed);
    }

  private:
    std::atomic<stat_t> packets_{0};
    std::atomic<stat_t> bytes_{0};
    std::atomic<stat_t> latency_{0};
    std::atomic<stat_t> hops_{0};
};

/** Zero-latency model for simulator-internal traffic. */
class MagicNetworkModel : public NetworkModel
{
  public:
    cycle_t computeLatency(tile_id_t src, tile_id_t dst, size_t bytes,
                           cycle_t send_time) override;
    std::string name() const override { return "magic"; }
};

/** Mesh model: latency = hops * hop_latency + serialization. */
class EMeshHopNetworkModel : public NetworkModel
{
  public:
    EMeshHopNetworkModel(tile_id_t total_tiles, cycle_t hop_latency,
                         size_t link_bandwidth_bytes);

    cycle_t computeLatency(tile_id_t src, tile_id_t dst, size_t bytes,
                           cycle_t send_time) override;
    NetBreakdown computeLatencyEx(tile_id_t src, tile_id_t dst,
                                  size_t bytes,
                                  cycle_t send_time) override;
    std::string name() const override { return "emesh_hop"; }

    const MeshShape& shape() const { return shape_; }

  protected:
    cycle_t serializationCycles(size_t bytes) const;

    MeshShape shape_;
    cycle_t hopLatency_;
    size_t linkBandwidth_;
};

/**
 * Mesh model with analytical per-link contention. Each directed link owns
 * a QueueModel; a packet accumulates hop latency, per-link queueing delay,
 * and serialization delay along its XY route.
 */
class EMeshContentionNetworkModel : public EMeshHopNetworkModel
{
  public:
    EMeshContentionNetworkModel(tile_id_t total_tiles,
                                cycle_t hop_latency,
                                size_t link_bandwidth_bytes,
                                GlobalProgress* progress,
                                cycle_t outlier_window = 100000,
                                cycle_t max_backlog = 10000);

    cycle_t computeLatency(tile_id_t src, tile_id_t dst, size_t bytes,
                           cycle_t send_time) override;
    NetBreakdown computeLatencyEx(tile_id_t src, tile_id_t dst,
                                  size_t bytes,
                                  cycle_t send_time) override;
    std::string name() const override { return "emesh_contention"; }

    /** Total queueing delay accumulated over all links (for ablations). */
    stat_t totalContentionDelay() const;

    void saveState(snapshot::SnapshotWriter& w) const override;
    void loadState(snapshot::SnapshotReader& r) override;

  private:
    GlobalProgress* progress_;
    std::vector<std::unique_ptr<QueueModel>> links_;
};

} // namespace graphite
