/**
 * @file
 * Contention queue model compatible with lax synchronization
 * (paper §3.6.1).
 *
 * A cycle-accurate simulator buffers packets and dequeues one per cycle.
 * Under lax synchronization packets arrive out-of-order in simulated time,
 * so instead "queueing latency is modeled by keeping an independent clock
 * for the queue. This clock represents the time in the future when the
 * processing of all messages in the queue will be complete. When a packet
 * arrives, its delay is the difference between the queue clock and the
 * 'global clock'. Additionally, the queue clock is incremented by the
 * processing time of the packet to model buffering."
 *
 * Wildly out-of-range arrival timestamps (a thread far ahead/behind) are
 * clamped toward the global-progress estimate so one outlier cannot poison
 * the queue clock; the aggregate delay remains correct.
 */

#pragma once

#include <mutex>

#include "common/fixed_types.h"
#include "common/lockdep.h"
#include "common/stats.h"

namespace graphite
{

class GlobalProgress;

namespace snapshot
{
class SnapshotWriter;
class SnapshotReader;
} // namespace snapshot

/** One shared queue (a mesh link, a DRAM controller port, ...). */
class QueueModel
{
  public:
    /**
     * @param progress       global-progress estimator used as the
     *                       reference clock (may be nullptr: then the raw
     *                       arrival timestamp is trusted)
     * @param outlier_window how far (cycles) an arrival timestamp may
     *                       deviate from the progress estimate before it
     *                       is clamped
     * @param max_backlog    finite-buffer bound: the queue clock may not
     *                       run more than this far ahead of an arriving
     *                       packet (back-pressure). Without it, bursts
     *                       that are dense in *simulated* time (e.g. a
     *                       hot synchronization line under lax sync)
     *                       drive the queue clock — and with it every
     *                       dependent latency — into an unbounded
     *                       saturation spiral.
     */
    explicit QueueModel(const GlobalProgress* progress,
                        cycle_t outlier_window = 100000,
                        cycle_t max_backlog = 10000);

    /**
     * Model the arrival of a packet needing @p processing_time cycles of
     * service, stamped @p arrival_time by its sender.
     * @return queueing delay in cycles (excludes the service time itself).
     */
    cycle_t enqueue(cycle_t arrival_time, cycle_t processing_time);

    /** Current queue clock (completion time of all queued work). */
    cycle_t queueClock() const;

    /** @name Statistics @{ */
    stat_t totalRequests() const;
    stat_t totalQueueDelay() const;
    stat_t clampedArrivals() const;
    stat_t saturations() const;
    /** @} */

    /** @name Checkpoint serialization @{ */
    void saveState(snapshot::SnapshotWriter& w) const;
    void loadState(snapshot::SnapshotReader& r);
    /** @} */

  private:
    const GlobalProgress* progress_;
    cycle_t outlierWindow_;
    cycle_t maxBacklog_;
    stat_t saturations_ = 0;
    mutable lockdep::OrderedMutex mutex_{lockdep::LockClass::queue_model};
    cycle_t queueClock_ = 0;
    stat_t requests_ = 0;
    stat_t totalDelay_ = 0;
    stat_t clamped_ = 0;
};

} // namespace graphite
