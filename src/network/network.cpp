#include "common/lockdep.h"
#include "network/network.h"

#include "check/fault.h"
#include "common/config.h"
#include "common/log.h"
#include "common/strfmt.h"
#include "obs/accuracy/accuracy.h"
#include "obs/span/span.h"
#include "snapshot/snapshot.h"
#include "obs/span/span_sink.h"
#include "obs/trace_event.h"

namespace graphite
{

namespace
{

/** Map a packet type onto its accuracy-observatory violation point. */
obs::accuracy::ViolationPoint
recvPoint(PacketType type)
{
    switch (type) {
      case PacketType::App: return obs::accuracy::ViolationPoint::NetApp;
      case PacketType::Memory:
        return obs::accuracy::ViolationPoint::NetMemory;
      default: return obs::accuracy::ViolationPoint::NetSystem;
    }
}

/**
 * Causality check at the delivery demux: a packet whose timestamp is
 * already in the receiving tile's past is a lax-sync violation. Pure
 * observation — reads clocks, bumps observatory atomics, never touches
 * the packet (see DESIGN.md "Accuracy observatory").
 */
void
observeDelivery(const NetPacket& pkt, tile_id_t receiver)
{
    if (!obs::accuracy::AccuracyObservatory::armed())
        return;
    if (pkt.sender == INVALID_TILE_ID)
        return; // transport shutdown marker, not a modeled event
    obs::accuracy::AccuracyObservatory::instance().onDelivery(
        recvPoint(pkt.type), pkt.sender, receiver, pkt.time);
}

} // namespace

// ------------------------------------------------------------ NetworkFabric

NetworkFabric::NetworkFabric(const ClusterTopology& topo,
                             const Config& cfg)
    : topo_(topo),
      progress_(std::max<size_t>(
          cfg.getInt("network/queue_model_window", 64),
          static_cast<size_t>(topo.totalTiles())))
{
    auto make = [&](const char* key, const char* dflt) {
        return NetworkModel::create(cfg.getString(key, dflt),
                                    topo_.totalTiles(), cfg, &progress_);
    };
    models_[static_cast<int>(PacketType::App)] =
        make("network/app_model", "emesh_contention");
    models_[static_cast<int>(PacketType::Memory)] =
        make("network/memory_model", "emesh_contention");
    models_[static_cast<int>(PacketType::System)] =
        make("network/system_model", "magic");

    if (cfg.getBool("network/record_traffic_matrix", true)) {
        size_t n = static_cast<size_t>(topo_.totalTiles()) *
                   static_cast<size_t>(topo_.totalTiles());
        msgMatrix_ = std::vector<std::atomic<stat_t>>(n);
        byteMatrix_ = std::vector<std::atomic<stat_t>>(n);
    }
}

cycle_t
NetworkFabric::model(PacketType type, tile_id_t src, tile_id_t dst,
                     size_t bytes, cycle_t send_time)
{
    return modelEx(type, src, dst, bytes, send_time).total;
}

NetBreakdown
NetworkFabric::modelEx(PacketType type, tile_id_t src, tile_id_t dst,
                       size_t bytes, cycle_t send_time)
{
    if (!msgMatrix_.empty() && type != PacketType::System) {
        size_t idx = static_cast<size_t>(src) * topo_.totalTiles() + dst;
        msgMatrix_[idx].fetch_add(1, std::memory_order_relaxed);
        byteMatrix_[idx].fetch_add(bytes, std::memory_order_relaxed);
    }
    LocalityCounters& ctr = counters_[static_cast<int>(type)];
    if (topo_.sameProcess(src, dst)) {
        ctr.intraMsgs.fetch_add(1, std::memory_order_relaxed);
        ctr.intraBytes.fetch_add(bytes, std::memory_order_relaxed);
    } else {
        ctr.interMsgs.fetch_add(1, std::memory_order_relaxed);
        ctr.interBytes.fetch_add(bytes, std::memory_order_relaxed);
    }
    return modelFor(type).computeLatencyEx(src, dst, bytes, send_time);
}

NetworkModel&
NetworkFabric::modelFor(PacketType type)
{
    int idx = static_cast<int>(type);
    GRAPHITE_ASSERT(idx >= 0 && idx < NUM_PACKET_TYPES);
    return *models_[idx];
}

const NetworkModel&
NetworkFabric::modelFor(PacketType type) const
{
    int idx = static_cast<int>(type);
    GRAPHITE_ASSERT(idx >= 0 && idx < NUM_PACKET_TYPES);
    return *models_[idx];
}

stat_t
NetworkFabric::intraProcessMessages(PacketType type) const
{
    return counters_[static_cast<int>(type)].intraMsgs.load();
}

stat_t
NetworkFabric::interProcessMessages(PacketType type) const
{
    return counters_[static_cast<int>(type)].interMsgs.load();
}

stat_t
NetworkFabric::intraProcessBytes(PacketType type) const
{
    return counters_[static_cast<int>(type)].intraBytes.load();
}

stat_t
NetworkFabric::interProcessBytes(PacketType type) const
{
    return counters_[static_cast<int>(type)].interBytes.load();
}

stat_t
NetworkFabric::pairMessages(tile_id_t src, tile_id_t dst) const
{
    GRAPHITE_ASSERT(!msgMatrix_.empty());
    return msgMatrix_[static_cast<size_t>(src) * topo_.totalTiles() +
                      dst]
        .load();
}

stat_t
NetworkFabric::pairBytes(tile_id_t src, tile_id_t dst) const
{
    GRAPHITE_ASSERT(!byteMatrix_.empty());
    return byteMatrix_[static_cast<size_t>(src) * topo_.totalTiles() +
                       dst]
        .load();
}

void
NetworkFabric::saveState(snapshot::SnapshotWriter& w) const
{
    progress_.saveState(w);
    for (const auto& model : models_) {
        w.str(model->name());
        model->saveState(w);
    }
    for (const LocalityCounters& c : counters_) {
        w.u64(c.intraMsgs.load(std::memory_order_relaxed));
        w.u64(c.interMsgs.load(std::memory_order_relaxed));
        w.u64(c.intraBytes.load(std::memory_order_relaxed));
        w.u64(c.interBytes.load(std::memory_order_relaxed));
    }
    w.u64(static_cast<std::uint64_t>(msgMatrix_.size()));
    for (const auto& v : msgMatrix_)
        w.u64(v.load(std::memory_order_relaxed));
    for (const auto& v : byteMatrix_)
        w.u64(v.load(std::memory_order_relaxed));
}

void
NetworkFabric::loadState(snapshot::SnapshotReader& r)
{
    progress_.loadState(r);
    for (const auto& model : models_) {
        std::string name = r.str();
        if (name != model->name())
            throw snapshot::SnapshotError(
                strfmt("snapshot: network model mismatch (snapshot "
                       "'{}', configured '{}')",
                       name, model->name()));
        model->loadState(r);
    }
    for (LocalityCounters& c : counters_) {
        c.intraMsgs.store(r.u64(), std::memory_order_relaxed);
        c.interMsgs.store(r.u64(), std::memory_order_relaxed);
        c.intraBytes.store(r.u64(), std::memory_order_relaxed);
        c.interBytes.store(r.u64(), std::memory_order_relaxed);
    }
    std::uint64_t matrix = r.u64();
    if (matrix != msgMatrix_.size())
        throw snapshot::SnapshotError(
            strfmt("snapshot: traffic-matrix size mismatch "
                   "(snapshot {}, configured {})",
                   matrix, msgMatrix_.size()));
    for (auto& v : msgMatrix_)
        v.store(r.u64(), std::memory_order_relaxed);
    for (auto& v : byteMatrix_)
        v.store(r.u64(), std::memory_order_relaxed);
}

// ------------------------------------------------------------------ Network

Network::Network(tile_id_t tile, NetworkFabric& fabric,
                 Transport& transport)
    : tile_(tile), fabric_(fabric), transport_(transport)
{
}

void
Network::send(PacketType type, tile_id_t dst,
              std::vector<std::uint8_t> payload, cycle_t send_time)
{
    NetPacket pkt;
    pkt.type = type;
    pkt.sender = tile_;
    pkt.receiver = dst;
    pkt.payload = std::move(payload);
    size_t bytes = pkt.modeledBytes();
    NetBreakdown bd = fabric_.modelEx(type, tile_, dst, bytes, send_time);
    cycle_t latency = bd.total;
    pkt.time = send_time + latency;
    if (obs::accuracy::AccuracyObservatory::armed())
        obs::accuracy::AccuracyObservatory::instance().onNetLatency(
            static_cast<int>(type), latency);
    // Planted causality violation: stamp the packet with its *send*
    // time, as if the network delivered it with zero modeled latency.
    // Timing-only — payload and delivery order are untouched — so the
    // differential fingerprint stays clean while the accuracy
    // observatory must flag the receiver-past timestamp.
    if (check::FaultPlan::armed() &&
        check::FaultPlan::instance().shouldFire(
            check::FaultMode::LateDelivery,
            static_cast<addr_t>(dst)))
        pkt.time = send_time;
    if (type == PacketType::App) {
        fabric_.noteAppSend();
        if (obs::SpanSink::enabled()) {
            // The arrival time is fully determined at send under lax
            // delivery, so the whole span — including the receive-side
            // flow step — is emitted here; nothing dangles if the
            // receiver never drains it.
            obs::SpanBuilder span(obs::SpanKind::AppMsg, tile_, dst,
                                  send_time);
            span.add(obs::SpanStage::ReqSer, send_time,
                     bd.serialization);
            span.add(obs::SpanStage::ReqQueue,
                     send_time + bd.serialization, bd.queue);
            span.add(obs::SpanStage::ReqHop,
                     send_time + bd.serialization + bd.queue, bd.hop);
            span.finish(send_time + latency);
            pkt.traceId = span.traceId();
            pkt.spanId = span.spanId();
        }
    }
    obs::TraceSink::complete(static_cast<std::uint32_t>(tile_),
                             "net.send", send_time, latency, "bytes",
                             static_cast<std::int64_t>(bytes));
    transport_.send(fabric_.topology().tileEndpoint(tile_),
                    fabric_.topology().tileEndpoint(dst),
                    pkt.serialize());
}

bool
Network::popPending(PacketType type, NetPacket& out)
{
    lockdep::Guard lock(stashMutex_);
    auto& q = stash_[static_cast<int>(type)];
    if (q.empty())
        return false;
    out = std::move(q.front());
    q.pop_front();
    return true;
}

NetPacket
Network::recv(PacketType type)
{
    NetPacket out;
    if (popPending(type, out)) {
        observeDelivery(out, tile_);
        obs::TraceSink::instant(static_cast<std::uint32_t>(tile_),
                                "net.recv", out.time);
        return out;
    }
    while (true) {
        TransportBuffer buf = transport_.recv(
            fabric_.topology().tileEndpoint(tile_));
        if (buf.src < 0) {
            // Transport shut down; return an empty packet so blocked
            // receivers can unwind at simulation teardown.
            out = NetPacket{};
            out.sender = INVALID_TILE_ID;
            return out;
        }
        NetPacket pkt = NetPacket::deserialize(buf.data);
        if (pkt.type == PacketType::App)
            fabric_.noteAppDelivered();
        if (pkt.type == type) {
            observeDelivery(pkt, tile_);
            obs::TraceSink::instant(static_cast<std::uint32_t>(tile_),
                                    "net.recv", pkt.time);
            return pkt;
        }
        lockdep::Guard lock(stashMutex_);
        stash_[static_cast<int>(pkt.type)].push_back(std::move(pkt));
    }
}

bool
Network::tryRecv(PacketType type, NetPacket& out)
{
    if (popPending(type, out)) {
        observeDelivery(out, tile_);
        return true;
    }
    TransportBuffer buf;
    while (transport_.tryRecv(fabric_.topology().tileEndpoint(tile_),
                              buf)) {
        NetPacket pkt = NetPacket::deserialize(buf.data);
        if (pkt.type == PacketType::App)
            fabric_.noteAppDelivered();
        if (pkt.type == type) {
            observeDelivery(pkt, tile_);
            out = std::move(pkt);
            return true;
        }
        lockdep::Guard lock(stashMutex_);
        stash_[static_cast<int>(pkt.type)].push_back(std::move(pkt));
    }
    return false;
}

} // namespace graphite
