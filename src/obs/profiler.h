/**
 * @file
 * Host-side self-profiling: RAII wall-clock timers around simulator
 * phases (init, run, barrier waits, MCP dispatch, transport polling),
 * reported as a final table so simulator overhead (paper Table 2) is
 * attributable by component.
 *
 * Usage at a call site:
 *
 * @code
 *   {
 *       GRAPHITE_PROFILE_SCOPE("mcp.dispatch");
 *       ... timed work ...
 *   }
 * @endcode
 *
 * The macro resolves the named Site once (function-local static), so the
 * steady-state cost is one relaxed atomic load when profiling is
 * disabled, and two clock reads plus three relaxed atomic adds when
 * enabled. Sites accumulate call count, total and max wall nanoseconds.
 */

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>
#include "common/lockdep.h"

namespace graphite
{
namespace obs
{

/** Process-global registry of profiling sites. */
class HostProfiler
{
  public:
    /** Accumulators for one named scope. */
    struct Site
    {
        const char* name;
        std::atomic<std::uint64_t> calls{0};
        std::atomic<std::uint64_t> totalNs{0};
        std::atomic<std::uint64_t> maxNs{0};

        explicit Site(const char* n) : name(n) {}
    };

    static HostProfiler& instance();

    /** Cached enable flag (hot-path check). */
    static bool
    enabled()
    {
        return enabledFlag_.load(std::memory_order_relaxed);
    }

    void setEnabled(bool on);

    /**
     * Find-or-create the site for @p name (matched by string value).
     * The returned reference stays valid for the process lifetime.
     */
    Site& site(const char* name);

    /** Zero all accumulators (sites persist; used between runs). */
    void reset();

    /**
     * Render the self-profile table, sites sorted by total time
     * descending; sites never entered are omitted.
     */
    std::string report() const;

  private:
    static std::atomic<bool> enabledFlag_;

    mutable lockdep::OrderedMutex mutex_{lockdep::LockClass::profiler};
    std::vector<std::unique_ptr<Site>> sites_;
};

/** RAII timer charging a HostProfiler::Site. */
class ProfileScope
{
  public:
    explicit ProfileScope(HostProfiler::Site& site)
    {
        if (HostProfiler::enabled()) {
            site_ = &site;
            t0_ = std::chrono::steady_clock::now();
        }
    }

    ~ProfileScope()
    {
        if (site_ == nullptr)
            return;
        auto ns = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0_)
                .count());
        site_->calls.fetch_add(1, std::memory_order_relaxed);
        site_->totalNs.fetch_add(ns, std::memory_order_relaxed);
        std::uint64_t prev =
            site_->maxNs.load(std::memory_order_relaxed);
        while (prev < ns &&
               !site_->maxNs.compare_exchange_weak(
                   prev, ns, std::memory_order_relaxed)) {
        }
    }

    ProfileScope(const ProfileScope&) = delete;
    ProfileScope& operator=(const ProfileScope&) = delete;

  private:
    HostProfiler::Site* site_ = nullptr;
    std::chrono::steady_clock::time_point t0_;
};

/** Time the enclosing block under @p name (one use per block). */
#define GRAPHITE_PROFILE_SCOPE(name)                                       \
    static ::graphite::obs::HostProfiler::Site& graphite_prof_site =      \
        ::graphite::obs::HostProfiler::instance().site(name);             \
    ::graphite::obs::ProfileScope graphite_prof_scope(graphite_prof_site)

} // namespace obs
} // namespace graphite
