#include "obs/telemetry/flight_recorder.h"

#include <algorithm>
#include <csignal>
#include <cstring>
#include <fcntl.h>
#include <unistd.h>

#include "common/lockdep.h"

namespace graphite
{
namespace obs
{
namespace telemetry
{

std::atomic<bool> FlightRecorder::armedFlag_{false};

namespace
{

// ---- async-signal-safe formatting helpers ----
//
// The crash path may not call snprintf (not guaranteed signal-safe) or
// anything that allocates. These format into caller stack buffers and
// write(2) directly.

std::size_t
fmtU64(char* buf, std::uint64_t v)
{
    char tmp[20];
    std::size_t n = 0;
    do {
        tmp[n++] = static_cast<char>('0' + v % 10);
        v /= 10;
    } while (v != 0);
    for (std::size_t i = 0; i < n; ++i)
        buf[i] = tmp[n - 1 - i];
    return n;
}

std::size_t
fmtI64(char* buf, std::int64_t v)
{
    if (v < 0) {
        buf[0] = '-';
        return 1 + fmtU64(buf + 1, static_cast<std::uint64_t>(-v));
    }
    return fmtU64(buf, static_cast<std::uint64_t>(v));
}

std::size_t
fmtHex(char* buf, std::uint64_t v)
{
    static const char digits[] = "0123456789abcdef";
    char tmp[16];
    std::size_t n = 0;
    do {
        tmp[n++] = digits[v & 0xf];
        v >>= 4;
    } while (v != 0);
    buf[0] = '0';
    buf[1] = 'x';
    for (std::size_t i = 0; i < n; ++i)
        buf[2 + i] = tmp[n - 1 - i];
    return 2 + n;
}

void
writeAllFd(int fd, const char* data, std::size_t len)
{
    std::size_t off = 0;
    while (off < len) {
        ssize_t w = ::write(fd, data + off, len - off);
        if (w <= 0)
            return; // best effort: a crash dump must never loop forever
        off += static_cast<std::size_t>(w);
    }
}

void
writeStr(int fd, const char* s)
{
    writeAllFd(fd, s, std::strlen(s));
}

// ---- crash-handler global state ----
//
// Signal handlers cannot carry context, so the handler reaches the
// recorder through the singleton and this fixed path buffer.

char g_crashPath[512] = {0};
std::atomic<bool> g_handlerInstalled{false};
struct sigaction g_oldActions[5];
const int g_signals[5] = {SIGSEGV, SIGBUS, SIGFPE, SIGILL, SIGABRT};

void
crashHandler(int sig)
{
    // One shot: restore default dispositions first so a second fault
    // inside the dump terminates instead of recursing.
    for (std::size_t i = 0; i < 5; ++i)
        ::sigaction(g_signals[i], &g_oldActions[i], nullptr);
    g_handlerInstalled.store(false, std::memory_order_relaxed);

    int fd = ::open(g_crashPath,
                    O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd >= 0) {
        char buf[64];
        writeStr(fd, "=== graphite crash dump (signal ");
        writeAllFd(fd, buf, fmtI64(buf, sig));
        writeStr(fd, ") ===\n");
        FlightRecorder::instance().dumpToFd(fd);
        // Which thread held/awaited which lock when we died — written
        // with the same write(2)-only discipline (see lockdep.h).
        lockdep::dumpHeldSetsToFd(fd);
        ::close(fd);
    }
    ::raise(sig);
}

} // namespace

const char*
frEventName(FrEvent e)
{
    switch (e) {
      case FrEvent::ThreadStart: return "thread_start";
      case FrEvent::ThreadExit: return "thread_exit";
      case FrEvent::Spawn: return "spawn";
      case FrEvent::FutexWait: return "futex_wait";
      case FrEvent::FutexWake: return "futex_wake";
      case FrEvent::MsgSend: return "msg_send";
      case FrEvent::MsgRecv: return "msg_recv";
      case FrEvent::SyncBarrier: return "sync_barrier";
      case FrEvent::SyncSleep: return "sync_sleep";
      case FrEvent::MissPath: return "miss_path";
      case FrEvent::Writeback: return "writeback";
      case FrEvent::WatchdogFlag: return "watchdog_flag";
      case FrEvent::Causality: return "causality";
      case FrEvent::Custom: return "custom";
    }
    return "?";
}

FlightRecorder&
FlightRecorder::instance()
{
    static FlightRecorder recorder;
    return recorder;
}

void
FlightRecorder::configure(std::size_t capacity)
{
    std::size_t cap = 16;
    while (cap < capacity && cap < (std::size_t{1} << 24))
        cap <<= 1;
    slots_.clear();
    slots_ = std::vector<Slot>(cap);
    mask_ = cap - 1;
    head_.store(0, std::memory_order_relaxed);
    dumpScratch_.resize(cap);
}

void
FlightRecorder::setArmed(bool on)
{
    // Arming an unconfigured recorder gets the default ring.
    if (on && slots_.empty())
        configure(4096);
    armedFlag_.store(on, std::memory_order_relaxed);
}

void
FlightRecorder::push(FrEvent type, tile_id_t tile, cycle_t cycle,
                     std::uint64_t a, std::uint64_t b)
{
    if (slots_.empty())
        return;
    std::uint64_t ticket = head_.fetch_add(1, std::memory_order_relaxed);
    Slot& s = slots_[ticket & mask_];
    // Seqlock write: odd while the payload is inconsistent. A slower
    // writer lapped by a faster one may interleave stamps on the same
    // slot; readers then see a torn sequence and drop the slot — one
    // lost event out of `capacity`, never a corrupt record.
    s.seq.store(2 * ticket + 1, std::memory_order_release);
    s.type = type;
    s.tile = tile;
    s.cycle = cycle;
    s.a = a;
    s.b = b;
    s.order = ticket;
    s.seq.store(2 * ticket + 2, std::memory_order_release);
}

std::uint64_t
FlightRecorder::recorded() const
{
    return head_.load(std::memory_order_relaxed);
}

std::size_t
FlightRecorder::snapshot(TakenSlot* scratch, std::size_t max) const
{
    std::size_t n = 0;
    for (const Slot& s : slots_) {
        if (n >= max)
            break;
        std::uint64_t before = s.seq.load(std::memory_order_acquire);
        if (before == 0 || (before & 1) != 0)
            continue; // empty or mid-write
        TakenSlot t;
        t.type = s.type;
        t.tile = s.tile;
        t.cycle = s.cycle;
        t.a = s.a;
        t.b = s.b;
        t.order = s.order;
        std::atomic_thread_fence(std::memory_order_acquire);
        if (s.seq.load(std::memory_order_relaxed) != before)
            continue; // torn by a concurrent writer
        scratch[n++] = t;
    }
    std::sort(scratch, scratch + n,
              [](const TakenSlot& x, const TakenSlot& y) {
                  return x.order < y.order;
              });
    return n;
}

void
FlightRecorder::dumpToFd(int fd) const
{
    char buf[32];
    writeStr(fd, "=== flight recorder (");
    writeAllFd(fd, buf, fmtU64(buf, recorded()));
    writeStr(fd, " events recorded, capacity ");
    writeAllFd(fd, buf, fmtU64(buf, capacity()));
    writeStr(fd, ") ===\n");
    if (slots_.empty() || dumpScratch_.empty())
        return;
    std::size_t n = snapshot(dumpScratch_.data(), dumpScratch_.size());
    for (std::size_t i = 0; i < n; ++i) {
        const TakenSlot& t = dumpScratch_[i];
        writeStr(fd, "fr ");
        writeAllFd(fd, buf, fmtU64(buf, t.order));
        writeStr(fd, " ");
        writeStr(fd, frEventName(t.type));
        writeStr(fd, " tile=");
        writeAllFd(fd, buf, fmtI64(buf, t.tile));
        writeStr(fd, " cycle=");
        writeAllFd(fd, buf, fmtU64(buf, t.cycle));
        writeStr(fd, " a=");
        writeAllFd(fd, buf, fmtHex(buf, t.a));
        writeStr(fd, " b=");
        writeAllFd(fd, buf, fmtHex(buf, t.b));
        writeStr(fd, "\n");
    }
}

std::string
FlightRecorder::dump(std::size_t max_events) const
{
    std::string out;
    out += "=== flight recorder (";
    char buf[32];
    out.append(buf, fmtU64(buf, recorded()));
    out += " events recorded, capacity ";
    out.append(buf, fmtU64(buf, capacity()));
    out += ") ===\n";
    if (slots_.empty())
        return out;
    std::vector<TakenSlot> scratch(slots_.size());
    std::size_t n = snapshot(scratch.data(), scratch.size());
    std::size_t first =
        (max_events > 0 && n > max_events) ? n - max_events : 0;
    for (std::size_t i = first; i < n; ++i) {
        const TakenSlot& t = scratch[i];
        out += "fr ";
        out.append(buf, fmtU64(buf, t.order));
        out += " ";
        out += frEventName(t.type);
        out += " tile=";
        out.append(buf, fmtI64(buf, t.tile));
        out += " cycle=";
        out.append(buf, fmtU64(buf, t.cycle));
        out += " a=";
        out.append(buf, fmtHex(buf, t.a));
        out += " b=";
        out.append(buf, fmtHex(buf, t.b));
        out += "\n";
    }
    return out;
}

void
FlightRecorder::installCrashHandler(const std::string& path)
{
    std::size_t n = std::min(path.size(), sizeof(g_crashPath) - 1);
    std::memcpy(g_crashPath, path.data(), n);
    g_crashPath[n] = '\0';
    if (g_handlerInstalled.load(std::memory_order_relaxed))
        return;
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = &crashHandler;
    ::sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;
    for (std::size_t i = 0; i < 5; ++i)
        ::sigaction(g_signals[i], &sa, &g_oldActions[i]);
    g_handlerInstalled.store(true, std::memory_order_relaxed);
}

void
FlightRecorder::uninstallCrashHandler()
{
    if (!g_handlerInstalled.load(std::memory_order_relaxed))
        return;
    for (std::size_t i = 0; i < 5; ++i)
        ::sigaction(g_signals[i], &g_oldActions[i], nullptr);
    g_handlerInstalled.store(false, std::memory_order_relaxed);
}

bool
FlightRecorder::crashHandlerInstalled() const
{
    return g_handlerInstalled.load(std::memory_order_relaxed);
}

} // namespace telemetry
} // namespace obs
} // namespace graphite
