/**
 * @file
 * Black-box flight recorder: a fixed-size lock-free ring of recent
 * high-level simulation events (sync transitions, quantum barriers,
 * message sends, miss-path entries, futex traffic, thread lifecycle),
 * dumpable at any moment — including from a crash signal handler.
 *
 * The recorder is the "what was the simulator doing right before it
 * died/hung" complement to the trace/span artifacts: those are written
 * at clean finalize(), which a crash or deadlock never reaches. The
 * ring is always-on by default (telemetry/recorder) because its hot
 * path is one relaxed atomic load when scanning for the gate plus, per
 * recorded event, one fetch_add and five relaxed stores — events are
 * per miss/sync/syscall, not per instruction.
 *
 * Concurrency: per-slot seqlock. A writer claims a global ticket with
 * fetch_add, stamps the slot's sequence odd (write in progress), fills
 * the payload, then stamps it even. Readers (dump paths) copy the
 * payload between two sequence reads and discard torn slots. No locks,
 * no allocation after configure() — which is what makes dumpToFd()
 * async-signal-safe (see DESIGN.md "Flight recorder & signal safety").
 *
 * The crash handler is process-global: installCrashHandler(path)
 * registers for SIGSEGV/SIGBUS/SIGFPE/SIGILL/SIGABRT, and on delivery
 * writes a header plus the ring contents to `path` using only
 * async-signal-safe primitives (open/write/close, integer formatting
 * into stack buffers), then re-raises the signal with the default
 * disposition so the exit status still reports the crash.
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/fixed_types.h"

namespace graphite
{
namespace obs
{
namespace telemetry
{

/** Event classes the recorder distinguishes. */
enum class FrEvent : std::uint8_t
{
    ThreadStart,  ///< a=start clock
    ThreadExit,   ///< a=exit clock
    Spawn,        ///< MCP chose a tile: a=chosen tile, b=requester
    FutexWait,    ///< a=addr, b=expected value
    FutexWake,    ///< a=addr, b=wake count
    MsgSend,      ///< a=dst tile, b=bytes
    MsgRecv,      ///< a=src tile, b=bytes
    SyncBarrier,  ///< quantum barrier release: a=epoch, b=wait us
    SyncSleep,    ///< LaxP2P throttle: a=sleep us, b=partner clock delta
    MissPath,     ///< memory miss-path entry: a=line addr, b=for_write
    Writeback,    ///< dirty L2 eviction: a=line addr, b=home tile
    WatchdogFlag, ///< watchdog stall/deadlock flag: a=verdict code
    Causality,    ///< worst causality violation: a=magnitude cycles,
                  ///< b=(src tile << 8) | violation-point id
    Custom        ///< free-form (tests)
};

inline constexpr int NUM_FR_EVENTS = 14;

/** Stable short name for an event class ("miss_path", "futex_wait"). */
const char* frEventName(FrEvent e);

/** Process-global flight recorder. */
class FlightRecorder
{
  public:
    static FlightRecorder& instance();

    /** Cached arm flag — the only hot-path check at record sites. */
    static bool
    armed()
    {
        return armedFlag_.load(std::memory_order_relaxed);
    }

    /**
     * (Re)size the ring to @p capacity slots (rounded up to a power of
     * two, min 16) and drop all recorded events. Not safe concurrently
     * with record(); call while the simulation is quiescent.
     */
    void configure(std::size_t capacity);

    void setArmed(bool on);

    /** Record one event. Thread-safe, lock-free, no-op when disarmed. */
    static void
    record(FrEvent type, tile_id_t tile, cycle_t cycle,
           std::uint64_t a = 0, std::uint64_t b = 0)
    {
        if (!armed())
            return;
        instance().push(type, tile, cycle, a, b);
    }

    /** Total events ever recorded (including overwritten ones). */
    std::uint64_t recorded() const;

    /** Ring capacity in slots. */
    std::size_t capacity() const { return slots_.size(); }

    /**
     * Async-signal-safe dump: writes a header and the surviving ring
     * events (oldest first) to @p fd using only write(2) and stack
     * buffers. Torn slots (concurrent writers) are skipped.
     */
    void dumpToFd(int fd) const;

    /**
     * Convenience dump into a string (watchdog dumps, invariant-failure
     * reports, tests). @p max_events > 0 keeps only the newest events.
     */
    std::string dump(std::size_t max_events = 0) const;

    /**
     * Install the process crash handler: on SIGSEGV/SIGBUS/SIGFPE/
     * SIGILL/SIGABRT, dump the ring to @p path and re-raise. The path
     * is copied into a fixed buffer (truncated to 511 bytes).
     */
    void installCrashHandler(const std::string& path);

    /** Restore the previous signal dispositions. Idempotent. */
    void uninstallCrashHandler();

    /** True when the crash handler is currently installed. */
    bool crashHandlerInstalled() const;

  private:
    struct Slot
    {
        std::atomic<std::uint64_t> seq{0}; ///< odd = write in progress
        FrEvent type = FrEvent::Custom;
        tile_id_t tile = INVALID_TILE_ID;
        cycle_t cycle = 0;
        std::uint64_t a = 0;
        std::uint64_t b = 0;
        std::uint64_t order = 0; ///< global ticket, for sorting dumps
    };

    struct TakenSlot
    {
        std::uint64_t order;
        FrEvent type;
        tile_id_t tile;
        cycle_t cycle;
        std::uint64_t a;
        std::uint64_t b;
    };

    void push(FrEvent type, tile_id_t tile, cycle_t cycle,
              std::uint64_t a, std::uint64_t b);

    /** Snapshot surviving slots, sorted oldest-first. Signal-safe when
     *  @p scratch points into a caller-provided array. */
    std::size_t snapshot(TakenSlot* scratch, std::size_t max) const;

    static std::atomic<bool> armedFlag_;

    std::vector<Slot> slots_;
    std::size_t mask_ = 0;
    std::atomic<std::uint64_t> head_{0};
    /** Preallocated at configure() so dumpToFd() never allocates; the
     *  two users (watchdog escalation, crash handler) are terminal /
     *  mutually exclusive in practice, so sharing it is safe. */
    mutable std::vector<TakenSlot> dumpScratch_;
};

} // namespace telemetry
} // namespace obs
} // namespace graphite
