#include "obs/telemetry/status.h"

#include <algorithm>
#include <cstdio>
#include <set>
#include <sstream>
#include <unistd.h>

#include "obs/accuracy/accuracy.h"

namespace graphite
{
namespace obs
{
namespace telemetry
{

namespace
{

/** JSON string escaping (names here are ASCII identifiers, but be safe). */
std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

double
hostWallSeconds(const StatusSource& src)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - src.start)
        .count();
}

} // namespace

stat_t
hostRssKb()
{
    FILE* f = std::fopen("/proc/self/statm", "r");
    if (f == nullptr)
        return 0;
    unsigned long size_pages = 0;
    unsigned long rss_pages = 0;
    int rc = std::fscanf(f, "%lu %lu", &size_pages, &rss_pages);
    std::fclose(f);
    if (rc != 2)
        return 0;
    long page = ::sysconf(_SC_PAGESIZE);
    if (page <= 0)
        page = 4096;
    return static_cast<stat_t>(rss_pages) *
           static_cast<stat_t>(page) / 1024;
}

std::string
prometheusName(const std::string& stat_name)
{
    std::string out = "graphite_";
    out.reserve(out.size() + stat_name.size());
    for (char c : stat_name) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '_';
        out += ok ? c : '_';
    }
    return out;
}

std::string
renderPrometheus(const StatsRegistry& reg)
{
    std::ostringstream os;

    // Histograms first, as proper Prometheus histogram families. Their
    // scalar ".count"/".sum" projections in snapshot() would sanitize to
    // the same "_count"/"_sum" series names, so collect them for
    // skipping below.
    std::set<std::string> histogram_projections;
    for (const std::string& name : reg.histogramNames()) {
        histogram_projections.insert(name + ".count");
        histogram_projections.insert(name + ".sum");
        const HistogramStat* h = reg.histogram(name);
        if (h == nullptr)
            continue;
        std::string pname = prometheusName(name);
        os << "# TYPE " << pname << " histogram\n";
        stat_t cumulative = 0;
        for (int i = 0; i < HistogramStat::NUM_BUCKETS; ++i) {
            stat_t in_bucket = h->bucket(i);
            if (in_bucket == 0)
                continue;
            cumulative += in_bucket;
            // Bucket i holds values of bit-width i: upper bound 2^i - 1.
            stat_t le = i == 0 ? 0 : (stat_t{1} << i) - 1;
            os << pname << "_bucket{le=\"" << le << "\"} "
               << cumulative << "\n";
        }
        os << pname << "_bucket{le=\"+Inf\"} " << h->count() << "\n";
        os << pname << "_sum " << h->sum() << "\n";
        os << pname << "_count " << h->count() << "\n";
    }

    // Everything else as untyped gauges (counters included: the scraper
    // cares about values, and interval semantics live in the sampler).
    for (const auto& [name, value] : reg.snapshot()) {
        if (histogram_projections.count(name))
            continue;
        std::string pname = prometheusName(name);
        os << "# TYPE " << pname << " gauge\n";
        os << pname << " " << value << "\n";
    }

    // Host-side meta-series so a scrape is self-describing.
    os << "# TYPE graphite_host_rss_kb gauge\n";
    os << "graphite_host_rss_kb " << hostRssKb() << "\n";
    return os.str();
}

std::string
renderStatusJson(const StatusSource& src, const WatchdogView* wd)
{
    std::ostringstream os;
    os << "{";
    os << "\"simulated_cycles\":"
       << (src.simulatedTime ? src.simulatedTime() : 0) << ",";
    os << "\"host_wall_seconds\":" << hostWallSeconds(src) << ",";
    os << "\"host_rss_kb\":" << hostRssKb() << ",";
    os << "\"sync_model\":\"" << jsonEscape(src.syncModelName) << "\",";
    os << "\"sync_events\":" << (src.syncEvents ? src.syncEvents() : 0)
       << ",";
    os << "\"sync_wait_us\":"
       << (src.syncWaitUs ? src.syncWaitUs() : 0) << ",";
    os << "\"transport_queue_depth\":"
       << (src.transportQueueDepth ? src.transportQueueDepth() : 0)
       << ",";
    os << "\"inflight_packets\":"
       << (src.inflightPackets ? src.inflightPackets() : 0) << ",";

    // Accuracy observatory: lax-sync skew and causality-violation
    // gauges (disarmed => armed:false with zeroed fields).
    {
        const auto& acc = accuracy::AccuracyObservatory::instance();
        bool armed = accuracy::AccuracyObservatory::armed();
        os << "\"sync_skew\":{";
        os << "\"armed\":" << (armed ? "true" : "false") << ",";
        os << "\"causality_violations\":" << acc.violations() << ",";
        os << "\"deliveries_checked\":" << acc.deliveries() << ",";
        os << "\"worst_magnitude_cycles\":" << acc.worstMagnitude()
           << ",";
        os << "\"pair_skew_max_cycles\":" << acc.pairSkewMax() << ",";
        os << "\"pair_skew_mean_cycles\":" << acc.pairSkewMean() << ",";
        os << "\"pair_samples\":" << acc.pairSamples() << "},";
    }

    // Host execution pool health (scheduler off => enabled:false).
    HostPoolStatus hp;
    if (src.hostPool)
        hp = src.hostPool();
    os << "\"host_pool\":{";
    os << "\"enabled\":" << (hp.enabled ? "true" : "false") << ",";
    os << "\"mode\":\"" << jsonEscape(hp.mode) << "\",";
    os << "\"slots\":" << hp.slots << ",";
    os << "\"executing\":" << hp.executing << ",";
    os << "\"runnable\":" << hp.runnable << ",";
    os << "\"blocked\":" << hp.blocked << ",";
    os << "\"skew_parked\":" << hp.skewParked << ",";
    os << "\"quanta\":" << hp.quanta << ",";
    os << "\"yields\":" << hp.yields << ",";
    os << "\"skew_parks\":" << hp.skewParks << ",";
    os << "\"skew_park_ns\":" << hp.skewParkNs << "},";

    // Per-tile heartbeats with derived IPC.
    os << "\"tiles\":[";
    if (src.tiles) {
        bool first = true;
        for (const TileStatus& t : src.tiles()) {
            if (!first)
                os << ",";
            first = false;
            double ipc =
                t.cycles == 0
                    ? 0.0
                    : static_cast<double>(t.instructions) /
                          static_cast<double>(t.cycles);
            os << "{\"tile\":" << t.tile << ",\"cycles\":" << t.cycles
               << ",\"instructions\":" << t.instructions
               << ",\"ipc\":" << ipc
               << ",\"occupied\":" << (t.occupied ? "true" : "false")
               << ",\"running\":" << (t.running ? "true" : "false")
               << "}";
        }
    }
    os << "],";

    // MCP wait sets: who is parked on what.
    os << "\"wait_sets\":{";
    WaitSetSnapshot ws;
    if (src.waitSets)
        ws = src.waitSets();
    os << "\"busy_tiles\":" << ws.busyTiles << ",";
    os << "\"shutdown_requested\":"
       << (ws.shutdownRequested ? "true" : "false") << ",";
    os << "\"futexes\":[";
    for (std::size_t i = 0; i < ws.futexes.size(); ++i) {
        if (i)
            os << ",";
        os << "{\"addr\":\"0x" << std::hex << ws.futexes[i].addr
           << std::dec << "\",\"waiters\":[";
        for (std::size_t j = 0; j < ws.futexes[i].waiters.size(); ++j) {
            if (j)
                os << ",";
            os << ws.futexes[i].waiters[j];
        }
        os << "]}";
    }
    os << "],";
    os << "\"joins\":[";
    for (std::size_t i = 0; i < ws.joins.size(); ++i) {
        if (i)
            os << ",";
        os << "{\"target\":" << ws.joins[i].target << ",\"waiters\":[";
        for (std::size_t j = 0; j < ws.joins[i].waiters.size(); ++j) {
            if (j)
                os << ",";
            os << ws.joins[i].waiters[j];
        }
        os << "]}";
    }
    os << "]},";

    os << "\"watchdog\":{";
    if (wd != nullptr) {
        os << "\"enabled\":" << (wd->enabled ? "true" : "false")
           << ",\"verdict\":\"" << wd->verdict << "\""
           << ",\"beats\":" << wd->beats
           << ",\"stall_flags\":" << wd->stallFlags
           << ",\"dumps\":" << wd->dumps;
    } else {
        os << "\"enabled\":false";
    }
    os << "}";
    os << "}";
    return os.str();
}

std::string
renderHealthJson(const StatusSource& src, const WatchdogView* wd)
{
    const char* verdict = wd != nullptr ? wd->verdict : "ok";
    bool healthy =
        verdict[0] == 'o' && verdict[1] == 'k' && verdict[2] == '\0';
    std::ostringstream os;
    os << "{\"status\":\"" << (healthy ? "ok" : "unhealthy")
       << "\",\"verdict\":\"" << verdict << "\",\"simulated_cycles\":"
       << (src.simulatedTime ? src.simulatedTime() : 0)
       << ",\"host_wall_seconds\":" << hostWallSeconds(src) << "}";
    return os.str();
}

} // namespace telemetry
} // namespace obs
} // namespace graphite
