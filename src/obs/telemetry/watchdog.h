/**
 * @file
 * Progress watchdog: a host timer thread that snapshots per-tile
 * simulated-cycle heartbeats and flags three pathological shapes a
 * long-running parallel simulation can fall into:
 *
 *  - stall:    some occupied, nominally-running tile made no simulated
 *              progress across several beats while other tiles advanced
 *              (one thread wedged, e.g. spinning on host state);
 *  - deadlock: every occupied tile is parked in a futex/join wait and
 *              total simulated progress stopped — the classic lost-wake
 *              or lock-cycle shape;
 *  - livelock: tiles are marked running yet total simulated progress is
 *              zero beat after beat (lax-slack ping-pong).
 *
 * Verdicts escalate: first to telemetry.stall.* statistics and a
 * WatchdogFlag flight-recorder event, then (after `dump_beats` more
 * beats in the same verdict) to a structured diagnostic dump — the
 * /status JSON, the wait sets naming waiting tiles and futex
 * addresses, and the flight-recorder tail — written to a file or
 * stderr. The `abort` action additionally terminates the process with
 * exit code 86 so harnesses (and the planted-deadlock test) can turn a
 * hang into a bounded failure.
 *
 * Beats are host wall-clock (default 250 ms), so thresholds are
 * seconds of real time — far beyond any legitimate quantum-barrier
 * wait — and zero-cost to simulation threads: the watchdog only reads
 * the same atomics/mutex-guarded snapshots the telemetry server does.
 */

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/lockdep.h"
#include "common/stats.h"
#include "obs/telemetry/status.h"

namespace graphite
{
namespace obs
{
namespace telemetry
{

/** What the watchdog does once a verdict persists. */
enum class WatchdogAction
{
    Flag,  ///< statistics + flight-recorder event only
    Dump,  ///< ... plus a structured diagnostic dump
    Abort  ///< ... plus std::_Exit(86) after dumping
};

/** Exit code used by WatchdogAction::Abort. */
inline constexpr int WATCHDOG_ABORT_EXIT = 86;

struct WatchdogConfig
{
    std::uint64_t intervalMs = 250; ///< beat period (host wall clock)
    int stallBeats = 8;  ///< beats without progress before a verdict
    int dumpBeats = 4;   ///< further beats in-verdict before dumping
    WatchdogAction action = WatchdogAction::Dump;
    std::string dumpPath; ///< empty = stderr
};

/** Host-timer progress watchdog. */
class ProgressWatchdog
{
  public:
    ProgressWatchdog() = default;
    ~ProgressWatchdog() { stop(); }

    ProgressWatchdog(const ProgressWatchdog&) = delete;
    ProgressWatchdog& operator=(const ProgressWatchdog&) = delete;

    /** Start beating. @p source must outlive the watchdog. */
    void start(WatchdogConfig cfg, StatusSource source);

    /** Stop the timer thread. Idempotent. */
    void stop();

    bool running() const
    {
        return running_.load(std::memory_order_acquire);
    }

    /** Current verdict/counters for /status and /healthz. */
    WatchdogView view() const;

    /**
     * Run one beat synchronously (tests): sample heartbeats, update the
     * verdict, escalate if due. Returns the verdict after the beat.
     */
    const char* beatOnce();

    /** @name Counters (registered as telemetry.stall.* stats) @{ */
    const atomic_stat_t& beats() const { return beatsCount_; }
    const atomic_stat_t& stallFlags() const { return stallFlags_; }
    const atomic_stat_t& deadlockFlags() const { return deadlockFlags_; }
    const atomic_stat_t& livelockFlags() const { return livelockFlags_; }
    const atomic_stat_t& dumps() const { return dumpsCount_; }
    /** @} */

    /**
     * Build the diagnostic dump text (status JSON + wait sets + flight
     * recorder tail). Public so tests can validate content without
     * touching the filesystem.
     */
    std::string renderDump() const;

  private:
    struct Beat
    {
        std::vector<TileStatus> tiles;
        cycle_t total = 0;
    };

    void timerLoop();
    const char* classify(const Beat& prev, const Beat& cur);
    void escalate();
    void writeDump(const std::string& text) const;

    WatchdogConfig cfg_;
    StatusSource source_;

    std::thread thread_;
    std::atomic<bool> running_{false};
    mutable lockdep::OrderedMutex stateMutex_{
        lockdep::LockClass::watchdog_state}; ///< guards lastBeat_/verdict_
    lockdep::CondVar stopCv_;
    bool stopRequested_ = false;

    Beat lastBeat_;
    bool haveBeat_ = false;
    int beatsInVerdict_ = 0;
    bool dumped_ = false;
    const char* verdict_ = "ok";
    /** Per-tile count of consecutive beats without progress. */
    std::vector<int> staleBeats_;
    /** Consecutive beats with zero total simulated progress. */
    int noProgressBeats_ = 0;

    atomic_stat_t beatsCount_{0};
    atomic_stat_t stallFlags_{0};
    atomic_stat_t deadlockFlags_{0};
    atomic_stat_t livelockFlags_{0};
    atomic_stat_t dumpsCount_{0};
};

} // namespace telemetry
} // namespace obs
} // namespace graphite
