/**
 * @file
 * Live-status data model shared by the telemetry plane: the callbacks
 * a Simulator wires into the HTTP server and the progress watchdog,
 * the MCP wait-set snapshot, and the renderers that turn them into
 * the /metrics (Prometheus text exposition) and /status (JSON) bodies.
 *
 * The obs layer sits *below* core in the link order (graphite_core
 * links graphite_obs), so these types are defined here and produced by
 * core: ThreadManager fills a WaitSetSnapshot, Simulator binds the
 * StatusSource lambdas. Everything a renderer touches through the
 * source must be safe to read from a foreign host thread while the
 * simulation runs — tile clocks are atomics, wait sets are copied
 * under the MCP state mutex, registry reads take the registry mutex.
 */

#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/fixed_types.h"
#include "common/stats.h"

namespace graphite
{
namespace obs
{
namespace telemetry
{

/** One tile's heartbeat, as sampled by the watchdog/server. */
struct TileStatus
{
    tile_id_t tile = INVALID_TILE_ID;
    cycle_t cycles = 0;
    stat_t instructions = 0;
    bool occupied = false; ///< an application thread owns the tile
    bool running = false;  ///< ... and is not blocked in a wait
};

/** Copy of the MCP's blocking state: who waits on what. */
struct WaitSetSnapshot
{
    struct FutexQueue
    {
        addr_t addr = 0;
        std::vector<tile_id_t> waiters;
    };
    struct JoinQueue
    {
        tile_id_t target = INVALID_TILE_ID;
        std::vector<tile_id_t> waiters;
    };
    std::vector<FutexQueue> futexes;
    std::vector<JoinQueue> joins;
    int busyTiles = 0;
    bool shutdownRequested = false;
};

/** Host-scheduler pool health for /status (host.pool.* in /metrics). */
struct HostPoolStatus
{
    bool enabled = false;
    std::string mode;   ///< "deterministic" | "free_running"
    int slots = 0;
    int executing = 0;
    int runnable = 0;
    int blocked = 0;
    int skewParked = 0;
    stat_t quanta = 0;
    stat_t yields = 0;
    stat_t skewParks = 0;
    stat_t skewParkNs = 0;
};

/** Simulator-owned data sources for the telemetry plane. */
struct StatusSource
{
    const StatsRegistry* stats = nullptr;
    std::function<std::vector<TileStatus>()> tiles;
    std::function<cycle_t()> simulatedTime;
    std::function<WaitSetSnapshot()> waitSets;
    std::function<stat_t()> transportQueueDepth;
    std::function<stat_t()> inflightPackets;
    std::function<stat_t()> syncEvents;
    std::function<stat_t()> syncWaitUs;
    /** Null/empty when the host scheduler is off. */
    std::function<HostPoolStatus()> hostPool;
    std::string syncModelName;
    std::chrono::steady_clock::time_point start =
        std::chrono::steady_clock::now();
};

/** Watchdog state surfaced in /status and /healthz. */
struct WatchdogView
{
    bool enabled = false;
    const char* verdict = "ok"; ///< "ok" | "stall" | "deadlock"
    stat_t beats = 0;
    stat_t stallFlags = 0;
    stat_t dumps = 0;
};

/** Host resident-set size in KiB (/proc/self/statm); 0 if unknown. */
stat_t hostRssKb();

/**
 * Sanitize a registry statistic name into a Prometheus metric name:
 * "graphite_" prefix, every non-[a-zA-Z0-9_] byte becomes '_'.
 */
std::string prometheusName(const std::string& stat_name);

/**
 * Render the full Prometheus text exposition for @p reg: every counter
 * and gauge as an untyped gauge sample, every registered histogram as
 * a cumulative-bucket histogram family (the registry's power-of-two
 * buckets become `le` bounds). The scalar ".count"/".sum" histogram
 * projections are skipped in favor of the histogram family so no
 * series is exported twice.
 */
std::string renderPrometheus(const StatsRegistry& reg);

/** Render the /status JSON document. @p wd may be null (no watchdog). */
std::string renderStatusJson(const StatusSource& src,
                             const WatchdogView* wd);

/** Render the /healthz JSON body. @p wd may be null. */
std::string renderHealthJson(const StatusSource& src,
                             const WatchdogView* wd);

} // namespace telemetry
} // namespace obs
} // namespace graphite
