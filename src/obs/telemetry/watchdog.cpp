#include "common/lockdep.h"
#include "obs/telemetry/watchdog.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include <unistd.h>

#include "common/log.h"
#include "obs/telemetry/flight_recorder.h"

namespace graphite
{
namespace obs
{
namespace telemetry
{

void
ProgressWatchdog::start(WatchdogConfig cfg, StatusSource source)
{
    if (running())
        return;
    cfg_ = std::move(cfg);
    source_ = std::move(source);
    if (cfg_.intervalMs == 0)
        cfg_.intervalMs = 250;
    if (cfg_.stallBeats < 1)
        cfg_.stallBeats = 1;
    if (cfg_.dumpBeats < 0)
        cfg_.dumpBeats = 0;
    {
        lockdep::Guard lock(stateMutex_);
        stopRequested_ = false;
        haveBeat_ = false;
        beatsInVerdict_ = 0;
        noProgressBeats_ = 0;
        dumped_ = false;
        verdict_ = "ok";
        staleBeats_.clear();
    }
    running_.store(true, std::memory_order_release);
    thread_ = std::thread([this] { timerLoop(); });
}

void
ProgressWatchdog::stop()
{
    if (!running_.exchange(false, std::memory_order_acq_rel))
        return;
    {
        lockdep::Guard lock(stateMutex_);
        stopRequested_ = true;
    }
    stopCv_.notify_all();
    if (thread_.joinable())
        thread_.join();
}

WatchdogView
ProgressWatchdog::view() const
{
    WatchdogView v;
    v.enabled = true;
    {
        lockdep::Guard lock(stateMutex_);
        v.verdict = verdict_;
    }
    v.beats = beatsCount_.load(std::memory_order_relaxed);
    v.stallFlags = stallFlags_.load(std::memory_order_relaxed) +
                   deadlockFlags_.load(std::memory_order_relaxed) +
                   livelockFlags_.load(std::memory_order_relaxed);
    v.dumps = dumpsCount_.load(std::memory_order_relaxed);
    return v;
}

void
ProgressWatchdog::timerLoop()
{
    lockdep::UniqueLock lock(stateMutex_);
    while (!stopRequested_) {
        if (stopCv_.wait_for(lock,
                             std::chrono::milliseconds(cfg_.intervalMs),
                             [this] { return stopRequested_; }))
            break;
        lock.unlock();
        beatOnce();
        lock.lock();
    }
}

const char*
ProgressWatchdog::beatOnce()
{
    Beat cur;
    if (source_.tiles)
        cur.tiles = source_.tiles();
    for (const TileStatus& t : cur.tiles)
        cur.total += t.cycles;
    beatsCount_.fetch_add(1, std::memory_order_relaxed);

    const char* verdict;
    bool escalateNow = false;
    {
        lockdep::Guard lock(stateMutex_);
        if (!haveBeat_) {
            lastBeat_ = std::move(cur);
            haveBeat_ = true;
            staleBeats_.assign(lastBeat_.tiles.size(), 0);
            return verdict_;
        }
        verdict = classify(lastBeat_, cur);
        if (std::strcmp(verdict, verdict_) != 0) {
            // Verdict transition: count the flag, reset escalation.
            verdict_ = verdict;
            beatsInVerdict_ = 0;
            dumped_ = false;
            if (std::strcmp(verdict, "stall") == 0)
                stallFlags_.fetch_add(1, std::memory_order_relaxed);
            else if (std::strcmp(verdict, "deadlock") == 0)
                deadlockFlags_.fetch_add(1, std::memory_order_relaxed);
            else if (std::strcmp(verdict, "livelock") == 0)
                livelockFlags_.fetch_add(1, std::memory_order_relaxed);
            if (std::strcmp(verdict, "ok") != 0) {
                int code = std::strcmp(verdict, "deadlock") == 0 ? 2
                           : std::strcmp(verdict, "livelock") == 0
                               ? 3
                               : 1;
                FlightRecorder::record(FrEvent::WatchdogFlag,
                                       INVALID_TILE_ID, cur.total,
                                       static_cast<std::uint64_t>(code));
            }
        } else if (std::strcmp(verdict, "ok") != 0) {
            ++beatsInVerdict_;
            if (!dumped_ && beatsInVerdict_ >= cfg_.dumpBeats &&
                cfg_.action != WatchdogAction::Flag) {
                dumped_ = true;
                escalateNow = true;
            }
        }
        lastBeat_ = std::move(cur);
    }
    if (escalateNow)
        escalate();
    return verdict;
}

const char*
ProgressWatchdog::classify(const Beat& prev, const Beat& cur)
{
    // Caller holds stateMutex_.
    if (staleBeats_.size() != cur.tiles.size())
        staleBeats_.assign(cur.tiles.size(), 0);

    std::size_t occupied = 0;
    std::size_t parked = 0;      // occupied && !running
    bool anyAdvanced = false;
    bool anyRunningStale = false;
    for (std::size_t i = 0; i < cur.tiles.size(); ++i) {
        const TileStatus& t = cur.tiles[i];
        cycle_t before =
            i < prev.tiles.size() ? prev.tiles[i].cycles : 0;
        bool advanced = t.cycles > before;
        if (!t.occupied || advanced)
            staleBeats_[i] = 0;
        else
            ++staleBeats_[i];
        if (!t.occupied)
            continue;
        ++occupied;
        if (!t.running)
            ++parked;
        if (advanced)
            anyAdvanced = true;
        else if (t.running && staleBeats_[i] >= cfg_.stallBeats)
            anyRunningStale = true;
    }

    if (occupied == 0) {
        // Startup or shutdown: nothing to judge.
        noProgressBeats_ = 0;
        return "ok";
    }

    noProgressBeats_ = cur.total > prev.total ? 0 : noProgressBeats_ + 1;

    if (noProgressBeats_ >= cfg_.stallBeats) {
        // Total progress stopped long enough to call it. All parked =
        // deadlock shape (everyone waits on a futex/join that will
        // never be signalled); anyone still "running" = livelock shape.
        return parked == occupied ? "deadlock" : "livelock";
    }
    if (anyAdvanced && anyRunningStale)
        return "stall";
    return "ok";
}

std::string
ProgressWatchdog::renderDump() const
{
    std::ostringstream os;
    os << "=== watchdog diagnostic dump ===\n";
    {
        lockdep::Guard lock(stateMutex_);
        os << "verdict: " << verdict_ << " (after "
           << beatsCount_.load(std::memory_order_relaxed)
           << " beats, interval " << cfg_.intervalMs << " ms)\n";
    }

    // Name every waiting tile and the primitive it waits on.
    if (source_.waitSets) {
        WaitSetSnapshot ws = source_.waitSets();
        os << "busy tiles: " << ws.busyTiles << "\n";
        for (const auto& q : ws.futexes) {
            os << "futex 0x" << std::hex << q.addr << std::dec
               << " waiters:";
            for (tile_id_t t : q.waiters)
                os << " tile " << t;
            os << "\n";
        }
        for (const auto& q : ws.joins) {
            os << "join on tile " << q.target << " waiters:";
            for (tile_id_t t : q.waiters)
                os << " tile " << t;
            os << "\n";
        }
    }
    if (source_.tiles) {
        for (const TileStatus& t : source_.tiles()) {
            if (!t.occupied)
                continue;
            os << "tile " << t.tile << ": cycles " << t.cycles
               << ", instructions " << t.instructions << ", "
               << (t.running ? "running" : "blocked") << "\n";
        }
    }

    // Lockdep held-sets: which host thread holds which lock classes
    // (and is blocked acquiring what), with acquisition sites — the
    // difference between "it hangs" and "thread A holds mem_shard[3]
    // from memory_system.cpp:210 while waiting for sched_pool".
    std::string held = lockdep::renderHeldSets("  ");
    if (!held.empty())
        os << "lock held-sets (lockdep):\n" << held;

    WatchdogView wd = view();
    os << "status: " << renderStatusJson(source_, &wd) << "\n";
    os << FlightRecorder::instance().dump(256);
    return os.str();
}

void
ProgressWatchdog::writeDump(const std::string& text) const
{
    if (cfg_.dumpPath.empty()) {
        std::fwrite(text.data(), 1, text.size(), stderr);
        std::fflush(stderr);
        return;
    }
    FILE* f = std::fopen(cfg_.dumpPath.c_str(), "w");
    if (f == nullptr) {
        warnc("obs", "watchdog: cannot write dump to {}: {}",
              cfg_.dumpPath, std::strerror(errno));
        std::fwrite(text.data(), 1, text.size(), stderr);
        std::fflush(stderr);
        return;
    }
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
}

void
ProgressWatchdog::escalate()
{
    dumpsCount_.fetch_add(1, std::memory_order_relaxed);
    std::string text = renderDump();
    writeDump(text);
    const char* verdict;
    {
        lockdep::Guard lock(stateMutex_);
        verdict = verdict_;
    }
    warnc("obs", "watchdog: {} detected; diagnostic dump written to {}",
          verdict,
          cfg_.dumpPath.empty() ? std::string("stderr") : cfg_.dumpPath);
    if (cfg_.action == WatchdogAction::Abort) {
        // _Exit, not abort(): the process state is wedged and running
        // destructors (joining stuck threads) would hang forever.
        std::_Exit(WATCHDOG_ABORT_EXIT);
    }
}

} // namespace telemetry
} // namespace obs
} // namespace graphite
