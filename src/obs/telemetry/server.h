/**
 * @file
 * Embedded HTTP telemetry server.
 *
 * One background host thread, plain BSD sockets, loopback only. Serves
 * three read-only endpoints while the simulation runs:
 *
 *   GET /metrics  — Prometheus text exposition of every registered
 *                   statistic (renderPrometheus)
 *   GET /status   — JSON live snapshot: per-tile cycle/IPC/run state,
 *                   sync-model slack, MCP wait sets, queue depths,
 *                   host RSS and wall time (renderStatusJson)
 *   GET /healthz  — tiny liveness document incorporating the watchdog
 *                   verdict (renderHealthJson)
 *
 * Request handling is deliberately bounded: one connection at a time,
 * a 4 KiB request cap, a short socket timeout, method+path parsing
 * only. The server never blocks simulation threads — every render goes
 * through the same thread-safe reads the interval sampler already
 * uses. Binding port 0 picks an ephemeral port, published via port()
 * so tests and the CLI can print the real endpoint.
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "common/stats.h"
#include "obs/telemetry/status.h"

namespace graphite
{
namespace obs
{
namespace telemetry
{

/** Loopback HTTP server exposing /metrics, /status, /healthz. */
class TelemetryServer
{
  public:
    /** Callback returning the current watchdog view (may be empty). */
    using watchdog_view_fn = std::function<WatchdogView()>;

    TelemetryServer() = default;
    ~TelemetryServer() { stop(); }

    TelemetryServer(const TelemetryServer&) = delete;
    TelemetryServer& operator=(const TelemetryServer&) = delete;

    /**
     * Bind 127.0.0.1:@p port (0 = ephemeral) and start the accept
     * thread. @return true on success; failure (port in use, sockets
     * unavailable) is reported and the simulation carries on without
     * telemetry.
     */
    bool start(std::uint16_t port, StatusSource source,
               watchdog_view_fn watchdog = nullptr);

    /** Stop the accept thread and close the socket. Idempotent. */
    void stop();

    bool running() const
    {
        return running_.load(std::memory_order_acquire);
    }

    /** Actual bound port (after port-0 resolution); 0 when stopped. */
    std::uint16_t port() const
    {
        return port_.load(std::memory_order_acquire);
    }

    /** @name Scrape counters (exported as telemetry.* stats) @{ */
    const atomic_stat_t& requestsServed() const { return requests_; }
    const atomic_stat_t& bytesServed() const { return bytes_; }
    /** @} */

  private:
    void serveLoop();
    void handleConnection(int fd);

    StatusSource source_;
    watchdog_view_fn watchdog_;
    std::thread thread_;
    std::atomic<bool> running_{false};
    std::atomic<std::uint16_t> port_{0};
    int listenFd_ = -1;
    int stopPipe_[2] = {-1, -1};
    atomic_stat_t requests_{0};
    atomic_stat_t bytes_{0};
};

} // namespace telemetry
} // namespace obs
} // namespace graphite
