#include "obs/telemetry/server.h"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/log.h"

namespace graphite
{
namespace obs
{
namespace telemetry
{

namespace
{

constexpr std::size_t MAX_REQUEST_BYTES = 4096;
constexpr int IO_TIMEOUT_MS = 2000;

void
closeIfOpen(int& fd)
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

/** Blocking-with-timeout send of the full buffer. */
bool
sendAll(int fd, const char* data, std::size_t len)
{
    std::size_t off = 0;
    while (off < len) {
        ssize_t w = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (w == 0)
            return false;
        off += static_cast<std::size_t>(w);
    }
    return true;
}

std::string
httpResponse(int code, const char* reason, const char* content_type,
             const std::string& body)
{
    std::string out = "HTTP/1.1 ";
    out += std::to_string(code);
    out += " ";
    out += reason;
    out += "\r\nContent-Type: ";
    out += content_type;
    out += "\r\nContent-Length: ";
    out += std::to_string(body.size());
    out += "\r\nConnection: close\r\n\r\n";
    out += body;
    return out;
}

} // namespace

bool
TelemetryServer::start(std::uint16_t port, StatusSource source,
                       watchdog_view_fn watchdog)
{
    if (running())
        return true;

    int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
        warnc("obs", "telemetry: socket() failed: {}",
              std::strerror(errno));
        return false;
    }
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
        0) {
        warnc("obs", "telemetry: bind(127.0.0.1:{}) failed: {}", port,
              std::strerror(errno));
        ::close(fd);
        return false;
    }
    if (::listen(fd, 8) < 0) {
        warnc("obs", "telemetry: listen() failed: {}",
              std::strerror(errno));
        ::close(fd);
        return false;
    }
    // Resolve the real port after a port-0 (ephemeral) bind.
    sockaddr_in bound;
    socklen_t blen = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &blen) ==
        0)
        port = ntohs(bound.sin_port);

    if (::pipe(stopPipe_) < 0) {
        warnc("obs", "telemetry: pipe() failed: {}",
              std::strerror(errno));
        ::close(fd);
        return false;
    }

    listenFd_ = fd;
    source_ = std::move(source);
    watchdog_ = std::move(watchdog);
    running_.store(true, std::memory_order_release);
    port_.store(port, std::memory_order_release);
    thread_ = std::thread([this] { serveLoop(); });
    informc("obs", "telemetry: serving on http://127.0.0.1:{}", port);
    return true;
}

void
TelemetryServer::stop()
{
    if (!running_.exchange(false, std::memory_order_acq_rel)) {
        return;
    }
    // Wake the poll() in serveLoop.
    if (stopPipe_[1] >= 0) {
        char c = 'x';
        [[maybe_unused]] ssize_t rc = ::write(stopPipe_[1], &c, 1);
    }
    if (thread_.joinable())
        thread_.join();
    closeIfOpen(listenFd_);
    closeIfOpen(stopPipe_[0]);
    closeIfOpen(stopPipe_[1]);
    port_.store(0, std::memory_order_release);
}

void
TelemetryServer::serveLoop()
{
    while (running_.load(std::memory_order_acquire)) {
        pollfd fds[2];
        fds[0].fd = listenFd_;
        fds[0].events = POLLIN;
        fds[0].revents = 0;
        fds[1].fd = stopPipe_[0];
        fds[1].events = POLLIN;
        fds[1].revents = 0;
        int rc = ::poll(fds, 2, -1);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (fds[1].revents != 0)
            break; // stop() signalled
        if ((fds[0].revents & POLLIN) == 0)
            continue;
        int conn = ::accept(listenFd_, nullptr, nullptr);
        if (conn < 0)
            continue;
        // Bound the whole exchange so a stuck client can't wedge the
        // telemetry thread.
        timeval tv;
        tv.tv_sec = IO_TIMEOUT_MS / 1000;
        tv.tv_usec = (IO_TIMEOUT_MS % 1000) * 1000;
        ::setsockopt(conn, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
        ::setsockopt(conn, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
        handleConnection(conn);
        ::close(conn);
    }
}

void
TelemetryServer::handleConnection(int fd)
{
    // Read until the end of the request headers or the size cap. The
    // endpoints are all GET, so the body (if any) is ignored.
    char buf[MAX_REQUEST_BYTES + 1];
    std::size_t got = 0;
    while (got < MAX_REQUEST_BYTES) {
        ssize_t r = ::recv(fd, buf + got, MAX_REQUEST_BYTES - got, 0);
        if (r <= 0)
            break;
        got += static_cast<std::size_t>(r);
        buf[got] = '\0';
        if (std::strstr(buf, "\r\n\r\n") != nullptr ||
            std::strstr(buf, "\n\n") != nullptr)
            break;
    }
    if (got == 0)
        return;
    buf[got] = '\0';

    // Parse "METHOD /path HTTP/1.x" from the request line only.
    char method[8] = {0};
    char path[256] = {0};
    if (std::sscanf(buf, "%7s %255s", method, path) != 2) {
        std::string resp = httpResponse(400, "Bad Request",
                                        "text/plain; charset=utf-8",
                                        "bad request\n");
        sendAll(fd, resp.data(), resp.size());
        return;
    }

    std::string response;
    if (std::strcmp(method, "GET") != 0) {
        response = httpResponse(405, "Method Not Allowed",
                                "text/plain; charset=utf-8",
                                "only GET is supported\n");
    } else if (std::strcmp(path, "/metrics") == 0) {
        std::string body = source_.stats != nullptr
                               ? renderPrometheus(*source_.stats)
                               : std::string();
        response = httpResponse(
            200, "OK", "text/plain; version=0.0.4; charset=utf-8",
            body);
    } else if (std::strcmp(path, "/status") == 0) {
        WatchdogView wd;
        if (watchdog_)
            wd = watchdog_();
        response = httpResponse(
            200, "OK", "application/json; charset=utf-8",
            renderStatusJson(source_, watchdog_ ? &wd : nullptr));
    } else if (std::strcmp(path, "/healthz") == 0) {
        WatchdogView wd;
        if (watchdog_)
            wd = watchdog_();
        response = httpResponse(
            200, "OK", "application/json; charset=utf-8",
            renderHealthJson(source_, watchdog_ ? &wd : nullptr));
    } else {
        response = httpResponse(
            404, "Not Found", "text/plain; charset=utf-8",
            "unknown endpoint; try /metrics /status /healthz\n");
    }
    if (sendAll(fd, response.data(), response.size())) {
        requests_.fetch_add(1, std::memory_order_relaxed);
        bytes_.fetch_add(response.size(), std::memory_order_relaxed);
    }
}

} // namespace telemetry
} // namespace obs
} // namespace graphite
