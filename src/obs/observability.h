/**
 * @file
 * Observability facade: configures the three obs pillars — event
 * tracer, interval metrics sampler, host self-profiler — from config
 * keys and owns artifact emission at end of run.
 *
 * Config keys (all off by default; see graphite.cfg [obs]):
 *   obs/trace_out              trace JSON path; non-empty enables tracing
 *   obs/trace_buffer_capacity  events kept per lane (default 65536)
 *   obs/metrics_out            metrics path (.csv or .jsonl); enables
 *                              interval snapshots when non-empty
 *   obs/metrics_interval       simulated cycles per row (default 100000)
 *   obs/self_profile           bool; enables host profiling scopes
 *   obs/spans_out              spans.jsonl path; non-empty enables the
 *                              causal span engine
 *   obs/spans_enabled          bool; arm spans without an output file
 *                              (aggregates/stats only)
 *   obs/span_reservoir         sampled full records kept (default 4096)
 *   obs/span_slowest           top-N slowest records kept (default 64)
 *   obs/span_interval          cycles per bottleneck bin (default 100000)
 *   obs/span_flow_events       emit Chrome flow events for sampled spans
 *                              when tracing is also on (default true)
 *   log/filter                 component log filter spec (convenience)
 *
 * Telemetry keys (see graphite.cfg [telemetry]): unlike the pillars
 * above, the flight recorder is ON by default — it records per
 * miss/sync/syscall, not per instruction, so an always-on black box is
 * affordable (see bench/micro_telemetry_overhead.cpp):
 *   telemetry/recorder           bool, default true; arm the recorder
 *   telemetry/recorder_capacity  ring slots (default 4096, pow2)
 *   telemetry/crash_dump         path; non-empty installs the crash
 *                                signal handler dumping the ring there
 *
 * Lifecycle: Simulator's constructor calls configure() (resetting all
 * global sinks for the new run) and attachSources() once its components
 * exist; Simulator::run() and ~Simulator() call finalize(), which writes
 * the artifacts exactly once and detaches from simulator-owned state so
 * nothing dangles after the Simulator dies.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/fixed_types.h"

namespace graphite
{

class Config;
class StatsRegistry;

namespace obs
{

/** Process-global observability coordinator. */
class Observability
{
  public:
    static Observability& instance();

    /**
     * Read config and arm the pillars for a run over @p total_tiles
     * tiles. Resets all previously recorded data.
     */
    void configure(const Config& cfg, tile_id_t total_tiles);

    /**
     * Wire simulator-owned data sources into the metrics sampler and
     * the span sink.
     * @param registry       the simulator's stats registry
     * @param now            current simulated time (max tile clock)
     * @param active_clocks  clocks of currently-running tiles
     * @param progress       global-progress estimate (span skew
     *                       stamping); may be null
     */
    void attachSources(const StatsRegistry* registry,
                       std::function<cycle_t()> now,
                       std::function<std::vector<double>()>
                           active_clocks,
                       std::function<cycle_t()> progress = nullptr);

    /**
     * Write trace/metrics artifacts (when enabled) and detach from
     * simulator state. Idempotent; the self-profiler stays readable so
     * post-run reports can include it.
     */
    void finalize();

    bool traceEnabled() const { return !tracePath_.empty(); }
    bool metricsEnabled() const { return !metricsPath_.empty(); }
    bool selfProfileEnabled() const { return selfProfile_; }
    bool spansEnabled() const
    {
        return spansArmed_ || !spansPath_.empty();
    }
    const std::string& tracePath() const { return tracePath_; }
    const std::string& metricsPath() const { return metricsPath_; }
    const std::string& spansPath() const { return spansPath_; }
    const std::string& crashDumpPath() const { return crashDumpPath_; }

  private:
    std::string tracePath_;
    std::string metricsPath_;
    std::string spansPath_;
    std::string crashDumpPath_;
    cycle_t metricsInterval_ = 0;
    bool selfProfile_ = false;
    bool spansArmed_ = false;
    bool finalized_ = true;
};

} // namespace obs
} // namespace graphite
