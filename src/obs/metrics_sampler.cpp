#include "common/lockdep.h"
#include "obs/metrics_sampler.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/log.h"
#include "obs/accuracy/accuracy.h"
#include "obs/telemetry/status.h"

namespace graphite
{
namespace obs
{

std::atomic<bool> MetricsSampler::enabledFlag_{false};

MetricsSampler&
MetricsSampler::instance()
{
    static MetricsSampler sampler;
    return sampler;
}

void
MetricsSampler::setGlobalEnabled(bool on)
{
    enabledFlag_.store(on, std::memory_order_relaxed);
}

void
MetricsSampler::configure(const StatsRegistry* registry, cycle_t interval,
                          std::string out_path,
                          std::function<cycle_t()> now,
                          std::function<std::vector<double>()>
                              active_clocks)
{
    if (interval == 0)
        fatal("metrics: interval must be positive");
    lockdep::Guard lock(mutex_);
    registry_ = registry;
    interval_ = interval;
    outPath_ = std::move(out_path);
    now_ = std::move(now);
    activeClocks_ = std::move(active_clocks);
    start_ = std::chrono::steady_clock::now();

    columns_.clear();
    prevValues_.clear();
    for (auto& [name, value] : registry_->snapshot()) {
        columns_.push_back(name);
        prevValues_.push_back(value);
    }
    prevViolations_ =
        accuracy::AccuracyObservatory::instance().violations();
    lastSampleCycle_ = 0;
    nextSample_.store(interval_, std::memory_order_relaxed);
    rows_.clear();
    finalized_ = false;
}

void
MetricsSampler::maybeSample()
{
    // Racy pre-check: worth it because this runs from every application
    // thread's periodic sync hook. The boundary is re-checked under the
    // lock before sampling.
    cycle_t next = nextSample_.load(std::memory_order_relaxed);
    if (next == INVALID_CYCLE)
        return;
    cycle_t now = now_ ? now_() : 0;
    if (now < next)
        return;

    lockdep::Guard lock(mutex_);
    if (registry_ == nullptr || finalized_)
        return;
    if (now < nextSample_.load(std::memory_order_relaxed))
        return; // another thread beat us to this interval
    sampleLocked(now);
    // Skip boundaries the run jumped over (lax clocks can leap).
    cycle_t target = nextSample_.load(std::memory_order_relaxed);
    while (target <= now)
        target += interval_;
    nextSample_.store(target, std::memory_order_relaxed);
}

void
MetricsSampler::sampleLocked(cycle_t now)
{
    Row row;
    row.index = rows_.size();
    row.startCycle = lastSampleCycle_;
    row.endCycle = now;
    row.wallSeconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
    row.hostWallMs = row.wallSeconds * 1000.0;
    row.hostRssKb = telemetry::hostRssKb();

    if (activeClocks_) {
        std::vector<double> clocks = activeClocks_();
        if (clocks.size() >= 2) {
            double sum = 0;
            for (double c : clocks)
                sum += c;
            double mean = sum / static_cast<double>(clocks.size());
            row.skewMax = -1e300;
            row.skewMin = 1e300;
            for (double c : clocks) {
                row.skewMax = std::max(row.skewMax, c - mean);
                row.skewMin = std::min(row.skewMin, c - mean);
            }
        }
    }

    // Per-interval causality-violation delta from the accuracy
    // observatory (always a column; reads 0 while disarmed).
    stat_t violations =
        accuracy::AccuracyObservatory::instance().violations();
    row.causalityViolations = violations >= prevViolations_
                                  ? violations - prevViolations_
                                  : 0;
    prevViolations_ = violations;

    auto snap = registry_->snapshot();
    row.deltas.assign(columns_.size(), 0);
    // The column set is fixed at configure(); stats registered later in
    // the run are ignored (documented behavior, keeps rows rectangular).
    std::size_t si = 0;
    for (std::size_t ci = 0; ci < columns_.size(); ++ci) {
        while (si < snap.size() && snap[si].first < columns_[ci])
            ++si;
        if (si < snap.size() && snap[si].first == columns_[ci]) {
            row.deltas[ci] =
                static_cast<std::int64_t>(snap[si].second) -
                static_cast<std::int64_t>(prevValues_[ci]);
            prevValues_[ci] = snap[si].second;
        }
    }

    lastSampleCycle_ = now;
    rows_.push_back(std::move(row));
}

std::size_t
MetricsSampler::rowCount() const
{
    lockdep::Guard lock(mutex_);
    return rows_.size();
}

std::vector<std::string>
MetricsSampler::columns() const
{
    lockdep::Guard lock(mutex_);
    return columns_;
}

MetricsSampler::Row
MetricsSampler::row(std::size_t i) const
{
    lockdep::Guard lock(mutex_);
    GRAPHITE_ASSERT(i < rows_.size());
    return rows_[i];
}

std::string
MetricsSampler::render() const
{
    lockdep::Guard lock(mutex_);
    return renderLocked();
}

std::string
MetricsSampler::renderLocked() const
{
    bool jsonl = outPath_.size() >= 6 &&
                 outPath_.compare(outPath_.size() - 6, 6, ".jsonl") == 0;
    std::ostringstream os;
    if (jsonl) {
        for (const Row& r : rows_) {
            os << "{\"interval\":" << r.index << ",\"start_cycle\":"
               << r.startCycle << ",\"end_cycle\":" << r.endCycle
               << ",\"wall_seconds\":" << r.wallSeconds
               << ",\"host_wall_ms\":" << r.hostWallMs
               << ",\"host_rss_kb\":" << r.hostRssKb
               << ",\"skew_max_cycles\":" << r.skewMax
               << ",\"skew_min_cycles\":" << r.skewMin
               << ",\"causality_violations\":" << r.causalityViolations
               << ",\"counters\":{";
            for (std::size_t i = 0; i < columns_.size(); ++i) {
                if (i != 0)
                    os << ",";
                os << "\"" << columns_[i] << "\":" << r.deltas[i];
            }
            os << "}}\n";
        }
    } else {
        os << "interval,start_cycle,end_cycle,wall_seconds,"
              "host_wall_ms,host_rss_kb,skew_max_cycles,skew_min_cycles,"
              "causality_violations";
        for (const std::string& c : columns_)
            os << "," << c;
        os << "\n";
        for (const Row& r : rows_) {
            os << r.index << "," << r.startCycle << "," << r.endCycle
               << "," << r.wallSeconds << "," << r.hostWallMs << ","
               << r.hostRssKb << "," << r.skewMax << "," << r.skewMin
               << "," << r.causalityViolations;
            for (std::int64_t d : r.deltas)
                os << "," << d;
            os << "\n";
        }
    }
    return os.str();
}

void
MetricsSampler::finalize()
{
    lockdep::Guard lock(mutex_);
    if (finalized_ || registry_ == nullptr)
        return;
    // Tail interval: whatever accumulated since the last boundary. A
    // run shorter than one interval still gets its single partial row
    // (an empty artifact would hide the whole run).
    cycle_t now = now_ ? now_() : 0;
    if (now > lastSampleCycle_ || rows_.empty())
        sampleLocked(now);
    finalized_ = true;
    nextSample_.store(INVALID_CYCLE, std::memory_order_relaxed);
    registry_ = nullptr;
    now_ = nullptr;
    activeClocks_ = nullptr;

    if (outPath_.empty())
        return;
    std::string doc = renderLocked();
    std::FILE* f = std::fopen(outPath_.c_str(), "wb");
    if (f == nullptr)
        fatal("metrics: cannot open '{}' for writing", outPath_);
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
}

} // namespace obs
} // namespace graphite
