/**
 * @file
 * Interval metrics snapshots: per-interval deltas of every registered
 * statistic, written as CSV (default) or JSONL.
 *
 * The sampler periodically (every metrics_interval simulated cycles)
 * snapshots a StatsRegistry — counters, gauges, and histogram
 * count/sum projections — and records the delta of each value against
 * the previous snapshot, together with derived clock-skew columns
 * computed from the active tiles' clocks. This turns the paper's
 * time-series figures (Fig. 7 skew-over-time, per-tile cache behavior)
 * into a one-flag feature instead of a bespoke bench harness.
 *
 * Sampling is driven opportunistically from the application threads'
 * periodic sync checks (the same hook that feeds SkewTracker): whichever
 * thread first observes simulated time crossing the next interval
 * boundary takes the snapshot. Rows are buffered in memory and written
 * at finalize(), so the hot path never touches the filesystem.
 *
 * Hot-path discipline mirrors TraceSink: globalEnabled() is one relaxed
 * atomic load; everything else happens only when the feature is on.
 */

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "common/fixed_types.h"
#include "common/lockdep.h"
#include "common/stats.h"

namespace graphite
{
namespace obs
{

/** Periodic snapshotter of a StatsRegistry. */
class MetricsSampler
{
  public:
    /** The sampler wired into the simulator's periodic sync hook. */
    static MetricsSampler& instance();

    /** Cached enable flag for the global instance (hot-path check). */
    static bool
    globalEnabled()
    {
        return enabledFlag_.load(std::memory_order_relaxed);
    }

    static void setGlobalEnabled(bool on);

    /**
     * (Re)initialize for a run. Fixes the column set from the registry's
     * current contents and discards previous rows.
     *
     * @param registry       source of counters/gauges; must outlive the
     *                       sampler or be detached via finalize()
     * @param interval       simulated cycles between rows (> 0)
     * @param out_path       output file; ".jsonl" suffix selects JSONL,
     *                       anything else CSV. Empty = render-only (tests)
     * @param now            returns current simulated time (max tile clock)
     * @param active_clocks  returns the clocks of currently-running tiles
     *                       (for the derived skew columns); may be empty
     */
    void configure(const StatsRegistry* registry, cycle_t interval,
                   std::string out_path, std::function<cycle_t()> now,
                   std::function<std::vector<double>()> active_clocks);

    /**
     * Take a snapshot if simulated time has crossed the next interval
     * boundary. Thread-safe; cheap when below the boundary.
     */
    void maybeSample();

    /**
     * Record the tail interval, write the output file (if a path was
     * configured), and detach from the registry. Idempotent.
     */
    void finalize();

    /** Rows recorded so far. */
    std::size_t rowCount() const;

    /** Column names, in output order (after the fixed lead columns). */
    std::vector<std::string> columns() const;

    /** Render the full output document (CSV or JSONL) as a string. */
    std::string render() const;

    /** One snapshot row (exposed for unit tests). */
    struct Row
    {
        std::uint64_t index = 0;
        cycle_t startCycle = 0;
        cycle_t endCycle = 0;
        double wallSeconds = 0;
        double hostWallMs = 0;  ///< host wall clock since configure, ms
        stat_t hostRssKb = 0;   ///< host resident set at snapshot, KiB
        double skewMax = 0; ///< max (clock − mean), active tiles, cycles
        double skewMin = 0; ///< min (clock − mean), active tiles, cycles
        /** Causality violations detected this interval (accuracy
         *  observatory; 0 while the observatory is disarmed). */
        stat_t causalityViolations = 0;
        std::vector<std::int64_t> deltas; ///< parallel to columns()
    };

    /** Copy of row @p i (for unit tests). */
    Row row(std::size_t i) const;

  private:
    void sampleLocked(cycle_t now);
    std::string renderLocked() const;

    static std::atomic<bool> enabledFlag_;

    mutable lockdep::OrderedMutex mutex_{lockdep::LockClass::metrics_sampler};
    const StatsRegistry* registry_ = nullptr;
    cycle_t interval_ = 0;
    std::string outPath_;
    std::function<cycle_t()> now_;
    std::function<std::vector<double>()> activeClocks_;
    std::chrono::steady_clock::time_point start_;

    std::vector<std::string> columns_;
    std::vector<stat_t> prevValues_;
    stat_t prevViolations_ = 0;
    cycle_t lastSampleCycle_ = 0;
    std::atomic<cycle_t> nextSample_{INVALID_CYCLE};
    std::vector<Row> rows_;
    bool finalized_ = true;
};

} // namespace obs
} // namespace graphite
