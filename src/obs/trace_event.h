/**
 * @file
 * Chrome trace_event sink: low-overhead, per-lane ring-buffered event
 * recording, exported as JSON loadable by chrome://tracing and Perfetto.
 *
 * Lanes map to Chrome "threads": one lane per target tile plus one for
 * the MCP service thread. Timestamps are *simulated* cycles rendered as
 * trace microseconds (1 cycle == 1 us of display time), so the viewer
 * shows target time, not host time.
 *
 * Hot-path discipline: every recording helper first checks a cached
 * process-global enable flag (one relaxed atomic load, no locks). When
 * disabled — the default — instrumentation points cost a predicted
 * branch. When enabled, a per-lane mutex guards the lane's ring; lanes
 * are effectively single-writer (a tile's events come from the thread
 * occupying it), so contention is nil. Rings overwrite nothing: once a
 * lane is full further events are dropped and counted, keeping the
 * *beginning* of the run — the part whose thread-spawn structure makes
 * the rest interpretable.
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/fixed_types.h"
#include "common/lockdep.h"

namespace graphite
{
namespace obs
{

/** One recorded event. Names must be string literals (never freed). */
struct TraceEvent
{
    const char* name = nullptr;
    const char* argName = nullptr; ///< nullptr = no argument
    cycle_t ts = 0;                ///< simulated cycles
    cycle_t dur = 0;               ///< for phase 'X' only
    std::int64_t arg = 0;
    std::uint64_t id = 0; ///< flow-binding id, phases 's'/'t'/'f' only
    std::uint32_t lane = 0;
    /** 'X' complete, 'i' instant, 'C' counter, or a flow phase:
     *  's' start, 't' step, 'f' end (Perfetto arrows). */
    char phase = 'i';
};

/** Process-global trace sink. */
class TraceSink
{
  public:
    /** The sink used by all instrumentation points. */
    static TraceSink& instance();

    /** Cached enable flag — the only hot-path check. */
    static bool
    enabled()
    {
        return enabledFlag_.load(std::memory_order_relaxed);
    }

    /**
     * (Re)initialize for a run: @p num_lanes rings of @p capacity events
     * each. Discards previously recorded events.
     */
    void configure(std::uint32_t num_lanes, std::size_t capacity);

    void setEnabled(bool on);

    /** Label a lane ("tile 3", "mcp") for the viewer's thread list. */
    void setLaneName(std::uint32_t lane, std::string name);

    /** @name Recording (no-ops while disabled) @{ */
    static void complete(std::uint32_t lane, const char* name, cycle_t ts,
                         cycle_t dur, const char* arg_name = nullptr,
                         std::int64_t arg = 0);
    static void instant(std::uint32_t lane, const char* name, cycle_t ts,
                        const char* arg_name = nullptr,
                        std::int64_t arg = 0);
    static void counter(std::uint32_t lane, const char* name, cycle_t ts,
                        std::int64_t value);
    /**
     * Record a flow event: @p phase is 's' (start), 't' (step) or
     * 'f' (end). Events with the same @p name and @p id form one
     * arrow chain; the 'f' event binds to the enclosing slice
     * ("bp":"e"). All events of one chain share category "span".
     */
    static void flow(char phase, std::uint32_t lane, const char* name,
                     cycle_t ts, std::uint64_t id);
    /** @} */

    /** Events currently held across all lanes. */
    std::size_t recorded() const;

    /** Events rejected because their lane's ring was full. */
    std::size_t dropped() const;

    /** Render the Chrome trace JSON document. */
    std::string toJson() const;

    /** Write toJson() to @p path; fatal if the file cannot be written. */
    void writeFile(const std::string& path) const;

    /** Drop all lanes and recorded events; leaves the sink disabled. */
    void reset();

  private:
    struct Lane
    {
        mutable lockdep::OrderedMutex mutex{lockdep::LockClass::trace_lane};
        std::vector<TraceEvent> events; ///< reserve(capacity), append-only
        std::uint64_t dropped = 0;
        std::string name;
    };

    void record(const TraceEvent& ev);

    static std::atomic<bool> enabledFlag_;

    mutable lockdep::OrderedMutex configMutex_{
        lockdep::LockClass::trace_config}; ///< guards lanes_ vector shape
    std::vector<std::unique_ptr<Lane>> lanes_;
    std::size_t capacity_ = 0;
};

} // namespace obs
} // namespace graphite
