#include "common/lockdep.h"
#include "obs/trace_event.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/log.h"

namespace graphite
{
namespace obs
{

std::atomic<bool> TraceSink::enabledFlag_{false};

TraceSink&
TraceSink::instance()
{
    static TraceSink sink;
    return sink;
}

void
TraceSink::configure(std::uint32_t num_lanes, std::size_t capacity)
{
    lockdep::Guard lock(configMutex_);
    lanes_.clear();
    lanes_.reserve(num_lanes);
    for (std::uint32_t i = 0; i < num_lanes; ++i) {
        auto lane = std::make_unique<Lane>();
        lane->mutex.setInstance(i);
        lane->events.reserve(capacity);
        lanes_.push_back(std::move(lane));
    }
    capacity_ = capacity;
}

void
TraceSink::setEnabled(bool on)
{
    enabledFlag_.store(on, std::memory_order_relaxed);
}

void
TraceSink::setLaneName(std::uint32_t lane, std::string name)
{
    lockdep::Guard lock(configMutex_);
    if (lane < lanes_.size())
        lanes_[lane]->name = std::move(name);
}

void
TraceSink::record(const TraceEvent& ev)
{
    // The lanes_ vector shape is fixed between configure() calls, and
    // instrumentation only runs while a simulation is live, so indexing
    // without configMutex_ is safe; events from an unconfigured or
    // out-of-range lane are dropped.
    if (ev.lane >= lanes_.size())
        return;
    Lane& lane = *lanes_[ev.lane];
    lockdep::Guard lock(lane.mutex);
    if (lane.events.size() >= capacity_) {
        ++lane.dropped;
        return;
    }
    lane.events.push_back(ev);
}

void
TraceSink::complete(std::uint32_t lane, const char* name, cycle_t ts,
                    cycle_t dur, const char* arg_name, std::int64_t arg)
{
    if (!enabled())
        return;
    TraceEvent ev;
    ev.name = name;
    ev.argName = arg_name;
    ev.ts = ts;
    ev.dur = dur;
    ev.arg = arg;
    ev.lane = lane;
    ev.phase = 'X';
    instance().record(ev);
}

void
TraceSink::instant(std::uint32_t lane, const char* name, cycle_t ts,
                   const char* arg_name, std::int64_t arg)
{
    if (!enabled())
        return;
    TraceEvent ev;
    ev.name = name;
    ev.argName = arg_name;
    ev.ts = ts;
    ev.arg = arg;
    ev.lane = lane;
    ev.phase = 'i';
    instance().record(ev);
}

void
TraceSink::counter(std::uint32_t lane, const char* name, cycle_t ts,
                   std::int64_t value)
{
    if (!enabled())
        return;
    TraceEvent ev;
    ev.name = name;
    ev.ts = ts;
    ev.arg = value;
    ev.lane = lane;
    ev.phase = 'C';
    instance().record(ev);
}

void
TraceSink::flow(char phase, std::uint32_t lane, const char* name,
                cycle_t ts, std::uint64_t id)
{
    if (!enabled())
        return;
    GRAPHITE_ASSERT(phase == 's' || phase == 't' || phase == 'f');
    TraceEvent ev;
    ev.name = name;
    ev.ts = ts;
    ev.id = id;
    ev.lane = lane;
    ev.phase = phase;
    instance().record(ev);
}

std::size_t
TraceSink::recorded() const
{
    lockdep::Guard lock(configMutex_);
    std::size_t total = 0;
    for (const auto& lane : lanes_) {
        lockdep::Guard ll(lane->mutex);
        total += lane->events.size();
    }
    return total;
}

std::size_t
TraceSink::dropped() const
{
    lockdep::Guard lock(configMutex_);
    std::size_t total = 0;
    for (const auto& lane : lanes_) {
        lockdep::Guard ll(lane->mutex);
        total += lane->dropped;
    }
    return total;
}

namespace
{

/** Escape a string for a JSON string literal. */
void
appendEscaped(std::ostringstream& os, std::string_view s)
{
    for (char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
}

} // namespace

std::string
TraceSink::toJson() const
{
    lockdep::Guard lock(configMutex_);
    std::ostringstream os;
    os << "{\"traceEvents\":[";
    bool first = true;
    std::uint64_t total_dropped = 0;
    std::uint64_t total_recorded = 0;

    for (std::size_t li = 0; li < lanes_.size(); ++li) {
        const Lane& lane = *lanes_[li];
        lockdep::Guard ll(lane.mutex);
        total_dropped += lane.dropped;

        if (!lane.name.empty()) {
            if (!first)
                os << ",";
            first = false;
            os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
                  "\"tid\":"
               << li << ",\"args\":{\"name\":\"";
            appendEscaped(os, lane.name);
            os << "\"}}";
        }

        // Events are appended in recording order, which is ts order per
        // lane up to cross-thread jitter; sort so viewers get a clean
        // timeline.
        std::vector<TraceEvent> evs = lane.events;
        total_recorded += evs.size();
        std::stable_sort(evs.begin(), evs.end(),
                         [](const TraceEvent& a, const TraceEvent& b) {
                             return a.ts < b.ts;
                         });
        for (const TraceEvent& ev : evs) {
            if (!first)
                os << ",";
            first = false;
            os << "{\"name\":\"";
            appendEscaped(os, ev.name);
            os << "\",\"ph\":\"" << ev.phase << "\",\"pid\":0,\"tid\":"
               << ev.lane << ",\"ts\":" << ev.ts;
            if (ev.phase == 'X')
                os << ",\"dur\":" << ev.dur;
            if (ev.phase == 'i')
                os << ",\"s\":\"t\"";
            if (ev.phase == 's' || ev.phase == 't' ||
                ev.phase == 'f') {
                // Flow chains match on (cat, id, name); the end event
                // binds to the enclosing slice.
                os << ",\"cat\":\"span\",\"id\":" << ev.id;
                if (ev.phase == 'f')
                    os << ",\"bp\":\"e\"";
            }
            if (ev.phase == 'C') {
                os << ",\"args\":{\"value\":" << ev.arg << "}";
            } else if (ev.argName != nullptr) {
                os << ",\"args\":{\"";
                appendEscaped(os, ev.argName);
                os << "\":" << ev.arg << "}";
            }
            os << "}";
        }
    }

    os << "],\"displayTimeUnit\":\"ms\",\"otherData\":{"
          "\"generator\":\"graphite-obs\",\"timeUnit\":"
          "\"simulated cycles as us\",\"recordedEvents\":"
       << total_recorded << ",\"droppedEvents\":" << total_dropped
       << "}}";
    return os.str();
}

void
TraceSink::writeFile(const std::string& path) const
{
    std::string json = toJson();
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr)
        fatal("trace: cannot open '{}' for writing", path);
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
}

void
TraceSink::reset()
{
    setEnabled(false);
    lockdep::Guard lock(configMutex_);
    lanes_.clear();
    capacity_ = 0;
}

} // namespace obs
} // namespace graphite
