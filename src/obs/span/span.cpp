#include "obs/span/span.h"

#include "obs/span/span_sink.h"

namespace graphite
{
namespace obs
{

namespace
{

thread_local SpanBuilder* t_active = nullptr;

} // namespace

const char*
spanKindName(SpanKind k)
{
    switch (k) {
      case SpanKind::ReadMiss: return "read_miss";
      case SpanKind::WriteMiss: return "write_miss";
      case SpanKind::Upgrade: return "upgrade";
      case SpanKind::Atomic: return "atomic";
      case SpanKind::Writeback: return "writeback";
      case SpanKind::Evict: return "evict";
      case SpanKind::AppMsg: return "app_msg";
      case SpanKind::NumKinds: break;
    }
    return "?";
}

const char*
spanStageName(SpanStage s)
{
    switch (s) {
      case SpanStage::LocalCheck: return "local_check";
      case SpanStage::ReqHop: return "req_hop";
      case SpanStage::ReqQueue: return "req_queue";
      case SpanStage::ReqSer: return "req_ser";
      case SpanStage::Directory: return "directory";
      case SpanStage::Invalidation: return "invalidation";
      case SpanStage::Recall: return "recall";
      case SpanStage::DramQueue: return "dram_queue";
      case SpanStage::DramService: return "dram_service";
      case SpanStage::ReplyHop: return "reply_hop";
      case SpanStage::ReplyQueue: return "reply_queue";
      case SpanStage::ReplySer: return "reply_ser";
      case SpanStage::NumStages: break;
    }
    return "?";
}

SpanBuilder::SpanBuilder(SpanKind kind, tile_id_t requester,
                         tile_id_t home, cycle_t start)
{
    rec_.kind = kind;
    rec_.requester = requester;
    rec_.home = home;
    rec_.start = start;
    rec_.spanId = SpanSink::nextSpanId();
    prev_ = t_active;
    if (prev_ != nullptr) {
        rec_.traceId = prev_->rec_.traceId;
        rec_.parentId = prev_->rec_.spanId;
    } else {
        rec_.traceId = rec_.spanId;
    }
    t_active = this;
}

SpanBuilder::~SpanBuilder()
{
    t_active = prev_;
}

SpanBuilder*
SpanBuilder::active()
{
    return t_active;
}

void
SpanBuilder::add(SpanStage stage, cycle_t begin, cycle_t dur)
{
    if (dur == 0 || finished_)
        return;
    if (rec_.numStages > 0 &&
        rec_.stages[rec_.numStages - 1].stage == stage) {
        rec_.stages[rec_.numStages - 1].dur += dur;
        return;
    }
    if (rec_.numStages == SpanRecord::MAX_STAGES) {
        // Preserve the accounting invariant at the cost of detail.
        rec_.stages[rec_.numStages - 1].dur += dur;
        rec_.folded = true;
        return;
    }
    SpanStageMark& m = rec_.stages[rec_.numStages++];
    m.stage = stage;
    m.begin = begin;
    m.dur = dur;
}

void
SpanBuilder::finish(cycle_t end)
{
    if (finished_)
        return;
    finished_ = true;
    rec_.end = end;
    SpanSink::instance().complete(rec_);
}

} // namespace obs
} // namespace graphite
