#include "common/lockdep.h"
#include "obs/span/span_sink.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/log.h"
#include "obs/trace_event.h"

namespace graphite
{
namespace obs
{

std::atomic<bool> SpanSink::enabledFlag_{false};
std::atomic<std::uint64_t> SpanSink::nextId_{1};

namespace
{

/** Flow-slice name per kind; string literals for TraceSink. */
const char*
spanSliceName(SpanKind k)
{
    switch (k) {
      case SpanKind::ReadMiss: return "span.read_miss";
      case SpanKind::WriteMiss: return "span.write_miss";
      case SpanKind::Upgrade: return "span.upgrade";
      case SpanKind::Atomic: return "span.atomic";
      case SpanKind::Writeback: return "span.writeback";
      case SpanKind::Evict: return "span.evict";
      case SpanKind::AppMsg: return "span.app_msg";
      case SpanKind::NumKinds: break;
    }
    return "span";
}

bool
homeSideStage(SpanStage s)
{
    return s == SpanStage::Directory || s == SpanStage::Invalidation ||
           s == SpanStage::Recall || s == SpanStage::DramQueue ||
           s == SpanStage::DramService;
}

std::uint64_t
xorshift64(std::uint64_t& state)
{
    std::uint64_t x = state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    state = x;
    return x;
}

/** Bins past this index collapse into intervalOverflow_. */
constexpr std::size_t MAX_INTERVAL_BINS = 4096;

} // namespace

SpanSink::SpanSink() = default;

SpanSink&
SpanSink::instance()
{
    static SpanSink sink;
    return sink;
}

void
SpanSink::configure(tile_id_t total_tiles, const Options& opt)
{
    lockdep::Guard lock(mutex_);
    opt_ = opt;
    if (opt_.reservoirCapacity == 0)
        opt_.reservoirCapacity = 1;
    if (opt_.intervalCycles == 0)
        opt_.intervalCycles = 100000;
    totalTiles_ = total_tiles;
    // Same near-square geometry as MeshShape (network_model.cpp); the
    // obs layer duplicates the two lines rather than depending on the
    // network library.
    meshWidth_ = static_cast<int>(
        std::ceil(std::sqrt(static_cast<double>(
            std::max<tile_id_t>(total_tiles, 1)))));
    int mesh_height = (static_cast<int>(std::max<tile_id_t>(
                           total_tiles, 1)) +
                       meshWidth_ - 1) /
                      meshWidth_;

    completed_.store(0, std::memory_order_relaxed);
    for (auto& c : stageCycles_)
        c.store(0, std::memory_order_relaxed);
    for (auto& c : kindCount_)
        c.store(0, std::memory_order_relaxed);
    for (auto& c : kindCycles_)
        c.store(0, std::memory_order_relaxed);
    homeCount_ = std::vector<atomic_stat_t>(total_tiles);
    homeCycles_ = std::vector<atomic_stat_t>(total_tiles);
    std::size_t max_dist =
        static_cast<std::size_t>(meshWidth_ + mesh_height);
    distCount_ = std::vector<atomic_stat_t>(max_dist + 1);
    distCycles_ = std::vector<atomic_stat_t>(max_dist + 1);
    for (auto& row : hist_)
        for (auto& h : row)
            h.reset();

    reservoir_.clear();
    reservoir_.reserve(opt_.reservoirCapacity);
    reservoirSeen_ = 0;
    rngState_ = opt_.seed * 0x9e3779b97f4a7c15ull + 0x2545f4914f6cdd1dull;
    slowest_.clear();
    intervals_.clear();
    intervalOverflow_ = 0;
}

void
SpanSink::setEnabled(bool on)
{
    enabledFlag_.store(on, std::memory_order_relaxed);
}

void
SpanSink::attachProgress(std::function<cycle_t()> progress)
{
    lockdep::Guard lock(mutex_);
    progress_ = std::move(progress);
}

void
SpanSink::detachSources()
{
    lockdep::Guard lock(mutex_);
    progress_ = nullptr;
}

std::uint16_t
SpanSink::distance(tile_id_t a, tile_id_t b) const
{
    if (a < 0 || b < 0)
        return 0;
    int ax = static_cast<int>(a) % meshWidth_;
    int ay = static_cast<int>(a) / meshWidth_;
    int bx = static_cast<int>(b) % meshWidth_;
    int by = static_cast<int>(b) / meshWidth_;
    return static_cast<std::uint16_t>(std::abs(ax - bx) +
                                      std::abs(ay - by));
}

void
SpanSink::complete(const SpanRecord& rec_in)
{
    if (!enabled())
        return;

    SpanRecord rec = rec_in;
    rec.distance = distance(rec.requester, rec.home);

    // Lock-free aggregates first (readable live by the sampler).
    completed_.fetch_add(1, std::memory_order_relaxed);
    int ki = static_cast<int>(rec.kind);
    kindCount_[ki].fetch_add(1, std::memory_order_relaxed);
    kindCycles_[ki].fetch_add(rec.total(), std::memory_order_relaxed);
    for (int i = 0; i < rec.numStages; ++i) {
        const SpanStageMark& m = rec.stages[i];
        stageCycles_[static_cast<int>(m.stage)].fetch_add(
            m.dur, std::memory_order_relaxed);
        hist_[ki][static_cast<int>(m.stage)].record(m.dur);
    }
    if (rec.home >= 0 && rec.home < totalTiles_) {
        homeCount_[rec.home].fetch_add(1, std::memory_order_relaxed);
        homeCycles_[rec.home].fetch_add(rec.total(),
                                        std::memory_order_relaxed);
    }
    if (rec.distance < distCount_.size()) {
        distCount_[rec.distance].fetch_add(1, std::memory_order_relaxed);
        distCycles_[rec.distance].fetch_add(rec.total(),
                                            std::memory_order_relaxed);
    }

    bool flow = false;
    {
        lockdep::Guard lock(mutex_);
        if (progress_)
            rec.skew = static_cast<std::int64_t>(rec.end) -
                       static_cast<std::int64_t>(progress_());

        // Reservoir sampling (algorithm R).
        ++reservoirSeen_;
        if (reservoir_.size() < opt_.reservoirCapacity) {
            reservoir_.push_back(rec);
            flow = true;
        } else {
            std::uint64_t j = xorshift64(rngState_) % reservoirSeen_;
            if (j < opt_.reservoirCapacity) {
                reservoir_[static_cast<std::size_t>(j)] = rec;
                flow = true;
            }
        }

        // Top-K slowest: sorted descending, replace the tail.
        if (opt_.slowestCapacity > 0 &&
            (slowest_.size() < opt_.slowestCapacity ||
             rec.total() > slowest_.back().total())) {
            auto pos = std::upper_bound(
                slowest_.begin(), slowest_.end(), rec,
                [](const SpanRecord& a, const SpanRecord& b) {
                    return a.total() > b.total();
                });
            slowest_.insert(pos, rec);
            if (slowest_.size() > opt_.slowestCapacity)
                slowest_.pop_back();
        }

        // Per-interval bottleneck bins, keyed by completion time.
        std::size_t idx = static_cast<std::size_t>(
            rec.end / opt_.intervalCycles);
        if (idx < MAX_INTERVAL_BINS) {
            if (idx >= intervals_.size())
                intervals_.resize(idx + 1);
            IntervalBin& bin = intervals_[idx];
            ++bin.spans;
            for (int i = 0; i < rec.numStages; ++i)
                bin.stage[static_cast<int>(rec.stages[i].stage)] +=
                    rec.stages[i].dur;
        } else {
            ++intervalOverflow_;
        }
    }

    // Flow events only for sampled spans: bounded event volume, and
    // every arrow in the trace has a matching record in spans.jsonl.
    if (flow && opt_.flowEvents && TraceSink::enabled())
        emitFlow(rec);
}

void
SpanSink::emitFlow(const SpanRecord& rec)
{
    auto lane = [](tile_id_t t) { return static_cast<std::uint32_t>(t); };
    const char* name = spanSliceName(rec.kind);

    // Slice on the requester covering the whole transaction; the flow
    // start binds to it.
    TraceSink::complete(lane(rec.requester), name, rec.start,
                        rec.total(), "home",
                        static_cast<std::int64_t>(rec.home));
    TraceSink::flow('s', lane(rec.requester), name, rec.start,
                    rec.spanId);

    // Home-side occupancy slice + flow step, when the transaction
    // actually visited a remote home.
    if (rec.home != rec.requester && rec.home >= 0) {
        cycle_t h_begin = 0, h_end = 0;
        bool any = false;
        for (int i = 0; i < rec.numStages; ++i) {
            const SpanStageMark& m = rec.stages[i];
            if (!homeSideStage(m.stage))
                continue;
            h_begin = any ? std::min(h_begin, m.begin) : m.begin;
            h_end = any ? std::max(h_end, m.begin + m.dur)
                        : m.begin + m.dur;
            any = true;
        }
        if (any) {
            TraceSink::complete(lane(rec.home), "span.home", h_begin,
                                h_end - h_begin, "requester",
                                static_cast<std::int64_t>(
                                    rec.requester));
            TraceSink::flow('t', lane(rec.home), name, h_begin,
                            rec.spanId);
        }
    }

    // The transaction ends on the requester — except app messages,
    // which terminate at the receiver.
    tile_id_t end_tile =
        rec.kind == SpanKind::AppMsg ? rec.home : rec.requester;
    if (rec.kind == SpanKind::AppMsg && rec.home >= 0)
        TraceSink::complete(lane(rec.home), "span.deliver",
                            rec.end, 0, "sender",
                            static_cast<std::int64_t>(rec.requester));
    TraceSink::flow('f', lane(end_tile), name, rec.end, rec.spanId);
}

std::vector<SpanRecord>
SpanSink::sampled() const
{
    lockdep::Guard lock(mutex_);
    return reservoir_;
}

std::vector<SpanRecord>
SpanSink::slowest() const
{
    lockdep::Guard lock(mutex_);
    return slowest_;
}

std::size_t
SpanSink::sampledCount() const
{
    lockdep::Guard lock(mutex_);
    return reservoir_.size();
}

namespace
{

void
appendSpanJson(std::ostringstream& os, const SpanRecord& r,
               const char* set)
{
    os << "{\"type\":\"span\",\"set\":\"" << set
       << "\",\"trace\":" << r.traceId << ",\"span\":" << r.spanId
       << ",\"parent\":" << r.parentId << ",\"kind\":\""
       << spanKindName(r.kind) << "\",\"requester\":" << r.requester
       << ",\"home\":" << r.home << ",\"distance\":" << r.distance
       << ",\"start\":" << r.start << ",\"end\":" << r.end
       << ",\"total\":" << r.total() << ",\"skew\":" << r.skew
       << ",\"folded\":" << (r.folded ? "true" : "false")
       << ",\"stages\":[";
    for (int i = 0; i < r.numStages; ++i) {
        if (i != 0)
            os << ",";
        os << "{\"stage\":\"" << spanStageName(r.stages[i].stage)
           << "\",\"begin\":" << r.stages[i].begin
           << ",\"dur\":" << r.stages[i].dur << "}";
    }
    os << "]}\n";
}

} // namespace

std::string
SpanSink::renderJsonl() const
{
    lockdep::Guard lock(mutex_);
    std::ostringstream os;

    for (const SpanRecord& r : reservoir_)
        appendSpanJson(os, r, "sample");
    for (const SpanRecord& r : slowest_)
        appendSpanJson(os, r, "slowest");

    for (std::size_t i = 0; i < intervals_.size(); ++i) {
        const IntervalBin& bin = intervals_[i];
        if (bin.spans == 0)
            continue;
        int bottleneck = 0;
        stat_t total = 0;
        for (int s = 0; s < NUM_SPAN_STAGES; ++s) {
            total += bin.stage[s];
            if (bin.stage[s] > bin.stage[bottleneck])
                bottleneck = s;
        }
        os << "{\"type\":\"interval\",\"index\":" << i
           << ",\"start\":" << i * opt_.intervalCycles
           << ",\"end\":" << (i + 1) * opt_.intervalCycles
           << ",\"spans\":" << bin.spans << ",\"total_cycles\":" << total
           << ",\"bottleneck\":\""
           << spanStageName(static_cast<SpanStage>(bottleneck))
           << "\",\"stage_cycles\":{";
        bool first = true;
        for (int s = 0; s < NUM_SPAN_STAGES; ++s) {
            if (bin.stage[s] == 0)
                continue;
            if (!first)
                os << ",";
            first = false;
            os << "\"" << spanStageName(static_cast<SpanStage>(s))
               << "\":" << bin.stage[s];
        }
        os << "}}\n";
    }

    // Summary row: exact (not sampled) totals.
    stat_t grand_total = 0;
    int bottleneck = 0;
    os << "{\"type\":\"summary\",\"completed\":" << completed_.load()
       << ",\"sampled\":" << reservoir_.size()
       << ",\"slowest\":" << slowest_.size()
       << ",\"interval_cycles\":" << opt_.intervalCycles
       << ",\"interval_overflow\":" << intervalOverflow_
       << ",\"stage_cycles\":{";
    for (int s = 0; s < NUM_SPAN_STAGES; ++s) {
        stat_t v = stageCycles_[s].load();
        grand_total += v;
        if (v > stageCycles_[bottleneck].load())
            bottleneck = s;
        if (s != 0)
            os << ",";
        os << "\"" << spanStageName(static_cast<SpanStage>(s))
           << "\":" << v;
    }
    os << "},\"total_cycles\":" << grand_total << ",\"bottleneck\":\""
       << spanStageName(static_cast<SpanStage>(bottleneck))
       << "\",\"kinds\":{";
    for (int k = 0; k < NUM_SPAN_KINDS; ++k) {
        if (k != 0)
            os << ",";
        os << "\"" << spanKindName(static_cast<SpanKind>(k))
           << "\":{\"count\":" << kindCount_[k].load()
           << ",\"cycles\":" << kindCycles_[k].load() << "}";
    }
    os << "},\"per_home\":[";
    bool first = true;
    for (tile_id_t t = 0; t < totalTiles_; ++t) {
        if (homeCount_[t].load() == 0)
            continue;
        if (!first)
            os << ",";
        first = false;
        os << "{\"tile\":" << t << ",\"count\":" << homeCount_[t].load()
           << ",\"cycles\":" << homeCycles_[t].load() << "}";
    }
    os << "],\"per_distance\":[";
    first = true;
    for (std::size_t d = 0; d < distCount_.size(); ++d) {
        if (distCount_[d].load() == 0)
            continue;
        if (!first)
            os << ",";
        first = false;
        os << "{\"hops\":" << d << ",\"count\":" << distCount_[d].load()
           << ",\"cycles\":" << distCycles_[d].load() << "}";
    }
    os << "]}\n";
    return os.str();
}

void
SpanSink::writeFile(const std::string& path) const
{
    std::string doc = renderJsonl();
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr)
        fatal("spans: cannot open '{}' for writing", path);
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
}

void
SpanSink::reset()
{
    setEnabled(false);
    lockdep::Guard lock(mutex_);
    progress_ = nullptr;
    totalTiles_ = 0;
    meshWidth_ = 1;
    completed_.store(0, std::memory_order_relaxed);
    for (auto& c : stageCycles_)
        c.store(0, std::memory_order_relaxed);
    for (auto& c : kindCount_)
        c.store(0, std::memory_order_relaxed);
    for (auto& c : kindCycles_)
        c.store(0, std::memory_order_relaxed);
    homeCount_.clear();
    homeCycles_.clear();
    distCount_.clear();
    distCycles_.clear();
    for (auto& row : hist_)
        for (auto& h : row)
            h.reset();
    reservoir_.clear();
    reservoirSeen_ = 0;
    slowest_.clear();
    intervals_.clear();
    intervalOverflow_ = 0;
}

} // namespace obs
} // namespace graphite
