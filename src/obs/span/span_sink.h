/**
 * @file
 * Process-global collector and aggregator of completed spans.
 *
 * Completion is the only synchronization point of the span engine:
 * builders live on the completing thread's stack, so the sink sees
 * one complete() call per transaction. Aggregation is split between
 * lock-free atomics (per-stage/per-kind cycle totals, per-home and
 * per-distance tallies, kind×stage histograms — all readable live by
 * the metrics sampler) and a short mutex-guarded section (reservoir
 * sample, top-K slowest, per-interval bottleneck bins).
 *
 * Memory is bounded: the reservoir keeps a uniform sample of at most
 * `obs/span_reservoir` full records (Vitter's algorithm R with an
 * xorshift generator — deterministic given the seed and completion
 * order), the slowest list keeps `obs/span_slowest`, and interval
 * bins are capped. Everything else is O(tiles + stages).
 *
 * Artifacts: spans.jsonl (sampled + slowest records, interval rows, a
 * summary row with the *exact* totals) and — when the event tracer is
 * also on — Chrome flow events ('s'/'t'/'f') that render each
 * sampled transaction as an arrow requester → home → requester in
 * Perfetto.
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "common/fixed_types.h"
#include "common/lockdep.h"
#include "common/stats.h"
#include "obs/span/span.h"

namespace graphite
{
namespace obs
{

/** Process-global span collector. */
class SpanSink
{
  public:
    struct Options
    {
        std::size_t reservoirCapacity = 4096;
        std::size_t slowestCapacity = 64;
        cycle_t intervalCycles = 100000;
        /** Emit Chrome flow events for *sampled* spans (needs the
         *  event tracer enabled too). */
        bool flowEvents = true;
        std::uint64_t seed = 42;
    };

    static SpanSink& instance();

    /** Cached enable flag — the only hot-path check. */
    static bool
    enabled()
    {
        return enabledFlag_.load(std::memory_order_relaxed);
    }

    /** Allocate a process-unique span ID (never 0). */
    static std::uint64_t
    nextSpanId()
    {
        return nextId_.fetch_add(1, std::memory_order_relaxed);
    }

    /** (Re)initialize for a run over @p total_tiles tiles. */
    void configure(tile_id_t total_tiles, const Options& opt);

    void setEnabled(bool on);

    /**
     * Wire the global-progress estimate used to stamp per-span skew.
     * Cleared by detachSources(); spans completing with no callback
     * get skew 0.
     */
    void attachProgress(std::function<cycle_t()> progress);

    /** Drop simulator-owned callbacks (call before the sim dies). */
    void detachSources();

    /** Record a finished span (called by SpanBuilder::finish). */
    void complete(const SpanRecord& rec);

    /** @name Live aggregates @{ */
    stat_t completedCount() const { return completed_.load(); }
    const atomic_stat_t* completedCounter() const { return &completed_; }
    stat_t stageCycles(SpanStage s) const
    {
        return stageCycles_[static_cast<int>(s)].load();
    }
    const atomic_stat_t* stageCyclesCounter(SpanStage s) const
    {
        return &stageCycles_[static_cast<int>(s)];
    }
    stat_t kindCount(SpanKind k) const
    {
        return kindCount_[static_cast<int>(k)].load();
    }
    stat_t kindCycles(SpanKind k) const
    {
        return kindCycles_[static_cast<int>(k)].load();
    }
    const HistogramStat& stageHistogram(SpanKind k, SpanStage s) const
    {
        return hist_[static_cast<int>(k)][static_cast<int>(s)];
    }
    /** @} */

    /** @name Bounded sample access (copies; for tests/reports) @{ */
    std::vector<SpanRecord> sampled() const;
    std::vector<SpanRecord> slowest() const;
    std::size_t sampledCount() const;
    /** @} */

    /** Mesh hops between two tiles (the models' MeshShape geometry). */
    std::uint16_t distance(tile_id_t a, tile_id_t b) const;

    /** Render the spans.jsonl document. */
    std::string renderJsonl() const;

    /** Write renderJsonl() to @p path; fatal on I/O error. */
    void writeFile(const std::string& path) const;

    /** Drop all state; leaves the sink disabled. */
    void reset();

  private:
    struct IntervalBin
    {
        stat_t spans = 0;
        stat_t stage[NUM_SPAN_STAGES] = {};
    };

    SpanSink();

    void emitFlow(const SpanRecord& rec);

    static std::atomic<bool> enabledFlag_;
    static std::atomic<std::uint64_t> nextId_;

    Options opt_;
    int meshWidth_ = 1;
    tile_id_t totalTiles_ = 0;
    std::function<cycle_t()> progress_;

    atomic_stat_t completed_{0};
    atomic_stat_t stageCycles_[NUM_SPAN_STAGES] = {};
    atomic_stat_t kindCount_[NUM_SPAN_KINDS] = {};
    atomic_stat_t kindCycles_[NUM_SPAN_KINDS] = {};
    std::vector<atomic_stat_t> homeCount_; ///< per home tile
    std::vector<atomic_stat_t> homeCycles_;
    std::vector<atomic_stat_t> distCount_; ///< per mesh distance
    std::vector<atomic_stat_t> distCycles_;
    HistogramStat hist_[NUM_SPAN_KINDS][NUM_SPAN_STAGES];

    mutable lockdep::OrderedMutex mutex_{lockdep::LockClass::span_sink};
    std::vector<SpanRecord> reservoir_;
    std::uint64_t reservoirSeen_ = 0;
    std::uint64_t rngState_ = 0x9e3779b97f4a7c15ull;
    std::vector<SpanRecord> slowest_; ///< sorted descending by total
    std::vector<IntervalBin> intervals_;
    stat_t intervalOverflow_ = 0; ///< spans past the last bin
};

} // namespace obs
} // namespace graphite
