/**
 * @file
 * Causal transaction spans: the data model of the latency-attribution
 * engine (see DESIGN.md §"Span lifecycle").
 *
 * Every timed memory transaction (L2 miss, upgrade, atomic RMW,
 * writeback) and every application message gets a *span*: a trace ID,
 * a parent link for nested transactions, and a waterfall of
 * cycle-stamped stage marks. Stages are recorded exactly where the
 * timing model accumulates latency, so the sum of stage durations
 * equals the span's end-to-end latency *by construction* — the
 * exact-accounting invariant the aggregation layer and span_report.py
 * rely on (asserted in tests/test_span.cpp).
 *
 * Hot-path discipline: a SpanBuilder is a fixed-size stack object (no
 * heap allocation); instrumentation points guard on
 * SpanSink::enabled(), a single relaxed atomic load, so the disabled
 * cost is a predicted branch.
 */

#pragma once

#include <cstdint>

#include "common/fixed_types.h"

namespace graphite
{
namespace obs
{

/** What kind of transaction a span describes. */
enum class SpanKind : std::uint8_t
{
    ReadMiss = 0, ///< L2 read/fetch miss (line acquired Shared/Excl)
    WriteMiss,    ///< L2 write miss (line acquired Modified)
    Upgrade,      ///< write-permission miss, data already present
    Atomic,       ///< atomic RMW that missed in L2
    Writeback,    ///< dirty L2 victim flushed to the home controller
    Evict,        ///< clean L2 victim notification
    AppMsg,       ///< user-level message (api::msgSend)

    NumKinds
};

/** Where inside a transaction a slice of latency was spent. */
enum class SpanStage : std::uint8_t
{
    LocalCheck = 0, ///< L1/L2 probe + access on the requesting tile
    ReqHop,         ///< request traversal: per-hop propagation
    ReqQueue,       ///< request traversal: link queueing delay
    ReqSer,         ///< request traversal: serialization
    Directory,      ///< directory occupancy at the home tile
    Invalidation,   ///< invalidate round trips (max over sharers)
    Recall,         ///< owner recall round trip (M-state lines)
    DramQueue,      ///< memory-controller queueing delay
    DramService,    ///< device latency + bandwidth service time
    ReplyHop,       ///< reply traversal: per-hop propagation
    ReplyQueue,     ///< reply traversal: link queueing delay
    ReplySer,       ///< reply traversal: serialization

    NumStages
};

inline constexpr int NUM_SPAN_KINDS =
    static_cast<int>(SpanKind::NumKinds);
inline constexpr int NUM_SPAN_STAGES =
    static_cast<int>(SpanStage::NumStages);

/** Stable lowercase name ("read_miss", "req_hop", ...). */
const char* spanKindName(SpanKind k);
const char* spanStageName(SpanStage s);

/** One contiguous slice of a span's latency waterfall. */
struct SpanStageMark
{
    SpanStage stage = SpanStage::LocalCheck;
    cycle_t begin = 0; ///< absolute simulated cycle
    cycle_t dur = 0;
};

/** A completed (or in-flight) transaction span. POD, fixed size. */
struct SpanRecord
{
    /** Stage-mark capacity; the deepest real transaction (Modified
     *  recall + dirty DRAM turnaround + pointer eviction) uses ~15
     *  marks after coalescing. Overflow folds into the last mark so
     *  the accounting invariant survives (detail is lost, sums are
     *  not). */
    static constexpr int MAX_STAGES = 24;

    std::uint64_t traceId = 0; ///< root span's id, shared by children
    std::uint64_t spanId = 0;  ///< unique per span, never 0
    std::uint64_t parentId = 0; ///< 0 = root
    SpanKind kind = SpanKind::ReadMiss;
    tile_id_t requester = INVALID_TILE_ID;
    /** Home tile of the line (memory spans) or receiver (AppMsg). */
    tile_id_t home = INVALID_TILE_ID;
    std::uint16_t distance = 0; ///< mesh hops requester -> home
    std::uint8_t numStages = 0;
    bool folded = false; ///< stage detail was folded on overflow
    cycle_t start = 0;
    cycle_t end = 0;
    /** end minus the global-progress estimate at completion: how far
     *  ahead (+) or behind (-) of the cluster this transaction ran
     *  under lax synchronization. */
    std::int64_t skew = 0;
    SpanStageMark stages[MAX_STAGES];

    cycle_t total() const { return end - start; }

    /** Sum of stage durations; equals total() for finished spans. */
    cycle_t
    stageSum() const
    {
        cycle_t sum = 0;
        for (int i = 0; i < numStages; ++i)
            sum += stages[i].dur;
        return sum;
    }
};

/**
 * Builds one span on the stack of the thread driving the transaction.
 *
 * Construction allocates IDs and links to the innermost live builder
 * on this thread (so a writeback modeled inside a miss becomes a
 * child span with the same trace ID). Instrumentation between
 * construction and finish() appends stage marks; finish() hands the
 * record to the SpanSink. A builder destroyed without finish()
 * records nothing.
 */
class SpanBuilder
{
  public:
    SpanBuilder(SpanKind kind, tile_id_t requester, tile_id_t home,
                cycle_t start);
    ~SpanBuilder();

    SpanBuilder(const SpanBuilder&) = delete;
    SpanBuilder& operator=(const SpanBuilder&) = delete;

    /** Innermost live builder on this thread, or nullptr. */
    static SpanBuilder* active();

    /**
     * Append a stage mark. Zero durations are skipped; a mark whose
     * stage matches the previous one coalesces into it.
     */
    void add(SpanStage stage, cycle_t begin, cycle_t dur);

    /** Reclassify (e.g. WriteMiss -> Upgrade once known). */
    void setKind(SpanKind kind) { rec_.kind = kind; }

    /** Complete at @p end and hand the record to the SpanSink. */
    void finish(cycle_t end);

    std::uint64_t traceId() const { return rec_.traceId; }
    std::uint64_t spanId() const { return rec_.spanId; }
    const SpanRecord& record() const { return rec_; }

  private:
    SpanRecord rec_;
    SpanBuilder* prev_; ///< enclosing builder on this thread
    bool finished_ = false;
};

} // namespace obs
} // namespace graphite
