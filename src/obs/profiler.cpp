#include "common/lockdep.h"
#include "obs/profiler.h"

#include <algorithm>
#include <cstring>

#include "common/table.h"

namespace graphite
{
namespace obs
{

std::atomic<bool> HostProfiler::enabledFlag_{false};

HostProfiler&
HostProfiler::instance()
{
    static HostProfiler profiler;
    return profiler;
}

void
HostProfiler::setEnabled(bool on)
{
    enabledFlag_.store(on, std::memory_order_relaxed);
}

HostProfiler::Site&
HostProfiler::site(const char* name)
{
    lockdep::Guard lock(mutex_);
    for (const auto& s : sites_) {
        if (std::strcmp(s->name, name) == 0)
            return *s;
    }
    sites_.push_back(std::make_unique<Site>(name));
    return *sites_.back();
}

void
HostProfiler::reset()
{
    lockdep::Guard lock(mutex_);
    for (const auto& s : sites_) {
        s->calls.store(0, std::memory_order_relaxed);
        s->totalNs.store(0, std::memory_order_relaxed);
        s->maxNs.store(0, std::memory_order_relaxed);
    }
}

std::string
HostProfiler::report() const
{
    struct Entry
    {
        const char* name;
        std::uint64_t calls, totalNs, maxNs;
    };
    std::vector<Entry> entries;
    {
        lockdep::Guard lock(mutex_);
        for (const auto& s : sites_) {
            std::uint64_t calls =
                s->calls.load(std::memory_order_relaxed);
            if (calls == 0)
                continue;
            entries.push_back(
                Entry{s->name, calls,
                      s->totalNs.load(std::memory_order_relaxed),
                      s->maxNs.load(std::memory_order_relaxed)});
        }
    }
    std::sort(entries.begin(), entries.end(),
              [](const Entry& a, const Entry& b) {
                  return a.totalNs > b.totalNs;
              });

    TextTable table;
    table.header({"scope", "calls", "total ms", "avg us", "max us"});
    for (const Entry& e : entries) {
        table.row({e.name, std::to_string(e.calls),
                   TextTable::num(e.totalNs / 1e6, 3),
                   TextTable::num(e.totalNs / 1e3 /
                                      static_cast<double>(e.calls),
                                  2),
                   TextTable::num(e.maxNs / 1e3, 2)});
    }
    return table.render();
}

} // namespace obs
} // namespace graphite
