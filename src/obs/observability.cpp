#include "obs/observability.h"

#include "common/config.h"
#include "common/log.h"
#include "common/strfmt.h"
#include "obs/accuracy/accuracy.h"
#include "obs/metrics_sampler.h"
#include "obs/profiler.h"
#include "obs/span/span_sink.h"
#include "obs/telemetry/flight_recorder.h"
#include "obs/trace_event.h"

namespace graphite
{
namespace obs
{

Observability&
Observability::instance()
{
    static Observability obs;
    return obs;
}

void
Observability::configure(const Config& cfg, tile_id_t total_tiles)
{
    // A previous run that never reached finalize() (e.g. a test that
    // threw) must not leak its artifacts into this run.
    finalize();

    tracePath_ = cfg.getString("obs/trace_out", "");
    metricsPath_ = cfg.getString("obs/metrics_out", "");
    metricsInterval_ = static_cast<cycle_t>(
        cfg.getInt("obs/metrics_interval", 100000));
    selfProfile_ = cfg.getBool("obs/self_profile", false);
    spansPath_ = cfg.getString("obs/spans_out", "");
    spansArmed_ = cfg.getBool("obs/spans_enabled", false);
    finalized_ = false;

    TraceSink& sink = TraceSink::instance();
    sink.reset();
    if (traceEnabled()) {
        auto capacity = static_cast<std::size_t>(
            cfg.getInt("obs/trace_buffer_capacity", 65536));
        // One lane per tile plus one for the MCP service thread.
        sink.configure(static_cast<std::uint32_t>(total_tiles) + 1,
                       capacity);
        for (tile_id_t t = 0; t < total_tiles; ++t)
            sink.setLaneName(static_cast<std::uint32_t>(t),
                             strfmt("tile {}", t));
        sink.setLaneName(static_cast<std::uint32_t>(total_tiles), "mcp");
        sink.setEnabled(true);
    }

    HostProfiler::instance().reset();
    HostProfiler::instance().setEnabled(selfProfile_);

    SpanSink& spans = SpanSink::instance();
    spans.reset();
    if (spansEnabled()) {
        SpanSink::Options opt;
        opt.reservoirCapacity = static_cast<std::size_t>(
            cfg.getInt("obs/span_reservoir", 4096));
        opt.slowestCapacity = static_cast<std::size_t>(
            cfg.getInt("obs/span_slowest", 64));
        opt.intervalCycles = static_cast<cycle_t>(
            cfg.getInt("obs/span_interval", 100000));
        opt.flowEvents = cfg.getBool("obs/span_flow_events", true);
        opt.seed = static_cast<std::uint64_t>(cfg.getInt("rng/seed", 42));
        spans.configure(total_tiles, opt);
        spans.setEnabled(true);
    }

    // Black-box flight recorder: always-on by default. Reconfigure
    // drops the previous run's events so dumps never mix runs.
    telemetry::FlightRecorder& recorder =
        telemetry::FlightRecorder::instance();
    recorder.setArmed(false);
    if (cfg.getBool("telemetry/recorder", true)) {
        recorder.configure(static_cast<std::size_t>(
            cfg.getInt("telemetry/recorder_capacity", 4096)));
        recorder.setArmed(true);
    }
    crashDumpPath_ = cfg.getString("telemetry/crash_dump", "");
    if (!crashDumpPath_.empty())
        recorder.installCrashHandler(crashDumpPath_);
    else
        recorder.uninstallCrashHandler();

    // Accuracy observatory: causality-violation detection and the
    // pair-skew matrix. configure() flushes a previous run's report.
    accuracy::AccuracyObservatory::instance().configure(cfg,
                                                        total_tiles);

    if (cfg.has("log/filter"))
        setLogFilter(cfg.getString("log/filter"));
}

void
Observability::attachSources(const StatsRegistry* registry,
                             std::function<cycle_t()> now,
                             std::function<std::vector<double>()>
                                 active_clocks,
                             std::function<cycle_t()> progress)
{
    if (spansEnabled() && progress)
        SpanSink::instance().attachProgress(std::move(progress));
    if (!metricsEnabled())
        return;
    MetricsSampler& sampler = MetricsSampler::instance();
    sampler.configure(registry, metricsInterval_, metricsPath_,
                      std::move(now), std::move(active_clocks));
    MetricsSampler::setGlobalEnabled(true);
}

void
Observability::finalize()
{
    if (finalized_)
        return;
    finalized_ = true;

    if (metricsEnabled()) {
        MetricsSampler::setGlobalEnabled(false);
        MetricsSampler& sampler = MetricsSampler::instance();
        sampler.finalize();
        informc("obs", "wrote {} metrics intervals to {}",
                sampler.rowCount(), metricsPath_);
    }

    if (spansEnabled()) {
        SpanSink& spans = SpanSink::instance();
        spans.setEnabled(false);
        if (!spansPath_.empty()) {
            spans.writeFile(spansPath_);
            informc("obs", "wrote {} sampled spans ({} completed) to {}",
                    spans.sampledCount(), spans.completedCount(),
                    spansPath_);
        }
        spans.detachSources();
    }

    if (traceEnabled()) {
        TraceSink& sink = TraceSink::instance();
        sink.setEnabled(false);
        sink.writeFile(tracePath_);
        informc("obs", "wrote {} trace events to {} ({} dropped)",
                sink.recorded(), tracePath_, sink.dropped());
    }

    // Accuracy report (when armed with a path) + clock detach: the
    // observatory must never hold clock pointers into a dead Simulator.
    accuracy::AccuracyObservatory::instance().finalizeReport();

    // The self-profiler keeps its data so post-run reports can render
    // it; the next configure() resets the accumulators.
}

} // namespace obs
} // namespace graphite
