#include "obs/accuracy/accuracy.h"

#include <fstream>
#include <sstream>

#include "common/config.h"
#include "common/log.h"
#include "obs/telemetry/flight_recorder.h"

namespace graphite
{
namespace obs
{
namespace accuracy
{

std::atomic<bool> AccuracyObservatory::armedFlag_{false};

const char*
violationPointName(ViolationPoint p)
{
    switch (p) {
      case ViolationPoint::NetApp: return "net_app";
      case ViolationPoint::NetSystem: return "net_system";
      case ViolationPoint::NetMemory: return "net_memory";
      case ViolationPoint::MemRequest: return "mem_request";
      case ViolationPoint::MemInvalidation: return "mem_invalidation";
      case ViolationPoint::MemRecall: return "mem_recall";
      case ViolationPoint::MemReply: return "mem_reply";
      case ViolationPoint::MemWriteback: return "mem_writeback";
    }
    return "?";
}

AccuracyObservatory&
AccuracyObservatory::instance()
{
    static AccuracyObservatory obs;
    return obs;
}

void
AccuracyObservatory::configure(const Config& cfg, tile_id_t total_tiles)
{
    // A previous Simulator's report must be flushed before its state
    // (and clock pointers) are discarded.
    finalizeReport();

    tiles_ = total_tiles;
    out_ = cfg.getString("accuracy/out", "");
    bool enabled = cfg.getBool("accuracy/enabled", false);
    flightMin_ = static_cast<cycle_t>(
        cfg.getInt("accuracy/flight_min_cycles", 10000));
    reported_ = false;

    deliveries_.store(0, std::memory_order_relaxed);
    violations_.store(0, std::memory_order_relaxed);
    worst_.store(0, std::memory_order_relaxed);
    magnitude_.reset();
    for (PointState& ps : points_) {
        ps.deliveries.store(0, std::memory_order_relaxed);
        ps.violations.store(0, std::memory_order_relaxed);
        ps.magnitude.reset();
    }
    for (HistogramStat& h : netLatency_)
        h.reset();

    clocks_.assign(static_cast<size_t>(total_tiles), nullptr);
    pairs_.clear();
    size_t n = static_cast<size_t>(total_tiles) *
               static_cast<size_t>(total_tiles);
    pairMax_.store(0, std::memory_order_relaxed);
    pairSum_.store(0, std::memory_order_relaxed);
    pairSamples_.store(0, std::memory_order_relaxed);

    bool arm = enabled || !out_.empty();
    if (arm)
        pairs_ = std::vector<PairCell>(n);
    armedFlag_.store(arm, std::memory_order_relaxed);
}

void
AccuracyObservatory::attachClock(tile_id_t tile,
                                 const std::atomic<cycle_t>* clock)
{
    if (tile >= 0 && static_cast<size_t>(tile) < clocks_.size())
        clocks_[static_cast<size_t>(tile)] = clock;
}

void
AccuracyObservatory::detachClocks()
{
    for (auto& c : clocks_)
        c = nullptr;
}

void
AccuracyObservatory::onDelivery(ViolationPoint p, tile_id_t src,
                                tile_id_t dst, cycle_t event_time)
{
    if (dst < 0 || static_cast<size_t>(dst) >= clocks_.size())
        return;
    const std::atomic<cycle_t>* clock = clocks_[static_cast<size_t>(dst)];
    if (clock == nullptr)
        return;
    cycle_t local = clock->load(std::memory_order_relaxed);

    PointState& ps = points_[static_cast<int>(p)];
    deliveries_.fetch_add(1, std::memory_order_relaxed);
    ps.deliveries.fetch_add(1, std::memory_order_relaxed);

    if (src >= 0 && static_cast<size_t>(src) < clocks_.size() &&
        clocks_[static_cast<size_t>(src)] != nullptr) {
        cycle_t remote = clocks_[static_cast<size_t>(src)]->load(
            std::memory_order_relaxed);
        recordPair(src, dst,
                   remote > local ? remote - local : local - remote);
    }

    if (event_time >= local)
        return; // the event is in the receiver's future: causal

    cycle_t mag = local - event_time;
    violations_.fetch_add(1, std::memory_order_relaxed);
    ps.violations.fetch_add(1, std::memory_order_relaxed);
    magnitude_.record(mag);
    ps.magnitude.record(mag);

    cycle_t prev = worst_.load(std::memory_order_relaxed);
    while (mag > prev && !worst_.compare_exchange_weak(
                             prev, mag, std::memory_order_relaxed)) {
    }
    // Flight-record the worst offenders: a new high-water violation of
    // at least accuracy/flight_min_cycles lands in the crash/hang ring
    // with its magnitude and the (src, point) pair packed into b.
    if (mag > prev && mag >= flightMin_) {
        std::uint64_t packed =
            (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src))
             << 8) |
            static_cast<std::uint64_t>(static_cast<int>(p));
        telemetry::FlightRecorder::record(telemetry::FrEvent::Causality,
                                          dst, local, mag, packed);
    }
}

void
AccuracyObservatory::onNetLatency(int channel, cycle_t latency)
{
    if (channel < 0 || channel >= 3)
        return;
    netLatency_[channel].record(latency);
}

void
AccuracyObservatory::onPairObserved(tile_id_t a, tile_id_t b,
                                    cycle_t clock_a, cycle_t clock_b)
{
    recordPair(a, b,
               clock_a > clock_b ? clock_a - clock_b
                                 : clock_b - clock_a);
}

void
AccuracyObservatory::recordPair(tile_id_t src, tile_id_t dst,
                                cycle_t skew)
{
    if (pairs_.empty() || src < 0 || dst < 0 || src >= tiles_ ||
        dst >= tiles_ || src == dst)
        return;
    PairCell& cell =
        pairs_[static_cast<size_t>(src) * static_cast<size_t>(tiles_) +
               static_cast<size_t>(dst)];
    cycle_t prev = cell.maxSkew.load(std::memory_order_relaxed);
    while (skew > prev && !cell.maxSkew.compare_exchange_weak(
                              prev, skew, std::memory_order_relaxed)) {
    }
    cell.sumSkew.fetch_add(skew, std::memory_order_relaxed);
    cell.samples.fetch_add(1, std::memory_order_relaxed);

    prev = pairMax_.load(std::memory_order_relaxed);
    while (skew > prev && !pairMax_.compare_exchange_weak(
                              prev, skew, std::memory_order_relaxed)) {
    }
    pairSum_.fetch_add(skew, std::memory_order_relaxed);
    pairSamples_.fetch_add(1, std::memory_order_relaxed);
}

stat_t
AccuracyObservatory::pointDeliveries(ViolationPoint p) const
{
    return points_[static_cast<int>(p)].deliveries.load(
        std::memory_order_relaxed);
}

stat_t
AccuracyObservatory::pointViolations(ViolationPoint p) const
{
    return points_[static_cast<int>(p)].violations.load(
        std::memory_order_relaxed);
}

const HistogramStat*
AccuracyObservatory::pointMagnitudeHistogram(ViolationPoint p) const
{
    return &points_[static_cast<int>(p)].magnitude;
}

const HistogramStat*
AccuracyObservatory::netLatencyHistogram(int channel) const
{
    if (channel < 0 || channel >= 3)
        return nullptr;
    return &netLatency_[channel];
}

PairSkew
AccuracyObservatory::pair(tile_id_t src, tile_id_t dst) const
{
    PairSkew out;
    if (pairs_.empty() || src < 0 || dst < 0 || src >= tiles_ ||
        dst >= tiles_)
        return out;
    const PairCell& cell =
        pairs_[static_cast<size_t>(src) * static_cast<size_t>(tiles_) +
               static_cast<size_t>(dst)];
    out.maxSkew = cell.maxSkew.load(std::memory_order_relaxed);
    out.samples = cell.samples.load(std::memory_order_relaxed);
    stat_t sum = cell.sumSkew.load(std::memory_order_relaxed);
    out.meanSkew = out.samples == 0
                       ? 0.0
                       : static_cast<double>(sum) /
                             static_cast<double>(out.samples);
    return out;
}

double
AccuracyObservatory::pairSkewMean() const
{
    stat_t n = pairSamples_.load(std::memory_order_relaxed);
    if (n == 0)
        return 0.0;
    return static_cast<double>(
               pairSum_.load(std::memory_order_relaxed)) /
           static_cast<double>(n);
}

std::string
AccuracyObservatory::reportJsonl() const
{
    std::ostringstream os;
    stat_t del = deliveries();
    stat_t vio = violations();
    os << "{\"type\":\"accuracy_summary\",\"tiles\":" << tiles_
       << ",\"deliveries\":" << del << ",\"violations\":" << vio
       << ",\"violation_fraction\":"
       << (del == 0 ? 0.0
                    : static_cast<double>(vio) /
                          static_cast<double>(del))
       << ",\"worst_magnitude_cycles\":" << worstMagnitude()
       << ",\"pair_skew_max_cycles\":" << pairSkewMax()
       << ",\"pair_skew_mean_cycles\":" << pairSkewMean()
       << ",\"pair_samples\":" << pairSamples() << "}\n";

    for (int i = 0; i < NUM_VIOLATION_POINTS; ++i) {
        auto p = static_cast<ViolationPoint>(i);
        const HistogramStat* h = pointMagnitudeHistogram(p);
        os << "{\"type\":\"accuracy_point\",\"point\":\""
           << violationPointName(p)
           << "\",\"deliveries\":" << pointDeliveries(p)
           << ",\"violations\":" << pointViolations(p)
           << ",\"magnitude_p50\":" << h->percentileApprox(0.50)
           << ",\"magnitude_p95\":" << h->percentileApprox(0.95)
           << ",\"magnitude_max\":" << h->max() << "}\n";
    }

    // Non-empty matrix cells only; a dense 1024^2 dump would dwarf the
    // interesting rows.
    for (tile_id_t s = 0; s < tiles_; ++s) {
        for (tile_id_t d = 0; d < tiles_; ++d) {
            PairSkew ps = pair(s, d);
            if (ps.samples == 0)
                continue;
            os << "{\"type\":\"accuracy_pair\",\"src\":" << s
               << ",\"dst\":" << d
               << ",\"max_skew_cycles\":" << ps.maxSkew
               << ",\"mean_skew_cycles\":" << ps.meanSkew
               << ",\"samples\":" << ps.samples << "}\n";
        }
    }
    return os.str();
}

void
AccuracyObservatory::finalizeReport()
{
    if (!out_.empty() && !reported_ &&
        armedFlag_.load(std::memory_order_relaxed)) {
        reported_ = true;
        std::ofstream f(out_, std::ios::trunc);
        if (!f) {
            warn("accuracy: cannot write report to '{}'", out_);
        } else {
            f << reportJsonl();
            informc("obs",
                    "accuracy report: {} ({} violations / {} "
                    "deliveries, worst {} cycles)",
                    out_, violations(), deliveries(), worstMagnitude());
        }
    }
    detachClocks();
}

} // namespace accuracy
} // namespace obs
} // namespace graphite
