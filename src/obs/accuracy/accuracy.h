/**
 * @file
 * Accuracy observatory: causality-violation detection and lax-sync
 * error attribution (paper §3.6, §4.3).
 *
 * Lax synchronization deliberately lets tiles run on skewed clocks:
 * "regardless of the time-stamp of a packet, the network forwards
 * messages immediately and delivers them in the order they are
 * received". The price is that a packet or coherence message may carry
 * a timestamp *earlier* than the receiver's local clock — a causality
 * violation, the unit of lax-sync simulation error. This observatory
 * makes that error measurable on every run:
 *
 *  - every network delivery and memory-transaction leg is checked
 *    against the destination tile's live clock; violations are counted
 *    and their magnitudes (receiver clock − event time, in cycles)
 *    histogrammed per interaction point;
 *  - a lock-free per-tile-pair skew matrix accumulates the max/mean
 *    clock skew observed at interaction points (deliveries, LaxP2P
 *    partner checks, skew-tracker snapshots);
 *  - per-channel network delivery-latency histograms feed the
 *    accuracy-diff harness (tools/accuracy_report.py) with the P50/P95
 *    latencies it compares across sync models.
 *
 * Detection is timing-neutral by construction: hooks only *read* tile
 * clocks and modeled event times and bump observatory-private atomics;
 * no simulated clock, packet timestamp, or protocol decision is ever
 * touched (proven by the `_acc` fuzz variant's fingerprint equality).
 *
 * Config keys (see graphite.cfg [accuracy]):
 *   accuracy/enabled            arm detection without a report file
 *   accuracy/out                JSONL report path (implies enabled)
 *   accuracy/flight_min_cycles  min violation magnitude recorded into
 *                               the flight recorder (worst offenders)
 *
 * Like obs::Observability and check::FaultPlan, the observatory is
 * process-global, re-configured by each Simulator's constructor, with
 * a single relaxed atomic load guarding the fully disarmed hot path.
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/fixed_types.h"
#include "common/stats.h"

namespace graphite
{

class Config;

namespace obs
{
namespace accuracy
{

/**
 * Where a stale-timestamp event was observed. Network points classify
 * by packet type at the Network::recv demux; memory points classify by
 * coherence-transaction leg at the modeled arrival of each message.
 */
enum class ViolationPoint : std::uint8_t
{
    NetApp = 0,      ///< application packet at the recv demux
    NetSystem,       ///< system (MCP) packet at the recv demux
    NetMemory,       ///< physically transported memory packet
    MemRequest,      ///< requester -> home directory request
    MemInvalidation, ///< home -> sharer invalidation (and its ack)
    MemRecall,       ///< home -> owner recall (and the data return)
    MemReply,        ///< home -> requester data/ack reply
    MemWriteback,    ///< evicting tile -> home writeback / evict notify
};

inline constexpr int NUM_VIOLATION_POINTS = 8;

/** Stable lowercase name ("net_app", "mem_recall", ...). */
const char* violationPointName(ViolationPoint p);

/** One cell of the per-tile-pair skew matrix, read side. */
struct PairSkew
{
    cycle_t maxSkew = 0;  ///< max |clock(src) − clock(dst)| observed
    double meanSkew = 0;  ///< mean over samples
    stat_t samples = 0;   ///< interaction points observed
};

/**
 * Process-global accuracy observatory. All hot-path methods are
 * wait-free (relaxed atomics only) and safe from any host thread.
 */
class AccuracyObservatory
{
  public:
    static AccuracyObservatory& instance();

    /** Cheap hot-path guard: is detection armed in this process? */
    static bool
    armed()
    {
        return armedFlag_.load(std::memory_order_relaxed);
    }

    /**
     * Read the [accuracy] keys and (re)arm; resets all counters,
     * histograms, the pair matrix, and attached clocks.
     */
    void configure(const Config& cfg, tile_id_t total_tiles);

    /**
     * Attach @p tile's live clock (the core model's atomic). Clocks
     * belong to a Simulator; they are attached after construction and
     * detached by finalizeReport() before the Simulator dies.
     */
    void attachClock(tile_id_t tile, const std::atomic<cycle_t>* clock);

    /** Drop all attached clock pointers (hooks then observe nothing). */
    void detachClocks();

    /**
     * One delivery/completion observed at interaction point @p p:
     * an event modeled to occur at @p event_time arrives at @p dst
     * (sent by @p src). Reads the destination clock; when the event
     * timestamp is already in the receiver's past, records a causality
     * violation of magnitude (clock − event_time). Also feeds the
     * (src, dst) skew-matrix cell. Call only when armed().
     */
    void onDelivery(ViolationPoint p, tile_id_t src, tile_id_t dst,
                    cycle_t event_time);

    /**
     * One modeled network delivery latency on @p channel (the integer
     * value of the PacketType enum). Feeds the per-channel latency
     * histograms the accuracy-diff harness compares across sync
     * models. Call only when armed().
     */
    void onNetLatency(int channel, cycle_t latency);

    /**
     * A direct observation of two tiles' clocks at an interaction
     * point (LaxP2P partner check, skew-tracker snapshot extremes).
     * Feeds the (a, b) skew-matrix cell. Call only when armed().
     */
    void onPairObserved(tile_id_t a, tile_id_t b, cycle_t clock_a,
                        cycle_t clock_b);

    /** @name Aggregate accessors (stats registration, tests) @{ */
    tile_id_t totalTiles() const { return tiles_; }
    const atomic_stat_t* deliveriesCounter() const { return &deliveries_; }
    const atomic_stat_t* violationsCounter() const { return &violations_; }
    stat_t deliveries() const
    {
        return deliveries_.load(std::memory_order_relaxed);
    }
    stat_t violations() const
    {
        return violations_.load(std::memory_order_relaxed);
    }
    cycle_t worstMagnitude() const
    {
        return worst_.load(std::memory_order_relaxed);
    }
    stat_t pointDeliveries(ViolationPoint p) const;
    stat_t pointViolations(ViolationPoint p) const;
    const HistogramStat* magnitudeHistogram() const { return &magnitude_; }
    const HistogramStat* pointMagnitudeHistogram(ViolationPoint p) const;
    const HistogramStat* netLatencyHistogram(int channel) const;
    /** @} */

    /** @name Pair-skew matrix accessors @{ */
    PairSkew pair(tile_id_t src, tile_id_t dst) const;
    cycle_t pairSkewMax() const
    {
        return pairMax_.load(std::memory_order_relaxed);
    }
    double pairSkewMean() const;
    stat_t pairSamples() const
    {
        return pairSamples_.load(std::memory_order_relaxed);
    }
    /** @} */

    /** Configured report path ("" when none). */
    const std::string& reportPath() const { return out_; }

    /**
     * Write the JSONL report (if a path is configured and not yet
     * written this arming) and detach clocks. Idempotent; called from
     * Observability::finalize().
     */
    void finalizeReport();

    /** Render the JSONL report body (tests; empty when disarmed). */
    std::string reportJsonl() const;

  private:
    AccuracyObservatory() = default;

    struct PointState
    {
        atomic_stat_t deliveries{0};
        atomic_stat_t violations{0};
        HistogramStat magnitude;
    };

    /** One directional skew-matrix cell (src-major, like the traffic
     *  matrix in NetworkFabric). */
    struct PairCell
    {
        std::atomic<cycle_t> maxSkew{0};
        atomic_stat_t sumSkew{0};
        atomic_stat_t samples{0};
    };

    void recordPair(tile_id_t src, tile_id_t dst, cycle_t skew);

    static std::atomic<bool> armedFlag_;

    tile_id_t tiles_ = 0;
    cycle_t flightMin_ = 0;
    std::string out_;
    bool reported_ = false;

    std::vector<const std::atomic<cycle_t>*> clocks_;

    atomic_stat_t deliveries_{0};
    atomic_stat_t violations_{0};
    std::atomic<cycle_t> worst_{0};
    HistogramStat magnitude_;
    PointState points_[NUM_VIOLATION_POINTS];
    HistogramStat netLatency_[3];

    std::vector<PairCell> pairs_;
    std::atomic<cycle_t> pairMax_{0};
    atomic_stat_t pairSum_{0};
    atomic_stat_t pairSamples_{0};
};

} // namespace accuracy
} // namespace obs
} // namespace graphite
