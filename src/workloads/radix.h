/**
 * @file
 * Parallel LSD radix sort (SPLASH-2 "radix" analogue).
 *
 * Per digit pass: threads histogram their contiguous key chunk into
 * private counts, thread 0 computes global rank bases, then every thread
 * scatters its keys to the output array. The scatter interleaves writes
 * from all threads at fine granularity in the shared output array — the
 * source of the false-sharing blow-up at 256-byte lines the paper calls
 * out in §4.4 ("the granularity of interleaving between the writes of
 * multiple processors to the same global array becomes less than that of
 * a cache line").
 */

#pragma once

#include "workloads/env.h"

namespace graphite
{
namespace workloads
{

template <typename Env>
struct RadixShared
{
    typename Env::Ptr keys;   ///< n uint32
    typename Env::Ptr out;    ///< n uint32
    typename Env::Ptr hist;   ///< nthreads * RADIX uint32
    typename Env::Ptr bar;
    int n = 0;
    int nthreads = 0;
    int passes = 2;
    std::uint64_t seed = 0;

    static constexpr int RADIX_BITS = 8;
    static constexpr int RADIX = 1 << RADIX_BITS;
};

template <typename Env>
void
radixThread(Env& env, RadixShared<Env>& sh)
{
    using S = RadixShared<Env>;
    const int t = env.self();
    const std::uint64_t lo =
        static_cast<std::uint64_t>(sh.n) * t / sh.nthreads;
    const std::uint64_t hi =
        static_cast<std::uint64_t>(sh.n) * (t + 1) / sh.nthreads;
    const std::uint64_t my_hist =
        static_cast<std::uint64_t>(t) * S::RADIX;

    typename Env::Ptr src = sh.keys;
    typename Env::Ptr dst = sh.out;

    // Parallel key generation over the owned chunk.
    for (std::uint64_t i = lo; i < hi; ++i) {
        auto v = static_cast<std::uint32_t>(
            inputValue(sh.seed, i) * 65536.0 * 65536.0);
        env.template st<std::uint32_t>(src, i, v);
        env.exec(InstrClass::IntAlu, 6);
    }
    env.barrier(sh.bar);
    for (int pass = 0; pass < sh.passes; ++pass) {
        const int shift = pass * S::RADIX_BITS;

        // Phase 1: private histogram of the owned chunk.
        for (int d = 0; d < S::RADIX; ++d)
            env.template st<std::uint32_t>(sh.hist, my_hist + d, 0);
        for (std::uint64_t i = lo; i < hi; ++i) {
            std::uint32_t key = env.template ld<std::uint32_t>(src, i);
            std::uint32_t d = (key >> shift) & (S::RADIX - 1);
            std::uint32_t c =
                env.template ld<std::uint32_t>(sh.hist, my_hist + d);
            env.template st<std::uint32_t>(sh.hist, my_hist + d, c + 1);
            env.exec(InstrClass::IntAlu, 3);
        }
        env.barrier(sh.bar);

        // Phase 2: parallel ranking (as in SPLASH radix). 2a — each
        // digit's owner converts per-thread counts into within-digit
        // bases and records the digit total; 2b — thread 0 prefixes the
        // digit totals (RADIX ops, cheap); 2c — owners add the digit
        // base back into the thread bases.
        const std::uint64_t totals_at =
            static_cast<std::uint64_t>(sh.nthreads) * S::RADIX;
        const std::uint64_t bases_at = totals_at + S::RADIX;
        const int dlo = S::RADIX * t / sh.nthreads;
        const int dhi = S::RADIX * (t + 1) / sh.nthreads;
        for (int d = dlo; d < dhi; ++d) {
            std::uint32_t base = 0;
            for (int tt = 0; tt < sh.nthreads; ++tt) {
                std::uint64_t idx =
                    static_cast<std::uint64_t>(tt) * S::RADIX + d;
                std::uint32_t c =
                    env.template ld<std::uint32_t>(sh.hist, idx);
                env.template st<std::uint32_t>(sh.hist, idx, base);
                base += c;
                env.exec(InstrClass::IntAlu, 2);
            }
            env.template st<std::uint32_t>(sh.hist, totals_at + d, base);
        }
        env.barrier(sh.bar);
        if (t == 0) {
            std::uint32_t run = 0;
            for (int d = 0; d < S::RADIX; ++d) {
                std::uint32_t c = env.template ld<std::uint32_t>(
                    sh.hist, totals_at + d);
                env.template st<std::uint32_t>(sh.hist, bases_at + d,
                                               run);
                run += c;
                env.exec(InstrClass::IntAlu, 2);
            }
        }
        env.barrier(sh.bar);
        for (int d = dlo; d < dhi; ++d) {
            std::uint32_t dbase = env.template ld<std::uint32_t>(
                sh.hist, bases_at + d);
            for (int tt = 0; tt < sh.nthreads; ++tt) {
                std::uint64_t idx =
                    static_cast<std::uint64_t>(tt) * S::RADIX + d;
                std::uint32_t b =
                    env.template ld<std::uint32_t>(sh.hist, idx);
                env.template st<std::uint32_t>(sh.hist, idx, b + dbase);
                env.exec(InstrClass::IntAlu, 2);
            }
        }
        env.barrier(sh.bar);

        // Phase 3: scatter owned keys to globally ranked positions.
        for (std::uint64_t i = lo; i < hi; ++i) {
            std::uint32_t key = env.template ld<std::uint32_t>(src, i);
            std::uint32_t d = (key >> shift) & (S::RADIX - 1);
            std::uint32_t pos =
                env.template ld<std::uint32_t>(sh.hist, my_hist + d);
            env.template st<std::uint32_t>(sh.hist, my_hist + d,
                                           pos + 1);
            env.template st<std::uint32_t>(dst, pos, key);
            env.exec(InstrClass::IntAlu, 4);
            env.branch(4001, i + 1 < hi);
        }
        env.barrier(sh.bar);

        std::swap(src, dst);
    }
}

template <typename Env>
double
runRadix(const WorkloadParams& p)
{
    using S = RadixShared<Env>;
    Env main(0, p.threads);
    S sh;
    sh.n = p.size;
    sh.nthreads = p.threads;
    sh.passes = std::max(1, p.iters);
    sh.keys = main.alloc(static_cast<std::uint64_t>(sh.n) * 4);
    sh.out = main.alloc(static_cast<std::uint64_t>(sh.n) * 4);
    // Per-thread histograms + digit totals + digit bases.
    sh.hist = main.alloc((static_cast<std::uint64_t>(p.threads) + 2) *
                         S::RADIX * 4);
    sh.seed = p.seed;
    sh.bar = main.makeBarrier(p.threads);

    runThreads<S, &radixThread<Env>>(main, p.threads, sh);

    // Checksum the final array: position-weighted so ordering matters,
    // masked to the sorted low bits so it is deterministic for any pass
    // count.
    typename Env::Ptr final_arr =
        (sh.passes % 2 == 0) ? sh.keys : sh.out;
    const std::uint32_t mask =
        sh.passes >= 4 ? 0xFFFFFFFFu
                       : ((1u << (sh.passes * S::RADIX_BITS)) - 1);
    double checksum = 0;
    for (int i = 0; i < sh.n; ++i) {
        std::uint32_t v =
            main.template ld<std::uint32_t>(final_arr, i) & mask;
        checksum += static_cast<double>(v) * ((i % 7) + 1);
    }

    main.dealloc(sh.keys);
    main.dealloc(sh.out);
    main.dealloc(sh.hist);
    main.freeBarrier(sh.bar);
    return checksum;
}

} // namespace workloads
} // namespace graphite
