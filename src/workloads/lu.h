/**
 * @file
 * LU factorization (Gaussian elimination) — SPLASH-2 "lu_cont" and
 * "lu_non_cont" analogues.
 *
 * Column-oriented elimination without pivoting on a diagonally dominant
 * matrix. The two variants differ only in column ownership:
 *
 *  - contiguous:     thread owns a contiguous column block — a cache
 *                    line (row-major storage) mostly stays within one
 *                    owner; "perfect spatial locality" (§4.4).
 *  - non-contiguous: column-cyclic ownership — adjacent elements of a
 *                    row belong to different threads, so a single line
 *                    interleaves many writers and false sharing grows
 *                    with line size.
 */

#pragma once

#include "workloads/env.h"

namespace graphite
{
namespace workloads
{

template <typename Env>
struct LuShared
{
    typename Env::Ptr a; ///< n*n doubles, row-major
    typename Env::Ptr bar;
    int n = 0;
    int nthreads = 0;
    bool contiguous = true;
    std::uint64_t seed = 0;
};

template <typename Env>
void
luThread(Env& env, LuShared<Env>& sh)
{
    const int n = sh.n;
    const int t = env.self();
    const int T = sh.nthreads;

    // Contiguous: block-cyclic over 8-column groups (a 64 B line of a
    // row stays within one owner). Non-contiguous: column-cyclic, so a
    // line interleaves all owners.
    auto owns = [&](int col) {
        if (sh.contiguous)
            return (col / 8) % T == t;
        return col % T == t;
    };

    // Parallel init of a diagonally dominant matrix, by row range.
    for (int i = n * t / T; i < n * (t + 1) / T; ++i) {
        for (int j = 0; j < n; ++j) {
            double v = inputValue(sh.seed,
                                  static_cast<std::uint64_t>(i) * n + j);
            if (i == j)
                v += static_cast<double>(n);
            env.template st<double>(
                sh.a, static_cast<std::uint64_t>(i) * n + j, v);
        }
        env.exec(InstrClass::IntAlu, 4 * n);
    }
    env.barrier(sh.bar);
    for (int k = 0; k < n - 1; ++k) {
        const double pivot =
            env.template ld<double>(sh.a,
                                    static_cast<std::uint64_t>(k) * n + k);
        // Update trailing columns this thread owns.
        for (int j = k + 1; j < n; ++j) {
            if (!owns(j))
                continue;
            const double akj = env.template ld<double>(
                sh.a, static_cast<std::uint64_t>(k) * n + j);
            for (int i = k + 1; i < n; ++i) {
                const double aik = env.template ld<double>(
                    sh.a, static_cast<std::uint64_t>(i) * n + k);
                const double aij = env.template ld<double>(
                    sh.a, static_cast<std::uint64_t>(i) * n + j);
                env.template st<double>(
                    sh.a, static_cast<std::uint64_t>(i) * n + j,
                    aij - aik / pivot * akj);
            }
            env.exec(InstrClass::FpMul, 2 * (n - k - 1));
            env.exec(InstrClass::FpAdd, n - k - 1);
            env.exec(InstrClass::IntAlu, 5 * (n - k - 1));
            env.branch(3001, j + 1 < n);
        }
        env.barrier(sh.bar);
    }
}

template <typename Env>
double
runLuImpl(const WorkloadParams& p, bool contiguous)
{
    Env main(0, p.threads);
    LuShared<Env> sh;
    sh.n = p.size;
    sh.nthreads = p.threads;
    sh.contiguous = contiguous;
    sh.seed = p.seed;
    const std::uint64_t cells = static_cast<std::uint64_t>(sh.n) * sh.n;
    sh.a = main.alloc(cells * sizeof(double));
    sh.bar = main.makeBarrier(p.threads);

    runThreads<LuShared<Env>, &luThread<Env>>(main, p.threads, sh);

    double checksum = 0;
    for (std::uint64_t i = 0; i < cells; ++i)
        checksum += main.template ld<double>(sh.a, i);

    main.dealloc(sh.a);
    main.freeBarrier(sh.bar);
    return checksum;
}

template <typename Env>
double
runLuCont(const WorkloadParams& p)
{
    return runLuImpl<Env>(p, true);
}

template <typename Env>
double
runLuNonCont(const WorkloadParams& p)
{
    return runLuImpl<Env>(p, false);
}

} // namespace workloads
} // namespace graphite
