/**
 * @file
 * Workload registry: name -> native/simulated runners, plus the
 * convenience launcher that wraps Simulator::run().
 *
 * The suite mirrors the paper's evaluation: the ten SPLASH-2 kernels of
 * Table 2 / Figure 4, the 1024-thread matrix multiply of Figure 5, and
 * PARSEC blackscholes of Figure 9 (see DESIGN.md for the substitution
 * notes on each).
 */

#pragma once

#include <string>
#include <vector>

#include "workloads/env.h"

namespace graphite
{

class Simulator;
struct SimulationSummary;

namespace workloads
{

/** One registered workload. */
struct WorkloadInfo
{
    std::string name;
    /** Run natively with std::threads; @return the checksum. */
    double (*runNative)(const WorkloadParams&);
    /**
     * Run against the target API; must execute on an application
     * thread inside a simulation (use runSim() normally).
     */
    double (*runSimBody)(const WorkloadParams&);
    /** Default parameters sized for fast benchmark runs. */
    WorkloadParams defaults;
};

/** All registered workloads (fixed order, paper order). */
const std::vector<WorkloadInfo>& registry();

/** Lookup by name; fatal on unknown name (user error). */
const WorkloadInfo& findWorkload(const std::string& name);

/** Result of a simulated workload run. */
struct SimRunResult
{
    double checksum = 0;
    cycle_t simulatedCycles = 0;
    /** Simulated span of the parallel region, when the workload reports
     *  one via setLastRegionCycles(); 0 otherwise. */
    cycle_t regionCycles = 0;
    double wallSeconds = 0;
    stat_t totalInstructions = 0;
};

/**
 * Launch @p w inside @p sim (as the application main on tile 0) and
 * collect results.
 */
SimRunResult runSim(Simulator& sim, const WorkloadInfo& w,
                    const WorkloadParams& p);

} // namespace workloads
} // namespace graphite
