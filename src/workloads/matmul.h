/**
 * @file
 * Dense matrix multiply C = A * B (the paper's 1024-thread scaling
 * kernel, Figure 5).
 *
 * 1D partition of C's cells into contiguous chunks so the kernel scales
 * to thread counts larger than the matrix dimension. High
 * compute-to-communication ratio; read-sharing of A and B rows/columns.
 */

#pragma once

#include "workloads/env.h"

namespace graphite
{
namespace workloads
{

template <typename Env>
struct MatmulShared
{
    typename Env::Ptr a, b, c;
    typename Env::Ptr bar;
    int n = 0;
    int nthreads = 0;
    std::uint64_t seed = 0;
};

template <typename Env>
void
matmulThread(Env& env, MatmulShared<Env>& sh)
{
    const int n = sh.n;
    const std::uint64_t cells = static_cast<std::uint64_t>(n) * n;
    const std::uint64_t lo = cells * env.self() / sh.nthreads;
    const std::uint64_t hi = cells * (env.self() + 1) / sh.nthreads;

    // Parallel initialization of the owned range (SPLASH style).
    for (std::uint64_t i = lo; i < hi; ++i) {
        env.template st<double>(sh.a, i, inputValue(sh.seed, i));
        env.template st<double>(sh.b, i,
                                inputValue(sh.seed ^ 0xabcd, i));
        env.exec(InstrClass::IntAlu, 4);
    }
    env.barrier(sh.bar);

    for (std::uint64_t cell = lo; cell < hi; ++cell) {
        const std::uint64_t i = cell / n;
        const std::uint64_t j = cell % n;
        double acc = 0;
        for (int k = 0; k < n; ++k) {
            double av = env.template ld<double>(sh.a, i * n + k);
            double bv = env.template ld<double>(sh.b,
                                                static_cast<std::uint64_t>(
                                                    k) * n + j);
            acc += av * bv;
        }
        // Realistic mix: fused multiply-add plus index arithmetic.
        env.exec(InstrClass::FpMul, n);
        env.exec(InstrClass::FpAdd, n);
        env.exec(InstrClass::IntAlu, 4 * n);
        env.branch(1001, cell + 1 < hi);
        env.template st<double>(sh.c, cell, acc);
    }
    env.barrier(sh.bar);
}

template <typename Env>
double
runMatmul(const WorkloadParams& p)
{
    Env main(0, p.threads);
    MatmulShared<Env> sh;
    sh.n = p.size;
    sh.nthreads = p.threads;
    const std::uint64_t cells = static_cast<std::uint64_t>(sh.n) * sh.n;
    sh.seed = p.seed;
    sh.a = main.alloc(cells * sizeof(double));
    sh.b = main.alloc(cells * sizeof(double));
    sh.c = main.alloc(cells * sizeof(double));
    sh.bar = main.makeBarrier(p.threads);

    runThreads<MatmulShared<Env>, &matmulThread<Env>>(main, p.threads,
                                                      sh);

    double checksum = 0;
    for (std::uint64_t i = 0; i < cells; ++i)
        checksum += main.template ld<double>(sh.c, i);

    main.dealloc(sh.a);
    main.dealloc(sh.b);
    main.dealloc(sh.c);
    main.freeBarrier(sh.bar);
    return checksum;
}

} // namespace workloads
} // namespace graphite
