/**
 * @file
 * Black-Scholes option pricing (PARSEC "blackscholes" analogue — the
 * cache-coherence study workload, paper §4.4 / Figure 9).
 *
 * "blackscholes is nearly perfectly parallel as little information is
 * shared between cores. However ... some global addresses ... are
 * heavily shared as read-only data." Each thread prices a contiguous
 * chunk of options independently; every option evaluation also reads a
 * small shared read-only coefficient table, reproducing the heavy
 * read-only sharing that separates full-map/LimitLESS from the limited
 * Dir_iNB directories.
 */

#pragma once

#include <cmath>

#include "workloads/env.h"

namespace graphite
{
namespace workloads
{

/** Option record: S K r v T (5 floats) + price (1 float). */
inline constexpr std::uint64_t BS_IN_FLOATS = 5;
inline constexpr int BS_TABLE_FLOATS = 32;

template <typename Env>
struct BlackscholesShared
{
    typename Env::Ptr in;    ///< m * BS_IN_FLOATS floats (read-only)
    typename Env::Ptr out;   ///< m floats
    typename Env::Ptr table; ///< BS_TABLE_FLOATS floats (read-only)
    typename Env::Ptr bar;
    int m = 0;
    int iters = 1;
    int nthreads = 0;
    std::uint64_t seed = 0;
    /** Parallel-region bounds recorded by thread 0 (simulated cycles). */
    cycle_t regionStart = 0;
    cycle_t regionEnd = 0;
};

namespace bs_detail
{

/** Cumulative normal distribution (Abramowitz-Stegun polynomial). */
inline double
cnd(double x)
{
    const double a1 = 0.319381530, a2 = -0.356563782, a3 = 1.781477937,
                 a4 = -1.821255978, a5 = 1.330274429;
    double l = std::fabs(x);
    double k = 1.0 / (1.0 + 0.2316419 * l);
    double w = 1.0 -
               1.0 / std::sqrt(2 * M_PI) * std::exp(-l * l / 2) *
                   (a1 * k + a2 * k * k + a3 * k * k * k +
                    a4 * k * k * k * k + a5 * k * k * k * k * k);
    return x < 0 ? 1.0 - w : w;
}

} // namespace bs_detail

template <typename Env>
void
blackscholesThread(Env& env, BlackscholesShared<Env>& sh)
{
    const int t = env.self();
    const int lo = sh.m * t / sh.nthreads;
    const int hi = sh.m * (t + 1) / sh.nthreads;

    // Parallel init of the owned option records.
    for (int i = lo; i < hi; ++i) {
        std::uint64_t b = static_cast<std::uint64_t>(i) * BS_IN_FLOATS;
        env.template st<float>(
            sh.in, b,
            static_cast<float>(50 + 50 * inputValue(sh.seed, 5 * i)));
        env.template st<float>(
            sh.in, b + 1,
            static_cast<float>(50 +
                               50 * inputValue(sh.seed, 5 * i + 1)));
        env.template st<float>(
            sh.in, b + 2,
            static_cast<float>(0.01 +
                               0.05 * inputValue(sh.seed, 5 * i + 2)));
        env.template st<float>(
            sh.in, b + 3,
            static_cast<float>(0.1 +
                               0.4 * inputValue(sh.seed, 5 * i + 3)));
        env.template st<float>(
            sh.in, b + 4,
            static_cast<float>(0.25 +
                               2 * inputValue(sh.seed, 5 * i + 4)));
        env.exec(InstrClass::IntAlu, 10);
    }
    env.barrier(sh.bar);
    if (t == 0)
        sh.regionStart = env.cycleNow();
    for (int it = 0; it < sh.iters; ++it) {
        for (int i = lo; i < hi; ++i) {
            std::uint64_t b =
                static_cast<std::uint64_t>(i) * BS_IN_FLOATS;
            double S = env.template ld<float>(sh.in, b);
            double K = env.template ld<float>(sh.in, b + 1);
            double r = env.template ld<float>(sh.in, b + 2);
            double v = env.template ld<float>(sh.in, b + 3);
            double T = env.template ld<float>(sh.in, b + 4);

            // Heavily shared read-only table lookups (four per
            // option, spanning both table lines).
            double c0 = env.template ld<float>(
                sh.table, static_cast<std::uint64_t>(i) %
                              BS_TABLE_FLOATS);
            double c1 = env.template ld<float>(
                sh.table, static_cast<std::uint64_t>(i + 7) %
                              BS_TABLE_FLOATS);
            double c2 = env.template ld<float>(
                sh.table, static_cast<std::uint64_t>(i + 17) %
                              BS_TABLE_FLOATS);
            double c3 = env.template ld<float>(
                sh.table, static_cast<std::uint64_t>(i + 29) %
                              BS_TABLE_FLOATS);

            double sqrtT = std::sqrt(T);
            double d1 = (std::log(S / K) + (r + v * v / 2) * T) /
                        (v * sqrtT);
            double d2 = d1 - v * sqrtT;
            double price = S * bs_detail::cnd(d1) -
                           K * std::exp(-r * T) * bs_detail::cnd(d2);
            price = price * c0 + c1 + c2 * 1e-3 + c3 * 1e-3;

            env.template st<float>(sh.out, i,
                                   static_cast<float>(price));
            // PARSEC's pricing kernel runs ~200 FP ops per option
            // (exp/log/sqrt expansions included).
            env.exec(InstrClass::FpMul, 40);
            env.exec(InstrClass::FpDiv, 6);
            env.exec(InstrClass::IntAlu, 40);
            env.branch(9001, i + 1 < hi);
        }
        env.barrier(sh.bar);
    }
    if (t == 0) {
        sh.regionEnd = env.cycleNow();
        setLastRegionCycles(sh.regionEnd > sh.regionStart
                                ? sh.regionEnd - sh.regionStart
                                : 0);
    }
}

template <typename Env>
double
runBlackscholes(const WorkloadParams& p)
{
    Env main(0, p.threads);
    BlackscholesShared<Env> sh;
    sh.m = p.size;
    sh.iters = std::max(1, p.iters);
    sh.nthreads = p.threads;
    sh.in = main.alloc(static_cast<std::uint64_t>(sh.m) * BS_IN_FLOATS *
                       sizeof(float));
    sh.out = main.alloc(static_cast<std::uint64_t>(sh.m) * sizeof(float));
    sh.table = main.alloc(BS_TABLE_FLOATS * sizeof(float));
    sh.seed = p.seed;
    sh.bar = main.makeBarrier(p.threads);

    for (int i = 0; i < BS_TABLE_FLOATS; ++i)
        main.template st<float>(
            sh.table, i,
            static_cast<float>(0.9 + 0.2 * inputValue(p.seed ^ 0x77, i)));

    runThreads<BlackscholesShared<Env>, &blackscholesThread<Env>>(
        main, p.threads, sh);

    double checksum = 0;
    for (int i = 0; i < sh.m; ++i)
        checksum += main.template ld<float>(sh.out, i);

    main.dealloc(sh.in);
    main.dealloc(sh.out);
    main.dealloc(sh.table);
    main.freeBarrier(sh.bar);
    return checksum;
}

} // namespace workloads
} // namespace graphite
