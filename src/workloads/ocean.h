/**
 * @file
 * Grid relaxation (SPLASH-2 "ocean" analogue, contiguous and
 * non-contiguous partitions).
 *
 * Jacobi iteration on a g×g grid with two buffers. The variants differ
 * in row ownership, mirroring SPLASH's 4D-array ("contiguous partitions")
 * vs 2D-array ("non-contiguous") organizations:
 *
 *  - contiguous:     threads own contiguous row bands; sharing only at
 *                    band boundary rows.
 *  - non-contiguous: row-cyclic ownership; every row's neighbors belong
 *                    to other threads, multiplying coherence traffic and
 *                    line-granularity effects.
 */

#pragma once

#include "workloads/env.h"

namespace graphite
{
namespace workloads
{

template <typename Env>
struct OceanShared
{
    typename Env::Ptr a, b; ///< g*g doubles each
    typename Env::Ptr bar;
    int g = 0;
    int iters = 1;
    int nthreads = 0;
    bool contiguous = true;
    std::uint64_t seed = 0;
};

template <typename Env>
void
oceanThread(Env& env, OceanShared<Env>& sh)
{
    const int g = sh.g;
    const int t = env.self();
    const int T = sh.nthreads;

    auto owns = [&](int row) {
        if (sh.contiguous)
            return row * T / g == t;
        return row % T == t;
    };

    typename Env::Ptr src = sh.a;
    typename Env::Ptr dst = sh.b;

    // Parallel grid init by row range.
    for (int i = g * t / T; i < g * (t + 1) / T; ++i) {
        for (int j = 0; j < g; ++j) {
            std::uint64_t idx = static_cast<std::uint64_t>(i) * g + j;
            double v = inputValue(sh.seed, idx);
            env.template st<double>(sh.a, idx, v);
            env.template st<double>(sh.b, idx, v);
        }
        env.exec(InstrClass::IntAlu, 4 * g);
    }
    env.barrier(sh.bar);
    for (int it = 0; it < sh.iters; ++it) {
        for (int i = 1; i < g - 1; ++i) {
            if (!owns(i))
                continue;
            for (int j = 1; j < g - 1; ++j) {
                const std::uint64_t idx =
                    static_cast<std::uint64_t>(i) * g + j;
                double up = env.template ld<double>(src, idx - g);
                double down = env.template ld<double>(src, idx + g);
                double left = env.template ld<double>(src, idx - 1);
                double right = env.template ld<double>(src, idx + 1);
                env.template st<double>(dst, idx,
                                        0.25 * (up + down + left +
                                                right));
            }
            env.exec(InstrClass::FpAdd, 3 * (g - 2));
            env.exec(InstrClass::FpMul, g - 2);
            env.exec(InstrClass::IntAlu, 6 * (g - 2));
            env.branch(5001, i + 1 < g - 1);
        }
        env.barrier(sh.bar);
        std::swap(src, dst);
    }
}

template <typename Env>
double
runOceanImpl(const WorkloadParams& p, bool contiguous)
{
    Env main(0, p.threads);
    OceanShared<Env> sh;
    sh.g = p.size;
    sh.iters = std::max(1, p.iters);
    sh.nthreads = p.threads;
    sh.contiguous = contiguous;
    const std::uint64_t cells = static_cast<std::uint64_t>(sh.g) * sh.g;
    sh.seed = p.seed;
    sh.a = main.alloc(cells * sizeof(double));
    sh.b = main.alloc(cells * sizeof(double));
    sh.bar = main.makeBarrier(p.threads);

    runThreads<OceanShared<Env>, &oceanThread<Env>>(main, p.threads, sh);

    typename Env::Ptr final_arr = (sh.iters % 2 == 0) ? sh.a : sh.b;
    double checksum = 0;
    for (std::uint64_t i = 0; i < cells; ++i)
        checksum += main.template ld<double>(final_arr, i);

    main.dealloc(sh.a);
    main.dealloc(sh.b);
    main.freeBarrier(sh.bar);
    return checksum;
}

template <typename Env>
double
runOceanCont(const WorkloadParams& p)
{
    return runOceanImpl<Env>(p, true);
}

template <typename Env>
double
runOceanNonCont(const WorkloadParams& p)
{
    return runOceanImpl<Env>(p, false);
}

} // namespace workloads
} // namespace graphite
