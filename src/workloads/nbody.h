/**
 * @file
 * Hierarchical N-body kernels (simplified SPLASH-2 "barnes" and "fmm"
 * analogues).
 *
 * Both use a one-level spatial decomposition over the unit square
 * instead of an adaptive tree (substitution documented in DESIGN.md):
 * per step, per-cell aggregates (mass, center of mass) are reduced by
 * thread 0 from per-thread partials, then each thread computes forces on
 * its *owned* contiguous particle range:
 *
 *  - barnes: near cells (the 3×3 neighborhood) interact
 *            particle-by-particle, far cells through their aggregate —
 *            a Barnes-Hut style opening criterion fixed at one level.
 *  - fmm:    near interactions use the cell aggregate too (cheaper,
 *            multipole-to-particle everywhere), modeling FMM's lower
 *            particle-particle traffic.
 *
 * The record-ownership sharing pattern matches §4.4: each thread writes
 * only records it owns but reads certain fields of others.
 */

#pragma once

#include <cmath>

#include "workloads/env.h"

namespace graphite
{
namespace workloads
{

/** Particle record: x y vx vy fx fy (6 doubles = 48 B). */
inline constexpr std::uint64_t NBODY_REC_DOUBLES = 6;

template <typename Env>
struct NbodyShared
{
    typename Env::Ptr part;     ///< m * NBODY_REC_DOUBLES doubles
    typename Env::Ptr cellAgg;  ///< grid*grid * 3 doubles (mass, cx, cy)
    typename Env::Ptr partials; ///< nthreads * grid*grid * 3 doubles
    typename Env::Ptr bar;
    int m = 0;
    int iters = 1;
    int nthreads = 0;
    int grid = 4;
    bool fmm = false;
    std::uint64_t seed = 0;
};

template <typename Env>
void
nbodyThread(Env& env, NbodyShared<Env>& sh)
{
    const int m = sh.m;
    const int t = env.self();
    const int lo = m * t / sh.nthreads;
    const int hi = m * (t + 1) / sh.nthreads;
    const int G = sh.grid;
    const int ncells = G * G;

    auto cellOf = [&](double x, double y) {
        int cx = std::min(G - 1, std::max(0, static_cast<int>(x * G)));
        int cy = std::min(G - 1, std::max(0, static_cast<int>(y * G)));
        return cy * G + cx;
    };

    // Parallel init of owned particle records.
    for (int i = lo; i < hi; ++i) {
        std::uint64_t b =
            static_cast<std::uint64_t>(i) * NBODY_REC_DOUBLES;
        env.template st<double>(sh.part, b, inputValue(sh.seed, 2 * i));
        env.template st<double>(sh.part, b + 1,
                                inputValue(sh.seed, 2 * i + 1));
        for (int k = 2; k < 6; ++k)
            env.template st<double>(sh.part, b + k, 0.0);
        env.exec(InstrClass::IntAlu, 8);
    }
    env.barrier(sh.bar);
    for (int it = 0; it < sh.iters; ++it) {
        // Per-thread partial cell aggregates over the owned range.
        const std::uint64_t pbase =
            static_cast<std::uint64_t>(t) * ncells * 3;
        for (int c = 0; c < ncells * 3; ++c)
            env.template st<double>(sh.partials, pbase + c, 0.0);
        for (int i = lo; i < hi; ++i) {
            std::uint64_t b =
                static_cast<std::uint64_t>(i) * NBODY_REC_DOUBLES;
            double x = env.template ld<double>(sh.part, b);
            double y = env.template ld<double>(sh.part, b + 1);
            int c = cellOf(x, y);
            std::uint64_t cb = pbase + static_cast<std::uint64_t>(c) * 3;
            env.template st<double>(
                sh.partials, cb,
                env.template ld<double>(sh.partials, cb) + 1.0);
            env.template st<double>(
                sh.partials, cb + 1,
                env.template ld<double>(sh.partials, cb + 1) + x);
            env.template st<double>(
                sh.partials, cb + 2,
                env.template ld<double>(sh.partials, cb + 2) + y);
            env.exec(InstrClass::FpAdd, 3);
        }
        env.barrier(sh.bar);

        // Parallel reduction of partials into the shared aggregates:
        // cells are partitioned across threads (as in SPLASH fmm's
        // parallel upward pass).
        {
            const int clo = ncells * t / sh.nthreads;
            const int chi = ncells * (t + 1) / sh.nthreads;
            for (int c = clo; c < chi; ++c) {
                double mass = 0, sx = 0, sy = 0;
                for (int tt = 0; tt < sh.nthreads; ++tt) {
                    std::uint64_t cb =
                        (static_cast<std::uint64_t>(tt) * ncells + c) *
                        3;
                    mass += env.template ld<double>(sh.partials, cb);
                    sx += env.template ld<double>(sh.partials, cb + 1);
                    sy += env.template ld<double>(sh.partials, cb + 2);
                }
                std::uint64_t ab = static_cast<std::uint64_t>(c) * 3;
                env.template st<double>(sh.cellAgg, ab, mass);
                env.template st<double>(sh.cellAgg, ab + 1,
                                        mass > 0 ? sx / mass : 0.5);
                env.template st<double>(sh.cellAgg, ab + 2,
                                        mass > 0 ? sy / mass : 0.5);
                env.exec(InstrClass::FpAdd, 3 * sh.nthreads);
                env.exec(InstrClass::FpDiv, 2);
            }
        }
        env.barrier(sh.bar);

        // Forces on owned particles.
        for (int i = lo; i < hi; ++i) {
            std::uint64_t bi =
                static_cast<std::uint64_t>(i) * NBODY_REC_DOUBLES;
            double xi = env.template ld<double>(sh.part, bi);
            double yi = env.template ld<double>(sh.part, bi + 1);
            int ci = cellOf(xi, yi);
            int cix = ci % G, ciy = ci / G;
            double fx = 0, fy = 0;

            for (int c = 0; c < ncells; ++c) {
                int cx = c % G, cy = c / G;
                bool near = std::abs(cx - cix) <= 1 &&
                            std::abs(cy - ciy) <= 1;
                if (near && !sh.fmm) {
                    // Barnes: direct interactions with particles in
                    // near cells (scan all particles, filter by cell —
                    // no list structure at this simplification level).
                    continue; // handled in the dedicated pass below
                }
                std::uint64_t ab = static_cast<std::uint64_t>(c) * 3;
                double mass = env.template ld<double>(sh.cellAgg, ab);
                if (mass <= 0)
                    continue;
                double cxm = env.template ld<double>(sh.cellAgg, ab + 1);
                double cym = env.template ld<double>(sh.cellAgg, ab + 2);
                double dx = xi - cxm, dy = yi - cym;
                double r2 = dx * dx + dy * dy + 1e-3;
                double inv = mass / (r2 * std::sqrt(r2));
                fx += dx * inv;
                fy += dy * inv;
                env.exec(InstrClass::FpMul, 7);
                env.exec(InstrClass::FpDiv, 1);
                env.exec(InstrClass::IntAlu, 6);
            }

            if (!sh.fmm) {
                // Direct pass over all particles in near cells.
                for (int j = 0; j < m; ++j) {
                    if (j == i)
                        continue;
                    std::uint64_t bj =
                        static_cast<std::uint64_t>(j) *
                        NBODY_REC_DOUBLES;
                    double xj = env.template ld<double>(sh.part, bj);
                    double yj = env.template ld<double>(sh.part, bj + 1);
                    int cj = cellOf(xj, yj);
                    int cjx = cj % G, cjy = cj / G;
                    if (std::abs(cjx - cix) > 1 ||
                        std::abs(cjy - ciy) > 1)
                        continue;
                    double dx = xi - xj, dy = yi - yj;
                    double r2 = dx * dx + dy * dy + 1e-4;
                    double inv = 1.0 / (r2 * std::sqrt(r2));
                    fx += dx * inv;
                    fy += dy * inv;
                    env.exec(InstrClass::FpMul, 8);
                    env.exec(InstrClass::IntAlu, 6);
                }
            }

            env.template st<double>(sh.part, bi + 4, fx);
            env.template st<double>(sh.part, bi + 5, fy);
            env.branch(7001, i + 1 < hi);
        }
        env.barrier(sh.bar);

        // Integrate owned particles.
        const double dt = 1e-5;
        for (int i = lo; i < hi; ++i) {
            std::uint64_t b =
                static_cast<std::uint64_t>(i) * NBODY_REC_DOUBLES;
            double x = env.template ld<double>(sh.part, b);
            double y = env.template ld<double>(sh.part, b + 1);
            double vx = env.template ld<double>(sh.part, b + 2);
            double vy = env.template ld<double>(sh.part, b + 3);
            vx += env.template ld<double>(sh.part, b + 4) * dt;
            vy += env.template ld<double>(sh.part, b + 5) * dt;
            x += vx * dt;
            y += vy * dt;
            if (x < 0) x = -x;
            if (x > 1) x = 2 - x;
            if (y < 0) y = -y;
            if (y > 1) y = 2 - y;
            env.template st<double>(sh.part, b, x);
            env.template st<double>(sh.part, b + 1, y);
            env.template st<double>(sh.part, b + 2, vx);
            env.template st<double>(sh.part, b + 3, vy);
            env.exec(InstrClass::FpMul, 4);
            env.exec(InstrClass::FpAdd, 4);
        }
        env.barrier(sh.bar);
    }
}

template <typename Env>
double
runNbodyImpl(const WorkloadParams& p, bool fmm)
{
    Env main(0, p.threads);
    NbodyShared<Env> sh;
    sh.m = p.size;
    sh.iters = std::max(1, p.iters);
    sh.nthreads = p.threads;
    sh.grid = 4;
    sh.fmm = fmm;
    const int ncells = sh.grid * sh.grid;
    sh.part = main.alloc(static_cast<std::uint64_t>(sh.m) *
                         NBODY_REC_DOUBLES * sizeof(double));
    sh.cellAgg = main.alloc(static_cast<std::uint64_t>(ncells) * 3 *
                            sizeof(double));
    sh.partials = main.alloc(static_cast<std::uint64_t>(p.threads) *
                             ncells * 3 * sizeof(double));
    sh.seed = p.seed;
    sh.bar = main.makeBarrier(p.threads);

    runThreads<NbodyShared<Env>, &nbodyThread<Env>>(main, p.threads, sh);

    double checksum = 0;
    for (int i = 0; i < sh.m; ++i) {
        std::uint64_t b =
            static_cast<std::uint64_t>(i) * NBODY_REC_DOUBLES;
        checksum += main.template ld<double>(sh.part, b) +
                    main.template ld<double>(sh.part, b + 1);
    }

    main.dealloc(sh.part);
    main.dealloc(sh.cellAgg);
    main.dealloc(sh.partials);
    main.freeBarrier(sh.bar);
    return checksum;
}

template <typename Env>
double
runBarnes(const WorkloadParams& p)
{
    return runNbodyImpl<Env>(p, false);
}

template <typename Env>
double
runFmm(const WorkloadParams& p)
{
    return runNbodyImpl<Env>(p, true);
}

} // namespace workloads
} // namespace graphite
