/**
 * @file
 * Molecular-dynamics kernels (SPLASH-2 "water_nsquared" and
 * "water_spatial" analogues).
 *
 * Molecules are fixed-size records in one contiguous array; each thread
 * *owns* a contiguous range of records — it writes only its own records
 * but reads others' positions, the ownership pattern the paper's §4.4
 * analysis relies on ("true sharing miss rates should decrease and false
 * sharing misses increase with increasing cache line sizes").
 *
 *  - nsquared: every owned molecule interacts with all others (O(m²)).
 *  - spatial:  a uniform cell grid limits interactions to neighbor
 *              cells; cell lists are rebuilt by thread 0 each step.
 */

#pragma once

#include <cmath>

#include "workloads/env.h"

namespace graphite
{
namespace workloads
{

/** Record layout: x y z vx vy vz fx fy fz pad (10 doubles = 80 B). */
inline constexpr std::uint64_t WATER_REC_DOUBLES = 10;

template <typename Env>
struct WaterShared
{
    typename Env::Ptr mol;   ///< m * WATER_REC_DOUBLES doubles
    typename Env::Ptr cells; ///< spatial: cell lists (heads + next)
    typename Env::Ptr bar;
    int m = 0;
    int iters = 1;
    int nthreads = 0;
    bool spatial = false;
    int grid = 4; ///< spatial: grid dimension per axis (2D)
    std::uint64_t seed = 0;
};

namespace water_detail
{

/** Pair force on molecule i from j (simple soft-sphere). */
inline void
pairForce(double xi, double yi, double xj, double yj, double& fx,
          double& fy)
{
    double dx = xi - xj;
    double dy = yi - yj;
    double r2 = dx * dx + dy * dy + 1e-4;
    double inv = 1.0 / (r2 * std::sqrt(r2));
    fx += dx * inv;
    fy += dy * inv;
}

} // namespace water_detail

template <typename Env>
void
waterThread(Env& env, WaterShared<Env>& sh)
{
    const int m = sh.m;
    const int t = env.self();
    const int lo = m * t / sh.nthreads;
    const int hi = m * (t + 1) / sh.nthreads;
    const int G = sh.grid;

    // Parallel init of owned molecule records.
    for (int i = lo; i < hi; ++i) {
        std::uint64_t b =
            static_cast<std::uint64_t>(i) * WATER_REC_DOUBLES;
        env.template st<double>(sh.mol, b, inputValue(sh.seed, 2 * i));
        env.template st<double>(sh.mol, b + 1,
                                inputValue(sh.seed, 2 * i + 1));
        for (int k = 2; k < 10; ++k)
            env.template st<double>(sh.mol, b + k, 0.0);
        env.exec(InstrClass::IntAlu, 12);
    }
    env.barrier(sh.bar);
    for (int it = 0; it < sh.iters; ++it) {
        if (sh.spatial && t == 0) {
            // Rebuild cell lists: heads[G*G], next[m].
            for (int c = 0; c < G * G; ++c)
                env.template st<std::int32_t>(sh.cells, c, -1);
            for (int i = 0; i < m; ++i) {
                std::uint64_t base =
                    static_cast<std::uint64_t>(i) * WATER_REC_DOUBLES;
                double x = env.template ld<double>(sh.mol, base);
                double y = env.template ld<double>(sh.mol, base + 1);
                int cx = std::min(G - 1, std::max(0,
                            static_cast<int>(x * G)));
                int cy = std::min(G - 1, std::max(0,
                            static_cast<int>(y * G)));
                int cell = cy * G + cx;
                std::int32_t head =
                    env.template ld<std::int32_t>(sh.cells, cell);
                env.template st<std::int32_t>(
                    sh.cells, static_cast<std::uint64_t>(G) * G + i,
                    head);
                env.template st<std::int32_t>(sh.cells, cell, i);
                env.exec(InstrClass::IntAlu, 6);
            }
        }
        if (sh.spatial)
            env.barrier(sh.bar);

        // Force computation on owned molecules.
        for (int i = lo; i < hi; ++i) {
            std::uint64_t bi =
                static_cast<std::uint64_t>(i) * WATER_REC_DOUBLES;
            double xi = env.template ld<double>(sh.mol, bi);
            double yi = env.template ld<double>(sh.mol, bi + 1);
            double fx = 0, fy = 0;

            if (!sh.spatial) {
                for (int j = 0; j < m; ++j) {
                    if (j == i)
                        continue;
                    std::uint64_t bj =
                        static_cast<std::uint64_t>(j) *
                        WATER_REC_DOUBLES;
                    double xj = env.template ld<double>(sh.mol, bj);
                    double yj = env.template ld<double>(sh.mol, bj + 1);
                    water_detail::pairForce(xi, yi, xj, yj, fx, fy);
                }
                env.exec(InstrClass::FpMul, 8 * (m - 1));
                env.exec(InstrClass::FpDiv, m - 1);
                env.exec(InstrClass::IntAlu, 6 * (m - 1));
            } else {
                int cx = std::min(G - 1, std::max(0,
                            static_cast<int>(xi * G)));
                int cy = std::min(G - 1, std::max(0,
                            static_cast<int>(yi * G)));
                for (int dy = -1; dy <= 1; ++dy) {
                    for (int dx = -1; dx <= 1; ++dx) {
                        int nx = cx + dx, ny = cy + dy;
                        if (nx < 0 || nx >= G || ny < 0 || ny >= G)
                            continue;
                        std::int32_t j = env.template ld<std::int32_t>(
                            sh.cells, ny * G + nx);
                        while (j >= 0) {
                            if (j != i) {
                                std::uint64_t bj =
                                    static_cast<std::uint64_t>(j) *
                                    WATER_REC_DOUBLES;
                                double xj = env.template ld<double>(
                                    sh.mol, bj);
                                double yj = env.template ld<double>(
                                    sh.mol, bj + 1);
                                water_detail::pairForce(xi, yi, xj, yj,
                                                        fx, fy);
                                env.exec(InstrClass::FpMul, 8);
                                env.exec(InstrClass::IntAlu, 6);
                            }
                            j = env.template ld<std::int32_t>(
                                sh.cells,
                                static_cast<std::uint64_t>(G) * G + j);
                        }
                    }
                }
            }
            env.template st<double>(sh.mol, bi + 6, fx);
            env.template st<double>(sh.mol, bi + 7, fy);
            env.branch(6001, i + 1 < hi);
        }
        env.barrier(sh.bar);

        // Position/velocity update of owned molecules.
        const double dt = 1e-4;
        for (int i = lo; i < hi; ++i) {
            std::uint64_t bi =
                static_cast<std::uint64_t>(i) * WATER_REC_DOUBLES;
            double x = env.template ld<double>(sh.mol, bi);
            double y = env.template ld<double>(sh.mol, bi + 1);
            double vx = env.template ld<double>(sh.mol, bi + 3);
            double vy = env.template ld<double>(sh.mol, bi + 4);
            double fx = env.template ld<double>(sh.mol, bi + 6);
            double fy = env.template ld<double>(sh.mol, bi + 7);
            vx += fx * dt;
            vy += fy * dt;
            x += vx * dt;
            y += vy * dt;
            // Reflect into the unit box.
            if (x < 0) x = -x;
            if (x > 1) x = 2 - x;
            if (y < 0) y = -y;
            if (y > 1) y = 2 - y;
            env.template st<double>(sh.mol, bi, x);
            env.template st<double>(sh.mol, bi + 1, y);
            env.template st<double>(sh.mol, bi + 3, vx);
            env.template st<double>(sh.mol, bi + 4, vy);
            env.exec(InstrClass::FpMul, 4);
            env.exec(InstrClass::FpAdd, 4);
        }
        env.barrier(sh.bar);
    }
}

template <typename Env>
double
runWaterImpl(const WorkloadParams& p, bool spatial)
{
    Env main(0, p.threads);
    WaterShared<Env> sh;
    sh.m = p.size;
    sh.iters = std::max(1, p.iters);
    sh.nthreads = p.threads;
    sh.spatial = spatial;
    sh.grid = 4;
    sh.mol = main.alloc(static_cast<std::uint64_t>(sh.m) *
                        WATER_REC_DOUBLES * sizeof(double));
    if (spatial)
        sh.cells = main.alloc(
            (static_cast<std::uint64_t>(sh.grid) * sh.grid + sh.m) * 4);
    sh.seed = p.seed;
    sh.bar = main.makeBarrier(p.threads);

    runThreads<WaterShared<Env>, &waterThread<Env>>(main, p.threads, sh);

    double checksum = 0;
    for (int i = 0; i < sh.m; ++i) {
        std::uint64_t b =
            static_cast<std::uint64_t>(i) * WATER_REC_DOUBLES;
        checksum += main.template ld<double>(sh.mol, b) +
                    main.template ld<double>(sh.mol, b + 1);
    }

    main.dealloc(sh.mol);
    if (spatial)
        main.dealloc(sh.cells);
    main.freeBarrier(sh.bar);
    return checksum;
}

template <typename Env>
double
runWaterNsquared(const WorkloadParams& p)
{
    return runWaterImpl<Env>(p, false);
}

template <typename Env>
double
runWaterSpatial(const WorkloadParams& p)
{
    return runWaterImpl<Env>(p, true);
}

} // namespace workloads
} // namespace graphite
