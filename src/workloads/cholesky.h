/**
 * @file
 * Cholesky factorization (SPLASH-2 "cholesky" analogue, dense variant).
 *
 * Right-looking Cholesky on a symmetric positive-definite matrix with
 * column-cyclic ownership. Each step: the owner factors the pivot
 * column, then every thread updates the trailing columns it owns —
 * reads of the freshly written pivot column create producer-consumer
 * sharing between steps.
 */

#pragma once

#include <cmath>

#include "workloads/env.h"

namespace graphite
{
namespace workloads
{

inline double
env_abs(double v)
{
    return v < 0 ? -v : v;
}

template <typename Env>
struct CholeskyShared
{
    typename Env::Ptr a; ///< n*n doubles, row-major (lower triangle used)
    typename Env::Ptr bar;
    int n = 0;
    int nthreads = 0;
    std::uint64_t seed = 0;
};

template <typename Env>
void
choleskyThread(Env& env, CholeskyShared<Env>& sh)
{
    const int n = sh.n;
    const int t = env.self();
    const int T = sh.nthreads;

    // Parallel SPD init: each thread fills its row range of the
    // symmetric matrix from the (i >= j ? i,j : j,i) generator so the
    // matrix is symmetric without cross-thread writes.
    for (int i = n * t / T; i < n * (t + 1) / T; ++i) {
        for (int j = 0; j < n; ++j) {
            int hi_idx = i >= j ? i : j;
            int lo_idx = i >= j ? j : i;
            double v = inputValue(
                sh.seed,
                static_cast<std::uint64_t>(hi_idx) * n + lo_idx);
            if (i == j)
                v += static_cast<double>(n);
            env.template st<double>(
                sh.a, static_cast<std::uint64_t>(i) * n + j, v);
        }
        env.exec(InstrClass::IntAlu, 5 * n);
    }
    // Block-cyclic column ownership (8 columns = one 64 B line of a
    // row): balanced like cyclic, line-local like blocked.
    auto owner = [&](int col) { return (col / 8) % T; };

    env.barrier(sh.bar);
    for (int k = 0; k < n; ++k) {
        if (owner(k) == t) {
            // Factor the pivot column.
            double akk = env.template ld<double>(
                sh.a, static_cast<std::uint64_t>(k) * n + k);
            double lkk = std::sqrt(akk);
            env.template st<double>(
                sh.a, static_cast<std::uint64_t>(k) * n + k, lkk);
            for (int i = k + 1; i < n; ++i) {
                double v = env.template ld<double>(
                    sh.a, static_cast<std::uint64_t>(i) * n + k);
                env.template st<double>(
                    sh.a, static_cast<std::uint64_t>(i) * n + k,
                    v / lkk);
            }
            env.exec(InstrClass::FpDiv, n - k);
        }
        env.barrier(sh.bar);

        // Trailing update of owned columns.
        for (int j = k + 1; j < n; ++j) {
            if (owner(j) != t)
                continue;
            double ljk = env.template ld<double>(
                sh.a, static_cast<std::uint64_t>(j) * n + k);
            for (int i = j; i < n; ++i) {
                double lik = env.template ld<double>(
                    sh.a, static_cast<std::uint64_t>(i) * n + k);
                double aij = env.template ld<double>(
                    sh.a, static_cast<std::uint64_t>(i) * n + j);
                env.template st<double>(
                    sh.a, static_cast<std::uint64_t>(i) * n + j,
                    aij - lik * ljk);
            }
            env.exec(InstrClass::FpMul, n - j);
            env.exec(InstrClass::FpAdd, n - j);
            env.exec(InstrClass::IntAlu, 5 * (n - j));
            env.branch(8001, j + 1 < n);
        }
        env.barrier(sh.bar);
    }
}

template <typename Env>
double
runCholesky(const WorkloadParams& p)
{
    Env main(0, p.threads);
    CholeskyShared<Env> sh;
    sh.n = p.size;
    sh.nthreads = p.threads;
    const std::uint64_t cells = static_cast<std::uint64_t>(sh.n) * sh.n;
    sh.seed = p.seed;
    sh.a = main.alloc(cells * sizeof(double));
    sh.bar = main.makeBarrier(p.threads);

    runThreads<CholeskyShared<Env>, &choleskyThread<Env>>(main,
                                                          p.threads, sh);

    // Checksum the lower triangle (the factor L).
    double checksum = 0;
    for (int i = 0; i < sh.n; ++i)
        for (int j = 0; j <= i; ++j)
            checksum += env_abs(main.template ld<double>(
                sh.a, static_cast<std::uint64_t>(i) * sh.n + j));

    main.dealloc(sh.a);
    main.freeBarrier(sh.bar);
    return checksum;
}

} // namespace workloads
} // namespace graphite
