/**
 * @file
 * Execution-environment abstraction for the workload suite.
 *
 * Every workload kernel is written once as a template over an Env that
 * provides memory, synchronization, threading, and instruction-event
 * reporting:
 *
 *  - SimEnv routes everything through graphite::api — memory references
 *    hit the simulated cache hierarchy and coherence protocol,
 *    synchronization uses the futex-based target primitives, threads are
 *    spawned through the MCP, and arithmetic is reported to the core
 *    model (direct execution).
 *  - NativeEnv executes the identical algorithm on raw host memory with
 *    std::thread — the native baseline for Table 2 and a functional
 *    cross-check: a workload must produce bit-identical checksums in
 *    both environments, which makes every kernel an end-to-end test of
 *    the coherence protocol.
 */

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/fixed_types.h"
#include "common/lockdep.h"
#include "core/api.h"

namespace graphite
{
namespace workloads
{

/** Size/thread parameters of one workload run. */
struct WorkloadParams
{
    int threads = 4;          ///< application threads (incl. main)
    int size = 64;            ///< problem dimension (kernel-specific)
    int iters = 1;            ///< time steps / repetitions
    std::uint64_t seed = 42;  ///< input-generation seed
};

/** Simulated environment: all operations route through the target API. */
class SimEnv
{
  public:
    static constexpr bool isSim = true;
    using Ptr = std::uint64_t; ///< target address

    SimEnv(int self, int nthreads) : self_(self), nthreads_(nthreads) {}

    int self() const { return self_; }
    int nthreads() const { return nthreads_; }

    /** Current simulated clock of this thread's tile. */
    cycle_t cycleNow() const { return api::cycle(); }

    Ptr alloc(std::uint64_t bytes) { return api::malloc(bytes); }
    void dealloc(Ptr p) { api::free(p); }

    template <typename T>
    T
    ld(Ptr base, std::uint64_t idx)
    {
        return api::read<T>(base + idx * sizeof(T));
    }

    template <typename T>
    void
    st(Ptr base, std::uint64_t idx, T v)
    {
        api::write<T>(base + idx * sizeof(T), v);
    }

    std::uint32_t
    atomicAdd(Ptr base, std::uint64_t idx, std::int32_t d)
    {
        return api::atomicAdd32(base + idx * 4, d);
    }

    void exec(InstrClass c, std::uint64_t n) { api::exec(c, n); }
    void branch(std::uint64_t site, bool taken)
    {
        api::branch(site, taken);
    }

    Ptr
    makeBarrier(int participants)
    {
        Ptr b = api::malloc(api::BARRIER_BYTES);
        api::barrierInit(b, participants);
        return b;
    }
    void barrier(Ptr b) { api::barrierWait(b); }
    void freeBarrier(Ptr b) { api::free(b); }

    Ptr
    makeMutex()
    {
        Ptr m = api::malloc(api::MUTEX_BYTES);
        api::mutexInit(m);
        return m;
    }
    void lock(Ptr m) { api::mutexLock(m); }
    void unlock(Ptr m) { api::mutexUnlock(m); }
    void freeMutex(Ptr m) { api::free(m); }

  private:
    int self_;
    int nthreads_;
};

/** Reusable native barrier (central, condvar-based). */
class NativeBarrier
{
  public:
    explicit NativeBarrier(int participants) : total_(participants) {}

    void
    wait()
    {
        lockdep::UniqueLock lock(mutex_);
        std::uint64_t gen = gen_;
        if (++count_ == total_) {
            count_ = 0;
            ++gen_;
            cv_.notify_all();
        } else {
            cv_.wait(lock, [&] { return gen_ != gen; });
        }
    }

  private:
    lockdep::OrderedMutex mutex_{lockdep::LockClass::workload_env};
    lockdep::CondVar cv_;
    int total_;
    int count_ = 0;
    std::uint64_t gen_ = 0;
};

/** Native environment: raw host memory, std::thread primitives. */
class NativeEnv
{
  public:
    static constexpr bool isSim = false;
    using Ptr = std::uint64_t; ///< host address as integer

    NativeEnv(int self, int nthreads) : self_(self), nthreads_(nthreads)
    {}

    int self() const { return self_; }
    int nthreads() const { return nthreads_; }

    /** Native build has no simulated clock. */
    cycle_t cycleNow() const { return 0; }

    Ptr
    alloc(std::uint64_t bytes)
    {
        void* p = ::operator new(bytes);
        std::memset(p, 0, bytes);
        return reinterpret_cast<Ptr>(p);
    }
    void dealloc(Ptr p) { ::operator delete(reinterpret_cast<void*>(p)); }

    template <typename T>
    T
    ld(Ptr base, std::uint64_t idx)
    {
        T v;
        std::memcpy(&v, reinterpret_cast<const char*>(base) +
                             idx * sizeof(T),
                    sizeof(T));
        return v;
    }

    template <typename T>
    void
    st(Ptr base, std::uint64_t idx, T v)
    {
        std::memcpy(reinterpret_cast<char*>(base) + idx * sizeof(T), &v,
                    sizeof(T));
    }

    std::uint32_t
    atomicAdd(Ptr base, std::uint64_t idx, std::int32_t d)
    {
        auto* p = reinterpret_cast<std::uint32_t*>(base + idx * 4);
        return __atomic_fetch_add(p, static_cast<std::uint32_t>(d),
                                  __ATOMIC_SEQ_CST);
    }

    void exec(InstrClass, std::uint64_t) {}
    void branch(std::uint64_t, bool) {}

    Ptr
    makeBarrier(int participants)
    {
        return reinterpret_cast<Ptr>(new NativeBarrier(participants));
    }
    void
    barrier(Ptr b)
    {
        reinterpret_cast<NativeBarrier*>(b)->wait();
    }
    void
    freeBarrier(Ptr b)
    {
        delete reinterpret_cast<NativeBarrier*>(b);
    }

    // Target-program mutexes: the app owns the nesting discipline, so
    // the class carries the MULTI flag (see lock_order.def).
    Ptr makeMutex()
    {
        return reinterpret_cast<Ptr>(new lockdep::OrderedMutex(
            lockdep::LockClass::app_target));
    }
    void lock(Ptr m)
    {
        reinterpret_cast<lockdep::OrderedMutex*>(m)->lock();
    }
    void unlock(Ptr m)
    {
        reinterpret_cast<lockdep::OrderedMutex*>(m)->unlock();
    }
    void freeMutex(Ptr m)
    {
        delete reinterpret_cast<lockdep::OrderedMutex*>(m);
    }

  private:
    int self_;
    int nthreads_;
};

/** Per-thread argument block used by the spawn drivers. */
template <typename Shared>
struct ThreadArg
{
    Shared* shared = nullptr;
    int self = 0;
    int nthreads = 0;
};

/** Simulated-thread trampoline (function-pointer friendly). */
template <typename Shared, void (*FN)(SimEnv&, Shared&)>
void
simThreadTramp(void* p)
{
    auto* a = static_cast<ThreadArg<Shared>*>(p);
    SimEnv env(a->self, a->nthreads);
    FN(env, *a->shared);
}

/**
 * Run FN on @p nthreads simulated threads (the calling thread — the
 * application main on tile 0 — participates as thread 0).
 */
template <typename Shared, void (*FN)(SimEnv&, Shared&)>
void
runThreads(SimEnv&, int nthreads, Shared& sh)
{
    std::vector<ThreadArg<Shared>> args(nthreads);
    std::vector<tile_id_t> tids;
    for (int i = 1; i < nthreads; ++i) {
        args[i] = ThreadArg<Shared>{&sh, i, nthreads};
        tids.push_back(
            api::threadSpawn(&simThreadTramp<Shared, FN>, &args[i]));
    }
    SimEnv env(0, nthreads);
    FN(env, sh);
    for (tile_id_t t : tids)
        api::threadJoin(t);
}

/** Native counterpart of runThreads(). */
template <typename Shared, void (*FN)(NativeEnv&, Shared&)>
void
runThreads(NativeEnv&, int nthreads, Shared& sh)
{
    std::vector<std::thread> threads;
    for (int i = 1; i < nthreads; ++i) {
        threads.emplace_back([&sh, i, nthreads] {
            NativeEnv env(i, nthreads);
            FN(env, sh);
        });
    }
    NativeEnv env(0, nthreads);
    FN(env, sh);
    for (auto& t : threads)
        t.join();
}

/**
 * @name Parallel-region reporting
 * A workload may record the simulated span of its parallel region
 * (excluding serial setup/checksum) so harnesses can study scaling
 * without Amdahl pollution from the measurement scaffolding.
 * Thread-hostile by design: set once by thread 0 at the end of a run.
 * @{
 */
void setLastRegionCycles(cycle_t cycles);
cycle_t lastRegionCycles();
/** @} */

/** Deterministic input generator shared by both environments. */
inline double
inputValue(std::uint64_t seed, std::uint64_t index)
{
    std::uint64_t z = seed + (index + 1) * 0x9E3779B97F4A7C15ull;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    z ^= z >> 31;
    // Map to [0, 1) with a modest mantissa so sums stay exact-ish.
    return static_cast<double>(z >> 40) * 0x1.0p-24;
}

} // namespace workloads
} // namespace graphite
