/**
 * @file
 * Parallel 1D complex FFT (SPLASH-2 "fft" analogue).
 *
 * Iterative radix-2 Cooley-Tukey over a contiguous complex array
 * (re/im interleaved). Threads split the butterflies of each stage and
 * barrier between stages; later stages touch widely separated elements,
 * producing heavy read/write sharing — the paper's worst scaler
 * (high communication-to-computation ratio) and a "perfect spatial
 * locality" case for the miss-rate study (contiguous data, §4.4).
 */

#pragma once

#include <cmath>

#include "workloads/env.h"

namespace graphite
{
namespace workloads
{

template <typename Env>
struct FftShared
{
    typename Env::Ptr data; ///< 2*n doubles, re/im interleaved
    typename Env::Ptr bar;
    int n = 0;
    int nthreads = 0;
    std::uint64_t seed = 0;
};

template <typename Env>
void
fftThread(Env& env, FftShared<Env>& sh)
{
    const int n = sh.n;

    // Parallel init in bit-reversed order (the permutation is a
    // bijection, so per-thread source ranges write disjoint targets).
    {
        const int lo = n * env.self() / sh.nthreads;
        const int hi = n * (env.self() + 1) / sh.nthreads;
        for (int i = lo; i < hi; ++i) {
            int rev = 0;
            for (int b = 1, x = i; b < n; b <<= 1, x >>= 1)
                rev = (rev << 1) | (x & 1);
            env.template st<double>(sh.data, 2 * rev,
                                    inputValue(sh.seed, i));
            env.template st<double>(sh.data, 2 * rev + 1,
                                    inputValue(sh.seed ^ 0x5555, i));
            env.exec(InstrClass::IntAlu, 8);
        }
    }
    env.barrier(sh.bar);

    for (int len = 2; len <= n; len <<= 1) {
        const int half = len / 2;
        const std::uint64_t pairs = static_cast<std::uint64_t>(n) / 2;
        const std::uint64_t lo = pairs * env.self() / sh.nthreads;
        const std::uint64_t hi = pairs * (env.self() + 1) / sh.nthreads;
        const double ang_unit = -2.0 * M_PI / len;

        for (std::uint64_t pr = lo; pr < hi; ++pr) {
            const std::uint64_t block = pr / half;
            const std::uint64_t j = pr % half;
            const std::uint64_t i1 = block * len + j;
            const std::uint64_t i2 = i1 + half;

            const double wr = std::cos(ang_unit * static_cast<double>(j));
            const double wi = std::sin(ang_unit * static_cast<double>(j));

            double ar = env.template ld<double>(sh.data, 2 * i1);
            double ai = env.template ld<double>(sh.data, 2 * i1 + 1);
            double br = env.template ld<double>(sh.data, 2 * i2);
            double bi = env.template ld<double>(sh.data, 2 * i2 + 1);

            const double tr = br * wr - bi * wi;
            const double ti = br * wi + bi * wr;
            env.template st<double>(sh.data, 2 * i1, ar + tr);
            env.template st<double>(sh.data, 2 * i1 + 1, ai + ti);
            env.template st<double>(sh.data, 2 * i2, ar - tr);
            env.template st<double>(sh.data, 2 * i2 + 1, ai - ti);

            env.exec(InstrClass::FpMul, 6);
            env.exec(InstrClass::FpAdd, 6);
            env.exec(InstrClass::IntAlu, 10);
            env.branch(2001, pr + 1 < hi);
        }
        env.barrier(sh.bar);
    }
}

template <typename Env>
double
runFft(const WorkloadParams& p)
{
    // Round the requested size up to a power of two.
    int n = 16;
    while (n < p.size)
        n <<= 1;

    Env main(0, p.threads);
    FftShared<Env> sh;
    sh.n = n;
    sh.nthreads = p.threads;
    sh.seed = p.seed;
    sh.data = main.alloc(2ull * n * sizeof(double));
    sh.bar = main.makeBarrier(p.threads);

    runThreads<FftShared<Env>, &fftThread<Env>>(main, p.threads, sh);

    double checksum = 0;
    for (int i = 0; i < 2 * n; ++i)
        checksum += main.template ld<double>(sh.data, i);

    main.dealloc(sh.data);
    main.freeBarrier(sh.bar);
    return checksum;
}

} // namespace workloads
} // namespace graphite
