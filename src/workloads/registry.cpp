#include "workloads/registry.h"

#include <atomic>

#include "common/log.h"
#include "core/simulator.h"
#include "workloads/blackscholes.h"
#include "workloads/cholesky.h"
#include "workloads/fft.h"
#include "workloads/lu.h"
#include "workloads/matmul.h"
#include "workloads/nbody.h"
#include "workloads/ocean.h"
#include "workloads/radix.h"
#include "workloads/water.h"

namespace graphite
{
namespace workloads
{

namespace
{
std::atomic<cycle_t> g_regionCycles{0};
}

void
setLastRegionCycles(cycle_t cycles)
{
    g_regionCycles.store(cycles);
}

cycle_t
lastRegionCycles()
{
    return g_regionCycles.load();
}

namespace
{

/** Default sizes chosen so every simulated run finishes in seconds. */
WorkloadParams
params(int size, int iters)
{
    WorkloadParams p;
    p.size = size;
    p.iters = iters;
    return p;
}

} // namespace

const std::vector<WorkloadInfo>&
registry()
{
    static const std::vector<WorkloadInfo> table = {
        {"cholesky", &runCholesky<NativeEnv>, &runCholesky<SimEnv>,
         params(96, 1)},
        {"fft", &runFft<NativeEnv>, &runFft<SimEnv>, params(2048, 1)},
        {"fmm", &runFmm<NativeEnv>, &runFmm<SimEnv>, params(192, 2)},
        {"lu_cont", &runLuCont<NativeEnv>, &runLuCont<SimEnv>,
         params(96, 1)},
        {"lu_non_cont", &runLuNonCont<NativeEnv>,
         &runLuNonCont<SimEnv>, params(96, 1)},
        {"ocean_cont", &runOceanCont<NativeEnv>, &runOceanCont<SimEnv>,
         params(96, 4)},
        {"ocean_non_cont", &runOceanNonCont<NativeEnv>,
         &runOceanNonCont<SimEnv>, params(96, 4)},
        {"radix", &runRadix<NativeEnv>, &runRadix<SimEnv>,
         params(16384, 2)},
        {"water_nsquared", &runWaterNsquared<NativeEnv>,
         &runWaterNsquared<SimEnv>, params(96, 2)},
        {"water_spatial", &runWaterSpatial<NativeEnv>,
         &runWaterSpatial<SimEnv>, params(256, 2)},
        {"barnes", &runBarnes<NativeEnv>, &runBarnes<SimEnv>,
         params(128, 2)},
        {"matmul", &runMatmul<NativeEnv>, &runMatmul<SimEnv>,
         params(48, 1)},
        {"blackscholes", &runBlackscholes<NativeEnv>,
         &runBlackscholes<SimEnv>, params(1024, 2)},
    };
    return table;
}

const WorkloadInfo&
findWorkload(const std::string& name)
{
    for (const WorkloadInfo& w : registry()) {
        if (w.name == name)
            return w;
    }
    fatal("unknown workload '{}'", name);
}

namespace
{

struct SimLaunch
{
    const WorkloadInfo* info;
    const WorkloadParams* params;
    double checksum;
};

void
simEntry(void* arg)
{
    auto* launch = static_cast<SimLaunch*>(arg);
    launch->checksum = launch->info->runSimBody(*launch->params);
}

} // namespace

SimRunResult
runSim(Simulator& sim, const WorkloadInfo& w, const WorkloadParams& p)
{
    if (p.threads > sim.totalTiles())
        fatal("workload '{}' wants {} threads but the target has only "
              "{} tiles",
              w.name, p.threads, sim.totalTiles());
    setLastRegionCycles(0);
    SimLaunch launch{&w, &p, 0.0};
    SimulationSummary s = sim.run(&simEntry, &launch);
    SimRunResult out;
    out.checksum = launch.checksum;
    out.simulatedCycles = s.simulatedCycles;
    out.regionCycles = lastRegionCycles();
    out.wallSeconds = s.wallSeconds;
    out.totalInstructions = s.totalInstructions;
    return out;
}

} // namespace workloads
} // namespace graphite
