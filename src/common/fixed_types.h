/**
 * @file
 * Fundamental integer types and identifiers used across the simulator.
 *
 * These mirror the vocabulary of the Graphite paper: a *target* tile is a
 * simulated core + network switch + memory-system node; a *host* process is
 * one of the (simulated) cluster processes the tiles are striped across.
 */

#pragma once

#include <cstdint>
#include <limits>

namespace graphite
{

/** Identifier of a target tile (0 .. num_tiles-1). */
using tile_id_t = std::int32_t;

/** Identifier of an application thread. */
using thread_id_t = std::int32_t;

/** Identifier of a simulated host process. */
using proc_id_t = std::int32_t;

/** Identifier of a simulated host machine. */
using machine_id_t = std::int32_t;

/** Simulated time in target clock cycles. */
using cycle_t = std::uint64_t;

/** Address in the simulated (target) address space. */
using addr_t = std::uint64_t;

/** Sentinel for "no tile". */
inline constexpr tile_id_t INVALID_TILE_ID = -1;

/** Sentinel for "no thread". */
inline constexpr thread_id_t INVALID_THREAD_ID = -1;

/** Sentinel cycle value meaning "unset". */
inline constexpr cycle_t INVALID_CYCLE =
    std::numeric_limits<cycle_t>::max();

/** Byte-size literals. */
inline constexpr std::uint64_t operator""_KiB(unsigned long long v)
{
    return v << 10;
}
inline constexpr std::uint64_t operator""_MiB(unsigned long long v)
{
    return v << 20;
}
inline constexpr std::uint64_t operator""_GiB(unsigned long long v)
{
    return v << 30;
}

} // namespace graphite
