/**
 * @file
 * Small, fast, seedable random number generator.
 *
 * All randomized model decisions (LaxP2P partner choice, workload inputs)
 * draw from explicitly seeded Rng instances so simulations are reproducible
 * given identical thread interleavings. Never uses global state.
 */

#pragma once

#include <cstdint>

namespace graphite
{

/**
 * xorshift64* generator. Tiny state, good quality for simulation use,
 * and trivially copyable so each tile/thread owns an independent stream.
 */
class Rng
{
  public:
    /** Seed the generator; a zero seed is remapped to a fixed constant. */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull)
        : state_(seed ? seed : 0x9E3779B97F4A7C15ull)
    {}

    /** @return next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t x = state_;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state_ = x;
        return x * 0x2545F4914F6CDD1Dull;
    }

    /** @return uniform integer in [0, bound). bound must be > 0. */
    std::uint64_t
    nextBounded(std::uint64_t bound)
    {
        // Multiply-shift; bias is negligible for simulation purposes.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** @return uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Raw generator state, for checkpoint serialization. */
    std::uint64_t state() const { return state_; }

    /** Restore a previously captured state verbatim. */
    void setState(std::uint64_t state) { state_ = state; }

    /** Derive an independent stream for entity @p index. */
    Rng
    fork(std::uint64_t index) const
    {
        // SplitMix-style mix of (state, index).
        std::uint64_t z = state_ + (index + 1) * 0x9E3779B97F4A7C15ull;
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
        z = z ^ (z >> 31);
        return Rng(z);
    }

  private:
    std::uint64_t state_;
};

} // namespace graphite
