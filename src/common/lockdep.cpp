#include "common/lockdep.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <pthread.h>
#include <unistd.h>

#include "common/strfmt.h"

namespace graphite::lockdep
{

namespace
{

struct ClassInfo {
    const char* name;
    ClassFlags flags;
};

constexpr ClassInfo CLASS_INFO[NUM_LOCK_CLASSES] = {
#define LOCK_CLASS(name, flags) {#name, ClassFlags::flags},
#include "common/lock_order.def"
#undef LOCK_CLASS
};

} // namespace

const char*
lockClassName(LockClass cls)
{
    int i = static_cast<int>(cls);
    if (i < 0 || i >= NUM_LOCK_CLASSES)
        return "<bad-class>";
    return CLASS_INFO[i].name;
}

ClassFlags
lockClassFlags(LockClass cls)
{
    int i = static_cast<int>(cls);
    if (i < 0 || i >= NUM_LOCK_CLASSES)
        return ClassFlags::NONE;
    return CLASS_INFO[i].flags;
}

#if GRAPHITE_LOCKDEP_ON
inline namespace ld_on
{

namespace
{

constexpr int MAX_HELD = 64;

// One lock currently held by a thread. `depth` below is bumped with
// release ordering after the entry is fully written so that the racy
// heldSnapshot() reader sees complete entries.
struct Entry {
    const OrderedMutex* mutex;
    LockClass cls;
    std::int64_t instance;
    const char* file;
    int line;
};

struct ThreadState {
    std::atomic<int> depth{0};
    Entry held[MAX_HELD];
    std::atomic<bool> alive{true};
    std::atomic<bool> waiting{false}; // blocked acquiring `pending`
    Entry pending{};
    std::uint64_t threadId = 0;
};

// Global registry of per-thread states for heldSnapshot(). States are
// heap-allocated once and recycled (never freed) so a dump racing a
// thread exit never touches freed memory. Guarded by metaMutex() —
// deliberately a raw std::mutex: lockdep must not track its own
// internals (tools/lock_audit.py allowlists this file).
std::mutex&
metaMutex()
{
    static std::mutex m;
    return m;
}

std::vector<ThreadState*>&
threadRegistry()
{
    static std::vector<ThreadState*> reg;
    return reg;
}

// Fixed-size mirror of the registry for the async-signal-safe crash
// dump: a signal handler cannot take metaMutex() or walk a vector that
// a racing push_back may be reallocating. Slots are written once
// (under metaMutex) and never change; the handler reads them with
// acquire loads only.
constexpr int MAX_THREAD_STATES = 1024;
std::atomic<ThreadState*> g_stateTable[MAX_THREAD_STATES];
std::atomic<int> g_stateCount{0};

struct ThreadHandle {
    ThreadState* state = nullptr;
    ~ThreadHandle()
    {
        if (state != nullptr) {
            state->depth.store(0, std::memory_order_relaxed);
            state->waiting.store(false, std::memory_order_relaxed);
            state->alive.store(false, std::memory_order_release);
        }
    }
};

ThreadState&
threadState()
{
    thread_local ThreadHandle handle;
    if (handle.state == nullptr) {
        std::scoped_lock lock(metaMutex());
        auto& reg = threadRegistry();
        for (ThreadState* ts : reg) {
            if (!ts->alive.load(std::memory_order_acquire)) {
                ts->alive.store(true, std::memory_order_relaxed);
                handle.state = ts;
                break;
            }
        }
        if (handle.state == nullptr) {
            handle.state = new ThreadState();
            reg.push_back(handle.state);
            int idx = g_stateCount.load(std::memory_order_relaxed);
            if (idx < MAX_THREAD_STATES) {
                g_stateTable[idx].store(handle.state,
                                        std::memory_order_release);
                g_stateCount.store(idx + 1,
                                   std::memory_order_release);
            }
        }
        handle.state->threadId =
            static_cast<std::uint64_t>(pthread_self());
    }
    return *handle.state;
}

// Class-pair edge table: edge[a][b] records the first observed
// acquisition of class b while holding class a, with both sites.
struct EdgeRec {
    std::atomic<bool> seen{false};
    const char* holderFile = nullptr;
    int holderLine = 0;
    const char* acqFile = nullptr;
    int acqLine = 0;
};

EdgeRec&
edge(LockClass from, LockClass to)
{
    static EdgeRec table[NUM_LOCK_CLASSES][NUM_LOCK_CLASSES];
    return table[static_cast<int>(from)][static_cast<int>(to)];
}

std::atomic<std::uint64_t> g_violations{0};
std::mutex&
reportMutex()
{
    static std::mutex m;
    return m;
}
std::string&
lastReportStorage()
{
    static std::string s;
    return s;
}

// Warn mode logs each distinct class pair only once.
std::atomic<bool> (&warnedTable())[NUM_LOCK_CLASSES][NUM_LOCK_CLASSES]
{
    static std::atomic<bool>
        warned[NUM_LOCK_CLASSES][NUM_LOCK_CLASSES];
    return warned;
}

bool
warnedPair(LockClass a, LockClass b)
{
    return warnedTable()[static_cast<int>(a)][static_cast<int>(b)]
        .exchange(true, std::memory_order_relaxed);
}

std::atomic<int> g_modeOverride{-1};

Mode
envMode()
{
    static Mode cached = [] {
        const char* env = std::getenv("GRAPHITE_LOCKDEP");
        if (env == nullptr)
            return Mode::Enforce;
        if (std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0)
            return Mode::Off;
        if (std::strcmp(env, "warn") == 0)
            return Mode::Warn;
        return Mode::Enforce;
    }();
    return cached;
}

std::string
describeHeld(const ThreadState& ts)
{
    std::string out;
    int depth = ts.depth.load(std::memory_order_acquire);
    for (int i = 0; i < depth && i < MAX_HELD; ++i) {
        const Entry& e = ts.held[i];
        out += strfmt("\n    [{}] '{}' instance {} acquired at {}:{}", i,
                      lockClassName(e.cls), e.instance,
                      e.file != nullptr ? e.file : "?", e.line);
    }
    return out;
}

// Report a violation. `held` is the already-held entry that conflicts
// with acquiring (cls, instance) at file:line.
void
report(const ThreadState& ts, const Entry& held, LockClass cls,
       std::int64_t instance, const char* file, int line,
       const char* rule)
{
    Mode m = mode();
    if (m == Mode::Off)
        return;
    g_violations.fetch_add(1, std::memory_order_relaxed);
    if (m == Mode::Warn && warnedPair(held.cls, cls))
        return;

    std::string msg = strfmt(
        "lockdep: lock-order violation (potential deadlock)\n"
        "  acquiring '{}' instance {} at {}:{}\n"
        "  while holding '{}' instance {} acquired at {}:{}\n"
        "  rule: {}",
        lockClassName(cls), instance, file, line,
        lockClassName(held.cls), held.instance,
        held.file != nullptr ? held.file : "?", held.line, rule);

    // If the opposite order has been observed before, name that edge's
    // sites too: the pair proves both orders occur in the codebase.
    const EdgeRec& rev = edge(cls, held.cls);
    if (cls != held.cls && rev.seen.load(std::memory_order_acquire)) {
        msg += strfmt("\n  opposite order previously observed: '{}' "
                      "held at {}:{} while acquiring '{}' at {}:{}",
                      lockClassName(cls), rev.holderFile,
                      rev.holderLine, lockClassName(held.cls),
                      rev.acqFile, rev.acqLine);
    }
    msg += "\n  full held-set (outermost first):";
    msg += describeHeld(ts);
    msg += "\n";

    {
        std::scoped_lock lock(reportMutex());
        lastReportStorage() = msg;
    }
    // fprintf, not log(): the logger's own mutexes are lockdep classes
    // and a report can fire while they are held.
    std::fputs(msg.c_str(), stderr);
    std::fflush(stderr);
    if (m == Mode::Enforce)
        std::_Exit(87);
}

// Order-check acquiring (cls, instance) against every held lock, then
// record the class-pair edges. Runs BEFORE the underlying lock() so an
// inversion is reported instead of deadlocking.
void
checkAcquire(ThreadState& ts, LockClass cls, std::int64_t instance,
             const char* file, int line)
{
    int depth = ts.depth.load(std::memory_order_relaxed);
    std::uint16_t rank = static_cast<std::uint16_t>(cls);
    for (int i = 0; i < depth; ++i) {
        const Entry& h = ts.held[i];
        if (h.cls == cls) {
            ClassFlags f = lockClassFlags(cls);
            if (f == ClassFlags::MULTI)
                continue;
            if (f == ClassFlags::ORDERED) {
                if (instance > h.instance)
                    continue;
                report(ts, h, cls, instance, file, line,
                       "same-class ORDERED locks must be acquired in "
                       "strictly ascending instance order");
            } else {
                report(ts, h, cls, instance, file, line,
                       "same-class nesting is not allowed for this "
                       "class (flags NONE)");
            }
            continue;
        }
        if (static_cast<std::uint16_t>(h.cls) >= rank) {
            report(ts, h, cls, instance, file, line,
                   strfmt("declared hierarchy (lock_order.def) puts "
                          "'{}' (rank {}) before '{}' (rank {})",
                          lockClassName(cls), rank,
                          lockClassName(h.cls),
                          static_cast<int>(h.cls))
                       .c_str());
        }
        // Record the first-seen edge with both sites (also in warn/off
        // mode: the table is how later inversions name this order).
        EdgeRec& e = edge(h.cls, cls);
        if (!e.seen.load(std::memory_order_relaxed)) {
            std::scoped_lock lock(metaMutex());
            if (!e.seen.load(std::memory_order_relaxed)) {
                e.holderFile = h.file;
                e.holderLine = h.line;
                e.acqFile = file;
                e.acqLine = line;
                e.seen.store(true, std::memory_order_release);
            }
        }
    }
}

void
push(ThreadState& ts, const OrderedMutex* m, LockClass cls,
     std::int64_t instance, const char* file, int line)
{
    int depth = ts.depth.load(std::memory_order_relaxed);
    if (depth >= MAX_HELD) {
        std::fprintf(stderr,
                     "lockdep: held-set overflow (depth %d) acquiring "
                     "'%s' at %s:%d\n",
                     depth, lockClassName(cls), file, line);
        std::fflush(stderr);
        std::_Exit(87);
    }
    Entry& e = ts.held[depth];
    e.mutex = m;
    e.cls = cls;
    e.instance = instance;
    e.file = file;
    e.line = line;
    ts.depth.store(depth + 1, std::memory_order_release);
}

void
pop(ThreadState& ts, const OrderedMutex* m)
{
    int depth = ts.depth.load(std::memory_order_relaxed);
    for (int i = depth - 1; i >= 0; --i) {
        if (ts.held[i].mutex == m) {
            for (int j = i; j < depth - 1; ++j)
                ts.held[j] = ts.held[j + 1];
            ts.depth.store(depth - 1, std::memory_order_release);
            return;
        }
    }
    std::fprintf(stderr,
                 "lockdep: unlocking '%s' which this thread does not "
                 "hold\n",
                 lockClassName(m->lockClass()));
    std::fflush(stderr);
    std::_Exit(87);
}

void
beginPending(ThreadState& ts, const OrderedMutex* m, const char* file,
             int line)
{
    ts.pending = {m, m->lockClass(), m->instance(), file, line};
    ts.waiting.store(true, std::memory_order_release);
}

void
endPending(ThreadState& ts)
{
    ts.waiting.store(false, std::memory_order_release);
}

} // namespace

Mode
mode()
{
    int ov = g_modeOverride.load(std::memory_order_relaxed);
    if (ov >= 0)
        return static_cast<Mode>(ov);
    return envMode();
}

void
setMode(Mode m)
{
    g_modeOverride.store(static_cast<int>(m),
                         std::memory_order_relaxed);
}

std::uint64_t
violationCount()
{
    return g_violations.load(std::memory_order_relaxed);
}

std::string
lastReport()
{
    std::scoped_lock lock(reportMutex());
    return lastReportStorage();
}

void
resetForTest()
{
    std::scoped_lock meta(metaMutex());
    for (int a = 0; a < NUM_LOCK_CLASSES; ++a)
        for (int b = 0; b < NUM_LOCK_CLASSES; ++b) {
            edge(static_cast<LockClass>(a), static_cast<LockClass>(b))
                .seen.store(false, std::memory_order_relaxed);
            warnedTable()[a][b].store(false,
                                      std::memory_order_relaxed);
        }
    g_violations.store(0, std::memory_order_relaxed);
    std::scoped_lock lock(reportMutex());
    lastReportStorage().clear();
}

std::vector<ThreadHeldSet>
heldSnapshot()
{
    std::vector<ThreadHeldSet> out;
    std::scoped_lock lock(metaMutex());
    for (const ThreadState* ts : threadRegistry()) {
        if (!ts->alive.load(std::memory_order_acquire))
            continue;
        int depth = ts->depth.load(std::memory_order_acquire);
        bool waiting = ts->waiting.load(std::memory_order_acquire);
        if (depth <= 0 && !waiting)
            continue;
        ThreadHeldSet set;
        set.threadId = ts->threadId;
        for (int i = 0; i < depth && i < MAX_HELD; ++i) {
            const Entry& e = ts->held[i];
            set.held.push_back({e.cls, e.instance, e.file, e.line});
        }
        set.hasPending = waiting;
        if (waiting)
            set.pending = {ts->pending.cls, ts->pending.instance,
                           ts->pending.file, ts->pending.line};
        out.push_back(std::move(set));
    }
    return out;
}

std::string
renderHeldSets(const char* indent)
{
    std::string out;
    for (const ThreadHeldSet& set : heldSnapshot()) {
        out += strfmt("{}thread {}:", indent, set.threadId);
        for (const HeldLock& h : set.held) {
            out += strfmt(" holds {}[{}]@{}:{}", lockClassName(h.cls),
                          h.instance, h.file != nullptr ? h.file : "?",
                          h.line);
        }
        if (set.hasPending) {
            out += strfmt(
                " WAITING-FOR {}[{}]@{}:{}",
                lockClassName(set.pending.cls), set.pending.instance,
                set.pending.file != nullptr ? set.pending.file : "?",
                set.pending.line);
        }
        out += "\n";
    }
    return out;
}

namespace
{

// Async-signal-safe fd writers for dumpHeldSetsToFd. Site strings are
// __builtin_FILE() literals (static storage), so writing them from a
// signal handler is safe.
void
fdStr(int fd, const char* s)
{
    std::size_t len = std::strlen(s);
    std::size_t off = 0;
    while (off < len) {
        ssize_t w = ::write(fd, s + off, len - off);
        if (w <= 0)
            return;
        off += static_cast<std::size_t>(w);
    }
}

void
fdDec(int fd, std::uint64_t v)
{
    char buf[24];
    int i = sizeof(buf);
    do {
        buf[--i] = static_cast<char>('0' + v % 10);
        v /= 10;
    } while (v != 0);
    while (i < static_cast<int>(sizeof(buf))) {
        ssize_t w = ::write(fd, buf + i, sizeof(buf) - i);
        if (w <= 0)
            return;
        i += static_cast<int>(w);
    }
}

void
fdEntry(int fd, LockClass cls, std::int64_t instance, const char* file,
        int line)
{
    fdStr(fd, lockClassName(cls));
    fdStr(fd, "[");
    if (instance < 0) {
        fdStr(fd, "-");
        instance = -instance;
    }
    fdDec(fd, static_cast<std::uint64_t>(instance));
    fdStr(fd, "]@");
    fdStr(fd, file != nullptr ? file : "?");
    fdStr(fd, ":");
    fdDec(fd, static_cast<std::uint64_t>(line < 0 ? 0 : line));
}

} // namespace

void
dumpHeldSetsToFd(int fd)
{
    int n = g_stateCount.load(std::memory_order_acquire);
    if (n > MAX_THREAD_STATES)
        n = MAX_THREAD_STATES;
    bool wroteHeader = false;
    for (int i = 0; i < n; ++i) {
        const ThreadState* ts =
            g_stateTable[i].load(std::memory_order_acquire);
        if (ts == nullptr || !ts->alive.load(std::memory_order_acquire))
            continue;
        int depth = ts->depth.load(std::memory_order_acquire);
        bool waiting = ts->waiting.load(std::memory_order_acquire);
        if (depth <= 0 && !waiting)
            continue;
        if (!wroteHeader) {
            fdStr(fd, "=== lockdep held-sets ===\n");
            wroteHeader = true;
        }
        fdStr(fd, "thread ");
        fdDec(fd, ts->threadId);
        fdStr(fd, ":");
        if (depth > MAX_HELD)
            depth = MAX_HELD;
        for (int j = 0; j < depth; ++j) {
            const Entry& e = ts->held[j];
            fdStr(fd, " holds ");
            fdEntry(fd, e.cls, e.instance, e.file, e.line);
        }
        if (waiting) {
            fdStr(fd, " WAITING-FOR ");
            fdEntry(fd, ts->pending.cls, ts->pending.instance,
                    ts->pending.file, ts->pending.line);
        }
        fdStr(fd, "\n");
    }
}

void
OrderedMutex::lock(const char* file, int line)
{
    ThreadState& ts = threadState();
    if (mode() != Mode::Off)
        checkAcquire(ts, cls_, instance_, file, line);
    if (!m_.try_lock()) {
        beginPending(ts, this, file, line);
        m_.lock();
        endPending(ts);
    }
    push(ts, this, cls_, instance_, file, line);
}

bool
OrderedMutex::try_lock(const char* file, int line)
{
    ThreadState& ts = threadState();
    if (mode() != Mode::Off)
        checkAcquire(ts, cls_, instance_, file, line);
    if (!m_.try_lock())
        return false;
    push(ts, this, cls_, instance_, file, line);
    return true;
}

void
OrderedMutex::unlock()
{
    pop(threadState(), this);
    m_.unlock();
}

void
UniqueLock::lock(const char* file, int line)
{
    ThreadState& ts = threadState();
    if (mode() != Mode::Off)
        checkAcquire(ts, m_->lockClass(), m_->instance(), file, line);
    if (!raw_.try_lock()) {
        beginPending(ts, m_, file, line);
        raw_.lock();
        endPending(ts);
    }
    push(ts, m_, m_->lockClass(), m_->instance(), file, line);
}

bool
UniqueLock::try_lock(const char* file, int line)
{
    ThreadState& ts = threadState();
    if (mode() != Mode::Off)
        checkAcquire(ts, m_->lockClass(), m_->instance(), file, line);
    if (!raw_.try_lock())
        return false;
    push(ts, m_, m_->lockClass(), m_->instance(), file, line);
    return true;
}

void
UniqueLock::unlock()
{
    pop(threadState(), m_);
    raw_.unlock();
}

void
CondVar::beginWait(UniqueLock& l, const char* file, int line)
{
    // The waited mutex leaves the held-set for the duration of the
    // wait (the thread does not hold it while blocked). Requiring it
    // to be innermost catches waits that would release a mid-stack
    // lock while keeping locks acquired under it.
    ThreadState& ts = threadState();
    int depth = ts.depth.load(std::memory_order_relaxed);
    if (depth <= 0 || ts.held[depth - 1].mutex != l.mutex()) {
        if (mode() != Mode::Off) {
            Entry e = depth > 0 ? ts.held[depth - 1] : Entry{};
            report(ts, e, l.mutex()->lockClass(),
                   l.mutex()->instance(), file, line,
                   "condvar wait requires the waited mutex to be the "
                   "innermost held lock");
        }
    }
    pop(ts, l.mutex());
    beginPending(ts, l.mutex(), file, line);
}

void
CondVar::endWait(UniqueLock& l, const char* file, int line)
{
    ThreadState& ts = threadState();
    endPending(ts);
    if (mode() != Mode::Off)
        checkAcquire(ts, l.mutex()->lockClass(),
                     l.mutex()->instance(), file, line);
    push(ts, l.mutex(), l.mutex()->lockClass(),
         l.mutex()->instance(), file, line);
}

void
CondVar::wait(UniqueLock& l, const char* file, int line)
{
    beginWait(l, file, line);
    cv_.wait(l.raw());
    endWait(l, file, line);
}

} // namespace ld_on
#endif // GRAPHITE_LOCKDEP_ON

} // namespace graphite::lockdep
