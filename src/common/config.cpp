#include "common/config.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <fstream>
#include <sstream>

#include "common/log.h"

namespace graphite
{

namespace
{

std::string
trim(std::string_view s)
{
    size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return std::string(s.substr(b, e - b));
}

std::string
stripComment(std::string_view line)
{
    size_t pos = line.find_first_of("#;");
    if (pos != std::string_view::npos)
        line = line.substr(0, pos);
    return std::string(line);
}

} // namespace

void
Config::parseText(std::string_view text)
{
    std::string section;
    size_t start = 0;
    int line_no = 0;
    while (start <= text.size()) {
        size_t end = text.find('\n', start);
        if (end == std::string_view::npos)
            end = text.size();
        std::string line = trim(stripComment(text.substr(start,
                                                         end - start)));
        start = end + 1;
        ++line_no;
        if (line.empty())
            continue;
        if (line.front() == '[') {
            if (line.back() != ']')
                fatal("config line {}: malformed section header '{}'",
                      line_no, line);
            section = trim(std::string_view(line).substr(1,
                                                         line.size() - 2));
            continue;
        }
        size_t eq = line.find('=');
        if (eq == std::string::npos)
            fatal("config line {}: expected 'key = value', got '{}'",
                  line_no, line);
        std::string key = trim(std::string_view(line).substr(0, eq));
        std::string value = trim(std::string_view(line).substr(eq + 1));
        if (key.empty())
            fatal("config line {}: empty key", line_no);
        if (!section.empty())
            key = section + "/" + key;
        values_[key] = value;
    }
}

void
Config::parseFile(const std::string& path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open config file '{}'", path);
    std::stringstream ss;
    ss << in.rdbuf();
    parseText(ss.str());
}

void
Config::setOverride(std::string_view assignment)
{
    size_t eq = assignment.find('=');
    if (eq == std::string_view::npos)
        fatal("malformed config override '{}' (expected key=value)",
              std::string(assignment));
    std::string key = trim(assignment.substr(0, eq));
    std::string value = trim(assignment.substr(eq + 1));
    if (key.empty())
        fatal("malformed config override '{}' (empty key)",
              std::string(assignment));
    values_[key] = value;
}

void
Config::set(const std::string& key, const std::string& value)
{
    values_[key] = value;
}

void
Config::setInt(const std::string& key, std::int64_t value)
{
    values_[key] = std::to_string(value);
}

void
Config::setBool(const std::string& key, bool value)
{
    values_[key] = value ? "true" : "false";
}

void
Config::setDouble(const std::string& key, double value)
{
    std::ostringstream os;
    os.precision(17);
    os << value;
    values_[key] = os.str();
}

bool
Config::has(const std::string& key) const
{
    return values_.count(key) != 0;
}

std::optional<std::string>
Config::lookup(const std::string& key) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return std::nullopt;
    return it->second;
}

std::string
Config::getString(const std::string& key) const
{
    auto v = lookup(key);
    if (!v)
        fatal("missing required config key '{}'", key);
    return *v;
}

std::string
Config::getString(const std::string& key, const std::string& dflt) const
{
    return lookup(key).value_or(dflt);
}

std::int64_t
Config::getInt(const std::string& key) const
{
    auto v = lookup(key);
    if (!v)
        fatal("missing required config key '{}'", key);
    std::int64_t out = 0;
    const char* first = v->data();
    const char* last = v->data() + v->size();
    auto [ptr, ec] = std::from_chars(first, last, out);
    if (ec != std::errc() || ptr != last)
        fatal("config key '{}': '{}' is not an integer", key, *v);
    return out;
}

std::int64_t
Config::getInt(const std::string& key, std::int64_t dflt) const
{
    return has(key) ? getInt(key) : dflt;
}

double
Config::getDouble(const std::string& key) const
{
    auto v = lookup(key);
    if (!v)
        fatal("missing required config key '{}'", key);
    try {
        size_t pos = 0;
        double out = std::stod(*v, &pos);
        if (pos != v->size())
            fatal("config key '{}': '{}' is not a number", key, *v);
        return out;
    } catch (const std::invalid_argument&) {
        fatal("config key '{}': '{}' is not a number", key, *v);
    } catch (const std::out_of_range&) {
        fatal("config key '{}': '{}' is out of range", key, *v);
    }
}

double
Config::getDouble(const std::string& key, double dflt) const
{
    return has(key) ? getDouble(key) : dflt;
}

bool
Config::getBool(const std::string& key) const
{
    auto v = lookup(key);
    if (!v)
        fatal("missing required config key '{}'", key);
    std::string s = *v;
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (s == "true" || s == "1" || s == "yes" || s == "on")
        return true;
    if (s == "false" || s == "0" || s == "no" || s == "off")
        return false;
    fatal("config key '{}': '{}' is not a boolean", key, *v);
}

bool
Config::getBool(const std::string& key, bool dflt) const
{
    return has(key) ? getBool(key) : dflt;
}

std::vector<std::string>
Config::keysWithPrefix(const std::string& prefix) const
{
    std::vector<std::string> out;
    for (const auto& [k, v] : values_) {
        if (k.compare(0, prefix.size(), prefix) == 0)
            out.push_back(k);
    }
    return out;
}

std::string
Config::toString() const
{
    std::ostringstream os;
    for (const auto& [k, v] : values_)
        os << k << " = " << v << "\n";
    return os.str();
}

Config
defaultTargetConfig()
{
    Config cfg;
    cfg.parseText(R"cfg(
# ---- Target architecture (paper Table 1) ----
[general]
total_tiles            = 32
num_processes          = 1
clock_frequency_ghz    = 1.0
enable_stats           = true

[perf_model/core]
type                   = in_order
frequency_ghz          = 1.0
load_queue_size        = 8
store_buffer_size      = 8

[perf_model/branch_predictor]
type                   = two_bit      ; none | always_taken | one_bit | two_bit
size                   = 1024
mispredict_penalty     = 14

[perf_model/l1_icache]
enabled                = true
cache_size             = 32768        ; 32 KB
associativity          = 8
line_size              = 64
access_latency         = 1
replacement            = lru

[perf_model/l1_dcache]
enabled                = true
cache_size             = 32768        ; 32 KB
associativity          = 8
line_size              = 64
access_latency         = 1
replacement            = lru

[perf_model/l2_cache]
enabled                = true
cache_size             = 3145728      ; 3 MB
associativity          = 24
line_size              = 64
access_latency         = 9
replacement            = lru

[perf_model/dram]
latency_ns             = 100
total_bandwidth_gbps   = 5.13         ; split evenly across per-tile controllers
queue_model_enabled    = true

[caching_protocol]
type                   = dir_msi      ; dir_msi | dir_mesi
directory_type         = full_map     ; full_map | limited_no_broadcast | limitless
max_sharers            = 4            ; for limited/limitless directories
limitless_software_trap_penalty = 100
directory_access_latency = 10

[mem]
miss_classification    = true

[network]
memory_model           = emesh_contention  ; magic | emesh_hop | emesh_contention
app_model              = emesh_contention
system_model           = magic
hop_latency            = 2
link_bandwidth_bytes   = 8             ; bytes per cycle per link
queue_model_window     = 64
queue_outlier_window   = 100000       ; clamp span around global progress
queue_max_backlog      = 10000        ; finite-buffer back-pressure bound

[sync]
model                  = lax           ; lax | lax_barrier | lax_p2p
quantum                = 1000          ; barrier interval, cycles
slack                  = 100000        ; LaxP2P slack, cycles
check_interval         = 200           ; instructions between sync checks

[transport]
type                      = in_process ; in_process | unix_socket
intra_process_latency_us  = 0.5
inter_process_latency_us  = 50        ; one-way, gigabit-class LAN
inter_process_bandwidth_mbps = 1000

[system]
syscall_cost           = 100          ; target cycles per syscall round trip
spawn_cost             = 1000         ; target cycles charged to a new thread

[host]
cores_per_machine      = 8
processes_per_machine  = 1
host_clock_ghz         = 3.16
native_ipc             = 1.0
instruction_model_cost = 90           ; host cycles to model one instruction
memory_event_cost      = 420          ; host cycles per memory access modeled
miss_event_cost        = 2000         ; host cycles per coherence transaction
message_send_cost      = 600          ; host cycles per transported message
inter_process_byte_cost = 2           ; extra host cycles per socket byte
syscall_host_cost      = 3000         ; host cycles per MCP syscall
barrier_base_us        = 5
stall_exposure         = 0.02
init_seconds_per_process = 1.0

[stack]
stack_size_per_thread  = 2097152      ; 2 MB simulated stacks

[rng]
seed                   = 42

[check]
validate_at_shutdown   = true         ; coherence check when run() ends
inject_fault           = none         ; none | drop_invalidation | stale_dram_fill | lost_writeback | skip_release_fence
fault_after            = 4            ; opportunities to spare before firing
fault_addr_below       = 0            ; 0 = no address filter
)cfg");
    return cfg;
}

} // namespace graphite
