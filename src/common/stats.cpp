#include "common/lockdep.h"
#include "common/stats.h"

#include <algorithm>
#include <bit>
#include <sstream>

#include "common/log.h"
#include "snapshot/snapshot.h"

namespace graphite
{

// ------------------------------------------------------------ HistogramStat

void
HistogramStat::record(stat_t value)
{
    buckets_[std::bit_width(value)].fetch_add(1,
                                              std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    stat_t cur = min_.load(std::memory_order_relaxed);
    while (value < cur &&
           !min_.compare_exchange_weak(cur, value,
                                       std::memory_order_relaxed)) {
    }
    cur = max_.load(std::memory_order_relaxed);
    while (value > cur &&
           !max_.compare_exchange_weak(cur, value,
                                       std::memory_order_relaxed)) {
    }
}

double
HistogramStat::mean() const
{
    stat_t n = count();
    return n == 0 ? 0.0
                  : static_cast<double>(sum()) / static_cast<double>(n);
}

stat_t
HistogramStat::bucket(int i) const
{
    GRAPHITE_ASSERT(i >= 0 && i < NUM_BUCKETS);
    return buckets_[i].load(std::memory_order_relaxed);
}

stat_t
HistogramStat::percentileApprox(double p) const
{
    stat_t n = count();
    if (n == 0)
        return 0;
    if (p < 0.0)
        p = 0.0;
    if (p > 1.0)
        p = 1.0;
    // Rank of the p-th sample (1-based, ceil).
    auto rank = static_cast<stat_t>(p * static_cast<double>(n));
    if (rank == 0)
        rank = 1;
    stat_t seen = 0;
    for (int i = 0; i < NUM_BUCKETS; ++i) {
        seen += bucket(i);
        if (seen >= rank) {
            // Upper bound of bucket i: largest value of bit-width i.
            return i == 0 ? 0 : (stat_t{1} << i) - 1;
        }
    }
    return max();
}

std::string
HistogramStat::summary() const
{
    std::ostringstream os;
    os << "count=" << count() << " mean=" << mean()
       << " min=" << min() << " p50<=" << percentileApprox(0.5)
       << " p99<=" << percentileApprox(0.99) << " max=" << max();
    return os.str();
}

void
HistogramStat::reset()
{
    for (auto& b : buckets_)
        b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    min_.store(~stat_t{0}, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
}

void
HistogramStat::saveState(snapshot::SnapshotWriter& w) const
{
    for (const auto& b : buckets_)
        w.u64(b.load(std::memory_order_relaxed));
    w.u64(count_.load(std::memory_order_relaxed));
    w.u64(sum_.load(std::memory_order_relaxed));
    // Raw min_ (all-ones when empty), not the cooked min() accessor, so
    // a restored histogram keeps accepting smaller samples correctly.
    w.u64(min_.load(std::memory_order_relaxed));
    w.u64(max_.load(std::memory_order_relaxed));
}

void
HistogramStat::loadState(snapshot::SnapshotReader& r)
{
    for (auto& b : buckets_)
        b.store(r.u64(), std::memory_order_relaxed);
    count_.store(r.u64(), std::memory_order_relaxed);
    sum_.store(r.u64(), std::memory_order_relaxed);
    min_.store(r.u64(), std::memory_order_relaxed);
    max_.store(r.u64(), std::memory_order_relaxed);
}

// ------------------------------------------------------------ StatsRegistry

void
StatsRegistry::checkNewName(const std::string& name) const
{
    // Caller holds mutex_.
    if (counters_.count(name) || atomicCounters_.count(name) ||
        gauges_.count(name) || histograms_.count(name))
        panic("duplicate stat registration: {}", name);
}

void
StatsRegistry::registerCounter(const std::string& name,
                               const stat_t* counter)
{
    lockdep::Guard lock(mutex_);
    checkNewName(name);
    counters_.emplace(name, counter);
}

void
StatsRegistry::registerCounter(const std::string& name,
                               const atomic_stat_t* counter)
{
    lockdep::Guard lock(mutex_);
    checkNewName(name);
    atomicCounters_.emplace(name, counter);
}

void
StatsRegistry::registerGauge(const std::string& name, gauge_fn fn)
{
    GRAPHITE_ASSERT(fn != nullptr);
    lockdep::Guard lock(mutex_);
    checkNewName(name);
    gauges_.emplace(name, std::move(fn));
}

void
StatsRegistry::registerHistogram(const std::string& name,
                                 const HistogramStat* histogram)
{
    lockdep::Guard lock(mutex_);
    checkNewName(name);
    histograms_.emplace(name, histogram);
}

stat_t
StatsRegistry::get(const std::string& name) const
{
    lockdep::Guard lock(mutex_);
    if (auto it = counters_.find(name); it != counters_.end())
        return *it->second;
    if (auto it = atomicCounters_.find(name);
        it != atomicCounters_.end())
        return it->second->load(std::memory_order_relaxed);
    if (auto it = gauges_.find(name); it != gauges_.end())
        return it->second();
    fatal("unknown statistic '{}'", name);
}

bool
StatsRegistry::has(const std::string& name) const
{
    lockdep::Guard lock(mutex_);
    return counters_.count(name) != 0 ||
           atomicCounters_.count(name) != 0 ||
           gauges_.count(name) != 0 || histograms_.count(name) != 0;
}

const HistogramStat*
StatsRegistry::histogram(const std::string& name) const
{
    lockdep::Guard lock(mutex_);
    auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : it->second;
}

stat_t
StatsRegistry::sumMatching(const std::string& prefix,
                           const std::string& suffix,
                           MatchMode mode) const
{
    lockdep::Guard lock(mutex_);
    stat_t total = 0;
    std::size_t matched = 0;
    auto scan = [&](const auto& map, const auto& value_of) {
        for (auto it = map.lower_bound(prefix); it != map.end(); ++it) {
            const std::string& name = it->first;
            if (name.compare(0, prefix.size(), prefix) != 0)
                break;
            if (name.size() >= prefix.size() + suffix.size() &&
                name.compare(name.size() - suffix.size(), suffix.size(),
                             suffix) == 0) {
                total += value_of(it->second);
                ++matched;
            }
        }
    };
    scan(counters_, [](const stat_t* p) { return *p; });
    scan(atomicCounters_, [](const atomic_stat_t* p) {
        return p->load(std::memory_order_relaxed);
    });
    scan(gauges_, [](const gauge_fn& fn) { return fn(); });
    if (mode == MatchMode::Strict && matched == 0)
        fatal("sumMatching: no statistic matches '{}<id>{}'", prefix,
              suffix);
    return total;
}

std::vector<std::string>
StatsRegistry::names() const
{
    lockdep::Guard lock(mutex_);
    std::vector<std::string> out;
    out.reserve(counters_.size() + atomicCounters_.size() +
                gauges_.size() + histograms_.size());
    for (const auto& [name, ptr] : counters_)
        out.push_back(name);
    for (const auto& [name, ptr] : atomicCounters_)
        out.push_back(name);
    for (const auto& [name, fn] : gauges_)
        out.push_back(name);
    for (const auto& [name, h] : histograms_)
        out.push_back(name);
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<std::string>
StatsRegistry::histogramNames() const
{
    lockdep::Guard lock(mutex_);
    std::vector<std::string> out;
    out.reserve(histograms_.size());
    for (const auto& [name, h] : histograms_)
        out.push_back(name);
    return out;
}

std::vector<std::pair<std::string, stat_t>>
StatsRegistry::snapshot() const
{
    lockdep::Guard lock(mutex_);
    std::vector<std::pair<std::string, stat_t>> out;
    out.reserve(counters_.size() + atomicCounters_.size() +
                gauges_.size() + 2 * histograms_.size());
    for (const auto& [name, ptr] : counters_)
        out.emplace_back(name, *ptr);
    for (const auto& [name, ptr] : atomicCounters_)
        out.emplace_back(name, ptr->load(std::memory_order_relaxed));
    for (const auto& [name, fn] : gauges_)
        out.emplace_back(name, fn());
    for (const auto& [name, h] : histograms_) {
        out.emplace_back(name + ".count", h->count());
        out.emplace_back(name + ".sum", h->sum());
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::string
StatsRegistry::dump() const
{
    lockdep::Guard lock(mutex_);
    // Merge all kinds into one sorted listing.
    std::map<std::string, std::string> lines;
    for (const auto& [name, ptr] : counters_)
        lines[name] = std::to_string(*ptr);
    for (const auto& [name, ptr] : atomicCounters_)
        lines[name] =
            std::to_string(ptr->load(std::memory_order_relaxed));
    for (const auto& [name, fn] : gauges_)
        lines[name] = std::to_string(fn());
    for (const auto& [name, h] : histograms_)
        lines[name] = h->summary();
    std::ostringstream os;
    for (const auto& [name, value] : lines)
        os << name << " = " << value << "\n";
    return os.str();
}

void
StatsRegistry::clear()
{
    lockdep::Guard lock(mutex_);
    counters_.clear();
    atomicCounters_.clear();
    gauges_.clear();
    histograms_.clear();
}

} // namespace graphite
