#include "common/stats.h"

#include <sstream>

#include "common/log.h"

namespace graphite
{

void
StatsRegistry::registerCounter(const std::string& name,
                               const stat_t* counter)
{
    std::scoped_lock lock(mutex_);
    auto [it, inserted] = counters_.emplace(name, counter);
    if (!inserted)
        panic("duplicate stat registration: {}", name);
}

stat_t
StatsRegistry::get(const std::string& name) const
{
    std::scoped_lock lock(mutex_);
    auto it = counters_.find(name);
    if (it == counters_.end())
        fatal("unknown statistic '{}'", name);
    return *it->second;
}

bool
StatsRegistry::has(const std::string& name) const
{
    std::scoped_lock lock(mutex_);
    return counters_.count(name) != 0;
}

stat_t
StatsRegistry::sumMatching(const std::string& prefix,
                           const std::string& suffix) const
{
    std::scoped_lock lock(mutex_);
    stat_t total = 0;
    for (auto it = counters_.lower_bound(prefix); it != counters_.end();
         ++it) {
        const std::string& name = it->first;
        if (name.compare(0, prefix.size(), prefix) != 0)
            break;
        if (name.size() >= prefix.size() + suffix.size() &&
            name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) == 0) {
            total += *it->second;
        }
    }
    return total;
}

std::vector<std::string>
StatsRegistry::names() const
{
    std::scoped_lock lock(mutex_);
    std::vector<std::string> out;
    out.reserve(counters_.size());
    for (const auto& [name, ptr] : counters_)
        out.push_back(name);
    return out;
}

std::string
StatsRegistry::dump() const
{
    std::scoped_lock lock(mutex_);
    std::ostringstream os;
    for (const auto& [name, ptr] : counters_)
        os << name << " = " << *ptr << "\n";
    return os.str();
}

void
StatsRegistry::clear()
{
    std::scoped_lock lock(mutex_);
    counters_.clear();
}

} // namespace graphite
