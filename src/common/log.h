/**
 * @file
 * Status-message and error-handling helpers.
 *
 * Follows the gem5 discipline:
 *  - panic():  a simulator bug — something that must never happen regardless
 *              of user input. Aborts (may dump core).
 *  - fatal():  the simulation cannot continue due to a user error (bad
 *              configuration, invalid arguments). Exits with an error code
 *              by throwing FatalError so tests can assert on it.
 *  - warn():   functionality may be imprecise but the run can continue.
 *  - inform(): purely informational status.
 */

#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <string_view>

#include "common/strfmt.h"

namespace graphite
{

/** Exception thrown by fatal(); carries the formatted message. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string& msg)
        : std::runtime_error(msg)
    {}
};

namespace log_detail
{
/** Global verbosity: 0 = quiet (errors only), 1 = warn, 2 = inform,
 *  3 = debug. */
int& verbosity();

void emit(std::string_view tag, std::string_view msg);
} // namespace log_detail

/** Set global log verbosity (0 quiet, 1 warn, 2 inform, 3 debug). */
void setLogVerbosity(int level);

/** Get global log verbosity. */
int logVerbosity();

/**
 * Configure per-component log levels from a filter spec:
 *
 *     "net:debug,mem:warn"    net at debug, mem at warn, others default
 *     "debug"                 bare level sets the global default
 *     "*:info"                equivalent spelling of the default
 *
 * Levels: quiet | warn | info | debug (numeric 0-3 also accepted).
 * Component names match the tags passed to warnc()/informc()/debugc().
 * Malformed entries are reported via warn() and skipped — a bad filter
 * must never kill a run. An empty spec clears all component overrides.
 */
void setLogFilter(std::string_view spec);

/**
 * Effective verbosity for @p component: its override if one is set,
 * else the global verbosity.
 */
int logComponentVerbosity(std::string_view component);

/** Apply the GRAPHITE_LOG environment variable, if set. */
void initLogFilterFromEnv();

/**
 * Report a condition that is the user's fault and abort the simulation by
 * throwing FatalError.
 */
template <typename... Args>
[[noreturn]] void
fatal(std::string_view fmt, Args&&... args)
{
    std::string msg = strfmt(fmt, std::forward<Args>(args)...);
    log_detail::emit("fatal", msg);
    throw FatalError(msg);
}

/**
 * Report a simulator bug and abort the process.
 */
template <typename... Args>
[[noreturn]] void
panic(std::string_view fmt, Args&&... args)
{
    std::string msg = strfmt(fmt, std::forward<Args>(args)...);
    log_detail::emit("panic", msg);
    std::abort();
}

/** Warn about possibly-imprecise behavior; the run continues. */
template <typename... Args>
void
warn(std::string_view fmt, Args&&... args)
{
    if (log_detail::verbosity() >= 1)
        log_detail::emit("warn", strfmt(fmt, std::forward<Args>(args)...));
}

/** Informational status message. */
template <typename... Args>
void
inform(std::string_view fmt, Args&&... args)
{
    if (log_detail::verbosity() >= 2)
        log_detail::emit("info", strfmt(fmt, std::forward<Args>(args)...));
}

/**
 * @name Component-tagged logging
 * Like warn()/inform(), but filtered per component (see setLogFilter),
 * so e.g. GRAPHITE_LOG=net:debug floods only the network traces.
 * Components are short prefixes: "net", "mem", "sync", "core", "obs".
 * @{
 */
template <typename... Args>
void
warnc(std::string_view component, std::string_view fmt, Args&&... args)
{
    if (logComponentVerbosity(component) >= 1)
        log_detail::emit(strfmt("warn:{}", component),
                         strfmt(fmt, std::forward<Args>(args)...));
}

template <typename... Args>
void
informc(std::string_view component, std::string_view fmt, Args&&... args)
{
    if (logComponentVerbosity(component) >= 2)
        log_detail::emit(strfmt("info:{}", component),
                         strfmt(fmt, std::forward<Args>(args)...));
}

/** Debug chatter; off unless a filter raises the component to debug. */
template <typename... Args>
void
debugc(std::string_view component, std::string_view fmt, Args&&... args)
{
    if (logComponentVerbosity(component) >= 3)
        log_detail::emit(strfmt("debug:{}", component),
                         strfmt(fmt, std::forward<Args>(args)...));
}
/** @} */

/**
 * Assert a simulator invariant; violation is a bug (panics).
 * Enabled in all build types, unlike assert().
 */
#define GRAPHITE_ASSERT(cond, ...)                                         \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::graphite::panic("assertion failed: {} ({}:{})", #cond,       \
                              __FILE__, __LINE__);                         \
        }                                                                  \
    } while (0)

} // namespace graphite
