/**
 * @file
 * Hierarchical runtime configuration.
 *
 * Graphite is configured entirely through run-time parameters (paper §2):
 * every model is a swappable module selected and parameterized by config
 * keys. Keys are slash-separated paths such as
 * "network/memory_model" or "perf_model/l2_cache/associativity".
 *
 * The text format is INI-like:
 *
 *     [perf_model/l2_cache]
 *     associativity = 24
 *     cache_size    = 3145728    ; bytes
 *
 * with '#' or ';' comments, section headers composing with key names, and
 * later definitions overriding earlier ones (so command-line overrides can
 * simply be appended).
 */

#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace graphite
{

/**
 * Key/value configuration store with typed accessors.
 *
 * All getters come in two forms: with a default (returns the default when
 * the key is absent) and without (calls fatal() when the key is absent,
 * because a missing required parameter is a user error).
 */
class Config
{
  public:
    Config() = default;

    /** Parse INI-style text, merging into this config (later wins). */
    void parseText(std::string_view text);

    /** Load and parse a config file. Fatal if unreadable. */
    void parseFile(const std::string& path);

    /**
     * Apply a single "path/key=value" override (command-line style).
     * Fatal on malformed input.
     */
    void setOverride(std::string_view assignment);

    /** Set a key programmatically. */
    void set(const std::string& key, const std::string& value);
    void setInt(const std::string& key, std::int64_t value);
    void setBool(const std::string& key, bool value);
    void setDouble(const std::string& key, double value);

    /** @return true when the key is present. */
    bool has(const std::string& key) const;

    /** Required getters — fatal() when missing or malformed. */
    std::string getString(const std::string& key) const;
    std::int64_t getInt(const std::string& key) const;
    double getDouble(const std::string& key) const;
    bool getBool(const std::string& key) const;

    /** Defaulted getters. */
    std::string getString(const std::string& key,
                          const std::string& dflt) const;
    std::int64_t getInt(const std::string& key, std::int64_t dflt) const;
    double getDouble(const std::string& key, double dflt) const;
    bool getBool(const std::string& key, bool dflt) const;

    /** All keys under a prefix (for enumeration in tests/tools). */
    std::vector<std::string> keysWithPrefix(const std::string& prefix) const;

    /** Render the full config as sorted "key = value" lines. */
    std::string toString() const;

  private:
    std::optional<std::string> lookup(const std::string& key) const;

    std::map<std::string, std::string> values_;
};

/**
 * @return a Config pre-populated with the paper's Table 1 target
 * architecture parameters (1 GHz clock, 32 KB 8-way L1s, 3 MB 24-way L2,
 * 64 B lines, full-map directory MSI, 5.13 GB/s DRAM, mesh interconnect)
 * plus this implementation's model defaults.
 */
Config defaultTargetConfig();

} // namespace graphite
