/**
 * @file
 * Aligned text-table rendering for benchmark harness output.
 *
 * Every bench binary regenerates one of the paper's tables or figures by
 * printing rows; this helper keeps their output uniform and diff-friendly.
 */

#pragma once

#include <string>
#include <vector>

namespace graphite
{

/** Builds and renders a column-aligned table. */
class TextTable
{
  public:
    /** Set header cells. */
    void header(std::vector<std::string> cells);

    /** Append one row. Rows may be ragged; short rows are padded. */
    void row(std::vector<std::string> cells);

    /** Convenience: format a double with @p precision digits. */
    static std::string num(double v, int precision = 2);

    /** Render with 2-space gutters and a separator under the header. */
    std::string render() const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace graphite
