/**
 * @file
 * Simple named-counter statistics registry.
 *
 * Models register counters per tile under hierarchical names
 * ("tile.3.l2_cache.misses"). Counters are plain 64-bit values owned by
 * the registering model; the registry only stores (name -> pointer) so
 * increments are free of any locking on the hot path. Aggregation helpers
 * sum counters across tiles at reporting time.
 */

#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace graphite
{

/** One statistic: a 64-bit counter with atomic-free single-writer usage. */
using stat_t = std::uint64_t;

/**
 * Registry of named counters.
 *
 * Thread-safety: registration is mutex-protected (cold path); reads used
 * for reporting take the same mutex. Counter increments touch only the
 * owner's memory.
 */
class StatsRegistry
{
  public:
    /**
     * Register a counter. The pointed-to storage must outlive the
     * registry or be unregistered via clear().
     */
    void registerCounter(const std::string& name, const stat_t* counter);

    /** @return value of a named counter; fatal if unknown. */
    stat_t get(const std::string& name) const;

    /** @return true if the counter exists. */
    bool has(const std::string& name) const;

    /**
     * Sum all counters whose name matches "prefix<id>suffix" over ids —
     * e.g. sumOver("tile.", ".l2.misses") adds tile.0.l2.misses,
     * tile.1.l2.misses, ... Missing entries contribute zero.
     */
    stat_t sumMatching(const std::string& prefix,
                       const std::string& suffix) const;

    /** All registered names, sorted. */
    std::vector<std::string> names() const;

    /** Render "name = value" lines for every counter. */
    std::string dump() const;

    /** Drop all registrations. */
    void clear();

  private:
    mutable std::mutex mutex_;
    std::map<std::string, const stat_t*> counters_;
};

} // namespace graphite
