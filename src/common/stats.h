/**
 * @file
 * Named-statistics registry: counters, gauges, and histograms.
 *
 * Models register statistics per tile under hierarchical names
 * ("tile.3.l2_cache.misses"). Three kinds are supported:
 *
 *  - counters:   plain 64-bit values owned by the registering model; the
 *    registry only stores (name -> pointer) so increments are free of
 *    any locking on the hot path.
 *  - gauges:     callbacks evaluated at read time, for values derived
 *    from model state (atomic clocks, sums over components). Gauges make
 *    interval snapshotting possible without invading every model.
 *  - histograms: power-of-two-bucketed distributions (HistogramStat)
 *    for latency-style values where a single counter hides the shape.
 *
 * Aggregation helpers sum statistics across tiles at reporting time;
 * snapshot() flattens everything to (name, value) pairs for the
 * obs-layer interval sampler.
 */

#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>
#include "common/lockdep.h"

namespace graphite
{

namespace snapshot
{
class SnapshotWriter;
class SnapshotReader;
} // namespace snapshot

/** One statistic: a 64-bit counter with atomic-free single-writer usage. */
using stat_t = std::uint64_t;

/**
 * A shared statistic: incremented (relaxed) by concurrent writers,
 * readable at any time without tearing. Used for aggregates that many
 * application threads bump from the memory-system hot path.
 */
using atomic_stat_t = std::atomic<stat_t>;

/** A gauge: evaluated at read time. Must be safe to call concurrently. */
using gauge_fn = std::function<stat_t()>;

/**
 * Power-of-two-bucketed histogram of 64-bit samples.
 *
 * Thread-safe: record() may be called from any number of threads
 * concurrently (relaxed atomics); readers tolerate slightly stale
 * values. Bucket i counts samples whose value has bit-width i, i.e.
 * v in [2^(i-1), 2^i) for i >= 1 and v == 0 for bucket 0.
 */
class HistogramStat
{
  public:
    static constexpr int NUM_BUCKETS = 65; ///< bit widths 0..64

    /** Record one sample. Safe to call from multiple threads. */
    void record(stat_t value);

    /** @name Summary statistics @{ */
    stat_t count() const
    {
        return count_.load(std::memory_order_relaxed);
    }
    stat_t sum() const { return sum_.load(std::memory_order_relaxed); }
    stat_t min() const
    {
        return count() == 0 ? 0 : min_.load(std::memory_order_relaxed);
    }
    stat_t max() const { return max_.load(std::memory_order_relaxed); }
    double mean() const;
    /** @} */

    /** Count of samples in bucket @p i (bit-width i). */
    stat_t bucket(int i) const;

    /**
     * Approximate @p p quantile (0..1): the upper bound of the bucket
     * containing the p-th sample. Exact to within a factor of 2.
     */
    stat_t percentileApprox(double p) const;

    /** One-line summary for reports. */
    std::string summary() const;

    /** Zero everything. Not safe concurrently with record(). */
    void reset();

    /** @name Checkpoint serialization (not concurrent with record) @{ */
    void saveState(snapshot::SnapshotWriter& w) const;
    void loadState(snapshot::SnapshotReader& r);
    /** @} */

  private:
    std::array<atomic_stat_t, NUM_BUCKETS> buckets_{};
    atomic_stat_t count_{0};
    atomic_stat_t sum_{0};
    atomic_stat_t min_{~stat_t{0}};
    atomic_stat_t max_{0};
};

/** How aggregation helpers treat an empty match set. */
enum class MatchMode
{
    Lenient, ///< no matching statistic -> 0
    Strict   ///< no matching statistic -> fatal (catches renamed stats)
};

/**
 * Registry of named statistics.
 *
 * Thread-safety: registration is mutex-protected (cold path); reads used
 * for reporting take the same mutex. Counter increments touch only the
 * owner's memory. Gauge callbacks are invoked with the registry mutex
 * held and must not call back into the registry.
 */
class StatsRegistry
{
  public:
    /**
     * Register a counter. The pointed-to storage must outlive the
     * registry or be unregistered via clear().
     */
    void registerCounter(const std::string& name, const stat_t* counter);

    /**
     * Register a shared (atomic) counter: incremented concurrently by
     * many threads, read race-free at snapshot time. Same lifetime
     * contract as the plain-counter overload.
     */
    void registerCounter(const std::string& name,
                         const atomic_stat_t* counter);

    /** Register a gauge evaluated at each read. */
    void registerGauge(const std::string& name, gauge_fn fn);

    /**
     * Register a histogram. Its ".count" and ".sum" projections appear
     * in snapshot() so interval samplers can delta them.
     */
    void registerHistogram(const std::string& name,
                           const HistogramStat* histogram);

    /** @return value of a named counter or gauge; fatal if unknown. */
    stat_t get(const std::string& name) const;

    /** @return true if a statistic of any kind exists under the name. */
    bool has(const std::string& name) const;

    /** @return registered histogram, or nullptr. */
    const HistogramStat* histogram(const std::string& name) const;

    /**
     * Sum all counters/gauges whose name matches "prefix<id>suffix" over
     * ids — e.g. sumMatching("tile.", ".l2.misses") adds
     * tile.0.l2.misses, tile.1.l2.misses, ...
     *
     * With MatchMode::Lenient (the default) an empty match set sums to
     * zero — convenient for optional components, but silent when a stat
     * was renamed. MatchMode::Strict makes an empty match set fatal.
     */
    stat_t sumMatching(const std::string& prefix,
                       const std::string& suffix,
                       MatchMode mode = MatchMode::Lenient) const;

    /** All registered names (all kinds), sorted. */
    std::vector<std::string> names() const;

    /** Names of registered histograms, sorted (Prometheus export). */
    std::vector<std::string> histogramNames() const;

    /**
     * Flatten counters, gauges, and histogram count/sum projections to
     * sorted (name, value) pairs — the interval sampler's input.
     */
    std::vector<std::pair<std::string, stat_t>> snapshot() const;

    /** Render "name = value" lines for every statistic. */
    std::string dump() const;

    /** Drop all registrations. */
    void clear();

  private:
    void checkNewName(const std::string& name) const;

    mutable lockdep::OrderedMutex mutex_{lockdep::LockClass::stats_registry};
    std::map<std::string, const stat_t*> counters_;
    std::map<std::string, const atomic_stat_t*> atomicCounters_;
    std::map<std::string, gauge_fn> gauges_;
    std::map<std::string, const HistogramStat*> histograms_;
};

} // namespace graphite
