#include "common/lockdep.h"
#include "common/log.h"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>

namespace graphite
{
namespace log_detail
{

int&
verbosity()
{
    static int level = 1;
    return level;
}

namespace
{

/** Per-component verbosity overrides; guarded by filterMutex(). */
std::map<std::string, int, std::less<>>&
filters()
{
    static std::map<std::string, int, std::less<>> map;
    return map;
}

lockdep::OrderedMutex&
filterMutex()
{
    static lockdep::OrderedMutex mtx{lockdep::LockClass::log_filter};
    return mtx;
}

/** Parse a level name; -1 when unrecognized. */
int
parseLevel(std::string_view s)
{
    if (s == "quiet" || s == "none" || s == "0")
        return 0;
    if (s == "warn" || s == "warning" || s == "1")
        return 1;
    if (s == "info" || s == "inform" || s == "2")
        return 2;
    if (s == "debug" || s == "3")
        return 3;
    return -1;
}

} // namespace

void
emit(std::string_view tag, std::string_view msg)
{
    // Serialize output lines across threads.
    static lockdep::OrderedMutex mtx{lockdep::LockClass::log_emit};
    lockdep::Guard lock(mtx);
    std::fprintf(stderr, "[%.*s] %.*s\n", static_cast<int>(tag.size()),
                 tag.data(), static_cast<int>(msg.size()), msg.data());
    std::fflush(stderr);
}

} // namespace log_detail

void
setLogVerbosity(int level)
{
    log_detail::verbosity() = level;
}

int
logVerbosity()
{
    return log_detail::verbosity();
}

void
setLogFilter(std::string_view spec)
{
    {
        lockdep::Guard lock(log_detail::filterMutex());
        log_detail::filters().clear();
    }
    size_t pos = 0;
    while (pos <= spec.size()) {
        size_t comma = spec.find(',', pos);
        if (comma == std::string_view::npos)
            comma = spec.size();
        std::string_view entry = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (entry.empty())
            continue;

        size_t colon = entry.find(':');
        std::string_view comp =
            colon == std::string_view::npos ? "*" : entry.substr(0, colon);
        std::string_view level_name =
            colon == std::string_view::npos ? entry
                                            : entry.substr(colon + 1);
        int level = log_detail::parseLevel(level_name);
        if (level < 0 || comp.empty()) {
            warn("log filter: ignoring malformed entry '{}'",
                 std::string(entry));
            continue;
        }
        if (comp == "*") {
            setLogVerbosity(level);
        } else {
            lockdep::Guard lock(log_detail::filterMutex());
            log_detail::filters()[std::string(comp)] = level;
        }
    }
}

int
logComponentVerbosity(std::string_view component)
{
    lockdep::Guard lock(log_detail::filterMutex());
    auto& map = log_detail::filters();
    auto it = map.find(component);
    return it == map.end() ? log_detail::verbosity() : it->second;
}

void
initLogFilterFromEnv()
{
    const char* spec = std::getenv("GRAPHITE_LOG");
    if (spec != nullptr && spec[0] != '\0')
        setLogFilter(spec);
}

} // namespace graphite
