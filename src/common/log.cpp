#include "common/log.h"

#include <cstdio>
#include <mutex>

namespace graphite
{
namespace log_detail
{

int&
verbosity()
{
    static int level = 1;
    return level;
}

void
emit(std::string_view tag, std::string_view msg)
{
    // Serialize output lines across threads.
    static std::mutex mtx;
    std::scoped_lock lock(mtx);
    std::fprintf(stderr, "[%.*s] %.*s\n", static_cast<int>(tag.size()),
                 tag.data(), static_cast<int>(msg.size()), msg.data());
    std::fflush(stderr);
}

} // namespace log_detail

void
setLogVerbosity(int level)
{
    log_detail::verbosity() = level;
}

int
logVerbosity()
{
    return log_detail::verbosity();
}

} // namespace graphite
