/**
 * @file
 * Minimal "{}"-style string formatting.
 *
 * The toolchain (GCC 12) does not ship std::format, so this header
 * provides the tiny subset the simulator needs: positional "{}"
 * placeholders filled via operator<<. Escapes: "{{" and "}}" produce
 * literal braces. Surplus placeholders render as "{}"; surplus arguments
 * are appended — both are treated as programmer errors in debug but must
 * never crash logging paths.
 */

#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace graphite
{

namespace strfmt_detail
{

inline void
appendRest(std::ostringstream& os, std::string_view fmt)
{
    for (size_t i = 0; i < fmt.size(); ++i) {
        if ((fmt[i] == '{' || fmt[i] == '}') && i + 1 < fmt.size() &&
            fmt[i + 1] == fmt[i]) {
            os << fmt[i];
            ++i;
        } else {
            os << fmt[i];
        }
    }
}

template <typename Arg, typename... Rest>
void
format1(std::ostringstream& os, std::string_view fmt, Arg&& arg,
        Rest&&... rest)
{
    for (size_t i = 0; i < fmt.size(); ++i) {
        char c = fmt[i];
        if (c == '{' && i + 1 < fmt.size() && fmt[i + 1] == '{') {
            os << '{';
            ++i;
            continue;
        }
        if (c == '}' && i + 1 < fmt.size() && fmt[i + 1] == '}') {
            os << '}';
            ++i;
            continue;
        }
        if (c == '{' && i + 1 < fmt.size() && fmt[i + 1] == '}') {
            os << arg;
            std::string_view tail = fmt.substr(i + 2);
            if constexpr (sizeof...(rest) > 0) {
                format1(os, tail, std::forward<Rest>(rest)...);
            } else {
                appendRest(os, tail);
            }
            return;
        }
        os << c;
    }
    // No placeholder found; append surplus argument(s) for diagnosis.
    os << " [" << arg << "]";
    if constexpr (sizeof...(rest) > 0)
        format1(os, "", std::forward<Rest>(rest)...);
}

} // namespace strfmt_detail

/** Format @p fmt, replacing successive "{}" with @p args. */
template <typename... Args>
std::string
strfmt(std::string_view fmt, Args&&... args)
{
    std::ostringstream os;
    if constexpr (sizeof...(args) == 0) {
        strfmt_detail::appendRest(os, fmt);
    } else {
        strfmt_detail::format1(os, fmt, std::forward<Args>(args)...);
    }
    return os.str();
}

} // namespace graphite
