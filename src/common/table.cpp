#include "common/table.h"

#include <algorithm>
#include <sstream>

namespace graphite
{

void
TextTable::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
TextTable::row(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

std::string
TextTable::num(double v, int precision)
{
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(precision);
    os << v;
    return os.str();
}

std::string
TextTable::render() const
{
    size_t ncols = header_.size();
    for (const auto& r : rows_)
        ncols = std::max(ncols, r.size());
    std::vector<size_t> width(ncols, 0);
    auto measure = [&](const std::vector<std::string>& r) {
        for (size_t i = 0; i < r.size(); ++i)
            width[i] = std::max(width[i], r[i].size());
    };
    measure(header_);
    for (const auto& r : rows_)
        measure(r);

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string>& r) {
        for (size_t i = 0; i < ncols; ++i) {
            std::string cell = i < r.size() ? r[i] : "";
            os << cell << std::string(width[i] - cell.size(), ' ');
            if (i + 1 < ncols)
                os << "  ";
        }
        os << "\n";
    };
    if (!header_.empty()) {
        emit(header_);
        size_t total = 0;
        for (size_t i = 0; i < ncols; ++i)
            total += width[i] + (i + 1 < ncols ? 2 : 0);
        os << std::string(total, '-') << "\n";
    }
    for (const auto& r : rows_)
        emit(r);
    return os.str();
}

} // namespace graphite
