// lockdep — declared lock hierarchy with runtime inversion detection.
//
// Every mutex in the simulator is an OrderedMutex annotated with a
// LockClass from lock_order.def.  A thread-local held-set plus a global
// class-pair edge table let us report a potential deadlock — with both
// acquisition sites — the FIRST time an inversion could happen, not
// when two threads finally interleave into an actual hang (the
// FastTrack idea of checking the discipline, not the schedule, applied
// to lock order, like the kernel's lockdep).
//
// Build-time switch: cmake -DGRAPHITE_LOCKDEP=OFF compiles everything
// down to a plain std::mutex wrapper with zero overhead
// (sizeof(OrderedMutex) == sizeof(std::mutex), all calls inline
// pass-throughs).  The two variants live in distinct inline namespaces
// (ld_on / ld_off) so a test TU compiled with
// -DGRAPHITE_LOCKDEP_FORCE_OFF can link into an armed binary without
// ODR violations.
//
// Runtime switch (armed builds only): GRAPHITE_LOCKDEP=0|warn|1 in the
// environment, or lockdep::setMode().  "warn" records and logs
// violations but keeps running (hierarchy bring-up); the default
// enforcing mode prints both acquisition sites and exits with code 87.

#ifndef GRAPHITE_COMMON_LOCKDEP_H
#define GRAPHITE_COMMON_LOCKDEP_H

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#if defined(GRAPHITE_LOCKDEP_FORCE_OFF)
#define GRAPHITE_LOCKDEP_ON 0
#elif defined(GRAPHITE_LOCKDEP_ENABLED)
#define GRAPHITE_LOCKDEP_ON 1
#else
#define GRAPHITE_LOCKDEP_ON 0
#endif

namespace graphite::lockdep
{

enum class LockClass : std::uint16_t {
#define LOCK_CLASS(name, flags) name,
#include "common/lock_order.def"
#undef LOCK_CLASS
    COUNT
};

constexpr int NUM_LOCK_CLASSES = static_cast<int>(LockClass::COUNT);

enum class ClassFlags : std::uint8_t {
    NONE = 0,    // same-class nesting is a violation
    ORDERED = 1, // same-class nesting legal in ascending instance order
    MULTI = 2,   // same-class nesting legal in any order
};

const char* lockClassName(LockClass cls);
ClassFlags lockClassFlags(LockClass cls);

// One entry of a thread's held-set, exported to the telemetry plane
// (watchdog hang dumps, flight recorder) by heldSnapshot().
struct HeldLock {
    LockClass cls;
    std::int64_t instance;
    const char* file;
    int line;
};

struct ThreadHeldSet {
    std::uint64_t threadId; // pthread numeric id
    std::vector<HeldLock> held;     // innermost last
    bool hasPending;
    HeldLock pending; // lock this thread is currently blocked acquiring
};

#if GRAPHITE_LOCKDEP_ON
inline namespace ld_on
{

class OrderedMutex {
public:
    explicit OrderedMutex(LockClass cls, std::int64_t instance = 0)
        : cls_(cls), instance_(instance)
    {
    }
    OrderedMutex(const OrderedMutex&) = delete;
    OrderedMutex& operator=(const OrderedMutex&) = delete;

    void lock(const char* file = __builtin_FILE(),
              int line = __builtin_LINE());
    bool try_lock(const char* file = __builtin_FILE(),
                  int line = __builtin_LINE());
    void unlock();

    LockClass lockClass() const { return cls_; }
    std::int64_t instance() const { return instance_; }
    // For ORDERED classes living in default-constructed containers:
    // stamp the shard/tile id after construction, before any use.
    void setInstance(std::int64_t instance) { instance_ = instance; }
    std::mutex& native() { return m_; }

private:
    std::mutex m_;
    LockClass cls_;
    std::int64_t instance_;
};

// scoped_lock/lock_guard replacement for a single OrderedMutex.
class Guard {
public:
    explicit Guard(OrderedMutex& m, const char* file = __builtin_FILE(),
                   int line = __builtin_LINE())
        : m_(m)
    {
        m_.lock(file, line);
    }
    ~Guard() { m_.unlock(); }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

private:
    OrderedMutex& m_;
};

// unique_lock replacement; usable with lockdep::CondVar.
class UniqueLock {
public:
    UniqueLock() = default;
    explicit UniqueLock(OrderedMutex& m,
                        const char* file = __builtin_FILE(),
                        int line = __builtin_LINE())
        : m_(&m), raw_(m.native(), std::defer_lock)
    {
        lock(file, line);
    }
    UniqueLock(OrderedMutex& m, std::defer_lock_t,
               const char* = __builtin_FILE(), int = __builtin_LINE())
        : m_(&m), raw_(m.native(), std::defer_lock)
    {
    }
    UniqueLock(OrderedMutex& m, std::try_to_lock_t,
               const char* file = __builtin_FILE(),
               int line = __builtin_LINE())
        : m_(&m), raw_(m.native(), std::defer_lock)
    {
        try_lock(file, line);
    }
    UniqueLock(UniqueLock&& other) noexcept
        : m_(other.m_), raw_(std::move(other.raw_))
    {
        other.m_ = nullptr;
    }
    UniqueLock& operator=(UniqueLock&& other) noexcept
    {
        if (this != &other) {
            if (owns_lock())
                unlock();
            m_ = other.m_;
            raw_ = std::move(other.raw_);
            other.m_ = nullptr;
        }
        return *this;
    }
    ~UniqueLock()
    {
        if (owns_lock())
            unlock();
    }

    void lock(const char* file = __builtin_FILE(),
              int line = __builtin_LINE());
    bool try_lock(const char* file = __builtin_FILE(),
                  int line = __builtin_LINE());
    void unlock();
    bool owns_lock() const { return raw_.owns_lock(); }
    explicit operator bool() const { return owns_lock(); }
    OrderedMutex* mutex() const { return m_; }
    std::unique_lock<std::mutex>& raw() { return raw_; }

private:
    OrderedMutex* m_ = nullptr;
    std::unique_lock<std::mutex> raw_;
};

// condition_variable replacement: the waited mutex must be the
// innermost held lock; it leaves the held-set for the duration of the
// wait and is order-checked again on reacquisition.
class CondVar {
public:
    void wait(UniqueLock& l, const char* file = __builtin_FILE(),
              int line = __builtin_LINE());

    template <class Pred>
    void wait(UniqueLock& l, Pred pred,
              const char* file = __builtin_FILE(),
              int line = __builtin_LINE())
    {
        while (!pred())
            wait(l, file, line);
    }

    template <class Rep, class Period>
    std::cv_status wait_for(UniqueLock& l,
                            const std::chrono::duration<Rep, Period>& d,
                            const char* file = __builtin_FILE(),
                            int line = __builtin_LINE())
    {
        beginWait(l, file, line);
        std::cv_status st = cv_.wait_for(l.raw(), d);
        endWait(l, file, line);
        return st;
    }

    template <class Rep, class Period, class Pred>
    bool wait_for(UniqueLock& l,
                  const std::chrono::duration<Rep, Period>& d, Pred pred,
                  const char* file = __builtin_FILE(),
                  int line = __builtin_LINE())
    {
        // The predicate re-check runs with the mutex reacquired; the
        // held-set entry is restored around each predicate call so
        // locks taken inside it are order-checked correctly.
        while (!pred()) {
            if (wait_for(l, d, file, line) == std::cv_status::timeout)
                return pred();
        }
        return true;
    }

    void notify_one() { cv_.notify_one(); }
    void notify_all() { cv_.notify_all(); }

private:
    void beginWait(UniqueLock& l, const char* file, int line);
    void endWait(UniqueLock& l, const char* file, int line);

    std::condition_variable cv_;
};

enum class Mode { Off, Warn, Enforce };

// Effective mode: setMode() override if set, else GRAPHITE_LOCKDEP env
// (0/off, warn, anything else = enforce), else Enforce.
Mode mode();
void setMode(Mode m);

// Number of violations recorded so far (warn mode keeps counting).
std::uint64_t violationCount();
// Text of the most recent violation report ("" if none). For tests.
std::string lastReport();
// Drop all recorded edges + violation state. For tests only; not safe
// while other threads are acquiring locks.
void resetForTest();

// Snapshot of every live thread's held-set (racy-but-safe reads) for
// the watchdog hang dump and flight recorder.
std::vector<ThreadHeldSet> heldSnapshot();
// Render the snapshot as indented text lines, one thread per line,
// naming lock classes and acquisition sites. Empty string when no
// thread holds anything.
std::string renderHeldSets(const char* indent = "  ");

// Async-signal-safe held-set dump for the crash handler: writes the
// same per-thread lines to @p fd using only write(2) and stack
// buffers — no locks, no allocation. Racy-but-safe like heldSnapshot.
void dumpHeldSetsToFd(int fd);

} // namespace ld_on

#else // !GRAPHITE_LOCKDEP_ON

inline namespace ld_off
{

// Zero-overhead variant: a bare std::mutex plus inline pass-throughs.
class OrderedMutex {
public:
    explicit OrderedMutex(LockClass, std::int64_t = 0) {}
    OrderedMutex(const OrderedMutex&) = delete;
    OrderedMutex& operator=(const OrderedMutex&) = delete;

    void lock(const char* = nullptr, int = 0) { m_.lock(); }
    bool try_lock(const char* = nullptr, int = 0)
    {
        return m_.try_lock();
    }
    void unlock() { m_.unlock(); }
    void setInstance(std::int64_t) {}
    std::mutex& native() { return m_; }

private:
    std::mutex m_;
};

static_assert(sizeof(OrderedMutex) == sizeof(std::mutex),
              "disabled lockdep must add no per-mutex state");

class Guard {
public:
    explicit Guard(OrderedMutex& m, const char* = nullptr, int = 0)
        : g_(m.native())
    {
    }

private:
    std::lock_guard<std::mutex> g_;
};

class UniqueLock {
public:
    UniqueLock() = default;
    explicit UniqueLock(OrderedMutex& m, const char* = nullptr,
                        int = 0)
        : m_(&m), raw_(m.native())
    {
    }
    UniqueLock(OrderedMutex& m, std::defer_lock_t,
               const char* = nullptr, int = 0)
        : m_(&m), raw_(m.native(), std::defer_lock)
    {
    }
    UniqueLock(OrderedMutex& m, std::try_to_lock_t,
               const char* = nullptr, int = 0)
        : m_(&m), raw_(m.native(), std::try_to_lock)
    {
    }
    UniqueLock(UniqueLock&&) noexcept = default;
    UniqueLock& operator=(UniqueLock&&) noexcept = default;

    void lock(const char* = nullptr, int = 0) { raw_.lock(); }
    bool try_lock(const char* = nullptr, int = 0)
    {
        return raw_.try_lock();
    }
    void unlock() { raw_.unlock(); }
    bool owns_lock() const { return raw_.owns_lock(); }
    explicit operator bool() const { return owns_lock(); }
    OrderedMutex* mutex() const { return m_; }
    std::unique_lock<std::mutex>& raw() { return raw_; }

private:
    OrderedMutex* m_ = nullptr;
    std::unique_lock<std::mutex> raw_;
};

static_assert(sizeof(UniqueLock) ==
                  sizeof(OrderedMutex*) + sizeof(std::unique_lock<std::mutex>),
              "disabled lockdep UniqueLock must add no state");

class CondVar {
public:
    void wait(UniqueLock& l) { cv_.wait(l.raw()); }

    template <class Pred> void wait(UniqueLock& l, Pred pred)
    {
        cv_.wait(l.raw(), std::move(pred));
    }

    template <class Rep, class Period>
    std::cv_status wait_for(UniqueLock& l,
                            const std::chrono::duration<Rep, Period>& d)
    {
        return cv_.wait_for(l.raw(), d);
    }

    template <class Rep, class Period, class Pred>
    bool wait_for(UniqueLock& l,
                  const std::chrono::duration<Rep, Period>& d, Pred pred)
    {
        return cv_.wait_for(l.raw(), d, std::move(pred));
    }

    void notify_one() { cv_.notify_one(); }
    void notify_all() { cv_.notify_all(); }

private:
    std::condition_variable cv_;
};

enum class Mode { Off, Warn, Enforce };
inline Mode mode() { return Mode::Off; }
inline void setMode(Mode) {}
inline std::uint64_t violationCount() { return 0; }
inline std::string lastReport() { return {}; }
inline void resetForTest() {}
inline std::vector<ThreadHeldSet> heldSnapshot() { return {}; }
inline std::string renderHeldSets(const char* = "  ") { return {}; }
inline void dumpHeldSetsToFd(int) {}

} // namespace ld_off

#endif // GRAPHITE_LOCKDEP_ON

} // namespace graphite::lockdep

#endif // GRAPHITE_COMMON_LOCKDEP_H
