/**
 * @file
 * Simulated host-cluster topology.
 *
 * Graphite stripes target tiles across host processes which run on host
 * machines (paper §3.5: "The mapping between tiles and processes is
 * currently implemented by simply striping the tiles across the
 * processes"). This class is the single source of truth for:
 *
 *  - tile -> host process (striping),
 *  - process -> host machine (block assignment),
 *  - transport endpoint numbering (tiles, one LCP per process, one MCP).
 *
 * In the original system each process was a real OS process on a real
 * machine; here processes are simulated within one address space but all
 * traffic still crosses the physical transport, which charges different
 * costs for intra- vs inter-process delivery (see DESIGN.md, substitution 2).
 */

#pragma once

#include <cstdint>

#include "common/fixed_types.h"

namespace graphite
{

/** Transport endpoint identifier. */
using endpoint_id_t = std::int32_t;

/** Immutable description of how a simulation is laid out on the cluster. */
class ClusterTopology
{
  public:
    /**
     * @param total_tiles        number of target tiles
     * @param num_processes      number of simulated host processes
     * @param procs_per_machine  how many processes share one machine
     */
    ClusterTopology(tile_id_t total_tiles, proc_id_t num_processes,
                    int procs_per_machine = 1);

    tile_id_t totalTiles() const { return totalTiles_; }
    proc_id_t numProcesses() const { return numProcesses_; }
    machine_id_t numMachines() const { return numMachines_; }

    /** Host process that owns tile @p tile (striped assignment). */
    proc_id_t processForTile(tile_id_t tile) const;

    /** Machine hosting process @p proc. */
    machine_id_t machineForProcess(proc_id_t proc) const;

    /** Number of tiles owned by process @p proc. */
    tile_id_t tilesInProcess(proc_id_t proc) const;

    /** The k-th tile (0-based) owned by process @p proc. */
    tile_id_t tileOfProcess(proc_id_t proc, tile_id_t k) const;

    /** True when the two tiles live in the same host process. */
    bool sameProcess(tile_id_t a, tile_id_t b) const;

    /** True when the two tiles live on the same host machine. */
    bool sameMachine(tile_id_t a, tile_id_t b) const;

    /** @name Endpoint numbering
     * Tiles occupy endpoints [0, totalTiles); each process's LCP follows;
     * the single MCP is the last endpoint.
     * @{
     */
    endpoint_id_t tileEndpoint(tile_id_t tile) const;
    endpoint_id_t lcpEndpoint(proc_id_t proc) const;
    endpoint_id_t mcpEndpoint() const;
    endpoint_id_t numEndpoints() const;
    /** @} */

    /** Process owning an arbitrary endpoint (tile, LCP, or MCP). */
    proc_id_t processForEndpoint(endpoint_id_t ep) const;

  private:
    tile_id_t totalTiles_;
    proc_id_t numProcesses_;
    int procsPerMachine_;
    machine_id_t numMachines_;
};

} // namespace graphite
