/**
 * @file
 * Physical transport layer (paper §3.3.1).
 *
 * "The transport layer provides an abstraction for generic communication
 * between tiles. All inter-core communication as well as inter-process
 * communication required for distributed support goes through this
 * communication channel."
 *
 * The interface is deliberately byte-oriented and endpoint-addressed so a
 * different back end (the paper used TCP/IP sockets, and suggests MPI)
 * could be swapped in. The bundled implementation, InProcessTransport,
 * delivers through in-memory mailboxes and *accounts* for the host-side
 * cost difference between intra-process (shared memory) and inter-process
 * (socket) delivery; those counters feed the host cluster model.
 */

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "common/fixed_types.h"
#include "common/lockdep.h"
#include "common/stats.h"
#include "transport/cluster_topology.h"

namespace graphite
{

/** A transported datagram: opaque bytes plus addressing metadata. */
struct TransportBuffer
{
    endpoint_id_t src = -1;
    endpoint_id_t dst = -1;
    std::vector<std::uint8_t> data;
};

/**
 * Abstract physical transport. Implementations must be thread-safe:
 * any thread may send to any endpoint; one logical owner receives per
 * endpoint (multiple receivers are permitted but unordered among them).
 */
class Transport
{
  public:
    virtual ~Transport() = default;

    /** Send @p data from @p src to @p dst. Never blocks indefinitely. */
    virtual void send(endpoint_id_t src, endpoint_id_t dst,
                      std::vector<std::uint8_t> data) = 0;

    /** Block until a datagram arrives for @p dst and return it. */
    virtual TransportBuffer recv(endpoint_id_t dst) = 0;

    /**
     * Non-blocking receive.
     * @return true and fill @p out when a datagram was pending.
     */
    virtual bool tryRecv(endpoint_id_t dst, TransportBuffer& out) = 0;

    /** Number of datagrams pending for @p dst. */
    virtual size_t pending(endpoint_id_t dst) const = 0;

    /**
     * Datagrams pending across every endpoint — the instantaneous
     * transport queue depth (sampled as the transport.queue_depth
     * gauge). A snapshot: endpoints are counted one at a time.
     */
    virtual size_t totalPending() const = 0;

    /**
     * Wake all blocked receivers; subsequent recv() calls on a shut-down
     * transport return an empty buffer with src == -1. Used at teardown.
     */
    virtual void shutdown() = 0;
};

/**
 * Mailbox-based transport simulating a cluster deployment.
 *
 * Per-endpoint FIFO mailboxes guarded by a mutex + condition variable.
 * Delivery is immediate (the *modeled* latency is applied by the network
 * models via timestamps, per lax synchronization); what this layer tracks
 * is host-side traffic accounting:
 *   - intraProcessMessages/Bytes: src and dst in the same simulated process
 *   - interProcessMessages/Bytes: crossing simulated process boundaries
 */
class InProcessTransport : public Transport
{
  public:
    explicit InProcessTransport(const ClusterTopology& topo);

    void send(endpoint_id_t src, endpoint_id_t dst,
              std::vector<std::uint8_t> data) override;
    TransportBuffer recv(endpoint_id_t dst) override;
    bool tryRecv(endpoint_id_t dst, TransportBuffer& out) override;
    size_t pending(endpoint_id_t dst) const override;
    size_t totalPending() const override;
    void shutdown() override;

    /** @name Host-side traffic accounting (see src/host). @{ */
    stat_t intraProcessMessages() const;
    stat_t interProcessMessages() const;
    stat_t intraProcessBytes() const;
    stat_t interProcessBytes() const;
    /** @} */

    const ClusterTopology& topology() const { return topo_; }

  private:
    struct Mailbox
    {
        mutable lockdep::OrderedMutex mutex{
            lockdep::LockClass::transport_mailbox};
        lockdep::CondVar cv;
        std::deque<TransportBuffer> queue;
    };

    ClusterTopology topo_;
    std::vector<std::unique_ptr<Mailbox>> boxes_;
    std::atomic<bool> shutdown_{false};
    mutable lockdep::OrderedMutex statsMutex_{
        lockdep::LockClass::transport_stats};
    stat_t intraMsgs_ = 0;
    stat_t interMsgs_ = 0;
    stat_t intraBytes_ = 0;
    stat_t interBytes_ = 0;
};

} // namespace graphite
