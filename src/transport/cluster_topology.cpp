#include "transport/cluster_topology.h"

#include "common/log.h"

namespace graphite
{

ClusterTopology::ClusterTopology(tile_id_t total_tiles,
                                 proc_id_t num_processes,
                                 int procs_per_machine)
    : totalTiles_(total_tiles),
      numProcesses_(num_processes),
      procsPerMachine_(procs_per_machine)
{
    if (total_tiles <= 0)
        fatal("cluster topology: total_tiles must be positive (got {})",
              total_tiles);
    if (num_processes <= 0)
        fatal("cluster topology: num_processes must be positive (got {})",
              num_processes);
    if (num_processes > total_tiles)
        fatal("cluster topology: more processes ({}) than tiles ({})",
              num_processes, total_tiles);
    if (procs_per_machine <= 0)
        fatal("cluster topology: procs_per_machine must be positive");
    numMachines_ =
        (numProcesses_ + procsPerMachine_ - 1) / procsPerMachine_;
}

proc_id_t
ClusterTopology::processForTile(tile_id_t tile) const
{
    GRAPHITE_ASSERT(tile >= 0 && tile < totalTiles_);
    return tile % numProcesses_;
}

machine_id_t
ClusterTopology::machineForProcess(proc_id_t proc) const
{
    GRAPHITE_ASSERT(proc >= 0 && proc < numProcesses_);
    return proc / procsPerMachine_;
}

tile_id_t
ClusterTopology::tilesInProcess(proc_id_t proc) const
{
    GRAPHITE_ASSERT(proc >= 0 && proc < numProcesses_);
    return (totalTiles_ - proc + numProcesses_ - 1) / numProcesses_;
}

tile_id_t
ClusterTopology::tileOfProcess(proc_id_t proc, tile_id_t k) const
{
    GRAPHITE_ASSERT(k >= 0 && k < tilesInProcess(proc));
    return proc + k * numProcesses_;
}

bool
ClusterTopology::sameProcess(tile_id_t a, tile_id_t b) const
{
    return processForTile(a) == processForTile(b);
}

bool
ClusterTopology::sameMachine(tile_id_t a, tile_id_t b) const
{
    return machineForProcess(processForTile(a)) ==
           machineForProcess(processForTile(b));
}

endpoint_id_t
ClusterTopology::tileEndpoint(tile_id_t tile) const
{
    GRAPHITE_ASSERT(tile >= 0 && tile < totalTiles_);
    return tile;
}

endpoint_id_t
ClusterTopology::lcpEndpoint(proc_id_t proc) const
{
    GRAPHITE_ASSERT(proc >= 0 && proc < numProcesses_);
    return totalTiles_ + proc;
}

endpoint_id_t
ClusterTopology::mcpEndpoint() const
{
    return totalTiles_ + numProcesses_;
}

endpoint_id_t
ClusterTopology::numEndpoints() const
{
    return totalTiles_ + numProcesses_ + 1;
}

proc_id_t
ClusterTopology::processForEndpoint(endpoint_id_t ep) const
{
    GRAPHITE_ASSERT(ep >= 0 && ep < numEndpoints());
    if (ep < totalTiles_)
        return processForTile(ep);
    if (ep < totalTiles_ + numProcesses_)
        return ep - totalTiles_;
    return 0; // The MCP lives in process 0.
}

} // namespace graphite
