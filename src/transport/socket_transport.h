/**
 * @file
 * Socket-based physical transport (paper §3.3.1).
 *
 * "The current transport layer uses TCP/IP sockets for data transport,
 * however this could be replaced with another messaging back end such
 * as MPI."
 *
 * This back end sends every datagram through real kernel sockets — one
 * Unix-domain SOCK_DGRAM socket per endpoint in Linux's abstract
 * namespace — so inter-endpoint traffic pays genuine syscall,
 * serialization, and kernel-queue costs, exactly the overheads the
 * original paid through loopback/LAN TCP. Datagram semantics preserve
 * message boundaries, matching the TransportBuffer contract.
 *
 * Select with config key transport/type = "unix_socket" (the default
 * "in_process" uses in-memory mailboxes). Messages are limited by the
 * kernel datagram size (hundreds of KB); all simulator traffic is far
 * below that.
 */

#pragma once

#include <string>
#include <vector>

#include "transport/transport.h"

namespace graphite
{

class Config;

/** Transport over per-endpoint Unix-domain datagram sockets. */
class UnixSocketTransport : public Transport
{
  public:
    explicit UnixSocketTransport(const ClusterTopology& topo);
    ~UnixSocketTransport() override;

    UnixSocketTransport(const UnixSocketTransport&) = delete;
    UnixSocketTransport& operator=(const UnixSocketTransport&) = delete;

    void send(endpoint_id_t src, endpoint_id_t dst,
              std::vector<std::uint8_t> data) override;
    TransportBuffer recv(endpoint_id_t dst) override;
    bool tryRecv(endpoint_id_t dst, TransportBuffer& out) override;
    size_t pending(endpoint_id_t dst) const override;
    size_t totalPending() const override;
    void shutdown() override;

    const ClusterTopology& topology() const { return topo_; }

  private:
    std::string addressOf(endpoint_id_t ep) const;
    bool decode(const std::vector<std::uint8_t>& wire, ssize_t n,
                TransportBuffer& out) const;

    ClusterTopology topo_;
    std::string nonce_; ///< unique per instance (abstract namespace)
    std::vector<int> sockets_;
    std::atomic<bool> shutdown_{false};
};

/**
 * Factory honoring config key transport/type: "in_process" (default)
 * or "unix_socket". Fatal on unknown type.
 */
std::unique_ptr<Transport> createTransport(const ClusterTopology& topo,
                                           const Config& cfg);

} // namespace graphite
