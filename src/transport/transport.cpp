#include "common/lockdep.h"
#include "transport/transport.h"

#include "common/log.h"

namespace graphite
{

InProcessTransport::InProcessTransport(const ClusterTopology& topo)
    : topo_(topo)
{
    boxes_.reserve(topo_.numEndpoints());
    for (endpoint_id_t i = 0; i < topo_.numEndpoints(); ++i) {
        boxes_.push_back(std::make_unique<Mailbox>());
        boxes_.back()->mutex.setInstance(i);
    }
}

void
InProcessTransport::send(endpoint_id_t src, endpoint_id_t dst,
                         std::vector<std::uint8_t> data)
{
    GRAPHITE_ASSERT(src >= 0 && src < topo_.numEndpoints());
    GRAPHITE_ASSERT(dst >= 0 && dst < topo_.numEndpoints());

    {
        lockdep::Guard lock(statsMutex_);
        bool same = topo_.processForEndpoint(src) ==
                    topo_.processForEndpoint(dst);
        if (same) {
            ++intraMsgs_;
            intraBytes_ += data.size();
        } else {
            ++interMsgs_;
            interBytes_ += data.size();
        }
    }

    Mailbox& box = *boxes_[dst];
    {
        lockdep::Guard lock(box.mutex);
        box.queue.push_back(TransportBuffer{src, dst, std::move(data)});
    }
    box.cv.notify_one();
}

TransportBuffer
InProcessTransport::recv(endpoint_id_t dst)
{
    GRAPHITE_ASSERT(dst >= 0 && dst < topo_.numEndpoints());
    Mailbox& box = *boxes_[dst];
    lockdep::UniqueLock lock(box.mutex);
    box.cv.wait(lock,
                [&] { return !box.queue.empty() || shutdown_.load(); });
    if (box.queue.empty())
        return TransportBuffer{}; // shutdown drain
    TransportBuffer out = std::move(box.queue.front());
    box.queue.pop_front();
    return out;
}

bool
InProcessTransport::tryRecv(endpoint_id_t dst, TransportBuffer& out)
{
    GRAPHITE_ASSERT(dst >= 0 && dst < topo_.numEndpoints());
    Mailbox& box = *boxes_[dst];
    lockdep::Guard lock(box.mutex);
    if (box.queue.empty())
        return false;
    out = std::move(box.queue.front());
    box.queue.pop_front();
    return true;
}

size_t
InProcessTransport::pending(endpoint_id_t dst) const
{
    GRAPHITE_ASSERT(dst >= 0 && dst < topo_.numEndpoints());
    const Mailbox& box = *boxes_[dst];
    lockdep::Guard lock(box.mutex);
    return box.queue.size();
}

size_t
InProcessTransport::totalPending() const
{
    size_t total = 0;
    for (endpoint_id_t ep = 0; ep < topo_.numEndpoints(); ++ep)
        total += pending(ep);
    return total;
}

void
InProcessTransport::shutdown()
{
    shutdown_.store(true);
    for (auto& box : boxes_) {
        // Take the lock so no receiver can miss the flag between its
        // predicate check and wait.
        lockdep::Guard lock(box->mutex);
        box->cv.notify_all();
    }
}

stat_t
InProcessTransport::intraProcessMessages() const
{
    lockdep::Guard lock(statsMutex_);
    return intraMsgs_;
}

stat_t
InProcessTransport::interProcessMessages() const
{
    lockdep::Guard lock(statsMutex_);
    return interMsgs_;
}

stat_t
InProcessTransport::intraProcessBytes() const
{
    lockdep::Guard lock(statsMutex_);
    return intraBytes_;
}

stat_t
InProcessTransport::interProcessBytes() const
{
    lockdep::Guard lock(statsMutex_);
    return interBytes_;
}

} // namespace graphite
