#include "transport/socket_transport.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>

#include "common/config.h"
#include "common/log.h"

namespace graphite
{

namespace
{

/** Max datagram we ever expect (file ops carry data inline). */
constexpr size_t MAX_DGRAM = 200 * 1024;

sockaddr_un
abstractAddress(const std::string& name, socklen_t& len)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    // Abstract namespace: leading NUL, no filesystem presence.
    GRAPHITE_ASSERT(name.size() + 1 < sizeof(addr.sun_path));
    addr.sun_path[0] = '\0';
    std::memcpy(addr.sun_path + 1, name.data(), name.size());
    len = static_cast<socklen_t>(offsetof(sockaddr_un, sun_path) + 1 +
                                 name.size());
    return addr;
}

} // namespace

UnixSocketTransport::UnixSocketTransport(const ClusterTopology& topo)
    : topo_(topo)
{
    static std::atomic<std::uint64_t> instance{0};
    nonce_ = std::to_string(::getpid()) + "." +
             std::to_string(instance.fetch_add(1));

    sockets_.resize(topo_.numEndpoints(), -1);
    for (endpoint_id_t ep = 0; ep < topo_.numEndpoints(); ++ep) {
        int fd = ::socket(AF_UNIX, SOCK_DGRAM, 0);
        if (fd < 0)
            fatal("socket transport: socket() failed: {}",
                  std::strerror(errno));
        socklen_t len = 0;
        sockaddr_un addr = abstractAddress(addressOf(ep), len);
        if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), len) != 0)
            fatal("socket transport: bind({}) failed: {}", ep,
                  std::strerror(errno));
        // Generous buffers: many tiles may burst at one endpoint.
        int bufsize = 1 << 20;
        ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &bufsize,
                     sizeof(bufsize));
        ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &bufsize,
                     sizeof(bufsize));
        sockets_[ep] = fd;
    }
}

UnixSocketTransport::~UnixSocketTransport()
{
    for (int fd : sockets_) {
        if (fd >= 0)
            ::close(fd);
    }
}

std::string
UnixSocketTransport::addressOf(endpoint_id_t ep) const
{
    return "graphite." + nonce_ + "." + std::to_string(ep);
}

void
UnixSocketTransport::send(endpoint_id_t src, endpoint_id_t dst,
                          std::vector<std::uint8_t> data)
{
    GRAPHITE_ASSERT(src >= 0 && src < topo_.numEndpoints());
    GRAPHITE_ASSERT(dst >= 0 && dst < topo_.numEndpoints());
    if (data.size() + 4 > MAX_DGRAM)
        fatal("socket transport: {}-byte message exceeds the datagram "
              "limit",
              data.size());

    std::vector<std::uint8_t> wire(4 + data.size());
    std::memcpy(wire.data(), &src, 4);
    std::memcpy(wire.data() + 4, data.data(), data.size());

    socklen_t len = 0;
    sockaddr_un addr = abstractAddress(addressOf(dst), len);
    while (true) {
        ssize_t n = ::sendto(sockets_[src], wire.data(), wire.size(), 0,
                             reinterpret_cast<sockaddr*>(&addr), len);
        if (n >= 0)
            return;
        if (errno == EINTR)
            continue;
        if (shutdown_.load())
            return; // teardown races are benign
        fatal("socket transport: sendto({} -> {}) failed: {}", src, dst,
              std::strerror(errno));
    }
}

bool
UnixSocketTransport::decode(const std::vector<std::uint8_t>& wire,
                            ssize_t n, TransportBuffer& out) const
{
    if (n < 4)
        return false; // poison/short datagram
    std::memcpy(&out.src, wire.data(), 4);
    if (out.src < 0)
        return false; // shutdown poison
    out.data.assign(wire.begin() + 4, wire.begin() + n);
    return true;
}

TransportBuffer
UnixSocketTransport::recv(endpoint_id_t dst)
{
    GRAPHITE_ASSERT(dst >= 0 && dst < topo_.numEndpoints());
    std::vector<std::uint8_t> wire(MAX_DGRAM);
    while (true) {
        if (shutdown_.load())
            return TransportBuffer{};
        ssize_t n =
            ::recv(sockets_[dst], wire.data(), wire.size(), 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (shutdown_.load())
                return TransportBuffer{};
            fatal("socket transport: recv({}) failed: {}", dst,
                  std::strerror(errno));
        }
        TransportBuffer out;
        out.dst = dst;
        if (decode(wire, n, out))
            return out;
        if (shutdown_.load())
            return TransportBuffer{};
    }
}

bool
UnixSocketTransport::tryRecv(endpoint_id_t dst, TransportBuffer& out)
{
    GRAPHITE_ASSERT(dst >= 0 && dst < topo_.numEndpoints());
    std::vector<std::uint8_t> wire(MAX_DGRAM);
    while (true) {
        ssize_t n = ::recv(sockets_[dst], wire.data(), wire.size(),
                           MSG_DONTWAIT);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return false;
            fatal("socket transport: recv({}) failed: {}", dst,
                  std::strerror(errno));
        }
        out.dst = dst;
        if (decode(wire, n, out))
            return true;
        // Poison datagram during shutdown: report empty.
        return false;
    }
}

size_t
UnixSocketTransport::pending(endpoint_id_t dst) const
{
    GRAPHITE_ASSERT(dst >= 0 && dst < topo_.numEndpoints());
    // Datagram sockets expose only "something is queued"; peek without
    // consuming. Callers treat this as a boolean load hint.
    std::uint8_t probe;
    ssize_t n = ::recv(sockets_[dst], &probe, 1,
                       MSG_DONTWAIT | MSG_PEEK);
    return n >= 0 ? 1 : 0;
}

size_t
UnixSocketTransport::totalPending() const
{
    // Same hint semantics as pending(): counts endpoints with at least
    // one queued datagram, not the exact datagram count.
    size_t total = 0;
    for (endpoint_id_t ep = 0; ep < topo_.numEndpoints(); ++ep)
        total += pending(ep);
    return total;
}

void
UnixSocketTransport::shutdown()
{
    shutdown_.store(true);
    // Wake every blocked receiver with a poison datagram.
    std::int32_t poison = -1;
    for (endpoint_id_t ep = 0; ep < topo_.numEndpoints(); ++ep) {
        socklen_t len = 0;
        sockaddr_un addr = abstractAddress(addressOf(ep), len);
        ::sendto(sockets_[ep], &poison, sizeof(poison), MSG_DONTWAIT,
                 reinterpret_cast<sockaddr*>(&addr), len);
    }
}

std::unique_ptr<Transport>
createTransport(const ClusterTopology& topo, const Config& cfg)
{
    std::string type = cfg.getString("transport/type", "in_process");
    if (type == "in_process")
        return std::make_unique<InProcessTransport>(topo);
    if (type == "unix_socket")
        return std::make_unique<UnixSocketTransport>(topo);
    fatal("unknown transport type '{}'", type);
}

} // namespace graphite
