#include "common/lockdep.h"
#include "mem/memory_system.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <map>
#include <thread>

#include "check/fault.h"
#include "common/config.h"
#include "common/log.h"
#include "common/strfmt.h"
#include "snapshot/snapshot.h"
#include "obs/span/span.h"
#include "obs/span/span_sink.h"
#include "obs/telemetry/flight_recorder.h"
#include "obs/trace_event.h"
#include "race/detector.h"

namespace graphite
{

namespace
{

std::unique_ptr<Cache>
makeCache(const Config& cfg, const std::string& key,
          const std::string& label, std::uint64_t line_size)
{
    if (!cfg.getBool(key + "/enabled", true))
        return nullptr;
    return std::make_unique<Cache>(
        label, cfg.getInt(key + "/cache_size"),
        static_cast<int>(cfg.getInt(key + "/associativity")), line_size);
}

void
sortUnique(std::vector<tile_id_t>& ids)
{
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
}

/**
 * Translate one message's latency decomposition into span stage marks.
 * The three components are laid out serialization -> queueing -> hop
 * starting at @p begin; their durations sum to the message latency, so
 * the span's exact-accounting invariant is preserved.
 */
void
markNet(obs::SpanBuilder* sb, const NetBreakdown& bd, cycle_t begin,
        bool reply)
{
    if (sb == nullptr)
        return;
    using obs::SpanStage;
    sb->add(reply ? SpanStage::ReplySer : SpanStage::ReqSer, begin,
            bd.serialization);
    begin += bd.serialization;
    sb->add(reply ? SpanStage::ReplyQueue : SpanStage::ReqQueue, begin,
            bd.queue);
    begin += bd.queue;
    sb->add(reply ? SpanStage::ReplyHop : SpanStage::ReqHop, begin,
            bd.hop);
}

/** DRAM breakdown as span stage marks: queueing then device+service. */
void
markDram(obs::SpanBuilder* sb, const DramController::Breakdown& bd,
         cycle_t begin)
{
    if (sb == nullptr)
        return;
    using obs::SpanStage;
    sb->add(SpanStage::DramQueue, begin, bd.queue);
    sb->add(SpanStage::DramService, begin + bd.queue, bd.service);
}

} // namespace

MemorySystem::MemorySystem(const ClusterTopology& topo,
                           NetworkFabric& fabric, const Config& cfg)
    : topo_(topo),
      fabric_(fabric),
      tiles_(topo.totalTiles()),
      shards_(topo.totalTiles())
{
    // Stamp lock instances: ORDERED classes (lock_order.def) require
    // ascending acquisition, keyed by tile/home id.
    for (tile_id_t t = 0; t < topo.totalTiles(); ++t) {
        tiles_[t].mutex.setInstance(t);
        shards_[t].mutex.setInstance(t);
        shards_[t].versionMutex.setInstance(t);
    }
    lineSize_ = cfg.getInt("perf_model/l2_cache/line_size", 64);
    l1Latency_ = cfg.getInt("perf_model/l1_dcache/access_latency", 1);
    l2Latency_ = cfg.getInt("perf_model/l2_cache/access_latency", 9);
    dirLatency_ =
        cfg.getInt("caching_protocol/directory_access_latency", 10);
    classify_ = cfg.getBool("mem/miss_classification", true);
    std::string protocol =
        cfg.getString("caching_protocol/type", "dir_msi");
    if (protocol != "dir_msi" && protocol != "dir_mesi")
        fatal("unknown caching protocol '{}'", protocol);
    mesi_ = protocol == "dir_mesi";

    std::string concurrency =
        cfg.getString("mem/host_concurrency", "sharded");
    if (concurrency != "sharded" && concurrency != "global")
        fatal("mem/host_concurrency must be 'sharded' or 'global', got "
              "'{}'",
              concurrency);
    sharded_ = concurrency == "sharded";

    DirectoryType dtype = parseDirectoryType(
        cfg.getString("caching_protocol/directory_type", "full_map"));
    int max_sharers =
        static_cast<int>(cfg.getInt("caching_protocol/max_sharers", 4));
    cycle_t trap_penalty = cfg.getInt(
        "caching_protocol/limitless_software_trap_penalty", 100);

    double freq = cfg.getDouble("general/clock_frequency_ghz", 1.0);
    double dram_latency_ns =
        cfg.getDouble("perf_model/dram/latency_ns", 100.0);
    auto dram_latency = static_cast<cycle_t>(dram_latency_ns * freq);
    double total_bw_gbps =
        cfg.getDouble("perf_model/dram/total_bandwidth_gbps", 5.13);
    // GB/s divided by GHz gives bytes per cycle; the total off-chip
    // bandwidth is split evenly across per-tile controllers (§4.4).
    double bytes_per_cycle =
        total_bw_gbps / freq / static_cast<double>(topo.totalTiles());
    bool dram_queue =
        cfg.getBool("perf_model/dram/queue_model_enabled", true);

    for (tile_id_t t = 0; t < topo.totalTiles(); ++t) {
        TileMemory& tm = tiles_[t];
        std::string suffix = "." + std::to_string(t);
        tm.l1i = makeCache(cfg, "perf_model/l1_icache",
                           "l1_icache" + suffix, lineSize_);
        tm.l1d = makeCache(cfg, "perf_model/l1_dcache",
                           "l1_dcache" + suffix, lineSize_);
        tm.l2 = makeCache(cfg, "perf_model/l2_cache", "l2_cache" + suffix,
                          lineSize_);
        if (!tm.l2)
            fatal("the L2 cache cannot be disabled (it anchors "
                  "coherence)");
        Shard& sh = shards_[t];
        sh.directory = std::make_unique<Directory>(
            dtype, max_sharers, topo.totalTiles(), trap_penalty);
        sh.dram = std::make_unique<DramController>(
            dram_latency, bytes_per_cycle,
            dram_queue ? &fabric.progress() : nullptr,
            cfg.getInt("network/queue_outlier_window", 100000),
            cfg.getInt("network/queue_max_backlog", 10000));
    }

    manager_ = std::make_unique<MemoryManager>(
        topo.totalTiles(),
        cfg.getInt("stack/stack_size_per_thread", 2097152));
}

MemorySystem::~MemorySystem() = default;

tile_id_t
MemorySystem::homeTile(addr_t addr) const
{
    return static_cast<tile_id_t>((addr / lineSize_) %
                                  static_cast<addr_t>(topo_.totalTiles()));
}

cycle_t
MemorySystem::msg(tile_id_t src, tile_id_t dst, size_t payload_bytes,
                  cycle_t send_time, NetBreakdown* bd,
                  obs::accuracy::ViolationPoint point)
{
    // Fast-forward skips the whole modelEx call: the network model's
    // routed totals and the fabric's locality counters move together
    // inside it, so skipping both keeps the conservation invariants.
    if (fastForward()) {
        if (bd != nullptr)
            *bd = NetBreakdown{};
        return 0;
    }
    NetBreakdown b =
        fabric_.modelEx(PacketType::Memory, src, dst,
                        payload_bytes + NetPacket::HEADER_BYTES,
                        send_time);
    if (bd != nullptr)
        *bd = b;
    // Every coherence leg funnels through here, so this one hook gives
    // the accuracy observatory transaction-completion coverage: the
    // modeled arrival time is compared against the destination tile's
    // local clock (pure observation, never feeds back into timing).
    if (obs::accuracy::AccuracyObservatory::armed())
        obs::accuracy::AccuracyObservatory::instance().onDelivery(
            point, src, dst, send_time + b.total);
    return b.total;
}

// ------------------------------------------------------------------ locking

lockdep::UniqueLock
MemorySystem::globalGuard()
{
    // Compatibility mode: one big lock, as before the shard split. The
    // fine-grained locks below it are then uncontended by construction.
    return sharded_ ? lockdep::UniqueLock()
                    : lockdep::UniqueLock(globalMutex_);
}

lockdep::UniqueLock
MemorySystem::lockShard(Shard& shard, const char* file, int line)
{
    lockdep::UniqueLock lock(shard.mutex, std::defer_lock);
    if (!lock.try_lock(file, line)) {
        shardLockContended_.fetch_add(1, std::memory_order_relaxed);
        auto t0 = std::chrono::steady_clock::now();
        lock.lock(file, line);
        auto waited = std::chrono::steady_clock::now() - t0;
        shardLockWaitNs_.fetch_add(
            static_cast<stat_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    waited)
                    .count()),
            std::memory_order_relaxed);
    }
    shardLockAcquisitions_.fetch_add(1, std::memory_order_relaxed);
    return lock;
}

lockdep::UniqueLock
MemorySystem::lockTile(TileMemory& tm, const char* file, int line)
{
    lockdep::UniqueLock lock(tm.mutex, std::defer_lock);
    if (!lock.try_lock(file, line)) {
        tileLockContended_.fetch_add(1, std::memory_order_relaxed);
        auto t0 = std::chrono::steady_clock::now();
        lock.lock(file, line);
        auto waited = std::chrono::steady_clock::now() - t0;
        tileLockWaitNs_.fetch_add(
            static_cast<stat_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    waited)
                    .count()),
            std::memory_order_relaxed);
    }
    tileLockAcquisitions_.fetch_add(1, std::memory_order_relaxed);
    return lock;
}

void
MemorySystem::holdTileLockForTest(tile_id_t tile, std::uint64_t ns,
                                  std::atomic<bool>* held)
{
    lockdep::Guard lock(tiles_[tile].mutex);
    if (held != nullptr)
        held->store(true, std::memory_order_release);
    std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
}

void
MemorySystem::holdShardLockForTest(tile_id_t tile, std::uint64_t ns,
                                   std::atomic<bool>* held)
{
    lockdep::Guard lock(shards_[tile].mutex);
    if (held != nullptr)
        held->store(true, std::memory_order_release);
    std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
}

// --------------------------------------------------------------- accounting

void
MemorySystem::bumpVersions(addr_t addr, size_t size)
{
    if (!classify_ || fastForward())
        return;
    addr_t line = lineAlign(addr);
    Shard& sh = shards_[homeTile(line)];
    lockdep::Guard vl(sh.versionMutex);
    auto& versions = sh.wordVersions[line];
    if (versions.empty())
        versions.resize(lineSize_ / WORD_BYTES, 0);
    std::uint64_t first = (addr - line) / WORD_BYTES;
    std::uint64_t last = (addr + size - 1 - line) / WORD_BYTES;
    for (std::uint64_t w = first; w <= last; ++w)
        ++versions[w];
}

void
MemorySystem::snapshotLoss(tile_id_t tile, addr_t line_addr,
                           EvictReason reason)
{
    if (!classify_ || fastForward())
        return;
    // Caller holds tile's lock (lostLines) and the line's home shard.
    LostLine& lost = tiles_[tile].lostLines[line_addr];
    lost.reason = reason;
    Shard& sh = shards_[homeTile(line_addr)];
    lockdep::Guard vl(sh.versionMutex);
    auto it = sh.wordVersions.find(line_addr);
    if (it != sh.wordVersions.end())
        lost.versions = it->second;
    else
        lost.versions.clear();
}

MissClass
MemorySystem::classifyMiss(tile_id_t tile, addr_t line_addr, addr_t addr,
                           size_t size)
{
    if (!classify_)
        return MissClass::None;
    TileMemory& tm = tiles_[tile];
    if (!tm.everCached.count(line_addr))
        return MissClass::Cold;
    auto it = tm.lostLines.find(line_addr);
    if (it == tm.lostLines.end() ||
        it->second.reason == EvictReason::Replacement)
        return MissClass::Capacity;

    // Lost to coherence: true sharing iff any word this access touches
    // was written (version bumped) since we lost the line.
    const LostLine& lost = it->second;
    Shard& sh = shards_[homeTile(line_addr)];
    lockdep::Guard vl(sh.versionMutex);
    auto vit = sh.wordVersions.find(line_addr);
    if (vit == sh.wordVersions.end())
        return MissClass::FalseSharing;
    const auto& now_versions = vit->second;
    std::uint64_t first = (addr - line_addr) / WORD_BYTES;
    std::uint64_t last = (addr + size - 1 - line_addr) / WORD_BYTES;
    for (std::uint64_t w = first;
         w <= last && w < now_versions.size(); ++w) {
        std::uint32_t then =
            w < lost.versions.size() ? lost.versions[w] : 0;
        if (now_versions[w] != then)
            return MissClass::TrueSharing;
    }
    return MissClass::FalseSharing;
}

void
MemorySystem::recordMiss(tile_id_t tile, TileMemory& tm, MissClass mc,
                         cycle_t time)
{
    switch (mc) {
      case MissClass::Cold: ++tm.stats.l2ColdMisses; break;
      case MissClass::Capacity: ++tm.stats.l2CapacityMisses; break;
      case MissClass::TrueSharing: ++tm.stats.l2TrueSharingMisses; break;
      case MissClass::FalseSharing:
        ++tm.stats.l2FalseSharingMisses;
        break;
      case MissClass::Upgrade: ++tm.stats.l2UpgradeMisses; break;
      case MissClass::None: return;
    }
    obs::TraceSink::instant(static_cast<std::uint32_t>(tile), "l2.miss",
                            time, "class",
                            static_cast<std::int64_t>(mc));
}

// ----------------------------------------------------------- functional ops

void
MemorySystem::invalidateTile(tile_id_t holder, addr_t line_addr,
                             bool coherence,
                             std::vector<std::uint8_t>* data_out)
{
    // Caller holds the holder's tile lock and the line's home shard.
    TileMemory& tm = tiles_[holder];
    if (tm.l1d)
        tm.l1d->invalidate(line_addr);
    if (tm.l1i)
        tm.l1i->invalidate(line_addr);
    auto ev = tm.l2->invalidate(line_addr);
    if (ev) {
        if (coherence)
            snapshotLoss(holder, line_addr, EvictReason::Invalidation);
        if (data_out)
            *data_out = std::move(ev->data);
    }
}

void
MemorySystem::handleL2Eviction(tile_id_t tile, const Eviction& ev,
                               cycle_t now)
{
    // Caller holds the evicting tile's lock and the victim's home shard.
    TileMemory& tm = tiles_[tile];
    // Inclusion: L1 copies of the victim must go too.
    if (tm.l1d)
        tm.l1d->invalidate(ev.lineAddr);
    if (tm.l1i)
        tm.l1i->invalidate(ev.lineAddr);

    snapshotLoss(tile, ev.lineAddr, EvictReason::Replacement);

    tile_id_t home = homeTile(ev.lineAddr);
    DirectoryEntry& entry = shards_[home].directory->entry(ev.lineAddr);
    // Victim handling runs inside the miss that displaced the line, so
    // its span nests under the miss span (same trace ID) — the
    // off-critical-path cost stays out of the parent's accounting.
    std::optional<obs::SpanBuilder> span;
    if (obs::SpanSink::enabled())
        span.emplace(ev.dirty ? obs::SpanKind::Writeback
                              : obs::SpanKind::Evict,
                     tile, home, now);
    if (ev.dirty) {
        // Dirty writeback: data message to home, memory update. Off the
        // requester's critical path, so the latency is modeled (traffic
        // and queue occupancy) but not accumulated into the access.
        ++tm.stats.writebacks;
        aggWritebacks_.fetch_add(1, std::memory_order_relaxed);
        obs::telemetry::FlightRecorder::record(
            obs::telemetry::FrEvent::Writeback, tile, now, ev.lineAddr,
            static_cast<std::uint64_t>(home));
        NetBreakdown nbd;
        cycle_t m = msg(tile, home, lineSize_ + CTRL_BYTES, now,
                        span ? &nbd : nullptr,
                        obs::accuracy::ViolationPoint::MemWriteback);
        DramController::Breakdown dbd{};
        if (!fastForward())
            dbd = shards_[home].dram->accessEx(now,
                                               lineSize_ + CTRL_BYTES);
        if (span) {
            markNet(&*span, nbd, now, /*reply=*/false);
            markDram(&*span, dbd, now + m);
            span->finish(now + m + dbd.total);
        }
        if (!(check::FaultPlan::armed() &&
              check::FaultPlan::instance().shouldFire(
                  check::FaultMode::LostWriteback, ev.lineAddr)))
            backing_.write(ev.lineAddr, ev.data.data(), ev.data.size());
        GRAPHITE_ASSERT(entry.state() == DirectoryState::Modified &&
                        entry.owner() == tile);
        entry.setState(DirectoryState::Uncached);
        entry.setOwner(INVALID_TILE_ID);
        entry.clearSharers();
    } else {
        // Clean eviction notification keeps the directory precise.
        NetBreakdown nbd;
        cycle_t m = msg(tile, home, CTRL_BYTES, now,
                        span ? &nbd : nullptr,
                        obs::accuracy::ViolationPoint::MemWriteback);
        if (span) {
            markNet(&*span, nbd, now, /*reply=*/false);
            span->finish(now + m);
        }
        if (entry.state() == DirectoryState::Modified &&
            entry.owner() == tile) {
            // Exclusive (clean-owned) line: ownership simply lapses;
            // memory is already current.
            entry.setState(DirectoryState::Uncached);
            entry.setOwner(INVALID_TILE_ID);
            entry.clearSharers();
        } else {
            entry.removeSharer(tile);
            if (entry.state() == DirectoryState::Shared &&
                entry.numSharers() == 0) {
                entry.setState(DirectoryState::Uncached);
            }
        }
    }
}

void
MemorySystem::fillL1(Cache* l1, const CacheLine& l2line)
{
    if (!l1)
        return;
    if (l1->find(l2line.lineAddr) != nullptr)
        return;
    // L1 is write-through: copies are always clean Shared; victims drop.
    l1->insert(l2line.lineAddr, CacheState::Shared, l2line.data);
}

// ------------------------------------------------------ the MSI transaction

cycle_t
MemorySystem::fetchLineLocked(tile_id_t tile, addr_t line_addr,
                              bool for_write, addr_t addr, size_t size,
                              cycle_t now, MissClass& miss_class)
{
    TileMemory& tm = tiles_[tile];
    tile_id_t home = homeTile(line_addr);
    Directory& dir = *shards_[home].directory;

    CacheLine* existing = tm.l2->find(line_addr);
    bool upgrade = for_write && existing != nullptr &&
                   existing->state == CacheState::Shared;
    GRAPHITE_ASSERT(upgrade || existing == nullptr);

    // Fuzz-harness fault injection: a sabotaged DRAM fill returns one
    // flipped bit, emulating a stale/corrupt memory response.
    auto fill_from_memory = [&](std::vector<std::uint8_t>& d) {
        d.resize(lineSize_);
        backing_.read(line_addr, d.data(), lineSize_);
        if (check::FaultPlan::armed() &&
            check::FaultPlan::instance().shouldFire(
                check::FaultMode::StaleDramFill, line_addr))
            d[0] ^= 0x01;
    };

    // Functional-only warmup: the coherence transaction below still
    // moves data and permissions, but DRAM timing and miss
    // classification are paused.
    const bool ff = fastForward();
    miss_class = ff        ? MissClass::None
                 : upgrade ? MissClass::Upgrade
                           : classifyMiss(tile, line_addr, addr, size);
    obs::telemetry::FlightRecorder::record(
        obs::telemetry::FrEvent::MissPath, tile, now, line_addr,
        for_write ? 1 : 0);

    // The miss span (if one is live) belongs to the access that called
    // us; every latency accumulation below mirrors into a stage mark so
    // the marks sum exactly to the returned latency.
    obs::SpanBuilder* sb =
        obs::SpanSink::enabled() ? obs::SpanBuilder::active() : nullptr;

    cycle_t lat = 0;
    // Request to the home directory.
    {
        NetBreakdown nbd;
        lat += msg(tile, home, CTRL_BYTES, now, sb ? &nbd : nullptr);
        if (sb)
            markNet(sb, nbd, now, /*reply=*/false);
    }
    if (sb)
        sb->add(obs::SpanStage::Directory, now + lat, dirLatency_);
    lat += dirLatency_;

    DirectoryEntry& entry = dir.entry(line_addr);
    std::vector<std::uint8_t> data;
    bool grant_exclusive = false; // MESI: sole clean copy

    switch (entry.state()) {
      case DirectoryState::Uncached: {
        GRAPHITE_ASSERT(!upgrade);
        // Memory fetch at the home controller.
        if (!ff) {
            auto dbd = shards_[home].dram->accessEx(
                now + lat, lineSize_ + CTRL_BYTES);
            markDram(sb, dbd, now + lat);
            lat += dbd.total;
        }
        fill_from_memory(data);
        if (mesi_ && !for_write)
            grant_exclusive = true;
        break;
      }

      case DirectoryState::Shared: {
        if (for_write) {
            // Invalidate every other sharer; round trips overlap, so the
            // charged latency is the max over sharers.
            cycle_t max_rt = 0;
            for (tile_id_t s : entry.sharers()) {
                if (s == tile)
                    continue;
                if (check::FaultPlan::armed() &&
                    check::FaultPlan::instance().shouldFire(
                        check::FaultMode::DropInvalidation, line_addr))
                    continue; // injected fault: sharer keeps stale copy
                ++tm.stats.invalidationsSent;
                cycle_t rt =
                    msg(home, s, CTRL_BYTES, now + lat, nullptr,
                        obs::accuracy::ViolationPoint::MemInvalidation);
                invalidateTile(s, line_addr, /*coherence=*/true,
                               nullptr);
                rt +=
                    msg(s, home, CTRL_BYTES, now + lat + rt, nullptr,
                        obs::accuracy::ViolationPoint::MemInvalidation);
                max_rt = std::max(max_rt, rt);
            }
            // One mark for the whole overlapped batch: charging the
            // per-sharer messages individually would double-count the
            // round trips the max already hides.
            if (sb)
                sb->add(obs::SpanStage::Invalidation, now + lat, max_rt);
            lat += max_rt;
            entry.clearSharers();
            if (!upgrade) {
                // Sharers hold clean copies; memory is current.
                if (!ff) {
                    auto dbd = shards_[home].dram->accessEx(
                        now + lat, lineSize_ + CTRL_BYTES);
                    markDram(sb, dbd, now + lat);
                    lat += dbd.total;
                }
                fill_from_memory(data);
            }
        } else {
            if (!ff) {
                auto dbd = shards_[home].dram->accessEx(
                    now + lat, lineSize_ + CTRL_BYTES);
                markDram(sb, dbd, now + lat);
                lat += dbd.total;
            }
            fill_from_memory(data);
        }
        break;
      }

      case DirectoryState::Modified: {
        GRAPHITE_ASSERT(!upgrade);
        tile_id_t owner = entry.owner();
        GRAPHITE_ASSERT(owner != INVALID_TILE_ID);
        GRAPHITE_ASSERT(owner != tile);
        ++tm.stats.recalls;

        // Recall: home -> owner, owner -> home (with data). Both legs
        // coalesce into one Recall mark (add() merges the adjacent
        // same-stage slices).
        {
            cycle_t m =
                msg(home, owner, CTRL_BYTES, now + lat, nullptr,
                    obs::accuracy::ViolationPoint::MemRecall);
            if (sb)
                sb->add(obs::SpanStage::Recall, now + lat, m);
            lat += m;
        }
        TileMemory& otm = tiles_[owner];
        CacheLine* owner_line = otm.l2->find(line_addr);
        GRAPHITE_ASSERT(owner_line != nullptr);
        bool owner_dirty = owner_line->state == CacheState::Modified;
        if (for_write) {
            std::vector<std::uint8_t> owner_data;
            invalidateTile(owner, line_addr, /*coherence=*/true,
                           &owner_data);
            GRAPHITE_ASSERT(owner_data.size() == lineSize_);
            data = std::move(owner_data);
        } else {
            auto owner_data = otm.l2->downgrade(line_addr);
            GRAPHITE_ASSERT(owner_data.has_value());
            data = std::move(*owner_data);
        }
        {
            cycle_t m =
                msg(owner, home, lineSize_ + CTRL_BYTES, now + lat,
                    nullptr, obs::accuracy::ViolationPoint::MemRecall);
            if (sb)
                sb->add(obs::SpanStage::Recall, now + lat, m);
            lat += m;
        }
        if (!for_write && owner_dirty) {
            // M -> S: shared copies must agree with memory, so the home
            // controller writes the recalled data back before replying.
            // The requester pays the occupancy (this also closes the
            // queueing feedback loop: demand on a saturated controller
            // throttles the threads generating it).
            backing_.write(line_addr, data.data(), data.size());
            if (!ff) {
                auto dbd = shards_[home].dram->accessEx(
                    now + lat, lineSize_ + CTRL_BYTES);
                markDram(sb, dbd, now + lat);
                lat += dbd.total;
            }
        }
        // M -> M: dirty ownership migrates cache-to-cache; memory stays
        // stale (the functional copy lives in the new owner's L2).
        // E -> S/x: the owner's copy was clean, memory is current.

        entry.clearSharers();
        if (for_write) {
            entry.setOwner(INVALID_TILE_ID); // set below
        } else {
            entry.setState(DirectoryState::Shared);
            entry.setOwner(INVALID_TILE_ID);
            AddSharerResult r = entry.addSharer(owner);
            GRAPHITE_ASSERT(!r.evicted.has_value());
            if (sb)
                sb->add(obs::SpanStage::Directory, now + lat,
                        r.extraLatency);
            lat += r.extraLatency;
        }
        break;
      }
    }

    // Update the directory for the requester.
    if (for_write || grant_exclusive) {
        // The directory tracks E and M identically: one owner, whose
        // cache holds the authoritative copy (clean for E).
        entry.setState(DirectoryState::Modified);
        entry.setOwner(tile);
        entry.clearSharers();
    } else {
        entry.setState(DirectoryState::Shared);
        AddSharerResult r = entry.addSharer(tile);
        if (sb)
            sb->add(obs::SpanStage::Directory, now + lat,
                    r.extraLatency);
        lat += r.extraLatency;
        if (r.evicted.has_value()) {
            // Dir_iNB pointer eviction: invalidate the displaced sharer.
            tile_id_t victim = *r.evicted;
            GRAPHITE_ASSERT(victim != tile);
            ++tm.stats.invalidationsSent;
            cycle_t rt =
                msg(home, victim, CTRL_BYTES, now + lat, nullptr,
                    obs::accuracy::ViolationPoint::MemInvalidation);
            invalidateTile(victim, line_addr, /*coherence=*/true,
                           nullptr);
            rt +=
                msg(victim, home, CTRL_BYTES, now + lat + rt, nullptr,
                    obs::accuracy::ViolationPoint::MemInvalidation);
            if (sb)
                sb->add(obs::SpanStage::Invalidation, now + lat, rt);
            lat += rt;
        }
    }

    // Reply to the requester and install.
    if (upgrade) {
        NetBreakdown nbd;
        cycle_t m = msg(home, tile, CTRL_BYTES, now + lat,
                        sb ? &nbd : nullptr,
                        obs::accuracy::ViolationPoint::MemReply);
        if (sb)
            markNet(sb, nbd, now + lat, /*reply=*/true);
        lat += m;
        existing->state = CacheState::Modified;
    } else {
        NetBreakdown nbd;
        cycle_t m = msg(home, tile, lineSize_ + CTRL_BYTES, now + lat,
                        sb ? &nbd : nullptr,
                        obs::accuracy::ViolationPoint::MemReply);
        if (sb)
            markNet(sb, nbd, now + lat, /*reply=*/true);
        lat += m;
        GRAPHITE_ASSERT(data.size() == lineSize_);
        CacheState install = for_write ? CacheState::Modified
                             : grant_exclusive ? CacheState::Exclusive
                                               : CacheState::Shared;
        auto ev = tm.l2->insert(line_addr, install, std::move(data));
        if (!ff) {
            // Classification tracking pauses during fast-forward (the
            // documented warmup caveat: post-ROI cold/coherence split
            // is approximate for lines first touched while warming).
            tm.everCached.insert(line_addr);
            tm.lostLines.erase(line_addr);
        }
        if (ev)
            handleL2Eviction(tile, *ev, now + lat);
    }
    GRAPHITE_ASSERT(lat < (1ull << 39));
    return lat;
}

// ------------------------------------------------------------- access paths

void
MemorySystem::finishAccess(TileMemory& tm, const AccessResult& res)
{
    ++tm.stats.totalAccesses;
    tm.stats.totalLatency += res.latency;
    aggAccesses_.fetch_add(1, std::memory_order_relaxed);
    accessLatency_.record(res.latency);
}

bool
MemorySystem::tryCompleteLocal(tile_id_t tile, TileMemory& tm, Cache* l1,
                               bool is_write, addr_t addr, void* buf,
                               size_t size, AccessResult& res)
{
    (void)tile;
    addr_t line_addr = lineAlign(addr);
    res = AccessResult{};

    // L1 probe. The L1 is write-through, so a write "hit" only means the
    // copy is present (never Modified); reads complete here, writes
    // always continue to the L2.
    if (l1 && !is_write && l1->find(addr) != nullptr) {
        res.latency = l1Latency_;
        CacheLine* l1line = l1->access(addr, /*is_write=*/false);
        GRAPHITE_ASSERT(l1line != nullptr);
        std::memcpy(buf, l1line->data.data() + (addr - line_addr), size);
        res.l1Hit = true;
        finishAccess(tm, res);
        return true;
    }

    // L2 permission probe — side-effect-free, so a negative answer
    // leaves no stats or LRU trace behind (the caller will come back
    // through the transaction path, which records the miss exactly
    // once).
    if (tm.l2->probe(addr, is_write) != CacheProbe::Hit)
        return false;

    // The access completes locally: now commit the L1 stats (access +
    // hit/miss) exactly as the serial engine did.
    if (l1) {
        res.latency += l1Latency_;
        l1->access(addr, /*is_write=*/false);
    }
    res.latency += l2Latency_;
    CacheLine* l2line = tm.l2->access(addr, is_write);
    GRAPHITE_ASSERT(l2line != nullptr);
    res.l2Hit = true;

    if (is_write) {
        GRAPHITE_ASSERT(l2line->state == CacheState::Modified);
        bumpVersions(addr, size);
        std::memcpy(l2line->data.data() + (addr - line_addr), buf, size);
        // Write-through into the L1 copy, if present; allocate on miss.
        if (l1) {
            CacheLine* l1line = l1->find(addr);
            if (l1line != nullptr) {
                std::memcpy(l1line->data.data() + (addr - line_addr),
                            buf, size);
            } else {
                fillL1(l1, *l2line);
            }
        }
    } else {
        std::memcpy(buf, l2line->data.data() + (addr - line_addr), size);
        fillL1(l1, *l2line);
    }
    finishAccess(tm, res);
    return true;
}

AccessResult
MemorySystem::accessLine(tile_id_t tile, MemAccessType type, addr_t addr,
                         void* buf, size_t size, cycle_t start_time)
{
    GRAPHITE_ASSERT(tile >= 0 && tile < topo_.totalTiles());
    GRAPHITE_ASSERT(lineAlign(addr) == lineAlign(addr + size - 1));

    if (fastForward())
        return accessLineFastForward(tile, type, addr, buf, size);

    auto global = globalGuard();
    TileMemory& tm = tiles_[tile];
    addr_t line_addr = lineAlign(addr);
    bool is_write = type == MemAccessType::Write;
    Cache* l1 =
        type == MemAccessType::Fetch ? tm.l1i.get() : tm.l1d.get();

    for (;;) {
        // Phase A — fast path + transaction plan under the tile lock
        // alone. Hits with sufficient permission never touch shared
        // state (the paper's partition-local case).
        bool planned_upgrade = false;
        std::optional<addr_t> planned_victim;
        {
            auto tile_lock = lockTile(tm);
            AccessResult res;
            if (tryCompleteLocal(tile, tm, l1, is_write, addr, buf, size,
                                 res))
                return res;
            planned_upgrade =
                tm.l2->probe(addr, is_write) == CacheProbe::NeedsUpgrade;
            if (!planned_upgrade)
                planned_victim = tm.l2->peekVictim(line_addr);
        }

        // Phase B — acquire shards (ascending), read the holder set,
        // then acquire every involved tile lock (ascending). No tile
        // lock is held while a shard lock is being acquired, and the
        // holder set is frozen while the home shard is held: any
        // holder-set mutation for this line runs a transaction through
        // the same home shard.
        tile_id_t home = homeTile(line_addr);
        std::vector<tile_id_t> shard_ids{home};
        if (planned_victim)
            shard_ids.push_back(homeTile(*planned_victim));
        sortUnique(shard_ids);

        std::vector<lockdep::UniqueLock> shard_locks;
        shard_locks.reserve(shard_ids.size());
        for (tile_id_t id : shard_ids)
            shard_locks.push_back(lockShard(shards_[id]));

        std::vector<tile_id_t> tile_ids{tile};
        if (DirectoryEntry* e = shards_[home].directory->peek(line_addr);
            e != nullptr) {
            if (e->owner() != INVALID_TILE_ID)
                tile_ids.push_back(e->owner());
            for (tile_id_t s : e->sharers())
                tile_ids.push_back(s);
        }
        sortUnique(tile_ids);

        std::vector<lockdep::UniqueLock> tile_locks;
        tile_locks.reserve(tile_ids.size());
        for (tile_id_t id : tile_ids)
            tile_locks.push_back(lockTile(tiles_[id]));

        // Phase C — revalidate the plan now that the world is frozen.
        // A concurrent access by another thread on the same tile may
        // have changed our local state; other tiles can only have
        // *lost* copies (which never adds lock requirements).
        AccessResult res;
        if (tryCompleteLocal(tile, tm, l1, is_write, addr, buf, size,
                             res))
            return res; // raced to sufficient permission

        bool upgrade_now =
            tm.l2->probe(addr, is_write) == CacheProbe::NeedsUpgrade;
        if (!upgrade_now) {
            auto victim_now = tm.l2->peekVictim(line_addr);
            if (victim_now &&
                !std::binary_search(shard_ids.begin(), shard_ids.end(),
                                    homeTile(*victim_now)))
                continue; // victim changed shard: replan
        }

        // Commit: run the access through the full transaction with the
        // serial engine's exact stats/latency sequence.
        std::optional<obs::SpanBuilder> span;
        if (obs::SpanSink::enabled())
            span.emplace(is_write ? obs::SpanKind::WriteMiss
                                  : obs::SpanKind::ReadMiss,
                         tile, home, start_time);
        if (l1) {
            res.latency += l1Latency_;
            l1->access(addr, /*is_write=*/false);
        }
        res.latency += l2Latency_;
        if (span)
            span->add(obs::SpanStage::LocalCheck, start_time,
                      res.latency);
        CacheLine* l2line = tm.l2->access(addr, is_write);
        GRAPHITE_ASSERT(l2line == nullptr);
        aggL2Misses_.fetch_add(1, std::memory_order_relaxed);
        MissClass mc;
        res.latency += fetchLineLocked(tile, line_addr, is_write, addr,
                                       size, start_time + res.latency,
                                       mc);
        res.missClass = mc;
        recordMiss(tile, tm, mc, start_time + res.latency);
        if (span) {
            if (mc == MissClass::Upgrade)
                span->setKind(obs::SpanKind::Upgrade);
            span->finish(start_time + res.latency);
        }
        l2line = tm.l2->find(line_addr);
        GRAPHITE_ASSERT(l2line != nullptr);

        if (is_write) {
            GRAPHITE_ASSERT(l2line->state == CacheState::Modified);
            bumpVersions(addr, size);
            std::memcpy(l2line->data.data() + (addr - line_addr), buf,
                        size);
            if (l1) {
                CacheLine* l1line = l1->find(addr);
                if (l1line != nullptr) {
                    std::memcpy(l1line->data.data() + (addr - line_addr),
                                buf, size);
                } else {
                    fillL1(l1, *l2line);
                }
            }
        } else {
            std::memcpy(buf, l2line->data.data() + (addr - line_addr),
                        size);
            fillL1(l1, *l2line);
        }
        finishAccess(tm, res);
        return res;
    }
}

AccessResult
MemorySystem::access(tile_id_t tile, MemAccessType type, addr_t addr,
                     void* buf, size_t size, cycle_t start_time)
{
    GRAPHITE_ASSERT(size > 0);
    // Race detection taps the single application-access funnel. Kernel
    // paths (readCoherent/writeCoherent) and instruction fetches are
    // exempt; sync-library internals are masked by InternalScope.
    if (race::Detector::armed() && type != MemAccessType::Fetch &&
        !race::Detector::suppressed()) {
        race::Detector::instance().onAccess(
            tile, addr, size, type == MemAccessType::Write, start_time);
    }
    AccessResult total;
    total.l1Hit = true;
    total.l2Hit = true;
    auto* bytes = static_cast<std::uint8_t*>(buf);
    while (size > 0) {
        addr_t line_end = lineAlign(addr) + lineSize_;
        size_t chunk =
            std::min<std::uint64_t>(size, line_end - addr);
        AccessResult r = accessLine(tile, type, addr, bytes, chunk,
                                    start_time + total.latency);
        total.latency += r.latency;
        total.l1Hit = total.l1Hit && r.l1Hit;
        total.l2Hit = total.l2Hit && r.l2Hit;
        if (total.missClass == MissClass::None)
            total.missClass = r.missClass;
        bytes += chunk;
        addr += chunk;
        size -= chunk;
    }
    return total;
}

MemorySystem::AtomicResult
MemorySystem::atomicRmw(tile_id_t tile, addr_t addr, size_t size,
                        const std::function<std::uint64_t(std::uint64_t)>&
                            op,
                        cycle_t start_time)
{
    GRAPHITE_ASSERT(size == 4 || size == 8);
    GRAPHITE_ASSERT(lineAlign(addr) == lineAlign(addr + size - 1));

    if (fastForward()) {
        // Functional-only RMW against the backing store; the home
        // shard lock makes it atomic (every fast-forward access to
        // this line serializes on the same lock).
        auto global = globalGuard();
        addr_t line_addr = lineAlign(addr);
        tile_id_t home = homeTile(line_addr);
        auto shard_lock = lockShard(shards_[home]);
        if (DirectoryEntry* entry =
                shards_[home].directory->peek(line_addr);
            entry != nullptr &&
            entry->state() != DirectoryState::Uncached)
            demoteLineLocked(*entry, line_addr);
        AtomicResult res;
        std::uint64_t old_val = 0;
        backing_.read(addr, &old_val, size);
        std::uint64_t new_val = op(old_val);
        backing_.write(addr, &new_val, size);
        res.oldValue = old_val;
        TileMemory& tmf = tiles_[tile];
        auto tile_lock = lockTile(tmf);
        ++tmf.stats.totalAccesses;
        aggAccesses_.fetch_add(1, std::memory_order_relaxed);
        return res;
    }

    auto global = globalGuard();
    TileMemory& tm = tiles_[tile];
    addr_t line_addr = lineAlign(addr);

    // An atomic op needs write permission up front; probe L2 directly
    // (atomics bypass the L1 on most tiled targets). Applies @p op once
    // the line is held Modified under the tile lock.
    auto rmw = [&](CacheLine* l2line, AtomicResult& res) {
        GRAPHITE_ASSERT(l2line->state == CacheState::Modified);
        std::uint64_t old_val = 0;
        std::memcpy(&old_val, l2line->data.data() + (addr - line_addr),
                    size);
        std::uint64_t new_val = op(old_val);
        bumpVersions(addr, size);
        std::memcpy(l2line->data.data() + (addr - line_addr), &new_val,
                    size);
        // Keep any L1 copy in sync (write-through).
        if (tm.l1d) {
            CacheLine* l1line = tm.l1d->find(addr);
            if (l1line != nullptr &&
                !(check::FaultPlan::armed() &&
                  check::FaultPlan::instance().shouldFire(
                      check::FaultMode::SkipReleaseFence, line_addr)))
                std::memcpy(l1line->data.data() + (addr - line_addr),
                            &new_val, size);
        }
        res.oldValue = old_val;
        ++tm.stats.totalAccesses;
        tm.stats.totalLatency += res.latency;
        aggAccesses_.fetch_add(1, std::memory_order_relaxed);
    };

    for (;;) {
        // Phase A — fast path: the line is already held Modified.
        bool planned_upgrade = false;
        std::optional<addr_t> planned_victim;
        {
            auto tile_lock = lockTile(tm);
            CacheProbe p = tm.l2->probe(addr, /*is_write=*/true);
            if (p == CacheProbe::Hit) {
                AtomicResult res;
                res.latency += l2Latency_;
                CacheLine* l2line =
                    tm.l2->access(addr, /*is_write=*/true);
                GRAPHITE_ASSERT(l2line != nullptr);
                rmw(l2line, res);
                return res;
            }
            planned_upgrade = p == CacheProbe::NeedsUpgrade;
            if (!planned_upgrade)
                planned_victim = tm.l2->peekVictim(line_addr);
        }

        // Phase B — same ordered acquisition as accessLine.
        tile_id_t home = homeTile(line_addr);
        std::vector<tile_id_t> shard_ids{home};
        if (planned_victim)
            shard_ids.push_back(homeTile(*planned_victim));
        sortUnique(shard_ids);

        std::vector<lockdep::UniqueLock> shard_locks;
        shard_locks.reserve(shard_ids.size());
        for (tile_id_t id : shard_ids)
            shard_locks.push_back(lockShard(shards_[id]));

        std::vector<tile_id_t> tile_ids{tile};
        if (DirectoryEntry* e = shards_[home].directory->peek(line_addr);
            e != nullptr) {
            if (e->owner() != INVALID_TILE_ID)
                tile_ids.push_back(e->owner());
            for (tile_id_t s : e->sharers())
                tile_ids.push_back(s);
        }
        sortUnique(tile_ids);

        std::vector<lockdep::UniqueLock> tile_locks;
        tile_locks.reserve(tile_ids.size());
        for (tile_id_t id : tile_ids)
            tile_locks.push_back(lockTile(tiles_[id]));

        // Phase C — revalidate and commit.
        AtomicResult res;
        CacheProbe p = tm.l2->probe(addr, /*is_write=*/true);
        if (p == CacheProbe::Hit) {
            res.latency += l2Latency_;
            CacheLine* l2line = tm.l2->access(addr, /*is_write=*/true);
            GRAPHITE_ASSERT(l2line != nullptr);
            rmw(l2line, res);
            return res;
        }
        if (p == CacheProbe::Miss) {
            auto victim_now = tm.l2->peekVictim(line_addr);
            if (victim_now &&
                !std::binary_search(shard_ids.begin(), shard_ids.end(),
                                    homeTile(*victim_now)))
                continue; // victim changed shard: replan
        }

        std::optional<obs::SpanBuilder> span;
        if (obs::SpanSink::enabled())
            span.emplace(obs::SpanKind::Atomic, tile, home, start_time);
        res.latency += l2Latency_;
        if (span)
            span->add(obs::SpanStage::LocalCheck, start_time,
                      res.latency);
        CacheLine* l2line = tm.l2->access(addr, /*is_write=*/true);
        GRAPHITE_ASSERT(l2line == nullptr);
        aggL2Misses_.fetch_add(1, std::memory_order_relaxed);
        MissClass mc;
        res.latency += fetchLineLocked(tile, line_addr,
                                       /*for_write=*/true, addr, size,
                                       start_time + res.latency, mc);
        recordMiss(tile, tm, mc, start_time + res.latency);
        if (span)
            span->finish(start_time + res.latency);
        l2line = tm.l2->find(line_addr);
        GRAPHITE_ASSERT(l2line != nullptr);
        rmw(l2line, res);
        return res;
    }
}

// ------------------------------------------------- untimed coherent access

void
MemorySystem::demoteLineLocked(DirectoryEntry& entry, addr_t line_addr)
{
    // Caller holds the line's home shard. Invalidate every cached copy
    // (merging a Modified owner's data) so the backing store becomes
    // the sole authority for the line.
    std::vector<tile_id_t> holder_ids;
    if (entry.state() == DirectoryState::Modified)
        holder_ids.push_back(entry.owner());
    else
        for (tile_id_t s : entry.sharers())
            holder_ids.push_back(s);
    sortUnique(holder_ids);
    std::vector<lockdep::UniqueLock> tile_locks;
    tile_locks.reserve(holder_ids.size());
    for (tile_id_t id : holder_ids)
        tile_locks.push_back(lockTile(tiles_[id]));

    if (entry.state() == DirectoryState::Modified) {
        std::vector<std::uint8_t> data;
        invalidateTile(entry.owner(), line_addr, /*coherence=*/false,
                       &data);
        backing_.write(line_addr, data.data(), data.size());
    } else {
        for (tile_id_t s : holder_ids)
            invalidateTile(s, line_addr, /*coherence=*/false, nullptr);
    }
    entry.setState(DirectoryState::Uncached);
    entry.setOwner(INVALID_TILE_ID);
    entry.clearSharers();
}

AccessResult
MemorySystem::accessLineFastForward(tile_id_t tile, MemAccessType type,
                                    addr_t addr, void* buf, size_t size)
{
    auto global = globalGuard();
    addr_t line_addr = lineAlign(addr);
    const bool is_write = type == MemAccessType::Write;

    // The backing store is the single memory image during warmup. The
    // first fast-forward touch of a line demotes any cached copies
    // (mixed-mode safety: a detailed-path access that straddled the
    // mode flip may have installed one); after that the steady state
    // is a directory peek plus a plain memory copy under the home
    // shard lock — no cache, network or DRAM modeling at all.
    tile_id_t home = homeTile(line_addr);
    auto shard_lock = lockShard(shards_[home]);
    if (DirectoryEntry* entry = shards_[home].directory->peek(line_addr);
        entry != nullptr && entry->state() != DirectoryState::Uncached)
        demoteLineLocked(*entry, line_addr);
    if (is_write)
        backing_.write(addr, buf, size);
    else
        backing_.read(addr, buf, size);

    AccessResult res; // zero latency, counts as a (cold) miss
    TileMemory& tm = tiles_[tile];
    auto tile_lock = lockTile(tm);
    finishAccess(tm, res);
    return res;
}

void
MemorySystem::readCoherent(addr_t addr, void* buf, size_t size)
{
    auto global = globalGuard();
    auto* out = static_cast<std::uint8_t*>(buf);
    while (size > 0) {
        addr_t line_addr = lineAlign(addr);
        size_t chunk = std::min<std::uint64_t>(
            size, line_addr + lineSize_ - addr);
        // If some cache owns the line Modified, its L2 has the newest
        // data (L1 is write-through). Holding the home shard freezes
        // the owner; the owner's tile lock freezes the data.
        tile_id_t home = homeTile(line_addr);
        auto shard_lock = lockShard(shards_[home]);
        DirectoryEntry* entry =
            shards_[home].directory->peek(line_addr);
        if (entry != nullptr &&
            entry->state() == DirectoryState::Modified) {
            tile_id_t owner = entry->owner();
            auto tile_lock = lockTile(tiles_[owner]);
            CacheLine* line = tiles_[owner].l2->find(line_addr);
            GRAPHITE_ASSERT(line != nullptr);
            std::memcpy(out, line->data.data() + (addr - line_addr),
                        chunk);
        } else {
            backing_.read(addr, out, chunk);
        }
        out += chunk;
        addr += chunk;
        size -= chunk;
    }
}

void
MemorySystem::writeCoherent(addr_t addr, const void* buf, size_t size)
{
    auto global = globalGuard();
    const auto* in = static_cast<const std::uint8_t*>(buf);
    while (size > 0) {
        addr_t line_addr = lineAlign(addr);
        size_t chunk = std::min<std::uint64_t>(
            size, line_addr + lineSize_ - addr);
        // Invalidate every cached copy, then update memory. This is a
        // kernel-initiated write (DMA-like); charge no target time.
        tile_id_t home = homeTile(line_addr);
        auto shard_lock = lockShard(shards_[home]);
        DirectoryEntry* entry =
            shards_[home].directory->peek(line_addr);
        if (entry != nullptr &&
            entry->state() != DirectoryState::Uncached)
            demoteLineLocked(*entry, line_addr);
        backing_.write(addr, in, chunk);
        bumpVersions(addr, chunk);
        in += chunk;
        addr += chunk;
        size -= chunk;
    }
}

// -------------------------------------------------------------- inspection

Cache*
MemorySystem::l1i(tile_id_t tile)
{
    return tiles_[tile].l1i.get();
}

Cache*
MemorySystem::l1d(tile_id_t tile)
{
    return tiles_[tile].l1d.get();
}

Cache&
MemorySystem::l2(tile_id_t tile)
{
    return *tiles_[tile].l2;
}

Directory&
MemorySystem::directory(tile_id_t tile)
{
    return *shards_[tile].directory;
}

DramController&
MemorySystem::dram(tile_id_t tile)
{
    return *shards_[tile].dram;
}

const TileMemoryStats&
MemorySystem::stats(tile_id_t tile) const
{
    return tiles_[tile].stats;
}

std::string
MemorySystem::validateCoherence()
{
    // Quiesce: take every shard, then every tile, in ascending order —
    // the same global order transactions use, so this composes with
    // concurrent traffic.
    auto global = globalGuard();
    std::vector<lockdep::UniqueLock> shard_locks;
    shard_locks.reserve(shards_.size());
    for (Shard& sh : shards_)
        shard_locks.push_back(lockShard(sh));
    std::vector<lockdep::UniqueLock> tile_locks;
    tile_locks.reserve(tiles_.size());
    for (TileMemory& tm : tiles_)
        tile_locks.push_back(lockTile(tm));

    // Gather, for every line cached anywhere, which L2s hold it and how.
    struct Holders
    {
        std::vector<tile_id_t> shared;
        std::vector<tile_id_t> modified;  ///< M or E (owned)
        std::vector<tile_id_t> exclusive; ///< E only (clean-owned)
    };
    std::unordered_map<addr_t, Holders> holders;
    for (tile_id_t t = 0; t < topo_.totalTiles(); ++t) {
        for (const CacheLine* line : tiles_[t].l2->validLines()) {
            if (line->state == CacheState::Modified) {
                holders[line->lineAddr].modified.push_back(t);
            } else if (line->state == CacheState::Exclusive) {
                holders[line->lineAddr].modified.push_back(t);
                holders[line->lineAddr].exclusive.push_back(t);
            } else {
                holders[line->lineAddr].shared.push_back(t);
            }
        }
        // Inclusion + data agreement for L1 copies.
        for (Cache* l1 : {tiles_[t].l1d.get(), tiles_[t].l1i.get()}) {
            if (!l1)
                continue;
            for (const CacheLine* line : l1->validLines()) {
                const CacheLine* l2line =
                    tiles_[t].l2->find(line->lineAddr);
                if (l2line == nullptr)
                    return strfmt("inclusion violated: tile {} {} holds "
                                  "line {} absent from L2",
                                  t, l1->name(), line->lineAddr);
                if (l2line->data != line->data)
                    return strfmt("L1/L2 data mismatch on tile {} line "
                                  "{}",
                                  t, line->lineAddr);
            }
        }
    }

    for (auto& [line_addr, h] : holders) {
        tile_id_t home = homeTile(line_addr);
        DirectoryEntry* entry = shards_[home].directory->peek(line_addr);
        if (entry == nullptr)
            return strfmt("line {} cached but has no directory entry",
                          line_addr);
        if (h.modified.size() > 1)
            return strfmt("line {} Modified in {} caches", line_addr,
                          h.modified.size());
        if (!h.modified.empty()) {
            if (!h.shared.empty())
                return strfmt("line {} both Modified and Shared",
                              line_addr);
            if (entry->state() != DirectoryState::Modified ||
                entry->owner() != h.modified.front())
                return strfmt("directory/owner mismatch for line {}",
                              line_addr);
            if (!h.exclusive.empty()) {
                // Exclusive copies are clean: must match memory.
                std::vector<std::uint8_t> mem(lineSize_);
                backing_.read(line_addr, mem.data(), lineSize_);
                const CacheLine* line =
                    tiles_[h.exclusive.front()].l2->find(line_addr);
                if (line->data != mem)
                    return strfmt("exclusive line {} on tile {} "
                                  "differs from memory",
                                  line_addr, h.exclusive.front());
            }
        } else {
            if (entry->state() != DirectoryState::Shared)
                return strfmt("line {} cached Shared but directory says "
                              "{}",
                              line_addr, static_cast<int>(entry->state()));
            for (tile_id_t t : h.shared) {
                if (!entry->isSharer(t))
                    return strfmt("tile {} holds line {} but is not a "
                                  "directory sharer",
                                  t, line_addr);
            }
            // Shared copies must agree with memory (clean).
            std::vector<std::uint8_t> mem(lineSize_);
            backing_.read(line_addr, mem.data(), lineSize_);
            for (tile_id_t t : h.shared) {
                const CacheLine* line = tiles_[t].l2->find(line_addr);
                if (line->data != mem)
                    return strfmt("shared line {} on tile {} differs "
                                  "from memory",
                                  line_addr, t);
            }
        }
    }
    return "";
}

// ----------------------------------------------------------- serialization

void
MemorySystem::saveState(snapshot::SnapshotWriter& w)
{
    w.u64(static_cast<std::uint64_t>(tiles_.size()));
    for (TileMemory& tm : tiles_) {
        lockdep::Guard lock(tm.mutex);
        w.b(tm.l1i != nullptr);
        if (tm.l1i)
            tm.l1i->saveState(w);
        w.b(tm.l1d != nullptr);
        if (tm.l1d)
            tm.l1d->saveState(w);
        tm.l2->saveState(w);

        const TileMemoryStats& s = tm.stats;
        w.u64(s.totalAccesses);
        w.u64(s.totalLatency);
        w.u64(s.l2ColdMisses);
        w.u64(s.l2CapacityMisses);
        w.u64(s.l2TrueSharingMisses);
        w.u64(s.l2FalseSharingMisses);
        w.u64(s.l2UpgradeMisses);
        w.u64(s.invalidationsSent);
        w.u64(s.recalls);
        w.u64(s.writebacks);

        std::vector<addr_t> ever(tm.everCached.begin(),
                                 tm.everCached.end());
        std::sort(ever.begin(), ever.end());
        w.u64(static_cast<std::uint64_t>(ever.size()));
        for (addr_t a : ever)
            w.u64(a);

        std::map<addr_t, const LostLine*> lost;
        for (const auto& [a, ll] : tm.lostLines)
            lost.emplace(a, &ll);
        w.u64(static_cast<std::uint64_t>(lost.size()));
        for (const auto& [a, ll] : lost) {
            w.u64(a);
            w.u8(static_cast<std::uint8_t>(ll->reason));
            w.u64(static_cast<std::uint64_t>(ll->versions.size()));
            for (std::uint32_t v : ll->versions)
                w.u32(v);
        }
    }

    for (Shard& sh : shards_) {
        lockdep::Guard lock(sh.mutex);
        sh.directory->saveState(w);
        sh.dram->saveState(w);
        lockdep::Guard vl(sh.versionMutex);
        std::map<addr_t, const std::vector<std::uint32_t>*> vers;
        for (const auto& [a, vv] : sh.wordVersions)
            vers.emplace(a, &vv);
        w.u64(static_cast<std::uint64_t>(vers.size()));
        for (const auto& [a, vv] : vers) {
            w.u64(a);
            w.u64(static_cast<std::uint64_t>(vv->size()));
            for (std::uint32_t v : *vv)
                w.u32(v);
        }
    }

    accessLatency_.saveState(w);
    backing_.saveState(w);
    manager_->saveState(w);

    w.u64(aggAccesses_.load(std::memory_order_relaxed));
    w.u64(aggL2Misses_.load(std::memory_order_relaxed));
    w.u64(aggWritebacks_.load(std::memory_order_relaxed));
}

void
MemorySystem::loadState(snapshot::SnapshotReader& r)
{
    std::uint64_t tiles = r.u64();
    if (tiles != tiles_.size())
        throw snapshot::SnapshotError(
            strfmt("snapshot: tile count mismatch (snapshot {}, "
                   "configured {})",
                   tiles, tiles_.size()));
    for (TileMemory& tm : tiles_) {
        lockdep::Guard lock(tm.mutex);
        auto load_l1 = [&](std::unique_ptr<Cache>& l1,
                           const char* which) {
            bool present = r.b();
            if (present != (l1 != nullptr))
                throw snapshot::SnapshotError(
                    strfmt("snapshot: {} cache presence mismatch "
                           "(snapshot {}, configured {})",
                           which, present ? "enabled" : "disabled",
                           l1 ? "enabled" : "disabled"));
            if (l1)
                l1->loadState(r);
        };
        load_l1(tm.l1i, "L1I");
        load_l1(tm.l1d, "L1D");
        tm.l2->loadState(r);

        TileMemoryStats& s = tm.stats;
        s.totalAccesses = r.u64();
        s.totalLatency = r.u64();
        s.l2ColdMisses = r.u64();
        s.l2CapacityMisses = r.u64();
        s.l2TrueSharingMisses = r.u64();
        s.l2FalseSharingMisses = r.u64();
        s.l2UpgradeMisses = r.u64();
        s.invalidationsSent = r.u64();
        s.recalls = r.u64();
        s.writebacks = r.u64();

        tm.everCached.clear();
        std::uint64_t ever = r.u64();
        for (std::uint64_t i = 0; i < ever; ++i)
            tm.everCached.insert(r.u64());

        tm.lostLines.clear();
        std::uint64_t lost = r.u64();
        for (std::uint64_t i = 0; i < lost; ++i) {
            addr_t a = r.u64();
            LostLine& ll = tm.lostLines[a];
            ll.reason = static_cast<EvictReason>(r.u8());
            std::uint64_t n = r.u64();
            ll.versions.resize(n);
            for (std::uint32_t& v : ll.versions)
                v = r.u32();
        }
    }

    for (Shard& sh : shards_) {
        lockdep::Guard lock(sh.mutex);
        sh.directory->loadState(r);
        sh.dram->loadState(r);
        lockdep::Guard vl(sh.versionMutex);
        sh.wordVersions.clear();
        std::uint64_t entries = r.u64();
        for (std::uint64_t i = 0; i < entries; ++i) {
            addr_t a = r.u64();
            std::uint64_t n = r.u64();
            auto& vv = sh.wordVersions[a];
            vv.resize(n);
            for (std::uint32_t& v : vv)
                v = r.u32();
        }
    }

    accessLatency_.loadState(r);
    backing_.loadState(r);
    manager_->loadState(r);

    aggAccesses_.store(r.u64(), std::memory_order_relaxed);
    aggL2Misses_.store(r.u64(), std::memory_order_relaxed);
    aggWritebacks_.store(r.u64(), std::memory_order_relaxed);
}

} // namespace graphite
