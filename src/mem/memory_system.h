/**
 * @file
 * The memory system: functional + timing model of the target cache
 * hierarchy and directory-based MSI coherence (paper §3.2).
 *
 * Functional role: maintains the single target address space. Every
 * application memory reference is redirected here; data actually lives in
 * the modeled cache lines and the backing MainMemory, so "the correct
 * operation [of the coherence protocol] is essential for the completion
 * of simulation" — the protocol is self-verifying.
 *
 * Timing role: the latency of an access is assembled from L1/L2 access
 * costs, directory access cost, network-model latencies of every
 * coherence message (requests, invalidations, recalls, data replies), and
 * DRAM controller latency including lax-compatible queueing delay.
 *
 * Concurrency: two-level locking mirrors the paper's per-home-tile MME
 * servers. A per-tile lock guards each TileMemory (L1/L2 arrays, local
 * stats, miss-classification state), so hits on lines the tile already
 * holds with sufficient permission complete without touching any shared
 * state. Per-home-tile shard locks guard the directory slice, the DRAM
 * controller, and the word-version shard homed at each tile; coherence
 * transactions acquire the shards they need in ascending id order, then
 * every involved tile lock (requester + current holders) in ascending id
 * order. See DESIGN.md §"Coherence-transaction serialization: the
 * shard scheme" for the full lock order and plan/validate/retry
 * protocol. Setting
 * config key `mem/host_concurrency = global` restores a single engine
 * mutex (the pre-shard behavior) for A/B benchmarking.
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/fixed_types.h"
#include "common/lockdep.h"
#include "common/stats.h"
#include "mem/address_space.h"
#include "mem/cache.h"
#include "mem/directory.h"
#include "mem/dram_controller.h"
#include "mem/main_memory.h"
#include "network/network.h"
#include "obs/accuracy/accuracy.h"

namespace graphite
{

class Config;

namespace snapshot
{
class SnapshotWriter;
class SnapshotReader;
} // namespace snapshot

/** Kind of memory reference. */
enum class MemAccessType : std::uint8_t
{
    Read = 0,
    Write,
    Fetch ///< instruction fetch (L1I path)
};

/** Classification of an L2 miss (paper §4.4 / Woo et al.). */
enum class MissClass : std::uint8_t
{
    None = 0,     ///< not a miss / classification disabled
    Cold,         ///< first reference to the line by this tile
    Capacity,     ///< line lost to replacement
    TrueSharing,  ///< line lost to coherence; the accessed word changed
    FalseSharing, ///< line lost to coherence; only other words changed
    Upgrade       ///< write-permission miss (data was present in S)
};

/** Result of one application memory access. */
struct AccessResult
{
    cycle_t latency = 0;
    bool l1Hit = false;
    bool l2Hit = false;
    MissClass missClass = MissClass::None;
};

/** Per-tile memory statistics beyond the raw cache counters. */
struct TileMemoryStats
{
    stat_t totalAccesses = 0;
    stat_t totalLatency = 0;
    stat_t l2ColdMisses = 0;
    stat_t l2CapacityMisses = 0;
    stat_t l2TrueSharingMisses = 0;
    stat_t l2FalseSharingMisses = 0;
    stat_t l2UpgradeMisses = 0;
    stat_t invalidationsSent = 0;
    stat_t recalls = 0;
    stat_t writebacks = 0;
};

/**
 * Simulation-wide memory system. One instance owns the per-tile cache
 * hierarchies, directory slices, DRAM controllers, the backing store,
 * and the target memory manager.
 */
class MemorySystem
{
  public:
    MemorySystem(const ClusterTopology& topo, NetworkFabric& fabric,
                 const Config& cfg);
    ~MemorySystem();

    MemorySystem(const MemorySystem&) = delete;
    MemorySystem& operator=(const MemorySystem&) = delete;

    /**
     * Perform one application memory access on behalf of @p tile.
     * For reads/fetches @p buf receives the data; for writes @p buf
     * supplies it. Accesses may span line boundaries (split internally).
     *
     * Safe to call concurrently from any number of host threads; an
     * access is atomic at cache-line granularity.
     *
     * @param start_time the requesting core's clock at issue
     * @return aggregate timing and classification of the access
     */
    AccessResult access(tile_id_t tile, MemAccessType type, addr_t addr,
                        void* buf, size_t size, cycle_t start_time);

    /** Result of an atomic read-modify-write. */
    struct AtomicResult
    {
        std::uint64_t oldValue = 0;
        cycle_t latency = 0;
    };

    /**
     * Atomically apply @p op to the @p size-byte (4 or 8) integer at
     * @p addr with write semantics (line acquired Modified). The entire
     * RMW is one coherence transaction. @p op runs with the requester's
     * tile lock held and must not re-enter the memory system.
     */
    AtomicResult atomicRmw(tile_id_t tile, addr_t addr, size_t size,
                           const std::function<std::uint64_t(
                               std::uint64_t)>& op,
                           cycle_t start_time);

    /**
     * @name Untimed coherent access (syscall emulation, loaders)
     * Reads observe the newest value regardless of where it is cached;
     * writes invalidate stale cached copies first. No latency is modeled
     * (kernel accesses are outside the target's timing domain).
     * @{
     */
    void readCoherent(addr_t addr, void* buf, size_t size);
    void writeCoherent(addr_t addr, const void* buf, size_t size);
    /** @} */

    /** @name Component access (stats, tests) @{ */
    Cache* l1i(tile_id_t tile);
    Cache* l1d(tile_id_t tile);
    Cache& l2(tile_id_t tile);
    Directory& directory(tile_id_t tile);
    DramController& dram(tile_id_t tile);
    const TileMemoryStats& stats(tile_id_t tile) const;
    MemoryManager& manager() { return *manager_; }
    MainMemory& backing() { return backing_; }

    /** Distribution of end-to-end application access latencies. */
    HistogramStat& accessLatencyHistogram() { return accessLatency_; }
    const HistogramStat& accessLatencyHistogram() const
    {
        return accessLatency_;
    }
    /** @} */

    /**
     * @name Shared aggregates (register directly as atomic counters)
     * Maintained on the hot path so reporting never walks every tile:
     * totalAccesses/l2Misses/writebacks equal the per-tile sums at any
     * quiescent point. The shard-lock trio measures contention on the
     * per-home shard mutexes (fast-path hits never touch them); the
     * tile-lock trio does the same for the level-1 tile mutexes, which
     * every access takes. Both count with try-lock-then-block, so
     * "contended" means a real lost race, not just an acquisition.
     * @{
     */
    const atomic_stat_t* totalAccessesCounter() const
    {
        return &aggAccesses_;
    }
    const atomic_stat_t* l2MissesCounter() const { return &aggL2Misses_; }
    const atomic_stat_t* writebacksCounter() const
    {
        return &aggWritebacks_;
    }
    const atomic_stat_t* shardLockAcquisitionsCounter() const
    {
        return &shardLockAcquisitions_;
    }
    const atomic_stat_t* shardLockContendedCounter() const
    {
        return &shardLockContended_;
    }
    const atomic_stat_t* shardLockWaitNsCounter() const
    {
        return &shardLockWaitNs_;
    }
    const atomic_stat_t* tileLockAcquisitionsCounter() const
    {
        return &tileLockAcquisitions_;
    }
    const atomic_stat_t* tileLockContendedCounter() const
    {
        return &tileLockContended_;
    }
    const atomic_stat_t* tileLockWaitNsCounter() const
    {
        return &tileLockWaitNs_;
    }
    /** @} */

    /**
     * Hold @p tile's level-1 lock for @p ns nanoseconds from another
     * host thread, so tests can plant tile-lock contention
     * deterministically regardless of host CPU count. Sets @p held
     * (when non-null) once the lock is acquired, so the test can issue
     * the colliding access strictly inside the hold window.
     */
    void holdTileLockForTest(tile_id_t tile, std::uint64_t ns,
                             std::atomic<bool>* held = nullptr);

    /** Same, for the shard lock homed at @p tile. */
    void holdShardLockForTest(tile_id_t tile, std::uint64_t ns,
                              std::atomic<bool>* held = nullptr);

    /** False when `mem/host_concurrency = global` pinned the old mutex. */
    bool shardedLocking() const { return sharded_; }

    /** Home tile of the line containing @p addr. */
    tile_id_t homeTile(addr_t addr) const;

    /** Cache line size in bytes. */
    std::uint64_t lineSize() const { return lineSize_; }

    /**
     * Check every coherence invariant (single writer, inclusion,
     * directory/cache agreement, data agreement for shared lines).
     * Quiesces the whole system: acquires every shard and tile lock.
     * @return empty string when consistent, else a description of the
     * first violation. For tests.
     */
    std::string validateCoherence();

    /**
     * @name Checkpoint serialization (all application threads stopped)
     * Saves the full functional+timing state: caches with target data,
     * directory slices, DRAM controllers and queue clocks, word
     * versions, miss-classification tracking, the backing store, the
     * target memory manager, and all architectural counters. Host-side
     * lock-contention counters are wall-clock artifacts and restart at
     * zero.
     * @{
     */
    void saveState(snapshot::SnapshotWriter& w);
    void loadState(snapshot::SnapshotReader& r);
    /** @} */

    /**
     * @name Fast-forward (functional-only warmup)
     * While enabled, accesses stay functionally exact but bypass the
     * timing model entirely: a line's cached copies are demoted to
     * the backing store on its first warmup touch, and from then on
     * reads/writes are plain memory copies under the home shard lock
     * — no cache, directory-protocol, network or DRAM modeling, so
     * warmup runs at near-native memory speed. Detailed simulation
     * resumes with cold caches (the documented warmup caveat: use a
     * checkpoint of a detailed run for warm-cache studies). Toggled
     * at ROI markers or a cycle threshold.
     * @{
     */
    void setFastForward(bool on)
    {
        fastForward_.store(on, std::memory_order_relaxed);
    }
    bool fastForward() const
    {
        return fastForward_.load(std::memory_order_relaxed);
    }
    /** @} */

  private:
    /** State one tile lost a line with, for miss classification. */
    struct LostLine
    {
        EvictReason reason = EvictReason::None;
        /** Per-word version snapshot at loss time. */
        std::vector<std::uint32_t> versions;
    };

    /** Everything guarded by one tile's lock. */
    struct TileMemory
    {
        /** Level-1 lock: caches, stats, and classification state. */
        lockdep::OrderedMutex mutex{lockdep::LockClass::mem_tile};
        std::unique_ptr<Cache> l1i;
        std::unique_ptr<Cache> l1d;
        std::unique_ptr<Cache> l2;
        TileMemoryStats stats;
        /** Lines ever present in this tile's L2 (cold-miss tracking). */
        std::unordered_set<addr_t> everCached;
        /** How lines were lost, for coherence-miss classification. */
        std::unordered_map<addr_t, LostLine> lostLines;
    };

    /**
     * Everything homed at one tile, guarded by the level-2 shard lock:
     * the directory slice and the memory controller — the paper's MME
     * server state. Holding a line's home shard freezes the line's
     * holder set (every holder-set mutation goes through the home).
     */
    struct Shard
    {
        lockdep::OrderedMutex mutex{lockdep::LockClass::mem_shard};
        std::unique_ptr<Directory> directory;
        std::unique_ptr<DramController> dram;
        /** Leaf lock for the word-version shard (classification). */
        lockdep::OrderedMutex versionMutex{lockdep::LockClass::mem_version};
        /** Per-line, per-word write version counters, lines homed here. */
        std::unordered_map<addr_t, std::vector<std::uint32_t>>
            wordVersions;
    };

    static constexpr size_t CTRL_BYTES = 8;
    static constexpr std::uint32_t WORD_BYTES = 4;

    addr_t lineAlign(addr_t a) const { return a & ~(lineSize_ - 1); }

    /** The whole-engine mutex when `mem/host_concurrency = global`. */
    lockdep::UniqueLock globalGuard();

    /** Acquire a shard lock, recording contention statistics. */
    lockdep::UniqueLock lockShard(Shard& shard,
                                  const char* file = __builtin_FILE(),
                                  int line = __builtin_LINE());

    /**
     * Acquire a tile's level-1 lock, recording contention statistics
     * (try-lock first; only a lost race counts as contended).
     */
    lockdep::UniqueLock lockTile(TileMemory& tm,
                                 const char* file = __builtin_FILE(),
                                 int line = __builtin_LINE());

    /**
     * Model one coherence message; returns its network latency. When
     * @p bd is non-null the latency decomposition is reported through
     * it (span-stage attribution; same totals either way). @p point
     * names the protocol leg for the accuracy observatory's causality
     * check at the modeled completion time.
     */
    cycle_t msg(tile_id_t src, tile_id_t dst, size_t payload_bytes,
                cycle_t send_time, NetBreakdown* bd = nullptr,
                obs::accuracy::ViolationPoint point =
                    obs::accuracy::ViolationPoint::MemRequest);

    /** One-line access; addr..addr+size must stay within a line. */
    AccessResult accessLine(tile_id_t tile, MemAccessType type,
                            addr_t addr, void* buf, size_t size,
                            cycle_t start_time);

    /**
     * Fast-forward line access: demote the line to the backing store
     * on first touch, then serve the bytes straight from backing with
     * zero modeled latency (no cache, directory-protocol, network or
     * DRAM work).
     */
    AccessResult accessLineFastForward(tile_id_t tile,
                                       MemAccessType type, addr_t addr,
                                       void* buf, size_t size);

    /**
     * Invalidate every cached copy of @p line_addr (merging a Modified
     * owner's data into backing) and reset its directory entry to
     * Uncached. Caller holds the line's home shard.
     */
    void demoteLineLocked(DirectoryEntry& entry, addr_t line_addr);

    /**
     * Complete the access if @p tile's caches already hold the line with
     * sufficient permission (the fast path). Caller holds the tile lock.
     * @return true when the access completed and @p res is filled.
     */
    bool tryCompleteLocal(tile_id_t tile, TileMemory& tm, Cache* l1,
                          bool is_write, addr_t addr, void* buf,
                          size_t size, AccessResult& res);

    /** Commit stats for one finished line access. Tile lock held. */
    void finishAccess(TileMemory& tm, const AccessResult& res);

    /**
     * Acquire the line into @p tile's L2 with read or write permission,
     * running the full directory transaction. On return the L2 holds the
     * line in Shared (read) or Modified (write) state.
     *
     * Caller holds: the line's home shard, the victim's home shard when
     * an L2 eviction is pending, the requester tile lock, and every
     * current holder's tile lock.
     *
     * @param addr,size the bytes the triggering access touches (miss
     *                  classification compares exactly these words)
     * @return added latency.
     */
    cycle_t fetchLineLocked(tile_id_t tile, addr_t line_addr,
                            bool for_write, addr_t addr, size_t size,
                            cycle_t now, MissClass& miss_class);

    /** Invalidate every cached copy at @p holder (L2 + L1s). */
    void invalidateTile(tile_id_t holder, addr_t line_addr,
                        bool coherence, std::vector<std::uint8_t>* data_out);

    /** Handle an L2 victim: writeback + directory update (off path). */
    void handleL2Eviction(tile_id_t tile, const Eviction& ev,
                          cycle_t now);

    /** Classify an L2 data miss for @p tile (before state changes). */
    MissClass classifyMiss(tile_id_t tile, addr_t line_addr, addr_t addr,
                           size_t size);

    void recordMiss(tile_id_t tile, TileMemory& tm, MissClass mc,
                    cycle_t time);

    /** Bump per-word versions for a write of [addr, addr+size). */
    void bumpVersions(addr_t addr, size_t size);

    /** Snapshot versions for a lost line. */
    void snapshotLoss(tile_id_t tile, addr_t line_addr,
                      EvictReason reason);

    /** Fill L1 (D or I) with a Shared copy of the L2 line. */
    void fillL1(Cache* l1, const CacheLine& l2line);

    ClusterTopology topo_;
    NetworkFabric& fabric_;
    std::uint64_t lineSize_;
    cycle_t l1Latency_;
    cycle_t l2Latency_;
    cycle_t dirLatency_;
    bool classify_;
    bool mesi_ = false;
    bool sharded_ = true;
    std::atomic<bool> fastForward_{false};
    lockdep::OrderedMutex globalMutex_{
        lockdep::LockClass::mem_global}; ///< only used when !sharded_
    std::vector<TileMemory> tiles_;
    std::vector<Shard> shards_;
    HistogramStat accessLatency_;
    MainMemory backing_;
    std::unique_ptr<MemoryManager> manager_;

    atomic_stat_t aggAccesses_{0};
    atomic_stat_t aggL2Misses_{0};
    atomic_stat_t aggWritebacks_{0};
    atomic_stat_t shardLockAcquisitions_{0};
    atomic_stat_t shardLockContended_{0};
    atomic_stat_t shardLockWaitNs_{0};
    atomic_stat_t tileLockAcquisitions_{0};
    atomic_stat_t tileLockContended_{0};
    atomic_stat_t tileLockWaitNs_{0};
};

} // namespace graphite
