#include "common/lockdep.h"
#include "mem/address_space.h"

#include "common/log.h"
#include "snapshot/snapshot.h"

namespace graphite
{

const char*
AddressSpaceLayout::segmentName(addr_t a)
{
    if (a >= CODE_BASE && a < CODE_END)
        return "code";
    if (a >= STATIC_BASE && a < STATIC_END)
        return "static";
    if (a >= HEAP_BASE && a < HEAP_END)
        return "heap";
    if (a >= MMAP_BASE && a < MMAP_END)
        return "mmap";
    if (a >= STACK_BASE && a < STACK_END)
        return "stack";
    return "unmapped";
}

MemoryManager::MemoryManager(tile_id_t total_tiles,
                             std::uint64_t stack_size_per_thread)
    : totalTiles_(total_tiles), stackSize_(stack_size_per_thread)
{
    if (total_tiles <= 0)
        fatal("memory manager: total_tiles must be positive");
    std::uint64_t stack_span = AddressSpaceLayout::STACK_END -
                               AddressSpaceLayout::STACK_BASE;
    if (stack_size_per_thread * total_tiles > stack_span)
        fatal("memory manager: {} stacks of {} bytes exceed the stack "
              "segment ({} bytes)",
              total_tiles, stack_size_per_thread, stack_span);
}

addr_t
MemoryManager::brk(addr_t new_brk)
{
    lockdep::Guard lock(mutex_);
    if (new_brk == 0)
        return heapBrk_;
    if (new_brk < AddressSpaceLayout::HEAP_BASE ||
        new_brk > AddressSpaceLayout::HEAP_END)
        return heapBrk_; // Linux brk semantics: failure returns old break
    heapBrk_ = new_brk;
    return heapBrk_;
}

addr_t
MemoryManager::mmap(std::uint64_t length)
{
    if (length == 0)
        fatal("mmap: zero length");
    lockdep::Guard lock(mutex_);
    std::uint64_t aligned = (length + 4095) & ~std::uint64_t{4095};
    if (mmapNext_ + aligned > AddressSpaceLayout::MMAP_END)
        fatal("mmap: target dynamic segment exhausted ({} bytes "
              "requested)",
              length);
    addr_t addr = mmapNext_;
    mmapNext_ += aligned;
    mmapRegions_[addr] = aligned;
    bytesAllocated_ += aligned;
    ++allocCount_;
    return addr;
}

void
MemoryManager::munmap(addr_t addr, std::uint64_t length)
{
    lockdep::Guard lock(mutex_);
    auto it = mmapRegions_.find(addr);
    if (it == mmapRegions_.end())
        fatal("munmap: {} is not a mapped region start", addr);
    std::uint64_t aligned = (length + 4095) & ~std::uint64_t{4095};
    if (aligned != it->second)
        fatal("munmap: length mismatch for region at {}", addr);
    mmapRegions_.erase(it);
    // Address space is not recycled for mmap regions (monotonic bump);
    // acceptable for application-lifetime simulations.
}

addr_t
MemoryManager::allocate(std::uint64_t size)
{
    if (size == 0)
        size = 1;
    std::uint64_t aligned = (size + 15) & ~std::uint64_t{15};

    lockdep::Guard lock(mutex_);
    // First fit in the free list.
    for (auto it = freeList_.begin(); it != freeList_.end(); ++it) {
        if (it->second >= aligned) {
            addr_t addr = it->first;
            std::uint64_t remaining = it->second - aligned;
            freeList_.erase(it);
            if (remaining > 0)
                freeList_[addr + aligned] = remaining;
            liveBlocks_[addr] = aligned;
            bytesAllocated_ += aligned;
            ++allocCount_;
            return addr;
        }
    }
    // Extend the break.
    if (heapBrk_ + aligned > AddressSpaceLayout::HEAP_END)
        fatal("target heap exhausted: cannot allocate {} bytes", size);
    addr_t addr = heapBrk_;
    heapBrk_ += aligned;
    liveBlocks_[addr] = aligned;
    bytesAllocated_ += aligned;
    ++allocCount_;
    return addr;
}

void
MemoryManager::deallocate(addr_t addr)
{
    lockdep::Guard lock(mutex_);
    auto it = liveBlocks_.find(addr);
    if (it == liveBlocks_.end())
        fatal("free of unallocated target pointer {}", addr);
    std::uint64_t size = it->second;
    liveBlocks_.erase(it);

    // Insert into the free list and coalesce with neighbors.
    auto [fit, inserted] = freeList_.emplace(addr, size);
    GRAPHITE_ASSERT(inserted);
    // Coalesce with successor.
    auto next = std::next(fit);
    if (next != freeList_.end() && fit->first + fit->second == next->first) {
        fit->second += next->second;
        freeList_.erase(next);
    }
    // Coalesce with predecessor.
    if (fit != freeList_.begin()) {
        auto prev = std::prev(fit);
        if (prev->first + prev->second == fit->first) {
            prev->second += fit->second;
            freeList_.erase(fit);
        }
    }
}

addr_t
MemoryManager::stackBase(tile_id_t tile) const
{
    GRAPHITE_ASSERT(tile >= 0 && tile < totalTiles_);
    return AddressSpaceLayout::STACK_BASE +
           static_cast<addr_t>(tile) * stackSize_;
}

stat_t
MemoryManager::bytesAllocated() const
{
    lockdep::Guard lock(mutex_);
    return bytesAllocated_;
}

stat_t
MemoryManager::allocationCount() const
{
    lockdep::Guard lock(mutex_);
    return allocCount_;
}

stat_t
MemoryManager::liveBytes() const
{
    lockdep::Guard lock(mutex_);
    stat_t total = 0;
    for (const auto& [addr, size] : liveBlocks_)
        total += size;
    for (const auto& [addr, size] : mmapRegions_)
        total += size;
    return total;
}

stat_t
MemoryManager::liveBlockCount() const
{
    lockdep::Guard lock(mutex_);
    return static_cast<stat_t>(liveBlocks_.size() +
                               mmapRegions_.size());
}

namespace
{

void
saveAddrMap(snapshot::SnapshotWriter& w,
            const std::map<addr_t, std::uint64_t>& m)
{
    w.u64(static_cast<std::uint64_t>(m.size()));
    for (const auto& [addr, size] : m) {
        w.u64(addr);
        w.u64(size);
    }
}

void
loadAddrMap(snapshot::SnapshotReader& r,
            std::map<addr_t, std::uint64_t>& m)
{
    m.clear();
    std::uint64_t count = r.u64();
    for (std::uint64_t i = 0; i < count; ++i) {
        addr_t addr = r.u64();
        std::uint64_t size = r.u64();
        m.emplace(addr, size);
    }
}

} // namespace

void
MemoryManager::saveState(snapshot::SnapshotWriter& w) const
{
    lockdep::Guard lock(mutex_);
    w.u64(heapBrk_);
    w.u64(mmapNext_);
    w.u64(bytesAllocated_);
    w.u64(allocCount_);
    saveAddrMap(w, freeList_);
    saveAddrMap(w, liveBlocks_);
    saveAddrMap(w, mmapRegions_);
}

void
MemoryManager::loadState(snapshot::SnapshotReader& r)
{
    lockdep::Guard lock(mutex_);
    heapBrk_ = r.u64();
    mmapNext_ = r.u64();
    bytesAllocated_ = r.u64();
    allocCount_ = r.u64();
    loadAddrMap(r, freeList_);
    loadAddrMap(r, liveBlocks_);
    loadAddrMap(r, mmapRegions_);
}

} // namespace graphite
