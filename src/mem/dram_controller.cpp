#include "mem/dram_controller.h"

#include <cmath>

#include "common/log.h"
#include "snapshot/snapshot.h"

namespace graphite
{

DramController::DramController(cycle_t latency_cycles,
                               double bytes_per_cycle,
                               const GlobalProgress* progress,
                               cycle_t outlier_window,
                               cycle_t max_backlog)
    : latency_(latency_cycles),
      bytesPerCycle_(bytes_per_cycle),
      queueEnabled_(progress != nullptr),
      queue_(progress, outlier_window, max_backlog)
{
    if (bytes_per_cycle <= 0.0)
        fatal("dram controller: bandwidth must be positive (got {})",
              bytes_per_cycle);
}

cycle_t
DramController::access(cycle_t arrival_time, size_t bytes)
{
    return accessEx(arrival_time, bytes).total;
}

DramController::Breakdown
DramController::accessEx(cycle_t arrival_time, size_t bytes)
{
    ++accesses_;
    auto service = static_cast<cycle_t>(
        std::ceil(static_cast<double>(bytes) / bytesPerCycle_));
    serviceTime_ += service;
    cycle_t queue_delay =
        queueEnabled_ ? queue_.enqueue(arrival_time, service) : 0;
    Breakdown bd;
    bd.queue = queue_delay;
    bd.service = latency_ + service;
    bd.total = bd.queue + bd.service;
    return bd;
}

void
DramController::saveState(snapshot::SnapshotWriter& w) const
{
    w.u64(accesses_);
    w.u64(serviceTime_);
    queue_.saveState(w);
}

void
DramController::loadState(snapshot::SnapshotReader& r)
{
    accesses_ = r.u64();
    serviceTime_ = r.u64();
    queue_.loadState(r);
}

} // namespace graphite
